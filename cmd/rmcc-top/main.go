// Command rmcc-top is a live watch client for an rmccd daemon, in the
// spirit of top(1): it polls /metrics and the session listing on an
// interval and renders a refreshing terminal dashboard — daemon header
// (uptime, sessions, replay counts, stage latency quantiles, shard
// queues) plus one row per live session with its hit rates, memoization
// coverage, and per-chunk replay latency percentiles.
//
// It needs nothing beyond the public service surface: every number comes
// from the Prometheus exposition or the SessionInfo JSON, so it works
// against any reachable daemon.
//
// Examples:
//
//	rmcc-top -addr http://127.0.0.1:8077
//	rmcc-top -addr http://$ADDR -interval 500ms
//	rmcc-top -once          # single snapshot, no screen clearing (CI, pipes)
//	rmcc-top -addr http://$ROUTER -trace 4bf92f3577b34da6a3ce929d0e0e4736  # one trace, cluster-wide
//	rmcc-top -flight /var/lib/rmcc/flight.rec   # decode a crashed node's flight dump
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rmcc/internal/buildinfo"
	"rmcc/internal/obs"
	"rmcc/internal/server"
	"rmcc/internal/server/client"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8077", "rmccd base URL (scheme optional)")
		interval = flag.Duration("interval", 2*time.Second, "poll/refresh interval")
		once     = flag.Bool("once", false, "render a single snapshot and exit (no screen clearing)")
		traceID  = flag.String("trace", "", "render the /debug/tracez tree for this 32-hex trace ID and exit (cluster-wide via rmcc-router)")
		flight   = flag.String("flight", "", "decode a flight-recorder dump file (- for stdin) and exit; no daemon needed")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll request deadline")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmcc-top"))
		return
	}
	if *flight != "" {
		if err := runFlight(*flight); err != nil {
			fmt.Fprintln(os.Stderr, "rmcc-top:", err)
			os.Exit(1)
		}
		return
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := client.New(base)
	if *traceID != "" {
		if err := runTrace(c, *traceID, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "rmcc-top:", err)
			os.Exit(1)
		}
		return
	}

	for {
		frame, err := snapshot(c, *timeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmcc-top:", err)
			if *once {
				os.Exit(1)
			}
		} else {
			if !*once {
				// Clear screen and home the cursor between frames.
				fmt.Print("\x1b[2J\x1b[H")
			}
			fmt.Print(frame)
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// snapshot polls the daemon once and renders a full frame.
func snapshot(c *client.Client, timeout time.Duration) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	text, err := c.RawMetrics(ctx)
	if err != nil {
		return "", fmt.Errorf("scrape metrics: %w", err)
	}
	pm, err := obs.ParsePromText(strings.NewReader(text))
	if err != nil {
		return "", fmt.Errorf("parse metrics: %w", err)
	}
	sessions, err := c.ListSessions(ctx)
	if err != nil {
		return "", fmt.Errorf("list sessions: %w", err)
	}
	return render(pm, sessions, time.Now()), nil
}

func render(pm *obs.PromText, sessions []server.SessionInfo, now time.Time) string {
	// Pointed at rmcc-router instead of a single daemon? The metrics page
	// says so; render the cluster dashboard.
	if _, ok := pm.Value("rmcc_router_uptime_seconds"); ok {
		return renderCluster(pm, sessions, now)
	}
	var sb strings.Builder

	uptime, _ := pm.Value("rmccd_uptime_seconds")
	active, _ := pm.Value("rmccd_sessions_active")
	replaysOK, _ := pm.Value("rmccd_replays_total", obs.L("status", "ok"))
	replaysErr, _ := pm.Value("rmccd_replays_total", obs.L("status", "error"))
	accesses, _ := pm.Value("rmccd_replay_accesses_total")
	spans, _ := pm.Value("rmccd_spans_total")
	logLines, _ := pm.Value("rmccd_log_lines_total")

	fmt.Fprintf(&sb, "rmcc-top — %s  up %s  sessions %.0f  replays %.0f ok / %.0f err  accesses %s  spans %.0f  log-lines %.0f\n",
		now.UTC().Format("15:04:05"),
		(time.Duration(uptime) * time.Second).String(),
		active, replaysOK, replaysErr, human(accesses), spans, logLines)

	// Per-stage replay latency quantiles from the daemon-side histograms.
	sb.WriteString("stage latency (µs):")
	for _, stage := range []string{"queue-wait", "engine-step", "encode"} {
		p50, ok := pm.HistQuantile("rmccd_replay_stage_duration_us", 0.50, obs.L("stage", stage))
		if !ok {
			continue
		}
		p99, _ := pm.HistQuantile("rmccd_replay_stage_duration_us", 0.99, obs.L("stage", stage))
		fmt.Fprintf(&sb, "  %s p50 %.0f p99 %.0f", stage, p50, p99)
	}
	sb.WriteByte('\n')

	// Shard queue depths, in shard order.
	depths := shardDepths(pm)
	if len(depths) > 0 {
		sb.WriteString("shard queues:")
		for i, d := range depths {
			fmt.Fprintf(&sb, "  %d:%.0f", i, d)
		}
		sb.WriteByte('\n')
	}
	sb.WriteByte('\n')

	fmt.Fprintf(&sb, "%-12s %-12s %5s %12s %9s %9s %7s %9s %9s %7s %-9s\n",
		"SESSION", "WORKLOAD", "SHARD", "ACCESSES", "CTR-MISS%", "MEMO-HIT%", "ACCEL%", "P50µs", "P99µs", "CKPT", "STATE")
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].Accesses > sessions[j].Accesses })
	for _, s := range sessions {
		state := "idle"
		if s.Replaying {
			state = "replaying"
		}
		workload := s.Workload
		if workload == "" {
			workload = s.Name
		}
		ckpt := "-"
		if s.LastCheckpoint != "" {
			ckpt = (time.Duration(s.CheckpointAgeSecs) * time.Second).String()
		}
		fmt.Fprintf(&sb, "%-12s %-12s %5d %12s %9.1f %9.1f %7.1f %9.0f %9.0f %7s %-9s\n",
			s.ID, workload, s.Shard, human(float64(s.Accesses)),
			100*s.CtrMissRate, 100*s.MemoHitRateOnMisses, 100*s.AcceleratedRate,
			s.ReplayP50us, s.ReplayP99us, ckpt, state)
	}
	if len(sessions) == 0 {
		sb.WriteString("(no live sessions)\n")
	}
	return sb.String()
}

// renderCluster is the router dashboard: router header, one row per
// node from the rmcc_router_node_* gauges, then the merged session
// table with each session's NODE.
func renderCluster(pm *obs.PromText, sessions []server.SessionInfo, now time.Time) string {
	var sb strings.Builder

	uptime, _ := pm.Value("rmcc_router_uptime_seconds")
	inRing, _ := pm.Value("rmcc_router_nodes_in_ring")
	routed, _ := pm.Value("rmcc_router_sessions_routed")
	migOK, _ := pm.Value("rmcc_router_migrations_total", obs.L("status", "ok"))
	migErr, _ := pm.Value("rmcc_router_migrations_total", obs.L("status", "error"))
	proxyErrs, _ := pm.Value("rmcc_router_proxy_errors_total")

	fmt.Fprintf(&sb, "rmcc-top — %s  router up %s  nodes %.0f in ring  sessions %.0f routed  migrations %.0f ok / %.0f err  proxy-errs %.0f\n\n",
		now.UTC().Format("15:04:05"),
		(time.Duration(uptime) * time.Second).String(),
		inRing, routed, migOK, migErr, proxyErrs)

	fmt.Fprintf(&sb, "%-22s %-9s %7s %5s %9s %12s %10s %10s\n",
		"NODE", "STATE", "HEALTHY", "RING", "SESSIONS", "REPLAY-P99µs", "CHECKS-OK", "CHECKS-ERR")
	for _, id := range clusterNodes(pm) {
		healthy, _ := pm.Value("rmcc_router_node_healthy", obs.L("node", id))
		ring, _ := pm.Value("rmcc_router_node_in_ring", obs.L("node", id))
		draining, _ := pm.Value("rmcc_router_node_draining", obs.L("node", id))
		nsess, _ := pm.Value("rmcc_router_node_sessions", obs.L("node", id))
		p99, _ := pm.Value("rmcc_router_node_replay_p99_us", obs.L("node", id))
		chkOK, _ := pm.Value("rmcc_router_health_checks_total", obs.L("node", id), obs.L("result", "ok"))
		chkFail, _ := pm.Value("rmcc_router_health_checks_total", obs.L("node", id), obs.L("result", "fail"))
		state := "active"
		if draining > 0 {
			state = "draining"
		}
		fmt.Fprintf(&sb, "%-22s %-9s %7s %5s %9.0f %12.0f %10.0f %10.0f\n",
			id, state, yn(healthy > 0), yn(ring > 0), nsess, p99, chkOK, chkFail)
	}
	sb.WriteByte('\n')

	fmt.Fprintf(&sb, "%-20s %-22s %-12s %12s %9s %9s %9s %9s %-9s\n",
		"SESSION", "NODE", "WORKLOAD", "ACCESSES", "CTR-MISS%", "MEMO-HIT%", "P50µs", "P99µs", "STATE")
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].Accesses > sessions[j].Accesses })
	for _, s := range sessions {
		state := "idle"
		if s.Replaying {
			state = "replaying"
		}
		workload := s.Workload
		if workload == "" {
			workload = s.Name
		}
		fmt.Fprintf(&sb, "%-20s %-22s %-12s %12s %9.1f %9.1f %9.0f %9.0f %-9s\n",
			s.ID, s.Node, workload, human(float64(s.Accesses)),
			100*s.CtrMissRate, 100*s.MemoHitRateOnMisses,
			s.ReplayP50us, s.ReplayP99us, state)
	}
	if len(sessions) == 0 {
		sb.WriteString("(no live sessions)\n")
	}
	return sb.String()
}

// clusterNodes collects the node IDs present on the router metrics page,
// sorted.
func clusterNodes(pm *obs.PromText) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range pm.Samples {
		if s.Name != "rmcc_router_node_healthy" {
			continue
		}
		if id := s.Label("node"); id != "" && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// shardDepths collects rmccd_shard_queue_depth gauges indexed by their
// shard label.
func shardDepths(pm *obs.PromText) []float64 {
	type kv struct {
		shard int
		depth float64
	}
	var rows []kv
	for _, s := range pm.Samples {
		if s.Name != "rmccd_shard_queue_depth" {
			continue
		}
		var shard int
		if _, err := fmt.Sscanf(s.Label("shard"), "%d", &shard); err != nil {
			continue
		}
		rows = append(rows, kv{shard, s.Value})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].shard < rows[j].shard })
	depths := make([]float64, len(rows))
	for i, r := range rows {
		depths[i] = r.depth
	}
	return depths
}

// human renders a count with k/M suffixes for the dashboard columns.
func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
