package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"rmcc/internal/obs"
	"rmcc/internal/server"
	"rmcc/internal/server/client"
)

// This file is rmcc-top's one-shot forensic side: -trace renders the
// cluster-wide tree for one distributed trace (the daemon or router
// assembles it behind /debug/tracez?trace=), and -flight decodes a
// crash-durable flight-recorder dump — the file a SIGKILL'd node leaves
// behind — without needing any live process.

// runTrace fetches and renders one trace tree. Pointed at rmcc-router it
// shows every hop (router + each node a migrated session touched);
// pointed at a single daemon it shows that node's slice.
func runTrace(c *client.Client, traceID string, timeout time.Duration) error {
	if _, _, err := obs.ParseTraceID(traceID); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	resp, err := c.Tracez(ctx, traceID, 0)
	if err != nil {
		return fmt.Errorf("tracez lookup: %w", err)
	}
	fmt.Printf("trace %s — %d spans (via %s, spans dropped %d)\n",
		traceID, len(resp.Spans), resp.Node, resp.SpansDropped)
	if len(resp.Spans) == 0 {
		fmt.Println("(no retained spans; the ring may have wrapped, or the trace never sampled)")
		return nil
	}
	fmt.Print(renderTraceTree(resp.Spans))
	return nil
}

// spanKey names a span across processes: span IDs are per-process
// ordinals, so the node stamp disambiguates.
type spanKey struct {
	node string
	id   uint64
}

// renderTraceTree renders spans as an indented tree. In-process edges
// follow Parent; cross-process edges follow Remote (the upstream span's
// ID in *its* process) best-effort — an unmatched Remote (ring wrapped
// upstream) degrades to a root. Offsets are relative to the earliest
// span so cross-node rows line up on one timeline.
func renderTraceTree(spans []server.TracezSpan) string {
	byKey := make(map[spanKey]int, len(spans))
	for i, sp := range spans {
		byKey[spanKey{sp.Node, sp.ID}] = i
	}
	children := make(map[int][]int, len(spans))
	var roots []int
	t0 := spans[0].StartNS
	for i, sp := range spans {
		if sp.StartNS < t0 {
			t0 = sp.StartNS
		}
		if sp.Parent != 0 {
			if pi, ok := byKey[spanKey{sp.Node, sp.Parent}]; ok {
				children[pi] = append(children[pi], i)
				continue
			}
		}
		if sp.Remote != 0 {
			// The propagated parent lives in another process; find it on
			// any other node (first match wins — collisions across two
			// upstream processes are possible but harmless for display).
			found := -1
			for j, cand := range spans {
				if cand.Node != sp.Node && cand.ID == sp.Remote {
					found = j
					break
				}
			}
			if found >= 0 {
				children[found] = append(children[found], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	order := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			x, y := spans[idx[a]], spans[idx[b]]
			if x.StartNS != y.StartNS {
				return x.StartNS < y.StartNS
			}
			if x.Node != y.Node {
				return x.Node < y.Node
			}
			return x.ID < y.ID
		})
	}
	order(roots)
	for _, kids := range children {
		order(kids)
	}
	var sb strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := spans[i]
		detail := sp.Detail
		if detail != "" {
			detail = "  " + detail
		}
		fmt.Fprintf(&sb, "%10s %9dµs  %s%-24s [%s]%s\n",
			fmt.Sprintf("+%.3fms", float64(sp.StartNS-t0)/1e6),
			sp.DurationUS, strings.Repeat("  ", depth), sp.Name, sp.Node, detail)
		for _, k := range children[i] {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return sb.String()
}

// runFlight decodes a flight-recorder dump file ("-" for stdin) and
// prints its contents: header, span table (with trace IDs), events, and
// captured warn+ log lines. Exits non-zero via the caller when the file
// is missing or corrupt — the recovery smoke leans on that.
func runFlight(path string) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	d, err := obs.ReadFlightDump(r)
	if err != nil {
		return fmt.Errorf("decode flight dump %s: %w", path, err)
	}
	fmt.Printf("flight dump — node %s  records %d  dropped %d  spans %d  events %d  logs %d\n",
		d.Node, d.Records, d.Dropped, len(d.Spans), len(d.Events), len(d.Logs))
	for _, sp := range d.Spans {
		trace := sp.TraceID()
		if trace == "" {
			trace = "-"
		}
		detail := sp.Detail
		if detail != "" {
			detail = "  " + detail
		}
		fmt.Printf("span %s %10dµs  parent=%d remote=%d trace=%s  %s%s\n",
			time.Unix(0, sp.Start).UTC().Format(time.RFC3339Nano),
			uint64(sp.Duration)/1e3, sp.Parent, sp.Remote, trace, sp.Name, detail)
	}
	for _, ev := range d.Events {
		fmt.Printf("event seq=%d kind=%d addr=%#x v1=%d v2=%d\n",
			ev.Seq, ev.Kind, ev.Addr, ev.V1, ev.V2)
	}
	for _, l := range d.Logs {
		fmt.Printf("log %s [%s] %s\n",
			time.Unix(0, l.TimeNS).UTC().Format(time.RFC3339Nano), l.Level, l.Line)
	}
	return nil
}
