package main

import (
	"strings"
	"testing"
	"time"

	"rmcc/internal/obs"
	"rmcc/internal/server"
)

const sampleMetrics = `# HELP rmccd_uptime_seconds seconds since the daemon started
rmccd_uptime_seconds 125
rmccd_sessions_active 2
rmccd_replays_total{status="ok"} 7
rmccd_replays_total{status="error"} 1
rmccd_replay_accesses_total 3500000
rmccd_spans_total 42
rmccd_log_lines_total 9
rmccd_shard_queue_depth{shard="0"} 0
rmccd_shard_queue_depth{shard="1"} 3
rmccd_replay_stage_duration_us_bucket{le="128",stage="engine-step"} 5
rmccd_replay_stage_duration_us_bucket{le="+Inf",stage="engine-step"} 10
rmccd_replay_stage_duration_us_count{stage="engine-step"} 10
rmccd_replay_stage_duration_us_sum{stage="engine-step"} 1000
`

func TestRenderFrame(t *testing.T) {
	pm, err := obs.ParsePromText(strings.NewReader(sampleMetrics))
	if err != nil {
		t.Fatal(err)
	}
	sessions := []server.SessionInfo{
		{ID: "s-1", Workload: "canneal", Shard: 1, Accesses: 3_000_000,
			CtrMissRate: 0.25, MemoHitRateOnMisses: 0.8, AcceleratedRate: 0.6,
			ReplayP50us: 120, ReplayP99us: 900, Replaying: true},
		{ID: "s-2", Name: "dedup", Shard: 0, Accesses: 500_000},
	}
	frame := render(pm, sessions, time.Unix(0, 0).UTC())
	for _, want := range []string{
		"sessions 2", "replays 7 ok / 1 err", "accesses 3.50M",
		"engine-step p50", "shard queues:  0:0  1:3",
		"SESSION", "CTR-MISS%", "P99µs",
		"s-1", "canneal", "replaying",
		"s-2", "dedup", "idle",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// Busiest session sorts first.
	if strings.Index(frame, "s-1") > strings.Index(frame, "s-2") {
		t.Errorf("sessions not sorted by accesses:\n%s", frame)
	}
}

const sampleRouterMetrics = `# HELP rmcc_router_uptime_seconds seconds since the router started
rmcc_router_uptime_seconds 65
rmcc_router_nodes_in_ring 2
rmcc_router_sessions_routed 3
rmcc_router_migrations_total{status="ok"} 4
rmcc_router_migrations_total{status="error"} 0
rmcc_router_proxy_errors_total 1
rmcc_router_node_healthy{node="127.0.0.1:8077"} 1
rmcc_router_node_healthy{node="127.0.0.1:8078"} 1
rmcc_router_node_in_ring{node="127.0.0.1:8077"} 1
rmcc_router_node_in_ring{node="127.0.0.1:8078"} 0
rmcc_router_node_draining{node="127.0.0.1:8077"} 0
rmcc_router_node_draining{node="127.0.0.1:8078"} 1
rmcc_router_node_sessions{node="127.0.0.1:8077"} 3
rmcc_router_node_sessions{node="127.0.0.1:8078"} 0
rmcc_router_node_replay_p99_us{node="127.0.0.1:8077"} 850
rmcc_router_node_replay_p99_us{node="127.0.0.1:8078"} 0
rmcc_router_health_checks_total{node="127.0.0.1:8077",result="ok"} 30
rmcc_router_health_checks_total{node="127.0.0.1:8077",result="fail"} 0
rmcc_router_health_checks_total{node="127.0.0.1:8078",result="ok"} 28
rmcc_router_health_checks_total{node="127.0.0.1:8078",result="fail"} 2
`

// TestRenderClusterFrame: pointed at rmcc-router, the dashboard switches
// to the cluster view — node table from the rmcc_router_node_* gauges
// plus the merged session table with the routed NODE column.
func TestRenderClusterFrame(t *testing.T) {
	pm, err := obs.ParsePromText(strings.NewReader(sampleRouterMetrics))
	if err != nil {
		t.Fatal(err)
	}
	sessions := []server.SessionInfo{
		{ID: "s-00aa", Workload: "canneal", Node: "127.0.0.1:8077",
			Accesses: 9000, Replaying: true},
		{ID: "s-00bb", Workload: "dedup", Node: "127.0.0.1:8077", Accesses: 100},
	}
	frame := render(pm, sessions, time.Unix(0, 0).UTC())
	for _, want := range []string{
		"router up 1m5s", "nodes 2 in ring", "sessions 3 routed",
		"migrations 4 ok / 0 err", "proxy-errs 1",
		"NODE", "CHECKS-ERR",
		"127.0.0.1:8077", "active", "yes",
		"127.0.0.1:8078", "draining", "no",
		"s-00aa", "canneal", "replaying",
		"s-00bb", "dedup", "idle",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("cluster frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "shard queues") {
		t.Errorf("cluster frame fell through to the single-daemon view:\n%s", frame)
	}
	// Draining node row: healthy=yes but ring=no.
	for _, line := range strings.Split(frame, "\n") {
		if strings.HasPrefix(line, "127.0.0.1:8078") {
			if !strings.Contains(line, "draining") || !strings.Contains(line, "no") {
				t.Errorf("draining node row wrong: %q", line)
			}
		}
	}
}

func TestRenderNoSessions(t *testing.T) {
	pm, err := obs.ParsePromText(strings.NewReader("rmccd_uptime_seconds 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	frame := render(pm, nil, time.Unix(0, 0))
	if !strings.Contains(frame, "(no live sessions)") {
		t.Errorf("empty listing not handled:\n%s", frame)
	}
}

func TestHuman(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"}, {950, "950"}, {12_500, "12.5k"}, {3_500_000, "3.50M"}, {2e9, "2.00G"},
	} {
		if got := human(tc.v); got != tc.want {
			t.Errorf("human(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
