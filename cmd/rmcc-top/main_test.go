package main

import (
	"strings"
	"testing"
	"time"

	"rmcc/internal/obs"
	"rmcc/internal/server"
)

const sampleMetrics = `# HELP rmccd_uptime_seconds seconds since the daemon started
rmccd_uptime_seconds 125
rmccd_sessions_active 2
rmccd_replays_total{status="ok"} 7
rmccd_replays_total{status="error"} 1
rmccd_replay_accesses_total 3500000
rmccd_spans_total 42
rmccd_log_lines_total 9
rmccd_shard_queue_depth{shard="0"} 0
rmccd_shard_queue_depth{shard="1"} 3
rmccd_replay_stage_duration_us_bucket{le="128",stage="engine-step"} 5
rmccd_replay_stage_duration_us_bucket{le="+Inf",stage="engine-step"} 10
rmccd_replay_stage_duration_us_count{stage="engine-step"} 10
rmccd_replay_stage_duration_us_sum{stage="engine-step"} 1000
`

func TestRenderFrame(t *testing.T) {
	pm, err := obs.ParsePromText(strings.NewReader(sampleMetrics))
	if err != nil {
		t.Fatal(err)
	}
	sessions := []server.SessionInfo{
		{ID: "s-1", Workload: "canneal", Shard: 1, Accesses: 3_000_000,
			CtrMissRate: 0.25, MemoHitRateOnMisses: 0.8, AcceleratedRate: 0.6,
			ReplayP50us: 120, ReplayP99us: 900, Replaying: true},
		{ID: "s-2", Name: "dedup", Shard: 0, Accesses: 500_000},
	}
	frame := render(pm, sessions, time.Unix(0, 0).UTC())
	for _, want := range []string{
		"sessions 2", "replays 7 ok / 1 err", "accesses 3.50M",
		"engine-step p50", "shard queues:  0:0  1:3",
		"SESSION", "CTR-MISS%", "P99µs",
		"s-1", "canneal", "replaying",
		"s-2", "dedup", "idle",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// Busiest session sorts first.
	if strings.Index(frame, "s-1") > strings.Index(frame, "s-2") {
		t.Errorf("sessions not sorted by accesses:\n%s", frame)
	}
}

func TestRenderNoSessions(t *testing.T) {
	pm, err := obs.ParsePromText(strings.NewReader("rmccd_uptime_seconds 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	frame := render(pm, nil, time.Unix(0, 0))
	if !strings.Contains(frame, "(no live sessions)") {
		t.Errorf("empty listing not handled:\n%s", frame)
	}
}

func TestHuman(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"}, {950, "950"}, {12_500, "12.5k"}, {3_500_000, "3.50M"}, {2e9, "2.00G"},
	} {
		if got := human(tc.v); got != tc.want {
			t.Errorf("human(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
