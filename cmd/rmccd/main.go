// Command rmccd serves the secure-memory simulator as a multi-tenant
// daemon: clients create sessions (one warm engine each, sharded across
// single-owner workers) and replay access streams against them over HTTP.
// See docs/SERVICE.md for the API.
//
// Examples:
//
//	rmccd -addr 127.0.0.1:8077
//	rmccd -addr 127.0.0.1:0 -port-file /tmp/rmccd.addr   # ephemeral port
//	rmccd -shards 8 -idle-ttl 5m -drain 10s
//
// SIGINT/SIGTERM triggers a graceful shutdown: /healthz flips to 503, new
// work is refused, and in-flight replays drain until -drain expires, after
// which they are force-cancelled. Exit status 0 means a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rmcc/internal/buildinfo"
	"rmcc/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:8077", "listen address (host:0 picks an ephemeral port)")
		portFile = flag.String("port-file", "", "write the resolved listen address to this file (for scripts wrapping host:0)")
		shards   = flag.Int("shards", 0, "session shard workers (default GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "per-shard job queue depth (default 64)")
		idleTTL  = flag.Duration("idle-ttl", 10*time.Minute, "evict sessions idle this long (<0 disables)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight replays")
		chunk    = flag.Int("chunk", 0, "replay chunk size in accesses (default 4096)")
		quiet    = flag.Bool("quiet", false, "suppress per-session log lines")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmccd"))
		return 0
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	cfg := server.Config{
		Shards:        *shards,
		QueueDepth:    *queue,
		IdleTTL:       *idleTTL,
		ChunkAccesses: *chunk,
		Logf:          logf,
	}
	if *quiet {
		cfg.Logf = nil
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("rmccd: listen: %v", err)
		return 2
	}
	resolved := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(resolved), 0o644); err != nil {
			logf("rmccd: write port file: %v", err)
			return 2
		}
	}

	srv := server.New(cfg)
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	fmt.Printf("rmccd: %s listening on http://%s\n", buildinfo.String("rmccd"), resolved)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	clean := true
	select {
	case sig := <-sigCh:
		logf("rmccd: %v: draining (deadline %s)", sig, *drain)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := httpSrv.Shutdown(ctx); err != nil {
			logf("rmccd: drain deadline expired; force-cancelling replays")
			srv.ForceCancel()
			// Give cancelled handlers a moment to unwind, then close.
			time.Sleep(200 * time.Millisecond)
			_ = httpSrv.Close()
			clean = false
		}
		cancel()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logf("rmccd: serve: %v", err)
			srv.Close()
			return 2
		}
	}
	srv.Close()
	if clean {
		logf("rmccd: shutdown complete")
		return 0
	}
	logf("rmccd: shutdown forced after drain deadline")
	return 1
}
