// Command rmccd serves the secure-memory simulator as a multi-tenant
// daemon: clients create sessions (one warm engine each, sharded across
// single-owner workers) and replay access streams against them over HTTP.
// See docs/SERVICE.md for the API.
//
// Examples:
//
//	rmccd -addr 127.0.0.1:8077
//	rmccd -addr 127.0.0.1:0 -port-file /tmp/rmccd.addr   # ephemeral port
//	rmccd -shards 8 -idle-ttl 5m -drain 10s
//	rmccd -log-level debug -log-format json
//	rmccd -debug-addr 127.0.0.1:8078                     # /statusz, /debug/pprof, /debug/tracez
//	rmccd -snapshot-dir /var/lib/rmcc -flight-every 1s   # crash recovery + durable flight dumps
//
// Operational logs are structured (text or JSON, -log-format) and leveled
// (-log-level); every session-scoped line carries session/shard/workload/
// seed fields. The debug surface (statusz, tracez, pprof) only exists
// when -debug-addr is set, on its own listener.
//
// SIGINT/SIGTERM triggers a graceful shutdown: /healthz flips to 503, new
// work is refused, and in-flight replays drain until -drain expires, after
// which they are force-cancelled. Exit status 0 means a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rmcc/internal/buildinfo"
	"rmcc/internal/obs"
	"rmcc/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:8077", "listen address (host:0 picks an ephemeral port)")
		portFile    = flag.String("port-file", "", "write the resolved listen address to this file (for scripts wrapping host:0)")
		shards      = flag.Int("shards", 0, "session shard workers (default GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "per-shard job queue depth (default 64)")
		idleTTL     = flag.Duration("idle-ttl", 10*time.Minute, "evict sessions idle this long (<0 disables)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight replays")
		chunk       = flag.Int("chunk", 0, "replay chunk size in accesses (default 4096)")
		snapDir     = flag.String("snapshot-dir", "", "durable session checkpoints live here; enables crash recovery (off when empty)")
		snapEvery   = flag.Duration("snapshot-every", 30*time.Second, "periodic checkpoint interval (with -snapshot-dir)")
		nodeID      = flag.String("node-id", "", "node name stamped on spans and flight dumps (default: resolved listen address)")
		spanRing    = flag.Int("span-ring", 0, "retained-span ring size behind /debug/tracez (default 4096)")
		flightFile  = flag.String("flight-file", "", "crash-durable flight-recorder dump path (default <snapshot-dir>/flight.rec; off when both empty)")
		flightEvery = flag.Duration("flight-every", 2*time.Second, "periodic flight-recorder flush interval (with -flight-file)")
		flightCap   = flag.Int("flight-cap", 1<<20, "flight-recorder ring capacity in bytes")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		logFormat   = flag.String("log-format", "text", "log line encoding: text|json")
		debugAddr   = flag.String("debug-addr", "", "serve /statusz, /debug/tracez and /debug/pprof on this extra listener (off when empty)")
		debugPort   = flag.String("debug-port-file", "", "write the resolved debug listen address to this file")
		quiet       = flag.Bool("quiet", false, "deprecated: same as -log-level error")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmccd"))
		return 0
	}

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmccd:", err)
		return 2
	}
	if *quiet {
		level = obs.LogError
	}
	format, err := obs.ParseLogFormat(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmccd:", err)
		return 2
	}
	log := obs.NewLogger(os.Stderr, level, format).
		With("version", buildinfo.Version())

	cfg := server.Config{
		Shards:        *shards,
		QueueDepth:    *queue,
		IdleTTL:       *idleTTL,
		ChunkAccesses: *chunk,
		SpanRing:      *spanRing,
		Logger:        log,
		SnapshotDir:   *snapDir,
		SnapshotEvery: *snapEvery,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "error", err)
		return 2
	}
	resolved := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(resolved), 0o644); err != nil {
			log.Error("write port file failed", "path", *portFile, "error", err)
			return 2
		}
	}

	cfg.NodeID = *nodeID
	if cfg.NodeID == "" {
		cfg.NodeID = resolved
	}

	// The flight recorder runs whenever it has capacity: finished spans,
	// sampled events, and warn+ log lines land in its ring at zero
	// steady-state allocations, and /debug/flightz?dump=1 serves it live.
	// With a dump path (explicit, or implied by -snapshot-dir) a flusher
	// goroutine persists the ring durably every -flight-every, so even a
	// SIGKILL'd process leaves a recent postmortem file behind.
	var flight *obs.FlightRecorder
	if *flightCap > 0 {
		flight = obs.NewFlightRecorder(*flightCap, cfg.NodeID)
		cfg.Flight = flight
		log.AttachFlight(flight)
	}
	ffile := *flightFile
	if ffile == "" && *snapDir != "" {
		ffile = filepath.Join(*snapDir, "flight.rec")
	}
	if flight == nil {
		ffile = ""
	}

	srv := server.New(cfg)
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	fmt.Printf("rmccd: %s listening on http://%s\n", buildinfo.String("rmccd"), resolved)
	log.Info("listening", "addr", resolved)

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Error("debug listen failed", "addr", *debugAddr, "error", err)
			srv.Close()
			return 2
		}
		debugResolved := dln.Addr().String()
		if *debugPort != "" {
			if err := os.WriteFile(*debugPort, []byte(debugResolved), 0o644); err != nil {
				log.Error("write debug port file failed", "path", *debugPort, "error", err)
				srv.Close()
				return 2
			}
		}
		debugSrv = &http.Server{Handler: srv.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Warn("debug serve stopped", "error", err)
			}
		}()
		log.Info("debug endpoints up", "addr", debugResolved)
	}

	var flightStop, flightDone chan struct{}
	if ffile != "" {
		if err := flight.DumpToFile(ffile); err != nil {
			log.Error("flight dump failed", "path", ffile, "error", err)
			srv.Close()
			return 2
		}
		flightStop = make(chan struct{})
		flightDone = make(chan struct{})
		go func() {
			defer close(flightDone)
			t := time.NewTicker(*flightEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := flight.DumpToFile(ffile); err != nil {
						log.Warn("flight flush failed", "path", ffile, "error", err)
					}
				case <-flightStop:
					return
				}
			}
		}()
		log.Info("flight recorder on", "path", ffile, "cap_bytes", *flightCap, "every", *flightEvery)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	clean := true
	select {
	case sig := <-sigCh:
		log.Info("draining", "signal", sig.String(), "deadline", *drain)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Warn("drain deadline expired; force-cancelling replays")
			srv.ForceCancel()
			// Give cancelled handlers a moment to unwind, then close.
			time.Sleep(200 * time.Millisecond)
			_ = httpSrv.Close()
			clean = false
		}
		cancel()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", "error", err)
			srv.Close()
			return 2
		}
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	// With durable checkpoints on, a graceful exit's last act is a final
	// checkpoint of every live session, so nothing is lost across restarts.
	if *snapDir != "" {
		n := srv.CheckpointAll(context.Background())
		log.Info("final checkpoint", "sessions", n)
	}
	if flightDone != nil {
		close(flightStop)
		<-flightDone
		// One last flush so the dump covers the drain itself.
		if err := flight.DumpToFile(ffile); err != nil {
			log.Warn("final flight flush failed", "path", ffile, "error", err)
		} else {
			log.Info("flight recorder flushed", "path", ffile, "records", flight.Records())
		}
	}
	srv.Close()
	if clean {
		log.Info("shutdown complete")
		return 0
	}
	log.Warn("shutdown forced after drain deadline")
	return 1
}
