// Command rmccsim runs one secure-memory simulation: a workload, a counter
// scheme, a protection mode, and a driver (lifetime or detailed), printing
// the result summary.
//
// Examples:
//
//	rmccsim -workload canneal -mode rmcc -driver lifetime -accesses 5000000
//	rmccsim -workload pageRank -mode baseline -scheme sc64 -driver detailed
//	rmccsim -cpuprofile cpu.out -workload BFS -driver detailed
//	rmccsim -list
//
// See docs/PERFORMANCE.md for the profiling workflow (-cpuprofile,
// -memprofile, -pprof).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rmcc"
	"rmcc/internal/buildinfo"
	"rmcc/internal/obs"
)

func main() {
	var (
		name       = flag.String("workload", "canneal", "workload name (see -list)")
		list       = flag.Bool("list", false, "list workloads and exit")
		sizeStr    = flag.String("size", "small", "workload scale: test|small|full")
		modeStr    = flag.String("mode", "rmcc", "protection: nonsecure|baseline|rmcc")
		schemeStr  = flag.String("scheme", "morphable", "counters: sgx|sc64|morphable")
		driver     = flag.String("driver", "lifetime", "simulation driver: lifetime|detailed")
		accesses   = flag.Uint64("accesses", 5_000_000, "lifetime accesses / detailed window")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		aesNS      = flag.Int64("aes", 15, "AES latency in ns (detailed driver)")
		cores      = flag.Int("cores", 1, "cores (detailed driver; graph kernels shard)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		metricsOut  = flag.String("metrics-out", "", "write run metrics to this file (.json for JSON, else Prometheus text; - for stdout)")
		traceOut    = flag.String("trace-out", "", "write the per-access event trace (JSON Lines) to this file (- for stdout)")
		traceCap    = flag.Int("trace-cap", obs.DefaultTracerCap, "event-trace ring capacity (newest N events retained)")
		manifestOut = flag.String("manifest-out", "", "write the run manifest (JSON) to this file")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmccsim"))
		return
	}

	if *list {
		fmt.Println(strings.Join(rmcc.WorkloadNames(), "\n"))
		return
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "rmccsim: pprof server: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rmccsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rmccsim:", err)
			}
		}()
	}

	size, err := parseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	scheme, err := parseScheme(*schemeStr)
	if err != nil {
		fatal(err)
	}
	w, ok := rmcc.WorkloadByName(size, *seed, *name)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q (use -list)", *name))
	}

	// Observability: one registry/tracer per run, attached through the
	// driver config and exported after the run completes.
	var (
		reg *obs.Registry
		tr  *obs.Tracer
	)
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	if *traceOut != "" {
		tr = obs.NewTracer(*traceCap)
	}
	manifest := obs.NewManifest("rmccsim", map[string]any{
		"workload": *name, "size": *sizeStr, "mode": *modeStr,
		"scheme": *schemeStr, "driver": *driver, "accesses": *accesses,
		"aes_ns": *aesNS, "cores": *cores,
	})
	manifest.Seed = *seed
	manifest.GoMaxProcs = runtime.GOMAXPROCS(0)
	manifest.Notes["workload"] = *name
	manifest.Notes["driver"] = *driver
	manifest.Notes["mode"] = *modeStr
	manifest.Notes["scheme"] = *schemeStr
	started := time.Now()
	manifest.Started = started.UTC().Format(time.RFC3339)

	engCfg := rmcc.DefaultEngineConfig(mode, scheme)
	switch *driver {
	case "lifetime":
		cfg := rmcc.DefaultLifetimeConfig(engCfg)
		cfg.MaxAccesses = *accesses
		cfg.Seed = *seed
		cfg.Metrics = reg
		cfg.Tracer = tr
		res := rmcc.RunLifetime(w, cfg)
		printLifetime(res)
		e := res.Engine
		manifest.Headline["accesses"] = float64(res.Accesses)
		manifest.Headline["ctr_miss_rate"] = e.CtrMissRate()
		manifest.Headline["memo_hit_rate_on_misses"] = e.MemoHitRateOnMisses()
		manifest.Headline["memo_hit_rate_all"] = e.MemoHitRateAll()
		manifest.Headline["accelerated_rate"] = e.AcceleratedRate()
		manifest.Headline["total_traffic_blocks"] = float64(e.TotalTraffic())
		manifest.Headline["max_counter"] = float64(res.MaxCounter)
	case "detailed":
		cfg := rmcc.DefaultDetailedConfig(engCfg)
		cfg.Seed = *seed
		cfg.Cores = *cores
		cfg.AESLat = *aesNS * 1000
		cfg.MeasureAccesses = *accesses
		cfg.Metrics = reg
		cfg.Tracer = tr
		res := rmcc.RunDetailed(w, cfg)
		printDetailed(res)
		manifest.Headline["ipc"] = res.IPC
		manifest.Headline["llc_misses"] = float64(res.LLCMisses)
		manifest.Headline["avg_miss_latency_ns"] = res.AvgMissLatencyNS
		manifest.Headline["ctr_miss_rate"] = res.Engine.CtrMissRate()
		manifest.Headline["memo_hit_rate_on_misses"] = res.Engine.MemoHitRateOnMisses()
	default:
		fatal(fmt.Errorf("unknown driver %q", *driver))
	}
	manifest.WallClockSeconds = time.Since(started).Seconds()

	if reg != nil {
		if err := reg.WriteFile(*metricsOut); err != nil {
			fatal(fmt.Errorf("write metrics: %w", err))
		}
	}
	if tr != nil {
		if err := tr.WriteFile(*traceOut); err != nil {
			fatal(fmt.Errorf("write trace: %w", err))
		}
	}
	if *manifestOut != "" {
		if err := manifest.WriteFile(*manifestOut); err != nil {
			fatal(fmt.Errorf("write manifest: %w", err))
		}
	}
}

func printLifetime(res rmcc.LifetimeResult) {
	e := res.Engine
	fmt.Printf("workload            %s\n", res.Workload)
	fmt.Printf("accesses            %d\n", res.Accesses)
	fmt.Printf("LLC miss reads      %d\n", res.LLCMissReads)
	fmt.Printf("LLC miss writes     %d\n", res.LLCMissWrites)
	fmt.Printf("ctr miss rate       %.1f%%\n", 100*e.CtrMissRate())
	fmt.Printf("memo hit (misses)   %.1f%%\n", 100*e.MemoHitRateOnMisses())
	fmt.Printf("memo hit (all)      %.1f%%\n", 100*e.MemoHitRateAll())
	fmt.Printf("accelerated misses  %.1f%%\n", 100*e.AcceleratedRate())
	fmt.Printf("coverage/value      %.0f blocks\n", res.CoveragePerValue)
	fmt.Printf("total traffic       %d blocks\n", e.TotalTraffic())
	fmt.Printf("overhead (L0/L1)    %d / %d blocks\n", e.OverheadL0Blocks, e.OverheadL1Blocks)
	fmt.Printf("baseline overflows  %d\n", e.BaselineOverflows)
	fmt.Printf("max counter         %d\n", res.MaxCounter)
	fmt.Printf("TLB miss/LLC miss   4KB %.2f, 2MB %.3f\n",
		float64(res.TLB4KMisses)/nz(res.LLCMissReads), float64(res.TLB2MMisses)/nz(res.LLCMissReads))
}

func printDetailed(res rmcc.DetailedResult) {
	fmt.Printf("workload            %s\n", res.Workload)
	fmt.Printf("instructions        %d\n", res.Instructions)
	fmt.Printf("IPC                 %.3f\n", res.IPC)
	fmt.Printf("window              %.3f ms\n", float64(res.WindowTime)/1e9)
	fmt.Printf("LLC misses          %d\n", res.LLCMisses)
	fmt.Printf("avg miss latency    %.1f ns\n", res.AvgMissLatencyNS)
	fmt.Printf("DRAM utilization    %.1f%%\n", 100*res.DRAM.Utilization(res.WindowTime))
	fmt.Printf("ctr miss rate       %.1f%%\n", 100*res.Engine.CtrMissRate())
	fmt.Printf("memo hit (misses)   %.1f%%\n", 100*res.Engine.MemoHitRateOnMisses())
}

func nz(v uint64) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}

func parseSize(s string) (rmcc.Size, error) {
	switch s {
	case "test":
		return rmcc.SizeTest, nil
	case "small":
		return rmcc.SizeSmall, nil
	case "full":
		return rmcc.SizeFull, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func parseMode(s string) (rmcc.Mode, error) {
	switch s {
	case "nonsecure":
		return rmcc.ModeNonSecure, nil
	case "baseline":
		return rmcc.ModeBaseline, nil
	case "rmcc":
		return rmcc.ModeRMCC, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func parseScheme(s string) (rmcc.Scheme, error) {
	switch s {
	case "sgx":
		return rmcc.SchemeSGX, nil
	case "sc64":
		return rmcc.SchemeSC64, nil
	case "morphable":
		return rmcc.SchemeMorphable, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmccsim:", err)
	os.Exit(2)
}
