// Command rmcc-trace records workload access streams to compact trace
// files and inspects or replays them through the lifetime simulator —
// the Pin-trace role in the paper's methodology.
//
// Examples:
//
//	rmcc-trace -record -workload canneal -n 1000000 -o canneal.rmtr
//	rmcc-trace -info canneal.rmtr
//	rmcc-trace -replay canneal.rmtr -mode rmcc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rmcc"
	"rmcc/internal/buildinfo"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/trace"
)

func main() {
	var (
		record  = flag.Bool("record", false, "record a workload trace")
		info    = flag.String("info", "", "print a trace file's summary")
		replay  = flag.String("replay", "", "replay a trace through the lifetime simulator")
		name    = flag.String("workload", "canneal", "workload to record")
		sizeStr = flag.String("size", "small", "workload scale: test|small|full")
		n       = flag.Uint64("n", 1_000_000, "accesses to record / replay")
		seed    = flag.Uint64("seed", 1, "record seed")
		out     = flag.String("o", "trace.rmtr", "output file for -record")
		modeStr = flag.String("mode", "rmcc", "replay protection: nonsecure|baseline|rmcc")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmcc-trace"))
		return
	}

	switch {
	case *record:
		size := parseSize(*sizeStr)
		w, ok := rmcc.WorkloadByName(size, *seed, *name)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *name))
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		count, err := trace.Record(w, *seed, *n, f)
		if err != nil {
			fatal(err)
		}
		st, _ := f.Stat()
		fmt.Printf("recorded %d accesses of %s to %s (%.1f MB, %.2f B/access)\n",
			count, w.Name(), *out, float64(st.Size())/1e6, float64(st.Size())/float64(count))

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		summarize(f)

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		rep, err := trace.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		mode := parseMode(*modeStr)
		cfg := sim.DefaultLifetimeConfig(engine.DefaultConfig(mode, counter.Morphable, 0))
		cfg.MaxAccesses = *n
		res := sim.RunLifetime(rep, cfg)
		fmt.Printf("replayed %d accesses of %s under %s\n", res.Accesses, rep.Name(), mode)
		fmt.Printf("ctr miss rate      %.1f%%\n", 100*res.Engine.CtrMissRate())
		fmt.Printf("memo hit (misses)  %.1f%%\n", 100*res.Engine.MemoHitRateOnMisses())
		fmt.Printf("accelerated        %.1f%%\n", 100*res.Engine.AcceleratedRate())

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarize(f *os.File) {
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var count, writes uint64
	var minAddr, maxAddr uint64
	minAddr = ^uint64(0)
	regions := map[uint64]struct{}{}
	for {
		a, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		count++
		if a.Write {
			writes++
		}
		if a.Addr < minAddr {
			minAddr = a.Addr
		}
		if a.Addr > maxAddr {
			maxAddr = a.Addr
		}
		regions[a.Addr>>21] = struct{}{}
	}
	fmt.Printf("workload   %s\n", r.Name())
	fmt.Printf("accesses   %d (%.1f%% writes)\n", count, 100*float64(writes)/float64(count))
	fmt.Printf("addr range [%#x, %#x]\n", minAddr, maxAddr)
	fmt.Printf("2MB pages  %d (~%d MB touched)\n", len(regions), len(regions)*2)
}

func parseSize(s string) rmcc.Size {
	switch s {
	case "test":
		return rmcc.SizeTest
	case "full":
		return rmcc.SizeFull
	default:
		return rmcc.SizeSmall
	}
}

func parseMode(s string) engine.Mode {
	switch s {
	case "nonsecure":
		return engine.NonSecure
	case "baseline":
		return engine.Baseline
	default:
		return engine.RMCC
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmcc-trace:", err)
	os.Exit(2)
}
