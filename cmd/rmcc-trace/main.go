// Command rmcc-trace records workload access streams to compact trace
// files and inspects or replays them through the lifetime simulator —
// the Pin-trace role in the paper's methodology.
//
// It also converts between the two replay wire encodings: -encode turns
// an NDJSON access stream (the rmccd replay body format) into an RMTR
// trace, -decode turns a trace back into NDJSON — so any tooling that
// speaks one format can feed the other.
//
// Examples:
//
//	rmcc-trace -record -workload canneal -n 1000000 -o canneal.rmtr
//	rmcc-trace -info canneal.rmtr
//	rmcc-trace -replay canneal.rmtr -mode rmcc
//	rmcc-trace -encode accesses.ndjson -label canneal -o canneal.rmtr
//	rmcc-trace -decode canneal.rmtr            # NDJSON on stdout
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"rmcc"
	"rmcc/internal/buildinfo"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/server"
	"rmcc/internal/sim"
	"rmcc/internal/trace"
	"rmcc/internal/workload"
)

func main() {
	var (
		record  = flag.Bool("record", false, "record a workload trace")
		info    = flag.String("info", "", "print a trace file's summary")
		replay  = flag.String("replay", "", "replay a trace through the lifetime simulator")
		name    = flag.String("workload", "canneal", "workload to record")
		sizeStr = flag.String("size", "small", "workload scale: test|small|full")
		n       = flag.Uint64("n", 1_000_000, "accesses to record / replay")
		seed    = flag.Uint64("seed", 1, "record seed")
		encode  = flag.String("encode", "", "convert an NDJSON access stream (file, or - for stdin) to an RMTR trace at -o")
		decode  = flag.String("decode", "", "convert an RMTR trace to NDJSON (stdout unless -o is set)")
		label   = flag.String("label", "ndjson", "stream name stored in the trace header for -encode")
		out     = flag.String("o", "trace.rmtr", "output file for -record/-encode/-decode")
		modeStr = flag.String("mode", "rmcc", "replay protection: nonsecure|baseline|rmcc")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmcc-trace"))
		return
	}

	switch {
	case *record:
		size := parseSize(*sizeStr)
		w, ok := rmcc.WorkloadByName(size, *seed, *name)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *name))
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		count, err := trace.Record(w, *seed, *n, f)
		if err != nil {
			fatal(err)
		}
		st, _ := f.Stat()
		fmt.Printf("recorded %d accesses of %s to %s (%.1f MB, %.2f B/access)\n",
			count, w.Name(), *out, float64(st.Size())/1e6, float64(st.Size())/float64(count))

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		summarize(f)

	case *encode != "":
		in := os.Stdin
		if *encode != "-" {
			f, err := os.Open(*encode)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			in = f
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		count, err := encodeNDJSON(in, f, *label)
		if err != nil {
			fatal(err)
		}
		st, _ := f.Stat()
		fmt.Fprintf(os.Stderr, "encoded %d accesses to %s (%.2f B/access)\n",
			count, *out, float64(st.Size())/float64(count))

	case *decode != "":
		f, err := os.Open(*decode)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// NDJSON goes to stdout unless -o was given explicitly (the
		// -record default "trace.rmtr" must not capture decode output).
		dst := io.Writer(os.Stdout)
		outSet := false
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "o" {
				outSet = true
			}
		})
		if outSet {
			of, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer of.Close()
			dst = of
		}
		if _, err := decodeToNDJSON(f, dst); err != nil {
			fatal(err)
		}

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		rep, err := trace.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		mode := parseMode(*modeStr)
		cfg := sim.DefaultLifetimeConfig(engine.DefaultConfig(mode, counter.Morphable, 0))
		cfg.MaxAccesses = *n
		res := sim.RunLifetime(rep, cfg)
		fmt.Printf("replayed %d accesses of %s under %s\n", res.Accesses, rep.Name(), mode)
		fmt.Printf("ctr miss rate      %.1f%%\n", 100*res.Engine.CtrMissRate())
		fmt.Printf("memo hit (misses)  %.1f%%\n", 100*res.Engine.MemoHitRateOnMisses())
		fmt.Printf("accelerated        %.1f%%\n", 100*res.Engine.AcceleratedRate())

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// encodeNDJSON converts an NDJSON access stream into an RMTR trace named
// label, using the same strict per-line decoder rmccd applies to replay
// bodies. Gaps above the RMTR 7-bit field are clamped, as on the wire.
func encodeNDJSON(in io.Reader, out io.Writer, label string) (uint64, error) {
	bw := bufio.NewWriterSize(out, 256<<10)
	tw, err := trace.NewWriter(bw, label)
	if err != nil {
		return 0, err
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var count, line uint64
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		a, err := server.DecodeAccess(raw)
		if err != nil {
			return count, fmt.Errorf("line %d: %w", line, err)
		}
		if err := tw.Append(a); err != nil {
			return count, err
		}
		count++
	}
	if err := sc.Err(); err != nil {
		return count, err
	}
	if err := tw.Flush(); err != nil {
		return count, err
	}
	return count, bw.Flush()
}

// decodeToNDJSON renders an RMTR trace as NDJSON, one AccessRecord per
// line, byte-identical to json.Marshal of the record (omitempty fields
// included) so round-trips are exact.
func decodeToNDJSON(in io.Reader, out io.Writer) (uint64, error) {
	tr, err := trace.NewReader(in)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(out, 256<<10)
	buf := make([]byte, 0, 64)
	var count uint64
	for {
		a, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return count, err
		}
		buf = appendAccessNDJSON(buf[:0], a)
		if _, err := bw.Write(buf); err != nil {
			return count, err
		}
		count++
	}
	return count, bw.Flush()
}

// appendAccessNDJSON formats one access exactly as json.Marshal formats
// server.AccessRecord — "write" and "gap" omitted when zero.
func appendAccessNDJSON(b []byte, a workload.Access) []byte {
	b = append(b, `{"addr":`...)
	b = strconv.AppendUint(b, a.Addr, 10)
	if a.Write {
		b = append(b, `,"write":true`...)
	}
	if a.Gap != 0 {
		b = append(b, `,"gap":`...)
		b = strconv.AppendUint(b, uint64(a.Gap), 10)
	}
	return append(b, '}', '\n')
}

func summarize(f *os.File) {
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var count, writes uint64
	var minAddr, maxAddr uint64
	minAddr = ^uint64(0)
	regions := map[uint64]struct{}{}
	for {
		a, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		count++
		if a.Write {
			writes++
		}
		if a.Addr < minAddr {
			minAddr = a.Addr
		}
		if a.Addr > maxAddr {
			maxAddr = a.Addr
		}
		regions[a.Addr>>21] = struct{}{}
	}
	fmt.Printf("workload   %s\n", r.Name())
	fmt.Printf("accesses   %d (%.1f%% writes)\n", count, 100*float64(writes)/float64(count))
	fmt.Printf("addr range [%#x, %#x]\n", minAddr, maxAddr)
	fmt.Printf("2MB pages  %d (~%d MB touched)\n", len(regions), len(regions)*2)
}

func parseSize(s string) rmcc.Size {
	switch s {
	case "test":
		return rmcc.SizeTest
	case "full":
		return rmcc.SizeFull
	default:
		return rmcc.SizeSmall
	}
}

func parseMode(s string) engine.Mode {
	switch s {
	case "nonsecure":
		return engine.NonSecure
	case "baseline":
		return engine.Baseline
	default:
		return engine.RMCC
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmcc-trace:", err)
	os.Exit(2)
}
