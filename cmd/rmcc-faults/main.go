// Command rmcc-faults runs a seeded fault-injection campaign against the
// secure memory engine: it replays a workload, injects a reproducible
// schedule of physical attacks and hardware faults (ciphertext flips,
// counter and MAC tampering, memo-table poisoning, dropped writebacks,
// power loss, counter exhaustion), and scores detection and recovery
// under the selected policy.
//
// Examples:
//
//	rmcc-faults -workload canneal -seed 7
//	rmcc-faults -workload pageRank -recovery retry -kinds ciphertext-flip,mac-tamper
//	rmcc-faults -list-kinds
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rmcc"
	"rmcc/internal/buildinfo"
	"rmcc/internal/obs"
)

func main() {
	var (
		name      = flag.String("workload", "canneal", "workload name")
		sizeStr   = flag.String("size", "test", "workload scale: test|small|full")
		schemeStr = flag.String("scheme", "morphable", "counters: sgx|sc64|morphable")
		recStr    = flag.String("recovery", "rekey", "policy: failstop|retry|rekey")
		kindsStr  = flag.String("kinds", "", "comma-separated fault kinds (default: all)")
		accesses  = flag.Uint64("accesses", 300_000, "workload accesses to replay")
		seed      = flag.Uint64("seed", 7, "campaign seed (schedule + targets)")
		listKinds = flag.Bool("list-kinds", false, "list fault kinds and exit")
		flightOut = flag.String("flight-out", "", "write a flight-recorder dump of the campaign's engine events to this file (rmcc-top -flight renders it)")
		verbose   = flag.Bool("v", false, "print every fault outcome")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmcc-faults"))
		return
	}

	if *listKinds {
		for _, k := range rmcc.AllFaultKinds() {
			tag := "must detect"
			if k.Benign() {
				tag = "benign control"
			}
			fmt.Printf("%-22s %s\n", k, tag)
		}
		return
	}

	size, err := parseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}
	scheme, err := parseScheme(*schemeStr)
	if err != nil {
		fatal(err)
	}
	policy, err := parseRecovery(*recStr)
	if err != nil {
		fatal(err)
	}
	kinds, err := parseKinds(*kindsStr)
	if err != nil {
		fatal(err)
	}
	w, ok := rmcc.WorkloadByName(size, *seed, *name)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *name))
	}

	engCfg := rmcc.DefaultEngineConfig(rmcc.ModeRMCC, scheme)
	engCfg.Recovery = policy
	lifeCfg := rmcc.DefaultLifetimeConfig(engCfg)
	lifeCfg.MaxAccesses = *accesses
	lifeCfg.Seed = *seed

	// -flight-out tees every engine event (fault injections included) into
	// a flight-recorder ring and dumps it after the campaign — the same
	// postmortem format a crashed rmccd leaves behind, here as a durable
	// record of what the injector did and when.
	var flight *obs.FlightRecorder
	if *flightOut != "" {
		flight = obs.NewFlightRecorder(1<<20, "rmcc-faults")
		tracer := obs.NewTracer(0)
		tracer.SetSink(flight)
		lifeCfg.Tracer = tracer
	}

	campaign := &rmcc.FaultCampaign{
		Workload: w,
		Lifetime: lifeCfg,
		Schedule: rmcc.NewFaultSchedule(*seed, kinds, *accesses),
	}
	res, err := campaign.Run()
	if err != nil {
		fatal(err)
	}
	if flight != nil {
		if err := flight.DumpToFile(*flightOut); err != nil {
			fatal(fmt.Errorf("write flight dump: %w", err))
		}
		fmt.Printf("flight dump: %s (%d records)\n", *flightOut, flight.Records())
	}

	fmt.Printf("campaign: workload=%s scheme=%v recovery=%v seed=%d accesses=%d\n",
		w.Name(), scheme, policy, *seed, res.Lifetime.Accesses)
	if *verbose {
		for _, fr := range res.Faults {
			fmt.Printf("  %v\n", fr)
		}
	}
	fmt.Println(res.Summary())
	fmt.Println(res.Checker)
	s := res.Lifetime.Engine
	fmt.Printf("engine: rekeys=%d rekey-blocks=%d retries=%d/%d metadata-drops=%d memo-repairs=%d\n",
		s.Rekeys, s.RekeyBlocks, s.RetryRecoveries, s.RetryAttempts,
		s.MetadataCorruptions, s.MemoPoisonRepaired)

	if res.TamperDetected < res.TamperArmed || res.BenignFlagged > 0 {
		fmt.Println("RESULT: FAIL (missed detections or false positives)")
		os.Exit(1)
	}
	fmt.Println("RESULT: PASS")
}

func parseSize(s string) (rmcc.Size, error) {
	switch s {
	case "test":
		return rmcc.SizeTest, nil
	case "small":
		return rmcc.SizeSmall, nil
	case "full":
		return rmcc.SizeFull, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func parseScheme(s string) (rmcc.Scheme, error) {
	switch s {
	case "sgx":
		return rmcc.SchemeSGX, nil
	case "sc64":
		return rmcc.SchemeSC64, nil
	case "morphable":
		return rmcc.SchemeMorphable, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func parseRecovery(s string) (rmcc.RecoveryPolicy, error) {
	switch s {
	case "failstop":
		return rmcc.RecoveryFailStop, nil
	case "retry":
		return rmcc.RecoveryRetryRefetch, nil
	case "rekey":
		return rmcc.RecoveryRekey, nil
	}
	return 0, fmt.Errorf("unknown recovery policy %q", s)
}

func parseKinds(s string) ([]rmcc.FaultKind, error) {
	if s == "" {
		return nil, nil
	}
	byName := make(map[string]rmcc.FaultKind)
	for _, k := range rmcc.AllFaultKinds() {
		byName[k.String()] = k
	}
	var out []rmcc.FaultKind
	for _, part := range strings.Split(s, ",") {
		k, ok := byName[strings.TrimSpace(part)]
		if !ok {
			return nil, fmt.Errorf("unknown fault kind %q (use -list-kinds)", part)
		}
		out = append(out, k)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmcc-faults:", err)
	os.Exit(1)
}
