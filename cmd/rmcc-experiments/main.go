// Command rmcc-experiments regenerates the paper's tables and figures.
//
// Examples:
//
//	rmcc-experiments -quick                      # all figures, scaled down
//	rmcc-experiments -figures figure13,figure14  # just the headline plots
//	rmcc-experiments -workloads canneal,mcf      # subset of benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rmcc"
)

func main() {
	var (
		figures   = flag.String("figures", "all", "comma-separated figure names, or 'all'")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default all)")
		quick     = flag.Bool("quick", false, "scaled-down runs (small workloads, short windows)")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		listFlag  = flag.Bool("list", false, "list figures and exit")
	)
	flag.Parse()

	all := rmcc.Experiments()
	if *listFlag {
		for _, e := range all {
			fmt.Println(e.Name)
		}
		return
	}

	opts := rmcc.DefaultExperimentOptions()
	if *quick {
		opts = rmcc.QuickExperimentOptions()
	}
	opts.Seed = *seed
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	want := map[string]bool{}
	if *figures != "all" {
		for _, f := range strings.Split(*figures, ",") {
			want[strings.TrimSpace(f)] = true
		}
		for f := range want {
			if !known(all, f) {
				fmt.Fprintf(os.Stderr, "rmcc-experiments: unknown figure %q (use -list)\n", f)
				os.Exit(2)
			}
		}
	}

	for _, e := range all {
		if *figures != "all" && !want[e.Name] {
			continue
		}
		start := time.Now()
		table := e.Run(opts)
		fmt.Println(table)
		fmt.Printf("(%s regenerated in %.1fs)\n\n", e.Name, time.Since(start).Seconds())
	}
}

func known(all []struct {
	Name string
	Run  func(rmcc.ExperimentOptions) *rmcc.ResultTable
}, name string) bool {
	for _, e := range all {
		if e.Name == name {
			return true
		}
	}
	return false
}
