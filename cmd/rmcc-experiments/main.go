// Command rmcc-experiments regenerates the paper's tables and figures.
//
// Examples:
//
//	rmcc-experiments -quick                      # all figures, scaled down
//	rmcc-experiments -figures figure13,figure14  # just the headline plots
//	rmcc-experiments -workloads canneal,mcf      # subset of benchmarks
//	rmcc-experiments -quick -json -micro         # machine-readable perf report
//	rmcc-experiments -quick -parallel 8          # eight simulation workers
//
// The -json report (see scripts/bench.sh) carries every figure's rows plus
// in-process micro-benchmarks of the simulator hot paths, and is the format
// the perf-regression harness checks into BENCH_<date>.json.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"testing"
	"time"

	"rmcc"
	"rmcc/internal/buildinfo"
	"rmcc/internal/core"
	"rmcc/internal/crypto/aes"
	"rmcc/internal/crypto/otp"
	"rmcc/internal/obs"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/server"
	"rmcc/internal/trace"
	"rmcc/internal/workload"
)

func main() {
	var (
		figures    = flag.String("figures", "all", "comma-separated figure names, or 'all'")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default all)")
		quick      = flag.Bool("quick", false, "scaled-down runs (small workloads, short windows)")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		listFlag   = flag.Bool("list", false, "list figures and exit")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker pool size (1 = sequential)")
		jsonFlag   = flag.Bool("json", false, "emit a machine-readable report on stdout instead of tables")
		micro      = flag.Bool("micro", false, "also run hot-path micro-benchmarks (AES, engine, memo table)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		metricsOut  = flag.String("metrics-out", "", "write sweep metrics to this file (.json for JSON, else Prometheus text; - for stdout)")
		traceOut    = flag.String("trace-out", "", "write a per-access event trace (JSON Lines) from an instrumented reference run executed after the figures")
		traceCap    = flag.Int("trace-cap", obs.DefaultTracerCap, "event-trace ring capacity (newest N events retained)")
		manifestOut = flag.String("manifest-out", "", "write the run manifest (JSON) to this file")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmcc-experiments"))
		return
	}

	all := rmcc.Experiments()
	if *listFlag {
		for _, e := range all {
			fmt.Println(e.Name)
		}
		return
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "rmcc-experiments: pprof server: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmcc-experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rmcc-experiments: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rmcc-experiments: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rmcc-experiments: %v\n", err)
			}
		}()
	}

	opts := rmcc.DefaultExperimentOptions()
	if *quick {
		opts = rmcc.QuickExperimentOptions()
	}
	opts.Seed = *seed
	opts.Parallelism = *parallel
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	// SIGINT/SIGTERM cancels the sweep: workers stop picking up cells, the
	// current figure returns with its finished cells, and the run exits
	// non-zero instead of simulating for hours after the user gave up.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	opts.Context = ctx

	want := map[string]bool{}
	if *figures != "all" {
		for _, f := range strings.Split(*figures, ",") {
			want[strings.TrimSpace(f)] = true
		}
		for f := range want {
			if !known(all, f) {
				fmt.Fprintf(os.Stderr, "rmcc-experiments: unknown figure %q (use -list)\n", f)
				os.Exit(2)
			}
		}
	}

	report := jsonReport{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Quick:       *quick,
		Seed:        *seed,
		Parallelism: *parallel,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	// Sweep-level observability: one registry for the whole sweep (per-run
	// engine registries would collide across parallel cells), a manifest
	// mirroring the perf report's headline numbers, and — for -trace-out —
	// a per-access trace from an instrumented reference run after the
	// figures complete.
	manifest := obs.NewManifest("rmcc-experiments", map[string]any{
		"figures": *figures, "workloads": *workloads, "quick": *quick,
		"parallel": *parallel, "micro": *micro,
	})
	manifest.Seed = *seed
	manifest.GoMaxProcs = runtime.GOMAXPROCS(0)
	manifest.Notes["figures"] = *figures
	manifest.Notes["quick"] = fmt.Sprintf("%v", *quick)
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}

	start := time.Now()
	manifest.Started = start.UTC().Format(time.RFC3339)
	figuresRun := 0
	for _, e := range all {
		if *figures != "all" && !want[e.Name] {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		figStart := time.Now()
		table := e.Run(opts)
		secs := time.Since(figStart).Seconds()
		if ctx.Err() != nil {
			// The sweep was cancelled mid-figure; its table holds zero
			// values for unfinished cells — don't report it as a result.
			break
		}
		figuresRun++
		manifest.Headline["seconds_"+e.Name] = secs
		if reg != nil {
			reg.Gauge("rmcc_experiments_figure_seconds",
				"wall-clock seconds to regenerate one figure",
				obs.L("figure", e.Name)).Set(secs)
		}
		if *jsonFlag {
			report.Figures = append(report.Figures, toJSONFigure(e.Name, table, secs))
			fmt.Fprintf(os.Stderr, "%s regenerated in %.1fs\n", e.Name, secs)
		} else {
			fmt.Println(table)
			fmt.Printf("(%s regenerated in %.1fs)\n\n", e.Name, secs)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "rmcc-experiments: interrupted; stopping sweep")
		os.Exit(130)
	}
	if *micro {
		report.Micro = microBenchmarks()
		for _, m := range report.Micro {
			manifest.Headline["micro_"+m.Name+"_ns_per_op"] = m.NsPerOp
			manifest.Headline["micro_"+m.Name+"_allocs_per_op"] = float64(m.AllocsPerOp)
			if reg != nil {
				lbl := obs.L("bench", m.Name)
				reg.Gauge("rmcc_experiments_micro_ns_per_op",
					"micro-benchmark nanoseconds per operation", lbl).Set(m.NsPerOp)
				reg.Gauge("rmcc_experiments_micro_allocs_per_op",
					"micro-benchmark heap allocations per operation", lbl).Set(float64(m.AllocsPerOp))
				reg.Gauge("rmcc_experiments_micro_bytes_per_op",
					"micro-benchmark heap bytes per operation", lbl).Set(float64(m.BytesPerOp))
			}
		}
		if !*jsonFlag {
			fmt.Println("Micro-benchmarks (in-process, testing.Benchmark):")
			for _, m := range report.Micro {
				fmt.Printf("  %-28s %10.1f ns/op %6d B/op %4d allocs/op\n",
					m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
			}
		}
	}
	report.TotalSeconds = time.Since(start).Seconds()
	manifest.WallClockSeconds = report.TotalSeconds
	manifest.Headline["total_seconds"] = report.TotalSeconds
	manifest.Headline["figures_run"] = float64(figuresRun)
	if reg != nil {
		reg.Gauge("rmcc_experiments_total_seconds",
			"wall-clock seconds for the whole sweep").Set(report.TotalSeconds)
		reg.Gauge("rmcc_experiments_figures_run",
			"number of figures regenerated").Set(float64(figuresRun))
		reg.Gauge("rmcc_experiments_parallelism",
			"simulation worker pool size").Set(float64(*parallel))
	}
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "rmcc-experiments: %v\n", err)
			os.Exit(1)
		}
	}

	if *traceOut != "" {
		if err := writeReferenceTrace(*traceOut, *traceCap, *seed, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "rmcc-experiments: write trace: %v\n", err)
			os.Exit(1)
		}
	}
	if reg != nil {
		if err := reg.WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "rmcc-experiments: write metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *manifestOut != "" {
		if err := manifest.WriteFile(*manifestOut); err != nil {
			fmt.Fprintf(os.Stderr, "rmcc-experiments: write manifest: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeReferenceTrace runs one instrumented lifetime simulation (RMCC mode,
// Morphable counters, the canneal workload) and writes its per-access event
// trace as JSON Lines. The figure sweep itself cannot carry a tracer — its
// cells run in parallel and the tracer is single-run by design — so the
// trace documents a representative run at the sweep's seed.
func writeReferenceTrace(path string, capacity int, seed uint64, quick bool) error {
	size, accesses := rmcc.SizeSmall, uint64(2_000_000)
	if quick {
		size, accesses = rmcc.SizeTest, 200_000
	}
	w, ok := rmcc.WorkloadByName(size, seed, "canneal")
	if !ok {
		return fmt.Errorf("reference workload canneal unavailable")
	}
	tr := obs.NewTracer(capacity)
	cfg := rmcc.DefaultLifetimeConfig(rmcc.DefaultEngineConfig(rmcc.ModeRMCC, rmcc.SchemeMorphable))
	cfg.MaxAccesses = accesses
	cfg.Seed = seed
	cfg.Tracer = tr
	rmcc.RunLifetime(w, cfg)
	return tr.WriteFile(path)
}

// jsonReport is the schema of the -json perf report consumed by
// scripts/bench.sh and archived as BENCH_<date>.json.
type jsonReport struct {
	Generated    string       `json:"generated"`
	Quick        bool         `json:"quick"`
	Seed         uint64       `json:"seed"`
	Parallelism  int          `json:"parallelism"`
	GoMaxProcs   int          `json:"gomaxprocs"`
	Figures      []jsonFigure `json:"figures,omitempty"`
	Micro        []jsonMicro  `json:"micro,omitempty"`
	TotalSeconds float64      `json:"total_seconds"`
}

type jsonFigure struct {
	Name    string    `json:"name"`
	Title   string    `json:"title"`
	Unit    string    `json:"unit,omitempty"`
	Series  []string  `json:"series"`
	Rows    []jsonRow `json:"rows"`
	Mean    []float64 `json:"mean"`
	Seconds float64   `json:"seconds"`
}

type jsonRow struct {
	Name  string    `json:"name"`
	Cells []float64 `json:"cells"`
}

type jsonMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func toJSONFigure(name string, t *rmcc.ResultTable, secs float64) jsonFigure {
	f := jsonFigure{
		Name:    name,
		Title:   t.Title,
		Unit:    t.Unit,
		Series:  t.Series,
		Mean:    t.Mean(),
		Seconds: secs,
	}
	for _, r := range t.Rows {
		f.Rows = append(f.Rows, jsonRow{Name: r.Name, Cells: r.Cells})
	}
	return f
}

// sinks defeat dead-code elimination in the micro-benchmark loops.
var (
	sinkHi, sinkLo uint64
	sinkBuf        [16]byte
)

// microBenchmarks measures the simulator hot paths in-process via
// testing.Benchmark, so the perf report records ns/op and allocs/op for the
// exact binary being shipped: the T-table AES fast path and its byte-wise
// reference (the speedup denominator), the engine read paths, and the
// memoization-table lookup.
func microBenchmarks() []jsonMicro {
	key := []byte("0123456789abcdef")
	c := aes.MustNew(key)
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"aes_encrypt_ttable", func(b *testing.B) {
			var hi, lo uint64 = 0x0011223344556677, 0x8899aabbccddeeff
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hi, lo = c.EncryptWords(hi, lo)
			}
			sinkHi, sinkLo = hi, lo
		}},
		{"aes_encrypt_reference", func(b *testing.B) {
			var buf [16]byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.EncryptReference(buf[:], buf[:])
			}
			sinkBuf = buf
		}},
		{"engine_read_hit", func(b *testing.B) {
			mc := engine.New(engine.DefaultConfig(engine.RMCC, counter.Morphable, 64<<20))
			mc.Read(0x100000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mc.Read(0x100000 + uint64(i&63)*64)
			}
		}},
		{"engine_read_miss", func(b *testing.B) {
			cfg := engine.DefaultConfig(engine.RMCC, counter.Morphable, 256<<20)
			cfg.CounterCacheBytes = 8 << 10
			mc := engine.New(cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mc.Read(uint64(i) * (8 << 10) % (128 << 20))
			}
		}},
		// The two replay-wire decoders, one 4096-access batch per op so
		// their ns/op compare directly: NDJSON line scanning vs binary
		// frame decoding of the same access stream.
		{"replay_decode_ndjson", func(b *testing.B) {
			lines := wireBatchNDJSON()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, line := range lines {
					if _, err := server.DecodeAccess(line); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"replay_decode_binary", func(b *testing.B) {
			frame := wireBatchFrame()
			src := bytes.NewReader(frame)
			fr := trace.NewFrameReader(src)
			batch := make([]workload.Access, 0, trace.DefaultFrameAccesses)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Reset(frame)
				var err error
				if batch, err = fr.DecodeInto(batch); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The flight-recorder hot path: one finished span into the crash
		// ring per op. The benchdiff alloc gate holds this at zero — the
		// recorder rides every request span, so a regression here taxes
		// the whole service.
		{"flight_record", func(b *testing.B) {
			fr := obs.NewFlightRecorder(1<<20, "bench")
			span := obs.SpanRecord{
				ID: 1, Parent: 0, TraceHi: 0xaaaa, TraceLo: 0xbbbb,
				Name: "engine-step", Detail: "s-0123456789abcdef",
				Start: 1234, Duration: 5678,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				span.ID = uint64(i)
				fr.RecordSpan(span)
			}
		}},
		{"memo_lookup", func(b *testing.B) {
			unit := otp.MustNewUnit(otp.DeriveKeys([16]byte{1}, 16))
			cfg := core.DefaultConfig()
			cfg.OverMaxThreshold = 1 << 40
			tbl := core.MustNewTable(cfg, unit.CounterOnly, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := uint64(i) & 127
				if i&1 == 1 {
					v += 1 << 20
				}
				tbl.Lookup(v, true)
			}
		}},
	}
	out := make([]jsonMicro, 0, len(benches))
	for _, mb := range benches {
		r := testing.Benchmark(mb.fn)
		out = append(out, jsonMicro{
			Name:        mb.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}

// wireBatch captures one frame's worth of canneal accesses for the
// replay-decode micros.
func wireBatch() []workload.Access {
	w, _ := rmcc.WorkloadByName(rmcc.SizeTest, 1, "canneal")
	accs := make([]workload.Access, 0, trace.DefaultFrameAccesses)
	w.Run(1, func(a workload.Access) bool {
		accs = append(accs, a)
		return len(accs) < trace.DefaultFrameAccesses
	})
	return accs
}

func wireBatchNDJSON() [][]byte {
	accs := wireBatch()
	lines := make([][]byte, len(accs))
	for i, a := range accs {
		lines[i], _ = json.Marshal(server.AccessRecord{Addr: a.Addr, Write: a.Write, Gap: a.Gap})
	}
	return lines
}

func wireBatchFrame() []byte {
	var buf bytes.Buffer
	fw := trace.NewFrameWriter(&buf, trace.DefaultFrameAccesses)
	for _, a := range wireBatch() {
		if err := fw.Append(a); err != nil {
			panic(err)
		}
	}
	if err := fw.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func known(all []struct {
	Name string
	Run  func(rmcc.ExperimentOptions) *rmcc.ResultTable
}, name string) bool {
	for _, e := range all {
		if e.Name == name {
			return true
		}
	}
	return false
}
