// Command rmcc-benchdiff compares two perf reports produced by
// rmcc-experiments -json (the format scripts/bench.sh archives as
// BENCH_<date>.json) and fails when the current run regresses against the
// baseline:
//
//   - a figure present in both reports got more than -threshold (default
//     25%) slower in wall-clock seconds, or
//   - a micro-benchmark present in both reports started allocating where
//     the baseline did not (the engine read-hit path must stay 0
//     allocs/op).
//
// Figures or micro-benchmarks present in only one report are listed but
// never fail the diff — PRs add and remove figures.
//
// Usage:
//
//	rmcc-benchdiff -baseline BENCH_2026-08-06.json -current /tmp/fresh.json
//
// Exit status: 0 when no regression, 1 on regression, 2 on usage/parse
// errors. See scripts/bench_diff.sh for the CI entry point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rmcc/internal/buildinfo"
)

type report struct {
	Generated    string   `json:"generated"`
	Quick        bool     `json:"quick"`
	Seed         uint64   `json:"seed"`
	Figures      []figure `json:"figures"`
	Micro        []micro  `json:"micro"`
	TotalSeconds float64  `json:"total_seconds"`
}

type figure struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

type micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline perf report (BENCH_<date>.json)")
		currentPath  = flag.String("current", "", "fresh perf report to compare")
		threshold    = flag.Float64("threshold", 0.25, "relative wall-clock slowdown that fails the diff")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmcc-benchdiff"))
		return
	}
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "rmcc-benchdiff: -baseline and -current are required")
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmcc-benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmcc-benchdiff:", err)
		os.Exit(2)
	}

	regressions := 0

	baseFigs := map[string]figure{}
	for _, f := range base.Figures {
		baseFigs[f.Name] = f
	}
	fmt.Printf("%-24s %12s %12s %8s\n", "figure", "base (s)", "current (s)", "delta")
	for _, f := range cur.Figures {
		b, ok := baseFigs[f.Name]
		if !ok {
			fmt.Printf("%-24s %12s %12.2f %8s  (new figure, not compared)\n", f.Name, "-", f.Seconds, "-")
			continue
		}
		delete(baseFigs, f.Name)
		rel := 0.0
		if b.Seconds > 0 {
			rel = f.Seconds/b.Seconds - 1
		}
		mark := ""
		if rel > *threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-24s %12.2f %12.2f %+7.1f%%%s\n", f.Name, b.Seconds, f.Seconds, 100*rel, mark)
	}
	for name := range baseFigs {
		fmt.Printf("%-24s %12.2f %12s %8s  (removed figure, not compared)\n",
			name, baseFigs[name].Seconds, "-", "-")
	}

	baseMicro := map[string]micro{}
	for _, m := range base.Micro {
		baseMicro[m.Name] = m
	}
	if len(cur.Micro) > 0 {
		fmt.Printf("\n%-24s %12s %12s %10s\n", "micro", "base ns/op", "cur ns/op", "allocs")
	}
	for _, m := range cur.Micro {
		b, ok := baseMicro[m.Name]
		if !ok {
			fmt.Printf("%-24s %12s %12.1f %10d  (new bench, not compared)\n", m.Name, "-", m.NsPerOp, m.AllocsPerOp)
			continue
		}
		mark := ""
		if b.AllocsPerOp == 0 && m.AllocsPerOp > 0 {
			mark = fmt.Sprintf("  REGRESSION (allocates %d/op, baseline 0)", m.AllocsPerOp)
			regressions++
		}
		fmt.Printf("%-24s %12.1f %12.1f %6d->%-3d%s\n", m.Name, b.NsPerOp, m.NsPerOp, b.AllocsPerOp, m.AllocsPerOp, mark)
	}

	if regressions > 0 {
		fmt.Printf("\n%d regression(s) beyond %.0f%% threshold\n", regressions, 100**threshold)
		os.Exit(1)
	}
	fmt.Println("\nno regressions")
}

func load(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("parse %s: %w", path, err)
	}
	return r, nil
}
