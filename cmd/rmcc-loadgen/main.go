// Command rmcc-loadgen benchmarks an rmccd daemon: it creates N sessions,
// replays a workload through every one concurrently, and reports
// per-session and aggregate service throughput plus client-observed
// replay-latency percentiles. With -check it also runs the same
// simulation directly in-process and verifies the service returned
// bit-identical engine stats — the no-behavioral-drift guarantee of the
// service layer.
//
// The replay wire is selectable: -wire=workload uses the server-side
// generator (no body), -wire=ndjson streams the accesses as NDJSON, and
// -wire=binary streams them as length-prefixed RMTR frames — the
// high-throughput path, several bytes per access instead of a JSON
// object. -trace-file replays a recorded rmcc-trace file instead of a
// generator stream (and defaults the wire to binary).
//
// Examples:
//
//	rmcc-loadgen -addr http://127.0.0.1:8077 -sessions 8 -workload canneal -accesses 50000
//	rmcc-loadgen -addr http://$ADDR -sessions 8 -size test -check -metrics-out -
//	rmcc-loadgen -wire ndjson -sessions 4      # exercise the streaming-upload path
//	rmcc-loadgen -wire binary -sessions 4      # binary frames from the local generator
//	rmcc-loadgen -trace-file canneal.rmtr -check  # replay a recorded trace (binary wire)
//	rmcc-loadgen -replays 16 -accesses 5000    # 16 latency samples per session
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"flag"

	"rmcc"
	"rmcc/internal/buildinfo"
	"rmcc/internal/obs"
	"rmcc/internal/server"
	"rmcc/internal/server/client"
	"rmcc/internal/trace"
	"rmcc/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8077", "rmccd base URL (scheme optional)")
		sessions   = flag.Int("sessions", 8, "concurrent sessions to drive")
		name       = flag.String("workload", "canneal", "workload to replay")
		sizeStr    = flag.String("size", "test", "workload scale: test|small|full")
		modeStr    = flag.String("mode", "rmcc", "protection: nonsecure|baseline|rmcc")
		schemeStr  = flag.String("scheme", "morphable", "counters: sgx|sc64|morphable")
		accesses   = flag.Uint64("accesses", 50_000, "accesses to replay per request")
		replays    = flag.Int("replays", 1, "sequential replay requests per session (each a latency sample; the stream continues across them)")
		seed       = flag.Uint64("seed", 1, "simulation seed (all sessions share it)")
		wireStr    = flag.String("wire", "workload", "replay wire: workload (server-side generator) | ndjson | binary (RMTR frames)")
		traceFile  = flag.String("trace-file", "", "replay this rmcc-trace file instead of a generator stream (defaults -wire to binary)")
		ndjson     = flag.Bool("ndjson", false, "deprecated alias for -wire ndjson")
		check      = flag.Bool("check", false, "run the same simulation in-process and require bit-identical engine stats")
		crashAfter = flag.Uint64("crash-after", 0, "SIGKILL -crash-pid once this many aggregate accesses have applied (crash-recovery testing; exit 0 means the kill fired)")
		crashPID   = flag.Int("crash-pid", 0, "daemon PID to kill for -crash-after")
		resume     = flag.Bool("resume", false, "adopt the daemon's existing sessions and top each up to -accesses×-replays total accesses instead of creating new ones")
		keep       = flag.Bool("keep", false, "leave the sessions on the daemon instead of deleting them")
		timeout    = flag.Duration("timeout", 5*time.Minute, "overall deadline")
		metricsOut = flag.String("metrics-out", "", "scrape /metrics after the run to this file (- for stdout), with client-side latency quantiles appended")
		traceIDs   = flag.String("trace-ids-out", "", "write one \"session trace-id\" line per session to this file (- for stdout)")
		logLevel   = flag.String("log-level", "warn", "minimum log level: debug|info|warn|error")
		logFormat  = flag.String("log-format", "text", "log line encoding: text|json")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmcc-loadgen"))
		return
	}
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	format, err := obs.ParseLogFormat(*logFormat)
	if err != nil {
		fatal(err)
	}
	lg := obs.NewLogger(os.Stderr, level, format)
	if *replays < 1 {
		*replays = 1
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(base)
	if err := c.Health(ctx); err != nil {
		fatal(fmt.Errorf("daemon not healthy at %s: %w", base, err))
	}

	// Resolve the replay wire. -ndjson stays as a compatibility alias;
	// -trace-file selects the binary wire unless one was named explicitly.
	wire := *wireStr
	wireSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "wire" {
			wireSet = true
		}
	})
	if *ndjson {
		if wireSet && wire != "ndjson" {
			fatal(fmt.Errorf("-ndjson conflicts with -wire %s", wire))
		}
		wire = "ndjson"
	}
	if *traceFile != "" && !wireSet && wire == "workload" {
		wire = "binary"
	}
	switch wire {
	case "workload", "ndjson", "binary":
	default:
		fatal(fmt.Errorf("unknown -wire %q (want workload, ndjson, or binary)", wire))
	}
	if *traceFile != "" && wire == "workload" {
		fatal(fmt.Errorf("-trace-file needs a body wire (-wire ndjson or binary)"))
	}

	// Load the replay source once, up front. A trace file provides both
	// the raw RMTR bytes (reframed per binary replay without re-decoding)
	// and the decoded stream (NDJSON wire, footprint, -check); generator
	// streams are captured locally for the body wires.
	var (
		stream     []workload.Access // decoded accesses for the body wires
		traceBytes []byte            // raw RMTR file, binary trace replays
		rep        *trace.Replay     // loaded trace (nil without -trace-file)
	)
	if *traceFile != "" {
		b, err := os.ReadFile(*traceFile)
		if err != nil {
			fatal(err)
		}
		traceBytes = b
		if rep, err = trace.Load(bytes.NewReader(traceBytes)); err != nil {
			fatal(err)
		}
		if wire == "ndjson" {
			stream = make([]workload.Access, 0, rep.Len())
			rep.Run(*seed, func(a workload.Access) bool {
				stream = append(stream, a)
				return len(stream) < rep.Len()
			})
		}
	} else if wire != "workload" {
		size, err := server.ParseSize(*sizeStr)
		if err != nil {
			fatal(err)
		}
		w, ok := rmcc.WorkloadByName(size, *seed, *name)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *name))
		}
		stream = make([]workload.Access, 0, *accesses)
		w.Run(*seed, func(a workload.Access) bool {
			stream = append(stream, a)
			return uint64(len(stream)) < *accesses
		})
	}

	scfg := server.SessionConfig{
		Mode:     *modeStr,
		Scheme:   *schemeStr,
		Seed:     *seed,
		Workload: *name,
		Size:     *sizeStr,
	}
	if rep != nil {
		// Trace sessions declare their footprint instead of binding a
		// generator, exactly like any other streaming client.
		scfg = server.SessionConfig{
			Mode: *modeStr, Scheme: *schemeStr, Seed: *seed,
			FootprintBytes: rep.FootprintBytes(), Label: rep.Name(),
		}
	}

	// -crash-after wires a SIGKILL trigger into the progress stream: once
	// the aggregate applied-access count crosses the threshold the daemon
	// dies mid-replay, exactly what the recovery smoke needs.
	var crashTotal atomic.Uint64
	var crashKilled atomic.Bool
	var progressEvery uint64
	var mkProgress func() func(uint64)
	if *crashAfter > 0 {
		if *crashPID <= 0 {
			fatal(fmt.Errorf("-crash-after requires -crash-pid"))
		}
		if wire != "workload" {
			fatal(fmt.Errorf("-crash-after is not supported with -wire %s (progress frames drive the kill)", wire))
		}
		progressEvery = 500
		mkProgress = func() func(uint64) {
			var last uint64
			return func(applied uint64) {
				d := applied - last
				last = applied
				if crashTotal.Add(d) >= *crashAfter && crashKilled.CompareAndSwap(false, true) {
					fmt.Fprintf(os.Stderr, "rmcc-loadgen: crash threshold reached (%d accesses applied): SIGKILL pid %d\n",
						crashTotal.Load(), *crashPID)
					_ = syscall.Kill(*crashPID, syscall.SIGKILL)
				}
			}
		}
	}

	// -resume adopts whatever sessions survived a daemon restart (possibly
	// restarted from access zero by the fresh-session fallback) and tops
	// each one up to the full target, so -check passes exactly when
	// recovery preserved bit-identical simulator state.
	var resumeInfos []server.SessionInfo
	if *resume {
		infos, err := c.ListSessions(ctx)
		if err != nil {
			fatal(fmt.Errorf("-resume: list sessions: %w", err))
		}
		if len(infos) == 0 {
			fatal(fmt.Errorf("-resume: daemon has no sessions"))
		}
		sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
		resumeInfos = infos
		*sessions = len(infos)
	}

	// retryReplay survives a router drain happening mid-run: a 409 (the
	// session is briefly locked by a migration's checkpoint lease) or 503
	// (ring membership settling) rejects the request before any access
	// applies, so resending is safe. Anything else — including an error
	// frame mid-stream, after accesses may have applied — is never
	// retried; -check would silently pass over duplicated accesses.
	retryReplay := func(f func() (server.ReplayStats, error)) (server.ReplayStats, error) {
		for attempt := 0; ; attempt++ {
			stats, err := f()
			if err == nil || attempt >= 40 || !transientReplayError(err) {
				return stats, err
			}
			lg.Debug("replay rejected, retrying", "attempt", attempt, "error", err)
			select {
			case <-ctx.Done():
				return stats, err
			case <-time.After(250 * time.Millisecond):
			}
		}
	}

	results := make([]result, *sessions)
	start := time.Now()
	var wg sync.WaitGroup
	// Create barrier: every session exists (and, on a -snapshot-dir daemon,
	// has its durable birth checkpoint) before the first replay starts. This
	// keeps -crash-after deterministic — the SIGKILL always finds all N
	// sessions on disk — instead of racing slow creates against fast replays.
	var created sync.WaitGroup
	if !*resume {
		created.Add(*sessions)
	}
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := result{idx: i, durs: make([]float64, 0, *replays)}
			defer func() { results[i] = r }()
			// One trace context per session: the create, every replay, and
			// the delete share one 128-bit trace ID, so a replay that a
			// drain migrates mid-run still reads as a single cross-node
			// trace in /debug/tracez.
			tc := obs.MintTraceContext()
			r.trace = tc.TraceID()
			c := c.WithTraceContext(tc)
			var onp func(uint64)
			if mkProgress != nil {
				onp = mkProgress()
			}
			if *resume {
				info := resumeInfos[i]
				r.id = info.ID
				target := *accesses * uint64(*replays)
				t0 := time.Now()
				if info.Accesses < target {
					rt0 := time.Now()
					r.stats, r.err = retryReplay(func() (server.ReplayStats, error) {
						return c.ReplayWorkload(ctx, info.ID, target-info.Accesses, progressEvery, onp)
					})
					if r.err == nil {
						r.durs = append(r.durs, time.Since(rt0).Seconds())
					}
				} else {
					var snap server.SnapshotResponse
					snap, r.err = c.Snapshot(ctx, info.ID)
					r.stats = snap.Stats
				}
				r.secs = time.Since(t0).Seconds()
				if r.err != nil {
					lg.Warn("session failed", "session", info.ID, "error", r.err)
				}
				if !*keep {
					if derr := c.DeleteSession(ctx, info.ID); derr != nil && r.err == nil {
						r.err = fmt.Errorf("delete: %w", derr)
					}
				}
				return
			}
			info, err := c.CreateSession(ctx, scfg)
			created.Done()
			if err != nil {
				r.err = fmt.Errorf("create: %w", err)
				return
			}
			r.id = info.ID
			lg.Debug("session created", "session", info.ID, "shard", info.Shard)
			created.Wait()
			t0 := time.Now()
			for k := 0; k < *replays && r.err == nil; k++ {
				rt0 := time.Now()
				// Body wires re-upload the same captured stream each request
				// (for traces that matches trace.Replay's looping semantics
				// exactly; for generator streams the -check contract only
				// covers -replays 1). The workload wire continues one
				// server-side stream across requests.
				r.stats, r.err = retryReplay(func() (server.ReplayStats, error) {
					switch {
					case wire == "binary" && traceBytes != nil:
						return c.ReplayTrace(ctx, info.ID, bytes.NewReader(traceBytes))
					case wire == "binary":
						return c.ReplayAccessesBinary(ctx, info.ID, stream)
					case wire == "ndjson":
						return c.ReplayAccesses(ctx, info.ID, stream)
					default:
						return c.ReplayWorkload(ctx, info.ID, *accesses, progressEvery, onp)
					}
				})
				if r.err == nil {
					r.durs = append(r.durs, time.Since(rt0).Seconds())
				}
			}
			r.secs = time.Since(t0).Seconds()
			if r.err != nil {
				lg.Warn("session failed", "session", info.ID, "error", r.err)
			}
			if !*keep {
				if derr := c.DeleteSession(ctx, info.ID); derr != nil && r.err == nil {
					r.err = fmt.Errorf("delete: %w", derr)
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	// Written before the crash branch on purpose: the recovery smoke needs
	// the session→trace mapping to interrogate flight dumps and tracez
	// after the daemon it killed comes back.
	if *traceIDs != "" {
		var sb strings.Builder
		for _, r := range results {
			if r.id != "" && r.trace != "" {
				fmt.Fprintf(&sb, "%s %s\n", r.id, r.trace)
			}
		}
		if *traceIDs == "-" {
			fmt.Print(sb.String())
		} else if err := os.WriteFile(*traceIDs, []byte(sb.String()), 0o644); err != nil {
			fatal(err)
		}
	}

	if *crashAfter > 0 {
		// Replay/delete errors after the kill are the point, not failures.
		if crashKilled.Load() {
			fmt.Printf("crash: daemon pid %d killed after %d aggregate accesses\n",
				*crashPID, crashTotal.Load())
			return
		}
		fatal(fmt.Errorf("crash threshold %d never reached (%d accesses applied)",
			*crashAfter, crashTotal.Load()))
	}

	var total uint64
	var allDurs []float64
	failed := 0
	for _, r := range results {
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "rmcc-loadgen: session %d: %v\n", r.idx, r.err)
			continue
		}
		total += r.stats.Accesses
		allDurs = append(allDurs, r.durs...)
		p50, p95, p99 := quantiles(r.durs)
		fmt.Printf("session %-10s %8d accesses  %6.2fs  ctr-miss %.1f%%  memo-hit %.1f%%  p50 %s  p95 %s  p99 %s\n",
			r.id, r.stats.Accesses, r.secs,
			100*r.stats.CtrMissRate, 100*r.stats.MemoHitRateOnMisses,
			fmtDur(p50), fmtDur(p95), fmtDur(p99))
	}
	fmt.Printf("total: %d sessions, %d accesses in %.2fs (%.0f accesses/s aggregate)\n",
		*sessions, total, wall, float64(total)/wall)
	if len(allDurs) > 0 {
		p50, p95, p99 := quantiles(allDurs)
		fmt.Printf("replay latency (%d samples): p50 %s  p95 %s  p99 %s\n",
			len(allDurs), fmtDur(p50), fmtDur(p95), fmtDur(p99))
		printSlowestTraces(results, p99)
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d sessions failed", failed, *sessions))
	}

	if *check {
		var directW workload.Workload
		var wantAccesses uint64
		switch {
		case rep != nil:
			// Trace replays loop the recorded stream, so K uploads equal a
			// direct run of len×K accesses over the same looping workload —
			// exact for any -replays.
			directW = rep
			wantAccesses = uint64(rep.Len()) * uint64(*replays)
		case wire != "workload":
			// Generator body wires re-upload the same captured prefix each
			// request; only -replays 1 matches a direct run.
			wantAccesses = *accesses
		default:
			// Sequential workload replays continue one deterministic
			// stream, so the final cumulative stats equal one direct run
			// of replays×accesses.
			wantAccesses = *accesses * uint64(*replays)
		}
		if directW == nil {
			size, err := server.ParseSize(*sizeStr)
			if err != nil {
				fatal(err)
			}
			w, ok := rmcc.WorkloadByName(size, *seed, *name)
			if !ok {
				fatal(fmt.Errorf("unknown workload %q", *name))
			}
			directW = w
		}
		if err := checkEquivalence(results[0].stats, directW, *modeStr, *schemeStr, *seed, wantAccesses); err != nil {
			fatal(err)
		}
		for _, r := range results[1:] {
			if !reflect.DeepEqual(r.stats.Engine, results[0].stats.Engine) {
				fatal(fmt.Errorf("session %s engine stats diverge from session %s (same seed/workload)",
					r.id, results[0].id))
			}
		}
		fmt.Println("check: service stats bit-identical to the direct simulation ✓")
	}

	if *metricsOut != "" {
		text, err := c.RawMetrics(ctx)
		if err != nil {
			fatal(fmt.Errorf("scrape metrics: %w", err))
		}
		text += latencyMetrics(results, allDurs)
		if *metricsOut == "-" {
			fmt.Print(text)
		} else if err := os.WriteFile(*metricsOut, []byte(text), 0o644); err != nil {
			fatal(err)
		}
	}
}

// result accumulates one session's outcome; durs holds one
// client-observed latency sample per replay request, in seconds, and
// trace is the session's minted 32-hex distributed trace ID.
type result struct {
	idx   int
	id    string
	trace string
	stats server.ReplayStats
	secs  float64
	durs  []float64
	err   error
}

// quantiles returns p50/p95/p99 of a sample in seconds.
func quantiles(durs []float64) (p50, p95, p99 float64) {
	if len(durs) == 0 {
		return 0, 0, 0
	}
	sorted := append([]float64(nil), durs...)
	sort.Float64s(sorted)
	return obs.QuantileSorted(sorted, 0.50),
		obs.QuantileSorted(sorted, 0.95),
		obs.QuantileSorted(sorted, 0.99)
}

func fmtDur(secs float64) string {
	return time.Duration(secs * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// printSlowestTraces names the replay samples at or beyond the aggregate
// p99 (capped at 5, slowest first) with their trace IDs — the IDs to
// paste into /debug/tracez?trace= to see where a tail request's time
// went, hop by hop.
func printSlowestTraces(results []result, p99 float64) {
	type sample struct {
		secs    float64
		session string
		trace   string
	}
	var slow []sample
	for _, r := range results {
		if r.err != nil || r.trace == "" {
			continue
		}
		for _, d := range r.durs {
			if d >= p99 {
				slow = append(slow, sample{secs: d, session: r.id, trace: r.trace})
			}
		}
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].secs > slow[j].secs })
	if len(slow) > 5 {
		slow = slow[:5]
	}
	for _, s := range slow {
		fmt.Printf("slow replay: %s  session %s  trace %s\n", fmtDur(s.secs), s.session, s.trace)
	}
}

// latencyMetrics renders the client-observed replay latency quantiles in
// Prometheus text form, appended to the scraped daemon page so one
// -metrics-out artifact carries both server- and client-side views.
func latencyMetrics(results []result, allDurs []float64) string {
	var sb strings.Builder
	sb.WriteString("# HELP loadgen_replay_latency_seconds client-observed replay request latency\n")
	sb.WriteString("# TYPE loadgen_replay_latency_seconds gauge\n")
	var sum float64
	for _, d := range allDurs {
		sum += d
	}
	p50, p95, p99 := quantiles(allDurs)
	fmt.Fprintf(&sb, "loadgen_replay_latency_seconds{quantile=\"0.5\"} %g\n", p50)
	fmt.Fprintf(&sb, "loadgen_replay_latency_seconds{quantile=\"0.95\"} %g\n", p95)
	fmt.Fprintf(&sb, "loadgen_replay_latency_seconds{quantile=\"0.99\"} %g\n", p99)
	fmt.Fprintf(&sb, "loadgen_replay_latency_seconds_count %d\n", len(allDurs))
	fmt.Fprintf(&sb, "loadgen_replay_latency_seconds_sum %g\n", sum)
	for _, r := range results {
		if r.err != nil || len(r.durs) == 0 {
			continue
		}
		sp50, sp95, sp99 := quantiles(r.durs)
		fmt.Fprintf(&sb, "loadgen_session_replay_latency_seconds{session=%q,quantile=\"0.5\"} %g\n", r.id, sp50)
		fmt.Fprintf(&sb, "loadgen_session_replay_latency_seconds{session=%q,quantile=\"0.95\"} %g\n", r.id, sp95)
		fmt.Fprintf(&sb, "loadgen_session_replay_latency_seconds{session=%q,quantile=\"0.99\"} %g\n", r.id, sp99)
	}
	return sb.String()
}

// checkEquivalence reruns the first session's simulation in-process
// through the public sim driver (over w — a generator or a loaded trace)
// and requires identical stats: the service layer must add no behavioral
// drift, on any wire.
func checkEquivalence(got server.ReplayStats, w workload.Workload, modeStr, schemeStr string, seed, accesses uint64) error {
	mode, err := server.ParseMode(modeStr)
	if err != nil {
		return err
	}
	scheme, err := server.ParseScheme(schemeStr)
	if err != nil {
		return err
	}
	engCfg := rmcc.DefaultEngineConfig(mode, scheme)
	engCfg.InitSeed = seed
	cfg := rmcc.DefaultLifetimeConfig(engCfg)
	cfg.MaxAccesses = accesses
	cfg.Seed = seed
	res := rmcc.RunLifetime(w, cfg)

	if res.Accesses != got.Accesses {
		return fmt.Errorf("check: accesses differ: service %d, direct %d", got.Accesses, res.Accesses)
	}
	if res.LLCMissReads != got.LLCMissReads || res.LLCMissWrites != got.LLCMissWrites {
		return fmt.Errorf("check: LLC miss counts differ: service %d/%d, direct %d/%d",
			got.LLCMissReads, got.LLCMissWrites, res.LLCMissReads, res.LLCMissWrites)
	}
	if !reflect.DeepEqual(res.Engine, got.Engine) {
		return fmt.Errorf("check: engine stats differ between service and direct run:\nservice: %+v\ndirect:  %+v",
			got.Engine, res.Engine)
	}
	if res.MaxCounter != got.MaxCounter {
		return fmt.Errorf("check: max counter differs: service %d, direct %d", got.MaxCounter, res.MaxCounter)
	}
	return nil
}

// transientReplayError reports whether a replay failed with a
// pre-apply rejection (HTTP 409 or 503). A mid-stream error frame
// arrives on a 200 response and carries that status instead, so it can
// never look transient here.
func transientReplayError(err error) bool {
	var ae *client.APIError
	if !errors.As(err, &ae) {
		return false
	}
	return ae.Status == http.StatusConflict || ae.Status == http.StatusServiceUnavailable
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmcc-loadgen:", err)
	os.Exit(1)
}
