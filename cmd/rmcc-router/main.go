// Command rmcc-router fronts a set of rmccd nodes with a consistent-hash
// session router: session IDs are hashed onto a virtual-node ring, every
// session-scoped request is proxied to its owning node, nodes are
// health-checked off their /statusz + /metrics surface, and
// POST /v1/cluster/nodes/{id}/drain migrates a node's sessions to their
// new ring owners via snapshot download/restore. Clients use the exact
// same session API they would against a single rmccd. See
// docs/CLUSTER.md.
//
// Examples:
//
//	rmcc-router -nodes 127.0.0.1:8077,127.0.0.1:8078,127.0.0.1:8079
//	rmcc-router -addr 127.0.0.1:0 -port-file /tmp/router.addr -nodes ...
//	rmcc-router -nodes ... -health-every 1s -vnodes 200
//
// SIGINT/SIGTERM drains: in-flight proxied requests finish (bounded by
// -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rmcc/internal/buildinfo"
	"rmcc/internal/cluster"
	"rmcc/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:8070", "listen address (host:0 picks an ephemeral port)")
		portFile    = flag.String("port-file", "", "write the resolved listen address to this file (for scripts wrapping host:0)")
		nodes       = flag.String("nodes", "", "comma-separated rmccd node addresses (host:port or http://host:port); required")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per physical node on the hash ring (default 160)")
		healthEvery = flag.Duration("health-every", 2*time.Second, "node health-check poll interval")
		spanRing    = flag.Int("span-ring", 0, "retained-span ring size behind /debug/tracez (default 4096)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight proxied requests")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		logFormat   = flag.String("log-format", "text", "log line encoding: text|json")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmcc-router"))
		return 0
	}

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmcc-router:", err)
		return 2
	}
	format, err := obs.ParseLogFormat(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmcc-router:", err)
		return 2
	}
	log := obs.NewLogger(os.Stderr, level, format).
		With("version", buildinfo.Version())

	var nodeList []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}
	if len(nodeList) == 0 {
		fmt.Fprintln(os.Stderr, "rmcc-router: -nodes is required (comma-separated rmccd addresses)")
		return 2
	}

	rt, err := cluster.New(cluster.Config{
		Nodes:       nodeList,
		VNodes:      *vnodes,
		HealthEvery: *healthEvery,
		SpanRing:    *spanRing,
		Logger:      log,
	})
	if err != nil {
		log.Error("router init failed", "error", err)
		return 2
	}
	// One synchronous check cycle before serving, so the first requests
	// see real node health instead of the optimistic boot state.
	rt.CheckNodes(context.Background())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "error", err)
		return 2
	}
	resolved := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(resolved), 0o644); err != nil {
			log.Error("write port file failed", "path", *portFile, "error", err)
			return 2
		}
	}

	httpSrv := &http.Server{Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	fmt.Printf("rmcc-router: %s listening on http://%s, %d nodes\n",
		buildinfo.String("rmcc-router"), resolved, len(nodeList))
	log.Info("listening", "addr", resolved, "nodes", len(nodeList))

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	clean := true
	select {
	case sig := <-sigCh:
		log.Info("draining", "signal", sig.String(), "deadline", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Warn("drain deadline expired; closing")
			_ = httpSrv.Close()
			clean = false
		}
		cancel()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", "error", err)
			rt.Close()
			return 2
		}
	}
	rt.Close()
	if clean {
		log.Info("shutdown complete")
		return 0
	}
	log.Warn("shutdown forced after drain deadline")
	return 1
}
