package rmcc_test

import (
	"fmt"

	"rmcc"
)

// Example demonstrates the controller API: a fresh RMCC system encrypts
// writes, and reads whose counters miss the cache but hit the memoization
// table are accelerated.
func Example() {
	cfg := rmcc.DefaultEngineConfig(rmcc.ModeRMCC, rmcc.SchemeMorphable)
	cfg.MemBytes = 16 << 20
	cfg.TrackContents = true
	cfg.RandomizeInit = false // fresh boot: counters 0..127 memoized
	mc := rmcc.NewControllerWithConfig(cfg)

	mc.Write(0x1000)
	out := mc.Read(0x200000) // distant block: counter cache miss
	fmt.Println("counter cache hit:", out.CtrCacheHit)
	fmt.Println("memoized:", out.L0MemoHit)
	fmt.Println("accelerated:", out.Accelerated)
	// Output:
	// counter cache hit: false
	// memoized: true
	// accelerated: true
}

// ExampleRunLifetime runs a whole-lifetime functional simulation (the
// paper's Pintool analog) of one workload.
func ExampleRunLifetime() {
	w, _ := rmcc.WorkloadByName(rmcc.SizeTest, 1, "mcf")
	cfg := rmcc.DefaultLifetimeConfig(
		rmcc.DefaultEngineConfig(rmcc.ModeBaseline, rmcc.SchemeMorphable))
	cfg.MaxAccesses = 100_000
	res := rmcc.RunLifetime(w, cfg)
	fmt.Println("accesses:", res.Accesses)
	fmt.Println("has misses:", res.LLCMissReads > 0)
	// Output:
	// accesses: 100000
	// has misses: true
}

// ExampleWorkloadNames lists the paper's eleven benchmarks.
func ExampleWorkloadNames() {
	for _, n := range rmcc.WorkloadNames()[:4] {
		fmt.Println(n)
	}
	// Output:
	// pageRank
	// graphColoring
	// connectedComp
	// degreeCentr
}
