#!/usr/bin/env bash
# Multi-node smoke test of the rmcc-router cluster stack (CI:
# cluster-smoke):
#
#   1. build rmccd, rmcc-router, rmcc-loadgen, rmcc-top and rmcc-trace,
#   2. boot 3 rmccd nodes and one rmcc-router over them, all on
#      ephemeral ports with port-file + /statusz readiness polling,
#   3. record an RMTR trace and drive $sessions concurrent sessions
#      through the router over the binary frame wire with -check
#      (replayed engine stats must be bit-identical to a direct
#      in-process simulation) and -keep,
#   4. once every session is created and replays are flowing, drain one
#      node through POST /v1/cluster/nodes/{id}/drain: its sessions
#      migrate to their new ring owners via snapshot download/restore
#      while the load generator keeps replaying through the router,
#   5. require the load generator to finish with exit 0 and the
#      bit-identical check line: zero replay divergence across the
#      mid-run migration,
#   6. assert the drained node holds no sessions, the survivors hold all
#      of them, the router listing annotates none with the drained node,
#      and the router metrics counted the migrations with zero failures,
#   7. render the cluster dashboard once with rmcc-top -once,
#   8. SIGTERM the router and every node and require clean exits.
#
# Usage: scripts/cluster_smoke.sh  [sessions] [accesses] [replays]
set -euo pipefail

cd "$(dirname "$0")/.."
# shellcheck source=scripts/lib.sh
. scripts/lib.sh

sessions="${1:-1000}"
accesses="${2:-2000}"
replays="${3:-3}"
workdir="$(mktemp -d)"
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "cluster-smoke: building rmccd, rmcc-router, rmcc-loadgen, rmcc-top, rmcc-trace" >&2
go build -o "$workdir/rmccd" ./cmd/rmccd
go build -o "$workdir/rmcc-router" ./cmd/rmcc-router
go build -o "$workdir/rmcc-loadgen" ./cmd/rmcc-loadgen
go build -o "$workdir/rmcc-top" ./cmd/rmcc-top
go build -o "$workdir/rmcc-trace" ./cmd/rmcc-trace

echo "cluster-smoke: booting 3 rmccd nodes" >&2
nodes=()
for i in 1 2 3; do
    "$workdir/rmccd" -addr 127.0.0.1:0 -port-file "$workdir/node$i.addr" \
        -drain 10s -node-id "node$i" -span-ring 65536 \
        -log-level info -log-format json \
        2> "$workdir/node$i.log" &
    pids+=("$!")
done
for i in 1 2 3; do
    wait_file "$workdir/node$i.addr"
    nodes+=("$(cat "$workdir/node$i.addr")")
    wait_ready "${nodes[$((i - 1))]}"
done
echo "cluster-smoke: nodes up: ${nodes[*]}" >&2

"$workdir/rmcc-router" -addr 127.0.0.1:0 -port-file "$workdir/router.addr" \
    -nodes "$(IFS=,; echo "${nodes[*]}")" -health-every 500ms \
    -span-ring 65536 -log-level info -log-format json \
    2> "$workdir/router.log" &
router_pid=$!
pids+=("$router_pid")
wait_file "$workdir/router.addr"
router="$(cat "$workdir/router.addr")"
wait_ready "$router"
echo "cluster-smoke: router up on $router" >&2

"$workdir/rmcc-trace" -record -workload canneal -size test \
    -n "$accesses" -seed 1 -o "$workdir/canneal.rmtr"

echo "cluster-smoke: $sessions concurrent sessions x $replays trace replays (binary wire, -check, -keep) through the router" >&2
"$workdir/rmcc-loadgen" -addr "$router" -sessions "$sessions" \
    -trace-file "$workdir/canneal.rmtr" -wire binary -replays "$replays" \
    -trace-ids-out "$workdir/traces.txt" \
    -check -keep -timeout 15m > "$workdir/loadgen.out" 2> "$workdir/loadgen.err" &
loadgen_pid=$!

# Wait for the create barrier to clear: every session exists and replays
# are flowing. Then the drain lands mid-run by construction.
for _ in $(seq 1 600); do
    created=$(curl -fsS "http://$router/v1/sessions" 2>/dev/null | grep -c '"id"' || true)
    [ "$created" -ge "$sessions" ] && break
    if ! kill -0 "$loadgen_pid" 2>/dev/null; then
        echo "cluster-smoke: loadgen died before all sessions were created" >&2
        cat "$workdir/loadgen.err" >&2
        exit 1
    fi
    sleep 0.5
done
if [ "${created:-0}" -lt "$sessions" ]; then
    echo "cluster-smoke: only $created of $sessions sessions created in time" >&2
    exit 1
fi

victim="${nodes[2]}"
echo "cluster-smoke: draining node $victim mid-run" >&2
curl -fsS -X POST "http://$router/v1/cluster/nodes/$victim/drain" \
    > "$workdir/drain.json"
grep -q '"failed": 0' "$workdir/drain.json" \
    || { echo "cluster-smoke: drain reported failures" >&2; cat "$workdir/drain.json" >&2; exit 1; }
migrated=$(grep -o '"migrated": [0-9]*' "$workdir/drain.json" | grep -o '[0-9]*')
echo "cluster-smoke: drain finished, $migrated sessions migrated" >&2
if [ "$migrated" -lt 1 ]; then
    echo "cluster-smoke: drain migrated nothing — victim owned no sessions?" >&2
    cat "$workdir/drain.json" >&2
    exit 1
fi

echo "cluster-smoke: waiting for the load generator (zero-divergence check)" >&2
status=0
wait "$loadgen_pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "cluster-smoke: loadgen exited $status (want 0)" >&2
    tail -50 "$workdir/loadgen.err" >&2
    exit 1
fi
grep -q 'check: service stats bit-identical' "$workdir/loadgen.out" \
    || { echo "cluster-smoke: loadgen output missing the bit-identical check line" >&2; tail -20 "$workdir/loadgen.out" >&2; exit 1; }

echo "cluster-smoke: drained node must be empty, survivors hold every session" >&2
on_victim=$(curl -fsS "http://$victim/v1/sessions" | grep -c '"id"' || true)
if [ "$on_victim" -ne 0 ]; then
    echo "cluster-smoke: drained node still holds $on_victim sessions" >&2
    exit 1
fi
total=$(curl -fsS "http://$router/v1/sessions" | grep -c '"id"' || true)
if [ "$total" -ne "$sessions" ]; then
    echo "cluster-smoke: router lists $total sessions after drain, want $sessions" >&2
    exit 1
fi
annotated=$(curl -fsS "http://$router/v1/sessions" | grep -c "\"node\": \"$victim\"" || true)
if [ "$annotated" -ne 0 ]; then
    echo "cluster-smoke: $annotated sessions still annotated with the drained node" >&2
    exit 1
fi

echo "cluster-smoke: one distributed trace must connect router, source node, and destination node across the drain" >&2
# Loadgen minted one X-Rmcc-Trace context per session, so a session that
# replayed on its source node, migrated, and replayed again on its
# destination has all three processes in one trace. Scan migrated
# sessions for one whose cluster-wide tracez tree shows >= 3 node stamps.
found_trace=""
while read -r msid; do
    mtrace=$(awk -v id="$msid" '$1 == id {print $2}' "$workdir/traces.txt")
    [ -n "$mtrace" ] || continue
    curl -fsS "http://$router/debug/tracez?trace=$mtrace" > "$workdir/tracez.json" || continue
    tnodes=$(grep -o '"node": "[^"]*"' "$workdir/tracez.json" | sort -u | grep -c . || true)
    if [ "$tnodes" -ge 3 ]; then
        found_trace="$mtrace"
        break
    fi
done < <(grep '"msg":"session migrated"' "$workdir/router.log" \
    | sed -n 's/.*"session":"\([^"]*\)".*/\1/p' | head -100)
if [ -z "$found_trace" ]; then
    echo "cluster-smoke: no migrated session's trace spans router + source + destination" >&2
    exit 1
fi
grep -q '"node": "router"' "$workdir/tracez.json" \
    || { echo "cluster-smoke: trace $found_trace has no router spans" >&2; exit 1; }
grep -q '"name": "engine-step"' "$workdir/tracez.json" \
    || { echo "cluster-smoke: trace $found_trace missing engine-step stage spans" >&2; exit 1; }
grep -q '"name": "router.replay"' "$workdir/tracez.json" \
    || { echo "cluster-smoke: trace $found_trace missing router.replay spans" >&2; exit 1; }
echo "cluster-smoke: trace $found_trace spans 3 processes" >&2

# The drain request itself is traced too: the router's migration arc
# (snapshot download -> restore) must be one connected trace.
drain_trace=$(grep '"msg":"session migrated"' "$workdir/router.log" | head -1 \
    | sed -n 's/.*"trace":"\([^"]*\)".*/\1/p')
if [ -n "$drain_trace" ]; then
    curl -fsS "http://$router/debug/tracez?trace=$drain_trace" > "$workdir/drain_tracez.json"
    for span in drain migrate snapshot-download restore; do
        grep -q "\"name\": \"$span\"" "$workdir/drain_tracez.json" \
            || { echo "cluster-smoke: drain trace missing $span span" >&2; exit 1; }
    done
    grep -q '"name": "http.restore"' "$workdir/drain_tracez.json" \
        || { echo "cluster-smoke: drain trace missing the destination node's http.restore span" >&2; exit 1; }
else
    echo "cluster-smoke: router log has no drain trace ID" >&2
    exit 1
fi

echo "cluster-smoke: rmcc-top -trace must render the cross-node tree" >&2
"$workdir/rmcc-top" -addr "$router" -trace "$found_trace" > "$workdir/trace_tree.txt"
grep -q '\[router\]' "$workdir/trace_tree.txt" \
    || { echo "cluster-smoke: rmcc-top trace view missing router rows" >&2; cat "$workdir/trace_tree.txt" >&2; exit 1; }
grep -q 'engine-step' "$workdir/trace_tree.txt" \
    || { echo "cluster-smoke: rmcc-top trace view missing stage spans" >&2; cat "$workdir/trace_tree.txt" >&2; exit 1; }

echo "cluster-smoke: router metrics must count the migrations" >&2
curl -fsS "http://$router/metrics" > "$workdir/router_metrics.txt"
grep -q 'rmcc_router_migrations_total{status="ok"} '"$migrated" "$workdir/router_metrics.txt" \
    || { echo "cluster-smoke: migration counter does not match drain result" >&2
         grep 'rmcc_router_migrations_total' "$workdir/router_metrics.txt" >&2; exit 1; }
grep -q 'rmcc_router_migrations_total{status="error"} 0' "$workdir/router_metrics.txt" \
    || { echo "cluster-smoke: migration error counter non-zero" >&2; exit 1; }
grep -q 'rmcc_router_nodes_in_ring 2' "$workdir/router_metrics.txt" \
    || { echo "cluster-smoke: ring should hold 2 nodes after the drain" >&2; exit 1; }

echo "cluster-smoke: rmcc-top -once cluster view" >&2
"$workdir/rmcc-top" -addr "$router" -once > "$workdir/top.txt"
grep -q 'nodes 2 in ring' "$workdir/top.txt" \
    || { echo "cluster-smoke: rmcc-top missing the router header" >&2; cat "$workdir/top.txt" >&2; exit 1; }
grep -q "$victim" "$workdir/top.txt" \
    || { echo "cluster-smoke: rmcc-top missing the drained node row" >&2; cat "$workdir/top.txt" >&2; exit 1; }

echo "cluster-smoke: SIGTERM router and nodes -> clean exits" >&2
kill -TERM "$router_pid"
wait "$router_pid" || { echo "cluster-smoke: router drain failed" >&2; cat "$workdir/router.log" >&2; exit 1; }
for pid in "${pids[@]}"; do
    [ "$pid" = "$router_pid" ] && continue
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" || { echo "cluster-smoke: node (pid $pid) drain failed" >&2; exit 1; }
done
pids=()

echo "cluster-smoke: PASS ($sessions sessions, $migrated migrated mid-run, zero divergence)" >&2
