#!/usr/bin/env bash
# End-to-end smoke test of the rmccd service stack (CI: service-smoke):
#
#   1. build rmccd + rmcc-loadgen + rmcc-top,
#   2. boot the daemon on an ephemeral port with JSON structured logging
#      and the debug listener enabled,
#   3. drive 8 concurrent sessions through the built-in workload replay
#      with -check (service stats must be bit-identical to a direct
#      in-process simulation), keep the sessions, and scrape /metrics
#      (which must carry the per-stage span histograms plus the
#      loadgen-appended client latency quantiles),
#   4. render the live dashboard once with rmcc-top -once,
#   5. curl /statusz and /debug/pprof/heap on the debug listener,
#   6. replay once more over the NDJSON streaming-upload path,
#   7. record an RMTR trace with rmcc-trace, replay it over the binary
#      frame wire with -check (bit-identical to the direct run), round-trip
#      the trace through -decode/-encode (byte-identical file), and assert
#      the per-wire replay metrics appeared,
#   8. SIGTERM the daemon and require a clean graceful drain: exit 0
#      within the drain deadline, plus structured log lines carrying a
#      session field,
#   9. assert the drain cut a final checkpoint of every kept session, then
#      restart the daemon over the same snapshot dir and require all of
#      them back at their full access counts.
#
# Usage: scripts/service_smoke.sh  [sessions] [accesses]
set -euo pipefail

cd "$(dirname "$0")/.."
# shellcheck source=scripts/lib.sh
. scripts/lib.sh

sessions="${1:-8}"
accesses="${2:-20000}"
workdir="$(mktemp -d)"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "service-smoke: building rmccd, rmcc-loadgen, rmcc-top and rmcc-trace" >&2
go build -o "$workdir/rmccd" ./cmd/rmccd
go build -o "$workdir/rmcc-loadgen" ./cmd/rmcc-loadgen
go build -o "$workdir/rmcc-top" ./cmd/rmcc-top
go build -o "$workdir/rmcc-trace" ./cmd/rmcc-trace

# Start the daemon directly (no subshell) so `wait` can retrieve its real
# exit status later.
"$workdir/rmccd" -addr 127.0.0.1:0 -port-file "$workdir/addr" -drain 10s \
    -snapshot-dir "$workdir/snapshots" \
    -log-level info -log-format json \
    -debug-addr 127.0.0.1:0 -debug-port-file "$workdir/debug_addr" \
    2> "$workdir/rmccd.log" &
daemon_pid=$!

wait_file "$workdir/addr"
wait_file "$workdir/debug_addr"
addr="$(cat "$workdir/addr")"
debug_addr="$(cat "$workdir/debug_addr")"
wait_ready "$addr"
echo "service-smoke: rmccd (pid $daemon_pid) on $addr, debug on $debug_addr" >&2

echo "service-smoke: $sessions concurrent sessions x $accesses accesses (workload replay, -check, -keep)" >&2
"$workdir/rmcc-loadgen" -addr "$addr" -sessions "$sessions" \
    -workload canneal -size test -accesses "$accesses" \
    -check -keep -metrics-out "$workdir/metrics.txt"

echo "service-smoke: rmcc-top -once against the kept sessions" >&2
"$workdir/rmcc-top" -addr "$addr" -once > "$workdir/top.txt"
grep -q 'SESSION' "$workdir/top.txt" && grep -q 'canneal' "$workdir/top.txt" \
    || { echo "service-smoke: rmcc-top -once rendered no session table" >&2; cat "$workdir/top.txt" >&2; exit 1; }

echo "service-smoke: debug endpoints" >&2
curl -fsS "http://$debug_addr/statusz" > "$workdir/statusz.json"
grep -q '"sessions"' "$workdir/statusz.json" && grep -q '"uptime_seconds"' "$workdir/statusz.json" \
    || { echo "service-smoke: /statusz missing fields" >&2; cat "$workdir/statusz.json" >&2; exit 1; }
curl -fsS "http://$debug_addr/debug/pprof/heap" > "$workdir/heap.pprof"
[ -s "$workdir/heap.pprof" ] \
    || { echo "service-smoke: /debug/pprof/heap returned nothing" >&2; exit 1; }
curl -fsS "http://$debug_addr/debug/tracez?n=10" | grep -q '"slowest"' \
    || { echo "service-smoke: /debug/tracez missing spans" >&2; exit 1; }

echo "service-smoke: NDJSON streaming-upload path" >&2
"$workdir/rmcc-loadgen" -addr "$addr" -sessions 2 \
    -workload canneal -size test -accesses "$accesses" -wire ndjson

echo "service-smoke: binary replay wire (rmcc-trace record -> loadgen -wire binary -check)" >&2
"$workdir/rmcc-trace" -record -workload canneal -size test \
    -n "$accesses" -seed 1 -o "$workdir/canneal.rmtr"
"$workdir/rmcc-loadgen" -addr "$addr" -sessions 2 \
    -trace-file "$workdir/canneal.rmtr" -wire binary -check

echo "service-smoke: NDJSON <-> RMTR round trip (decode -> encode -> byte-identical)" >&2
"$workdir/rmcc-trace" -decode "$workdir/canneal.rmtr" -o "$workdir/canneal.ndjson"
trace_name=$("$workdir/rmcc-trace" -info "$workdir/canneal.rmtr" | awk '/^workload/{print $2; exit}')
"$workdir/rmcc-trace" -encode "$workdir/canneal.ndjson" -label "$trace_name" \
    -o "$workdir/canneal2.rmtr"
cmp "$workdir/canneal.rmtr" "$workdir/canneal2.rmtr" \
    || { echo "service-smoke: NDJSON<->RMTR round trip not byte-identical" >&2; exit 1; }

echo "service-smoke: per-wire replay metrics" >&2
curl -fsS "http://$addr/metrics" > "$workdir/metrics_wire.txt"
grep -q 'rmccd_replay_bytes_total{wire="binary"}' "$workdir/metrics_wire.txt" \
    || { echo "service-smoke: /metrics missing binary-wire byte counter" >&2; exit 1; }
grep -q 'rmccd_replay_requests_total{wire="binary"}' "$workdir/metrics_wire.txt" \
    || { echo "service-smoke: /metrics missing binary-wire request counter" >&2; exit 1; }

grep -q 'rmccd_replays_total{status="ok"}' "$workdir/metrics.txt" \
    || { echo "service-smoke: /metrics missing replay counters" >&2; exit 1; }
grep -q 'rmccd_build_info' "$workdir/metrics.txt" \
    || { echo "service-smoke: /metrics missing build info" >&2; exit 1; }
grep -q 'rmccd_replay_stage_duration_us' "$workdir/metrics.txt" \
    || { echo "service-smoke: /metrics missing stage span histograms" >&2; exit 1; }
grep -q 'loadgen_replay_latency_seconds{quantile="0.99"}' "$workdir/metrics.txt" \
    || { echo "service-smoke: metrics-out missing client latency quantiles" >&2; exit 1; }

echo "service-smoke: SIGTERM -> expecting clean drain (exit 0)" >&2
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "service-smoke: rmccd exited $status (want 0: clean graceful drain)" >&2
    cat "$workdir/rmccd.log" >&2
    exit 1
fi
grep -q 'shutdown complete' "$workdir/rmccd.log" \
    || { echo "service-smoke: daemon log missing 'shutdown complete'" >&2; cat "$workdir/rmccd.log" >&2; exit 1; }
grep -q '"session":"s-' "$workdir/rmccd.log" \
    || { echo "service-smoke: daemon log missing structured session fields" >&2; cat "$workdir/rmccd.log" >&2; exit 1; }

echo "service-smoke: drain must have checkpointed every kept session" >&2
grep -q '"msg":"final checkpoint"' "$workdir/rmccd.log" \
    || { echo "service-smoke: daemon log missing final-checkpoint line" >&2; cat "$workdir/rmccd.log" >&2; exit 1; }
snaps=$(count_files "$workdir/snapshots"/*.snap)
if [ "$snaps" -ne "$sessions" ]; then
    echo "service-smoke: $snaps checkpoint files after drain, want $sessions" >&2
    exit 1
fi

echo "service-smoke: restart over the same snapshot dir -> sessions recovered" >&2
: > "$workdir/addr"
"$workdir/rmccd" -addr 127.0.0.1:0 -port-file "$workdir/addr" -drain 10s \
    -snapshot-dir "$workdir/snapshots" \
    -log-level info -log-format json \
    2> "$workdir/rmccd2.log" &
daemon_pid=$!
wait_file "$workdir/addr"
addr="$(cat "$workdir/addr")"
wait_ready "$addr"
recovered=$(curl -fsS "http://$addr/v1/sessions" | grep -c "\"accesses\": $accesses" || true)
if [ "$recovered" -ne "$sessions" ]; then
    echo "service-smoke: $recovered recovered sessions at $accesses accesses, want $sessions" >&2
    curl -fsS "http://$addr/v1/sessions" >&2 || true
    cat "$workdir/rmccd2.log" >&2
    exit 1
fi
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "service-smoke: recovered daemon drain failed" >&2; exit 1; }

echo "service-smoke: PASS" >&2
