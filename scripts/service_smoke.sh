#!/usr/bin/env bash
# End-to-end smoke test of the rmccd service stack (CI: service-smoke):
#
#   1. build rmccd + rmcc-loadgen,
#   2. boot the daemon on an ephemeral port,
#   3. drive 8 concurrent sessions through the built-in workload replay
#      with -check (service stats must be bit-identical to a direct
#      in-process simulation) and scrape /metrics,
#   4. replay once more over the NDJSON streaming-upload path,
#   5. SIGTERM the daemon and require a clean graceful drain: exit 0
#      within the drain deadline.
#
# Usage: scripts/service_smoke.sh  [sessions] [accesses]
set -euo pipefail

cd "$(dirname "$0")/.."

sessions="${1:-8}"
accesses="${2:-20000}"
workdir="$(mktemp -d)"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "service-smoke: building rmccd and rmcc-loadgen" >&2
go build -o "$workdir/rmccd" ./cmd/rmccd
go build -o "$workdir/rmcc-loadgen" ./cmd/rmcc-loadgen

# Start the daemon directly (no subshell) so `wait` can retrieve its real
# exit status later.
"$workdir/rmccd" -addr 127.0.0.1:0 -port-file "$workdir/addr" -drain 10s \
    2> "$workdir/rmccd.log" &
daemon_pid=$!

for _ in $(seq 1 100); do
    [ -s "$workdir/addr" ] && break
    sleep 0.1
done
addr="$(cat "$workdir/addr")"
echo "service-smoke: rmccd (pid $daemon_pid) on $addr" >&2

echo "service-smoke: $sessions concurrent sessions x $accesses accesses (workload replay, -check)" >&2
"$workdir/rmcc-loadgen" -addr "$addr" -sessions "$sessions" \
    -workload canneal -size test -accesses "$accesses" \
    -check -metrics-out "$workdir/metrics.txt"

echo "service-smoke: NDJSON streaming-upload path" >&2
"$workdir/rmcc-loadgen" -addr "$addr" -sessions 2 \
    -workload canneal -size test -accesses "$accesses" -ndjson

grep -q 'rmccd_replays_total{status="ok"}' "$workdir/metrics.txt" \
    || { echo "service-smoke: /metrics missing replay counters" >&2; exit 1; }
grep -q 'rmccd_build_info' "$workdir/metrics.txt" \
    || { echo "service-smoke: /metrics missing build info" >&2; exit 1; }

echo "service-smoke: SIGTERM -> expecting clean drain (exit 0)" >&2
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "service-smoke: rmccd exited $status (want 0: clean graceful drain)" >&2
    cat "$workdir/rmccd.log" >&2
    exit 1
fi
grep -q 'shutdown complete' "$workdir/rmccd.log" \
    || { echo "service-smoke: daemon log missing 'shutdown complete'" >&2; cat "$workdir/rmccd.log" >&2; exit 1; }

echo "service-smoke: PASS" >&2
