#!/usr/bin/env bash
# CI coverage gate (CI: coverage): run the full test suite with a
# cross-package coverage profile, render the HTML report (uploaded as a
# CI artifact), and fail if total statement coverage falls below the
# floor. The floor is the figure measured when the gate was introduced
# (74.3%), minus headroom for run-to-run variance — it ratchets up, not
# down: raise COVERAGE_MIN here as the suite grows, never lower it to
# absorb a regression.
#
# Usage:
#   scripts/coverage.sh                    # profile + HTML into ./coverage/
#   OUT=/tmp/cov scripts/coverage.sh       # write elsewhere
#   COVERAGE_MIN=75.0 scripts/coverage.sh  # tighten the floor
set -euo pipefail

cd "$(dirname "$0")/.."

out="${OUT:-coverage}"
min="${COVERAGE_MIN:-70.0}"
mkdir -p "$out"

echo "coverage: go test -coverprofile over ./... (floor $min%)" >&2
go test -count=1 -coverprofile="$out/cover.out" -coverpkg=./... ./...
go tool cover -html="$out/cover.out" -o "$out/coverage.html"

total=$(go tool cover -func="$out/cover.out" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
echo "coverage: total $total% (floor $min%), report at $out/coverage.html" >&2
awk -v t="$total" -v m="$min" 'BEGIN { exit (t + 0 >= m + 0) ? 0 : 1 }' || {
    echo "coverage: FAIL — $total% is below the $min% floor" >&2
    exit 1
}
echo "coverage: PASS" >&2
