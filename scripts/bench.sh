#!/usr/bin/env bash
# Perf-regression harness: regenerate the quick experiment suite plus the
# hot-path micro-benchmarks and archive the machine-readable report as
# BENCH_<date>.json in the repo root, with a run manifest (config hash,
# git SHA, seed, wall-clock, headline metrics) beside it. Compare against
# the checked-in baseline from the previous PR with scripts/bench_diff.sh
# to catch wall-clock or allocs/op regressions before merging.
#
# Usage:
#   scripts/bench.sh                 # quick suite, all figures
#   scripts/bench.sh -figures figure13,figure14
#   PARALLEL=8 scripts/bench.sh      # pin the worker-pool size
#   OUT=/tmp/fresh.json scripts/bench.sh   # write elsewhere (CI uses this
#                                          # so a same-day run never
#                                          # clobbers the baseline)
#   MANIFEST=/tmp/fresh.manifest.json scripts/bench.sh
#
# Extra arguments are passed through to rmcc-experiments.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${OUT:-BENCH_$(date +%Y-%m-%d).json}"
manifest="${MANIFEST:-${out%.json}.manifest.json}"
parallel="${PARALLEL:-0}"
args=(-quick -json -micro -manifest-out "$manifest")
if [ "$parallel" != "0" ]; then
    args+=(-parallel "$parallel")
fi

echo "bench: writing $out (manifest $manifest, parallel=${parallel:-auto})" >&2
go run ./cmd/rmcc-experiments "${args[@]}" "$@" > "$out"

# Headline summary for the console / CI log.
grep -E '"(name|ns_per_op|allocs_per_op|total_seconds)"' "$out" | sed 's/^ *//' >&2
echo "bench: done -> $out (manifest $manifest)" >&2
