#!/usr/bin/env bash
# Crash-recovery smoke test of the rmccd checkpoint stack (CI:
# recovery-smoke):
#
#   1. build rmccd + rmcc-loadgen,
#   2. boot the daemon with -snapshot-dir and a fast periodic checkpoint
#      interval,
#   3. drive 4 sessions and SIGKILL the daemon mid-replay from inside the
#      load generator (-crash-after/-crash-pid) — an ungraceful death with
#      whatever checkpoints the periodic cycle managed to cut,
#   4. sabotage the checkpoint dir: truncate one session's file mid-state
#      (meta survives -> fresh-session fallback) and drop in a garbage
#      file (no meta -> skipped),
#   5. restart the daemon over the same dir and require the sessions back,
#   6. top every recovered session up to the full access target with
#      rmcc-loadgen -resume -check: the final engine stats must be
#      bit-identical to an uninterrupted direct simulation — the restored
#      state is exact, not approximate,
#   7. assert the daemon logged the recovery (including the typed-error
#      fallback for the sabotaged file), then SIGTERM and require a clean
#      drain that cuts final checkpoints.
#
# Usage: scripts/recovery_smoke.sh  [sessions] [accesses]
set -euo pipefail

cd "$(dirname "$0")/.."
# shellcheck source=scripts/lib.sh
. scripts/lib.sh

sessions="${1:-4}"
accesses="${2:-200000}"
crash_after=$((sessions * accesses / 8))
workdir="$(mktemp -d)"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "recovery-smoke: building rmccd, rmcc-loadgen, rmcc-top" >&2
go build -o "$workdir/rmccd" ./cmd/rmccd
go build -o "$workdir/rmcc-loadgen" ./cmd/rmcc-loadgen
go build -o "$workdir/rmcc-top" ./cmd/rmcc-top

snapdir="$workdir/snapshots"

start_daemon() {
    "$workdir/rmccd" -addr 127.0.0.1:0 -port-file "$workdir/addr" -drain 10s \
        -snapshot-dir "$snapdir" -snapshot-every 150ms \
        -flight-every 100ms \
        -log-level info -log-format json \
        2>> "$1" &
    daemon_pid=$!
    wait_file "$workdir/addr"
    addr="$(cat "$workdir/addr")"
    wait_ready "$addr"
}

: > "$workdir/addr"
start_daemon "$workdir/rmccd1.log"
echo "recovery-smoke: rmccd (pid $daemon_pid) on $addr, snapshots in $snapdir" >&2

echo "recovery-smoke: $sessions sessions x $accesses accesses, SIGKILL after $crash_after aggregate" >&2
"$workdir/rmcc-loadgen" -addr "$addr" -sessions "$sessions" \
    -workload canneal -size test -accesses "$accesses" -keep \
    -trace-ids-out "$workdir/traces.txt" \
    -crash-after "$crash_after" -crash-pid "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true

snaps=$(count_files "$snapdir"/*.snap)
echo "recovery-smoke: daemon killed; $snaps checkpoint files survived" >&2
if [ "$snaps" -lt 1 ]; then
    echo "recovery-smoke: no checkpoints were cut before the crash" >&2
    cat "$workdir/rmccd1.log" >&2
    exit 1
fi

# The SIGKILL'd daemon must leave a readable flight-recorder postmortem
# (the periodic flusher writes it durably alongside the checkpoints), and
# the dump must contain spans of the distributed traces the load
# generator minted.
flightrec="$snapdir/flight.rec"
if [ ! -s "$flightrec" ]; then
    echo "recovery-smoke: no flight dump at $flightrec after SIGKILL" >&2
    exit 1
fi
"$workdir/rmcc-top" -flight "$flightrec" > "$workdir/flight.txt" \
    || { echo "recovery-smoke: flight dump unreadable" >&2; exit 1; }
grep -q '^flight dump — node ' "$workdir/flight.txt" \
    || { echo "recovery-smoke: flight render missing header" >&2; head "$workdir/flight.txt" >&2; exit 1; }
traced=0
while read -r _ trace; do
    if grep -q "trace=$trace" "$workdir/flight.txt"; then
        traced=1
        break
    fi
done < "$workdir/traces.txt"
if [ "$traced" -ne 1 ]; then
    echo "recovery-smoke: flight dump contains no span of any loadgen trace" >&2
    head -20 "$workdir/flight.txt" >&2
    exit 1
fi
echo "recovery-smoke: flight dump readable, loadgen traces present" >&2

# Sabotage: truncate one checkpoint's state (its meta section survives, so
# recovery must fall back to a fresh session under the same ID) and plant
# pure garbage (no meta: recovery must skip it, not die).
for f in "$snapdir"/*.snap; do victim="$f"; break; done
size=$(wc -c < "$victim")
truncate -s $((size - 64)) "$victim"
echo "not a snapshot" > "$snapdir/s-deadbeef.snap"
echo "recovery-smoke: truncated $(basename "$victim") and planted garbage checkpoint" >&2

: > "$workdir/addr"
start_daemon "$workdir/rmccd2.log"
echo "recovery-smoke: restarted rmccd (pid $daemon_pid) on $addr" >&2

recovered=$(curl -fsS "http://$addr/v1/sessions" | grep -c '"id"' || true)
if [ "$recovered" -ne "$sessions" ]; then
    echo "recovery-smoke: recovered $recovered sessions, want $sessions" >&2
    cat "$workdir/rmccd2.log" >&2
    exit 1
fi

echo "recovery-smoke: resuming all $recovered sessions to $accesses accesses with -check" >&2
"$workdir/rmcc-loadgen" -addr "$addr" -resume -keep \
    -workload canneal -size test -accesses "$accesses" -check

grep -q '"msg":"session recovered"' "$workdir/rmccd2.log" \
    || { echo "recovery-smoke: daemon log missing recovery lines" >&2; cat "$workdir/rmccd2.log" >&2; exit 1; }
grep -q 'recovered fresh session' "$workdir/rmccd2.log" \
    || { echo "recovery-smoke: daemon log missing fresh-session fallback for truncated checkpoint" >&2; cat "$workdir/rmccd2.log" >&2; exit 1; }
grep -q 'checkpoint unreadable, skipping' "$workdir/rmccd2.log" \
    || { echo "recovery-smoke: daemon log missing skip line for garbage checkpoint" >&2; cat "$workdir/rmccd2.log" >&2; exit 1; }
grep -q 'snapshot corrupt' "$workdir/rmccd2.log" \
    || { echo "recovery-smoke: daemon log missing typed snapshot error" >&2; cat "$workdir/rmccd2.log" >&2; exit 1; }

echo "recovery-smoke: SIGTERM -> expecting clean drain with final checkpoints" >&2
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "recovery-smoke: rmccd exited $status (want 0)" >&2
    cat "$workdir/rmccd2.log" >&2
    exit 1
fi
grep -q '"msg":"final checkpoint"' "$workdir/rmccd2.log" \
    || { echo "recovery-smoke: daemon log missing final-checkpoint line" >&2; cat "$workdir/rmccd2.log" >&2; exit 1; }

final=0
for f in "$snapdir"/*.snap; do
    case "$f" in *deadbeef*) ;; *) [ -e "$f" ] && final=$((final + 1)) ;; esac
done
if [ "$final" -ne "$sessions" ]; then
    echo "recovery-smoke: $final final checkpoints on disk, want $sessions" >&2
    exit 1
fi

echo "recovery-smoke: PASS" >&2
