#!/usr/bin/env bash
# CI perf gate: regenerate a fresh quick perf report into a scratch file
# (never clobbering the checked-in baseline, even on the same calendar
# day) and diff it against the newest checked-in BENCH_<date>.json with
# cmd/rmcc-benchdiff. Fails on a >25% wall-clock regression for any
# figure present in both reports, or on a micro-benchmark that starts
# allocating where the baseline was allocation-free.
#
# Usage:
#   scripts/bench_diff.sh                        # baseline = newest BENCH_*.json
#   BASELINE=BENCH_2026-08-06.json scripts/bench_diff.sh
#   THRESHOLD=0.40 scripts/bench_diff.sh         # loosen the gate
#   FRESH=/tmp/fresh.json scripts/bench_diff.sh  # keep the fresh report
#
# Extra arguments are passed through to scripts/bench.sh (and on to
# rmcc-experiments), e.g. -figures figure13 for a faster smoke run.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline="${BASELINE:-}"
if [ -z "$baseline" ]; then
    # Newest checked-in report: BENCH_<date>.json sorts lexically by date,
    # so the last glob match wins. Manifests sit beside reports and must
    # not be picked.
    for f in BENCH_*.json; do
        case "$f" in *manifest*) continue ;; esac
        [ -e "$f" ] && baseline="$f"
    done
fi
if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
    echo "bench_diff: no checked-in BENCH_<date>.json baseline found" >&2
    exit 2
fi

fresh="${FRESH:-$(mktemp /tmp/bench_fresh.XXXXXX.json)}"
manifest="${fresh%.json}.manifest.json"
threshold="${THRESHOLD:-0.25}"

echo "bench_diff: baseline $baseline, fresh $fresh, threshold $threshold" >&2
OUT="$fresh" MANIFEST="$manifest" scripts/bench.sh "$@"

go run ./cmd/rmcc-benchdiff -baseline "$baseline" -current "$fresh" -threshold "$threshold"
