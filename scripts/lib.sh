# shellcheck shell=bash
# Shared helpers for the smoke scripts. Source after `set -euo pipefail`:
#
#   . "$(dirname "$0")/lib.sh"
#
# Every daemon boot in the smokes follows the same flake-proof pattern:
# listen on host:0, write the resolved address to a -port-file, then
# wait_file for the address and wait_ready for /statusz before sending
# traffic. No fixed ports, no bare sleeps.

# wait_file <path> [tries]: block until the file exists and is
# non-empty, polling at 100ms. Default budget 15s.
wait_file() {
    local path="$1" tries="${2:-150}" i
    for ((i = 0; i < tries; i++)); do
        [ -s "$path" ] && return 0
        sleep 0.1
    done
    echo "wait_file: $path still empty after $((tries / 10))s" >&2
    return 1
}

# wait_ready <host:port> [tries]: block until GET /statusz answers 200 —
# the daemon (or router) is routing requests, not merely listening.
wait_ready() {
    local addr="$1" tries="${2:-150}" i
    for ((i = 0; i < tries; i++)); do
        curl -fsS "http://$addr/statusz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "wait_ready: http://$addr/statusz not answering after $((tries / 10))s" >&2
    return 1
}

# count_files <glob...>: count existing files without parsing ls. Call
# unquoted so the shell expands the glob: count_files "$dir"/*.snap
count_files() {
    local n=0 f
    for f in "$@"; do
        [ -e "$f" ] && n=$((n + 1))
    done
    echo "$n"
}
