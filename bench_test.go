// Benchmark harness: one testing.B benchmark per table/figure in the
// paper's evaluation, each regenerating the figure's rows and reporting the
// figure's headline number as a custom metric.
//
// Default scale is a fast, reduced configuration so `go test -bench=.`
// completes in minutes; set RMCC_BENCH_FULL=1 for the full-scale runs
// recorded in EXPERIMENTS.md. Run with -v to see the regenerated tables.
package rmcc_test

import (
	"os"
	"testing"

	"rmcc"
	"rmcc/internal/experiments"
)

func benchOpts() rmcc.ExperimentOptions {
	if os.Getenv("RMCC_BENCH_FULL") != "" {
		return rmcc.DefaultExperimentOptions()
	}
	// Tightened windows keep the full 17-benchmark sweep to minutes; the
	// carefully sized runs live in EXPERIMENTS.md.
	o := rmcc.QuickExperimentOptions()
	o.LifetimeAccesses = 600_000
	o.WarmupAccesses = 60_000
	o.MeasureAccesses = 200_000
	o.Parallelism = -1 // one worker per CPU; tables are identical regardless
	return o
}

// runFigure executes the named figure b.N times (the harness picks N=1 for
// these multi-second runs) and reports headline metrics.
func runFigure(b *testing.B, name string, metrics func(*rmcc.ResultTable, *testing.B)) {
	b.Helper()
	var table *rmcc.ResultTable
	for i := 0; i < b.N; i++ {
		found := false
		for _, e := range rmcc.Experiments() {
			if e.Name == name {
				table = e.Run(benchOpts())
				found = true
			}
		}
		if !found {
			b.Fatalf("unknown figure %q", name)
		}
	}
	b.Log("\n" + table.String())
	if metrics != nil {
		metrics(table, b)
	}
}

// meanOf reports the mean of one series as a benchmark metric.
func meanOf(series int, unit string) func(*rmcc.ResultTable, *testing.B) {
	return func(t *rmcc.ResultTable, b *testing.B) {
		m := t.Mean()
		if series < len(m) {
			b.ReportMetric(m[series], unit)
		}
	}
}

// BenchmarkFigure3CounterMissRate regenerates Figure 3: counter-cache
// misses per LLC miss under Morphable Counters.
func BenchmarkFigure3CounterMissRate(b *testing.B) {
	runFigure(b, "figure3", meanOf(0, "mean-ctr-miss-rate"))
}

// BenchmarkFigure4TLBMissRate regenerates Figure 4: TLB misses per LLC
// miss under 4 KB vs 2 MB pages.
func BenchmarkFigure4TLBMissRate(b *testing.B) {
	runFigure(b, "figure4", meanOf(0, "mean-4KB-tlb-miss-per-llcmiss"))
}

// BenchmarkFigure10MemoHitBreakdown regenerates Figure 10: memoization hit
// rate on counter misses, split by source.
func BenchmarkFigure10MemoHitBreakdown(b *testing.B) {
	runFigure(b, "figure10", meanOf(2, "mean-memo-hit-rate"))
}

// BenchmarkFigure12BandwidthBreakdown regenerates Figure 12: bandwidth
// utilization by traffic type under Morphable.
func BenchmarkFigure12BandwidthBreakdown(b *testing.B) {
	runFigure(b, "figure12", meanOf(4, "mean-bus-utilization"))
}

// BenchmarkFigure13Performance regenerates Figure 13: performance of
// SC-64/Morphable/RMCC normalized to non-secure.
func BenchmarkFigure13Performance(b *testing.B) {
	runFigure(b, "figure13", func(t *rmcc.ResultTable, b *testing.B) {
		m := t.Mean()
		if len(m) >= 3 && m[1] > 0 {
			b.ReportMetric(m[2]/m[1], "rmcc-over-morphable")
		}
	})
}

// BenchmarkFigure14MissLatency regenerates Figure 14: average LLC miss
// latency per scheme.
func BenchmarkFigure14MissLatency(b *testing.B) {
	runFigure(b, "figure14", func(t *rmcc.ResultTable, b *testing.B) {
		m := t.Mean()
		if len(m) >= 3 {
			b.ReportMetric(m[1]-m[2], "rmcc-saving-ns")
		}
	})
}

// BenchmarkFigure15Coverage regenerates Figure 15: blocks covered per
// memoized counter value.
func BenchmarkFigure15Coverage(b *testing.B) {
	runFigure(b, "figure15", meanOf(0, "blocks-per-value"))
}

// BenchmarkFigure16TrafficOverhead regenerates Figure 16: RMCC traffic
// overhead split into L0 and L1 memoization parts.
func BenchmarkFigure16TrafficOverhead(b *testing.B) {
	runFigure(b, "figure16", meanOf(2, "mean-traffic-overhead"))
}

// BenchmarkFigure17AESLatencySensitivity regenerates Figure 17: RMCC
// speedup over Morphable at 15 ns vs 22 ns AES.
func BenchmarkFigure17AESLatencySensitivity(b *testing.B) {
	runFigure(b, "figure17", func(t *rmcc.ResultTable, b *testing.B) {
		m := t.Mean()
		if len(m) >= 2 {
			b.ReportMetric(m[0], "speedup-15ns")
			b.ReportMetric(m[1], "speedup-22ns")
		}
	})
}

// BenchmarkFigure18CounterCacheSensitivity regenerates Figure 18: RMCC
// speedup over Morphable under 128/256/512 KB counter caches.
func BenchmarkFigure18CounterCacheSensitivity(b *testing.B) {
	runFigure(b, "figure18", meanOf(0, "speedup-128KB"))
}

// BenchmarkFigure19BudgetHitRate regenerates Figure 19: memoization hit
// rate under 1/2/8 % bandwidth budgets.
func BenchmarkFigure19BudgetHitRate(b *testing.B) {
	runFigure(b, "figure19", meanOf(0, "hit-rate-1pct"))
}

// BenchmarkFigure20BudgetTraffic regenerates Figure 20: traffic overhead
// under 1/2/8 % budgets.
func BenchmarkFigure20BudgetTraffic(b *testing.B) {
	runFigure(b, "figure20", meanOf(0, "overhead-1pct"))
}

// BenchmarkFigure21GroupSizeHitRate regenerates Figure 21: memoization hit
// rate vs Memoized Counter Value Group size.
func BenchmarkFigure21GroupSizeHitRate(b *testing.B) {
	runFigure(b, "figure21", meanOf(1, "hit-rate-group8"))
}

// BenchmarkFigure22GroupSizeTraffic regenerates Figure 22: traffic
// overhead vs group size.
func BenchmarkFigure22GroupSizeTraffic(b *testing.B) {
	runFigure(b, "figure22", meanOf(2, "overhead-group16"))
}

// BenchmarkHeadlineAcceleratedMisses regenerates the §VI text numbers: the
// fraction of counter misses RMCC accelerates and max-counter growth.
func BenchmarkHeadlineAcceleratedMisses(b *testing.B) {
	runFigure(b, "headline", meanOf(0, "accelerated-rate"))
}

// BenchmarkAblationDesignChoices measures each §IV-C mechanism's
// contribution by disabling it (DESIGN.md §6).
func BenchmarkAblationDesignChoices(b *testing.B) {
	var table *rmcc.ResultTable
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		table = experiments.Ablation(experiments.Options(o))
	}
	b.Log("\n" + table.String())
}

// BenchmarkExtensionSpeculativeVerification compares RMCC against
// PoisonIvy-style speculative verification (§VII): speculation hides only
// verification, RMCC hides the counter-to-pad AES, and the two compose.
func BenchmarkExtensionSpeculativeVerification(b *testing.B) {
	runFigure(b, "speculation", func(t *rmcc.ResultTable, b *testing.B) {
		m := t.Mean()
		if len(m) == 4 {
			b.ReportMetric(m[1], "morph+spec")
			b.ReportMetric(m[3], "rmcc+spec")
		}
	})
}

// BenchmarkConvergence validates the self-reinforcing dynamic organically:
// a cold-started system's memoization hit rate must grow with lifetime.
func BenchmarkConvergence(b *testing.B) {
	runFigure(b, "convergence", func(t *rmcc.ResultTable, b *testing.B) {
		if len(t.Rows) > 0 && len(t.Rows[0].Cells) >= 4 {
			b.ReportMetric(t.Rows[0].Cells[3], "canneal-hit-at-4x")
		}
	})
}

// BenchmarkLeakage regenerates the sidechannel leakage figure: mutual
// information between an adversary's secret and each observable channel
// under SGX/Morphable/RMCC/hardened-RMCC (docs/SIDECHANNEL.md).
func BenchmarkLeakage(b *testing.B) {
	runFigure(b, "leakage", func(t *rmcc.ResultTable, b *testing.B) {
		if v, ok := t.Cell("ppSweep / memo-insert", "RMCC"); ok {
			b.ReportMetric(v, "stock-insert-bits")
		}
		if v, ok := t.Cell("ppSweep / memo-insert", "RMCC hardened"); ok {
			b.ReportMetric(v, "hardened-insert-bits")
		}
	})
}

// BenchmarkHardenedCost regenerates the hardened-mode pricing figure: IPC
// of stock vs hardened RMCC normalized to non-secure, across the eleven
// workloads.
func BenchmarkHardenedCost(b *testing.B) {
	runFigure(b, "hardenedCost", meanOf(2, "hardened-over-stock"))
}
