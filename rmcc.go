// Package rmcc is the public facade of the RMCC reproduction: a secure
// memory system simulator implementing Self-Reinforcing Memoization for
// Cryptography Calculations (Wang et al., MICRO 2022) together with every
// substrate it needs — counter-mode memory encryption and integrity (SGX
// style), SC-64 and Morphable split counters, an integrity tree, a counter
// cache, an out-of-order CPU window model, a DDR4 timing model, and the
// paper's eleven workloads.
//
// Typical use (see examples/quickstart):
//
//	mc := rmcc.NewController(rmcc.ModeRMCC, rmcc.SchemeMorphable, 256<<20)
//	out := mc.Read(0x1000)        // one LLC miss through the secure MC
//	fmt.Println(out.L0MemoHit)    // did memoization skip the AES?
//
// or run whole experiments:
//
//	w, _ := rmcc.WorkloadByName(rmcc.SizeSmall, 1, "canneal")
//	res := rmcc.RunLifetime(w, rmcc.DefaultLifetimeConfig(
//	    rmcc.DefaultEngineConfig(rmcc.ModeRMCC, rmcc.SchemeMorphable)))
//	fmt.Printf("memoization hit rate: %.1f%%\n", 100*res.Engine.MemoHitRateOnMisses())
package rmcc

import (
	"rmcc/internal/core"
	"rmcc/internal/experiments"
	"rmcc/internal/fault"
	"rmcc/internal/secmem/checker"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/stats"
	"rmcc/internal/workload"
)

// Counter organizations (paper baselines).
const (
	SchemeSGX       = counter.SGX
	SchemeSC64      = counter.SC64
	SchemeMorphable = counter.Morphable
)

// Scheme selects a counter organization.
type Scheme = counter.Scheme

// Protection modes.
const (
	ModeNonSecure = engine.NonSecure
	ModeBaseline  = engine.Baseline
	ModeRMCC      = engine.RMCC
)

// Mode selects the protection level.
type Mode = engine.Mode

// Controller is the secure memory controller (functional model).
type Controller = engine.MC

// ControllerConfig parameterizes a Controller.
type ControllerConfig = engine.Config

// Outcome describes what one access caused at the controller.
type Outcome = engine.Outcome

// EngineStats aggregates controller activity.
type EngineStats = engine.Stats

// TableConfig parameterizes a memoization table (the paper's core
// structure).
type TableConfig = core.Config

// MemoTable is the RMCC memoization table.
type MemoTable = core.Table

// Workload is a deterministic access-stream generator.
type Workload = workload.Workload

// Workload scales.
const (
	SizeTest  = workload.SizeTest
	SizeSmall = workload.SizeSmall
	SizeFull  = workload.SizeFull
)

// Size selects workload scale.
type Size = workload.Size

// Simulation configurations and results.
type (
	// LifetimeConfig parameterizes the functional (Pintool-analog) driver.
	LifetimeConfig = sim.LifetimeConfig
	// LifetimeResult is a whole-lifetime functional result.
	LifetimeResult = sim.LifetimeResult
	// DetailedConfig parameterizes the timing (Gem5-analog) driver.
	DetailedConfig = sim.DetailedConfig
	// DetailedResult is an observation-window timing result.
	DetailedResult = sim.DetailedResult
	// ResultTable is a figure-shaped result table.
	ResultTable = stats.Table
	// ExperimentOptions scale the figure-regeneration harness.
	ExperimentOptions = experiments.Options
)

// DefaultEngineConfig returns the paper's Table-I controller configuration
// for the given mode and scheme. Memory size is filled in by the
// simulation drivers (or set MemBytes yourself for direct Controller use).
func DefaultEngineConfig(mode Mode, scheme Scheme) ControllerConfig {
	return engine.DefaultConfig(mode, scheme, 0)
}

// NewController builds a standalone secure memory controller over memBytes
// of protected memory, with functional content tracking enabled so reads
// verify decryption and MACs end to end.
func NewController(mode Mode, scheme Scheme, memBytes uint64) *Controller {
	cfg := engine.DefaultConfig(mode, scheme, memBytes)
	cfg.TrackContents = true
	return engine.New(cfg)
}

// NewControllerWithConfig builds a controller from an explicit
// configuration (set MemBytes; see DefaultEngineConfig for a starting
// point). The configuration is validated first; an invalid one panics
// with the Validate error (use NewControllerChecked for an error return).
func NewControllerWithConfig(cfg ControllerConfig) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return engine.New(cfg)
}

// NewControllerChecked is NewControllerWithConfig with an error return
// instead of a panic on invalid configuration.
func NewControllerChecked(cfg ControllerConfig) (*Controller, error) {
	return engine.NewChecked(cfg)
}

// DefaultLifetimeConfig mirrors the paper's Pintool setup.
func DefaultLifetimeConfig(eng ControllerConfig) LifetimeConfig {
	return sim.DefaultLifetimeConfig(eng)
}

// DefaultDetailedConfig mirrors the paper's Gem5/Table-I setup.
func DefaultDetailedConfig(eng ControllerConfig) DetailedConfig {
	return sim.DefaultDetailedConfig(eng)
}

// RunLifetime executes a whole-lifetime functional simulation.
func RunLifetime(w Workload, cfg LifetimeConfig) LifetimeResult {
	return sim.RunLifetime(w, cfg)
}

// RunDetailed executes a timing simulation.
func RunDetailed(w Workload, cfg DetailedConfig) DetailedResult {
	return sim.RunDetailed(w, cfg)
}

// Workloads builds every available workload at the given scale: the
// paper's eleven benchmarks followed by registered extras (the sidechannel
// adversaries ppSweep and memjam4k).
func Workloads(size Size, seed uint64) []Workload {
	return workload.Suite(size, seed)
}

// WorkloadNames lists every workload name: the eleven benchmarks in the
// paper's figure order, then registered extras.
func WorkloadNames() []string { return workload.Names() }

// WorkloadByName returns one benchmark from a fresh suite.
func WorkloadByName(size Size, seed uint64, name string) (Workload, bool) {
	return workload.ByName(size, seed, name)
}

// Recovery policies: how the controller responds to a detected integrity
// violation (see docs/FAULTS.md).
const (
	RecoveryFailStop     = engine.FailStop
	RecoveryRetryRefetch = engine.RetryRefetch
	RecoveryRekey        = engine.RekeyRecover
)

// RecoveryPolicy selects the violation response.
type RecoveryPolicy = engine.RecoveryPolicy

// Typed failure classes surfaced on Outcome.Violations; classify with
// errors.Is against the engine sentinels.
type (
	// IntegrityError is one detected violation.
	IntegrityError = engine.IntegrityError
	// ViolationKind classifies an IntegrityError.
	ViolationKind = engine.ViolationKind
)

// Sentinel errors for errors.Is classification.
var (
	ErrInvalidConfig      = engine.ErrInvalidConfig
	ErrIntegrityViolation = engine.ErrIntegrityViolation
	ErrCounterOverflow    = engine.ErrCounterOverflow
	ErrMetadataCorruption = engine.ErrMetadataCorruption
	ErrMemoCorruption     = engine.ErrMemoCorruption
)

// Fault injection and invariant checking (see docs/FAULTS.md).
type (
	// FaultKind enumerates the injectable faults.
	FaultKind = fault.Kind
	// Fault is one scheduled injection.
	Fault = fault.Fault
	// FaultSchedule is a reproducible fault plan.
	FaultSchedule = fault.Schedule
	// FaultCampaign replays a workload while injecting a schedule.
	FaultCampaign = fault.Campaign
	// FaultCampaignResult aggregates a campaign run.
	FaultCampaignResult = fault.CampaignResult
	// InvariantChecker validates security invariants over a controller.
	InvariantChecker = checker.Checker
	// CheckerReport summarizes checker violations by class.
	CheckerReport = checker.Report
)

// NewFaultSchedule derives a reproducible fault plan from a seed (nil
// kinds = one fault of every kind).
func NewFaultSchedule(seed uint64, kinds []FaultKind, span uint64) FaultSchedule {
	return fault.NewSchedule(seed, kinds, span)
}

// AllFaultKinds lists every injectable fault kind.
func AllFaultKinds() []FaultKind { return fault.AllKinds() }

// NewInvariantChecker wraps a controller with the security-invariant
// checker (sampleStride 1 tracks every block).
func NewInvariantChecker(mc *Controller, sampleStride int) *InvariantChecker {
	return checker.New(mc, sampleStride)
}

// Experiment configurations.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperimentOptions returns a scaled-down option set for fast runs.
func QuickExperimentOptions() ExperimentOptions { return experiments.QuickOptions() }

// Experiments maps figure names to their regeneration functions, in the
// paper's order.
func Experiments() []struct {
	Name string
	Run  func(ExperimentOptions) *ResultTable
} {
	return []struct {
		Name string
		Run  func(ExperimentOptions) *ResultTable
	}{
		{"figure3", experiments.Figure3},
		{"figure4", experiments.Figure4},
		{"figure10", experiments.Figure10},
		{"figure12", experiments.Figure12},
		{"figure13", experiments.Figure13},
		{"figure14", experiments.Figure14},
		{"figure15", experiments.Figure15},
		{"figure16", experiments.Figure16},
		{"figure17", experiments.Figure17},
		{"figure18", experiments.Figure18},
		{"figure19", experiments.Figure19},
		{"figure20", experiments.Figure20},
		{"figure21", experiments.Figure21},
		{"figure22", experiments.Figure22},
		{"headline", experiments.Headline},
		{"convergence", experiments.Convergence},
		{"ablation", experiments.Ablation},
		{"speculation", experiments.ExtensionSpeculation},
		{"leakage", experiments.FigureLeakage},
		{"hardenedCost", experiments.FigureHardenedCost},
	}
}
