module rmcc

go 1.22
