// Package graph provides the synthetic graph substrate for the GraphBig
// workload family: an R-MAT (recursive-matrix) power-law generator and a
// compressed-sparse-row representation whose arrays the workload kernels
// traverse.
//
// The paper evaluates IBM GraphBig on the LDBC "8-5fb" Facebook-like
// dataset; that dataset is external, so we substitute R-MAT graphs with the
// canonical (0.57, 0.19, 0.19, 0.05) parameters, which produce the same
// skewed-degree, community-structured topology family that makes graph
// kernels' memory behaviour irregular (DESIGN.md §3).
package graph

import (
	"fmt"
	"sort"

	"rmcc/internal/rng"
)

// CSR is a directed graph in compressed-sparse-row form. The three arrays
// are exactly what kernels traverse — and therefore what the simulator sees
// as memory accesses.
type CSR struct {
	N       int      // vertices
	Offsets []uint64 // len N+1; Offsets[v]..Offsets[v+1] index Targets
	Targets []uint32 // len M; neighbor lists, sorted per vertex
}

// M returns the edge count.
func (g *CSR) M() int { return len(g.Targets) }

// Degree returns the out-degree of v.
func (g *CSR) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns v's adjacency slice (shared storage; do not mutate).
func (g *CSR) Neighbors(v int) []uint32 {
	return g.Targets[g.Offsets[v]:g.Offsets[v+1]]
}

// RMATParams configure the recursive-matrix generator.
type RMATParams struct {
	ScaleLog2  int     // vertices = 1 << ScaleLog2
	EdgeFactor int     // edges = EdgeFactor * vertices
	A, B, C    float64 // quadrant probabilities; D = 1-A-B-C
}

// DefaultRMAT returns the canonical Graph500-style parameters.
func DefaultRMAT(scale, edgeFactor int) RMATParams {
	return RMATParams{ScaleLog2: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19}
}

// GenerateRMAT builds a CSR graph deterministically from the seed.
func GenerateRMAT(p RMATParams, seed uint64) *CSR {
	if p.ScaleLog2 <= 0 || p.ScaleLog2 > 30 {
		panic(fmt.Sprintf("graph: scale %d out of range", p.ScaleLog2))
	}
	n := 1 << uint(p.ScaleLog2)
	m := n * p.EdgeFactor
	r := rng.New(seed)
	d := 1 - p.A - p.B - p.C
	if d < 0 {
		panic("graph: RMAT probabilities exceed 1")
	}
	type edge struct{ src, dst uint32 }
	edges := make([]edge, 0, m)
	for i := 0; i < m; i++ {
		var src, dst uint32
		for bit := p.ScaleLog2 - 1; bit >= 0; bit-- {
			x := r.Float64()
			switch {
			case x < p.A:
				// top-left: neither bit set
			case x < p.A+p.B:
				dst |= 1 << uint(bit)
			case x < p.A+p.B+p.C:
				src |= 1 << uint(bit)
			default:
				src |= 1 << uint(bit)
				dst |= 1 << uint(bit)
			}
		}
		if src == dst {
			dst = (dst + 1) & uint32(n-1) // avoid self loops
		}
		edges = append(edges, edge{src, dst})
	}
	// Build CSR via counting sort on source.
	counts := make([]uint64, n+1)
	for _, e := range edges {
		counts[e.src+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	offsets := make([]uint64, n+1)
	copy(offsets, counts)
	targets := make([]uint32, len(edges))
	fill := make([]uint64, n)
	for _, e := range edges {
		targets[offsets[e.src]+fill[e.src]] = e.dst
		fill[e.src]++
	}
	g := &CSR{N: n, Offsets: offsets, Targets: targets}
	// Sort each adjacency list: kernels like triangle counting rely on it.
	for v := 0; v < n; v++ {
		adj := g.Targets[g.Offsets[v]:g.Offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	return g
}

// MaxDegreeVertex returns the vertex with the highest out-degree — a good
// BFS/DFS/SSSP root in a power-law graph (it sits in the giant component).
func (g *CSR) MaxDegreeVertex() int {
	best, bestDeg := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}
