package graph

import (
	"sort"
	"testing"
)

func testGraph(t testing.TB) *CSR {
	t.Helper()
	return GenerateRMAT(DefaultRMAT(12, 8), 1)
}

func TestGeometry(t *testing.T) {
	g := testGraph(t)
	if g.N != 4096 {
		t.Fatalf("N = %d", g.N)
	}
	if g.M() != 4096*8 {
		t.Fatalf("M = %d", g.M())
	}
	if len(g.Offsets) != g.N+1 {
		t.Fatalf("offsets len = %d", len(g.Offsets))
	}
	if g.Offsets[g.N] != uint64(g.M()) {
		t.Fatalf("last offset = %d", g.Offsets[g.N])
	}
}

func TestOffsetsMonotone(t *testing.T) {
	g := testGraph(t)
	for v := 0; v < g.N; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			t.Fatalf("offsets decrease at %d", v)
		}
	}
}

func TestNeighborsSortedInRange(t *testing.T) {
	g := testGraph(t)
	for v := 0; v < g.N; v++ {
		adj := g.Neighbors(v)
		if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
			t.Fatalf("adjacency of %d unsorted", v)
		}
		for _, u := range adj {
			if int(u) >= g.N {
				t.Fatalf("edge to out-of-range vertex %d", u)
			}
			if int(u) == v {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := testGraph(t)
	degs := make([]int, g.N)
	for v := range degs {
		degs[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top1pct := g.N / 100
	topSum := 0
	for _, d := range degs[:top1pct] {
		topSum += d
	}
	// In an R-MAT graph the top 1% of vertices should hold far more than
	// 1% of the edges (heavy skew).
	if frac := float64(topSum) / float64(g.M()); frac < 0.05 {
		t.Fatalf("degree distribution not skewed: top 1%% holds %.1f%% of edges", frac*100)
	}
}

func TestDeterminism(t *testing.T) {
	a := GenerateRMAT(DefaultRMAT(10, 4), 7)
	b := GenerateRMAT(DefaultRMAT(10, 4), 7)
	if a.M() != b.M() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("targets differ at %d", i)
		}
	}
	c := GenerateRMAT(DefaultRMAT(10, 4), 8)
	same := 0
	for i := range a.Targets {
		if a.Targets[i] == c.Targets[i] {
			same++
		}
	}
	if same == len(a.Targets) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g := testGraph(t)
	v := g.MaxDegreeVertex()
	d := g.Degree(v)
	for u := 0; u < g.N; u++ {
		if g.Degree(u) > d {
			t.Fatalf("vertex %d has higher degree than reported max", u)
		}
	}
	if d < g.M()/g.N {
		t.Fatal("max degree below average degree")
	}
}

func BenchmarkGenerateRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenerateRMAT(DefaultRMAT(14, 8), uint64(i))
	}
}
