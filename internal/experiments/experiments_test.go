package experiments

import (
	"strings"
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/workload"
)

// testOptions keeps experiment smoke tests fast: tiny workloads, short
// runs, two representative benchmarks.
func testOptions() Options {
	return Options{
		Size:             workload.SizeTest,
		Seed:             1,
		Workloads:        []string{"canneal", "mcf"},
		LifetimeAccesses: 150_000,
		WarmupAccesses:   20_000,
		MeasureAccesses:  60_000,
		Cores:            1,
		EpochAccesses:    20_000,
		OverMaxThreshold: 128,
	}
}

func TestWorkloadFilter(t *testing.T) {
	o := testOptions()
	ws := o.workloads()
	if len(ws) != 2 {
		t.Fatalf("filtered workloads = %d, want 2", len(ws))
	}
	o.Workloads = nil
	if len(o.workloads()) != 11 {
		t.Fatal("nil filter should yield all eleven")
	}
}

func TestFigure3Shape(t *testing.T) {
	tb := Figure3(testOptions())
	if len(tb.Rows) != 2 || len(tb.Series) != 1 {
		t.Fatalf("table shape: %d rows x %d series", len(tb.Rows), len(tb.Series))
	}
	canneal, _ := tb.Cell("canneal", "ctr miss rate")
	mcf, _ := tb.Cell("mcf", "ctr miss rate")
	if canneal <= mcf {
		t.Fatalf("Figure-3 ordering violated: canneal %.3f <= mcf %.3f", canneal, mcf)
	}
	if !strings.Contains(tb.String(), "canneal") {
		t.Fatal("rendering lost the workload row")
	}
}

func TestFigure10SplitsSources(t *testing.T) {
	tb := Figure10(testOptions())
	g, _ := tb.Cell("canneal", "groups")
	m, _ := tb.Cell("canneal", "recently-used")
	total, _ := tb.Cell("canneal", "total")
	if total != g+m {
		t.Fatalf("total %.3f != groups %.3f + MRU %.3f", total, g, m)
	}
	if total <= 0 || total > 1 {
		t.Fatalf("total out of range: %v", total)
	}
}

func TestFigure19BudgetMonotone(t *testing.T) {
	tb := Figure19(testOptions())
	lo, _ := tb.Cell("canneal", "1% budget")
	hi, _ := tb.Cell("canneal", "8% budget")
	// More budget must never reduce the hit rate materially.
	if hi < lo-0.05 {
		t.Fatalf("8%% budget hit rate %.3f below 1%% budget %.3f", hi, lo)
	}
}

func TestFigure21GroupSizeRuns(t *testing.T) {
	tb := Figure21(testOptions())
	if len(tb.Series) != 3 {
		t.Fatalf("series = %v", tb.Series)
	}
	for _, r := range tb.Rows {
		for i, c := range r.Cells {
			if c < 0 || c > 1 {
				t.Fatalf("%s cell %d out of range: %v", r.Name, i, c)
			}
		}
	}
}

func TestHeadlineTable(t *testing.T) {
	tb := Headline(testOptions())
	acc, ok := tb.Cell("canneal", "accelerated")
	if !ok || acc < 0 || acc > 1 {
		t.Fatalf("accelerated rate = %v ok=%v", acc, ok)
	}
}

func TestConvergenceGrows(t *testing.T) {
	o := testOptions()
	o.LifetimeAccesses = 400_000
	tb := Convergence(o)
	first := tb.Rows[0].Cells
	if first[len(first)-1] < first[0] {
		t.Fatalf("hit rate shrank with lifetime: %v", first)
	}
}

func TestAblationFullBeatsCrippled(t *testing.T) {
	tb := Ablation(testOptions())
	full, _ := tb.Cell("full RMCC", "memo hit on miss")
	noRead, _ := tb.Cell("no read-triggered update", "memo hit on miss")
	if full+1e-9 < noRead-0.1 {
		t.Fatalf("full RMCC (%.3f) materially below read-update ablation (%.3f)", full, noRead)
	}
}

func TestDetailedRunCacheSharesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed runs are slow")
	}
	o := testOptions()
	before := len(detailedCache)
	a := o.detailedRun("canneal", engine.Baseline, counter.Morphable, 15, 128, false)
	afterFirst := len(detailedCache)
	b := o.detailedRun("canneal", engine.Baseline, counter.Morphable, 15, 128, false)
	if a.IPC != b.IPC || a.WindowTime != b.WindowTime {
		t.Fatal("cache returned a different result for the same key")
	}
	if len(detailedCache) != afterFirst {
		t.Fatal("identical key re-simulated instead of hitting the cache")
	}
	o.detailedRun("canneal", engine.Baseline, counter.Morphable, 22, 128, false)
	if len(detailedCache) != afterFirst+1 {
		t.Fatalf("different AES latency did not get its own entry (%d -> %d)",
			before, len(detailedCache))
	}
}

func TestExtensionSpeculationComposes(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed runs are slow")
	}
	o := testOptions()
	o.Workloads = []string{"canneal"}
	tb := ExtensionSpeculation(o)
	mo, _ := tb.Cell("canneal", "Morphable")
	moSpec, _ := tb.Cell("canneal", "Morph+Spec")
	rmSpec, _ := tb.Cell("canneal", "RMCC+Spec")
	if moSpec < mo*0.98 {
		t.Fatalf("speculation hurt the baseline: %.3f vs %.3f", moSpec, mo)
	}
	if rmSpec < moSpec*0.95 {
		t.Fatalf("RMCC+spec (%.3f) far below spec-only (%.3f)", rmSpec, moSpec)
	}
}

func TestFigure13SmokeDetailed(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed runs are slow")
	}
	o := testOptions()
	o.Workloads = []string{"canneal"}
	tb := Figure13(o)
	for _, series := range tb.Series {
		v, ok := tb.Cell("canneal", series)
		if !ok || v <= 0 || v > 1.2 {
			t.Fatalf("%s normalized perf = %v ok=%v", series, v, ok)
		}
	}
}
