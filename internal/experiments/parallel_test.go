package experiments

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/stats"
)

func tableString(t *stats.Table) string { return t.String() }

// TestParallelismDeterministic renders representative figures sequentially
// and with an 8-worker pool and requires byte-identical tables: the worker
// pool must not change any result, only wall-clock time.
func TestParallelismDeterministic(t *testing.T) {
	figures := []struct {
		name string
		run  func(Options) *stats.Table
	}{
		{"figure10", Figure10},
		{"ablation", Ablation},
		{"figure20", Figure20},
	}
	for _, fig := range figures {
		seq := testOptions()
		seq.Parallelism = 1
		par := testOptions()
		par.Parallelism = 8
		a := tableString(fig.run(seq))
		b := tableString(fig.run(par))
		if a != b {
			t.Errorf("%s: parallel table differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", fig.name, a, b)
		}
	}
}

// TestParallelismDeterministicDetailed covers the detailed-simulation path
// (shared result cache) with Figure 13.
func TestParallelismDeterministicDetailed(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed runs are slow")
	}
	seq := testOptions()
	seq.Parallelism = 1
	par := testOptions()
	par.Parallelism = 8
	a := tableString(Figure13(seq))
	b := tableString(Figure13(par))
	if a != b {
		t.Fatalf("figure13: parallel table differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestDetailedRunDedupUnderRace hammers one cache key from many goroutines
// and requires exactly one simulation build: the per-entry sync.Once must
// collapse concurrent duplicate requests. Run with -race in CI.
func TestDetailedRunDedupUnderRace(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed runs are slow")
	}
	o := testOptions()
	// A key no other test uses, so this test observes its own build count.
	const ctrKB = 64
	before := detailedBuilds.Load()
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res := o.detailedRun("mcf", engine.RMCC, counter.Morphable, 15, ctrKB, false)
			results[g] = res.IPC
		}(g)
	}
	wg.Wait()
	if built := detailedBuilds.Load() - before; built != 1 {
		t.Fatalf("16 concurrent identical requests built %d simulations, want 1", built)
	}
	for g := 1; g < 16; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d saw IPC %v, goroutine 0 saw %v", g, results[g], results[0])
		}
	}
}

// TestCancellationStopsSweep cancels the sweep context after the first few
// cells and requires the remaining queue to be abandoned: both the
// sequential and the parallel paths must stop picking up cells once the
// context is done.
func TestCancellationStopsSweep(t *testing.T) {
	for _, par := range []int{1, 4} {
		o := testOptions()
		o.Parallelism = par
		ctx, cancel := context.WithCancel(context.Background())
		o.Context = ctx

		const n = 1000
		var ran atomic.Int64
		o.forEachIndex(n, func(i int) {
			if ran.Add(1) == 3 {
				cancel()
			}
		})
		got := ran.Load()
		// Each in-flight worker may finish the cell it already claimed, so
		// the bound is cells-before-cancel plus one per worker — far below n.
		limit := int64(3 + par)
		if got > limit {
			t.Errorf("parallelism %d: %d cells ran after cancel (limit %d)", par, got, limit)
		}
		cancel()
	}
}

// TestCancelledBeforeStartRunsNothing: a sweep whose context is already
// done must not run a single cell.
func TestCancelledBeforeStartRunsNothing(t *testing.T) {
	for _, par := range []int{1, 4} {
		o := testOptions()
		o.Parallelism = par
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		o.Context = ctx
		ran := 0
		o.forEachIndex(50, func(i int) { ran++ })
		if ran != 0 {
			t.Errorf("parallelism %d: %d cells ran with a pre-cancelled context", par, ran)
		}
	}
}

// TestForEachIndexCoversAll checks the work queue hits every index exactly
// once for worker counts below, at, and above the item count.
func TestForEachIndexCoversAll(t *testing.T) {
	for _, par := range []int{1, 3, 8, 64} {
		o := testOptions()
		o.Parallelism = par
		const n = 23
		var counts [n]int
		var mu sync.Mutex
		o.forEachIndex(n, func(i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", par, i, c)
			}
		}
	}
}
