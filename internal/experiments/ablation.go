package experiments

import (
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/stats"
	"rmcc/internal/workload"
)

// Ablation quantifies each RMCC design choice called out in DESIGN.md §6 by
// disabling it and re-measuring the memoization hit rate on counter misses
// and the accelerated-miss rate. Rows are design points; series are the two
// quality metrics averaged over a representative workload pair (canneal:
// highest counter-miss rate; pageRank: a typical graph kernel).
func Ablation(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Ablation: RMCC design choices (canneal/pageRank average)",
		Unit:   "%",
		Series: []string{"memo hit on miss", "accelerated"},
	}
	points := []struct {
		name   string
		mutate func(*engine.Config)
	}{
		{"full RMCC", func(*engine.Config) {}},
		{"no MRU evicted values", func(c *engine.Config) {
			c.L0Table.EnableMRU = false
			c.L1Table.EnableMRU = false
		}},
		{"no shadow groups", func(c *engine.Config) {
			c.L0Table.EnableShadow = false
			c.L1Table.EnableShadow = false
		}},
		{"no read-triggered update", func(c *engine.Config) {
			c.L0Table.EnableReadUpdate = false
		}},
		{"no L1 table", func(c *engine.Config) {
			// Starve the L1 table: no budget and no insertions means it
			// never adapts past boot, isolating the L0 table's effect.
			c.L1Table.BudgetFrac = 0
			c.L1Table.OverMaxThreshold = 1 << 62
		}},
	}
	names := []string{"canneal", "pageRank"}
	type metrics struct{ hit, acc float64 }
	cells := make([][]metrics, len(points))
	for i := range cells {
		cells[i] = make([]metrics, len(names))
	}
	o.forEachCell(len(points), len(names), func(i, j int) {
		w, _ := workload.ByName(o.Size, o.Seed, names[j])
		cfg := o.lifetimeConfig(engine.RMCC, counter.Morphable)
		points[i].mutate(&cfg.Engine)
		res := sim.RunLifetime(w, cfg)
		cells[i][j] = metrics{res.Engine.MemoHitRateOnMisses(), res.Engine.AcceleratedRate()}
	})
	for i, p := range points {
		var hitSum, accSum float64
		for _, m := range cells[i] {
			hitSum += m.hit
			accSum += m.acc
		}
		t.Add(p.name, hitSum/float64(len(names)), accSum/float64(len(names)))
	}
	return t
}
