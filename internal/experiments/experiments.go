// Package experiments regenerates every table and figure from the paper's
// evaluation (§III characterization and §VI results). Each FigureN function
// runs the necessary lifetime or detailed simulations across the eleven
// workloads and returns a stats.Table whose rows/series mirror the paper's
// plot. The bench harness (bench_test.go) and cmd/rmcc-experiments print
// them; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"sync"
	"sync/atomic"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sidechan"
	"rmcc/internal/sim"
	"rmcc/internal/stats"
	"rmcc/internal/workload"
)

// Options scale the experiment suite. The zero value is unusable; use
// DefaultOptions or QuickOptions.
type Options struct {
	Size      workload.Size
	Seed      uint64
	Workloads []string // subset filter; nil = all eleven

	// Lifetime driver scale.
	LifetimeAccesses uint64

	// Detailed driver scale.
	WarmupAccesses  uint64
	MeasureAccesses uint64
	Cores           int

	// Epoch scale for the memoization tables. The paper's epoch is 1 M
	// memory accesses; scaled runs shrink it proportionally so the
	// adaptive machinery (insertions, budget refresh) still cycles.
	EpochAccesses    uint64
	OverMaxThreshold uint64

	// Parallelism caps the worker pool fanning independent workload and
	// sweep-point cells across goroutines. 0 or 1 runs sequentially;
	// negative uses one worker per CPU. Results are collected by index, so
	// every table is byte-identical whatever the setting.
	Parallelism int

	// Context, when set, cancels the sweep: workers stop picking up new
	// cells once it is done, so a figure returns early with the remaining
	// cells at their zero values. Cells already running finish (each is an
	// uninterruptible single simulation). nil means never cancelled.
	Context context.Context
}

// DefaultOptions is the full-scale configuration used for EXPERIMENTS.md:
// the paper's epoch (1 M accesses) and thresholds, full workload footprints
// (hundreds of MB), and windows sized so the whole 15-figure suite
// completes in a few hours of single-core simulation.
func DefaultOptions() Options {
	return Options{
		Size:             workload.SizeFull,
		Seed:             1,
		LifetimeAccesses: 8_000_000,
		WarmupAccesses:   200_000,
		MeasureAccesses:  800_000,
		Cores:            1,
		EpochAccesses:    1_000_000,
		OverMaxThreshold: 2048,
	}
}

// QuickOptions is a scaled-down configuration for benches and CI: small
// workloads, short windows, proportionally shorter epochs.
func QuickOptions() Options {
	return Options{
		Size:             workload.SizeSmall,
		Seed:             1,
		LifetimeAccesses: 3_000_000,
		WarmupAccesses:   150_000,
		MeasureAccesses:  500_000,
		Cores:            1,
		EpochAccesses:    100_000,
		OverMaxThreshold: 512,
	}
}

// workloads returns the selected workload list (fresh instances). The
// default is the paper's eleven — registered extras (e.g. the sidechannel
// adversaries) never enter a paper figure unless named explicitly.
func (o Options) workloads() []workload.Workload {
	all := workload.Suite(o.Size, o.Seed)
	names := o.Workloads
	if names == nil {
		names = workload.PaperNames()
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []workload.Workload
	for _, w := range all {
		if want[w.Name()] {
			out = append(out, w)
		}
	}
	return out
}

// engineConfig assembles an MC configuration with the options' epoch scale.
func (o Options) engineConfig(mode engine.Mode, scheme counter.Scheme) engine.Config {
	cfg := engine.DefaultConfig(mode, scheme, 0)
	cfg.InitSeed = o.Seed
	cfg.L0Table.EpochAccesses = o.EpochAccesses
	cfg.L1Table.EpochAccesses = o.EpochAccesses
	cfg.L0Table.OverMaxThreshold = o.OverMaxThreshold
	cfg.L1Table.OverMaxThreshold = o.OverMaxThreshold
	return cfg
}

func (o Options) lifetimeConfig(mode engine.Mode, scheme counter.Scheme) sim.LifetimeConfig {
	cfg := sim.DefaultLifetimeConfig(o.engineConfig(mode, scheme))
	cfg.MaxAccesses = o.LifetimeAccesses
	cfg.Seed = o.Seed
	return cfg
}

func (o Options) detailedConfig(mode engine.Mode, scheme counter.Scheme) sim.DetailedConfig {
	cfg := sim.DefaultDetailedConfig(o.engineConfig(mode, scheme))
	cfg.Seed = o.Seed
	cfg.Cores = o.Cores
	cfg.WarmupAccesses = o.WarmupAccesses
	cfg.MeasureAccesses = o.MeasureAccesses
	if o.Size != workload.SizeFull {
		// Scale the LLC with the smaller workloads so the miss regime
		// matches the paper's (footprint >> LLC), and shorten the atomic
		// fast-forward to just clear the kernels' init phases.
		cfg.LLC.SizeBytes = 2 << 20
		cfg.FastForwardAccesses = 1_200_000
	} else {
		// Full-scale kernels open with multi-million-access init phases
		// (label/color/distance array initialization over 4M vertices);
		// fast-forward past them so the observation window measures the
		// kernel proper, like the paper's region-of-interest warmup.
		cfg.FastForwardAccesses = 6_000_000
	}
	return cfg
}

// runKey identifies one detailed simulation for result caching: the
// detailed figures share most of their runs (Figure 13's Morphable run is
// Figure 14's and Figure 17's 15 ns point), and all runs are deterministic.
type runKey struct {
	name     string
	mode     engine.Mode
	scheme   counter.Scheme
	aesNS    int64
	ctrKB    int
	spec     bool
	hardened bool
	size     workload.Size
	seed     uint64
	warm     uint64
	meas     uint64
	cores    int
}

// detailedEntry is one cached detailed simulation. The per-entry Once is
// what makes the cache safe under the parallel sweep: two goroutines that
// need the same run rendezvous on the entry, exactly one executes the
// simulation, and the other blocks until the result is ready instead of
// duplicating hours of work.
type detailedEntry struct {
	once sync.Once
	res  sim.DetailedResult
}

var (
	detailedCacheMu sync.Mutex
	detailedCache   = map[runKey]*detailedEntry{}
	detailedBuilds  atomic.Uint64 // simulations actually executed (dedup tests)
)

// detailedRun executes (or recalls) one detailed simulation.
func (o Options) detailedRun(name string, mode engine.Mode, scheme counter.Scheme,
	aesNS int64, ctrKB int, spec bool) sim.DetailedResult {
	return o.detailedRunH(name, mode, scheme, aesNS, ctrKB, spec, false)
}

// detailedRunH is detailedRun with the hardened (randomized-insertion)
// table mode as an extra axis — the FigureHardenedCost runs.
func (o Options) detailedRunH(name string, mode engine.Mode, scheme counter.Scheme,
	aesNS int64, ctrKB int, spec, hardened bool) sim.DetailedResult {
	key := runKey{name, mode, scheme, aesNS, ctrKB, spec, hardened,
		o.Size, o.Seed, o.WarmupAccesses, o.MeasureAccesses, o.Cores}
	detailedCacheMu.Lock()
	e, ok := detailedCache[key]
	if !ok {
		e = &detailedEntry{}
		detailedCache[key] = e
	}
	detailedCacheMu.Unlock()
	e.once.Do(func() {
		detailedBuilds.Add(1)
		w, ok := workload.ByName(o.Size, o.Seed, name)
		if !ok {
			panic("experiments: unknown workload " + name)
		}
		cfg := o.detailedConfig(mode, scheme)
		cfg.AESLat = aesNS * 1000
		cfg.Engine.CounterCacheBytes = ctrKB << 10
		cfg.SpeculativeVerification = spec
		if hardened {
			sidechan.HardenConfig(&cfg.Engine, o.Seed)
		}
		e.res = sim.RunDetailed(w, cfg)
	})
	return e.res
}

// Figure3 measures counter-cache misses per LLC miss under Morphable
// Counters (the paper's §III characterization).
func Figure3(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 3: counter cache misses per LLC miss (Morphable, 32KB counter cache)",
		Unit:   "%",
		Series: []string{"ctr miss rate"},
	}
	ws := o.workloads()
	rows := make([][]float64, len(ws))
	o.forEachIndex(len(ws), func(i int) {
		res := sim.RunLifetime(ws[i], o.lifetimeConfig(engine.Baseline, counter.Morphable))
		rows[i] = []float64{res.Engine.CtrMissRate()}
	})
	for i, w := range ws {
		t.Add(w.Name(), rows[i]...)
	}
	return t
}

// Figure4 measures TLB misses normalized to LLC misses under 4 KB and 2 MB
// pages.
func Figure4(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 4: TLB misses per LLC miss (1536-entry TLB)",
		Unit:   "%",
		Series: []string{"4KB pages", "2MB pages"},
	}
	ws := o.workloads()
	rows := make([][]float64, len(ws))
	o.forEachIndex(len(ws), func(i int) {
		res := sim.RunLifetime(ws[i], o.lifetimeConfig(engine.Baseline, counter.Morphable))
		misses := float64(res.LLCMisses())
		if misses == 0 {
			misses = 1
		}
		rows[i] = []float64{
			float64(res.TLB4KMisses) / misses,
			float64(res.TLB2MMisses) / misses,
		}
	})
	for i, w := range ws {
		t.Add(w.Name(), rows[i]...)
	}
	return t
}

// Figure10 breaks the memoization hit rate on counter misses into the two
// sources: live Memoized Counter Value Groups and the MRU evicted-value
// cache (§IV-C4).
func Figure10(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 10: memoization hit rate for counter misses, by source",
		Unit:   "%",
		Series: []string{"groups", "recently-used", "total"},
	}
	ws := o.workloads()
	rows := make([][]float64, len(ws))
	o.forEachIndex(len(ws), func(i int) {
		res := sim.RunLifetime(ws[i], o.lifetimeConfig(engine.RMCC, counter.Morphable))
		e := res.Engine
		den := float64(e.L0MemoLookupsOnMiss)
		if den == 0 {
			den = 1
		}
		g := float64(e.L0MemoGroupHitsOnMiss) / den
		m := float64(e.L0MemoMRUHitsOnMiss) / den
		rows[i] = []float64{g, m, g + m}
	})
	for i, w := range ws {
		t.Add(w.Name(), rows[i]...)
	}
	return t
}

// Figure12 breaks down DRAM bandwidth utilization under Morphable.
func Figure12(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 12: bandwidth utilization by traffic type (Morphable)",
		Unit:   "%",
		Series: []string{"data", "counters", "L0 overflow", "L1+ overflow", "total"},
	}
	ws := o.workloads()
	rows := make([][]float64, len(ws))
	o.forEachIndex(len(ws), func(i int) {
		res := o.detailedRun(ws[i].Name(), engine.Baseline, counter.Morphable, 15, 128, false)
		u := res.DRAM.UtilizationByKind(res.WindowTime)
		total := res.DRAM.Utilization(res.WindowTime)
		rows[i] = []float64{
			u["data"], u["counters"], u["level 0 overflow"],
			u["level 1 and higher overflow"], total,
		}
	})
	for i, w := range ws {
		t.Add(w.Name(), rows[i]...)
	}
	return t
}

// Figure13 measures performance of SC-64, Morphable and RMCC normalized to
// a non-secure memory system — the paper's headline plot.
func Figure13(o Options) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 13: performance normalized to non-secure",
		Unit:    "x",
		Series:  []string{"SC-64", "Morphable", "RMCC"},
		GeoMean: true,
	}
	ws := o.workloads()
	type modePoint struct {
		mode   engine.Mode
		scheme counter.Scheme
	}
	points := []modePoint{
		{engine.NonSecure, counter.Morphable},
		{engine.Baseline, counter.SC64},
		{engine.Baseline, counter.Morphable},
		{engine.RMCC, counter.Morphable},
	}
	ipc := make([][]float64, len(ws))
	for i := range ipc {
		ipc[i] = make([]float64, len(points))
	}
	o.forEachCell(len(ws), len(points), func(i, p int) {
		res := o.detailedRun(ws[i].Name(), points[p].mode, points[p].scheme, 15, 128, false)
		ipc[i][p] = res.IPC
	})
	for i, w := range ws {
		ns := ipc[i][0]
		t.Add(w.Name(), ipc[i][1]/ns, ipc[i][2]/ns, ipc[i][3]/ns)
	}
	return t
}

// Figure14 measures average LLC miss latency.
func Figure14(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 14: average LLC miss latency",
		Unit:   "ns",
		Series: []string{"SC-64", "Morphable", "RMCC", "Non-secure"},
	}
	ws := o.workloads()
	type modePoint struct {
		mode   engine.Mode
		scheme counter.Scheme
	}
	points := []modePoint{
		{engine.Baseline, counter.SC64},
		{engine.Baseline, counter.Morphable},
		{engine.RMCC, counter.Morphable},
		{engine.NonSecure, counter.Morphable},
	}
	lat := make([][]float64, len(ws))
	for i := range lat {
		lat[i] = make([]float64, len(points))
	}
	o.forEachCell(len(ws), len(points), func(i, p int) {
		res := o.detailedRun(ws[i].Name(), points[p].mode, points[p].scheme, 15, 128, false)
		lat[i][p] = res.AvgMissLatencyNS
	})
	for i, w := range ws {
		t.Add(w.Name(), lat[i]...)
	}
	return t
}

// Figure15 measures the average number of blocks covered by each memoized
// counter value at the end of each workload's lifetime.
func Figure15(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 15: blocks covered per memoized counter value",
		Series: []string{"blocks"},
	}
	ws := o.workloads()
	rows := make([]float64, len(ws))
	o.forEachIndex(len(ws), func(i int) {
		res := sim.RunLifetime(ws[i], o.lifetimeConfig(engine.RMCC, counter.Morphable))
		rows[i] = res.CoveragePerValue
	})
	for i, w := range ws {
		t.Add(w.Name(), rows[i])
	}
	return t
}

// Figure16 measures RMCC's memory traffic overhead over Morphable, split
// into the L0-memoization and L1-memoization contributions.
func Figure16(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 16: traffic overhead of RMCC vs Morphable (1%+1% budgets)",
		Unit:   "%",
		Series: []string{"memoizing L0", "memoizing L1", "total"},
	}
	ws := o.workloads()
	rows := make([][]float64, len(ws))
	o.forEachIndex(len(ws), func(i int) {
		name := ws[i].Name()
		base := sim.RunLifetime(ws[i], o.lifetimeConfig(engine.Baseline, counter.Morphable))
		w2, _ := workload.ByName(o.Size, o.Seed, name)
		rm := sim.RunLifetime(w2, o.lifetimeConfig(engine.RMCC, counter.Morphable))
		bt := float64(base.Engine.TotalTraffic())
		if bt == 0 {
			bt = 1
		}
		l0 := float64(rm.Engine.OverheadL0Blocks) / bt
		l1 := float64(rm.Engine.OverheadL1Blocks) / bt
		total := float64(rm.Engine.TotalTraffic())/bt - 1
		if total < 0 {
			total = 0
		}
		rows[i] = []float64{l0, l1, total}
	})
	for i, w := range ws {
		t.Add(w.Name(), rows[i]...)
	}
	return t
}

// Figure17 measures RMCC's speedup over Morphable at 15 ns (AES-128) and
// 22 ns (AES-256) latencies.
func Figure17(o Options) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 17: RMCC speedup over Morphable vs AES latency",
		Unit:    "x",
		Series:  []string{"15ns AES", "22ns AES"},
		GeoMean: true,
	}
	ws := o.workloads()
	lats := []int64{15, 22}
	rows := make([][]float64, len(ws))
	for i := range rows {
		rows[i] = make([]float64, len(lats))
	}
	o.forEachCell(len(ws), len(lats), func(i, p int) {
		name := ws[i].Name()
		mo := o.detailedRun(name, engine.Baseline, counter.Morphable, lats[p], 128, false)
		rm := o.detailedRun(name, engine.RMCC, counter.Morphable, lats[p], 128, false)
		rows[i][p] = rm.IPC / mo.IPC
	})
	for i, w := range ws {
		t.Add(w.Name(), rows[i]...)
	}
	return t
}

// Figure18 measures RMCC's speedup over Morphable under 128/256/512 KB
// counter caches.
func Figure18(o Options) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 18: RMCC speedup over Morphable vs counter cache size",
		Unit:    "x",
		Series:  []string{"128KB", "256KB", "512KB"},
		GeoMean: true,
	}
	ws := o.workloads()
	sizes := []int{128, 256, 512}
	rows := make([][]float64, len(ws))
	for i := range rows {
		rows[i] = make([]float64, len(sizes))
	}
	o.forEachCell(len(ws), len(sizes), func(i, p int) {
		name := ws[i].Name()
		mo := o.detailedRun(name, engine.Baseline, counter.Morphable, 15, sizes[p], false)
		rm := o.detailedRun(name, engine.RMCC, counter.Morphable, 15, sizes[p], false)
		rows[i][p] = rm.IPC / mo.IPC
	})
	for i, w := range ws {
		t.Add(w.Name(), rows[i]...)
	}
	return t
}

// Figure19 measures memoization hit rate (over all accessed counter
// values) under 1 %, 2 % and 8 % bandwidth budgets.
func Figure19(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 19: memoization hit rate vs bandwidth budget",
		Unit:   "%",
		Series: []string{"1% budget", "2% budget", "8% budget"},
	}
	ws := o.workloads()
	fracs := []float64{0.01, 0.02, 0.08}
	rows := make([][]float64, len(ws))
	for i := range rows {
		rows[i] = make([]float64, len(fracs))
	}
	o.forEachCell(len(ws), len(fracs), func(i, p int) {
		wl, _ := workload.ByName(o.Size, o.Seed, ws[i].Name())
		cfg := o.lifetimeConfig(engine.RMCC, counter.Morphable)
		cfg.Engine.L0Table.BudgetFrac = fracs[p]
		cfg.Engine.L1Table.BudgetFrac = fracs[p]
		res := sim.RunLifetime(wl, cfg)
		rows[i][p] = res.Engine.MemoHitRateAll()
	})
	for i, w := range ws {
		t.Add(w.Name(), rows[i]...)
	}
	return t
}

// Figure20 measures traffic overhead vs Morphable under the same budgets.
func Figure20(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 20: traffic overhead vs bandwidth budget",
		Unit:   "%",
		Series: []string{"1% budget", "2% budget", "8% budget"},
	}
	ws := o.workloads()
	fracs := []float64{0.01, 0.02, 0.08}
	// Cell p == 0 is the Morphable baseline; cells 1..3 are the budget runs.
	traffic := make([][]uint64, len(ws))
	for i := range traffic {
		traffic[i] = make([]uint64, len(fracs)+1)
	}
	o.forEachCell(len(ws), len(fracs)+1, func(i, p int) {
		if p == 0 {
			res := sim.RunLifetime(ws[i], o.lifetimeConfig(engine.Baseline, counter.Morphable))
			traffic[i][0] = res.Engine.TotalTraffic()
			return
		}
		wl, _ := workload.ByName(o.Size, o.Seed, ws[i].Name())
		cfg := o.lifetimeConfig(engine.RMCC, counter.Morphable)
		cfg.Engine.L0Table.BudgetFrac = fracs[p-1]
		cfg.Engine.L1Table.BudgetFrac = fracs[p-1]
		res := sim.RunLifetime(wl, cfg)
		traffic[i][p] = res.Engine.TotalTraffic()
	})
	for i, w := range ws {
		bt := float64(traffic[i][0])
		if bt == 0 {
			bt = 1
		}
		row := make([]float64, 0, len(fracs))
		for p := 1; p <= len(fracs); p++ {
			over := float64(traffic[i][p])/bt - 1
			if over < 0 {
				over = 0
			}
			row = append(row, over)
		}
		t.Add(w.Name(), row...)
	}
	return t
}

// groupSweep runs RMCC lifetime sims across Memoized Counter Value Group
// sizes 4/8/16 at a constant 128 table entries.
func groupSweep(o Options, metric func(sim.LifetimeResult, sim.LifetimeResult) float64, title, unit string) *stats.Table {
	t := &stats.Table{
		Title:  title,
		Unit:   unit,
		Series: []string{"group size 4", "group size 8", "group size 16"},
	}
	ws := o.workloads()
	sizes := []int{4, 8, 16}
	// Cell p == 0 is the Morphable baseline; cells 1..3 sweep the group size.
	results := make([][]sim.LifetimeResult, len(ws))
	for i := range results {
		results[i] = make([]sim.LifetimeResult, len(sizes)+1)
	}
	o.forEachCell(len(ws), len(sizes)+1, func(i, p int) {
		if p == 0 {
			results[i][0] = sim.RunLifetime(ws[i], o.lifetimeConfig(engine.Baseline, counter.Morphable))
			return
		}
		gs := sizes[p-1]
		wl, _ := workload.ByName(o.Size, o.Seed, ws[i].Name())
		cfg := o.lifetimeConfig(engine.RMCC, counter.Morphable)
		cfg.Engine.L0Table.GroupSize = gs
		cfg.Engine.L0Table.Groups = 128 / gs
		cfg.Engine.L1Table.GroupSize = gs
		cfg.Engine.L1Table.Groups = 128 / gs
		results[i][p] = sim.RunLifetime(wl, cfg)
	})
	for i, w := range ws {
		row := make([]float64, 0, len(sizes))
		for p := 1; p <= len(sizes); p++ {
			row = append(row, metric(results[i][p], results[i][0]))
		}
		t.Add(w.Name(), row...)
	}
	return t
}

// Figure21 measures memoization hit rate vs group size.
func Figure21(o Options) *stats.Table {
	return groupSweep(o,
		func(r, _ sim.LifetimeResult) float64 { return r.Engine.MemoHitRateAll() },
		"Figure 21: memoization hit rate vs Memoized Counter Value Group size (128 entries)",
		"%")
}

// Figure22 measures traffic overhead vs group size.
func Figure22(o Options) *stats.Table {
	return groupSweep(o,
		func(r, base sim.LifetimeResult) float64 {
			bt := float64(base.Engine.TotalTraffic())
			if bt == 0 {
				return 0
			}
			over := float64(r.Engine.TotalTraffic())/bt - 1
			if over < 0 {
				over = 0
			}
			return over
		},
		"Figure 22: traffic overhead vs Memoized Counter Value Group size (128 entries)",
		"%")
}

// Headline reproduces the §VI text numbers: the fraction of counter misses
// RMCC accelerates (92 % in the paper), the L1 memoization hit rate on L1
// misses (87 %), and the max-counter growth vs Morphable (+24 %).
func Headline(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Headline (§VI): accelerated counter misses / L1 memo hits / max counter growth",
		Unit:   "%",
		Series: []string{"accelerated", "L1 memo hit", "max ctr growth"},
	}
	ws := o.workloads()
	rows := make([][]float64, len(ws))
	o.forEachIndex(len(ws), func(i int) {
		base := sim.RunLifetime(ws[i], o.lifetimeConfig(engine.Baseline, counter.Morphable))
		wl, _ := workload.ByName(o.Size, o.Seed, ws[i].Name())
		rm := sim.RunLifetime(wl, o.lifetimeConfig(engine.RMCC, counter.Morphable))
		l1Rate := 0.0
		if rm.Engine.L1MemoLookupsOnMiss > 0 {
			l1Rate = float64(rm.Engine.L1MemoHitsOnMiss) / float64(rm.Engine.L1MemoLookupsOnMiss)
		}
		growth := 0.0
		if base.MaxCounter > 0 {
			growth = float64(rm.MaxCounter)/float64(base.MaxCounter) - 1
		}
		rows[i] = []float64{rm.Engine.AcceleratedRate(), l1Rate, growth}
	})
	for i, w := range ws {
		t.Add(w.Name(), rows[i]...)
	}
	return t
}
