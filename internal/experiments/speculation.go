package experiments

import (
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/stats"
)

// ExtensionSpeculation compares RMCC against PoisonIvy-style speculative
// verification (paper §VII): speculation hides only the verification
// latency, while RMCC hides the counter-to-pad AES itself — and the two
// compose. Series are normalized to the non-secure system, on the three
// highest-counter-miss workloads.
func ExtensionSpeculation(o Options) *stats.Table {
	t := &stats.Table{
		Title: "Extension (§VII): speculative verification vs RMCC " +
			"(normalized to non-secure)",
		Unit:    "x",
		Series:  []string{"Morphable", "Morph+Spec", "RMCC", "RMCC+Spec"},
		GeoMean: true,
	}
	names := o.Workloads
	if names == nil {
		names = []string{"canneal", "omnetpp", "BFS"}
	}
	for _, name := range names {
		run := func(mode engine.Mode, spec bool) sim.DetailedResult {
			return o.detailedRun(name, mode, counter.Morphable, 15, 128, spec)
		}
		ns := run(engine.NonSecure, false)
		mo := run(engine.Baseline, false)
		moSpec := run(engine.Baseline, true)
		rm := run(engine.RMCC, false)
		rmSpec := run(engine.RMCC, true)
		t.Add(name, mo.IPC/ns.IPC, moSpec.IPC/ns.IPC, rm.IPC/ns.IPC, rmSpec.IPC/ns.IPC)
	}
	return t
}
