package experiments

import (
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/stats"
)

// ExtensionSpeculation compares RMCC against PoisonIvy-style speculative
// verification (paper §VII): speculation hides only the verification
// latency, while RMCC hides the counter-to-pad AES itself — and the two
// compose. Series are normalized to the non-secure system, on the three
// highest-counter-miss workloads.
func ExtensionSpeculation(o Options) *stats.Table {
	t := &stats.Table{
		Title: "Extension (§VII): speculative verification vs RMCC " +
			"(normalized to non-secure)",
		Unit:    "x",
		Series:  []string{"Morphable", "Morph+Spec", "RMCC", "RMCC+Spec"},
		GeoMean: true,
	}
	names := o.Workloads
	if names == nil {
		names = []string{"canneal", "omnetpp", "BFS"}
	}
	points := []struct {
		mode engine.Mode
		spec bool
	}{
		{engine.NonSecure, false},
		{engine.Baseline, false},
		{engine.Baseline, true},
		{engine.RMCC, false},
		{engine.RMCC, true},
	}
	ipc := make([][]float64, len(names))
	for i := range ipc {
		ipc[i] = make([]float64, len(points))
	}
	o.forEachCell(len(names), len(points), func(i, p int) {
		res := o.detailedRun(names[i], points[p].mode, counter.Morphable, 15, 128, points[p].spec)
		ipc[i][p] = res.IPC
	})
	for i, name := range names {
		ns := ipc[i][0]
		t.Add(name, ipc[i][1]/ns, ipc[i][2]/ns, ipc[i][3]/ns, ipc[i][4]/ns)
	}
	return t
}
