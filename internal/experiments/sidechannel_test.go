package experiments

import (
	"testing"

	"rmcc/internal/workload"
)

// leakageTestOptions keeps the leakage figure fast: 16 attacker epochs per
// cell (the minimum clamp) at test scale.
func leakageTestOptions() Options {
	o := testOptions()
	o.LifetimeAccesses = 100_000 // below 16 epochs of ppSweep → clamps to 16
	return o
}

func TestFigureLeakageShape(t *testing.T) {
	tb := FigureLeakage(leakageTestOptions())
	if len(tb.Rows) != 4 || len(tb.Series) != 4 {
		t.Fatalf("table shape: %d rows x %d series", len(tb.Rows), len(tb.Series))
	}

	// The paper-specific result: only stock RMCC leaks through the memo
	// table, and the hardened mode closes most of it.
	rmcc, _ := tb.Cell("ppSweep / memo-insert", "RMCC")
	hard, _ := tb.Cell("ppSweep / memo-insert", "RMCC hardened")
	sgx, _ := tb.Cell("ppSweep / memo-insert", "SGX")
	morph, _ := tb.Cell("ppSweep / memo-insert", "Morphable")
	if sgx != 0 || morph != 0 {
		t.Errorf("non-memoizing baselines leak via memo-insert: sgx=%v morphable=%v", sgx, morph)
	}
	if rmcc < 1.0 {
		t.Errorf("stock RMCC memo-insert = %.3f bits, want > 1.0", rmcc)
	}
	if hard >= 0.5*rmcc {
		t.Errorf("hardened memo-insert = %.3f bits, want < half of stock %.3f", hard, rmcc)
	}

	// The cache channels are mode-independent: every mode leaks them alike.
	for _, series := range tb.Series {
		cs, _ := tb.Cell("ppSweep / ctr-sets", series)
		if cs < 1.0 {
			t.Errorf("ctr-sets under %s = %.3f bits, want > 1.0", series, cs)
		}
		pg, _ := tb.Cell("memjam4k / pg-offset", series)
		if pg < 1.0 {
			t.Errorf("pg-offset under %s = %.3f bits, want > 1.0", series, pg)
		}
		mi, _ := tb.Cell("memjam4k / memo-insert", series)
		if mi != 0 {
			t.Errorf("memjam4k memo-insert under %s = %.3f bits, want 0", series, mi)
		}
	}
}

// TestFigureLeakageDeterministicAndParallel: the figure must be
// byte-identical across repeated runs and across Parallelism settings (the
// acceptance criterion shared by every figure in the suite).
func TestFigureLeakageDeterministicAndParallel(t *testing.T) {
	o := leakageTestOptions()
	seq := FigureLeakage(o).String()
	if again := FigureLeakage(o).String(); again != seq {
		t.Fatal("repeated sequential runs differ")
	}
	o.Parallelism = -1
	if par := FigureLeakage(o).String(); par != seq {
		t.Fatal("parallel run differs from sequential")
	}
}

func TestFigureHardenedCostShape(t *testing.T) {
	tb := FigureHardenedCost(testOptions())
	if len(tb.Rows) != 2 || len(tb.Series) != 3 {
		t.Fatalf("table shape: %d rows x %d series", len(tb.Rows), len(tb.Series))
	}
	for _, row := range []string{"canneal", "mcf"} {
		rm, _ := tb.Cell(row, "RMCC")
		hd, _ := tb.Cell(row, "RMCC hardened")
		ratio, _ := tb.Cell(row, "hardened/RMCC")
		if rm <= 0 || hd <= 0 {
			t.Fatalf("%s: non-positive normalized IPC (%v, %v)", row, rm, hd)
		}
		if diff := ratio - hd/rm; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: ratio %.6f != hardened/stock %.6f", row, ratio, hd/rm)
		}
	}
}

// TestLeakageAdversaryResolution: the figure resolves adversaries through
// the shared registry, and the epoch clamp holds at both extremes.
func TestLeakageAdversaryResolution(t *testing.T) {
	o := testOptions()
	adv := leakageAdversary(o, "ppSweep")
	if adv.Name() != "ppSweep" {
		t.Fatalf("resolved %q", adv.Name())
	}
	o.LifetimeAccesses = 0
	if e := leakageEpochs(o, adv); e != 16 {
		t.Errorf("low clamp: epochs = %d, want 16", e)
	}
	o.LifetimeAccesses = 1 << 40
	if e := leakageEpochs(o, adv); e != 96 {
		t.Errorf("high clamp: epochs = %d, want 96", e)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown adversary did not panic")
		}
	}()
	leakageAdversary(o, "canneal") // not an Adversary
}

// TestWorkloadFilterExcludesExtras: the default workload set for paper
// figures stays the eleven even with the adversaries registered.
func TestWorkloadFilterExcludesExtras(t *testing.T) {
	o := testOptions()
	o.Workloads = nil
	for _, w := range o.workloads() {
		if w.Name() == "ppSweep" || w.Name() == "memjam4k" {
			t.Fatalf("adversary %q leaked into the default figure set", w.Name())
		}
	}
	o.Workloads = []string{"ppSweep"}
	ws := o.workloads()
	if len(ws) != 1 || ws[0].Name() != "ppSweep" {
		t.Fatalf("explicit extra selection = %v", ws)
	}
	if _, ok := ws[0].(workload.Sharded); !ok {
		t.Fatal("ppSweep lost its sharded interface through the suite")
	}
}
