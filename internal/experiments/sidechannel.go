package experiments

import (
	"fmt"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sidechan"
	"rmcc/internal/stats"
	"rmcc/internal/workload"
)

// leakageAdversary resolves one sidechannel adversary through the workload
// registry — the same path rmccd sessions and rmcc-loadgen use — so the
// figure exercises the registration, not a private constructor.
func leakageAdversary(o Options, name string) sidechan.Adversary {
	w, ok := workload.ByName(o.Size, o.Seed, name)
	if !ok {
		panic("experiments: unknown adversary workload " + name)
	}
	adv, ok := w.(sidechan.Adversary)
	if !ok {
		panic("experiments: workload " + name + " is not a sidechan.Adversary")
	}
	return adv
}

// leakageEpochs scales the attacker-epoch count to the options' lifetime
// window, clamped so the MI estimate has enough samples at Quick scale
// without dominating the suite at Default scale.
func leakageEpochs(o Options, adv sidechan.Adversary) int {
	per := adv.EpochAccesses()
	if per == 0 {
		return 16
	}
	epochs := int(o.LifetimeAccesses / per)
	if epochs < 16 {
		epochs = 16
	}
	if epochs > 96 {
		epochs = 96
	}
	return epochs
}

// FigureLeakage quantifies the side channels: per-epoch mutual information
// (Miller–Madow-corrected, bits) between the adversary's secret class and
// each observable channel, across the protection points. The memo-insert
// rows are the paper-specific result — only RMCC's adaptive insertion
// leaks there, and the hardened mode closes most of it — while ctr-sets
// and pg-offset are classic counter-cache channels every mode shares (the
// memoization machinery neither adds to nor removes them).
func FigureLeakage(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Leakage: secret-to-observable mutual information per attacker epoch",
		Unit:   "bits",
		Series: []string{"SGX", "Morphable", "RMCC", "RMCC hardened"},
	}
	type point struct {
		mode     engine.Mode
		scheme   counter.Scheme
		hardened bool
	}
	points := []point{
		{engine.Baseline, counter.SGX, false},
		{engine.Baseline, counter.Morphable, false},
		{engine.RMCC, counter.Morphable, false},
		{engine.RMCC, counter.Morphable, true},
	}
	advs := []struct {
		name     string
		channels []string
	}{
		{"ppSweep", []string{"memo-insert", "ctr-sets"}},
		{"memjam4k", []string{"pg-offset", "memo-insert"}},
	}
	reports := make([][]sidechan.Report, len(advs))
	for a := range reports {
		reports[a] = make([]sidechan.Report, len(points))
	}
	o.forEachCell(len(advs), len(points), func(a, p int) {
		adv := leakageAdversary(o, advs[a].name)
		res, err := sidechan.RunLeakage(adv, sidechan.LeakageOptions{
			Mode:     points[p].mode,
			Scheme:   points[p].scheme,
			Hardened: points[p].hardened,
			Seed:     o.Seed,
			Epochs:   leakageEpochs(o, adv),
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: leakage run %s: %v", advs[a].name, err))
		}
		reports[a][p] = res.Report
	})
	for a, adv := range advs {
		for _, ch := range adv.channels {
			row := make([]float64, len(points))
			for p := range points {
				if est, ok := reports[a][p].Channel(ch); ok {
					row[p] = est.Bits
				}
			}
			t.Add(fmt.Sprintf("%s / %s", adv.name, ch), row...)
		}
	}
	return t
}

// FigureHardenedCost prices the hardened (randomized-insertion) RMCC mode
// across the paper's eleven workloads: IPC normalized to non-secure for
// stock and hardened RMCC, plus the hardened/stock ratio (the direct cost
// of decorrelating the insertion channel).
func FigureHardenedCost(o Options) *stats.Table {
	t := &stats.Table{
		Title:   "Hardened RMCC: performance cost of randomized group insertion",
		Unit:    "x",
		Series:  []string{"RMCC", "RMCC hardened", "hardened/RMCC"},
		GeoMean: true,
	}
	ws := o.workloads()
	type point struct {
		mode     engine.Mode
		hardened bool
	}
	points := []point{
		{engine.NonSecure, false},
		{engine.RMCC, false},
		{engine.RMCC, true},
	}
	ipc := make([][]float64, len(ws))
	for i := range ipc {
		ipc[i] = make([]float64, len(points))
	}
	o.forEachCell(len(ws), len(points), func(i, p int) {
		res := o.detailedRunH(ws[i].Name(), points[p].mode, counter.Morphable,
			15, 128, false, points[p].hardened)
		ipc[i][p] = res.IPC
	})
	for i, w := range ws {
		ns, rm, hd := ipc[i][0], ipc[i][1], ipc[i][2]
		if ns == 0 || rm == 0 {
			t.Add(w.Name(), 0, 0, 0)
			continue
		}
		t.Add(w.Name(), rm/ns, hd/ns, hd/rm)
	}
	return t
}
