package experiments

import (
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/stats"
	"rmcc/internal/workload"
)

// Convergence validates the *self-reinforcing* part of RMCC organically: a
// cold-started system (randomized counters, no warm start) is simulated
// for increasing lifetimes and the cumulative memoization hit rate on
// counter misses is reported. The rate must grow monotonically-ish toward
// the steady state that the warm-started figure runs measure — this is the
// dynamic the paper amortizes over whole application lifetimes.
func Convergence(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Convergence: memoization hit rate vs lifetime (cold start)",
		Unit:   "%",
		Series: []string{"0.5x", "1x", "2x", "4x"},
	}
	base := o.LifetimeAccesses
	if base == 0 {
		base = 1_000_000
	}
	for _, name := range []string{"canneal", "pageRank"} {
		row := make([]float64, 0, 4)
		for _, mult := range []uint64{1, 2, 4, 8} {
			w, _ := workload.ByName(o.Size, o.Seed, name)
			cfg := o.lifetimeConfig(engine.RMCC, counter.Morphable)
			cfg.Engine.WarmStartFrac = 0 // cold start: organic convergence
			cfg.MaxAccesses = base * mult / 2
			res := sim.RunLifetime(w, cfg)
			row = append(row, res.Engine.MemoHitRateOnMisses())
		}
		t.Add(name, row...)
	}
	return t
}
