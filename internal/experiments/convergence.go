package experiments

import (
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/stats"
	"rmcc/internal/workload"
)

// Convergence validates the *self-reinforcing* part of RMCC organically: a
// cold-started system (randomized counters, no warm start) is simulated
// for increasing lifetimes and the cumulative memoization hit rate on
// counter misses is reported. The rate must grow monotonically-ish toward
// the steady state that the warm-started figure runs measure — this is the
// dynamic the paper amortizes over whole application lifetimes.
func Convergence(o Options) *stats.Table {
	t := &stats.Table{
		Title:  "Convergence: memoization hit rate vs lifetime (cold start)",
		Unit:   "%",
		Series: []string{"0.5x", "1x", "2x", "4x"},
	}
	base := o.LifetimeAccesses
	if base == 0 {
		base = 1_000_000
	}
	names := []string{"canneal", "pageRank"}
	mults := []uint64{1, 2, 4, 8}
	rows := make([][]float64, len(names))
	for i := range rows {
		rows[i] = make([]float64, len(mults))
	}
	o.forEachCell(len(names), len(mults), func(i, p int) {
		w, _ := workload.ByName(o.Size, o.Seed, names[i])
		cfg := o.lifetimeConfig(engine.RMCC, counter.Morphable)
		cfg.Engine.WarmStartFrac = 0 // cold start: organic convergence
		cfg.MaxAccesses = base * mults[p] / 2
		res := sim.RunLifetime(w, cfg)
		rows[i][p] = res.Engine.MemoHitRateOnMisses()
	})
	for i, name := range names {
		t.Add(name, rows[i]...)
	}
	return t
}
