package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves Options.Parallelism to a concrete worker count:
// 0 or 1 means sequential, negative means one worker per CPU.
func (o Options) workers() int {
	switch {
	case o.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism == 0:
		return 1
	default:
		return o.Parallelism
	}
}

// cancelled reports whether Options.Context is done. Checked before every
// cell so a SIGINT stops the sweep at cell granularity instead of running
// the remaining hours of simulation.
func (o Options) cancelled() bool {
	if o.Context == nil {
		return false
	}
	select {
	case <-o.Context.Done():
		return true
	default:
		return false
	}
}

// forEachIndex runs fn(i) for every i in [0, n), fanning the indices across
// up to workers() goroutines via an atomic work counter. Callers write each
// result into an index-addressed slot and assemble tables afterwards in
// index order, so the rendered output is byte-identical to a sequential run
// regardless of Parallelism. Every cell is an independent simulation over
// its own workload and engine instances; the only shared state is the
// detailed-run cache, which dedups concurrent builds per key.
//
// When Options.Context is cancelled, workers stop draining the cell queue;
// unstarted cells are skipped and their result slots keep zero values.
func (o Options) forEachIndex(n int, fn func(i int)) {
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if o.cancelled() {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for j := 0; j < w; j++ {
		go func() {
			defer wg.Done()
			for {
				if o.cancelled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// cell identifies one (workload, sweep point) unit of work when a figure
// sweeps a configuration axis per workload.
type cell struct{ w, p int }

// forEachCell fans rows×points cells across the worker pool.
func (o Options) forEachCell(rows, points int, fn func(w, p int)) {
	cells := make([]cell, 0, rows*points)
	for w := 0; w < rows; w++ {
		for p := 0; p < points; p++ {
			cells = append(cells, cell{w, p})
		}
	}
	o.forEachIndex(len(cells), func(i int) { fn(cells[i].w, cells[i].p) })
}
