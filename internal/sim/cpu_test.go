package sim

import (
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/workload"
)

// syntheticWorkload drives the CPU model with a crafted access pattern.
type syntheticWorkload struct {
	name      string
	footprint uint64
	gen       func(emit func(addr uint64, write bool, gap uint8) bool)
}

func (s *syntheticWorkload) Name() string           { return s.name }
func (s *syntheticWorkload) FootprintBytes() uint64 { return s.footprint }
func (s *syntheticWorkload) Run(_ uint64, sink workload.Sink) {
	s.gen(func(addr uint64, write bool, gap uint8) bool {
		return sink(workload.Access{Addr: addr, Write: write, Gap: gap})
	})
}

func cpuTestCfg() DetailedConfig {
	cfg := DefaultDetailedConfig(engine.DefaultConfig(engine.NonSecure, counter.Morphable, 0))
	cfg.FastForwardAccesses = 0
	cfg.WarmupAccesses = 5_000
	cfg.MeasureAccesses = 50_000
	cfg.PrefetchStreams = 0 // isolate the core model
	return cfg
}

// TestCPUCacheResidentIPC: a tiny working set stays in L1, so the core
// should sustain an IPC well above 1 (gaps dominate; loads hit in 2 ns).
func TestCPUCacheResidentIPC(t *testing.T) {
	w := &syntheticWorkload{
		name:      "l1-resident",
		footprint: 1 << 20,
		gen: func(emit func(uint64, bool, uint8) bool) {
			i := uint64(0)
			for {
				if !emit((i%64)*64, false, 8) {
					return
				}
				i++
			}
		},
	}
	res := RunDetailed(w, cpuTestCfg())
	if res.IPC < 2 {
		t.Fatalf("L1-resident IPC = %.2f, want > 2", res.IPC)
	}
	if res.LLCMisses > 100 {
		t.Fatalf("unexpected misses: %d", res.LLCMisses)
	}
}

// TestCPUMemoryBoundIPC: dependent-feeling random misses over a huge
// footprint crush IPC far below the resident case.
func TestCPUMemoryBoundIPC(t *testing.T) {
	w := &syntheticWorkload{
		name:      "membound",
		footprint: 256 << 20,
		gen: func(emit func(uint64, bool, uint8) bool) {
			x := uint64(0x9e3779b97f4a7c15)
			for {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				if !emit(x%(256<<20)&^63, false, 8) {
					return
				}
			}
		},
	}
	resident := &syntheticWorkload{name: "res", footprint: 1 << 20,
		gen: func(emit func(uint64, bool, uint8) bool) {
			i := uint64(0)
			for {
				if !emit((i%64)*64, false, 8) {
					return
				}
				i++
			}
		}}
	mem := RunDetailed(w, cpuTestCfg())
	res := RunDetailed(resident, cpuTestCfg())
	if mem.IPC*2 > res.IPC {
		t.Fatalf("memory-bound IPC %.2f not well below resident %.2f", mem.IPC, res.IPC)
	}
}

// TestCPUMSHRLimitsMLP: with a single MSHR, random misses serialize and
// IPC drops versus 16 MSHRs.
func TestCPUMSHRLimitsMLP(t *testing.T) {
	mk := func() workload.Workload {
		return &syntheticWorkload{
			name:      "mlp",
			footprint: 256 << 20,
			gen: func(emit func(uint64, bool, uint8) bool) {
				x := uint64(12345)
				for {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					if !emit(x%(256<<20)&^63, false, 4) {
						return
					}
				}
			},
		}
	}
	cfg1 := cpuTestCfg()
	cfg1.MSHRs = 1
	cfg16 := cpuTestCfg()
	cfg16.MSHRs = 16
	one := RunDetailed(mk(), cfg1)
	sixteen := RunDetailed(mk(), cfg16)
	if sixteen.IPC <= one.IPC*1.5 {
		t.Fatalf("MSHR scaling absent: 1 MSHR IPC %.3f vs 16 MSHR IPC %.3f", one.IPC, sixteen.IPC)
	}
}

// TestCPUGapsRaiseIPC: more compute per access must raise IPC (the gap
// instructions retire at the pipeline width).
func TestCPUGapsRaiseIPC(t *testing.T) {
	mk := func(gap uint8) workload.Workload {
		return &syntheticWorkload{
			name:      "gaps",
			footprint: 256 << 20,
			gen: func(emit func(uint64, bool, uint8) bool) {
				x := uint64(777)
				for {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					if !emit(x%(256<<20)&^63, false, gap) {
						return
					}
				}
			},
		}
	}
	small := RunDetailed(mk(2), cpuTestCfg())
	big := RunDetailed(mk(120), cpuTestCfg())
	if big.IPC <= small.IPC {
		t.Fatalf("IPC did not grow with compute: gap2 %.3f vs gap120 %.3f", small.IPC, big.IPC)
	}
}

// TestPrefetcherHelpsSequential: a latency-bound streaming scan (enough
// compute per line that the ROB cannot create MLP on its own) should see a
// clear IPC boost from the stream prefetcher. A bandwidth-bound stream
// would not — prefetching adds no bandwidth.
func TestPrefetcherHelpsSequential(t *testing.T) {
	mk := func() workload.Workload {
		return &syntheticWorkload{
			name:      "stream",
			footprint: 256 << 20,
			gen: func(emit func(uint64, bool, uint8) bool) {
				a := uint64(0)
				for {
					if !emit(a%(256<<20), false, 120) {
						return
					}
					a += 64
				}
			},
		}
	}
	off := cpuTestCfg()
	on := cpuTestCfg()
	on.PrefetchStreams = 16
	on.PrefetchDegree = 2
	without := RunDetailed(mk(), off)
	with := RunDetailed(mk(), on)
	if with.IPC <= without.IPC*1.1 {
		t.Fatalf("prefetcher ineffective on stream: off %.3f vs on %.3f", without.IPC, with.IPC)
	}
}

// TestPrefetcherTableBasics unit-tests stream detection.
func TestPrefetcherTableBasics(t *testing.T) {
	p := newPrefetcher(4, 2)
	if p.observe(100) != nil {
		t.Fatal("first touch should not prefetch")
	}
	if p.observe(101) != nil {
		t.Fatal("stride seen once should not arm")
	}
	out := p.observe(102)
	if len(out) != 2 || out[0] != 103 || out[1] != 104 {
		t.Fatalf("armed stream prefetches = %v, want [103 104]", out)
	}
	// Negative strides work too.
	p2 := newPrefetcher(4, 1)
	p2.observe(1000)
	p2.observe(998)
	out = p2.observe(996)
	if len(out) != 1 || out[0] != 994 {
		t.Fatalf("negative stride prefetch = %v, want [994]", out)
	}
}

func TestPrefetcherDisabled(t *testing.T) {
	if newPrefetcher(0, 2) != nil {
		t.Fatal("zero streams should disable")
	}
}
