package sim

import "rmcc/internal/workload"

// stream pulls a workload's push-style access stream through a bounded
// channel so simulators can consume it pull-style (and interleave several
// shards). The generator goroutine exits promptly once the stream is
// closed.
type stream struct {
	ch      chan []workload.Access
	stop    chan struct{}
	buf     []workload.Access
	idx     int
	drained bool
}

const streamBatch = 2048

// newStream starts run (a closure invoking Workload.Run or RunShard with a
// supplied sink) in a goroutine and returns the pull side.
func newStream(run func(sink workload.Sink)) *stream {
	s := &stream{
		ch:   make(chan []workload.Access, 4),
		stop: make(chan struct{}),
	}
	go func() {
		defer close(s.ch)
		batch := make([]workload.Access, 0, streamBatch)
		run(func(a workload.Access) bool {
			batch = append(batch, a)
			if len(batch) == streamBatch {
				select {
				case s.ch <- batch:
					batch = make([]workload.Access, 0, streamBatch)
					return true
				case <-s.stop:
					return false
				}
			}
			return true
		})
	}()
	return s
}

// next returns the next access; ok is false once the stream is exhausted
// (only after close, since workloads loop forever).
func (s *stream) next() (workload.Access, bool) {
	if s.idx >= len(s.buf) {
		if s.drained {
			return workload.Access{}, false
		}
		buf, ok := <-s.ch
		if !ok {
			s.drained = true
			return workload.Access{}, false
		}
		s.buf, s.idx = buf, 0
	}
	a := s.buf[s.idx]
	s.idx++
	return a, true
}

// close stops the generator and drains the channel so the goroutine exits.
// Any locally buffered accesses are discarded: after close, next never
// yields again.
func (s *stream) close() {
	close(s.stop)
	for range s.ch {
	}
	s.buf = nil
	s.idx = 0
	s.drained = true
}

// AccessStream is the exported pull side of a workload's push-style
// stream: the rmccd service holds one per workload-bound session so
// successive replay calls continue the same deterministic stream instead
// of restarting it. Close stops the generator goroutine.
type AccessStream struct{ s *stream }

// NewAccessStream starts run (a closure invoking Workload.Run with the
// supplied sink) in a goroutine and returns the pull side.
func NewAccessStream(run func(sink workload.Sink)) *AccessStream {
	return &AccessStream{s: newStream(run)}
}

// Next returns the next access; ok is false once the stream is exhausted.
func (a *AccessStream) Next() (workload.Access, bool) { return a.s.next() }

// Close stops the generator and discards buffered accesses.
func (a *AccessStream) Close() { a.s.close() }
