package sim

import (
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim/event"
)

func finalizeCfg() DetailedConfig {
	return DefaultDetailedConfig(engine.DefaultConfig(engine.Baseline, counter.Morphable, 0))
}

// TestFigure5Saving replays the paper's Figure 5 example: on a counter
// miss where data and counter arrive together from DRAM, memoization
// replaces the 15 ns AES with a ~1 ns lookup+CLMUL, saving AES−CLMUL in
// end-to-end latency (the figure's "Saving: 13ns" with a 2 ns combine).
func TestFigure5Saving(t *testing.T) {
	cfg := finalizeCfg()
	const t0 = 1000 * event.Nanosecond
	arrival := t0 + 45*event.Nanosecond // both DRAM fetches complete here

	mk := func(memo bool) *txn {
		tx := &txn{
			t0:    t0,
			chain: []chainPart{{memoHit: memo, tArr: arrival}},
			tData: arrival,
		}
		tx.finalize(&cfg)
		return tx
	}
	baseline := mk(false)
	rmcc := mk(true)
	saving := baseline.complete - rmcc.complete
	if want := cfg.AESLat - cfg.ClmulLat; saving != want {
		t.Fatalf("saving = %d ps, want %d ps (AES - CLMUL)", saving, want)
	}
	// Baseline critical path: counter arrival + decode + the fetched
	// counter block's own MAC dot + AES for the data pad + the data MAC
	// dot.
	wantBase := arrival + cfg.DecodeLat + cfg.DotLat + cfg.AESLat + cfg.DotLat
	if baseline.complete != wantBase {
		t.Fatalf("baseline complete = %d, want %d", baseline.complete, wantBase)
	}
}

// TestFinalizeCtrCacheHitHidesAES: with the counter cached, AES starts at
// t0 and hides under a long-enough data fetch.
func TestFinalizeCtrCacheHitHidesAES(t *testing.T) {
	cfg := finalizeCfg()
	tx := &txn{t0: 0, ctrCacheHit: true, tData: 60 * event.Nanosecond}
	tx.finalize(&cfg)
	if want := tx.tData + cfg.DotLat; tx.complete != want {
		t.Fatalf("complete = %d, want data-bound %d", tx.complete, want)
	}
	// Short data fetch: AES is exposed.
	tx2 := &txn{t0: 0, ctrCacheHit: true, tData: 5 * event.Nanosecond}
	tx2.finalize(&cfg)
	if want := cfg.DecodeLat + cfg.AESLat + cfg.DotLat; tx2.complete != want {
		t.Fatalf("complete = %d, want AES-bound %d", tx2.complete, want)
	}
}

// TestFinalizeChainSerializesLevels: an L1 miss serializes behind the L0
// fetch's verification, and memoizing the L1 value removes one AES from
// the chain.
func TestFinalizeChainSerializesLevels(t *testing.T) {
	cfg := finalizeCfg()
	const t0 = 0
	l0Arr := 50 * event.Nanosecond
	l1Arr := 52 * event.Nanosecond
	mk := func(l0memo, l1memo bool) event.Time {
		tx := &txn{
			t0: t0,
			chain: []chainPart{
				{memoHit: l0memo, tArr: l0Arr},
				{memoHit: l1memo, tArr: l1Arr},
			},
			tData: 55 * event.Nanosecond,
		}
		tx.finalize(&cfg)
		return tx.complete
	}
	none := mk(false, false)
	l1Only := mk(false, true)
	both := mk(true, true)
	if !(both < l1Only && l1Only < none) {
		t.Fatalf("memoization not monotone: none=%d l1=%d both=%d", none, l1Only, both)
	}
	// Memoizing L1 removes exactly one AES−CLMUL from the serial chain
	// (the L0 path is the bottleneck in this construction).
	if d := none - l1Only; d != cfg.AESLat-cfg.ClmulLat {
		t.Fatalf("L1 memo saving = %d, want %d", d, cfg.AESLat-cfg.ClmulLat)
	}
}

// TestFinalizeNonSecure: no crypto on the path at all.
func TestFinalizeNonSecure(t *testing.T) {
	cfg := finalizeCfg()
	tx := &txn{t0: 0, nonSecure: true, tData: 42 * event.Nanosecond}
	tx.finalize(&cfg)
	if tx.complete != tx.tData {
		t.Fatalf("non-secure complete = %d, want %d", tx.complete, tx.tData)
	}
}

// TestFinalizeSGXSkipsDecode: monolithic counters have no split-decode
// step.
func TestFinalizeSGXSkipsDecode(t *testing.T) {
	cfg := finalizeCfg()
	arr := 50 * event.Nanosecond
	mk := func(sgx bool) event.Time {
		tx := &txn{
			t0:        0,
			schemeSGX: sgx,
			chain:     []chainPart{{tArr: arr}},
			tData:     arr,
		}
		tx.finalize(&cfg)
		return tx.complete
	}
	if d := mk(false) - mk(true); d != cfg.DecodeLat {
		t.Fatalf("decode difference = %d, want %d", d, cfg.DecodeLat)
	}
}

// TestFinalizeSpeculationDropsVerification: with speculative verification
// the upper-chain serialization and the MAC dot product leave the critical
// path; only counter arrival + pad remain.
func TestFinalizeSpeculationDropsVerification(t *testing.T) {
	cfg := finalizeCfg()
	cfg.SpeculativeVerification = true
	l0Arr := 50 * event.Nanosecond
	tx := &txn{
		t0:    0,
		spec:  true,
		chain: []chainPart{{tArr: l0Arr}, {tArr: 80 * event.Nanosecond}}, // slow L1
		tData: l0Arr,
	}
	tx.finalize(&cfg)
	want := l0Arr + cfg.DecodeLat + cfg.AESLat // L1 entirely off-path
	if tx.complete != want {
		t.Fatalf("spec complete = %d, want %d", tx.complete, want)
	}
}
