package sim

import (
	"fmt"
	"io"

	"rmcc/internal/snapshot"
)

// lifetimeKind tags whole-stepper snapshots: caches, TLBs, page mapper,
// engine, and the access cursor.
const lifetimeKind = "rmcc-lifetime"

// ConfigHash hashes everything that determines the stepper's state layout
// and its deterministic evolution: workload name, cache/TLB/page geometry,
// engine configuration, seed, and the derived physical memory size. The
// observation hooks (Metrics, Tracer, OnController, OnAccess) are excluded
// — they shape what is observed, not the state itself.
func (lt *Lifetime) ConfigHash() uint64 {
	c := lt.cfg
	return snapshot.HashString(fmt.Sprintf("%s|%#v|%#v|%#v|%d|%d|%#v|%d|%d",
		lt.name, c.L1, c.L2, c.LLC, c.TLBEntries, c.PageBytes, c.Engine, c.Seed,
		lt.mapper.PhysBytes()))
}

// Save writes the stepper's complete state — the access cursor, cache and
// TLB contents, page table, and the full engine image — as one snapshot
// stream. Together with the workload's determinism, this is everything a
// fresh stepper needs to continue the run bit-identically: the workload
// cursor is the access count, since the access stream is a pure function of
// (workload, seed).
func (lt *Lifetime) Save(w io.Writer) error {
	sw := snapshot.NewWriter(w, lifetimeKind, lt.ConfigHash())
	var e snapshot.Enc
	e.String(lt.name)
	e.U64(lt.accesses)
	e.U64(lt.reads)
	e.U64(lt.writes)
	sw.Section("cursor", e.Data())
	for _, part := range []struct {
		tag string
		enc interface{ EncodeState(*snapshot.Enc) }
	}{
		{"l1", lt.h.l1},
		{"l2", lt.h.l2},
		{"llc", lt.h.llc},
		{"tlb4k", lt.tlb4k},
		{"tlb2m", lt.tlb2m},
		{"vm", lt.mapper},
		{"engine", lt.mc},
	} {
		e.Reset()
		part.enc.EncodeState(&e)
		sw.Section(part.tag, e.Data())
	}
	return sw.Close()
}

// Load restores state written by Save into a stepper built with the
// identical name, footprint, and configuration. On error the stepper is
// left in an undefined state and must be discarded; errors are typed
// (snapshot.ErrSnapshot*).
func (lt *Lifetime) Load(r io.Reader) error {
	sr, err := snapshot.NewReader(r, lifetimeKind)
	if err != nil {
		return err
	}
	if got, want := sr.ConfigHash(), lt.ConfigHash(); got != want {
		return fmt.Errorf("%w: lifetime config hash %016x, want %016x",
			snapshot.ErrSnapshotConfigMismatch, got, want)
	}
	payload, err := sr.Section("cursor")
	if err != nil {
		return err
	}
	d := snapshot.NewDec(payload)
	name := d.String()
	accesses := d.U64()
	reads := d.U64()
	writes := d.U64()
	if err := d.Finish(); err != nil {
		return err
	}
	if name != lt.name {
		return fmt.Errorf("%w: snapshot workload %q, want %q",
			snapshot.ErrSnapshotConfigMismatch, name, lt.name)
	}
	for _, part := range []struct {
		tag string
		dec interface{ DecodeState(*snapshot.Dec) error }
	}{
		{"l1", lt.h.l1},
		{"l2", lt.h.l2},
		{"llc", lt.h.llc},
		{"tlb4k", lt.tlb4k},
		{"tlb2m", lt.tlb2m},
		{"vm", lt.mapper},
		{"engine", lt.mc},
	} {
		payload, err := sr.Section(part.tag)
		if err != nil {
			return err
		}
		d := snapshot.NewDec(payload)
		if err := part.dec.DecodeState(d); err != nil {
			return fmt.Errorf("section %q: %w", part.tag, err)
		}
		if err := d.Finish(); err != nil {
			return fmt.Errorf("section %q: %w", part.tag, err)
		}
	}
	if err := sr.Close(); err != nil {
		return err
	}
	lt.accesses = accesses
	lt.reads = reads
	lt.writes = writes
	return nil
}
