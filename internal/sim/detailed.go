package sim

import (
	"fmt"

	"rmcc/internal/mem/cache"
	"rmcc/internal/mem/dram"
	"rmcc/internal/mem/vm"
	"rmcc/internal/obs"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim/event"
	"rmcc/internal/workload"
)

// DetailedConfig parameterizes a timing run (Table I).
type DetailedConfig struct {
	L1, L2, LLC cache.Config
	// End-to-end hit latencies (Table I latencies are additive: L1 2 ns,
	// L2 2+4=6 ns, L3 2+4+17=23 ns).
	L1Lat, L2Lat, LLCLat event.Time

	CPUGHz float64 // 3.2
	Width  int     // 4-wide
	ROB    int     // 192 entries
	MSHRs  int     // outstanding misses per core

	AESLat    event.Time // 15 ns (AES-128) or 22 ns (AES-256)
	DecodeLat event.Time // 3 ns Morphable/split-counter decode
	ClmulLat  event.Time // 1 ns table lookup + carry-less multiply
	DotLat    event.Time // 1 ns GF dot product

	DRAM   dram.Config
	Engine engine.Config

	// PrefetchStreams/PrefetchDegree configure the LLC-level stream
	// prefetcher (Table I's stride prefetchers); 0 streams disables it.
	PrefetchStreams int
	PrefetchDegree  int

	// SpeculativeVerification models PoisonIvy-style safe speculation
	// (paper §VII Related Work): the CPU consumes data as soon as it is
	// *decrypted*, with integrity verification retired off the critical
	// path (squash-on-failure never fires in honest runs). Decryption
	// still needs the counter value, so counter fetches and — without
	// RMCC — the counter-to-pad AES remain exposed; this is exactly the
	// paper's argument for why speculation alone is not enough.
	SpeculativeVerification bool

	PageBytes uint64
	Seed      uint64
	Cores     int

	// Metrics, when set, receives func-backed views of the engine, cache
	// hierarchy, and DRAM statistics plus a read-miss latency histogram.
	// Tracer, when set, is attached to the MC. Both default to nil.
	Metrics *obs.Registry
	Tracer  *obs.Tracer

	// FastForwardAccesses stream through the functional path only — the
	// Gem5 "atomic mode" analog of the paper's 25-billion-instruction
	// warmup: caches, counters and memoization tables evolve, but no
	// timing is simulated. Then WarmupAccesses run with timing before the
	// stats reset, and MeasureAccesses define the observation window
	// (CPU-level accesses, summed over cores).
	FastForwardAccesses uint64
	WarmupAccesses      uint64
	MeasureAccesses     uint64
}

// DefaultDetailedConfig returns the paper's Table-I system.
func DefaultDetailedConfig(eng engine.Config) DetailedConfig {
	return DetailedConfig{
		L1:                  cache.Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64},
		L2:                  cache.Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64},
		LLC:                 cache.Config{SizeBytes: 8 << 20, Ways: 16, LineBytes: 64},
		L1Lat:               2 * event.Nanosecond,
		L2Lat:               6 * event.Nanosecond,
		LLCLat:              23 * event.Nanosecond,
		CPUGHz:              3.2,
		Width:               4,
		ROB:                 192,
		MSHRs:               16,
		AESLat:              15 * event.Nanosecond,
		DecodeLat:           3 * event.Nanosecond,
		ClmulLat:            1 * event.Nanosecond,
		DotLat:              1 * event.Nanosecond,
		DRAM:                dram.DefaultConfig(),
		Engine:              eng,
		PrefetchStreams:     16,
		PrefetchDegree:      2,
		PageBytes:           2 << 20,
		Seed:                1,
		Cores:               1,
		FastForwardAccesses: 3_000_000,
		WarmupAccesses:      500_000,
		MeasureAccesses:     2_000_000,
	}
}

// DetailedResult aggregates a timing run's observation window.
type DetailedResult struct {
	Workload     string
	Instructions uint64
	WindowTime   event.Time // simulated ps
	IPC          float64
	Accesses     uint64 // CPU accesses in the window
	LLCMisses    uint64 // read transactions at the MC

	// AvgMissLatencyNS is the mean MC-accept-to-data-verified latency of
	// LLC read misses (Figure 14).
	AvgMissLatencyNS float64

	DRAM   dram.Stats
	Engine engine.Stats
}

// txn is one in-flight LLC read miss at the MC: the data fetch plus the
// counter chain, composed into a completion time when all parts arrive.
type txn struct {
	t0          event.Time
	nonSecure   bool
	spec        bool // speculative verification (§VII comparison)
	ctrCacheHit bool
	schemeSGX   bool
	chain       []chainPart
	tData       event.Time
	pending     int
	done        bool
	complete    event.Time
}

type chainPart struct {
	memoHit bool
	tArr    event.Time
}

// finalize composes the secure-read completion time (paper Figure 5): the
// data pad is ready AES-or-lookup after the (verified) counter value is
// known; completion waits for both data and pad, plus the MAC dot product.
func (tx *txn) finalize(cfg *DetailedConfig) {
	decode := cfg.DecodeLat
	if tx.schemeSGX {
		decode = 0 // monolithic counters need no split decode
	}
	if tx.nonSecure {
		tx.complete = tx.tData
		tx.done = true
		return
	}
	var padForData event.Time
	switch {
	case tx.ctrCacheHit:
		// Counter known at t0: AES overlaps the data fetch.
		padForData = tx.t0 + decode + cfg.AESLat
	case tx.spec:
		// Speculative verification: decryption proceeds as soon as the L0
		// counter value arrives; the verification chain (which needs the
		// upper-level counters) retires off the critical path. The
		// counter-to-pad computation is still exposed — unless memoized.
		l0 := tx.chain[0]
		use := cfg.AESLat
		if l0.memoHit {
			use = cfg.ClmulLat
		}
		padForData = l0.tArr + decode + use
	default:
		// The parent of the highest fetched level is cached (or the
		// on-chip root): its AES for verifying that level starts at t0.
		padAbove := tx.t0 + decode + cfg.AESLat
		for i := len(tx.chain) - 1; i >= 0; i-- {
			f := tx.chain[i]
			verified := f.tArr + decode
			if padAbove > verified {
				verified = padAbove
			}
			verified += cfg.DotLat
			use := cfg.AESLat
			if f.memoHit {
				use = cfg.ClmulLat
			}
			padAbove = verified + use
		}
		padForData = padAbove
	}
	end := tx.tData
	if padForData > end {
		end = padForData
	}
	if !tx.spec {
		end += cfg.DotLat // the MAC check on the critical path
	}
	tx.complete = end
	tx.done = true
}

// overflowJob trickles a relevel's transfers into DRAM, at most
// trickleSlots in flight, with at most two jobs active at once (§V).
type overflowJob struct {
	remaining []engine.Traffic
	inflight  int
}

const (
	maxOverflowJobs = 2
	trickleSlots    = 8
)

// detailedSim owns all shared timing state.
type detailedSim struct {
	cfg    DetailedConfig
	eng    *event.Engine
	ch     *dram.Channel
	mc     *engine.MC
	hier   *hierarchy
	mapper *vm.Mapper
	jobs   []*overflowJob

	pf *prefetcher

	cycPS      event.Time // ps per cycle
	missLatSum event.Time
	missCount  uint64

	// missLatHist observes each read miss's accept-to-verified latency in
	// nanoseconds (nil when no registry is attached; Observe is nil-safe).
	missLatHist *obs.Histogram
}

// prefetch reacts to a demand miss: armed streams pull the next lines into
// the LLC through the full secure path (prefetches fetch and decrypt like
// demand reads — they warm the counter cache too — and consume DRAM
// bandwidth, but never block the CPU).
func (s *detailedSim) prefetch(missedPaddr uint64) {
	if s.pf == nil {
		return
	}
	for _, line := range s.pf.observe(missedPaddr >> 6) {
		paddr := line << 6
		if paddr >= s.mapper.PhysBytes() {
			continue
		}
		if s.hier.llc.Probe(paddr) {
			continue
		}
		s.hier.llc.Access(paddr, false)
		out := s.mc.Read(paddr)
		s.enqueue(&dram.Request{Addr: paddr, Kind: dram.KindData})
		for _, f := range out.Chain {
			s.enqueue(&dram.Request{Addr: f.Addr, Kind: dram.KindCounter})
		}
		s.issueTraffic(out.Extra)
		if len(out.OverflowTraffic) > 0 {
			s.startOverflowJob(out.OverflowTraffic)
		}
	}
}

// enqueue pushes a DRAM request, advancing simulation under backpressure.
func (s *detailedSim) enqueue(r *dram.Request) {
	for !s.ch.Enqueue(r) {
		if !s.eng.Step() {
			panic("sim: DRAM queue full with no pending events")
		}
	}
}

// issueTraffic turns engine-side traffic into DRAM requests at the current
// simulated time (completion untracked: counter writebacks and metadata
// fetches contend for bandwidth but do not block the CPU directly).
func (s *detailedSim) issueTraffic(ts []engine.Traffic) {
	for _, t := range ts {
		s.enqueue(&dram.Request{Addr: t.Addr, Write: t.Write, Kind: t.Kind})
	}
}

// startOverflowJob registers a relevel's traffic; when two jobs are already
// active, the MC rejects further LLC requests, which we model by running
// simulation until a slot frees (returning the release time).
func (s *detailedSim) startOverflowJob(traffic []engine.Traffic) event.Time {
	stallUntil := s.eng.Now()
	for len(s.jobs) >= maxOverflowJobs {
		if !s.eng.Step() {
			panic("sim: overflow jobs stuck with no pending events")
		}
		stallUntil = s.eng.Now()
	}
	job := &overflowJob{remaining: traffic}
	s.jobs = append(s.jobs, job)
	s.pumpJob(job)
	return stallUntil
}

// pumpJob keeps up to trickleSlots of the job's transfers in flight.
func (s *detailedSim) pumpJob(job *overflowJob) {
	for job.inflight < trickleSlots && len(job.remaining) > 0 {
		t := job.remaining[0]
		job.remaining = job.remaining[1:]
		job.inflight++
		req := &dram.Request{Addr: t.Addr, Write: t.Write, Kind: t.Kind}
		req.OnComplete = func(event.Time) {
			job.inflight--
			if len(job.remaining) > 0 {
				s.pumpJob(job)
				return
			}
			if job.inflight == 0 {
				for i, j := range s.jobs {
					if j == job {
						s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
						break
					}
				}
			}
		}
		s.enqueue(req)
	}
}

// startRead converts an engine Outcome into an in-flight transaction.
func (s *detailedSim) startRead(paddr uint64, out engine.Outcome) *txn {
	now := s.eng.Now()
	tx := &txn{
		t0:          now,
		nonSecure:   s.cfg.Engine.Mode == engine.NonSecure,
		spec:        s.cfg.SpeculativeVerification,
		ctrCacheHit: out.CtrCacheHit,
		schemeSGX:   s.cfg.Engine.Scheme == counter.SGX,
	}
	onDone := func() {
		if tx.pending == 0 && !tx.done {
			tx.finalize(&s.cfg)
			s.missLatSum += tx.complete - tx.t0
			s.missCount++
			s.missLatHist.Observe(uint64((tx.complete - tx.t0) / event.Nanosecond))
		}
	}
	// Hold a setup token: enqueue backpressure can advance simulation and
	// complete early parts before later parts are registered.
	tx.pending++
	// Data fetch.
	tx.pending++
	dataReq := &dram.Request{Addr: paddr, Kind: dram.KindData}
	dataReq.OnComplete = func(at event.Time) {
		tx.tData = at
		tx.pending--
		onDone()
	}
	s.enqueue(dataReq)
	// Counter-chain fetches (addresses all derivable at t0: issued in
	// parallel, verified top-down in finalize).
	tx.chain = make([]chainPart, len(out.Chain))
	for i, f := range out.Chain {
		i := i
		tx.pending++
		tx.chain[i].memoHit = f.MemoHit
		req := &dram.Request{Addr: f.Addr, Kind: dram.KindCounter}
		req.OnComplete = func(at event.Time) {
			tx.chain[i].tArr = at
			tx.pending--
			onDone()
		}
		s.enqueue(req)
	}
	// Side traffic (evicted counter writebacks, read-update rewrites).
	s.issueTraffic(out.Extra)
	if len(out.OverflowTraffic) > 0 {
		s.startOverflowJob(out.OverflowTraffic)
	}
	tx.pending-- // release the setup token
	onDone()
	return tx
}

// waitTxn advances simulation until the transaction resolves.
func (s *detailedSim) waitTxn(tx *txn) event.Time {
	for !tx.done {
		if !s.eng.Step() {
			panic("sim: transaction stuck with no pending events")
		}
	}
	return tx.complete
}

// core models one OoO hardware context: a 4-wide frontend bounded by a
// 192-entry ROB and per-core MSHRs, with in-order retirement.
type core struct {
	sim *detailedSim
	st  *stream

	tF         event.Time // frontend dispatch clock
	pos        uint64     // instructions dispatched
	lastRetire event.Time
	rob        []robEntry // outstanding loads, FIFO by pos
	misses     []*txn     // outstanding LLC misses (MSHR occupancy)

	instRetired uint64
	exhausted   bool
}

type robEntry struct {
	pos      uint64
	tx       *txn       // nil when completion is known
	complete event.Time // valid when tx == nil
}

// step processes one CPU access; it returns false when the stream ended.
func (c *core) step() bool {
	a, ok := c.st.next()
	if !ok {
		c.exhausted = true
		return false
	}
	s := c.sim
	// Frontend: dispatch the gap instructions plus this access.
	c.tF += event.Time(float64(a.Gap)/float64(s.cfg.Width)) * s.cycPS
	c.pos += uint64(a.Gap) + 1
	c.instRetired += uint64(a.Gap) + 1

	// ROB bound: dispatch stalls until the load ROB-distance behind has
	// retired (in order).
	for len(c.rob) > 0 && c.rob[0].pos+uint64(s.cfg.ROB) <= c.pos {
		e := c.rob[0]
		c.rob = c.rob[1:]
		complete := e.complete
		if e.tx != nil {
			complete = s.waitTxn(e.tx)
			c.dropMiss(e.tx)
		}
		if complete > c.lastRetire {
			c.lastRetire = complete
		}
		if c.lastRetire > c.tF {
			c.tF = c.lastRetire
		}
	}

	// Memory access.
	paddr := s.mapper.Translate(a.Addr)
	if s.eng.Now() < c.tF {
		s.eng.RunUntil(c.tF)
	} else if c.tF < s.eng.Now() {
		// Another core (or a stall) advanced simulated time past this
		// core's frontend; the access cannot issue in the past.
		c.tF = s.eng.Now()
	}
	lvl, victims := s.hier.accessLeveled(paddr, a.Write)
	for _, v := range victims {
		wout := s.mc.Write(v)
		s.mc.OnEpochAccess()
		s.issueTraffic(wout.Extra)
		if len(wout.OverflowTraffic) > 0 {
			t := s.startOverflowJob(wout.OverflowTraffic)
			if t > c.tF {
				c.tF = t
			}
		}
	}

	var complete event.Time
	var tx *txn
	switch lvl {
	case hitL1:
		complete = c.tF + s.cfg.L1Lat
	case hitL2:
		complete = c.tF + s.cfg.L2Lat
	case hitLLC:
		complete = c.tF + s.cfg.LLCLat
		// Feed LLC-level accesses to the prefetcher too, so an armed
		// stream keeps running ahead through its own prefetched hits.
		if s.eng.Now() < c.tF {
			s.eng.RunUntil(c.tF)
		}
		s.prefetch(paddr)
	default:
		// MSHR bound: wait for the oldest outstanding miss if full.
		for len(c.misses) >= s.cfg.MSHRs {
			oldest := c.misses[0]
			s.waitTxn(oldest)
			c.dropMiss(oldest)
			if oldest.complete > c.tF {
				c.tF = oldest.complete
			}
		}
		if s.eng.Now() < c.tF {
			s.eng.RunUntil(c.tF)
		}
		out := s.mc.Read(paddr)
		s.mc.OnEpochAccess()
		tx = s.startRead(paddr, out)
		c.misses = append(c.misses, tx)
		s.prefetch(paddr)
	}

	if a.Write {
		// Stores retire from the write buffer without blocking.
		return true
	}
	c.rob = append(c.rob, robEntry{pos: c.pos, tx: tx, complete: complete})
	return true
}

func (c *core) dropMiss(tx *txn) {
	for i, m := range c.misses {
		if m == tx {
			c.misses = append(c.misses[:i], c.misses[i+1:]...)
			return
		}
	}
}

// drain retires everything outstanding, returning the core's final time.
func (c *core) drain() event.Time {
	for _, e := range c.rob {
		complete := e.complete
		if e.tx != nil {
			complete = c.sim.waitTxn(e.tx)
		}
		if complete > c.lastRetire {
			c.lastRetire = complete
		}
	}
	c.rob = nil
	if c.lastRetire > c.tF {
		c.tF = c.lastRetire
	}
	return c.tF
}

// RunDetailedDebug is RunDetailed with a post-run hook over the MC, for
// inspection in tools and tests.
func RunDetailedDebug(w workload.Workload, cfg DetailedConfig, inspect func(*engine.MC)) DetailedResult {
	res, mc := runDetailed(w, cfg)
	if inspect != nil {
		inspect(mc)
	}
	return res
}

// RunDetailed executes a timing simulation of w.
func RunDetailed(w workload.Workload, cfg DetailedConfig) DetailedResult {
	res, _ := runDetailed(w, cfg)
	return res
}

func runDetailed(w workload.Workload, cfg DetailedConfig) (DetailedResult, *engine.MC) {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	s := &detailedSim{
		cfg:   cfg,
		eng:   event.New(),
		cycPS: event.Time(1000.0 / cfg.CPUGHz),
	}
	s.ch = dram.New(s.eng, cfg.DRAM)
	physBytes := physFor(w.FootprintBytes(), cfg.PageBytes)
	s.mapper = vm.New(physBytes, cfg.PageBytes, cfg.Seed^0xabcd)
	engCfg := cfg.Engine
	engCfg.MemBytes = physBytes
	s.mc = engine.New(engCfg)
	s.hier = newHierarchy(cfg.L1, cfg.L2, cfg.LLC)
	s.pf = newPrefetcher(cfg.PrefetchStreams, cfg.PrefetchDegree)
	if cfg.Tracer != nil {
		s.mc.SetTracer(cfg.Tracer)
	}
	if cfg.Metrics != nil {
		s.mc.RegisterMetrics(cfg.Metrics)
		registerHierarchyMetrics(cfg.Metrics, s.hier)
		s.missLatHist = cfg.Metrics.Histogram("rmcc_sim_read_miss_latency_ns",
			"MC-accept-to-data-verified latency of LLC read misses (Figure 14)",
			obs.Pow2Buckets(4, 14))
		cfg.Metrics.CounterFunc("rmcc_sim_dram_reads_total",
			"DRAM channel read requests", func() uint64 { return s.ch.Stats().Reads })
		cfg.Metrics.CounterFunc("rmcc_sim_dram_writes_total",
			"DRAM channel write requests", func() uint64 { return s.ch.Stats().Writes })
		cfg.Metrics.CounterFunc("rmcc_sim_dram_row_hits_total",
			"row-buffer hits", func() uint64 { return s.ch.Stats().RowHits })
		cfg.Metrics.CounterFunc("rmcc_sim_dram_row_misses_total",
			"row-buffer misses (closed row)", func() uint64 { return s.ch.Stats().RowMisses })
		cfg.Metrics.CounterFunc("rmcc_sim_dram_row_conflicts_total",
			"row-buffer conflicts (different row open)", func() uint64 { return s.ch.Stats().RowConflicts })
	}

	// Build per-core streams: graph kernels shard, others run one core.
	sharded, isSharded := w.(workload.Sharded)
	nCores := cfg.Cores
	if !isSharded {
		nCores = 1
	}
	cores := make([]*core, nCores)
	for i := range cores {
		i := i
		var st *stream
		if isSharded && nCores > 1 {
			st = newStream(func(sink workload.Sink) {
				sharded.RunShard(i, nCores, cfg.Seed+uint64(i), sink)
			})
		} else {
			st = newStream(func(sink workload.Sink) { w.Run(cfg.Seed, sink) })
		}
		cores[i] = &core{sim: s, st: st}
	}
	defer func() {
		for _, c := range cores {
			c.st.close()
		}
	}()

	// Atomic-mode fast-forward: evolve caches, counters and memoization
	// tables functionally so the timed window observes converged state
	// (the paper warms up for 25 billion instructions before measuring).
	if cfg.FastForwardAccesses > 0 {
		var ffDone uint64
		for ffDone < cfg.FastForwardAccesses {
			progressed := false
			for _, c := range cores {
				if c.exhausted {
					continue
				}
				a, ok := c.st.next()
				if !ok {
					c.exhausted = true
					continue
				}
				progressed = true
				ffDone++
				paddr := s.mapper.Translate(a.Addr)
				miss, victims := s.hier.access(paddr, a.Write)
				for _, v := range victims {
					s.mc.Write(v)
					s.mc.OnEpochAccess()
				}
				if miss {
					s.mc.Read(paddr)
					s.mc.OnEpochAccess()
				}
			}
			if !progressed {
				break
			}
		}
	}

	// pickCore returns the live core with the smallest frontend time.
	pickCore := func() *core {
		var best *core
		for _, c := range cores {
			if c.exhausted {
				continue
			}
			if best == nil || c.tF < best.tF {
				best = c
			}
		}
		return best
	}

	var processed uint64
	runPhase := func(target uint64) {
		for processed < target {
			c := pickCore()
			if c == nil {
				break
			}
			if c.step() {
				processed++
			}
		}
	}

	// Warmup, then reset all stats and open the observation window.
	runPhase(cfg.WarmupAccesses)
	s.mc.ResetStats()
	s.ch.ResetStats()
	s.missLatSum, s.missCount = 0, 0
	var instStart uint64
	for _, c := range cores {
		instStart += c.instRetired
	}
	tStart := s.eng.Now()
	for _, c := range cores {
		if c.tF > tStart {
			tStart = c.tF
		}
	}

	runPhase(cfg.WarmupAccesses + cfg.MeasureAccesses)

	// Close the window: drain outstanding work.
	tEnd := s.eng.Now()
	for _, c := range cores {
		if t := c.drain(); t > tEnd {
			tEnd = t
		}
	}

	var instEnd uint64
	for _, c := range cores {
		instEnd += c.instRetired
	}
	window := tEnd - tStart
	if window <= 0 {
		window = 1
	}
	res := DetailedResult{
		Workload:     w.Name(),
		Instructions: instEnd - instStart,
		WindowTime:   window,
		Accesses:     processed - cfg.WarmupAccesses,
		LLCMisses:    s.missCount,
		DRAM:         s.ch.Stats(),
		Engine:       s.mc.Stats(),
	}
	cycles := float64(window) / float64(s.cycPS)
	res.IPC = float64(res.Instructions) / cycles
	if s.missCount > 0 {
		res.AvgMissLatencyNS = float64(s.missLatSum) / float64(s.missCount) / float64(event.Nanosecond)
	}
	return res, s.mc
}

// String renders a one-line summary.
func (r DetailedResult) String() string {
	return fmt.Sprintf("%s: IPC=%.3f missLat=%.1fns misses=%d window=%.2fms",
		r.Workload, r.IPC, r.AvgMissLatencyNS, r.LLCMisses,
		float64(r.WindowTime)/float64(event.Millisecond))
}
