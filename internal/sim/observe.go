package sim

import (
	"rmcc/internal/mem/cache"
	"rmcc/internal/obs"
)

// This file registers the simulation drivers' own structures — the data
// cache hierarchy, the TLBs, and the DRAM channel — with an obs.Registry.
// Like the engine's views, everything is func-backed: the hot loops keep
// their plain counters and the registry reads them only at export time, so
// attaching a registry does not perturb simulation results or speed.

// registerCacheMetrics exports one cache's counters under rmcc_sim_cache_*
// with a level label ("l1", "l2", "llc").
func registerCacheMetrics(reg *obs.Registry, level string, stats func() cache.Stats) {
	lbl := obs.L("level", level)
	reg.CounterFunc("rmcc_sim_cache_hits_total",
		"data-hierarchy cache hits", func() uint64 { return stats().Hits }, lbl)
	reg.CounterFunc("rmcc_sim_cache_misses_total",
		"data-hierarchy cache misses", func() uint64 { return stats().Misses }, lbl)
	reg.CounterFunc("rmcc_sim_cache_evictions_total",
		"data-hierarchy cache evictions", func() uint64 { return stats().Evictions }, lbl)
	reg.CounterFunc("rmcc_sim_cache_writebacks_total",
		"data-hierarchy dirty evictions", func() uint64 { return stats().Writebacks }, lbl)
}

// registerHierarchyMetrics exports all three data-cache levels.
func registerHierarchyMetrics(reg *obs.Registry, h *hierarchy) {
	registerCacheMetrics(reg, "l1", func() cache.Stats { return h.l1.Stats() })
	registerCacheMetrics(reg, "l2", func() cache.Stats { return h.l2.Stats() })
	registerCacheMetrics(reg, "llc", func() cache.Stats { return h.llc.Stats() })
}
