package sim

import (
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim/event"
)

// TestTableIConfigParity pins the default detailed configuration to the
// paper's Table I, so accidental drift in any constant fails loudly.
func TestTableIConfigParity(t *testing.T) {
	eng := engine.DefaultConfig(engine.RMCC, counter.Morphable, 0)
	cfg := DefaultDetailedConfig(eng)

	checks := []struct {
		name string
		got  interface{}
		want interface{}
	}{
		{"CPU GHz", cfg.CPUGHz, 3.2},
		{"width", cfg.Width, 4},
		{"ROB entries", cfg.ROB, 192},
		{"L1 D-cache", cfg.L1.SizeBytes, 64 << 10},
		{"L1 ways", cfg.L1.Ways, 8},
		{"L2 size", cfg.L2.SizeBytes, 1 << 20},
		{"L2 ways", cfg.L2.Ways, 8},
		{"L3 size", cfg.LLC.SizeBytes, 8 << 20},
		{"L3 ways", cfg.LLC.Ways, 16},
		{"L1 latency", cfg.L1Lat, 2 * event.Nanosecond},
		{"L2 latency (additive 2+4)", cfg.L2Lat, 6 * event.Nanosecond},
		{"L3 latency (additive 2+4+17)", cfg.LLCLat, 23 * event.Nanosecond},
		{"counter cache", eng.CounterCacheBytes, 128 << 10},
		{"counter cache ways", eng.CounterCacheWays, 32},
		{"Morphable decode", cfg.DecodeLat, 3 * event.Nanosecond},
		{"AES-128 latency", cfg.AESLat, 15 * event.Nanosecond},
		{"carry-less multiply", cfg.ClmulLat, 1 * event.Nanosecond},
		{"memo table L0 entries", eng.L0Table.Entries(), 128},
		{"memo table L1 entries", eng.L1Table.Entries(), 128},
		{"tCL", cfg.DRAM.TCL, 13750 * event.Picosecond},
		{"tRCD", cfg.DRAM.TRCD, 13750 * event.Picosecond},
		{"tRP", cfg.DRAM.TRP, 13750 * event.Picosecond},
		{"tRFC", cfg.DRAM.TRFC, 350 * event.Nanosecond},
		{"row-buffer timeout", cfg.DRAM.RowTimeout, 500 * event.Nanosecond},
		{"read queue", cfg.DRAM.ReadQueueCap, 256},
		{"write queue", cfg.DRAM.WriteQueueCap, 256},
		{"ranks", cfg.DRAM.Ranks, 8},
		{"burst (3.2 GT/s x 64B)", cfg.DRAM.BurstTime, 2500 * event.Picosecond},
		{"page size", cfg.PageBytes, uint64(2 << 20)},
		{"epoch", eng.L0Table.EpochAccesses, uint64(1_000_000)},
		{"budget", eng.L0Table.BudgetFrac, 0.01},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("Table I mismatch: %s = %v, want %v", c.name, c.got, c.want)
		}
	}
}
