// Package event provides the discrete-event simulation core: a virtual
// clock in picoseconds and a priority queue of scheduled callbacks.
//
// Picoseconds keep every Table-I constant exact as an integer (tCL =
// 13.75 ns = 13750 ps, DDR4-3200 beat = 312.5 ps rounds to 313 ps) while an
// int64 clock still spans ~106 days of simulated time, far beyond any run.
package event

import "container/heap"

// Time is a simulated timestamp in picoseconds.
type Time = int64

// Time unit helpers.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

type item struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-time events for determinism
	fn  func()
}

type queue []item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *queue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event engine. It is not safe for
// concurrent use; all model components run on the engine's thread.
type Engine struct {
	q   queue
	now Time
	seq uint64
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at simulated time at. Scheduling in the past (at < Now)
// panics: it always indicates a model bug, and silently clamping would hide
// causality violations.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic("event: scheduling in the past")
	}
	heap.Push(&e.q, item{at: at, seq: e.seq, fn: fn})
	e.seq++
}

// After runs fn delay picoseconds from now.
func (e *Engine) After(delay Time, fn func()) { e.Schedule(e.now+delay, fn) }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.q) }

// Step executes the next event, advancing the clock. It returns false when
// no events remain.
func (e *Engine) Step() bool {
	if len(e.q) == 0 {
		return false
	}
	it := heap.Pop(&e.q).(item)
	e.now = it.at
	it.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled later stay queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.q) > 0 && e.q[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
