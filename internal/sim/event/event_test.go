package event

import (
	"testing"

	"rmcc/internal/rng"
)

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := New()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			e.After(10, step)
		}
	}
	e.Schedule(0, step)
	e.Run()
	if count != 5 || e.Now() != 40 {
		t.Fatalf("count=%d now=%d", count, e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for past scheduling")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	e.Schedule(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(100)
	if fired != 3 || e.Now() != 100 {
		t.Fatalf("fired=%d now=%d", fired, e.Now())
	}
}

func TestRandomizedOrderingProperty(t *testing.T) {
	r := rng.New(123)
	e := New()
	const n = 2000
	times := make([]Time, n)
	for i := range times {
		times[i] = Time(r.Uint64n(100000))
	}
	var seen []Time
	for _, at := range times {
		at := at
		e.Schedule(at, func() { seen = append(seen, at) })
	}
	e.Run()
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("out of order at %d: %d after %d", i, seen[i], seen[i-1])
		}
	}
	if len(seen) != n {
		t.Fatalf("lost events: %d/%d", len(seen), n)
	}
}

func BenchmarkScheduleStep(b *testing.B) {
	e := New()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%64), func() {})
		e.Step()
	}
}
