package sim

import (
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
)

// TestSpeculativeVerificationHelpsBaseline reproduces the §VII trade-off:
// speculation hides verification latency (so the baseline improves), but
// not the counter-to-pad AES (so RMCC still adds benefit on top).
func TestSpeculativeVerificationHelpsBaseline(t *testing.T) {
	run := func(mode engine.Mode, spec bool) DetailedResult {
		cfg := detailedCfg(mode, counter.Morphable)
		cfg.SpeculativeVerification = spec
		cfg.WarmupAccesses = 100_000
		cfg.MeasureAccesses = 300_000
		return RunDetailed(mustWL(t, "canneal", 31), cfg)
	}
	base := run(engine.Baseline, false)
	spec := run(engine.Baseline, true)
	if spec.AvgMissLatencyNS >= base.AvgMissLatencyNS {
		t.Fatalf("speculation did not cut miss latency: %.1f vs %.1f",
			spec.AvgMissLatencyNS, base.AvgMissLatencyNS)
	}
	if spec.IPC < base.IPC {
		t.Fatalf("speculation reduced IPC: %.3f vs %.3f", spec.IPC, base.IPC)
	}
	// RMCC composes with speculation: the pad computation is the part
	// speculation cannot hide.
	rmSpec := run(engine.RMCC, true)
	if rmSpec.AvgMissLatencyNS > spec.AvgMissLatencyNS {
		t.Fatalf("RMCC+spec latency %.1f above spec-only %.1f",
			rmSpec.AvgMissLatencyNS, spec.AvgMissLatencyNS)
	}
}
