package sim

// prefetcher is a constant-stride stream prefetcher at the LLC fill level
// (Table I lists stride prefetchers of degree 1 at L1 and 2 at L2; we model
// their combined effect where it matters for this paper — at the memory
// controller, where prefetch fills consume DRAM bandwidth and warm both
// the LLC and the counter cache ahead of demand).
//
// A small table of streams tracks the last line and detected stride per
// stream; two consecutive accesses with the same stride arm the stream,
// after which each demand miss prefetches the next `degree` lines.
type prefetcher struct {
	streams []pfStream
	degree  int
	clock   uint64
}

type pfStream struct {
	lastLine uint64
	stride   int64
	conf     int
	lastUse  uint64
}

const pfConfidenceArm = 2

func newPrefetcher(streams, degree int) *prefetcher {
	if streams <= 0 || degree <= 0 {
		return nil
	}
	return &prefetcher{streams: make([]pfStream, streams), degree: degree}
}

// observe feeds a demand-missed line address and returns the line
// addresses to prefetch (possibly none).
func (p *prefetcher) observe(line uint64) []uint64 {
	p.clock++
	// Find the stream this line continues: one whose lastLine+stride is
	// nearby (within 8 lines forms/continues a stream).
	best := -1
	var bestDelta int64
	for i := range p.streams {
		s := &p.streams[i]
		if s.lastUse == 0 {
			continue
		}
		delta := int64(line) - int64(s.lastLine)
		if delta != 0 && delta >= -8 && delta <= 8 {
			if best == -1 || abs64(delta) < abs64(bestDelta) {
				best, bestDelta = i, delta
			}
		}
	}
	if best == -1 {
		// Allocate a fresh stream (LRU victim).
		victim := 0
		for i := range p.streams {
			if p.streams[i].lastUse < p.streams[victim].lastUse {
				victim = i
			}
		}
		p.streams[victim] = pfStream{lastLine: line, lastUse: p.clock}
		return nil
	}
	s := &p.streams[best]
	if s.stride == bestDelta {
		if s.conf < pfConfidenceArm {
			s.conf++
		}
	} else {
		s.stride = bestDelta
		s.conf = 1
	}
	s.lastLine = line
	s.lastUse = p.clock
	if s.conf < pfConfidenceArm {
		return nil
	}
	out := make([]uint64, 0, p.degree)
	next := int64(line)
	for d := 0; d < p.degree; d++ {
		next += s.stride
		if next <= 0 {
			break
		}
		out = append(out, uint64(next))
	}
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
