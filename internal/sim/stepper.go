package sim

import (
	"rmcc/internal/mem/tlb"
	"rmcc/internal/mem/vm"
	"rmcc/internal/obs"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/workload"
)

// Lifetime is the incremental form of the lifetime driver: the same cache
// hierarchy, TLBs, page mapper, and secure MC that RunLifetime wires up,
// but stepped one CPU access at a time by the caller. RunLifetime is a
// thin loop over it, so a stream replayed through Step produces stats
// byte-identical to a direct run of the same stream — the property the
// rmccd service layer is built on.
//
// A Lifetime is single-owner: Step and Result must not be called
// concurrently (the engine underneath is not thread-safe).
type Lifetime struct {
	cfg    LifetimeConfig
	h      *hierarchy
	mapper *vm.Mapper
	mc     *engine.MC

	tlb4k, tlb2m *tlb.TLB

	name     string
	accesses uint64
	reads    uint64
	writes   uint64
}

// NewLifetimeChecked builds an incremental lifetime simulation for a
// stream named name over footprintBytes of virtual footprint. The engine
// configuration is validated first; invalid configurations return an
// error wrapping engine.ErrInvalidConfig instead of panicking (the
// service layer feeds it user input).
func NewLifetimeChecked(name string, footprintBytes uint64, cfg LifetimeConfig) (*Lifetime, error) {
	physBytes := physFor(footprintBytes, cfg.PageBytes)
	engCfg := cfg.Engine
	engCfg.MemBytes = physBytes
	mc, err := engine.NewChecked(engCfg)
	if err != nil {
		return nil, err
	}
	lt := &Lifetime{
		cfg:    cfg,
		h:      newHierarchy(cfg.L1, cfg.L2, cfg.LLC),
		mapper: vm.New(physBytes, cfg.PageBytes, cfg.Seed^0xabcd),
		mc:     mc,
		tlb4k:  tlb.New(tlb.Config{Entries: cfg.TLBEntries, Ways: 12, PageBytes: 4 << 10}),
		tlb2m:  tlb.New(tlb.Config{Entries: cfg.TLBEntries, Ways: 12, PageBytes: 2 << 20}),
		name:   name,
	}
	if cfg.Tracer != nil {
		mc.SetTracer(cfg.Tracer)
	}
	if cfg.OnController != nil {
		cfg.OnController(mc)
	}
	if cfg.Metrics != nil {
		mc.RegisterMetrics(cfg.Metrics)
		registerHierarchyMetrics(cfg.Metrics, lt.h)
		cfg.Metrics.CounterFunc("rmcc_sim_tlb_misses_total",
			"TLB misses on the CPU access stream by page size",
			func() uint64 { return lt.tlb4k.Stats().Misses }, obs.L("page", "4k"))
		cfg.Metrics.CounterFunc("rmcc_sim_tlb_misses_total", "",
			func() uint64 { return lt.tlb2m.Stats().Misses }, obs.L("page", "2m"))
	}
	return lt, nil
}

// Step runs one CPU access through TLBs, the cache hierarchy, and — on an
// LLC miss or dirty eviction — the secure memory controller. It mirrors
// the RunLifetime loop body exactly.
func (lt *Lifetime) Step(a workload.Access) {
	lt.accesses++
	lt.tlb4k.Lookup(a.Addr)
	lt.tlb2m.Lookup(a.Addr)
	paddr := lt.mapper.Translate(a.Addr)
	miss, victims := lt.h.access(paddr, a.Write)
	for _, v := range victims {
		lt.mc.Write(v)
		lt.mc.OnEpochAccess()
		lt.writes++
	}
	if miss {
		lt.mc.Read(paddr)
		lt.mc.OnEpochAccess()
		lt.reads++
	}
	if lt.cfg.OnAccess != nil {
		lt.cfg.OnAccess(lt.accesses, lt.mc)
	}
}

// Accesses returns the number of CPU accesses stepped so far.
func (lt *Lifetime) Accesses() uint64 { return lt.accesses }

// MC exposes the underlying controller (snapshot endpoints, tests).
func (lt *Lifetime) MC() *engine.MC { return lt.mc }

// Result snapshots the run so far as a LifetimeResult. It is a pure read:
// calling it mid-stream and continuing to Step is fine (but must happen
// on the owning goroutine — the engine scan underneath is not
// thread-safe).
func (lt *Lifetime) Result() LifetimeResult {
	res := LifetimeResult{
		Workload:      lt.name,
		Accesses:      lt.accesses,
		LLCMissReads:  lt.reads,
		LLCMissWrites: lt.writes,
		TLB4KMisses:   lt.tlb4k.Stats().Misses,
		TLB2MMisses:   lt.tlb2m.Stats().Misses,
		L1Stats:       lt.h.l1.Stats(),
		L2Stats:       lt.h.l2.Stats(),
		LLCStats:      lt.h.llc.Stats(),
		Engine:        lt.mc.Stats(),
	}
	if lt.mc.Store() != nil {
		res.MaxCounter = lt.mc.Store().ObservedMax()
	}
	if lt.mc.L0Table() != nil && lt.mc.Store() != nil {
		res.CoveragePerValue = coveragePerValue(lt.mc)
	}
	return res
}
