// Package sim provides the two simulation drivers over the shared
// functional machinery:
//
//   - Lifetime: the Pintool analog — caches, TLBs, counters, memoization
//     tables, traffic accounting; no clock. Whole-application-lifetime
//     metrics (Figures 3, 4, 10, 15, 16, 19–22).
//   - Detailed: the Gem5 analog — adds an out-of-order-window CPU model and
//     the DDR4 timing channel to turn the same functional outcomes into
//     performance (Figures 12–14, 17, 18).
package sim

import (
	"rmcc/internal/mem/cache"
	"rmcc/internal/obs"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/workload"
)

// LifetimeConfig parameterizes a lifetime (functional) run. The cache
// defaults mirror the paper's Pintool setup: 1 MB L2 and 2 MB LLC per
// thread, 32 KB counter cache per thread, 2 MB huge pages.
type LifetimeConfig struct {
	L1  cache.Config
	L2  cache.Config
	LLC cache.Config

	TLBEntries int
	PageBytes  uint64

	// Engine carries the MC mode/scheme/table settings. MemBytes is
	// overridden to fit the workload footprint.
	Engine engine.Config

	// MaxAccesses bounds the CPU-level access stream.
	MaxAccesses uint64
	Seed        uint64

	// Metrics, when set, receives func-backed views of the engine, cache
	// hierarchy, and TLB statistics before the access stream starts; exports
	// cut from it mid-run or afterwards see live values. Tracer, when set,
	// is attached to the MC for per-access event tracing. Both default to
	// nil (no observation overhead).
	Metrics *obs.Registry
	Tracer  *obs.Tracer

	// OnController, when set, receives the constructed MC before the access
	// stream starts — the attachment point for fault campaigns and extra
	// instrumentation.
	OnController func(mc *engine.MC)
	// OnAccess, when set, runs after every CPU access with the 1-based
	// access ordinal and the MC — the fault campaign's injection point.
	OnAccess func(n uint64, mc *engine.MC)
}

// DefaultLifetimeConfig mirrors the paper's Pintool configuration.
func DefaultLifetimeConfig(eng engine.Config) LifetimeConfig {
	eng.CounterCacheBytes = 32 << 10 // per-thread counter cache (§III, §V)
	return LifetimeConfig{
		L1:          cache.Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64},
		L2:          cache.Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64},
		LLC:         cache.Config{SizeBytes: 2 << 20, Ways: 16, LineBytes: 64},
		TLBEntries:  1536,
		PageBytes:   2 << 20,
		Engine:      eng,
		MaxAccesses: 5_000_000,
		Seed:        1,
	}
}

// LifetimeResult aggregates a lifetime run.
type LifetimeResult struct {
	Workload      string
	Accesses      uint64
	LLCMissReads  uint64
	LLCMissWrites uint64 // dirty LLC evictions sent to the MC

	// TLB misses measured on the same stream under both page sizes
	// (Figure 4). Misses are normalized against LLC misses by the caller.
	TLB4KMisses uint64
	TLB2MMisses uint64

	L1Stats, L2Stats, LLCStats cache.Stats
	Engine                     engine.Stats

	// CoveragePerValue is the mean number of data blocks whose counter
	// equals a live memoized value, per memoized value (Figure 15).
	CoveragePerValue float64
	// MaxCounter is the largest data counter at the end (§IV-D2's +24%).
	MaxCounter uint64
}

// LLCMisses returns total MC read requests (the Figure-3 denominator).
func (r LifetimeResult) LLCMisses() uint64 { return r.LLCMissReads }

// RunLifetime executes a whole-lifetime functional simulation of w: a
// Lifetime stepper fed by the workload's access stream until MaxAccesses.
func RunLifetime(w workload.Workload, cfg LifetimeConfig) LifetimeResult {
	lt, err := NewLifetimeChecked(w.Name(), w.FootprintBytes(), cfg)
	if err != nil {
		// Experiment configurations are code-defined, not user input;
		// match engine.New's panic-on-invalid contract.
		panic(err)
	}
	st := newStream(func(sink workload.Sink) { w.Run(cfg.Seed, sink) })
	defer st.close()

	for lt.Accesses() < cfg.MaxAccesses {
		a, ok := st.next()
		if !ok {
			break
		}
		lt.Step(a)
	}
	return lt.Result()
}

// physFor sizes simulated physical memory: footprint plus slack, page
// aligned.
func physFor(footprint, pageBytes uint64) uint64 {
	phys := footprint + footprint/4 + 16<<20
	return (phys + pageBytes - 1) &^ (pageBytes - 1)
}

// coveragePerValue scans all data counters and computes the Figure-15
// metric: blocks covered per live memoized value.
func coveragePerValue(mc *engine.MC) float64 {
	tbl := mc.L0Table()
	store := mc.Store()
	live := tbl.LiveValues()
	if len(live) == 0 {
		return 0
	}
	inTable := make(map[uint64]bool, len(live))
	for _, v := range live {
		inTable[v] = true
	}
	covered := 0
	for i := 0; i < store.NumDataBlocks(); i++ {
		if inTable[store.DataCounter(i)] {
			covered++
		}
	}
	return float64(covered) / float64(len(live))
}

// hierarchy is the three-level data-cache stack shared by both drivers.
// Caches are modeled functionally (presence + dirtiness); dirty evictions
// propagate downward and ultimately reach the MC.
type hierarchy struct {
	l1, l2, llc *cache.Cache
}

func newHierarchy(l1, l2, llc cache.Config) *hierarchy {
	return &hierarchy{l1: cache.New(l1), l2: cache.New(l2), llc: cache.New(llc)}
}

// access runs one CPU access through L1→L2→LLC. It returns whether the
// access missed the LLC (needs an MC read) and any dirty LLC victims that
// must be written to memory.
func (h *hierarchy) access(paddr uint64, write bool) (llcMiss bool, victims []uint64) {
	r1 := h.l1.Access(paddr, write)
	if r1.Evicted && r1.Writeback {
		// L1 victim lands in L2 (it is inclusive-enough: allocate).
		r2 := h.l2.Access(r1.VictimAddr, true)
		if r2.Evicted && r2.Writeback {
			victims = h.llcWrite(r2.VictimAddr, victims)
		}
	}
	if r1.Hit {
		return false, victims
	}
	r2 := h.l2.Access(paddr, false)
	if r2.Evicted && r2.Writeback {
		victims = h.llcWrite(r2.VictimAddr, victims)
	}
	if r2.Hit {
		return false, victims
	}
	r3 := h.llc.Access(paddr, false)
	if r3.Evicted && r3.Writeback {
		victims = append(victims, r3.VictimAddr)
	}
	return !r3.Hit, victims
}

// llcWrite inserts a dirty block into the LLC, collecting any dirty victim
// it displaces.
func (h *hierarchy) llcWrite(paddr uint64, victims []uint64) []uint64 {
	r := h.llc.Access(paddr, true)
	if r.Evicted && r.Writeback {
		victims = append(victims, r.VictimAddr)
	}
	return victims
}

// latency classification for the detailed driver.
type hitLevel int

const (
	hitL1 hitLevel = iota
	hitL2
	hitLLC
	missAll
)

func (l hitLevel) String() string {
	switch l {
	case hitL1:
		return "L1"
	case hitL2:
		return "L2"
	case hitLLC:
		return "LLC"
	default:
		return "memory"
	}
}

// accessLeveled is access but reporting which level served the request.
func (h *hierarchy) accessLeveled(paddr uint64, write bool) (lvl hitLevel, victims []uint64) {
	r1 := h.l1.Access(paddr, write)
	if r1.Evicted && r1.Writeback {
		r2 := h.l2.Access(r1.VictimAddr, true)
		if r2.Evicted && r2.Writeback {
			victims = h.llcWrite(r2.VictimAddr, victims)
		}
	}
	if r1.Hit {
		return hitL1, victims
	}
	r2 := h.l2.Access(paddr, false)
	if r2.Evicted && r2.Writeback {
		victims = h.llcWrite(r2.VictimAddr, victims)
	}
	if r2.Hit {
		return hitL2, victims
	}
	r3 := h.llc.Access(paddr, false)
	if r3.Evicted && r3.Writeback {
		victims = append(victims, r3.VictimAddr)
	}
	if r3.Hit {
		return hitLLC, victims
	}
	return missAll, victims
}
