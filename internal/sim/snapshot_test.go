package sim_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"rmcc/internal/rng"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/snapshot"
	"rmcc/internal/workload"
)

// stepTo pulls accesses from a fresh deterministic stream, discarding the
// first skip (the restored stepper's cursor) and stepping the rest until
// the stepper reaches target accesses.
func stepTo(t *testing.T, lt *sim.Lifetime, w workload.Workload, seed, skip, target uint64) {
	t.Helper()
	st := sim.NewAccessStream(func(sink workload.Sink) { w.Run(seed, sink) })
	defer st.Close()
	for i := uint64(0); i < skip; i++ {
		if _, ok := st.Next(); !ok {
			t.Fatal("stream exhausted during skip")
		}
	}
	for lt.Accesses() < target {
		a, ok := st.Next()
		if !ok {
			t.Fatal("stream exhausted")
		}
		lt.Step(a)
	}
}

// TestSnapshotResumeBitIdentical is the tentpole property test: for every
// mode × counter scheme, run a lifetime to a random access N, snapshot,
// restore into a fresh stepper, and require the resumed run's results AND
// its own re-snapshot to be bit-identical to an uninterrupted run.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	type combo struct {
		mode   engine.Mode
		scheme counter.Scheme
	}
	combos := []combo{
		{engine.NonSecure, counter.SGX},
		{engine.Baseline, counter.SGX},
		{engine.Baseline, counter.SC64},
		{engine.Baseline, counter.Morphable},
		{engine.RMCC, counter.SGX},
		{engine.RMCC, counter.SC64},
		{engine.RMCC, counter.Morphable},
	}
	const target = 9000
	r := rng.New(0x5a47)
	for _, c := range combos {
		c := c
		cut := 1 + r.Uint64n(target-2) // random snapshot point in (0, target)
		t.Run(fmt.Sprintf("%v-%v", c.mode, c.scheme), func(t *testing.T) {
			t.Parallel()
			w, ok := workload.ByName(workload.SizeTest, 7, "canneal")
			if !ok {
				t.Fatal("no canneal workload")
			}
			cfg := sim.DefaultLifetimeConfig(engine.DefaultConfig(c.mode, c.scheme, 0))
			cfg.Seed = 7

			newLT := func() *sim.Lifetime {
				lt, err := sim.NewLifetimeChecked(w.Name(), w.FootprintBytes(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return lt
			}

			// Uninterrupted run.
			ltA := newLT()
			stepTo(t, ltA, w, cfg.Seed, 0, target)
			resA := ltA.Result()
			var saveA bytes.Buffer
			if err := ltA.Save(&saveA); err != nil {
				t.Fatal(err)
			}

			// Interrupted run: stop at cut, snapshot, restore into a fresh
			// stepper, finish.
			ltB := newLT()
			stepTo(t, ltB, w, cfg.Seed, 0, cut)
			var mid bytes.Buffer
			if err := ltB.Save(&mid); err != nil {
				t.Fatal(err)
			}
			ltC := newLT()
			if err := ltC.Load(bytes.NewReader(mid.Bytes())); err != nil {
				t.Fatal(err)
			}
			if ltC.Accesses() != cut {
				t.Fatalf("restored cursor %d, want %d", ltC.Accesses(), cut)
			}
			stepTo(t, ltC, w, cfg.Seed, cut, target)
			resC := ltC.Result()

			if !reflect.DeepEqual(resA, resC) {
				t.Errorf("cut=%d: resumed result differs from uninterrupted run:\nA: %+v\nC: %+v",
					cut, resA, resC)
			}
			var saveC bytes.Buffer
			if err := ltC.Save(&saveC); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(saveA.Bytes(), saveC.Bytes()) {
				t.Errorf("cut=%d: resumed snapshot bytes differ from uninterrupted run's", cut)
			}
		})
	}
}

// TestSnapshotResumeTrackContents exercises the functional-memory image
// path (plain/cipher/MAC maps) through a snapshot boundary.
func TestSnapshotResumeTrackContents(t *testing.T) {
	w, ok := workload.ByName(workload.SizeTest, 3, "stream")
	if !ok {
		// Fall back: any workload works for this property.
		w, _ = workload.ByName(workload.SizeTest, 3, "canneal")
	}
	eng := engine.DefaultConfig(engine.RMCC, counter.Morphable, 0)
	eng.TrackContents = true
	cfg := sim.DefaultLifetimeConfig(eng)
	cfg.Seed = 3
	const cut, target = 1500, 4000

	ltA, err := sim.NewLifetimeChecked(w.Name(), w.FootprintBytes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepTo(t, ltA, w, cfg.Seed, 0, target)
	resA := ltA.Result()
	if resA.Engine.IntegrityFailures != 0 || resA.Engine.DecryptMismatches != 0 {
		t.Fatalf("uninterrupted run not clean: %+v", resA.Engine)
	}

	ltB, err := sim.NewLifetimeChecked(w.Name(), w.FootprintBytes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepTo(t, ltB, w, cfg.Seed, 0, cut)
	var mid bytes.Buffer
	if err := ltB.Save(&mid); err != nil {
		t.Fatal(err)
	}
	ltC, err := sim.NewLifetimeChecked(w.Name(), w.FootprintBytes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ltC.Load(bytes.NewReader(mid.Bytes())); err != nil {
		t.Fatal(err)
	}
	stepTo(t, ltC, w, cfg.Seed, cut, target)
	resC := ltC.Result()
	if !reflect.DeepEqual(resA, resC) {
		t.Errorf("TrackContents resume differs:\nA: %+v\nC: %+v", resA, resC)
	}
	if resC.Engine.IntegrityFailures != 0 || resC.Engine.DecryptMismatches != 0 {
		t.Errorf("resumed run failed verification: %+v", resC.Engine)
	}
}

// TestLifetimeLoadTypedErrors pins the error taxonomy at the sim layer.
func TestLifetimeLoadTypedErrors(t *testing.T) {
	w, _ := workload.ByName(workload.SizeTest, 1, "canneal")
	cfg := sim.DefaultLifetimeConfig(engine.DefaultConfig(engine.RMCC, counter.SGX, 0))
	lt, err := sim.NewLifetimeChecked(w.Name(), w.FootprintBytes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	fresh := func() *sim.Lifetime {
		lt, err := sim.NewLifetimeChecked(w.Name(), w.FootprintBytes(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return lt
	}

	// Truncation → corrupt.
	if err := fresh().Load(bytes.NewReader(valid[:len(valid)/2])); !errors.Is(err, snapshot.ErrSnapshotCorrupt) {
		t.Errorf("truncated: %v", err)
	}
	// Version flip → version error.
	bad := append([]byte(nil), valid...)
	bad[8] = 0x7f
	if err := fresh().Load(bytes.NewReader(bad)); !errors.Is(err, snapshot.ErrSnapshotVersion) {
		t.Errorf("version: %v", err)
	}
	// Different engine config → config mismatch.
	cfg2 := cfg
	cfg2.Engine = engine.DefaultConfig(engine.Baseline, counter.SC64, 0)
	lt2, err := sim.NewLifetimeChecked(w.Name(), w.FootprintBytes(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := lt2.Load(bytes.NewReader(valid)); !errors.Is(err, snapshot.ErrSnapshotConfigMismatch) {
		t.Errorf("config mismatch: %v", err)
	}
	// The valid bytes load cleanly into a matching fresh stepper.
	if err := fresh().Load(bytes.NewReader(valid)); err != nil {
		t.Errorf("valid load: %v", err)
	}
}
