package sim

import (
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/workload"
)

func lifetimeCfg(mode engine.Mode, scheme counter.Scheme, accesses uint64) LifetimeConfig {
	eng := engine.DefaultConfig(mode, scheme, 0)
	eng.L0Table.EpochAccesses = 100_000
	eng.L1Table.EpochAccesses = 100_000
	eng.L0Table.OverMaxThreshold = 512
	eng.L1Table.OverMaxThreshold = 512
	cfg := DefaultLifetimeConfig(eng)
	cfg.MaxAccesses = accesses
	return cfg
}

func TestLifetimeRunsAllWorkloads(t *testing.T) {
	for _, w := range workload.Suite(workload.SizeTest, 1) {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			res := RunLifetime(w, lifetimeCfg(engine.Baseline, counter.Morphable, 200_000))
			if res.Accesses != 200_000 {
				t.Fatalf("accesses = %d", res.Accesses)
			}
			if res.LLCMissReads == 0 {
				t.Fatal("no LLC misses — footprint fits cache, not the paper's regime")
			}
			if res.Engine.Reads != res.LLCMissReads {
				t.Fatalf("engine reads %d != misses %d", res.Engine.Reads, res.LLCMissReads)
			}
		})
	}
}

func TestLifetimeCounterMissesTrackIrregularity(t *testing.T) {
	// Figure-3 shape: canneal's counter miss rate far above mcf's.
	rate := func(name string) float64 {
		w, ok := workload.ByName(workload.SizeSmall, 2, name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		res := RunLifetime(w, lifetimeCfg(engine.Baseline, counter.Morphable, 2_000_000))
		return res.Engine.CtrMissRate()
	}
	canneal := rate("canneal")
	mcf := rate("mcf")
	t.Logf("ctr miss rate: canneal=%.3f mcf=%.3f", canneal, mcf)
	if canneal < 0.5 {
		t.Fatalf("canneal counter miss rate %.3f too low", canneal)
	}
	if mcf > canneal/2 {
		t.Fatalf("mcf (%.3f) not clearly below canneal (%.3f)", mcf, canneal)
	}
}

func TestLifetimeRMCCMemoizationConverges(t *testing.T) {
	w, _ := workload.ByName(workload.SizeSmall, 3, "canneal")
	res := RunLifetime(w, lifetimeCfg(engine.RMCC, counter.Morphable, 4_000_000))
	hit := res.Engine.MemoHitRateOnMisses()
	t.Logf("memo hit on misses = %.3f, coverage/value = %.0f blocks, accelerated = %.3f",
		hit, res.CoveragePerValue, res.Engine.AcceleratedRate())
	if hit < 0.5 {
		t.Fatalf("memoization hit rate %.3f did not converge (want > 0.5 on canneal)", hit)
	}
	if res.CoveragePerValue < 100 {
		t.Fatalf("coverage per value %.1f implausibly low", res.CoveragePerValue)
	}
}

func TestLifetimeTLBHugePagesWin(t *testing.T) {
	w, _ := workload.ByName(workload.SizeSmall, 4, "canneal")
	res := RunLifetime(w, lifetimeCfg(engine.Baseline, counter.Morphable, 1_000_000))
	if res.TLB2MMisses*4 > res.TLB4KMisses {
		t.Fatalf("2MB TLB misses %d not well below 4KB %d", res.TLB2MMisses, res.TLB4KMisses)
	}
}

func TestLifetimeTrafficOverheadBounded(t *testing.T) {
	// Figure-20 regime: RMCC's traffic overhead under a 1 % budget must be
	// within a few percent of the baseline's traffic.
	base := RunLifetime(mustWL(t, "pageRank", 5), lifetimeCfg(engine.Baseline, counter.Morphable, 3_000_000))
	rm := RunLifetime(mustWL(t, "pageRank", 5), lifetimeCfg(engine.RMCC, counter.Morphable, 3_000_000))
	bt, rt := float64(base.Engine.TotalTraffic()), float64(rm.Engine.TotalTraffic())
	overhead := rt/bt - 1
	t.Logf("traffic overhead = %.3f (base %d, rmcc %d)", overhead, base.Engine.TotalTraffic(), rm.Engine.TotalTraffic())
	if overhead > 0.15 {
		t.Fatalf("traffic overhead %.3f way above budgeted regime", overhead)
	}
}

func mustWL(t testing.TB, name string, seed uint64) workload.Workload {
	t.Helper()
	w, ok := workload.ByName(workload.SizeSmall, seed, name)
	if !ok {
		t.Fatalf("missing workload %s", name)
	}
	return w
}

func detailedCfg(mode engine.Mode, scheme counter.Scheme) DetailedConfig {
	eng := engine.DefaultConfig(mode, scheme, 0)
	eng.L0Table.EpochAccesses = 50_000
	eng.L1Table.EpochAccesses = 50_000
	eng.L0Table.OverMaxThreshold = 512
	eng.L1Table.OverMaxThreshold = 512
	cfg := DefaultDetailedConfig(eng)
	cfg.LLC.SizeBytes = 2 << 20 // scale the LLC with the SizeSmall workloads
	cfg.WarmupAccesses = 200_000
	cfg.MeasureAccesses = 600_000
	return cfg
}

func TestDetailedNonSecureBasics(t *testing.T) {
	res := RunDetailed(mustWL(t, "canneal", 6), detailedCfg(engine.NonSecure, counter.Morphable))
	if res.IPC <= 0 {
		t.Fatalf("IPC = %v", res.IPC)
	}
	if res.LLCMisses == 0 {
		t.Fatal("no misses measured")
	}
	// Non-secure miss latency is bare DRAM: tens of ns, well under 500.
	if res.AvgMissLatencyNS < 15 || res.AvgMissLatencyNS > 500 {
		t.Fatalf("non-secure miss latency %.1f ns implausible", res.AvgMissLatencyNS)
	}
}

func TestDetailedSecureSlowerThanNonSecure(t *testing.T) {
	ns := RunDetailed(mustWL(t, "canneal", 7), detailedCfg(engine.NonSecure, counter.Morphable))
	base := RunDetailed(mustWL(t, "canneal", 7), detailedCfg(engine.Baseline, counter.Morphable))
	t.Logf("non-secure IPC=%.3f lat=%.1f; morphable IPC=%.3f lat=%.1f",
		ns.IPC, ns.AvgMissLatencyNS, base.IPC, base.AvgMissLatencyNS)
	if base.IPC >= ns.IPC {
		t.Fatalf("secure baseline (%.3f) not slower than non-secure (%.3f)", base.IPC, ns.IPC)
	}
	if base.AvgMissLatencyNS <= ns.AvgMissLatencyNS {
		t.Fatal("secure miss latency not above non-secure")
	}
}

func TestDetailedRMCCBeatsMorphableOnIrregular(t *testing.T) {
	// The headline (Figure 13/14 shape): on a counter-miss-heavy workload,
	// RMCC improves IPC and trims miss latency vs Morphable.
	base := RunDetailed(mustWL(t, "canneal", 8), detailedCfg(engine.Baseline, counter.Morphable))
	rm := RunDetailed(mustWL(t, "canneal", 8), detailedCfg(engine.RMCC, counter.Morphable))
	t.Logf("morphable IPC=%.4f lat=%.1fns | RMCC IPC=%.4f lat=%.1fns (memo hit on miss %.2f)",
		base.IPC, base.AvgMissLatencyNS, rm.IPC, rm.AvgMissLatencyNS,
		rm.Engine.MemoHitRateOnMisses())
	if rm.AvgMissLatencyNS >= base.AvgMissLatencyNS {
		t.Fatalf("RMCC miss latency %.1f not below Morphable %.1f",
			rm.AvgMissLatencyNS, base.AvgMissLatencyNS)
	}
	if rm.IPC <= base.IPC {
		t.Fatalf("RMCC IPC %.4f not above Morphable %.4f", rm.IPC, base.IPC)
	}
}

func TestDetailedMultiCoreSharding(t *testing.T) {
	cfg := detailedCfg(engine.Baseline, counter.Morphable)
	cfg.Cores = 4
	cfg.WarmupAccesses = 100_000
	cfg.MeasureAccesses = 300_000
	res := RunDetailed(mustWL(t, "BFS", 9), cfg)
	if res.IPC <= 0 || res.LLCMisses == 0 {
		t.Fatalf("multicore run degenerate: %+v", res)
	}
}

func TestDetailedDeterminism(t *testing.T) {
	cfg := detailedCfg(engine.RMCC, counter.Morphable)
	cfg.WarmupAccesses = 50_000
	cfg.MeasureAccesses = 150_000
	a := RunDetailed(mustWL(t, "omnetpp", 10), cfg)
	b := RunDetailed(mustWL(t, "omnetpp", 10), cfg)
	if a.IPC != b.IPC || a.WindowTime != b.WindowTime || a.LLCMisses != b.LLCMisses {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestDetailedAESLatencySensitivity(t *testing.T) {
	// Figure-17 mechanism: higher AES latency hurts the baseline more than
	// RMCC, so the RMCC advantage grows.
	run := func(mode engine.Mode, aesNS int64) DetailedResult {
		cfg := detailedCfg(mode, counter.Morphable)
		cfg.AESLat = aesNS * 1000
		cfg.WarmupAccesses = 100_000
		cfg.MeasureAccesses = 300_000
		return RunDetailed(mustWL(t, "canneal", 11), cfg)
	}
	b15, r15 := run(engine.Baseline, 15), run(engine.RMCC, 15)
	b22, r22 := run(engine.Baseline, 22), run(engine.RMCC, 22)
	gain15 := r15.IPC / b15.IPC
	gain22 := r22.IPC / b22.IPC
	t.Logf("RMCC gain: 15ns=%.4f 22ns=%.4f", gain15, gain22)
	if gain22 <= gain15*0.99 {
		t.Fatalf("RMCC advantage did not grow with AES latency: %.4f vs %.4f", gain15, gain22)
	}
}

func TestStreamCloseStopsGenerator(t *testing.T) {
	w := mustWL(t, "canneal", 12)
	st := newStream(func(sink workload.Sink) { w.Run(1, sink) })
	for i := 0; i < 100; i++ {
		if _, ok := st.next(); !ok {
			t.Fatal("stream ended prematurely")
		}
	}
	st.close() // must not deadlock
	if _, ok := st.next(); ok {
		t.Fatal("stream produced accesses after close")
	}
}
