package counter

import "testing"

// FuzzEncodeUpdateRelevel drives a counter store through arbitrary update
// sequences and checks the structural invariants: CanEncodeData's verdict
// is always safe to act on, counters never decrease, and relevel leaves a
// uniform (maximally encodable) group.
func FuzzEncodeUpdateRelevel(f *testing.F) {
	f.Add(uint16(3), uint8(1), uint8(7))
	f.Add(uint16(200), uint8(2), uint8(127))
	f.Fuzz(func(t *testing.T, blockSel uint16, schemeSel uint8, bump uint8) {
		scheme := []Scheme{SGX, SC64, Morphable}[int(schemeSel)%3]
		s := NewStore(scheme, 1<<18) // 4096 blocks
		i := int(blockSel) % s.NumDataBlocks()
		cur := s.DataCounter(i)
		target := cur + 1 + uint64(bump)
		if s.CanEncodeData(i, target) {
			s.SetDataCounter(i, target)
			if s.DataCounter(i) != target {
				t.Fatal("set did not stick")
			}
			// Still-encodable group: a +1 write somewhere must never be
			// worse than releveling.
			if !s.CanEncodeData(i, target+1) && scheme == SGX {
				t.Fatal("SGX rejected +1")
			}
		} else {
			// Overflow path: relevel to one above the group max.
			start, end := s.GroupRange(s.L0Index(i))
			var max uint64
			for b := start; b < end; b++ {
				if v := s.DataCounter(b); v > max {
					max = v
				}
			}
			relTarget := max + 1
			if target > relTarget {
				relTarget = target
			}
			blocks := s.RelevelData(i, relTarget)
			if len(blocks) != end-start {
				t.Fatalf("relevel touched %d of %d", len(blocks), end-start)
			}
			for b := start; b < end; b++ {
				if s.DataCounter(b) != relTarget {
					t.Fatal("relevel not uniform")
				}
			}
			// A uniform group always accepts the next +1.
			if !s.CanEncodeData(i, relTarget+1) {
				t.Fatal("uniform group rejected +1")
			}
		}
		if s.ObservedMax() < s.DataCounter(i) {
			t.Fatal("observedMax lagging")
		}
	})
}
