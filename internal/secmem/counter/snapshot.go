package counter

import "rmcc/internal/snapshot"

// EncodeState serializes all counter ground truth: every data counter,
// every tree level, the observed-max register, and the cumulative overflow
// tallies. Geometry (block counts, level count) is derived from the scheme
// and footprint at construction, so only the values travel; DecodeState
// enforces the lengths against the store it restores into.
func (s *Store) EncodeState(e *snapshot.Enc) {
	e.U64s(s.vals)
	e.U64(uint64(s.Levels()))
	for l := 1; l <= s.Levels(); l++ {
		e.U64s(s.tree[l])
	}
	e.U64(s.observedMax)
	e.U64s(s.Overflows)
}

// DecodeState restores state written by EncodeState into a store built with
// the identical scheme and footprint. It writes counters directly — the
// monotonicity guard on SetDataCounter/SetTreeCounter compares against
// live state, which does not apply when replacing the whole image with a
// previously valid one.
func (s *Store) DecodeState(d *snapshot.Dec) error {
	d.U64sInto(s.vals)
	if levels := d.U64(); levels != uint64(s.Levels()) {
		if err := d.Err(); err != nil {
			return err
		}
		return d.Failf("counter tree has %d levels, want %d", levels, s.Levels())
	}
	for l := 1; l <= s.Levels(); l++ {
		d.U64sInto(s.tree[l])
	}
	s.observedMax = d.U64()
	d.U64sInto(s.Overflows)
	return d.Err()
}
