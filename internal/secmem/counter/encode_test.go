package counter

import (
	"testing"
	"testing/quick"

	"rmcc/internal/rng"
)

func TestEncodeDecodeSGX(t *testing.T) {
	vals := []uint64{0, 1, MaxCounter, 42, 7, 1 << 40, 3, 9}
	block, f, err := EncodeBlock(SGX, vals)
	if err != nil || f != FormatSGX {
		t.Fatalf("encode: %v %v", f, err)
	}
	got, _, err := DecodeBlock(SGX, block, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %d != %d", i, got[i], vals[i])
		}
	}
}

func TestEncodeSC64RoundTripAndOverflow(t *testing.T) {
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = 100000 + uint64(i)%127
	}
	block, f, err := EncodeBlock(SC64, vals)
	if err != nil || f != FormatSC64 {
		t.Fatalf("encode: %v %v", f, err)
	}
	got, _, err := DecodeBlock(SC64, block, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %d != %d", i, got[i], vals[i])
		}
	}
	vals[5] = vals[0] + 128 // beyond 7-bit minors
	if _, _, err := EncodeBlock(SC64, vals); err == nil {
		t.Fatal("overflow spread encoded")
	}
}

func TestEncodeMorphableFormatSelection(t *testing.T) {
	uniform := make([]uint64, 128)
	for i := range uniform {
		uniform[i] = 5000 + uint64(i)%8
	}
	_, f, err := EncodeBlock(Morphable, uniform)
	if err != nil || f != FormatMorphUniform {
		t.Fatalf("uniform: %v %v", f, err)
	}
	zcc := make([]uint64, 128)
	for i := range zcc {
		zcc[i] = 9000
	}
	for i := 0; i < 30; i++ {
		zcc[i*4] = 9000 + 20 + uint64(i)
	}
	_, f, err = EncodeBlock(Morphable, zcc)
	if err != nil || f != FormatMorphZCC {
		t.Fatalf("zcc: %v %v", f, err)
	}
	zcc[124] = 9001 // 31st exception with spread > uniform
	if _, _, err := EncodeBlock(Morphable, zcc); err == nil {
		t.Fatal("31 exceptions encoded")
	}
}

func TestEncodeMorphableRoundTrips(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 200; trial++ {
		vals := make([]uint64, 128)
		base := r.Uint64n(1 << 40)
		kind := r.Intn(2)
		for i := range vals {
			vals[i] = base
			if kind == 0 {
				vals[i] += r.Uint64n(8)
			}
		}
		if kind == 1 {
			for k := 0; k < int(r.Uint64n(31)); k++ {
				vals[r.Intn(128)] = base + 1 + r.Uint64n(127)
			}
		}
		block, _, err := EncodeBlock(Morphable, vals)
		if err != nil {
			// ZCC may legitimately exceed 30 exceptions; skip those.
			continue
		}
		got, _, err := DecodeBlock(Morphable, block, 128)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("trial %d value %d: %d != %d", trial, i, got[i], vals[i])
			}
		}
	}
}

// TestEncodeMatchesCanEncode: the wire-format capacity and the simulator's
// encodability predicate must agree — EncodeBlock succeeds exactly when
// CanEncodeData accepts the group state.
func TestEncodeMatchesCanEncode(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := NewStore(Morphable, 128*64)
		base := r.Uint64n(1 << 30)
		// Build an arbitrary group state via relevel + raises.
		s.RelevelData(0, base+1)
		for k := 0; k < int(r.Uint64n(40)); k++ {
			i := r.Intn(128)
			nv := s.DataCounter(i) + 1 + r.Uint64n(10)
			if s.CanEncodeData(i, nv) {
				s.SetDataCounter(i, nv)
			}
		}
		_, _, err := EncodeBlock(Morphable, s.GroupValues(0))
		return err == nil // CanEncodeData gated every change
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	var junk [BlockBytes]byte
	for i := range junk {
		junk[i] = 0xff
	}
	// Morphable format tag 3 with count 31 > 30 must be rejected.
	if _, _, err := DecodeBlock(Morphable, junk, 128); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestEncodeSizeLimits(t *testing.T) {
	if _, _, err := EncodeBlock(SGX, make([]uint64, 9)); err == nil {
		t.Fatal("9 counters in an SGX block")
	}
	if _, _, err := EncodeBlock(SC64, make([]uint64, 65)); err == nil {
		t.Fatal("65 counters in an SC-64 block")
	}
	if _, _, err := EncodeBlock(Morphable, make([]uint64, 129)); err == nil {
		t.Fatal("129 counters in a Morphable block")
	}
}

func BenchmarkDecodeMorphableZCC(b *testing.B) {
	vals := make([]uint64, 128)
	for i := range vals {
		vals[i] = 5000
	}
	for i := 0; i < 25; i++ {
		vals[i*5] = 5000 + uint64(i) + 1
	}
	block, _, err := EncodeBlock(Morphable, vals)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeBlock(Morphable, block, 128)
	}
}
