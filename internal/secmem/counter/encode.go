package counter

import "fmt"

// This file implements the actual 64-byte wire formats of the counter
// blocks, bit for bit. The simulator's hot path works on decoded values
// (encodability checks in counter.go mirror these capacities exactly);
// the packing here substantiates those capacity constants, models what a
// hardware decoder must parse — the paper charges 3 ns for Morphable's
// variable-format decode — and gives tests a round-trip target.
//
// Formats:
//
//	SGX        8 × 56-bit counters                                  (448 b)
//	SC-64      64-bit major + 64 × 7-bit minors                     (512 b)
//	Morphable  2-bit format tag, then either
//	           uniform: 64-bit major + 128 × 3-bit minors           (450 b)
//	           ZCC:     64-bit major + 5-bit count +
//	                    up to 30 × (7-bit index, 7-bit minor)       (491 b)
//
// Encoded values are major+minor (minor 0 encodes the shared base), the
// split-counter construction of [5][6].

// Format identifies a counter-block wire format.
type Format uint8

// Formats.
const (
	FormatSGX Format = iota
	FormatSC64
	FormatMorphUniform
	FormatMorphZCC
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatSGX:
		return "sgx"
	case FormatSC64:
		return "sc64"
	case FormatMorphUniform:
		return "morph-uniform"
	case FormatMorphZCC:
		return "morph-zcc"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// bitWriter packs little-endian bit fields into a 64-byte block.
type bitWriter struct {
	block [BlockBytes]byte
	pos   uint // bit position
}

func (w *bitWriter) put(v uint64, bits uint) {
	for i := uint(0); i < bits; i++ {
		if v&(1<<i) != 0 {
			w.block[(w.pos+i)/8] |= 1 << ((w.pos + i) % 8)
		}
	}
	w.pos += bits
}

type bitReader struct {
	block *[BlockBytes]byte
	pos   uint
}

func (r *bitReader) get(bits uint) uint64 {
	var v uint64
	for i := uint(0); i < bits; i++ {
		if r.block[(r.pos+i)/8]&(1<<((r.pos+i)%8)) != 0 {
			v |= 1 << i
		}
	}
	r.pos += bits
	return v
}

// EncodeBlock packs a group's counter values into a 64-byte counter block
// using the scheme's best-fitting format. It fails when no format can
// represent the values — exactly the condition the simulator treats as an
// overflow.
func EncodeBlock(scheme Scheme, vals []uint64) ([BlockBytes]byte, Format, error) {
	var w bitWriter
	switch scheme {
	case SGX:
		if len(vals) > 8 {
			return w.block, 0, fmt.Errorf("counter: SGX block holds 8 counters, got %d", len(vals))
		}
		for _, v := range vals {
			if v > MaxCounter {
				return w.block, 0, fmt.Errorf("counter: value %d exceeds 56 bits", v)
			}
			w.put(v, 56)
		}
		return w.block, FormatSGX, nil

	case SC64:
		if len(vals) > 64 {
			return w.block, 0, fmt.Errorf("counter: SC-64 block holds 64 counters, got %d", len(vals))
		}
		min := minOf(vals)
		w.put(min, 64)
		for _, v := range vals {
			d := v - min
			if d > sc64MinorRange {
				return w.block, 0, fmt.Errorf("counter: spread %d exceeds 7-bit minors", d)
			}
			w.put(d, 7)
		}
		return w.block, FormatSC64, nil

	case Morphable:
		if len(vals) > 128 {
			return w.block, 0, fmt.Errorf("counter: Morphable block holds 128 counters, got %d", len(vals))
		}
		min := minOf(vals)
		max := min
		nonBase := 0
		for _, v := range vals {
			if v > max {
				max = v
			}
			if v > min {
				nonBase++
			}
		}
		switch {
		case max-min <= morphUniformRange:
			w.put(uint64(FormatMorphUniform), 2)
			w.put(min, 64)
			for _, v := range vals {
				w.put(v-min, 3)
			}
			return w.block, FormatMorphUniform, nil
		case max-min <= morphZCCRange && nonBase <= morphZCCMaxNonBase:
			w.put(uint64(FormatMorphZCC), 2)
			w.put(min, 64)
			w.put(uint64(nonBase), 5)
			for i, v := range vals {
				if v > min {
					w.put(uint64(i), 7)
					w.put(v-min, 7)
				}
			}
			return w.block, FormatMorphZCC, nil
		default:
			return w.block, 0, fmt.Errorf("counter: spread %d / %d exceptions fit no Morphable format",
				max-min, nonBase)
		}
	default:
		return w.block, 0, fmt.Errorf("counter: unknown scheme %v", scheme)
	}
}

// DecodeBlock unpacks a counter block produced by EncodeBlock. n is the
// number of counters the block holds (known from the scheme in hardware).
func DecodeBlock(scheme Scheme, block [BlockBytes]byte, n int) ([]uint64, Format, error) {
	r := bitReader{block: &block}
	vals := make([]uint64, n)
	switch scheme {
	case SGX:
		if n > 8 {
			return nil, 0, fmt.Errorf("counter: SGX n=%d", n)
		}
		for i := range vals {
			vals[i] = r.get(56)
		}
		return vals, FormatSGX, nil
	case SC64:
		if n > 64 {
			return nil, 0, fmt.Errorf("counter: SC-64 n=%d", n)
		}
		major := r.get(64)
		for i := range vals {
			vals[i] = major + r.get(7)
		}
		return vals, FormatSC64, nil
	case Morphable:
		if n > 128 {
			return nil, 0, fmt.Errorf("counter: Morphable n=%d", n)
		}
		f := Format(r.get(2))
		major := r.get(64)
		switch f {
		case FormatMorphUniform:
			for i := range vals {
				vals[i] = major + r.get(3)
			}
		case FormatMorphZCC:
			count := int(r.get(5))
			if count > morphZCCMaxNonBase {
				return nil, 0, fmt.Errorf("counter: ZCC count %d out of range", count)
			}
			for i := range vals {
				vals[i] = major
			}
			for k := 0; k < count; k++ {
				idx := int(r.get(7))
				minor := r.get(7)
				if idx >= n {
					return nil, 0, fmt.Errorf("counter: ZCC index %d out of range", idx)
				}
				vals[idx] = major + minor
			}
		default:
			return nil, 0, fmt.Errorf("counter: bad Morphable format tag %d", f)
		}
		return vals, f, nil
	default:
		return nil, 0, fmt.Errorf("counter: unknown scheme %v", scheme)
	}
}

func minOf(vals []uint64) uint64 {
	if len(vals) == 0 {
		return 0
	}
	min := vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
	}
	return min
}
