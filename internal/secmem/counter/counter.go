// Package counter models the write-counter organizations that secure-memory
// systems use, together with the integrity-tree counter state:
//
//   - SGX: eight full 56-bit counters per 64 B counter block (coverage 8).
//   - SC-64 [Yan et al., ISCA'06]: one shared 64-bit major counter plus 64
//     seven-bit minor counters per block (coverage 64). A write that cannot
//     be encoded overflows: every counter in the block is raised to the
//     maximum encoded value and all covered data blocks are re-encrypted.
//   - Morphable [Saileshwar et al., MICRO'18]: coverage 128. Our morphable
//     encoding keeps the scheme's essential behaviour with two formats the
//     block "morphs" between — a uniform format (128 × 3-bit minors) and a
//     zero-counter-compressed format (up to 30 ⟨index, 7-bit minor⟩
//     exceptions above the shared base). A write encodable under either
//     format is cheap; otherwise the block overflows like SC-64. (The
//     original paper uses a richer format menu; the coverage, decode
//     latency, and overflow dynamics — which are what the evaluation
//     exercises — are preserved. See DESIGN.md §3.)
//
// The package is the functional ground truth: every data block's true
// counter value, every tree node's counter values, encodability checks, and
// relevel (overflow) execution. Policy — what value a counter moves to on a
// write — belongs to the engine and the RMCC core, not here.
package counter

import (
	"fmt"

	"rmcc/internal/rng"
)

// Scheme selects a counter organization.
type Scheme int

// Counter organizations.
const (
	SGX Scheme = iota
	SC64
	Morphable
)

// String names the scheme as the paper's figures label it.
func (s Scheme) String() string {
	switch s {
	case SGX:
		return "SGX"
	case SC64:
		return "SC-64"
	case Morphable:
		return "Morphable"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Coverage returns the number of 64 B data blocks one counter block covers.
func (s Scheme) Coverage() int {
	switch s {
	case SGX:
		return 8
	case SC64:
		return 64
	case Morphable:
		return 128
	default:
		return 0
	}
}

// TreeArity returns the number of child blocks covered by one integrity
// tree node at levels 1 and above.
func (s Scheme) TreeArity() int {
	switch s {
	case SGX:
		return 8
	case SC64:
		return 64
	case Morphable:
		return 128
	default:
		return 0
	}
}

// Encoding limits for the split-counter formats.
const (
	sc64MinorRange     = 127 // 7-bit minors
	morphUniformRange  = 7   // 128 x 3-bit minors
	morphZCCRange      = 127 // 7-bit exception minors
	morphZCCMaxNonBase = 30  // exception slots in the ZCC format
	treeMinorRange     = 127 // 7-bit minors at tree levels
	// MaxCounter is the architectural 56-bit counter ceiling; reaching it
	// forces a whole-memory re-key (the paper's "reboot").
	MaxCounter = (uint64(1) << 56) - 1
)

// BlockBytes is the size of a memory block and of a counter block.
const BlockBytes = 64

// Store holds all counter state for one protected physical memory.
//
// Address map (block-granular, byte addresses):
//
//	[0, dataBytes)            data blocks
//	[ctrBase, ...)            L0 counter blocks, one per Coverage() data blocks
//	[treeBase[l], ...)        tree nodes for level l >= 1
//
// tree[1][j] is the counter protecting L0 counter block j; tree[l][k]
// protects level-(l-1) node k. The root level's counters live on-chip and
// need no protection.
type Store struct {
	scheme      Scheme
	nBlocks     int // data blocks
	coverage    int
	arity       int
	vals        []uint64   // per data block true counter value
	tree        [][]uint64 // tree[l] for l >= 1; index = child block/node id
	ctrBase     uint64
	treeBase    []uint64 // base address per tree level (index 1..)
	observedMax uint64   // largest data counter ever set (§IV-D2 register)

	// Overflows counts relevel events per level (0 = data/L0 groups).
	Overflows []uint64
}

// NewStore builds counter state for dataBytes of protected memory. The tree
// is built until a level has at most arity entries (that level's counters
// are the on-chip root). It panics if dataBytes is not block-aligned.
func NewStore(scheme Scheme, dataBytes uint64) *Store {
	if dataBytes == 0 || dataBytes%BlockBytes != 0 {
		panic(fmt.Sprintf("counter: dataBytes %d not a positive multiple of %d", dataBytes, BlockBytes))
	}
	n := int(dataBytes / BlockBytes)
	s := &Store{
		scheme:   scheme,
		nBlocks:  n,
		coverage: scheme.Coverage(),
		arity:    scheme.TreeArity(),
		vals:     make([]uint64, n),
	}
	s.ctrBase = dataBytes
	// Build tree level sizes: level 1 has one counter per L0 counter
	// block; level l has one counter per level-(l-1) node.
	numL0 := (n + s.coverage - 1) / s.coverage
	s.tree = append(s.tree, nil) // level 0 placeholder
	s.treeBase = append(s.treeBase, 0)
	childCount := numL0
	addr := s.ctrBase + uint64(numL0)*BlockBytes
	for childCount > 1 {
		s.tree = append(s.tree, make([]uint64, childCount))
		s.treeBase = append(s.treeBase, addr)
		nodes := (childCount + s.arity - 1) / s.arity
		addr += uint64(nodes) * BlockBytes
		if nodes <= 1 {
			break
		}
		childCount = nodes
	}
	s.Overflows = make([]uint64, len(s.tree)+1)
	return s
}

// Scheme returns the counter organization.
func (s *Store) Scheme() Scheme { return s.scheme }

// NumDataBlocks returns the number of protected data blocks.
func (s *Store) NumDataBlocks() int { return s.nBlocks }

// NumL0Blocks returns the number of L0 counter blocks.
func (s *Store) NumL0Blocks() int {
	return (s.nBlocks + s.coverage - 1) / s.coverage
}

// Levels returns the number of tree levels above L0 (root excluded from
// fetch traffic: its counters are on-chip).
func (s *Store) Levels() int { return len(s.tree) - 1 }

// Coverage returns data blocks per L0 counter block.
func (s *Store) Coverage() int { return s.coverage }

// ObservedMax returns the Observed-System-Max register (§IV-D2): the
// largest counter value any data block has ever held.
func (s *Store) ObservedMax() uint64 { return s.observedMax }

// --- Address mapping ---

// DataBlockIndex converts a data byte address to its block index.
func (s *Store) DataBlockIndex(addr uint64) int { return int(addr / BlockBytes) }

// DataBlockAddr returns the byte address of data block i.
func (s *Store) DataBlockAddr(i int) uint64 { return uint64(i) * BlockBytes }

// L0Index returns the L0 counter block index covering data block i.
func (s *Store) L0Index(i int) int { return i / s.coverage }

// L0BlockAddr returns the byte address of L0 counter block j.
func (s *Store) L0BlockAddr(j int) uint64 { return s.ctrBase + uint64(j)*BlockBytes }

// TreeNodeIndex returns the level-l node holding the counter of child c,
// where c is an L0 block index for l==1 or a level-(l-1) node index
// otherwise.
func (s *Store) TreeNodeIndex(c int) int { return c / s.arity }

// TreeNodeAddr returns the byte address of node k at tree level l (l >= 1).
// The level above the last stored level is the on-chip root; callers must
// not ask for its address.
func (s *Store) TreeNodeAddr(l, k int) uint64 {
	return s.treeBase[l] + uint64(k)*BlockBytes
}

// ClassifyAddr resolves a metadata byte address back to its block: level 0
// with the L0 counter-block index, or level >= 1 with the tree-node index.
// ok is false for data addresses and addresses beyond the metadata region.
func (s *Store) ClassifyAddr(addr uint64) (level, idx int, ok bool) {
	if addr < s.ctrBase {
		return 0, 0, false
	}
	numL0 := s.NumL0Blocks()
	if addr < s.ctrBase+uint64(numL0)*BlockBytes {
		return 0, int((addr - s.ctrBase) / BlockBytes), true
	}
	for l := 1; l <= s.Levels(); l++ {
		nodes := (len(s.tree[l]) + s.arity - 1) / s.arity
		base := s.treeBase[l]
		if addr >= base && addr < base+uint64(nodes)*BlockBytes {
			return l, int((addr - base) / BlockBytes), true
		}
	}
	return 0, 0, false
}

// TreeLevelLen returns the number of child counters stored at level l.
func (s *Store) TreeLevelLen(l int) int { return len(s.tree[l]) }

// --- Data (L0) counters ---

// DataCounter returns the current counter value of data block i.
func (s *Store) DataCounter(i int) uint64 { return s.vals[i] }

// GroupRange returns the [start, end) data block indices covered by L0
// counter block j.
func (s *Store) GroupRange(j int) (start, end int) {
	start = j * s.coverage
	end = start + s.coverage
	if end > s.nBlocks {
		end = s.nBlocks
	}
	return start, end
}

// GroupValues returns a snapshot of the counter values in L0 group j.
func (s *Store) GroupValues(j int) []uint64 {
	start, end := s.GroupRange(j)
	out := make([]uint64, end-start)
	copy(out, s.vals[start:end])
	return out
}

// groupMinMax scans group j, optionally substituting newVal for block i.
func (s *Store) groupMinMax(j, i int, newVal uint64, substitute bool) (min, max uint64, nonBase int) {
	start, end := s.GroupRange(j)
	first := true
	for b := start; b < end; b++ {
		v := s.vals[b]
		if substitute && b == i {
			v = newVal
		}
		if first {
			min, max = v, v
			first = false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// Count values above the base (needed for the ZCC format check).
	for b := start; b < end; b++ {
		v := s.vals[b]
		if substitute && b == i {
			v = newVal
		}
		if v > min {
			nonBase++
		}
	}
	return min, max, nonBase
}

// CanEncodeData reports whether setting data block i to newVal keeps its L0
// group encodable without an overflow.
func (s *Store) CanEncodeData(i int, newVal uint64) bool {
	if newVal > MaxCounter {
		return false
	}
	switch s.scheme {
	case SGX:
		return true
	case SC64:
		min, max, _ := s.groupMinMax(s.L0Index(i), i, newVal, true)
		return max-min <= sc64MinorRange
	case Morphable:
		min, max, nonBase := s.groupMinMax(s.L0Index(i), i, newVal, true)
		if max-min <= morphUniformRange {
			return true // uniform 128 x 3b format
		}
		return max-min <= morphZCCRange && nonBase <= morphZCCMaxNonBase
	default:
		return false
	}
}

// SetDataCounter sets data block i's counter to newVal. The caller must
// ensure the value increases and (unless immediately releveling) stays
// encodable. Panics on a non-increasing value: reusing or rewinding a
// counter is a security violation the simulator must never commit.
func (s *Store) SetDataCounter(i int, newVal uint64) {
	if newVal <= s.vals[i] {
		panic(fmt.Sprintf("counter: non-increasing update for block %d: %d -> %d", i, s.vals[i], newVal))
	}
	s.vals[i] = newVal
	if newVal > s.observedMax {
		s.observedMax = newVal
	}
}

// RelevelData executes an L0 overflow for the group of data block i: every
// block in the group takes the value target, which must exceed the group's
// current maximum. It returns the data block indices that must be
// re-encrypted and written back (all blocks in the group).
func (s *Store) RelevelData(i int, target uint64) []int {
	j := s.L0Index(i)
	start, end := s.GroupRange(j)
	for b := start; b < end; b++ {
		if target <= s.vals[b] {
			panic(fmt.Sprintf("counter: relevel target %d not above block %d value %d", target, b, s.vals[b]))
		}
	}
	blocks := make([]int, 0, end-start)
	for b := start; b < end; b++ {
		s.vals[b] = target
		blocks = append(blocks, b)
	}
	if target > s.observedMax {
		s.observedMax = target
	}
	s.Overflows[0]++
	return blocks
}

// --- Tree counters ---

// TreeCounter returns the counter at level l protecting child c.
func (s *Store) TreeCounter(l, c int) uint64 { return s.tree[l][c] }

// treeGroupRange returns the [start, end) child indices stored in the same
// level-l node as child c.
func (s *Store) treeGroupRange(l, c int) (start, end int) {
	start = (c / s.arity) * s.arity
	end = start + s.arity
	if end > len(s.tree[l]) {
		end = len(s.tree[l])
	}
	return start, end
}

// CanEncodeTree reports whether bumping level-l child c to newVal keeps its
// node encodable (7-bit split minors at tree levels; SGX trees never
// overflow below the 56-bit ceiling).
func (s *Store) CanEncodeTree(l, c int, newVal uint64) bool {
	if newVal > MaxCounter {
		return false
	}
	if s.scheme == SGX {
		return true
	}
	start, end := s.treeGroupRange(l, c)
	var min, max uint64
	first := true
	for x := start; x < end; x++ {
		v := s.tree[l][x]
		if x == c {
			v = newVal
		}
		if first {
			min, max = v, v
			first = false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max-min <= treeMinorRange
}

// SetTreeCounter sets level-l child c's counter; it panics on decrease.
func (s *Store) SetTreeCounter(l, c int, newVal uint64) {
	if newVal <= s.tree[l][c] {
		panic(fmt.Sprintf("counter: non-increasing tree update l%d c%d: %d -> %d",
			l, c, s.tree[l][c], newVal))
	}
	s.tree[l][c] = newVal
}

// RelevelTree executes an overflow of the level-l node containing child c:
// all children take target. It returns the child indices whose blocks must
// be re-MACed and written back.
func (s *Store) RelevelTree(l, c int, target uint64) []int {
	start, end := s.treeGroupRange(l, c)
	for x := start; x < end; x++ {
		if target <= s.tree[l][x] {
			panic(fmt.Sprintf("counter: tree relevel target %d not above child %d value %d",
				target, x, s.tree[l][x]))
		}
	}
	children := make([]int, 0, end-start)
	for x := start; x < end; x++ {
		s.tree[l][x] = target
		children = append(children, x)
	}
	if l < len(s.Overflows) {
		s.Overflows[l]++
	}
	return children
}

// --- Fault injection and re-key ---

// CorruptDataCounter overwrites data block i's counter with an arbitrary
// value, bypassing every invariant (monotonicity, encodability, the
// observed-max register). It models a physical attack or DRAM fault on the
// counter storage itself; the engine's MAC check and the checker's
// regression scan are expected to flag the damage. Never call it from
// policy code.
func (s *Store) CorruptDataCounter(i int, v uint64) { s.vals[i] = v }

// CorruptTreeCounter overwrites the level-l counter protecting child c,
// bypassing every invariant — the tree analog of CorruptDataCounter.
func (s *Store) CorruptTreeCounter(l, c int, v uint64) { s.tree[l][c] = v }

// ResetCounters zeroes every data and tree counter and the observed-max
// register: the whole-memory re-key ("reboot"). Under a fresh key the
// (key, counter) pad space restarts, so zero counters are safe again. The
// cumulative Overflows tallies are preserved.
func (s *Store) ResetCounters() {
	for i := range s.vals {
		s.vals[i] = 0
	}
	for l := 1; l < len(s.tree); l++ {
		for x := range s.tree[l] {
			s.tree[l][x] = 0
		}
	}
	s.observedMax = 0
}

// --- Initialization ---

// RandomizeOptions controls counter randomization (the paper's careful
// non-zero initialization, §V "Lifetime Characterization").
type RandomizeOptions struct {
	// BaseLo/BaseHi bound each group's shared base value.
	BaseLo, BaseHi uint64
	// SpreadFrac is the fraction of blocks per group nudged above the
	// base (kept within the scheme's encodable range).
	SpreadFrac float64
}

// DefaultRandomize mirrors the paper's initializer: an average of ~100 000
// writebacks per block under the baseline policy leaves each group at a
// large, group-specific base — every split-counter group that reaches such
// values has been releveled many times, which *synchronizes* its values —
// with only a small spread of post-relevel writes above the base.
func DefaultRandomize() RandomizeOptions {
	return RandomizeOptions{BaseLo: 50_000, BaseHi: 200_000, SpreadFrac: 0.06}
}

// WarmSnap rebases a fraction of L0 groups onto the given base values,
// preserving each group's internal offsets. It models the steady state of
// a long-running RMCC system: the memoization-aware update has releveled
// most groups onto memoized counter values (see §IV-B; convergence itself
// is exercised by the organic-convergence experiment). Must be called
// after Randomize and before any accesses.
func (s *Store) WarmSnap(r *rng.Source, bases []uint64, frac float64) {
	if len(bases) == 0 {
		return
	}
	for j := 0; j < s.NumL0Blocks(); j++ {
		if r.Float64() >= frac {
			continue
		}
		start, end := s.GroupRange(j)
		min := s.vals[start]
		for b := start; b < end; b++ {
			if s.vals[b] < min {
				min = s.vals[b]
			}
		}
		base := bases[r.Intn(len(bases))]
		for b := start; b < end; b++ {
			v := base + (s.vals[b] - min)
			s.vals[b] = v
			if v > s.observedMax {
				s.observedMax = v
			}
		}
	}
}

// WarmSnapTree rebases a fraction of level-l tree node groups onto the
// given bases, the tree analog of WarmSnap.
func (s *Store) WarmSnapTree(r *rng.Source, l int, bases []uint64, frac float64) {
	if len(bases) == 0 || l < 1 || l > s.Levels() {
		return
	}
	for start := 0; start < len(s.tree[l]); start += s.arity {
		if r.Float64() >= frac {
			continue
		}
		end := start + s.arity
		if end > len(s.tree[l]) {
			end = len(s.tree[l])
		}
		min := s.tree[l][start]
		for x := start; x < end; x++ {
			if s.tree[l][x] < min {
				min = s.tree[l][x]
			}
		}
		base := bases[r.Intn(len(bases))]
		for x := start; x < end; x++ {
			s.tree[l][x] = base + (s.tree[l][x] - min)
		}
	}
}

// Randomize initializes all data and tree counters per opts. The resulting
// state is always encodable (no immediate overflows). The observed-max
// register is updated to the largest value produced.
func (s *Store) Randomize(r *rng.Source, opts RandomizeOptions) {
	span := opts.BaseHi - opts.BaseLo
	if span == 0 {
		span = 1
	}
	// Leave generous headroom so the randomized state is a realistic
	// recently-releveled group, not one teetering on its encoding limit:
	// otherwise the first few writes of every run trigger an unphysical
	// storm of "healing" overflows.
	spreadRange := uint64(2)
	if s.scheme == SC64 {
		spreadRange = sc64MinorRange / 2
	}
	if s.scheme == SGX {
		spreadRange = 1024
	}
	// Bound the number of above-base values per Morphable group so the
	// randomized state always stays ZCC-encodable even after a +1 write.
	maxNudges := int(^uint(0) >> 1)
	if s.scheme == Morphable {
		maxNudges = 8
	}
	for j := 0; j < s.NumL0Blocks(); j++ {
		base := opts.BaseLo + r.Uint64n(span)
		start, end := s.GroupRange(j)
		nudges := 0
		for b := start; b < end; b++ {
			v := base
			if nudges < maxNudges && r.Float64() < opts.SpreadFrac {
				v += r.Uint64n(spreadRange + 1)
				if v != base {
					nudges++
				}
			}
			s.vals[b] = v
			if v > s.observedMax {
				s.observedMax = v
			}
		}
	}
	for l := 1; l <= s.Levels(); l++ {
		for start := 0; start < len(s.tree[l]); start += s.arity {
			end := start + s.arity
			if end > len(s.tree[l]) {
				end = len(s.tree[l])
			}
			base := opts.BaseLo / 8
			if span > 0 {
				base += r.Uint64n(span/8 + 1)
			}
			for x := start; x < end; x++ {
				v := base
				if r.Float64() < opts.SpreadFrac {
					v += r.Uint64n(treeMinorRange / 4)
				}
				s.tree[l][x] = v
			}
		}
	}
}
