package counter

import (
	"testing"
	"testing/quick"

	"rmcc/internal/rng"
)

func TestCoverageAndArity(t *testing.T) {
	cases := []struct {
		s        Scheme
		coverage int
		arity    int
	}{
		{SGX, 8, 8},
		{SC64, 64, 64},
		{Morphable, 128, 128},
	}
	for _, c := range cases {
		if got := c.s.Coverage(); got != c.coverage {
			t.Errorf("%v coverage = %d, want %d", c.s, got, c.coverage)
		}
		if got := c.s.TreeArity(); got != c.arity {
			t.Errorf("%v arity = %d, want %d", c.s, got, c.arity)
		}
	}
}

func TestStoreGeometry(t *testing.T) {
	// 1 MiB of data = 16384 blocks; Morphable: 128 L0 blocks; L1: 1 node.
	s := NewStore(Morphable, 1<<20)
	if s.NumDataBlocks() != 16384 {
		t.Fatalf("blocks = %d", s.NumDataBlocks())
	}
	if s.NumL0Blocks() != 128 {
		t.Fatalf("L0 blocks = %d", s.NumL0Blocks())
	}
	if s.Levels() != 1 {
		t.Fatalf("levels = %d, want 1 (root on-chip)", s.Levels())
	}
}

func TestStoreGeometryDeepTree(t *testing.T) {
	// 256 MiB under Morphable: 4M blocks, 32768 L0, 256 L1, 2 L2 -> root.
	s := NewStore(Morphable, 256<<20)
	if s.NumL0Blocks() != 32768 {
		t.Fatalf("L0 = %d", s.NumL0Blocks())
	}
	if s.Levels() != 3 {
		t.Fatalf("levels = %d, want 3", s.Levels())
	}
}

func TestAddressMapDisjoint(t *testing.T) {
	s := NewStore(SC64, 1<<20)
	dataEnd := s.DataBlockAddr(s.NumDataBlocks()-1) + BlockBytes
	if s.L0BlockAddr(0) < dataEnd {
		t.Fatal("L0 region overlaps data")
	}
	l0End := s.L0BlockAddr(s.NumL0Blocks()-1) + BlockBytes
	if s.Levels() >= 1 && s.TreeNodeAddr(1, 0) < l0End {
		t.Fatal("tree region overlaps L0")
	}
}

func TestL0IndexRoundTrip(t *testing.T) {
	s := NewStore(Morphable, 1<<20)
	f := func(raw uint32) bool {
		i := int(raw) % s.NumDataBlocks()
		j := s.L0Index(i)
		start, end := s.GroupRange(j)
		return start <= i && i < end && (end-start) <= s.Coverage()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSGXAlwaysEncodable(t *testing.T) {
	s := NewStore(SGX, 1<<16)
	if !s.CanEncodeData(0, 1<<40) {
		t.Fatal("SGX rejected a large but sub-56-bit value")
	}
	if s.CanEncodeData(0, MaxCounter+1) {
		t.Fatal("value above 56-bit ceiling accepted")
	}
}

func TestSC64EncodableRange(t *testing.T) {
	s := NewStore(SC64, 1<<20)
	// Group 0 all at zero: value 127 encodable, 128 not.
	if !s.CanEncodeData(0, 127) {
		t.Fatal("127 should be encodable with 7-bit minors")
	}
	if s.CanEncodeData(0, 128) {
		t.Fatal("128 should overflow 7-bit minors")
	}
}

func TestMorphableFormats(t *testing.T) {
	s := NewStore(Morphable, 1<<20)
	// Uniform format: spread <= 7.
	if !s.CanEncodeData(0, 7) {
		t.Fatal("spread 7 should fit the uniform format")
	}
	// Beyond uniform: ZCC carries one exception up to 127.
	if !s.CanEncodeData(0, 127) {
		t.Fatal("single 127 exception should fit ZCC")
	}
	if s.CanEncodeData(0, 128) {
		t.Fatal("128 exceeds both formats")
	}
}

func TestMorphableZCCExceptionLimit(t *testing.T) {
	s := NewStore(Morphable, 1<<20)
	for b := 0; b < 30; b++ {
		s.SetDataCounter(b, 100)
	}
	// 30 exceptions at 100 (base 0): encodable.
	if !s.CanEncodeData(29, 101) {
		t.Fatal("30 exceptions should be encodable under ZCC")
	}
	// Making a 31st block non-base with spread > uniform must overflow.
	if s.CanEncodeData(30, 100) {
		t.Fatal("31st ZCC exception unexpectedly encodable")
	}
	// But if all values collapse into a spread <= 7, uniform rescues it.
	s2 := NewStore(Morphable, 1<<20)
	for b := 0; b < 127; b++ {
		s2.SetDataCounter(b, 5)
	}
	if !s2.CanEncodeData(127, 6) {
		t.Fatal("uniform format should encode spread 6 regardless of exception count")
	}
}

func TestSetDataCounterMonotone(t *testing.T) {
	s := NewStore(SC64, 1<<16)
	s.SetDataCounter(3, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing update did not panic")
		}
	}()
	s.SetDataCounter(3, 10)
}

func TestRelevelData(t *testing.T) {
	s := NewStore(SC64, 1<<20)
	s.SetDataCounter(0, 100)
	s.SetDataCounter(1, 50)
	blocks := s.RelevelData(0, 128)
	if len(blocks) != 64 {
		t.Fatalf("relevel touched %d blocks, want 64", len(blocks))
	}
	start, end := s.GroupRange(0)
	for b := start; b < end; b++ {
		if s.DataCounter(b) != 128 {
			t.Fatalf("block %d = %d after relevel", b, s.DataCounter(b))
		}
	}
	if s.Overflows[0] != 1 {
		t.Fatalf("overflow count = %d", s.Overflows[0])
	}
	// Neighboring group untouched.
	if s.DataCounter(end) != 0 {
		t.Fatal("relevel leaked into the next group")
	}
}

func TestRelevelRejectsLowTarget(t *testing.T) {
	s := NewStore(SC64, 1<<20)
	s.SetDataCounter(0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("relevel below max did not panic")
		}
	}()
	s.RelevelData(1, 100)
}

func TestObservedMaxTracksUpdates(t *testing.T) {
	s := NewStore(Morphable, 1<<20)
	s.SetDataCounter(0, 7)
	if s.ObservedMax() != 7 {
		t.Fatalf("observedMax = %d", s.ObservedMax())
	}
	s.RelevelData(200, 500)
	if s.ObservedMax() != 500 {
		t.Fatalf("observedMax after relevel = %d", s.ObservedMax())
	}
}

func TestTreeEncodeAndRelevel(t *testing.T) {
	s := NewStore(Morphable, 256<<20)
	if !s.CanEncodeTree(1, 0, 127) {
		t.Fatal("tree minor 127 should encode")
	}
	if s.CanEncodeTree(1, 0, 128) {
		t.Fatal("tree minor 128 should overflow")
	}
	s.SetTreeCounter(1, 0, 100)
	children := s.RelevelTree(1, 0, 200)
	if len(children) != 128 {
		t.Fatalf("tree relevel touched %d children, want 128", len(children))
	}
	if s.TreeCounter(1, 5) != 200 {
		t.Fatal("sibling counter not releveled")
	}
	if s.Overflows[1] != 1 {
		t.Fatalf("tree overflow count = %v", s.Overflows)
	}
}

func TestRandomizeEncodableEverywhere(t *testing.T) {
	for _, scheme := range []Scheme{SGX, SC64, Morphable} {
		s := NewStore(scheme, 4<<20)
		s.Randomize(rng.New(42), DefaultRandomize())
		// Every group must accept a +1 write to its max element (i.e. the
		// randomized state itself is encodable with headroom).
		for j := 0; j < s.NumL0Blocks(); j++ {
			start, end := s.GroupRange(j)
			maxIdx := start
			for b := start; b < end; b++ {
				if s.DataCounter(b) > s.DataCounter(maxIdx) {
					maxIdx = b
				}
			}
			if !s.CanEncodeData(maxIdx, s.DataCounter(maxIdx)+1) {
				t.Fatalf("%v: group %d not encodable after randomize", scheme, j)
			}
		}
		if s.ObservedMax() == 0 {
			t.Fatalf("%v: observedMax not set", scheme)
		}
	}
}

func TestRandomizeGroupsDiverge(t *testing.T) {
	s := NewStore(Morphable, 16<<20)
	s.Randomize(rng.New(7), DefaultRandomize())
	bases := make(map[uint64]bool)
	for j := 0; j < s.NumL0Blocks(); j++ {
		vals := s.GroupValues(j)
		min := vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
		}
		bases[min] = true
	}
	if len(bases) < s.NumL0Blocks()/4 {
		t.Fatalf("group bases not diverse: %d distinct for %d groups", len(bases), s.NumL0Blocks())
	}
}

func TestGroupValuesSnapshot(t *testing.T) {
	s := NewStore(SGX, 1<<16)
	v := s.GroupValues(0)
	v[0] = 999
	if s.DataCounter(0) == 999 {
		t.Fatal("GroupValues aliases internal state")
	}
}

func BenchmarkCanEncodeMorphable(b *testing.B) {
	s := NewStore(Morphable, 64<<20)
	s.Randomize(rng.New(1), DefaultRandomize())
	for i := 0; i < b.N; i++ {
		blk := (i * 7919) % s.NumDataBlocks()
		s.CanEncodeData(blk, s.DataCounter(blk)+1)
	}
}
