package checker

import (
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/workload"
)

// TestReportClasses table-drives one corruption per violation class and
// asserts the checker attributes it to exactly that class.
func TestReportClasses(t *testing.T) {
	cases := []struct {
		name    string
		class   Class
		corrupt func(t *testing.T, mc *engine.MC, ck *Checker)
	}{
		{
			name:  "counter regression",
			class: ClassCounterRegression,
			corrupt: func(t *testing.T, mc *engine.MC, ck *Checker) {
				mc.Write(0x2000)
				ck.Check() // baseline after the legitimate advance
				i := mc.Store().DataBlockIndex(0x2000)
				mc.CorruptDataCounter(i, 0) // roll back
			},
		},
		{
			name:  "counter ceiling",
			class: ClassCounterCeiling,
			corrupt: func(t *testing.T, mc *engine.MC, ck *Checker) {
				i := mc.Store().DataBlockIndex(0x2000)
				mc.CorruptDataCounter(i, counter.MaxCounter+1)
			},
		},
		{
			name:  "tree regression",
			class: ClassTreeRegression,
			corrupt: func(t *testing.T, mc *engine.MC, ck *Checker) {
				st := mc.Store()
				x := -1
				for c := 0; c < st.TreeLevelLen(1); c++ {
					if st.TreeCounter(1, c) > 0 {
						x = c
						break
					}
				}
				if x < 0 {
					t.Fatal("randomized init left every L1 counter zero")
				}
				mc.CorruptTreeCounter(1, x, st.TreeCounter(1, x)/2)
			},
		},
		{
			name:  "decrypt mismatch and mac failure",
			class: ClassMACFailure,
			corrupt: func(t *testing.T, mc *engine.MC, ck *Checker) {
				i := mc.Store().DataBlockIndex(0x3000)
				if err := mc.TamperCiphertext(i); err != nil {
					t.Fatalf("TamperCiphertext: %v", err)
				}
				mc.Read(0x3000)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mc := newMC(t, engine.RMCC)
			ck := New(mc, 1)
			tc.corrupt(t, mc, ck)
			ck.Check()
			rep := ck.Report()
			if rep.Counts[tc.class] == 0 {
				t.Fatalf("class %v not reported; report: %v (violations: %v)",
					tc.class, rep, ck.Violations())
			}
			// No cross-talk into unrelated structural classes.
			for c := Class(0); c < NumClasses; c++ {
				if c == tc.class || rep.Counts[c] == 0 {
					continue
				}
				// Ciphertext tamper legitimately reports both the MAC and
				// the plaintext failure.
				if tc.class == ClassMACFailure && c == ClassDecryptMismatch {
					continue
				}
				t.Errorf("unexpected class %v in report: %v", c, rep)
			}
			if ck.Ok() {
				t.Error("Ok() true with violations recorded")
			}
			if len(ck.Typed()) != int(rep.Total) {
				t.Errorf("Typed() length %d != report total %d", len(ck.Typed()), rep.Total)
			}
		})
	}
}

// TestDeltaReportingNoDuplicates: an engine failure is surfaced exactly
// once, not re-reported by every later Check.
func TestDeltaReportingNoDuplicates(t *testing.T) {
	mc := newMC(t, engine.Baseline)
	ck := New(mc, 1)
	i := mc.Store().DataBlockIndex(0x2000)
	if err := mc.TamperCiphertext(i); err != nil {
		t.Fatalf("TamperCiphertext: %v", err)
	}
	mc.Read(0x2000)
	ck.Check()
	first := ck.Report().Counts[ClassMACFailure]
	if first == 0 {
		t.Fatal("tamper not reported")
	}
	ck.Check()
	ck.Check()
	if got := ck.Report().Counts[ClassMACFailure]; got != first {
		t.Errorf("MAC failure re-reported: %d -> %d", first, got)
	}
}

// TestRekeyAwareness: a whole-memory re-key resets every counter; the
// checker must re-baseline on the key-epoch change instead of flagging
// thousands of rollbacks.
func TestRekeyAwareness(t *testing.T) {
	mc := newMC(t, engine.RMCC)
	ck := New(mc, 1)
	for n := 0; n < 200; n++ {
		mc.Write(uint64(n) * 64)
	}
	ck.Check()
	if !ck.Ok() {
		t.Fatalf("pre-rekey violations: %v", ck.Violations())
	}
	out := mc.Rekey()
	if !out.Rekeyed {
		t.Fatal("Rekey did not run")
	}
	ck.Check()
	if !ck.Ok() {
		t.Fatalf("checker flagged the legitimate re-key: %v", ck.Violations())
	}
	// And it keeps guarding afterwards: a rollback in the new epoch is
	// still caught.
	mc.Write(0x2000)
	ck.Check()
	mc.CorruptDataCounter(mc.Store().DataBlockIndex(0x2000), 0)
	ck.Check()
	if ck.Report().Counts[ClassCounterRegression] == 0 {
		t.Error("post-rekey rollback missed")
	}
}

// TestCleanCannealRunNoFalsePositives wraps a full canneal lifetime run
// with a periodically-invoked checker: zero violations of any class.
func TestCleanCannealRunNoFalsePositives(t *testing.T) {
	eng := engine.DefaultConfig(engine.RMCC, counter.Morphable, 0)
	eng.TrackContents = true
	cfg := sim.DefaultLifetimeConfig(eng)
	cfg.MaxAccesses = 200_000
	cfg.Seed = 3

	var ck *Checker
	cfg.OnController = func(mc *engine.MC) { ck = New(mc, 1) }
	cfg.OnAccess = func(n uint64, mc *engine.MC) {
		if n%5000 == 0 {
			ck.Check()
		}
	}
	sim.RunLifetime(workload.NewCanneal(workload.SizeTest), cfg)
	ck.Check()
	if rep := ck.Report(); rep.Total != 0 {
		t.Fatalf("clean canneal run flagged: %v\nfirst: %v", rep, ck.Violations()[0])
	}
}
