package checker

import (
	"testing"

	"rmcc/internal/rng"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
)

func newMC(t *testing.T, mode engine.Mode) *engine.MC {
	t.Helper()
	cfg := engine.DefaultConfig(mode, counter.Morphable, 16<<20)
	cfg.TrackContents = true
	cfg.L0Table.EpochAccesses = 10_000
	cfg.L1Table.EpochAccesses = 10_000
	return engine.New(cfg)
}

func TestCleanRunHasNoViolations(t *testing.T) {
	for _, mode := range []engine.Mode{engine.Baseline, engine.RMCC} {
		mc := newMC(t, mode)
		ck := New(mc, 7)
		r := rng.New(11)
		for n := 0; n < 20000; n++ {
			addr := r.Uint64n(16<<20) &^ 63
			if n%3 == 0 {
				mc.Write(addr)
			} else {
				mc.Read(addr)
			}
			mc.OnEpochAccess()
			if n%2000 == 0 {
				ck.Check()
			}
		}
		ck.Check()
		if !ck.Ok() {
			t.Fatalf("%v: violations: %v", mode, ck.Violations())
		}
	}
}

func TestDetectsTamper(t *testing.T) {
	mc := newMC(t, engine.Baseline)
	ck := New(mc, 1)
	mc.Read(0x2000)
	mc.TamperCiphertext(mc.Store().DataBlockIndex(0x2000))
	mc.Read(0x2000)
	ck.Check()
	if ck.Ok() {
		t.Fatal("checker missed the MAC failure")
	}
}

func TestDetectsReplay(t *testing.T) {
	mc := newMC(t, engine.RMCC)
	ck := New(mc, 1)
	mc.Read(0x4000)
	i := mc.Store().DataBlockIndex(0x4000)
	ct, mac := mc.SnapshotCiphertext(i)
	mc.Write(0x4000)
	mc.ReplayOldCiphertext(i, ct, mac)
	mc.Read(0x4000)
	ck.Check()
	if ck.Ok() {
		t.Fatal("checker missed the replay")
	}
}

func TestNonSecureIsVacuouslyOk(t *testing.T) {
	mc := engine.New(engine.DefaultConfig(engine.NonSecure, counter.Morphable, 1<<20))
	ck := New(mc, 1)
	mc.Read(0)
	mc.Write(64)
	ck.Check()
	if !ck.Ok() {
		t.Fatalf("non-secure violations: %v", ck.Violations())
	}
}

func TestStrideBoundsTracking(t *testing.T) {
	mc := newMC(t, engine.Baseline)
	ck := New(mc, 1000)
	if len(ck.last) == 0 {
		t.Fatal("no blocks sampled")
	}
	if len(ck.last) > mc.Store().NumDataBlocks()/1000+1 {
		t.Fatalf("sampled %d blocks with stride 1000", len(ck.last))
	}
}
