// Package checker enforces the security invariants of counter-mode secure
// memory over a running simulation:
//
//  1. pad-uniqueness — no (block, counter) pair is ever used twice to
//     encrypt; equivalently, every block's counter strictly increases
//     across writes and relevels;
//  2. bounded growth — counters never exceed the architectural 56-bit
//     ceiling (which would force a re-key/reboot);
//  3. freshness discipline — a block read back always decrypts under the
//     counter it was last sealed with (delegated to the engine's content
//     store, whose failures the checker surfaces).
//
// The checker observes the counter store between accesses; it needs no
// hooks inside the engine, so it can wrap any mode/scheme combination. Use
// it in integration tests and long-running validation harnesses.
//
// The checker is re-key aware: when the engine's key epoch advances (a
// counter-exhaustion reboot or RekeyRecover escalation), all counters
// legitimately reset to zero, so the regression scan re-baselines instead
// of reporting thousands of false rollbacks.
package checker

import (
	"fmt"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
)

// Class identifies which invariant a violation broke.
type Class int

// Violation classes.
const (
	// ClassCounterRegression: a data-block counter moved backwards without
	// a key-epoch change — pad reuse / rollback.
	ClassCounterRegression Class = iota
	// ClassCounterCeiling: a counter exceeds the architectural 56-bit
	// ceiling without the engine re-keying.
	ClassCounterCeiling
	// ClassTreeRegression: an integrity-tree (L1) counter moved backwards
	// without a key-epoch change.
	ClassTreeRegression
	// ClassDecryptMismatch: the engine reported plaintext round-trip
	// failures since the last Check.
	ClassDecryptMismatch
	// ClassMACFailure: the engine reported MAC check failures since the
	// last Check.
	ClassMACFailure

	// NumClasses sizes per-class report arrays.
	NumClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassCounterRegression:
		return "counter-regression"
	case ClassCounterCeiling:
		return "counter-ceiling"
	case ClassTreeRegression:
		return "tree-counter-regression"
	case ClassDecryptMismatch:
		return "decrypt-mismatch"
	case ClassMACFailure:
		return "mac-failure"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Violation is one recorded invariant failure.
type Violation struct {
	Class Class
	Msg   string
}

// Report summarizes accumulated violations by class.
type Report struct {
	Counts [NumClasses]uint64
	Total  uint64
}

// String renders the non-zero classes.
func (r Report) String() string {
	if r.Total == 0 {
		return "checker: clean"
	}
	s := fmt.Sprintf("checker: %d violations:", r.Total)
	for c := Class(0); c < NumClasses; c++ {
		if n := r.Counts[c]; n > 0 {
			s += fmt.Sprintf(" %v=%d", c, n)
		}
	}
	return s
}

// Checker validates invariants over an MC's counter store. Scan cost is
// O(sampled blocks), so it samples a strided subset for large memories.
type Checker struct {
	mc     *engine.MC
	stride int
	last   map[int]uint64 // sampled block -> last observed counter
	lastL1 map[int]uint64 // sampled L1 child -> last observed counter
	epoch  uint64         // key epoch at the previous Check

	// Engine failure counters at the previous Check, so each failure is
	// reported exactly once (delta-based) rather than re-reported on every
	// subsequent Check.
	lastDecrypt uint64
	lastMAC     uint64

	violations []Violation
}

// New wraps an MC. sampleStride selects every n-th block to track (1 =
// every block; larger values bound memory for big footprints).
func New(mc *engine.MC, sampleStride int) *Checker {
	if sampleStride < 1 {
		sampleStride = 1
	}
	c := &Checker{
		mc:     mc,
		stride: sampleStride,
		last:   make(map[int]uint64),
		lastL1: make(map[int]uint64),
		epoch:  mc.KeyEpoch(),
	}
	s := mc.Stats()
	c.lastDecrypt = s.DecryptMismatches
	c.lastMAC = s.IntegrityFailures
	c.snapshot()
	return c
}

func (c *Checker) snapshot() {
	st := c.mc.Store()
	if st == nil {
		return
	}
	for i := 0; i < st.NumDataBlocks(); i += c.stride {
		c.last[i] = st.DataCounter(i)
	}
	if st.Levels() >= 1 {
		for x := 0; x < st.TreeLevelLen(1); x += c.stride {
			c.lastL1[x] = st.TreeCounter(1, x)
		}
	}
}

// Violations returns the accumulated invariant failures as strings (legacy
// form; see Typed for the classed records).
func (c *Checker) Violations() []string {
	out := make([]string, len(c.violations))
	for i, v := range c.violations {
		out[i] = v.Msg
	}
	return out
}

// Typed returns the accumulated invariant failures with their classes.
func (c *Checker) Typed() []Violation { return c.violations }

// Report tallies accumulated violations by class.
func (c *Checker) Report() Report {
	var r Report
	for _, v := range c.violations {
		if v.Class >= 0 && v.Class < NumClasses {
			r.Counts[v.Class]++
		}
		r.Total++
	}
	return r
}

func (c *Checker) violatef(class Class, format string, args ...interface{}) {
	c.violations = append(c.violations, Violation{Class: class, Msg: fmt.Sprintf(format, args...)})
}

// Check rescans the sampled blocks and records any invariant violations
// since the previous Check (or construction). Call it periodically — e.g.
// every few thousand simulated accesses.
func (c *Checker) Check() {
	st := c.mc.Store()
	if st == nil {
		return
	}
	if ep := c.mc.KeyEpoch(); ep != c.epoch {
		// The engine re-keyed: every counter legitimately reset. Re-baseline
		// instead of flagging the resets as rollbacks.
		c.epoch = ep
		c.snapshot()
	} else {
		for i, prev := range c.last {
			cur := st.DataCounter(i)
			if cur < prev {
				c.violatef(ClassCounterRegression,
					"block %d counter decreased: %d -> %d (pad reuse!)", i, prev, cur)
			}
			if cur > counter.MaxCounter {
				c.violatef(ClassCounterCeiling,
					"block %d counter %d exceeds the 56-bit ceiling", i, cur)
			}
			c.last[i] = cur
		}
		for x, prev := range c.lastL1 {
			cur := st.TreeCounter(1, x)
			if cur < prev {
				c.violatef(ClassTreeRegression,
					"L1 child %d counter decreased: %d -> %d", x, prev, cur)
			}
			c.lastL1[x] = cur
		}
	}
	// Functional decrypt/MAC failures recorded by the engine are security
	// violations unless a test tampered deliberately. Delta-based: each
	// engine-reported failure is surfaced exactly once.
	s := c.mc.Stats()
	if s.DecryptMismatches > c.lastDecrypt {
		c.violatef(ClassDecryptMismatch,
			"%d decrypt mismatches reported by the engine", s.DecryptMismatches-c.lastDecrypt)
	}
	if s.IntegrityFailures > c.lastMAC {
		c.violatef(ClassMACFailure,
			"%d MAC failures reported by the engine", s.IntegrityFailures-c.lastMAC)
	}
	c.lastDecrypt = s.DecryptMismatches
	c.lastMAC = s.IntegrityFailures
}

// Ok reports whether no violations have been recorded.
func (c *Checker) Ok() bool { return len(c.violations) == 0 }
