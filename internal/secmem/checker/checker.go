// Package checker enforces the security invariants of counter-mode secure
// memory over a running simulation:
//
//  1. pad-uniqueness — no (block, counter) pair is ever used twice to
//     encrypt; equivalently, every block's counter strictly increases
//     across writes and relevels;
//  2. bounded growth — counters never exceed the architectural 56-bit
//     ceiling (which would force a re-key/reboot);
//  3. freshness discipline — a block read back always decrypts under the
//     counter it was last sealed with (delegated to the engine's content
//     store, whose failures the checker surfaces).
//
// The checker observes the counter store between accesses; it needs no
// hooks inside the engine, so it can wrap any mode/scheme combination. Use
// it in integration tests and long-running validation harnesses.
package checker

import (
	"fmt"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
)

// Checker validates invariants over an MC's counter store. Scan cost is
// O(sampled blocks), so it samples a strided subset for large memories.
type Checker struct {
	mc     *engine.MC
	stride int
	last   map[int]uint64 // sampled block -> last observed counter
	lastL1 map[int]uint64 // sampled L1 child -> last observed counter

	violations []string
}

// New wraps an MC. sampleStride selects every n-th block to track (1 =
// every block; larger values bound memory for big footprints).
func New(mc *engine.MC, sampleStride int) *Checker {
	if sampleStride < 1 {
		sampleStride = 1
	}
	c := &Checker{
		mc:     mc,
		stride: sampleStride,
		last:   make(map[int]uint64),
		lastL1: make(map[int]uint64),
	}
	c.snapshot()
	return c
}

func (c *Checker) snapshot() {
	st := c.mc.Store()
	if st == nil {
		return
	}
	for i := 0; i < st.NumDataBlocks(); i += c.stride {
		c.last[i] = st.DataCounter(i)
	}
	if st.Levels() >= 1 {
		for x := 0; x < st.TreeLevelLen(1); x += c.stride {
			c.lastL1[x] = st.TreeCounter(1, x)
		}
	}
}

// Violations returns the accumulated invariant failures.
func (c *Checker) Violations() []string { return c.violations }

func (c *Checker) violatef(format string, args ...interface{}) {
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

// Check rescans the sampled blocks and records any invariant violations
// since the previous Check (or construction). Call it periodically — e.g.
// every few thousand simulated accesses.
func (c *Checker) Check() {
	st := c.mc.Store()
	if st == nil {
		return
	}
	for i, prev := range c.last {
		cur := st.DataCounter(i)
		if cur < prev {
			c.violatef("block %d counter decreased: %d -> %d (pad reuse!)", i, prev, cur)
		}
		if cur > counter.MaxCounter {
			c.violatef("block %d counter %d exceeds the 56-bit ceiling", i, cur)
		}
		c.last[i] = cur
	}
	for x, prev := range c.lastL1 {
		cur := st.TreeCounter(1, x)
		if cur < prev {
			c.violatef("L1 child %d counter decreased: %d -> %d", x, prev, cur)
		}
		c.lastL1[x] = cur
	}
	// Functional decrypt/MAC failures recorded by the engine are security
	// violations unless a test tampered deliberately.
	s := c.mc.Stats()
	if s.DecryptMismatches > 0 {
		c.violatef("%d decrypt mismatches reported by the engine", s.DecryptMismatches)
	}
	if s.IntegrityFailures > 0 {
		c.violatef("%d MAC failures reported by the engine", s.IntegrityFailures)
	}
}

// Ok reports whether no violations have been recorded.
func (c *Checker) Ok() bool { return len(c.violations) == 0 }
