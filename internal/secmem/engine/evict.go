package engine

import (
	"rmcc/internal/mem/dram"
	"rmcc/internal/obs"
	"rmcc/internal/secmem/counter"
)

// ensureCounterBlock brings a metadata block (L0 counter block or tree
// node) into the counter cache, returning whether it was already resident.
// Any dirty victim displaced on the way is written back, which bumps the
// victim's own write counter in its parent — the eviction cascade. All
// generated transfers are appended to out/overflow.
func (mc *MC) ensureCounterBlock(addr uint64, dirty bool, out *[]Traffic, overflow *[]Traffic) (hit bool) {
	res := mc.ctrCache.Access(addr, dirty)
	if res.Evicted && res.Writeback {
		mc.writebackCounterBlock(res.VictimAddr, out, overflow)
	}
	if !res.Hit {
		*out = append(*out, Traffic{Addr: addr, Write: false, Kind: dram.KindCounter})
	}
	return res.Hit
}

// writebackCounterBlock writes a dirty metadata block to DRAM and bumps its
// parent counter (the block's own write counter lives one level up). A line
// whose address maps to no metadata block — a corrupted tag — is dropped
// without a DRAM write or parent update, and the corruption is recorded as
// a typed violation on the current access's Outcome.
func (mc *MC) writebackCounterBlock(addr uint64, out *[]Traffic, overflow *[]Traffic) {
	level, idx, ok := mc.store.ClassifyAddr(addr)
	if !ok {
		mc.stats.MetadataCorruptions++
		mc.recordViolation(&IntegrityError{
			Kind: ViolationMetadataAddr, Addr: addr, Block: -1, Recovered: true,
			Detail: "line dropped without writeback or parent update",
		})
		return
	}
	*out = append(*out, Traffic{Addr: addr, Write: true, Kind: dram.KindCounter})
	mc.bumpTreeCounter(level+1, idx, out, overflow)
}

// bumpTreeCounter increments the counter at tree level l protecting child
// block/node childIdx. Level l beyond the stored tree is the on-chip root:
// its counters update for free, ending the cascade.
func (mc *MC) bumpTreeCounter(l, childIdx int, out *[]Traffic, overflow *[]Traffic) {
	if l > mc.store.Levels() {
		return // root counters live on-chip
	}
	// The parent node must be resident (and becomes dirty) to update it.
	parentAddr := mc.store.TreeNodeAddr(l, mc.store.TreeNodeIndex(childIdx))
	mc.ensureCounterBlock(parentAddr, true, out, overflow)

	cur := mc.store.TreeCounter(l, childIdx)
	next := cur + 1

	// Tree-counter ceiling: an integrity-tree counter at the 56-bit limit
	// cannot advance; defer the whole-memory re-key to the end of the
	// current access (the cache walk in flight must not be yanked mid-way).
	if next > counter.MaxCounter {
		mc.stats.CounterOverflows++
		mc.recordViolation(&IntegrityError{
			Kind: ViolationCounterOverflow, Addr: parentAddr, Block: -1, Recovered: true,
			Detail: "tree counter at the 56-bit ceiling; re-key deferred to end of access",
		})
		mc.needRekey = true
		return
	}

	// RMCC: memoization-aware update for L1 counters (the level the L1
	// table memoizes), budget-gated like the data path.
	if mc.cfg.Mode == RMCC && l == 1 && mc.l1Table != nil {
		if target, ok := mc.l1Table.NearestMemoized(cur); ok && target > next {
			if mc.store.CanEncodeTree(l, childIdx, target) {
				next = target
				mc.stats.TreeJumps++
			} else if !mc.store.CanEncodeTree(l, childIdx, cur+1) {
				// Baseline overflows anyway: relevel straight onto the
				// memoized value (§IV-C2), no budget charge.
				mc.relevelTree(l, childIdx, target, out, overflow, false)
				return
			} else {
				cost := 2 * mc.store.Scheme().TreeArity()
				if mc.l1Table.SpendBudget(cost) {
					mc.relevelTree(l, childIdx, target, out, overflow, true)
					mc.stats.TreeJumps++
					return
				}
			}
		}
	}

	if mc.store.CanEncodeTree(l, childIdx, next) {
		mc.store.SetTreeCounter(l, childIdx, next)
		if l == 1 && next > mc.observedTreeMax[1] {
			mc.observedTreeMax[1] = next
			mc.trace.Emit(obs.EvOSMUpdate, 1, next, 0)
		}
		return
	}
	// Baseline overflow: relevel the node to one above its current max.
	start, end := mc.treeGroupBounds(l, childIdx)
	var max uint64
	for c := start; c < end; c++ {
		if v := mc.store.TreeCounter(l, c); v > max {
			max = v
		}
	}
	target := max + 1
	if mc.cfg.Mode == RMCC && l == 1 && mc.l1Table != nil {
		if t, ok := mc.l1Table.NearestMemoized(max); ok {
			target = t
		}
	}
	mc.relevelTree(l, childIdx, target, out, overflow, false)
}

func (mc *MC) treeGroupBounds(l, childIdx int) (start, end int) {
	arity := mc.store.Scheme().TreeArity()
	start = (childIdx / arity) * arity
	end = start + arity
	if n := mc.store.TreeLevelLen(l); end > n {
		end = n
	}
	return start, end
}

// relevelTree executes a tree-node overflow: all child counters move to
// target and every child block must be re-MACed (read + write). charged
// marks RMCC-induced relevels whose traffic counts against the L1 budget.
func (mc *MC) relevelTree(l, childIdx int, target uint64, out *[]Traffic, overflow *[]Traffic, charged bool) {
	children := mc.store.RelevelTree(l, childIdx, target)
	if l == 1 && target > mc.observedTreeMax[1] {
		mc.observedTreeMax[1] = target
		mc.trace.Emit(obs.EvOSMUpdate, 1, target, 0)
	}
	for _, c := range children {
		var childAddr uint64
		if l == 1 {
			childAddr = mc.store.L0BlockAddr(c)
		} else {
			childAddr = mc.store.TreeNodeAddr(l-1, c)
		}
		*overflow = append(*overflow,
			Traffic{Addr: childAddr, Write: false, Kind: dram.KindOverflowL1Plus},
			Traffic{Addr: childAddr, Write: true, Kind: dram.KindOverflowL1Plus},
		)
		if charged {
			mc.stats.OverheadL1Blocks += 2
		}
	}
	if !charged {
		mc.stats.BaselineOverflows++
	}
	// Bump the node's own counter one level further up: its contents (all
	// minors) changed, and the rewrite of every child also dirtied them.
	// The children are metadata blocks already being written back above;
	// their own parent counters are the node we just releveled, so the
	// cascade terminates here with the node's parent.
	nodeIdx := mc.store.TreeNodeIndex(childIdx)
	mc.bumpTreeCounter(l+1, nodeIdx, out, overflow)
}

// walkChain performs the counter-chain lookup for a data access whose L0
// counter block is addressed by l0Addr (L0 block index l0Idx). It returns
// the chain of fetches needed (empty when the L0 block is cached) plus
// whether the L1 level was covered (cache hit or memoized) for the
// Accelerated computation, recording chain stats.
func (mc *MC) walkChain(l0Idx int, dirty bool, isRead bool, out *[]Traffic, overflow *[]Traffic) (chain []ChainFetch, l0Hit, l1Covered bool) {
	l0Addr := mc.store.L0BlockAddr(l0Idx)
	l0Hit = mc.ensureCounterBlock(l0Addr, dirty, out, overflow)
	if l0Hit {
		return nil, true, true
	}
	mc.stats.ChainFetches[0]++
	chain = append(mc.scratchChain[:0], ChainFetch{Addr: l0Addr, Level: 0})

	// Walk up: to verify the fetched level-(l-1) block we need its counter
	// at level l. A cache hit ends the walk.
	childIdx := l0Idx
	l1Covered = true
	for l := 1; l <= mc.store.Levels(); l++ {
		nodeAddr := mc.store.TreeNodeAddr(l, mc.store.TreeNodeIndex(childIdx))
		// The walk reads the node; verification does not dirty it.
		res := mc.ctrCache.Access(nodeAddr, false)
		if res.Evicted && res.Writeback {
			mc.writebackCounterBlock(res.VictimAddr, out, overflow)
		}
		if res.Hit {
			break
		}
		*out = append(*out, Traffic{Addr: nodeAddr, Write: false, Kind: dram.KindCounter})
		if l < len(mc.stats.ChainFetches) {
			mc.stats.ChainFetches[l]++
		}
		fetch := ChainFetch{Addr: nodeAddr, Level: l}
		// The fetched node at level l is verified using the child counter
		// at level l+1... but what accelerates *using* this node is the
		// memoization of the level-l counter value of the child below it.
		if l == 1 {
			mc.stats.L1Misses++
			l1Covered = false
			if mc.cfg.Mode == RMCC && mc.l1Table != nil {
				val := mc.store.TreeCounter(1, l0Idx)
				mc.stats.L1MemoLookupsOnMiss++
				if _, src := mc.l1Table.Lookup(val, isRead); src != 0 {
					fetch.MemoHit = true
					fetch.MemoSource = src
					mc.stats.L1MemoHitsOnMiss++
					l1Covered = true
				}
			}
		}
		chain = append(chain, fetch)
		childIdx = mc.store.TreeNodeIndex(childIdx)
	}
	mc.scratchChain = chain
	return chain, false, l1Covered
}
