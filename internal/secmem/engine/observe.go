package engine

import (
	"strconv"

	"rmcc/internal/core"
	"rmcc/internal/mem/dram"
	"rmcc/internal/obs"
)

// This file wires the controller into the observability layer
// (internal/obs). The hot paths keep incrementing the plain Stats fields —
// Stats()/ResetStats() and every rendered table stay byte-identical — and
// RegisterMetrics exposes those fields as func-backed registry views read
// only when an export is cut. SetTracer attaches the per-access event
// tracer; a nil tracer (the default) keeps every emit site a single
// predicted branch, so the read-hit path stays allocation-free either way
// (BenchmarkEngineReadHitObserved enforces 0 B/op with both attached).

// SetTracer attaches tr (nil detaches) to the controller and its
// memoization tables. Events flow until detached; the tracer must belong
// to this controller alone (the engine is single-threaded).
func (mc *MC) SetTracer(tr *obs.Tracer) {
	mc.trace = tr
	if mc.l0Table != nil {
		mc.l0Table.SetTracer(tr, 0)
	}
	if mc.l1Table != nil {
		mc.l1Table.SetTracer(tr, 1)
	}
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (mc *MC) Tracer() *obs.Tracer { return mc.trace }

// RegisterMetrics registers every controller statistic with reg under the
// rmcc_engine_* / rmcc_memo_table_* / rmcc_ctr_cache_* namespaces (see
// docs/OBSERVABILITY.md for the catalogue). Call once per controller per
// registry; the views read live state, so exports taken mid-run see
// current values. Also installs the read-miss chain-depth histogram.
func (mc *MC) RegisterMetrics(reg *obs.Registry) {
	s := &mc.stats

	reg.CounterFunc("rmcc_engine_reads_total",
		"LLC read misses processed by the MC", func() uint64 { return s.Reads })
	reg.CounterFunc("rmcc_engine_writes_total",
		"LLC writebacks processed by the MC", func() uint64 { return s.Writes })

	reg.CounterFunc("rmcc_engine_ctr_cache_requests_total",
		"L0 counter-block lookups by result",
		func() uint64 { return s.CtrL0Hits }, obs.L("result", "hit"))
	reg.CounterFunc("rmcc_engine_ctr_cache_requests_total", "",
		func() uint64 { return s.CtrL0Misses }, obs.L("result", "miss"))
	reg.CounterFunc("rmcc_engine_ctr_cache_read_misses_total",
		"L0 counter misses on read requests (the exposed-decryption set)",
		func() uint64 { return s.CtrL0ReadMisses })
	reg.CounterFunc("rmcc_engine_l1_misses_total",
		"L0 misses whose L1 tree node also missed", func() uint64 { return s.L1Misses })
	for l := range s.ChainFetches {
		l := l
		reg.CounterFunc("rmcc_engine_chain_fetches_total",
			"counter-chain DRAM fetches by tree level",
			func() uint64 { return s.ChainFetches[l] }, obs.L("level", strconv.Itoa(l)))
	}

	reg.CounterFunc("rmcc_engine_memo_lookups_total",
		"L0 memoization lookups restricted to counter misses (Figure 10)",
		func() uint64 { return s.L0MemoLookupsOnMiss }, obs.L("table", "l0"), obs.L("scope", "miss"))
	reg.CounterFunc("rmcc_engine_memo_lookups_total", "",
		func() uint64 { return s.L0MemoLookupsAll }, obs.L("table", "l0"), obs.L("scope", "all"))
	reg.CounterFunc("rmcc_engine_memo_lookups_total", "",
		func() uint64 { return s.L1MemoLookupsOnMiss }, obs.L("table", "l1"), obs.L("scope", "miss"))
	reg.CounterFunc("rmcc_engine_memo_hits_total",
		"memoization hits by table, scope, and serving structure",
		func() uint64 { return s.L0MemoGroupHitsOnMiss },
		obs.L("table", "l0"), obs.L("scope", "miss"), obs.L("source", "group"))
	reg.CounterFunc("rmcc_engine_memo_hits_total", "",
		func() uint64 { return s.L0MemoMRUHitsOnMiss },
		obs.L("table", "l0"), obs.L("scope", "miss"), obs.L("source", "mru"))
	reg.CounterFunc("rmcc_engine_memo_hits_total", "",
		func() uint64 { return s.L0MemoHitsAll },
		obs.L("table", "l0"), obs.L("scope", "all"), obs.L("source", "any"))
	reg.CounterFunc("rmcc_engine_memo_hits_total", "",
		func() uint64 { return s.L1MemoHitsOnMiss },
		obs.L("table", "l1"), obs.L("scope", "miss"), obs.L("source", "any"))
	reg.CounterFunc("rmcc_engine_accelerated_misses_total",
		"read counter misses fully accelerated by memoization (§VI headline)",
		func() uint64 { return s.AcceleratedMisses })

	reg.CounterFunc("rmcc_engine_read_updates_total",
		"read-triggered counter jumps applied", func() uint64 { return s.ReadUpdates })
	reg.CounterFunc("rmcc_engine_read_update_relevels_total",
		"read-triggered jumps that releveled a group", func() uint64 { return s.ReadUpdateRelevels })
	reg.CounterFunc("rmcc_engine_read_updates_denied_total",
		"read-triggered jumps skipped for lack of budget", func() uint64 { return s.ReadUpdatesDenied })
	reg.CounterFunc("rmcc_engine_write_jumps_total",
		"write-time counter jumps beyond +1", func() uint64 { return s.WriteJumps })
	reg.CounterFunc("rmcc_engine_write_jump_relevels_total",
		"write jumps that releveled (budget-charged)", func() uint64 { return s.WriteJumpRelevels })
	reg.CounterFunc("rmcc_engine_write_jumps_denied_total",
		"write jumps refused for lack of budget", func() uint64 { return s.WriteJumpsDenied })
	reg.CounterFunc("rmcc_engine_baseline_overflows_total",
		"relevels the baseline policy would also pay", func() uint64 { return s.BaselineOverflows })
	reg.CounterFunc("rmcc_engine_tree_jumps_total",
		"memoization-aware L1 tree-counter jumps", func() uint64 { return s.TreeJumps })

	for k := 0; k < dram.NumKinds; k++ {
		k := k
		reg.CounterFunc("rmcc_engine_traffic_blocks_total",
			"DRAM traffic in 64-byte block transfers by kind",
			func() uint64 { return s.TrafficBlocks[k] }, obs.L("kind", dram.Kind(k).String()))
	}
	reg.CounterFunc("rmcc_engine_overhead_blocks_total",
		"traffic charged to the RMCC overhead budgets by table",
		func() uint64 { return s.OverheadL0Blocks }, obs.L("table", "l0"))
	reg.CounterFunc("rmcc_engine_overhead_blocks_total", "",
		func() uint64 { return s.OverheadL1Blocks }, obs.L("table", "l1"))

	reg.CounterFunc("rmcc_engine_integrity_failures_total",
		"MAC check mismatches (tamper detections)", func() uint64 { return s.IntegrityFailures })
	reg.CounterFunc("rmcc_engine_decrypt_mismatches_total",
		"plaintext round-trip failures", func() uint64 { return s.DecryptMismatches })
	for k := ViolationKind(0); k < NumViolationKinds; k++ {
		k := k
		reg.CounterFunc("rmcc_engine_violations_total",
			"typed integrity violations detected",
			func() uint64 { return s.ViolationsByKind[k] }, obs.L("kind", k.String()))
	}
	reg.CounterFunc("rmcc_engine_metadata_corruptions_total",
		"non-metadata addresses caught in the counter cache", func() uint64 { return s.MetadataCorruptions })
	reg.CounterFunc("rmcc_engine_memo_poison_detected_total",
		"poisoned memo entries caught at lookup", func() uint64 { return s.MemoPoisonDetected })
	reg.CounterFunc("rmcc_engine_memo_poison_repaired_total",
		"poisoned memo entries re-filled in place", func() uint64 { return s.MemoPoisonRepaired })
	reg.CounterFunc("rmcc_engine_retry_attempts_total",
		"re-fetches issued under retry policies", func() uint64 { return s.RetryAttempts })
	reg.CounterFunc("rmcc_engine_retry_recoveries_total",
		"violations cleared by a retry", func() uint64 { return s.RetryRecoveries })
	reg.CounterFunc("rmcc_engine_rekey_recoveries_total",
		"violations escalated to the re-key path", func() uint64 { return s.RekeyRecoveries })
	reg.CounterFunc("rmcc_engine_counter_overflows_total",
		"56-bit ceiling hits forcing a re-key", func() uint64 { return s.CounterOverflows })
	reg.CounterFunc("rmcc_engine_rekeys_total",
		"whole-memory re-key/reboot events", func() uint64 { return s.Rekeys })
	reg.CounterFunc("rmcc_engine_rekey_blocks_total",
		"block transfers spent re-encrypting memory", func() uint64 { return s.RekeyBlocks })
	reg.CounterFunc("rmcc_engine_dropped_writebacks_total",
		"injected lost writes", func() uint64 { return s.DroppedWritebacks })
	reg.CounterFunc("rmcc_engine_duplicated_writebacks_total",
		"injected duplicate writes (benign)", func() uint64 { return s.DuplicatedWritebacks })
	reg.CounterFunc("rmcc_engine_power_losses_total",
		"injected power-loss events", func() uint64 { return s.PowerLosses })

	// Derived rates as gauges: the exact figure formulas, exported so CI
	// can alert on them without re-deriving.
	reg.GaugeFunc("rmcc_engine_ctr_miss_rate",
		"counter misses per processed read (Figure 3)", func() float64 { return s.CtrMissRate() })
	reg.GaugeFunc("rmcc_engine_memo_hit_rate_on_misses",
		"fraction of L0 counter misses served memoized (Figure 10)",
		func() float64 { return s.MemoHitRateOnMisses() })
	reg.GaugeFunc("rmcc_engine_memo_hit_rate_all",
		"fraction of all accessed counter values memoized (Figure 19)",
		func() float64 { return s.MemoHitRateAll() })
	reg.GaugeFunc("rmcc_engine_accelerated_rate",
		"fraction of read counter misses accelerated (§VI headline)",
		func() float64 { return s.AcceleratedRate() })
	reg.GaugeFunc("rmcc_engine_key_epoch",
		"current key generation (0 at boot, +1 per re-key)",
		func() float64 { return float64(mc.keyEpoch) })

	// Observed-max registers (§IV-D2 OSM and its per-tree-level analogs).
	reg.GaugeFunc("rmcc_engine_observed_max",
		"observed-max counter registers by level (0 = data OSM)",
		func() float64 {
			if mc.store == nil {
				return 0
			}
			return float64(mc.store.ObservedMax())
		}, obs.L("level", "0"))
	if mc.store != nil {
		for l := 1; l <= mc.store.Levels(); l++ {
			l := l
			reg.GaugeFunc("rmcc_engine_observed_max", "",
				func() float64 { return float64(mc.observedTreeMax[l]) },
				obs.L("level", strconv.Itoa(l)))
		}
	}

	// Counter cache (the MC-side metadata cache). The cache object is
	// rebuilt on re-key/power loss; reading through mc keeps the view on
	// the live instance.
	reg.CounterFunc("rmcc_ctr_cache_hits_total", "MC counter-cache hits",
		func() uint64 { return mc.ctrCache.Stats().Hits })
	reg.CounterFunc("rmcc_ctr_cache_misses_total", "MC counter-cache misses",
		func() uint64 { return mc.ctrCache.Stats().Misses })
	reg.CounterFunc("rmcc_ctr_cache_evictions_total", "MC counter-cache evictions",
		func() uint64 { return mc.ctrCache.Stats().Evictions })
	reg.CounterFunc("rmcc_ctr_cache_writebacks_total", "MC counter-cache dirty evictions",
		func() uint64 { return mc.ctrCache.Stats().Writebacks })

	// Memoization tables, read through mc so rebuilds (re-key, power
	// loss) are followed.
	registerTableMetrics(reg, "l0", func() *core.Table { return mc.l0Table })
	registerTableMetrics(reg, "l1", func() *core.Table { return mc.l1Table })

	// Chain-depth histogram: how many counter-chain blocks each read miss
	// fetched from DRAM (0 when the L0 block was resident).
	mc.chainLenHist = reg.Histogram("rmcc_engine_read_chain_depth",
		"counter-chain blocks fetched from DRAM per processed read",
		obs.LinearBuckets(0, 1, 6))
}

// registerTableMetrics exports one memoization table's statistics under
// rmcc_memo_table_* with a table=<id> label. get re-reads the table pointer
// on every export so re-key rebuilds are followed.
func registerTableMetrics(reg *obs.Registry, id string, get func() *core.Table) {
	lbl := obs.L("table", id)
	stat := func(read func(core.Stats) uint64) func() uint64 {
		return func() uint64 {
			t := get()
			if t == nil {
				return 0
			}
			return read(t.Stats())
		}
	}
	reg.CounterFunc("rmcc_memo_table_lookups_total",
		"memoization-table lookups", stat(func(s core.Stats) uint64 { return s.Lookups }), lbl)
	reg.CounterFunc("rmcc_memo_table_hits_total",
		"memoization-table hits by serving structure",
		stat(func(s core.Stats) uint64 { return s.GroupHits }), lbl, obs.L("source", "group"))
	reg.CounterFunc("rmcc_memo_table_hits_total", "",
		stat(func(s core.Stats) uint64 { return s.MRUHits }), lbl, obs.L("source", "mru"))
	reg.CounterFunc("rmcc_memo_table_misses_total",
		"memoization-table misses", stat(func(s core.Stats) uint64 { return s.Misses }), lbl)
	reg.CounterFunc("rmcc_memo_table_insertions_total",
		"mid-epoch new-group insertions (§IV-C3)",
		stat(func(s core.Stats) uint64 { return s.Insertions }), lbl)
	reg.CounterFunc("rmcc_memo_table_epochs_total",
		"completed table epochs", stat(func(s core.Stats) uint64 { return s.Epochs }), lbl)
	reg.CounterFunc("rmcc_memo_table_budget_spent_blocks_total",
		"block transfers charged to the epoch overhead budget",
		stat(func(s core.Stats) uint64 { return s.BudgetSpent }), lbl)
	reg.CounterFunc("rmcc_memo_table_budget_denied_total",
		"budget charges refused for lack of budget",
		stat(func(s core.Stats) uint64 { return s.BudgetDenied }), lbl)
	reg.GaugeFunc("rmcc_memo_table_budget_remaining_blocks",
		"unspent epoch overhead budget in block transfers",
		func() float64 {
			t := get()
			if t == nil {
				return 0
			}
			return t.BudgetRemaining()
		}, lbl)
	reg.GaugeFunc("rmcc_memo_table_max_value",
		"Max-counter-in-Table (largest live memoized value, Figure 9)",
		func() float64 {
			t := get()
			if t == nil {
				return 0
			}
			return float64(t.MaxInTable())
		}, lbl)
	reg.GaugeFunc("rmcc_memo_table_hit_rate",
		"(group+MRU hits)/lookups since construction",
		func() float64 {
			t := get()
			if t == nil {
				return 0
			}
			return t.Stats().HitRate()
		}, lbl)
}
