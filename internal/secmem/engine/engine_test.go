package engine

import (
	"testing"

	"rmcc/internal/core"
	"rmcc/internal/mem/dram"
	"rmcc/internal/rng"
	"rmcc/internal/secmem/counter"
)

func testMC(t testing.TB, mode Mode, scheme counter.Scheme, memMB int, mutate func(*Config)) *MC {
	t.Helper()
	cfg := DefaultConfig(mode, scheme, uint64(memMB)<<20)
	cfg.TrackContents = true
	cfg.L0Table.EpochAccesses = 10_000
	cfg.L1Table.EpochAccesses = 10_000
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg)
}

func TestNonSecurePassThrough(t *testing.T) {
	mc := New(DefaultConfig(NonSecure, counter.Morphable, 1<<20))
	o := mc.Read(0x1000)
	if o.CtrCacheHit || len(o.Chain) != 0 || len(o.Extra) != 0 {
		t.Fatalf("non-secure read generated secure work: %+v", o)
	}
	o = mc.Write(0x1000)
	if len(o.Extra) != 0 {
		t.Fatalf("non-secure write generated extra traffic: %+v", o)
	}
	s := mc.Stats()
	if s.TrafficBlocks[dram.KindData] != 2 {
		t.Fatalf("data traffic = %d, want 2", s.TrafficBlocks[dram.KindData])
	}
}

func TestColdReadFetchesCounterChain(t *testing.T) {
	mc := testMC(t, Baseline, counter.Morphable, 64, nil)
	o := mc.Read(0x100000)
	if o.CtrCacheHit {
		t.Fatal("cold read hit the counter cache")
	}
	if len(o.Chain) == 0 {
		t.Fatal("no chain fetches on cold read")
	}
	if o.Chain[0].Level != 0 {
		t.Fatalf("first fetch level = %d, want 0", o.Chain[0].Level)
	}
	// Second read of a block under the same counter block: cache hit.
	o = mc.Read(0x100040)
	if !o.CtrCacheHit {
		t.Fatal("same-group read missed the counter cache")
	}
}

func TestCounterCacheLocality(t *testing.T) {
	// One Morphable counter block covers 128 blocks = 8 KiB: sweeping 8 KiB
	// should miss once.
	mc := testMC(t, Baseline, counter.Morphable, 64, nil)
	for off := uint64(0); off < 8192; off += 64 {
		mc.Read(0x200000 + off)
	}
	s := mc.Stats()
	if s.CtrL0Misses != 1 {
		t.Fatalf("counter misses = %d, want 1 for one 8KiB region", s.CtrL0Misses)
	}
	if s.CtrL0Hits != 127 {
		t.Fatalf("counter hits = %d, want 127", s.CtrL0Hits)
	}
}

func TestWriteIncrementsCounter(t *testing.T) {
	mc := testMC(t, Baseline, counter.Morphable, 64, func(c *Config) { c.RandomizeInit = false })
	i := mc.Store().DataBlockIndex(0x3000)
	before := mc.Store().DataCounter(i)
	mc.Write(0x3000)
	if got := mc.Store().DataCounter(i); got != before+1 {
		t.Fatalf("counter %d -> %d, want +1", before, got)
	}
}

func TestBaselineOverflowRelevels(t *testing.T) {
	mc := testMC(t, Baseline, counter.Morphable, 64, func(c *Config) { c.RandomizeInit = false })
	// Write the same block until its minor space (uniform range 7, then
	// ZCC range 127) exhausts: the 128th write triggers a relevel.
	var overflowSeen bool
	for w := 0; w < 200; w++ {
		o := mc.Write(0x4000)
		if len(o.OverflowTraffic) > 0 {
			overflowSeen = true
			// Relevel traffic: read+write per covered block.
			if len(o.OverflowTraffic) != 2*mc.Store().Coverage() {
				t.Fatalf("overflow traffic = %d transfers, want %d",
					len(o.OverflowTraffic), 2*mc.Store().Coverage())
			}
			break
		}
	}
	if !overflowSeen {
		t.Fatal("no overflow in 200 writes to one block")
	}
	if mc.Stats().BaselineOverflows == 0 {
		t.Fatal("overflow not counted")
	}
}

func TestSGXNeverOverflows(t *testing.T) {
	mc := testMC(t, Baseline, counter.SGX, 16, func(c *Config) { c.RandomizeInit = false })
	for w := 0; w < 500; w++ {
		if o := mc.Write(0x5000); len(o.OverflowTraffic) > 0 {
			t.Fatal("SGX monolithic counters overflowed")
		}
	}
}

func TestRMCCWriteLandsOnMemoizedValue(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 64, func(c *Config) { c.RandomizeInit = false })
	// With zero-initialized counters the table (seeded 0..127) covers the
	// group; a write should move the counter to a memoized value.
	mc.Write(0x6000)
	i := mc.Store().DataBlockIndex(0x6000)
	if !mc.L0Table().Contains(mc.Store().DataCounter(i)) {
		t.Fatalf("counter %d not memoized after write", mc.Store().DataCounter(i))
	}
}

func TestRMCCReadMemoHit(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 64, func(c *Config) { c.RandomizeInit = false })
	// Zero counters are memoized at boot (values 0..127): a cold read's
	// counter miss should be accelerated.
	o := mc.Read(0x700000)
	if o.CtrCacheHit {
		t.Fatal("expected counter cache miss")
	}
	if !o.L0MemoHit {
		t.Fatal("zero counter not memoized")
	}
	if !o.Accelerated {
		t.Fatal("memoized counter miss not counted as accelerated")
	}
	s := mc.Stats()
	if s.AcceleratedMisses != 1 || s.L0MemoGroupHitsOnMiss != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReadTriggeredUpdateConvergesReadOnlyBlocks(t *testing.T) {
	// With randomized (large) counters, the boot table (values 0..127) has
	// nothing above the counters, so convergence needs the §IV-C3 dynamic:
	// over-max reads insert a high group, after which read-triggered
	// updates start landing read-only blocks on memoized values.
	mc := testMC(t, RMCC, counter.Morphable, 64, func(c *Config) {
		c.L0Table.OverMaxThreshold = 256
		c.WarmStartFrac = 0 // cold start: watch organic convergence
	})
	r := rng.New(41)
	for n := 0; n < 40000; n++ {
		mc.Read(r.Uint64n(64<<20) &^ 63)
		mc.OnEpochAccess()
	}
	s := mc.Stats()
	if mc.L0Table().Stats().Insertions == 0 {
		t.Fatal("no high group inserted despite over-max reads")
	}
	if s.ReadUpdates == 0 {
		t.Fatal("no read-triggered updates after high groups appeared")
	}
	// The self-reinforcement evidence: a meaningful number of blocks now
	// sit exactly on memoized values.
	covered := 0
	for i := 0; i < mc.Store().NumDataBlocks(); i += 64 {
		if mc.L0Table().Contains(mc.Store().DataCounter(i)) {
			covered++
		}
	}
	if covered == 0 {
		t.Fatal("no sampled blocks converged onto memoized values")
	}
}

func TestReadUpdateRespectsBudget(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 64, func(c *Config) {
		c.L0Table.BudgetFrac = 0 // no budget at all
	})
	for a := uint64(0); a < 1<<22; a += 8192 {
		mc.Read(a)
	}
	s := mc.Stats()
	if s.ReadUpdates != 0 {
		t.Fatalf("read updates = %d with zero budget", s.ReadUpdates)
	}
	if s.OverheadL0Blocks != 0 {
		t.Fatalf("overhead = %d with zero budget", s.OverheadL0Blocks)
	}
}

func TestContentsRoundTripThroughWrites(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 16, nil)
	r := rng.New(3)
	for n := 0; n < 3000; n++ {
		addr := r.Uint64n(8<<20) &^ 63
		if r.Uint64()&3 == 0 {
			mc.Write(addr)
		} else {
			mc.Read(addr)
		}
	}
	s := mc.Stats()
	if s.DecryptMismatches != 0 {
		t.Fatalf("decrypt mismatches: %d", s.DecryptMismatches)
	}
	if s.IntegrityFailures != 0 {
		t.Fatalf("integrity failures: %d", s.IntegrityFailures)
	}
}

func TestContentsRoundTripBaselineSC64(t *testing.T) {
	mc := testMC(t, Baseline, counter.SC64, 16, nil)
	r := rng.New(5)
	for n := 0; n < 3000; n++ {
		addr := r.Uint64n(8<<20) &^ 63
		if r.Uint64()&1 == 0 {
			mc.Write(addr)
		} else {
			mc.Read(addr)
		}
	}
	s := mc.Stats()
	if s.DecryptMismatches+s.IntegrityFailures != 0 {
		t.Fatalf("functional violations: %+v", s)
	}
}

func TestTamperDetected(t *testing.T) {
	mc := testMC(t, Baseline, counter.Morphable, 16, nil)
	mc.Read(0x8000) // install contents
	i := mc.Store().DataBlockIndex(0x8000)
	mc.TamperCiphertext(i)
	mc.Read(0x8000)
	if mc.Stats().IntegrityFailures == 0 {
		t.Fatal("tampered ciphertext passed the MAC check")
	}
}

func TestReplayDetected(t *testing.T) {
	mc := testMC(t, Baseline, counter.Morphable, 16, nil)
	mc.Read(0x9000)
	i := mc.Store().DataBlockIndex(0x9000)
	oldCT, oldMAC := mc.SnapshotCiphertext(i)
	mc.Write(0x9000) // counter moves, new ciphertext
	mc.ReplayOldCiphertext(i, oldCT, oldMAC)
	mc.Read(0x9000)
	if mc.Stats().IntegrityFailures == 0 {
		t.Fatal("replayed stale ciphertext passed the MAC check")
	}
}

func TestEvictionCascadeBumpsParents(t *testing.T) {
	// A tiny counter cache forces evictions; dirty counter blocks written
	// back must bump L1 counters.
	mc := testMC(t, Baseline, counter.Morphable, 256, func(c *Config) {
		c.CounterCacheBytes = 4096
		c.CounterCacheWays = 4
		c.RandomizeInit = false
	})
	r := rng.New(7)
	for n := 0; n < 20000; n++ {
		mc.Write(r.Uint64n(256<<20) &^ 63)
	}
	var bumped bool
	for j := 0; j < mc.Store().NumL0Blocks(); j++ {
		if mc.Store().TreeCounter(1, j) > 0 {
			bumped = true
			break
		}
	}
	if !bumped {
		t.Fatal("no L1 counter advanced despite dirty counter-block evictions")
	}
	if mc.Stats().TrafficBlocks[dram.KindCounter] == 0 {
		t.Fatal("no counter traffic recorded")
	}
}

func TestObservedMaxGrowthBound(t *testing.T) {
	// §IV-D2: RMCC must not explode the system max counter; new groups are
	// bounded by ObservedSystemMax+1.
	mcB := testMC(t, Baseline, counter.Morphable, 16, func(c *Config) { c.InitSeed = 9 })
	mcR := testMC(t, RMCC, counter.Morphable, 16, func(c *Config) { c.InitSeed = 9 })
	r1, r2 := rng.New(11), rng.New(11)
	for n := 0; n < 30000; n++ {
		a := r1.Uint64n(16<<20) &^ 63
		b := r2.Uint64n(16<<20) &^ 63
		if n%3 == 0 {
			mcB.Write(a)
			mcR.Write(b)
		} else {
			mcB.Read(a)
			mcR.Read(b)
		}
		mcB.OnEpochAccess()
		mcR.OnEpochAccess()
	}
	bMax, rMax := mcB.Store().ObservedMax(), mcR.Store().ObservedMax()
	if rMax > bMax*3 {
		t.Fatalf("RMCC max counter %d vastly exceeds baseline %d", rMax, bMax)
	}
}

func TestTrafficKindsPopulated(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 32, nil)
	r := rng.New(13)
	for n := 0; n < 10000; n++ {
		addr := r.Uint64n(32<<20) &^ 63
		if n%4 == 0 {
			mc.Write(addr)
		} else {
			mc.Read(addr)
		}
		mc.OnEpochAccess()
	}
	s := mc.Stats()
	if s.TrafficBlocks[dram.KindData] == 0 || s.TrafficBlocks[dram.KindCounter] == 0 {
		t.Fatalf("traffic = %v", s.TrafficBlocks)
	}
	if s.TotalTraffic() < s.Reads+s.Writes {
		t.Fatal("total traffic below access count")
	}
}

func TestMemoStatsConsistency(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 32, nil)
	r := rng.New(17)
	for n := 0; n < 20000; n++ {
		mc.Read(r.Uint64n(32<<20) &^ 63)
		mc.OnEpochAccess()
	}
	s := mc.Stats()
	if s.L0MemoLookupsOnMiss != s.CtrL0Misses {
		t.Fatalf("lookups on miss %d != counter misses %d", s.L0MemoLookupsOnMiss, s.CtrL0Misses)
	}
	if hits := s.L0MemoGroupHitsOnMiss + s.L0MemoMRUHitsOnMiss; hits > s.L0MemoLookupsOnMiss {
		t.Fatal("more memo hits than lookups")
	}
	if s.AcceleratedMisses > s.CtrL0Misses {
		t.Fatal("accelerated > misses")
	}
	if s.L0MemoLookupsAll != s.Reads {
		t.Fatalf("all-lookups %d != reads %d", s.L0MemoLookupsAll, s.Reads)
	}
}

func TestCountModesProduceSameDataTraffic(t *testing.T) {
	// The same access stream must generate identical *data* traffic across
	// modes; only metadata traffic differs.
	streams := func() *rng.Source { return rng.New(23) }
	run := func(mode Mode) Stats {
		mc := testMC(t, mode, counter.Morphable, 16, func(c *Config) { c.TrackContents = false })
		r := streams()
		for n := 0; n < 5000; n++ {
			addr := r.Uint64n(16<<20) &^ 63
			if n%4 == 0 {
				mc.Write(addr)
			} else {
				mc.Read(addr)
			}
		}
		return mc.Stats()
	}
	base := run(Baseline)
	rm := run(RMCC)
	// RMCC may rewrite data blocks (read updates), so its data traffic is
	// >= baseline's, but reads+writes processed must match.
	if base.Reads != rm.Reads || base.Writes != rm.Writes {
		t.Fatalf("access counts diverged: %+v vs %+v", base.Reads, rm.Reads)
	}
	if rm.TrafficBlocks[dram.KindData] < base.TrafficBlocks[dram.KindData] {
		t.Fatal("RMCC generated less data traffic than baseline")
	}
}

func BenchmarkEngineReadRMCC(b *testing.B) {
	cfg := DefaultConfig(RMCC, counter.Morphable, 64<<20)
	mc := New(cfg)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Read(r.Uint64n(64<<20) &^ 63)
		mc.OnEpochAccess()
	}
}

func BenchmarkEngineWriteRMCC(b *testing.B) {
	cfg := DefaultConfig(RMCC, counter.Morphable, 64<<20)
	mc := New(cfg)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Write(r.Uint64n(64<<20) &^ 63)
		mc.OnEpochAccess()
	}
}

var _ = core.MissSource // keep import for clarity in failure messages
