package engine

import (
	"rmcc/internal/crypto/otp"
	"rmcc/internal/secmem/counter"
)

// contentStore maintains a functional image of memory: the plaintext the
// CPU believes is stored, the ciphertext actually in DRAM, and each block's
// MAC. It lets integration tests prove the whole construction end to end —
// every simulated read decrypts to the written plaintext and passes its MAC
// check, including across relevel re-encryptions and counter jumps — and
// lets tests inject tampering.
type contentStore struct {
	unit   *otp.Unit
	plain  map[int][8]uint64
	cipher map[int][8]uint64
	macs   map[int]uint64
	// version feeds deterministic plaintext generation per write.
	version map[int]uint64
	// transient holds per-block counts of armed transient (bus) faults:
	// the next N verifications of the block fail, then the fault clears.
	transient map[int]int
	// dropNext marks blocks whose next writeback is lost on the bus: the
	// logical contents advance but the DRAM image stays stale.
	dropNext map[int]bool
}

func newContentStore(unit *otp.Unit) *contentStore {
	return &contentStore{
		unit:      unit,
		plain:     make(map[int][8]uint64),
		cipher:    make(map[int][8]uint64),
		macs:      make(map[int]uint64),
		version:   make(map[int]uint64),
		transient: make(map[int]int),
		dropNext:  make(map[int]bool),
	}
}

// plaintextFor fabricates the block's logical contents: the workload layer
// does not carry data values, so the image derives them deterministically
// from the block index and write version.
func plaintextFor(i int, version uint64) [8]uint64 {
	var b [8]uint64
	for w := range b {
		x := uint64(i)*8 + uint64(w) + version*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		b[w] = x
	}
	return b
}

func (cs *contentStore) seal(i int, ctr, addr uint64, plain [8]uint64) {
	pad := cs.unit.RMCCPad(cs.unit.CounterOnly(ctr), addr)
	ct := plain
	pad.XorBlock(&ct)
	cs.cipher[i] = ct
	cs.macs[i] = cs.unit.BlockMAC(&ct, cs.unit.RMCCMacOTP(cs.unit.CounterOnly(ctr), addr))
	cs.plain[i] = plain
}

// writeBlock encrypts fresh contents for block i under ctr. An armed
// dropped-writeback fault advances the logical contents but leaves the DRAM
// image stale (sealed under the previous counter), so the next read fails
// verification.
func (cs *contentStore) writeBlock(i int, ctr, addr uint64) {
	cs.version[i]++
	plain := plaintextFor(i, cs.version[i])
	if cs.dropNext[i] {
		delete(cs.dropNext, i)
		cs.plain[i] = plain
		return
	}
	cs.seal(i, ctr, addr, plain)
}

// reencrypt re-seals the existing plaintext under a new counter (relevel or
// read-triggered counter jump: contents unchanged, pad changes).
func (cs *contentStore) reencrypt(i int, ctr, addr uint64) {
	plain, ok := cs.plain[i]
	if !ok {
		// Never-touched block: materialize initial contents first.
		plain = plaintextFor(i, 0)
		cs.plain[i] = plain
	}
	cs.seal(i, ctr, addr, plain)
}

// verifyRead decrypts block i under ctr and checks plaintext and MAC.
// Blocks never written are lazily installed (their DRAM image was sealed at
// initialization under the randomized counter).
func (cs *contentStore) verifyRead(i int, ctr, addr uint64) (plaintextOK, macOK bool) {
	if n := cs.transient[i]; n > 0 {
		// Armed transient fault: the fetched block arrives garbled off the
		// bus, independent of the stored image; a re-fetch may succeed.
		if n == 1 {
			delete(cs.transient, i)
		} else {
			cs.transient[i] = n - 1
		}
		return false, false
	}
	if _, ok := cs.cipher[i]; !ok {
		cs.reencrypt(i, ctr, addr)
	}
	ct := cs.cipher[i]
	pad := cs.unit.RMCCPad(cs.unit.CounterOnly(ctr), addr)
	pt := ct
	pad.XorBlock(&pt)
	plaintextOK = pt == cs.plain[i]
	mac := cs.unit.BlockMAC(&ct, cs.unit.RMCCMacOTP(cs.unit.CounterOnly(ctr), addr))
	macOK = mac == cs.macs[i]
	return plaintextOK, macOK
}

// rekey re-seals every tracked block under the new unit and the
// post-reboot counters (all zero), modeling the reboot's whole-memory
// re-encryption sweep. Armed transient/drop faults are cleared: the sweep
// rewrites every block.
func (cs *contentStore) rekey(unit *otp.Unit, store *counter.Store) {
	cs.unit = unit
	for i := range cs.cipher {
		if _, ok := cs.plain[i]; !ok {
			// Image injected without ground truth (e.g. a replayed
			// ciphertext): restore the block's logical contents.
			cs.plain[i] = plaintextFor(i, cs.version[i])
		}
	}
	for i, plain := range cs.plain {
		cs.seal(i, store.DataCounter(i), store.DataBlockAddr(i), plain)
	}
	cs.transient = make(map[int]int)
	cs.dropNext = make(map[int]bool)
}

// TamperCiphertext flips bits in block i's stored ciphertext, simulating a
// physical attack. The next read must fail its MAC check. Returns
// ErrContentsDisabled when the controller does not track contents.
func (mc *MC) TamperCiphertext(i int) error {
	if mc.contents == nil {
		return ErrContentsDisabled
	}
	if _, ok := mc.contents.cipher[i]; !ok {
		mc.contents.reencrypt(i, mc.store.DataCounter(i), mc.store.DataBlockAddr(i))
	}
	ct := mc.contents.cipher[i]
	// Odd-constant addition rather than XOR: repeated tampering never
	// round-trips back to the original ciphertext.
	ct[0] += 0xdeadbeef
	mc.contents.cipher[i] = ct
	// The recorded plaintext no longer matches either; keep it so the
	// decrypt-mismatch counter also fires.
	return nil
}

// ReplayOldCiphertext overwrites block i's DRAM image with a stale
// (ciphertext, MAC) pair captured earlier, simulating a replay attack; the
// counter has moved on, so the MAC check must fail. Returns
// ErrContentsDisabled when the controller does not track contents.
func (mc *MC) ReplayOldCiphertext(i int, oldCipher [8]uint64, oldMAC uint64) error {
	if mc.contents == nil {
		return ErrContentsDisabled
	}
	mc.contents.cipher[i] = oldCipher
	mc.contents.macs[i] = oldMAC
	return nil
}

// SnapshotCiphertext captures block i's current DRAM image for replay
// tests. Without TrackContents it returns zero values (nothing to
// snapshot).
func (mc *MC) SnapshotCiphertext(i int) ([8]uint64, uint64) {
	if mc.contents == nil {
		return [8]uint64{}, 0
	}
	if _, ok := mc.contents.cipher[i]; !ok {
		mc.contents.reencrypt(i, mc.store.DataCounter(i), mc.store.DataBlockAddr(i))
	}
	return mc.contents.cipher[i], mc.contents.macs[i]
}
