package engine

import "rmcc/internal/crypto/otp"

// contentStore maintains a functional image of memory: the plaintext the
// CPU believes is stored, the ciphertext actually in DRAM, and each block's
// MAC. It lets integration tests prove the whole construction end to end —
// every simulated read decrypts to the written plaintext and passes its MAC
// check, including across relevel re-encryptions and counter jumps — and
// lets tests inject tampering.
type contentStore struct {
	unit   *otp.Unit
	plain  map[int][8]uint64
	cipher map[int][8]uint64
	macs   map[int]uint64
	// version feeds deterministic plaintext generation per write.
	version map[int]uint64
}

func newContentStore(unit *otp.Unit) *contentStore {
	return &contentStore{
		unit:    unit,
		plain:   make(map[int][8]uint64),
		cipher:  make(map[int][8]uint64),
		macs:    make(map[int]uint64),
		version: make(map[int]uint64),
	}
}

// plaintextFor fabricates the block's logical contents: the workload layer
// does not carry data values, so the image derives them deterministically
// from the block index and write version.
func plaintextFor(i int, version uint64) [8]uint64 {
	var b [8]uint64
	for w := range b {
		x := uint64(i)*8 + uint64(w) + version*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		b[w] = x
	}
	return b
}

func (cs *contentStore) seal(i int, ctr, addr uint64, plain [8]uint64) {
	pad := cs.unit.RMCCPad(cs.unit.CounterOnly(ctr), addr)
	ct := plain
	pad.XorBlock(&ct)
	cs.cipher[i] = ct
	cs.macs[i] = cs.unit.BlockMAC(&ct, cs.unit.RMCCMacOTP(cs.unit.CounterOnly(ctr), addr))
	cs.plain[i] = plain
}

// writeBlock encrypts fresh contents for block i under ctr.
func (cs *contentStore) writeBlock(i int, ctr, addr uint64) {
	cs.version[i]++
	cs.seal(i, ctr, addr, plaintextFor(i, cs.version[i]))
}

// reencrypt re-seals the existing plaintext under a new counter (relevel or
// read-triggered counter jump: contents unchanged, pad changes).
func (cs *contentStore) reencrypt(i int, ctr, addr uint64) {
	plain, ok := cs.plain[i]
	if !ok {
		// Never-touched block: materialize initial contents first.
		plain = plaintextFor(i, 0)
		cs.plain[i] = plain
	}
	cs.seal(i, ctr, addr, plain)
}

// verifyRead decrypts block i under ctr and checks plaintext and MAC.
// Blocks never written are lazily installed (their DRAM image was sealed at
// initialization under the randomized counter).
func (cs *contentStore) verifyRead(i int, ctr, addr uint64) (plaintextOK, macOK bool) {
	if _, ok := cs.cipher[i]; !ok {
		cs.reencrypt(i, ctr, addr)
	}
	ct := cs.cipher[i]
	pad := cs.unit.RMCCPad(cs.unit.CounterOnly(ctr), addr)
	pt := ct
	pad.XorBlock(&pt)
	plaintextOK = pt == cs.plain[i]
	mac := cs.unit.BlockMAC(&ct, cs.unit.RMCCMacOTP(cs.unit.CounterOnly(ctr), addr))
	macOK = mac == cs.macs[i]
	return plaintextOK, macOK
}

// TamperCiphertext flips bits in block i's stored ciphertext, simulating a
// physical attack. The next read must fail its MAC check.
func (mc *MC) TamperCiphertext(i int) {
	if mc.contents == nil {
		panic("engine: TamperCiphertext requires TrackContents")
	}
	if _, ok := mc.contents.cipher[i]; !ok {
		mc.contents.reencrypt(i, mc.store.DataCounter(i), mc.store.DataBlockAddr(i))
	}
	ct := mc.contents.cipher[i]
	ct[0] ^= 0xdeadbeef
	mc.contents.cipher[i] = ct
	// The recorded plaintext no longer matches either; keep it so the
	// decrypt-mismatch counter also fires.
}

// ReplayOldCiphertext overwrites block i's DRAM image with a stale
// (ciphertext, MAC) pair captured earlier, simulating a replay attack; the
// counter has moved on, so the MAC check must fail.
func (mc *MC) ReplayOldCiphertext(i int, oldCipher [8]uint64, oldMAC uint64) {
	if mc.contents == nil {
		panic("engine: ReplayOldCiphertext requires TrackContents")
	}
	mc.contents.cipher[i] = oldCipher
	mc.contents.macs[i] = oldMAC
}

// SnapshotCiphertext captures block i's current DRAM image for replay
// tests.
func (mc *MC) SnapshotCiphertext(i int) ([8]uint64, uint64) {
	if mc.contents == nil {
		panic("engine: SnapshotCiphertext requires TrackContents")
	}
	if _, ok := mc.contents.cipher[i]; !ok {
		mc.contents.reencrypt(i, mc.store.DataCounter(i), mc.store.DataBlockAddr(i))
	}
	return mc.contents.cipher[i], mc.contents.macs[i]
}
