package engine

import (
	"rmcc/internal/core"
	"rmcc/internal/mem/dram"
	"rmcc/internal/obs"
)

// Read processes one LLC read miss for the data block containing addr and
// returns everything it caused. The data fetch itself is implied (the
// caller issues it); Outcome carries the counter-chain fetches, memoization
// results, and side traffic.
func (mc *MC) Read(addr uint64) Outcome {
	out := Outcome{DataAddr: addr}
	mc.stats.Reads++
	mc.stats.TrafficBlocks[dram.KindData]++
	if mc.cfg.Mode == NonSecure {
		return out
	}
	out.Extra = mc.scratchExtra[:0]

	i := mc.store.DataBlockIndex(addr)
	l0Idx := mc.store.L0Index(i)
	ctrVal := mc.store.DataCounter(i)

	// §IV-D2 data-OSM tracing: the register is maintained inside the
	// counter store, so advances are detected by comparing around the
	// access (only when a tracer is attached).
	var preOSM uint64
	if mc.trace != nil {
		preOSM = mc.store.ObservedMax()
	}

	chain, l0Hit, l1Covered := mc.walkChain(l0Idx, false, true, &out.Extra, &out.OverflowTraffic)
	out.CtrCacheHit = l0Hit
	out.Chain = chain
	if l0Hit {
		mc.stats.CtrL0Hits++
		mc.trace.Emit(obs.EvCtrCacheHit, addr, ctrVal, 0)
	} else {
		mc.stats.CtrL0Misses++
		mc.stats.CtrL0ReadMisses++
		mc.trace.Emit(obs.EvCtrCacheMiss, addr, ctrVal, 0)
	}
	mc.chainLenHist.Observe(uint64(len(chain)))

	// Functional content check first: the fetched block is decrypted and
	// verified under its current counter before any read-triggered update
	// re-encrypts it (re-sealing before verification would erase tamper
	// evidence). Applies the configured RecoveryPolicy on failure.
	if mc.contents != nil {
		mc.verifyAndRecover(i, addr&^63)
	}

	if mc.cfg.Mode == RMCC && mc.l0Table != nil {
		// Figure-19 metric: every accessed counter value, hit or miss.
		mc.stats.L0MemoLookupsAll++
		res, src := mc.l0Table.Lookup(ctrVal, true)
		if src != core.MissSource && res != mc.unit.CounterOnly(ctrVal) {
			// Poisoned memoization entry: the stored AES result disagrees
			// with a fresh computation. Repair the entry in place and fall
			// back to the baseline AES pipeline (treat as a memo miss).
			mc.stats.MemoPoisonDetected++
			mc.recordViolation(&IntegrityError{
				Kind: ViolationMemoPoison, Addr: addr, Block: i, Recovered: true,
				Detail: "entry re-filled; served by the AES pipeline",
			})
			mc.l0Table.Repair(ctrVal)
			mc.stats.MemoPoisonRepaired++
			src = core.MissSource
		}
		if src != core.MissSource {
			mc.stats.L0MemoHitsAll++
			mc.trace.Emit(obs.EvMemoHit, addr, ctrVal, uint64(src))
		} else {
			mc.trace.Emit(obs.EvMemoMiss, addr, ctrVal, 0)
		}
		out.L0MemoHit = src != core.MissSource
		out.L0MemoSource = src
		if !l0Hit {
			// Figure-10 / headline metrics: counter misses only.
			mc.stats.L0MemoLookupsOnMiss++
			switch src {
			case core.GroupSource:
				mc.stats.L0MemoGroupHitsOnMiss++
			case core.MRUSource:
				mc.stats.L0MemoMRUHitsOnMiss++
			}
			if len(chain) > 0 {
				chain[0].MemoHit = out.L0MemoHit
				chain[0].MemoSource = src
			}
			if out.L0MemoHit && l1Covered {
				mc.stats.AcceleratedMisses++
				out.Accelerated = true
			}
			// §IV-C1: read-triggered memoization-aware update for blocks
			// that rarely write back, capped by the bandwidth budget.
			if !out.L0MemoHit && mc.cfg.L0Table.EnableReadUpdate {
				mc.readTriggeredUpdate(i, ctrVal, &out)
			}
		}
	}

	for _, t := range out.Extra {
		mc.addTraffic(t)
	}
	for _, t := range out.OverflowTraffic {
		mc.addTraffic(t)
	}
	if mc.trace != nil {
		if v := mc.store.ObservedMax(); v > preOSM {
			mc.trace.Emit(obs.EvOSMUpdate, 0, v, 0)
		}
	}
	mc.finish(&out)
	mc.scratchExtra = out.Extra
	return out
}

// verifyAndRecover decrypts and verifies block i, then applies the
// configured RecoveryPolicy to any failure: FailStop records the violation
// and moves on; RetryRefetch re-fetches up to RetryLimit times, clearing
// transient faults; RekeyRecover additionally escalates persistent failures
// to the whole-memory re-key (executed by finish).
func (mc *MC) verifyAndRecover(i int, blockAddr uint64) {
	ptOK, macOK := mc.contents.verifyRead(i, mc.store.DataCounter(i), blockAddr)
	if ptOK && macOK {
		return
	}
	firstPt, firstMac := ptOK, macOK
	recovered := false
	if mc.cfg.Recovery != FailStop {
		for r := 0; r < mc.cfg.RetryLimit; r++ {
			mc.stats.RetryAttempts++
			mc.stats.TrafficBlocks[dram.KindData]++ // the re-fetch
			ptOK, macOK = mc.contents.verifyRead(i, mc.store.DataCounter(i), blockAddr)
			if ptOK && macOK {
				recovered = true
				mc.stats.RetryRecoveries++
				break
			}
		}
	}
	kind, detail := ViolationMAC, "MAC check failed on read"
	if !firstMac && !firstPt {
		detail = "MAC and plaintext checks failed on read"
	} else if firstMac && !firstPt {
		kind, detail = ViolationPlaintext, "plaintext mismatch with passing MAC"
	}
	if recovered {
		mc.recordViolation(&IntegrityError{
			Kind: kind, Addr: blockAddr, Block: i, Recovered: true,
			Detail: "transient fault cleared by re-fetch",
		})
		return
	}
	// Persistent failure: keep the legacy tamper counters accurate, then
	// either fail-stop or escalate per policy.
	if !firstPt {
		mc.stats.DecryptMismatches++
	}
	if !firstMac {
		mc.stats.IntegrityFailures++
	}
	v := &IntegrityError{Kind: kind, Addr: blockAddr, Block: i, Detail: detail}
	if mc.cfg.Recovery == RekeyRecover {
		v.Recovered = true
		v.Detail += "; escalated to whole-memory re-key"
		mc.needRekey = true
		mc.stats.RekeyRecoveries++
	}
	mc.recordViolation(v)
}

// readTriggeredUpdate raises a read block's counter onto a memoized value
// so future reads of this (possibly never-written) block hit the table.
// The extra traffic — rewriting the re-encrypted block, or releveling its
// whole group — is charged against the L0 budget.
func (mc *MC) readTriggeredUpdate(i int, cur uint64, out *Outcome) {
	target, ok := mc.l0Table.NearestMemoized(cur)
	if !ok {
		return
	}
	if mc.store.CanEncodeData(i, target) {
		if !mc.l0Table.SpendBudget(1) {
			mc.stats.ReadUpdatesDenied++
			return
		}
		mc.store.SetDataCounter(i, target)
		if mc.contents != nil {
			mc.contents.reencrypt(i, target, mc.store.DataBlockAddr(i))
		}
		// The block is rewritten with its new ciphertext; its counter
		// block is already resident (we just walked the chain) and dirty.
		mc.markL0Dirty(i, out)
		out.Extra = append(out.Extra, Traffic{Addr: mc.store.DataBlockAddr(i), Write: true, Kind: dram.KindData})
		mc.stats.ReadUpdates++
		mc.stats.OverheadL0Blocks++
		return
	}
	// The jump would overflow the group: relevel everything onto the
	// memoized value if the budget allows the 2×coverage transfers.
	groupMax := mc.groupMax(i)
	relevelTarget := target
	if relevelTarget <= groupMax {
		if t2, ok2 := mc.l0Table.NearestMemoized(groupMax); ok2 {
			relevelTarget = t2
		} else {
			mc.stats.ReadUpdatesDenied++
			return
		}
	}
	cost := 2 * mc.store.Coverage()
	if !mc.l0Table.SpendBudget(cost) {
		mc.stats.ReadUpdatesDenied++
		return
	}
	mc.relevelData(i, relevelTarget, out, dram.KindOverflowL0)
	mc.stats.ReadUpdates++
	mc.stats.ReadUpdateRelevels++
	mc.stats.OverheadL0Blocks += uint64(cost)
}

// groupMax returns the largest counter value in block i's L0 group.
func (mc *MC) groupMax(i int) uint64 {
	start, end := mc.store.GroupRange(mc.store.L0Index(i))
	var max uint64
	for b := start; b < end; b++ {
		if v := mc.store.DataCounter(b); v > max {
			max = v
		}
	}
	return max
}

// markL0Dirty dirties block i's L0 counter block in the counter cache
// (fetching it if a race evicted it), accounting any cascade.
func (mc *MC) markL0Dirty(i int, out *Outcome) {
	addr := mc.store.L0BlockAddr(mc.store.L0Index(i))
	mc.ensureCounterBlock(addr, true, &out.Extra, &out.OverflowTraffic)
}

// relevelData executes a group relevel: every covered block is re-encrypted
// under the target counter and rewritten (read + write per block).
func (mc *MC) relevelData(i int, target uint64, out *Outcome, kind dram.Kind) {
	blocks := mc.store.RelevelData(i, target)
	for _, b := range blocks {
		a := mc.store.DataBlockAddr(b)
		out.OverflowTraffic = append(out.OverflowTraffic,
			Traffic{Addr: a, Write: false, Kind: kind},
			Traffic{Addr: a, Write: true, Kind: kind},
		)
		if mc.contents != nil {
			mc.contents.reencrypt(b, target, a)
		}
	}
	mc.markL0Dirty(i, out)
}
