package engine

import (
	"rmcc/internal/mem/dram"
	"rmcc/internal/obs"
	"rmcc/internal/secmem/counter"
)

// Write processes one LLC writeback to the data block containing addr:
// counter update per the active policy, encryption and MAC of the block,
// and any overflow traffic. The block write itself is recorded in Extra.
func (mc *MC) Write(addr uint64) Outcome {
	out := Outcome{DataAddr: addr, Write: true}
	mc.stats.Writes++
	if mc.cfg.Mode == NonSecure {
		mc.stats.TrafficBlocks[dram.KindData]++
		return out
	}
	out.Extra = mc.scratchExtra[:0]

	i := mc.store.DataBlockIndex(addr)
	l0Idx := mc.store.L0Index(i)

	// §IV-D2 data-OSM tracing, as in Read: compare around the access.
	var preOSM uint64
	if mc.trace != nil {
		preOSM = mc.store.ObservedMax()
	}

	// Writes need the counter block resident (and dirty): encrypting the
	// block consumes and updates its counter.
	chain, l0Hit, _ := mc.walkChain(l0Idx, true, false, &out.Extra, &out.OverflowTraffic)
	out.CtrCacheHit = l0Hit
	out.Chain = chain
	if l0Hit {
		mc.stats.CtrL0Hits++
	} else {
		mc.stats.CtrL0Misses++
	}
	if mc.trace != nil {
		ev := obs.EvCtrCacheMiss
		if l0Hit {
			ev = obs.EvCtrCacheHit
		}
		mc.trace.Emit(ev, addr, mc.store.DataCounter(i), 1)
	}

	// 56-bit counter ceiling (paper §VII): when this write's increment — or
	// the relevel it could force — cannot be represented, the architecture
	// re-keys all of memory ("reboot") and the write proceeds in the fresh
	// epoch with every counter reset.
	if mc.store.DataCounter(i) >= counter.MaxCounter || mc.groupMax(i) >= counter.MaxCounter {
		mc.stats.CounterOverflows++
		mc.recordViolation(&IntegrityError{
			Kind: ViolationCounterOverflow, Addr: addr, Block: i, Recovered: true,
			Detail: "56-bit ceiling reached; whole-memory re-key",
		})
		mc.rekey(&out)
		// The re-key dropped the counter cache; bring the (fresh) counter
		// block back for the write itself.
		mc.ensureCounterBlock(mc.store.L0BlockAddr(l0Idx), true, &out.Extra, &out.OverflowTraffic)
	}

	cur := mc.store.DataCounter(i)
	next := cur + 1
	releveled := false

	if mc.cfg.Mode == RMCC && mc.l0Table != nil {
		if target, ok := mc.l0Table.NearestMemoized(cur); ok {
			switch {
			case target == next:
				// The memoized value is the natural increment: the common
				// steady state once a group sits inside a memoized window
				// (Figure 7).
			case mc.store.CanEncodeData(i, target):
				// A jump that stays encodable costs nothing extra: same
				// counter-block write, same data write.
				next = target
				mc.stats.WriteJumps++
			case !mc.store.CanEncodeData(i, next):
				// Baseline overflows too: relevel, landing directly on a
				// memoized value (§IV-C2) at no extra charge — the
				// baseline policy pays an equivalent relevel.
				relTarget := target
				if gm := mc.groupMax(i); relTarget <= gm {
					if t2, ok2 := mc.l0Table.NearestMemoized(gm); ok2 {
						relTarget = t2
					} else {
						relTarget = gm + 1
					}
				}
				mc.relevelData(i, relTarget, &out, dram.KindOverflowL0)
				releveled = true
				mc.stats.BaselineOverflows++
			default:
				// RMCC-induced overflow: only if the budget covers the
				// 2×coverage relevel traffic (§IV-C2), otherwise fall back
				// to the baseline +1.
				relTarget := target
				if gm := mc.groupMax(i); relTarget <= gm {
					t2, ok2 := mc.l0Table.NearestMemoized(gm)
					if !ok2 {
						break
					}
					relTarget = t2
				}
				cost := 2 * mc.store.Coverage()
				if mc.l0Table.SpendBudget(cost) {
					mc.relevelData(i, relTarget, &out, dram.KindOverflowL0)
					releveled = true
					mc.stats.WriteJumps++
					mc.stats.WriteJumpRelevels++
					mc.stats.OverheadL0Blocks += uint64(cost)
				} else {
					mc.stats.WriteJumpsDenied++
				}
			}
		}
	}

	if !releveled {
		if mc.store.CanEncodeData(i, next) {
			mc.store.SetDataCounter(i, next)
		} else {
			// Baseline overflow: relevel the group to one above its max.
			target := mc.groupMax(i) + 1
			mc.relevelData(i, target, &out, dram.KindOverflowL0)
			mc.stats.BaselineOverflows++
		}
	}

	// Encrypt the block under its new counter and write it (with its MAC,
	// co-located per Table I) to memory.
	if mc.contents != nil {
		mc.contents.writeBlock(i, mc.store.DataCounter(i), addr&^63)
	}
	out.Extra = append(out.Extra, Traffic{Addr: addr &^ 63, Write: true, Kind: dram.KindData})

	for _, t := range out.Extra {
		mc.addTraffic(t)
	}
	for _, t := range out.OverflowTraffic {
		mc.addTraffic(t)
	}
	if mc.trace != nil {
		if v := mc.store.ObservedMax(); v > preOSM {
			mc.trace.Emit(obs.EvOSMUpdate, 0, v, 0)
		}
	}
	mc.finish(&out)
	mc.scratchExtra = out.Extra
	return out
}
