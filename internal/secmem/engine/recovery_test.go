package engine

import (
	"errors"
	"strings"
	"testing"

	"rmcc/internal/rng"
	"rmcc/internal/secmem/counter"
)

// TestValidateRejectsBadConfigs table-drives Config.Validate across every
// invalid-field class and checks NewChecked surfaces ErrInvalidConfig.
func TestValidateRejectsBadConfigs(t *testing.T) {
	base := func() Config { return DefaultConfig(RMCC, counter.Morphable, 16<<20) }
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"bad mode", func(c *Config) { c.Mode = Mode(99) }, "mode"},
		{"bad recovery", func(c *Config) { c.Recovery = RecoveryPolicy(99) }, "recovery"},
		{"negative retry limit", func(c *Config) { c.RetryLimit = -1 }, "RetryLimit"},
		{"bad scheme", func(c *Config) { c.Scheme = counter.Scheme(99) }, "scheme"},
		{"zero memory", func(c *Config) { c.MemBytes = 0 }, "MemBytes"},
		{"unaligned memory", func(c *Config) { c.MemBytes = 100 }, "MemBytes"},
		{"bad counter cache", func(c *Config) { c.CounterCacheBytes = 0 }, "counter cache"},
		{"bad warm-start", func(c *Config) { c.WarmStartFrac = 1.5 }, "WarmStartFrac"},
		{"bad L0 table", func(c *Config) { c.L0Table.Groups = 0 }, "L0 table"},
		{"bad L1 table", func(c *Config) { c.L1Table.GroupSize = 0 }, "L1 table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted the bad config")
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Errorf("error %v does not wrap ErrInvalidConfig", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if _, nerr := NewChecked(cfg); nerr == nil {
				t.Error("NewChecked accepted the bad config")
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("Validate rejected the default config: %v", err)
	}
	if err := DefaultConfig(NonSecure, counter.Morphable, 0).Validate(); err != nil {
		t.Fatalf("Validate rejected non-secure with no memory: %v", err)
	}
}

// TestNewPanicsOnBadConfig keeps the legacy constructor contract.
func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on an invalid config")
		}
	}()
	cfg := DefaultConfig(RMCC, counter.Morphable, 16<<20)
	cfg.CounterCacheBytes = 0
	New(cfg)
}

// TestTamperSurfacesTypedViolation: under the default FailStop policy a
// tampered block yields an unrecovered ViolationMAC classified as
// ErrIntegrityViolation via Outcome.Err().
func TestTamperSurfacesTypedViolation(t *testing.T) {
	mc := testMC(t, Baseline, counter.Morphable, 16, nil)
	mc.Read(0x2000)
	i := mc.Store().DataBlockIndex(0x2000)
	if err := mc.TamperCiphertext(i); err != nil {
		t.Fatalf("TamperCiphertext: %v", err)
	}
	out := mc.Read(0x2000)
	if len(out.Violations) == 0 {
		t.Fatal("tampered read reported no violations")
	}
	v := out.Violations[0]
	if v.Kind != ViolationMAC || v.Recovered || v.Block != i {
		t.Fatalf("violation = %+v, want unrecovered ViolationMAC on block %d", v, i)
	}
	err := out.Err()
	if err == nil || !errors.Is(err, ErrIntegrityViolation) {
		t.Fatalf("Outcome.Err() = %v, want ErrIntegrityViolation", err)
	}
	if mc.Stats().ViolationsByKind[ViolationMAC] == 0 {
		t.Error("ViolationsByKind[MAC] not counted")
	}
}

// TestRetryRefetchClearsTransient: a one-shot bus fault is recovered by the
// bounded re-fetch and never reaches the legacy failure counters.
func TestRetryRefetchClearsTransient(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 16, func(c *Config) {
		c.Recovery = RetryRefetch
	})
	i := mc.Store().DataBlockIndex(0x3000)
	if err := mc.TamperTransient(i, 1); err != nil {
		t.Fatalf("TamperTransient: %v", err)
	}
	out := mc.Read(0x3000)
	if len(out.Violations) != 1 || !out.Violations[0].Recovered {
		t.Fatalf("violations = %+v, want one recovered", out.Violations)
	}
	if out.Err() != nil {
		t.Fatalf("Outcome.Err() = %v for a recovered violation", out.Err())
	}
	s := mc.Stats()
	if s.RetryRecoveries != 1 || s.RetryAttempts == 0 {
		t.Errorf("retry stats = %d recoveries / %d attempts, want 1 / >0", s.RetryRecoveries, s.RetryAttempts)
	}
	if s.IntegrityFailures != 0 || s.DecryptMismatches != 0 {
		t.Errorf("recovered transient hit legacy failure counters: %d/%d",
			s.IntegrityFailures, s.DecryptMismatches)
	}
	if out2 := mc.Read(0x3000); len(out2.Violations) != 0 {
		t.Errorf("second read still fails: %+v", out2.Violations)
	}
}

// TestRetryRefetchPersistentFailStops: persistent corruption exhausts the
// retries and fail-stops (no re-key under RetryRefetch).
func TestRetryRefetchPersistentFailStops(t *testing.T) {
	mc := testMC(t, Baseline, counter.Morphable, 16, func(c *Config) {
		c.Recovery = RetryRefetch
	})
	i := mc.Store().DataBlockIndex(0x4000)
	if err := mc.TamperCiphertext(i); err != nil {
		t.Fatalf("TamperCiphertext: %v", err)
	}
	out := mc.Read(0x4000)
	if len(out.Violations) != 1 || out.Violations[0].Recovered {
		t.Fatalf("violations = %+v, want one unrecovered", out.Violations)
	}
	if out.Rekeyed {
		t.Error("RetryRefetch escalated to a re-key")
	}
	s := mc.Stats()
	if s.RetryAttempts != uint64(mc.Config().RetryLimit) {
		t.Errorf("retry attempts = %d, want %d", s.RetryAttempts, mc.Config().RetryLimit)
	}
	if s.IntegrityFailures != 1 {
		t.Errorf("IntegrityFailures = %d, want 1", s.IntegrityFailures)
	}
}

// TestRekeyRecoverHealsPersistentTamper: RekeyRecover escalates to the
// whole-memory re-key and the machine verifies cleanly afterwards.
func TestRekeyRecoverHealsPersistentTamper(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 16, func(c *Config) {
		c.Recovery = RekeyRecover
	})
	r := rng.New(3)
	var addrs []uint64
	for n := 0; n < 500; n++ {
		a := r.Uint64n(16<<20) &^ 63
		mc.Write(a)
		addrs = append(addrs, a)
	}
	i := mc.Store().DataBlockIndex(addrs[0])
	if err := mc.TamperCiphertext(i); err != nil {
		t.Fatalf("TamperCiphertext: %v", err)
	}
	out := mc.Read(addrs[0])
	if !out.Rekeyed {
		t.Fatal("RekeyRecover did not re-key on persistent tamper")
	}
	if len(out.Violations) == 0 || !out.Violations[0].Recovered {
		t.Fatalf("violations = %+v, want recovered", out.Violations)
	}
	if mc.KeyEpoch() != 1 {
		t.Errorf("key epoch = %d, want 1", mc.KeyEpoch())
	}
	// Every previously written block must decrypt correctly in the new
	// epoch — including the tampered one (the re-key re-sealed it).
	pre := mc.Stats()
	for _, a := range addrs {
		if o := mc.Read(a); len(o.Violations) != 0 {
			t.Fatalf("post-rekey read of %#x failed: %v", a, o.Violations[0])
		}
	}
	post := mc.Stats()
	if post.IntegrityFailures != pre.IntegrityFailures || post.DecryptMismatches != pre.DecryptMismatches {
		t.Error("post-rekey reads hit the failure counters")
	}
}

// TestCounterExhaustionRebootDrill is the paper's §VII guarantee end to
// end: forcing a counter group to the 56-bit ceiling makes the next write
// re-key all of memory instead of reusing a pad; afterwards every tracked
// block decrypts correctly and memoization re-converges above 50%.
func TestCounterExhaustionRebootDrill(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 16, nil)
	r := rng.New(9)
	var addrs []uint64
	for n := 0; n < 2000; n++ {
		a := r.Uint64n(16<<20) &^ 63
		if n%3 == 0 {
			mc.Write(a)
		} else {
			mc.Read(a)
		}
		mc.OnEpochAccess()
		addrs = append(addrs, a)
	}

	target := addrs[0]
	if err := mc.ForceCounterCeiling(target); err != nil {
		t.Fatalf("ForceCounterCeiling: %v", err)
	}
	out := mc.Write(target)
	if !out.Rekeyed {
		t.Fatal("write at the ceiling did not re-key")
	}
	found := false
	for _, v := range out.Violations {
		if v.Kind == ViolationCounterOverflow && v.Recovered {
			found = true
		}
	}
	if !found {
		t.Fatalf("no recovered ViolationCounterOverflow on the outcome: %+v", out.Violations)
	}
	s := mc.Stats()
	if s.CounterOverflows == 0 || s.Rekeys != 1 || s.RekeyBlocks == 0 {
		t.Errorf("overflow/rekey stats = %d/%d/%d", s.CounterOverflows, s.Rekeys, s.RekeyBlocks)
	}
	if mc.Store().ObservedMax() > uint64(len(addrs)) {
		t.Errorf("counters not reset: observed max %d", mc.Store().ObservedMax())
	}

	// Post-reboot: every tracked block decrypts correctly...
	pre := mc.Stats()
	for _, a := range addrs {
		if o := mc.Read(a); len(o.Violations) != 0 {
			t.Fatalf("post-reboot read of %#x failed: %v", a, o.Violations[0])
		}
		mc.OnEpochAccess()
	}
	// ...and memoization re-converged: with all counters reset near zero
	// and the tables reseeded, the hit rate over the post-reboot reads
	// must clear 50%.
	post := mc.Stats()
	lookups := post.L0MemoLookupsAll - pre.L0MemoLookupsAll
	hits := post.L0MemoHitsAll - pre.L0MemoHitsAll
	if lookups == 0 {
		t.Fatal("no memo lookups after the reboot")
	}
	if rate := float64(hits) / float64(lookups); rate <= 0.5 {
		t.Errorf("post-reboot memo hit rate %.3f (%d/%d), want > 0.5", rate, hits, lookups)
	}
}

// TestPowerLossKeepsDecryptions: losing all volatile state must not lose
// data — counters persist, so every block still decrypts.
func TestPowerLossKeepsDecryptions(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 16, nil)
	r := rng.New(5)
	var addrs []uint64
	for n := 0; n < 300; n++ {
		a := r.Uint64n(16<<20) &^ 63
		mc.Write(a)
		addrs = append(addrs, a)
	}
	mc.PowerLoss()
	if mc.Stats().PowerLosses != 1 {
		t.Error("power loss not counted")
	}
	for _, a := range addrs {
		if o := mc.Read(a); len(o.Violations) != 0 {
			t.Fatalf("post-power-loss read of %#x failed: %v", a, o.Violations[0])
		}
	}
	if mc.KeyEpoch() != 0 {
		t.Error("power loss must not re-key")
	}
}

// TestMetadataCorruptionTyped: a poisoned counter-cache line is dropped
// with a typed ErrMetadataCorruption instead of the old panic.
func TestMetadataCorruptionTyped(t *testing.T) {
	mc := testMC(t, Baseline, counter.Morphable, 16, nil)
	bogus := uint64(1) << 41
	mc.PoisonCounterCache(bogus)
	mc.EvictCounterLine(bogus)
	out := mc.Read(0x1000)
	var hit *IntegrityError
	for _, v := range out.Violations {
		if v.Kind == ViolationMetadataAddr {
			hit = v
		}
	}
	if hit == nil {
		t.Fatalf("no ViolationMetadataAddr surfaced: %+v", out.Violations)
	}
	if !errors.Is(hit, ErrMetadataCorruption) {
		t.Error("violation does not classify as ErrMetadataCorruption")
	}
	if !hit.Recovered {
		t.Error("dropped line should be marked recovered")
	}
	if mc.Stats().MetadataCorruptions == 0 {
		t.Error("MetadataCorruptions not counted")
	}
}

// TestMemoPoisonDetectedAndRepaired: a poisoned table entry is caught by
// the cross-check, repaired, and served from the AES pipeline.
func TestMemoPoisonDetectedAndRepaired(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 16, nil)
	// Find a block whose counter value is live in the table.
	st := mc.Store()
	tbl := mc.L0Table()
	target := -1
	for i := 0; i < st.NumDataBlocks(); i++ {
		if tbl.Contains(st.DataCounter(i)) {
			target = i
			break
		}
	}
	if target < 0 {
		t.Skip("no block counter live in the warm-started table")
	}
	v := st.DataCounter(target)
	if !mc.PoisonMemoEntry(v) {
		t.Fatal("PoisonMemoEntry missed a live value")
	}
	out := mc.Read(st.DataBlockAddr(target))
	found := false
	for _, viol := range out.Violations {
		if viol.Kind == ViolationMemoPoison && viol.Recovered && errors.Is(viol, ErrMemoCorruption) {
			found = true
		}
	}
	if !found {
		t.Fatalf("poison not flagged: %+v", out.Violations)
	}
	s := mc.Stats()
	if s.MemoPoisonDetected != 1 || s.MemoPoisonRepaired != 1 {
		t.Errorf("poison stats = %d/%d, want 1/1", s.MemoPoisonDetected, s.MemoPoisonRepaired)
	}
	// The repair re-filled the entry: the next read of the same value is
	// clean.
	if out2 := mc.Read(st.DataBlockAddr(target)); len(out2.Violations) != 0 {
		t.Errorf("repaired entry still flagged: %+v", out2.Violations)
	}
}

// TestDuplicateWritebackBenign: re-issuing a writeback is idempotent and
// must not trip any detector.
func TestDuplicateWritebackBenign(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 16, nil)
	mc.Write(0x5000)
	i := mc.Store().DataBlockIndex(0x5000)
	if err := mc.DuplicateWriteback(i); err != nil {
		t.Fatalf("DuplicateWriteback: %v", err)
	}
	if out := mc.Read(0x5000); len(out.Violations) != 0 {
		t.Fatalf("duplicate writeback flagged: %+v", out.Violations)
	}
}

// TestContentsDisabledTyped: content-dependent injection without
// TrackContents returns ErrContentsDisabled instead of panicking.
func TestContentsDisabledTyped(t *testing.T) {
	cfg := DefaultConfig(Baseline, counter.Morphable, 16<<20)
	mc := New(cfg) // TrackContents off
	for name, err := range map[string]error{
		"TamperCiphertext": mc.TamperCiphertext(0),
		"TamperMAC":        mc.TamperMAC(0),
		"TamperTransient":  mc.TamperTransient(0, 1),
		"DropNext":         mc.DropNextWriteback(0),
		"Duplicate":        mc.DuplicateWriteback(0),
		"Replay":           mc.ReplayOldCiphertext(0, [8]uint64{}, 0),
	} {
		if !errors.Is(err, ErrContentsDisabled) {
			t.Errorf("%s: err = %v, want ErrContentsDisabled", name, err)
		}
	}
	if ct, mac := mc.SnapshotCiphertext(0); ct != ([8]uint64{}) || mac != 0 {
		t.Error("SnapshotCiphertext without contents should return zeros")
	}
}
