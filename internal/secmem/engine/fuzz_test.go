package engine

import (
	"testing"

	"rmcc/internal/secmem/counter"
)

// FuzzEngineFaultSequence drives an arbitrary interleaving of reads,
// writes, tamper injections, replays, and architectural fault events
// against one controller and asserts the two hard robustness properties:
//
//  1. no operation sequence panics (every failure is a typed violation);
//  2. every persistent tamper is flagged on the very next read of the
//     tampered block.
//
// Each op byte selects an action; the following byte selects its target
// block, so go's fuzzer can minimize adversarial interleavings.
func FuzzEngineFaultSequence(f *testing.F) {
	f.Add(uint8(0), []byte{0, 1, 1, 2, 2, 3, 3, 4})
	f.Add(uint8(1), []byte{4, 0, 5, 0, 6, 0, 7, 0, 0, 0})
	f.Add(uint8(2), []byte{8, 9, 9, 1, 10, 2, 11, 3, 0, 1, 1, 1})
	f.Add(uint8(0), []byte{2, 200, 0, 200, 3, 100, 1, 100, 12, 0})

	f.Fuzz(func(t *testing.T, policy uint8, ops []byte) {
		cfg := DefaultConfig(RMCC, counter.Morphable, 4<<20)
		cfg.TrackContents = true
		cfg.Recovery = RecoveryPolicy(int(policy) % 3)
		cfg.L0Table.EpochAccesses = 1000
		cfg.L1Table.EpochAccesses = 1000
		mc, err := NewChecked(cfg)
		if err != nil {
			t.Fatalf("NewChecked: %v", err)
		}
		st := mc.Store()
		n := st.NumDataBlocks()

		// snapshots for replay injection, captured lazily.
		var snapBlock = -1
		var snapCT [8]uint64
		var snapMAC uint64
		var snapEpoch uint64

		for k := 0; k+1 < len(ops); k += 2 {
			b := int(ops[k+1]) % n
			addr := st.DataBlockAddr(b)
			switch ops[k] % 13 {
			case 0:
				mc.Read(addr)
				mc.OnEpochAccess()
			case 1:
				mc.Write(addr)
				mc.OnEpochAccess()
			case 2: // persistent ciphertext tamper: next read must flag
				if err := mc.TamperCiphertext(b); err != nil {
					t.Fatalf("TamperCiphertext: %v", err)
				}
				out := mc.Read(addr)
				if len(out.Violations) == 0 {
					t.Fatalf("tampered block %d read clean (policy %v)", b, cfg.Recovery)
				}
			case 3: // MAC tamper: next read must flag
				if err := mc.TamperMAC(b); err != nil {
					t.Fatalf("TamperMAC: %v", err)
				}
				out := mc.Read(addr)
				if len(out.Violations) == 0 {
					t.Fatalf("MAC-tampered block %d read clean (policy %v)", b, cfg.Recovery)
				}
			case 4: // snapshot for a later replay
				snapCT, snapMAC = mc.SnapshotCiphertext(b)
				snapBlock = b
				snapEpoch = mc.KeyEpoch()
			case 5: // replay: advance the counter, roll the image back
				if snapBlock >= 0 && snapEpoch == mc.KeyEpoch() {
					raddr := st.DataBlockAddr(snapBlock)
					mc.Write(raddr)
					if err := mc.ReplayOldCiphertext(snapBlock, snapCT, snapMAC); err != nil {
						t.Fatalf("ReplayOldCiphertext: %v", err)
					}
					out := mc.Read(raddr)
					if len(out.Violations) == 0 {
						t.Fatalf("replayed block %d read clean (policy %v)", snapBlock, cfg.Recovery)
					}
					snapBlock = -1
				}
			case 6:
				if err := mc.TamperTransient(b, 1+int(ops[k+1])%3); err != nil {
					t.Fatalf("TamperTransient: %v", err)
				}
				mc.Read(addr)
			case 7:
				mc.CorruptDataCounter(b, st.DataCounter(b)^uint64(ops[k+1]+1))
				mc.Read(addr)
			case 8:
				mc.PoisonMemoEntry(uint64(ops[k+1]))
				mc.Read(addr)
			case 9:
				mc.PoisonCounterCache(uint64(1)<<40 + uint64(ops[k+1])*64)
				mc.Read(addr)
			case 10:
				if err := mc.DropNextWriteback(b); err != nil {
					t.Fatalf("DropNextWriteback: %v", err)
				}
				mc.Write(addr)
				out := mc.Read(addr)
				if len(out.Violations) == 0 {
					t.Fatalf("dropped writeback on block %d read clean (policy %v)", b, cfg.Recovery)
				}
			case 11:
				mc.PowerLoss()
			case 12:
				if err := mc.ForceCounterCeiling(addr); err != nil {
					t.Fatalf("ForceCounterCeiling: %v", err)
				}
				out := mc.Write(addr)
				if !out.Rekeyed {
					t.Fatal("write at the 56-bit ceiling did not re-key")
				}
			}
		}
	})
}
