package engine

import (
	"strings"
	"testing"

	"rmcc/internal/obs"
	"rmcc/internal/secmem/counter"
)

// TestObservedTreeMaxMatchesStore regression-tests the §IV-D2 invariant the
// per-level observed-max registers exist for: after construction (randomized
// init + warm start) and after a burst of traffic, observedTreeMax[l] must
// upper-bound — and at boot exactly equal — the largest stored counter at
// level l. A register below the stored max would let the L1 table insert
// memoized groups at values the system claims it never reached; the
// historical hazard was warmStart rescanning only level 1.
func TestObservedTreeMaxMatchesStore(t *testing.T) {
	for _, scheme := range []counter.Scheme{counter.Morphable, counter.SGX} {
		mc := testMC(t, RMCC, scheme, 64, nil)
		checkTreeMax := func(when string, exact bool) {
			t.Helper()
			for l := 1; l <= mc.store.Levels(); l++ {
				var max uint64
				for c := 0; c < mc.treeChildren(l); c++ {
					if v := mc.store.TreeCounter(l, c); v > max {
						max = v
					}
				}
				got := mc.observedTreeMax[l]
				if exact && got != max {
					t.Fatalf("%s %s: observedTreeMax[%d] = %d, stored max = %d", scheme, when, l, got, max)
				}
				if !exact && got < max {
					t.Fatalf("%s %s: observedTreeMax[%d] = %d under-reads stored max %d", scheme, when, l, got, max)
				}
			}
		}
		checkTreeMax("at boot", true)
		for i := 0; i < 20_000; i++ {
			mc.Write(uint64(i%4096) * 64)
			mc.OnEpochAccess()
		}
		// After traffic the registers may exceed the stored max at levels
		// the incremental paths do not track, but must never under-read.
		checkTreeMax("after writes", false)
		if mc.observedTreeMax[1] < treeMaxAtLevel(mc, 1) {
			t.Fatalf("%s: level-1 register under-reads after writes", scheme)
		}
	}
}

func treeMaxAtLevel(mc *MC, l int) uint64 {
	var max uint64
	for c := 0; c < mc.treeChildren(l); c++ {
		if v := mc.store.TreeCounter(l, c); v > max {
			max = v
		}
	}
	return max
}

// TestRegisterMetricsViewsMatchStats drives traffic with a registry and
// tracer attached and cross-checks three layers against each other: the
// legacy Stats() accessors (the source of truth), the registry's func-backed
// views, and the tracer's per-kind counts.
func TestRegisterMetricsViewsMatchStats(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 64, nil)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 12)
	mc.RegisterMetrics(reg)
	mc.SetTracer(tr)

	for i := 0; i < 50_000; i++ {
		a := uint64(i%8192) * 64
		if i%3 == 0 {
			mc.Write(a)
		} else {
			mc.Read(a)
		}
		mc.OnEpochAccess()
	}

	s := mc.Stats()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	prom := sb.String()
	for _, want := range []string{
		"# TYPE rmcc_engine_reads_total counter",
		"# TYPE rmcc_engine_observed_max gauge",
		"# TYPE rmcc_engine_read_chain_depth histogram",
		`rmcc_memo_table_lookups_total{table="l0"}`,
		`rmcc_engine_traffic_blocks_total{kind="data"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus export missing %q", want)
		}
	}

	// Tracer cross-checks: every processed access emitted exactly one
	// counter-cache event, and memo hit+miss events cover the Figure-19
	// lookups.
	hits := tr.CountByKind(obs.EvCtrCacheHit)
	misses := tr.CountByKind(obs.EvCtrCacheMiss)
	if hits != s.CtrL0Hits || misses != s.CtrL0Misses {
		t.Errorf("tracer ctr-cache counts (%d hit / %d miss) != stats (%d / %d)",
			hits, misses, s.CtrL0Hits, s.CtrL0Misses)
	}
	memoEvents := tr.CountByKind(obs.EvMemoHit) + tr.CountByKind(obs.EvMemoMiss)
	if memoEvents != s.L0MemoLookupsAll {
		t.Errorf("tracer memo events %d != L0MemoLookupsAll %d", memoEvents, s.L0MemoLookupsAll)
	}
	if tr.CountByKind(obs.EvMemoHit) != s.L0MemoHitsAll {
		t.Errorf("tracer memo hits %d != L0MemoHitsAll %d",
			tr.CountByKind(obs.EvMemoHit), s.L0MemoHitsAll)
	}

	// The chain-depth histogram observed every processed read.
	if mc.chainLenHist.Count() != s.Reads {
		t.Errorf("chain histogram count %d != reads %d", mc.chainLenHist.Count(), s.Reads)
	}
}

// TestStatsUnchangedByObservation pins the "thin views" contract: attaching
// a registry and tracer must not change a single engine statistic — the
// rendered experiment tables derive from Stats() and must stay
// byte-identical with observability on.
func TestStatsUnchangedByObservation(t *testing.T) {
	run := func(observe bool) Stats {
		mc := testMC(t, RMCC, counter.Morphable, 64, nil)
		if observe {
			mc.RegisterMetrics(obs.NewRegistry())
			mc.SetTracer(obs.NewTracer(1 << 10))
		}
		for i := 0; i < 30_000; i++ {
			a := uint64(i%4096) * 64
			if i%4 == 0 {
				mc.Write(a)
			} else {
				mc.Read(a)
			}
			mc.OnEpochAccess()
		}
		return mc.Stats()
	}
	plain, observed := run(false), run(true)
	if plain != observed {
		t.Fatalf("observation changed engine statistics:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}

// TestReadHitPathAllocFreeObserved enforces the acceptance criterion that
// the read-hit path stays allocation-free with a registry and tracer
// attached (BenchmarkEngineReadHitObserved measures the time cost).
func TestReadHitPathAllocFreeObserved(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 64, nil)
	mc.RegisterMetrics(obs.NewRegistry())
	mc.SetTracer(obs.NewTracer(obs.DefaultTracerCap))
	mc.Read(0x100000)
	var i uint64
	allocs := testing.AllocsPerRun(2000, func() {
		mc.Read(0x100000 + (i&63)*64)
		i++
	})
	if allocs != 0 {
		t.Fatalf("read-hit path allocates %.1f/op with observation attached, want 0", allocs)
	}
}
