package engine

import (
	"bytes"
	"errors"
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/snapshot"
)

// tinyConfig keeps fuzz/test controllers cheap to build (1024 data blocks).
func tinyConfig() Config {
	cfg := DefaultConfig(RMCC, counter.SGX, 1<<16)
	cfg.CounterCacheBytes = 8 << 10
	cfg.CounterCacheWays = 8
	cfg.TrackContents = true
	return cfg
}

// warmTinyMC builds a small controller with some traffic so every state
// structure (counters, cache lines, memo tables, contents image) is
// non-trivial.
func warmTinyMC(t testing.TB) *MC {
	mc := New(tinyConfig())
	for i := 0; i < 600; i++ {
		addr := uint64(i%1024) * 64
		if i%3 == 0 {
			mc.Write(addr)
		} else {
			mc.Read(addr)
		}
		mc.OnEpochAccess()
	}
	return mc
}

func TestEngineSaveLoadRoundTrip(t *testing.T) {
	mc := warmTinyMC(t)
	var buf bytes.Buffer
	if err := mc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mc2 := New(tinyConfig())
	if err := mc2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if mc2.Stats() != mc.Stats() {
		t.Fatalf("stats differ after restore:\n%+v\n%+v", mc2.Stats(), mc.Stats())
	}
	// Continued identical traffic must produce identical state: drive both
	// and compare re-saved bytes.
	for i := 0; i < 300; i++ {
		addr := uint64((i*7)%1024) * 64
		mc.Write(addr)
		mc.OnEpochAccess()
		mc2.Write(addr)
		mc2.OnEpochAccess()
	}
	var a, b bytes.Buffer
	if err := mc.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := mc2.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("restored controller diverged from original under identical traffic")
	}
}

func TestEngineLoadConfigMismatch(t *testing.T) {
	mc := warmTinyMC(t)
	var buf bytes.Buffer
	if err := mc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := tinyConfig()
	other.Scheme = counter.Morphable
	if err := New(other).Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, snapshot.ErrSnapshotConfigMismatch) {
		t.Fatalf("scheme mismatch: %v", err)
	}
	nonSec := DefaultConfig(NonSecure, counter.SGX, 1<<16)
	if err := New(nonSec).Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, snapshot.ErrSnapshotConfigMismatch) {
		t.Fatalf("mode mismatch: %v", err)
	}
}

// FuzzLoadSnapshot feeds arbitrary, truncated, and bit-flipped bytes into
// MC.Load: every outcome must be nil or one of the three typed snapshot
// errors — never a panic, never an untyped error (the crash-recovery path
// in rmccd classifies on exactly these).
func FuzzLoadSnapshot(f *testing.F) {
	var valid bytes.Buffer
	if err := warmTinyMC(f).Save(&valid); err != nil {
		f.Fatal(err)
	}
	vb := valid.Bytes()
	f.Add(vb)
	f.Add([]byte{})
	f.Add(vb[:16])
	f.Add(vb[:len(vb)/2])
	for _, off := range []int{0, 8, 12, 30, 40, 60, len(vb) / 2, len(vb) - 2} {
		mut := append([]byte(nil), vb...)
		mut[off] ^= 0x41
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mc := New(tinyConfig())
		err := mc.Load(bytes.NewReader(data))
		if err == nil {
			return
		}
		if !errors.Is(err, snapshot.ErrSnapshotCorrupt) &&
			!errors.Is(err, snapshot.ErrSnapshotVersion) &&
			!errors.Is(err, snapshot.ErrSnapshotConfigMismatch) {
			t.Fatalf("untyped load error: %v", err)
		}
	})
}
