package engine

import (
	"errors"
	"fmt"

	"rmcc/internal/obs"
)

// Sentinel errors for the failure classes the memory controller can hit.
// Concrete violations carry an *IntegrityError whose Unwrap resolves to one
// of these, so callers classify with errors.Is.
var (
	// ErrInvalidConfig wraps every Config.Validate failure.
	ErrInvalidConfig = errors.New("engine: invalid configuration")
	// ErrIntegrityViolation covers MAC and plaintext verification failures
	// on data blocks (tamper, replay, corrupted counters).
	ErrIntegrityViolation = errors.New("engine: integrity violation")
	// ErrCounterOverflow marks a counter reaching the architectural 56-bit
	// ceiling, forcing the whole-memory re-key ("reboot", paper §VII).
	ErrCounterOverflow = errors.New("engine: counter reached the 56-bit ceiling")
	// ErrMetadataCorruption marks a counter-cache line whose address does
	// not map to any metadata block (corrupted tag or injected garbage).
	ErrMetadataCorruption = errors.New("engine: counter cache held a non-metadata address")
	// ErrMemoCorruption marks a memoization-table entry whose stored AES
	// result disagrees with a fresh computation (poisoned SRAM).
	ErrMemoCorruption = errors.New("engine: memoization table entry corrupted")
	// ErrContentsDisabled is returned by content-image operations (tamper
	// injection, snapshots) when the controller was built without
	// TrackContents.
	ErrContentsDisabled = errors.New("engine: operation requires TrackContents")
)

// ViolationKind classifies an integrity violation.
type ViolationKind int

// Violation kinds, in severity order.
const (
	// ViolationMAC: a data block failed its MAC check on read.
	ViolationMAC ViolationKind = iota
	// ViolationPlaintext: a data block decrypted to the wrong plaintext
	// while its MAC still passed (should not happen with honest MACs; kept
	// separate so the functional model can distinguish).
	ViolationPlaintext
	// ViolationMetadataAddr: the counter cache held an address that maps to
	// no metadata block.
	ViolationMetadataAddr
	// ViolationMemoPoison: a memoization-table hit returned a result that
	// disagrees with a fresh AES computation.
	ViolationMemoPoison
	// ViolationCounterOverflow: a counter update would exceed the 56-bit
	// ceiling.
	ViolationCounterOverflow

	// NumViolationKinds sizes per-kind stats arrays.
	NumViolationKinds
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case ViolationMAC:
		return "MAC mismatch"
	case ViolationPlaintext:
		return "plaintext mismatch"
	case ViolationMetadataAddr:
		return "metadata-address corruption"
	case ViolationMemoPoison:
		return "memo-table poison"
	case ViolationCounterOverflow:
		return "counter overflow"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// sentinel returns the errors.Is target for the kind.
func (k ViolationKind) sentinel() error {
	switch k {
	case ViolationMetadataAddr:
		return ErrMetadataCorruption
	case ViolationMemoPoison:
		return ErrMemoCorruption
	case ViolationCounterOverflow:
		return ErrCounterOverflow
	default:
		return ErrIntegrityViolation
	}
}

// IntegrityError is one detected integrity violation, surfaced on the
// Outcome of the access that detected it.
type IntegrityError struct {
	Kind ViolationKind
	// Addr is the byte address involved (data block address for data
	// violations, the corrupt cache-line address for metadata violations).
	Addr uint64
	// Block is the data block index for data violations, -1 otherwise.
	Block int
	// Recovered reports that the configured RecoveryPolicy repaired the
	// damage in-line (retry succeeded, entry re-filled, or re-key ran).
	Recovered bool
	// Detail carries human-readable context.
	Detail string
}

// Error formats the violation.
func (e *IntegrityError) Error() string {
	state := "unrecovered"
	if e.Recovered {
		state = "recovered"
	}
	if e.Detail != "" {
		return fmt.Sprintf("%v at %#x (%s): %s", e.Kind, e.Addr, state, e.Detail)
	}
	return fmt.Sprintf("%v at %#x (%s)", e.Kind, e.Addr, state)
}

// Unwrap resolves to the kind's sentinel so errors.Is classifies.
func (e *IntegrityError) Unwrap() error { return e.Kind.sentinel() }

// RecoveryPolicy selects how the controller responds to a detected
// integrity violation (paper §VII assumes detection halts or recovers the
// machine; the fault campaign exercises each response).
type RecoveryPolicy int

// Recovery policies.
const (
	// FailStop records the violation and continues without repair: the
	// corrupted block keeps failing verification. The strictest — and the
	// default — response.
	FailStop RecoveryPolicy = iota
	// RetryRefetch re-fetches and re-verifies the block up to RetryLimit
	// times, clearing transient (bus) faults; persistent corruption then
	// fail-stops.
	RetryRefetch
	// RekeyRecover escalates persistent violations to the whole-memory
	// re-key/reboot after retries are exhausted, restoring a verifiable
	// state at the cost of re-encrypting all of memory.
	RekeyRecover
)

// String names the policy.
func (p RecoveryPolicy) String() string {
	switch p {
	case FailStop:
		return "fail-stop"
	case RetryRefetch:
		return "retry-refetch"
	case RekeyRecover:
		return "rekey-recover"
	default:
		return fmt.Sprintf("RecoveryPolicy(%d)", int(p))
	}
}

// recordViolation tallies a violation and queues it for the Outcome of the
// access being processed.
func (mc *MC) recordViolation(v *IntegrityError) {
	if v.Kind >= 0 && v.Kind < NumViolationKinds {
		mc.stats.ViolationsByKind[v.Kind]++
	}
	if mc.trace != nil {
		var rec uint64
		if v.Recovered {
			rec = 1
		}
		mc.trace.Emit(obs.EvFaultDetected, v.Addr, uint64(v.Kind), rec)
		if v.Recovered {
			mc.trace.Emit(obs.EvFaultRecovered, v.Addr, uint64(v.Kind), 0)
		}
	}
	mc.pending = append(mc.pending, v)
}
