package engine

import (
	"testing"

	"rmcc/internal/obs"
	"rmcc/internal/secmem/counter"
)

// BenchmarkEngineReadHit measures the counter-cache-hit read path, the
// engine call dominating warm sweeps. The scratch-buffer reuse keeps it
// allocation-free.
func BenchmarkEngineReadHit(b *testing.B) {
	mc := testMC(b, RMCC, counter.Morphable, 64, nil)
	mc.Read(0x100000) // warm the counter block
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Read(0x100000 + uint64(i&63)*64)
	}
}

// BenchmarkEngineReadHitObserved is BenchmarkEngineReadHit with a metrics
// registry and event tracer attached — the acceptance bar for the
// observability layer is that this stays 0 B/op and within noise of the
// unobserved benchmark.
func BenchmarkEngineReadHitObserved(b *testing.B) {
	mc := testMC(b, RMCC, counter.Morphable, 64, nil)
	mc.RegisterMetrics(obs.NewRegistry())
	mc.SetTracer(obs.NewTracer(obs.DefaultTracerCap))
	mc.Read(0x100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Read(0x100000 + uint64(i&63)*64)
	}
}

// BenchmarkEngineReadMiss measures the counter-cache-miss read path (chain
// walk + memo lookup) by striding across distinct counter-block groups so
// the cache thrashes.
func BenchmarkEngineReadMiss(b *testing.B) {
	mc := testMC(b, RMCC, counter.Morphable, 256, func(c *Config) { c.CounterCacheBytes = 8 << 10 })
	// One Morphable L0 block covers 8 KiB of data; stride past it each
	// access and wrap well inside the 256 MiB space.
	const stride = 8 << 10
	const span = 128 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Read(uint64(i) * stride % span)
	}
}

// BenchmarkEngineWrite measures the write path (counter bump, re-encrypt,
// writeback accounting) with a warm counter cache.
func BenchmarkEngineWrite(b *testing.B) {
	mc := testMC(b, RMCC, counter.Morphable, 64, nil)
	mc.Write(0x200000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Write(0x200000 + uint64(i&63)*64)
	}
}
