package engine

import (
	"fmt"

	"rmcc/internal/mem/dram"
	"rmcc/internal/obs"
	"rmcc/internal/secmem/counter"
)

// This file holds the controller's fault-injection surface and the two
// architectural recovery events — power loss and the whole-memory re-key
// ("reboot") — that the internal/fault campaign driver exercises. Injection
// methods corrupt state the way a physical attack or hardware fault would;
// they never touch the detection machinery itself, so every detection seen
// in a campaign is earned by the real verification paths.

// TamperMAC flips bits in block i's stored MAC, simulating corruption of
// the MAC co-located with the ciphertext. The next read of the block must
// fail its MAC check. Requires TrackContents.
func (mc *MC) TamperMAC(i int) error {
	if mc.contents == nil {
		return ErrContentsDisabled
	}
	if _, ok := mc.contents.macs[i]; !ok {
		mc.contents.reencrypt(i, mc.store.DataCounter(i), mc.store.DataBlockAddr(i))
	}
	// Odd-constant addition rather than XOR: repeated tampering never
	// round-trips back to the original MAC.
	mc.contents.macs[i] += 0xdead
	return nil
}

// TamperTransient arms a transient (bus) fault on block i: the next reads
// of the block fail verification, after which the fault clears — the case
// the RetryRefetch policy exists for. Requires TrackContents.
func (mc *MC) TamperTransient(i int, reads int) error {
	if mc.contents == nil {
		return ErrContentsDisabled
	}
	if reads > 0 {
		mc.contents.transient[i] += reads
	}
	return nil
}

// CorruptDataCounter overwrites block i's stored counter without
// re-sealing the block: the DRAM counter bits flipped while the ciphertext
// stayed sealed under the old value, so the next read decrypts garbage and
// fails its MAC check.
func (mc *MC) CorruptDataCounter(i int, v uint64) {
	if mc.store != nil {
		mc.store.CorruptDataCounter(i, v)
	}
}

// CorruptTreeCounter overwrites the level-l counter protecting child c —
// integrity-tree metadata corruption. The checker's regression scan (and,
// for upward corruption, the encodability machinery) must flag it.
func (mc *MC) CorruptTreeCounter(l, c int, v uint64) {
	if mc.store != nil && l >= 1 && l <= mc.store.Levels() {
		mc.store.CorruptTreeCounter(l, c, v)
	}
}

// PoisonMemoEntry corrupts the memoized AES results for value in the L0
// table (an SRAM upset in the memoization array). Reports whether the
// value was live. Detection happens on the next lookup that serves it.
func (mc *MC) PoisonMemoEntry(value uint64) bool {
	if mc.l0Table == nil {
		return false
	}
	return mc.l0Table.Poison(value)
}

// PoisonCounterCache inserts a dirty line with an arbitrary (typically
// non-metadata) address into the counter cache — a corrupted tag. The
// corruption is detected when the line is written back (naturally, or via
// EvictCounterLine) and its address classifies to no metadata block. Any
// legitimate dirty victim displaced by the insertion is written back
// normally.
func (mc *MC) PoisonCounterCache(addr uint64) {
	if mc.ctrCache == nil {
		return
	}
	var extra, overflow []Traffic
	res := mc.ctrCache.Access(addr, true)
	if res.Evicted && res.Writeback {
		mc.writebackCounterBlock(res.VictimAddr, &extra, &overflow)
	}
	for _, t := range extra {
		mc.addTraffic(t)
	}
	for _, t := range overflow {
		mc.addTraffic(t)
	}
}

// EvictCounterLine force-evicts addr from the counter cache (a scrub),
// writing it back if dirty — the deterministic way to surface a poisoned
// line. Violations it detects appear on the next access's Outcome.
func (mc *MC) EvictCounterLine(addr uint64) {
	if mc.ctrCache == nil {
		return
	}
	present, dirty := mc.ctrCache.Invalidate(addr)
	if !present || !dirty {
		return
	}
	var extra, overflow []Traffic
	mc.writebackCounterBlock(addr, &extra, &overflow)
	for _, t := range extra {
		mc.addTraffic(t)
	}
	for _, t := range overflow {
		mc.addTraffic(t)
	}
}

// DropNextWriteback arms a dropped-writeback fault on block i: the next
// write to the block updates its counter and logical contents but the DRAM
// image is never written (a lost write). The following read must fail
// verification. Requires TrackContents.
func (mc *MC) DropNextWriteback(i int) error {
	if mc.contents == nil {
		return ErrContentsDisabled
	}
	// Materialize the current DRAM image now so the stale copy (sealed
	// under the pre-write counter) is what the post-write read fetches.
	if _, ok := mc.contents.cipher[i]; !ok {
		mc.contents.reencrypt(i, mc.store.DataCounter(i), mc.store.DataBlockAddr(i))
	}
	mc.contents.dropNext[i] = true
	mc.stats.DroppedWritebacks++
	return nil
}

// DuplicateWriteback re-issues block i's last DRAM write (a duplicated
// writeback). Writes are idempotent at this layer, so this must NOT cause
// a violation — it exists as the campaign's false-positive control.
// Requires TrackContents.
func (mc *MC) DuplicateWriteback(i int) error {
	if mc.contents == nil {
		return ErrContentsDisabled
	}
	if _, ok := mc.contents.cipher[i]; !ok {
		mc.contents.reencrypt(i, mc.store.DataCounter(i), mc.store.DataBlockAddr(i))
	}
	// Re-seal the identical plaintext under the identical counter: the
	// DRAM image is rewritten with the same bytes.
	mc.contents.reencrypt(i, mc.store.DataCounter(i), mc.store.DataBlockAddr(i))
	mc.stats.DuplicatedWritebacks++
	mc.stats.TrafficBlocks[dram.KindData]++
	return nil
}

// PowerLoss models a mid-run power cut: all volatile MC state — the
// counter cache and both memoization tables — is lost and comes back cold.
// Counters and memory contents persist (the model assumes write-through
// counter persistence, e.g. ADR-style flush-on-power-fail), so the system
// must resume with correct decryptions; only performance state is lost.
func (mc *MC) PowerLoss() {
	mc.stats.PowerLosses++
	if mc.cfg.Mode == NonSecure {
		return
	}
	mc.ctrCache = mc.newCounterCache()
	if mc.cfg.Mode == RMCC {
		mc.buildTables()
	}
	mc.pending = nil
	mc.needRekey = false
}

// ForceCounterCeiling raises the whole counter group of the block at addr
// to the architectural 56-bit ceiling (re-encrypting the covered blocks),
// so the next write to the group must trigger the re-key/reboot — the
// counter-exhaustion drill.
func (mc *MC) ForceCounterCeiling(addr uint64) error {
	if mc.store == nil {
		return fmt.Errorf("%w: non-secure mode has no counters", ErrInvalidConfig)
	}
	i := mc.store.DataBlockIndex(addr)
	if mc.store.DataCounter(i) >= counter.MaxCounter {
		return nil
	}
	blocks := mc.store.RelevelData(i, counter.MaxCounter)
	if mc.contents != nil {
		for _, b := range blocks {
			mc.contents.reencrypt(b, counter.MaxCounter, mc.store.DataBlockAddr(b))
		}
	}
	return nil
}

// Rekey forces the whole-memory re-key/reboot immediately (§VII): fresh
// keys, all counters reset, the OSM register and memoization tables
// cleared, every block re-encrypted. Returns an Outcome carrying the
// re-key marker and its traffic accounting.
func (mc *MC) Rekey() Outcome {
	var out Outcome
	if mc.cfg.Mode == NonSecure {
		return out
	}
	mc.rekey(&out)
	out.Violations = mc.pending
	mc.pending = nil
	return out
}

// rekey executes the re-key/reboot in place: new key epoch, counters and
// per-level max registers zeroed, counter cache and memoization tables
// cold, and — in the functional image — every tracked block re-sealed
// under the new keys. The traffic cost (read + rewrite of every data
// block) is charged to the KindOther category and RekeyBlocks.
func (mc *MC) rekey(out *Outcome) {
	mc.stats.Rekeys++
	mc.keyEpoch++
	mc.unit = mc.deriveUnit()
	mc.store.ResetCounters()
	for l := range mc.observedTreeMax {
		mc.observedTreeMax[l] = 0
	}
	mc.ctrCache = mc.newCounterCache()
	if mc.cfg.Mode == RMCC {
		mc.buildTables()
	}
	if mc.contents != nil {
		mc.contents.rekey(mc.unit, mc.store)
	}
	n := uint64(mc.store.NumDataBlocks())
	mc.stats.RekeyBlocks += 2 * n
	mc.stats.TrafficBlocks[dram.KindOther] += 2 * n
	mc.needRekey = false
	mc.trace.Emit(obs.EvRekey, 0, mc.keyEpoch, 0)
	out.Rekeyed = true
}

// finish completes an access: it executes any deferred re-key and drains
// the pending violations onto the Outcome.
func (mc *MC) finish(out *Outcome) {
	if mc.needRekey {
		mc.rekey(out)
	}
	if len(mc.pending) > 0 {
		out.Violations = append(out.Violations, mc.pending...)
		mc.pending = nil
	}
}
