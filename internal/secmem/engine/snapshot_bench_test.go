package engine

import (
	"bytes"
	"testing"

	"rmcc/internal/secmem/counter"
)

// warmEngine1M drives one million mixed accesses through a 64 MB RMCC
// controller — the "warm 1M-access engine" the snapshot latency budget is
// stated against.
func warmEngine1M(b *testing.B) *MC {
	b.Helper()
	cfg := DefaultConfig(RMCC, counter.Morphable, 64<<20)
	mc := New(cfg)
	blocks := uint64(cfg.MemBytes / counter.BlockBytes)
	// Strided mix: enough spatial reuse to exercise the counter cache,
	// enough spread to touch many counter groups.
	for i := uint64(0); i < 1_000_000; i++ {
		addr := ((i * 2654435761) % blocks) * counter.BlockBytes
		if i%3 == 0 {
			mc.Write(addr)
		} else {
			mc.Read(addr)
		}
		mc.OnEpochAccess()
	}
	return mc
}

func BenchmarkEngineSaveWarm1M(b *testing.B) {
	mc := warmEngine1M(b)
	var buf bytes.Buffer
	if err := mc.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := mc.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineLoadWarm1M(b *testing.B) {
	mc := warmEngine1M(b)
	var buf bytes.Buffer
	if err := mc.Save(&buf); err != nil {
		b.Fatal(err)
	}
	dst := New(mc.Config())
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
