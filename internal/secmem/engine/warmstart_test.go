package engine

import (
	"testing"

	"rmcc/internal/rng"
	"rmcc/internal/secmem/counter"
)

func TestWarmStartSeedsTableAndCounters(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 32, func(c *Config) {
		c.WarmStartFrac = 0.9
	})
	// The table must no longer be the boot 0..127 seed.
	if mc.L0Table().Contains(0) && mc.L0Table().MaxInTable() == 127 {
		t.Fatal("warm start left the boot table")
	}
	// Most blocks' counters should be memoized immediately.
	covered, total := 0, 0
	for i := 0; i < mc.Store().NumDataBlocks(); i += 97 {
		total++
		if mc.L0Table().Contains(mc.Store().DataCounter(i)) {
			covered++
		}
	}
	frac := float64(covered) / float64(total)
	if frac < 0.7 || frac > 0.99 {
		t.Fatalf("warm-start coverage = %.2f, want ~0.9 with a live remainder", frac)
	}
}

func TestWarmStartZeroDisables(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 32, func(c *Config) {
		c.WarmStartFrac = 0
	})
	// Boot table with randomized counters: essentially nothing covered.
	covered := 0
	for i := 0; i < mc.Store().NumDataBlocks(); i += 97 {
		if mc.L0Table().Contains(mc.Store().DataCounter(i)) {
			covered++
		}
	}
	if covered > 2 {
		t.Fatalf("cold start unexpectedly covered %d sampled blocks", covered)
	}
}

func TestWarmStartStateStillEncodable(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 32, nil)
	r := rng.New(3)
	// Every group must accept baseline writes without panicking and the
	// functional content checks must hold.
	for n := 0; n < 5000; n++ {
		addr := r.Uint64n(32<<20) &^ 63
		if n%3 == 0 {
			mc.Write(addr)
		} else {
			mc.Read(addr)
		}
	}
	s := mc.Stats()
	if s.DecryptMismatches+s.IntegrityFailures != 0 {
		t.Fatalf("functional violations after warm start: %+v", s)
	}
}

func TestWarmStartMemoHitsImmediately(t *testing.T) {
	mc := testMC(t, RMCC, counter.Morphable, 64, func(c *Config) {
		c.TrackContents = false
	})
	r := rng.New(9)
	for n := 0; n < 20000; n++ {
		mc.Read(r.Uint64n(64<<20) &^ 63)
		mc.OnEpochAccess()
	}
	if hit := mc.Stats().MemoHitRateOnMisses(); hit < 0.7 {
		t.Fatalf("warm-started memo hit rate = %.2f, want the steady-state regime", hit)
	}
}

func TestWarmStartKeepsWritesOnTable(t *testing.T) {
	// Figure-7 dynamic from a warm start: writes step +1 through memoized
	// windows, staying covered.
	mc := testMC(t, RMCC, counter.Morphable, 32, func(c *Config) {
		c.TrackContents = false
	})
	st := mc.Store()
	// Find a snapped block (counter in table).
	var blk int
	found := false
	for i := 0; i < st.NumDataBlocks(); i += 31 {
		if mc.L0Table().Contains(st.DataCounter(i)) {
			blk, found = i, true
			break
		}
	}
	if !found {
		t.Fatal("no snapped block found")
	}
	addr := st.DataBlockAddr(blk)
	onTable := 0
	const writes = 6
	for w := 0; w < writes; w++ {
		mc.Write(addr)
		if mc.L0Table().Contains(st.DataCounter(blk)) {
			onTable++
		}
	}
	if onTable < writes-2 {
		t.Fatalf("only %d/%d consecutive writes stayed memoized", onTable, writes)
	}
}
