package engine

import "rmcc/internal/mem/dram"

// Stats aggregates everything the figures need from the functional engine.
// All traffic counts are in 64-byte block transfers.
type Stats struct {
	Reads  uint64 // LLC read misses processed
	Writes uint64 // LLC writebacks processed

	// Counter cache behaviour.
	CtrL0Hits       uint64 // L0 counter block resident on access
	CtrL0Misses     uint64
	CtrL0ReadMisses uint64    // the subset of misses on read requests
	L1Misses        uint64    // L0 misses whose L1 node also missed
	ChainFetches    [8]uint64 // counter-chain fetches by level

	// Memoization, restricted to counter misses (Figure 10 and the §VI
	// "92 % of counter misses" headline).
	L0MemoLookupsOnMiss   uint64
	L0MemoGroupHitsOnMiss uint64
	L0MemoMRUHitsOnMiss   uint64
	L1MemoLookupsOnMiss   uint64
	L1MemoHitsOnMiss      uint64
	AcceleratedMisses     uint64 // L0 memo hit && L1 covered (cache or memo)

	// Memoization over all accessed counter values (Figure 19's metric).
	L0MemoLookupsAll uint64
	L0MemoHitsAll    uint64

	// Update-policy activity.
	ReadUpdates        uint64 // read-triggered counter jumps applied
	ReadUpdateRelevels uint64 // read-triggered jumps that releveled a group
	ReadUpdatesDenied  uint64 // skipped for lack of budget
	WriteJumps         uint64 // write-time jumps beyond +1
	WriteJumpRelevels  uint64 // write jumps that releveled (budget-charged)
	WriteJumpsDenied   uint64
	BaselineOverflows  uint64 // relevels the baseline policy would also pay
	TreeJumps          uint64

	// Traffic by kind, in block transfers (includes the data accesses
	// themselves so totals are comparable across modes).
	TrafficBlocks [dram.NumKinds]uint64

	// Overhead traffic charged to the RMCC budgets (Figures 16/20/22).
	OverheadL0Blocks uint64
	OverheadL1Blocks uint64

	// IntegrityFailures counts MAC check mismatches (tamper detection);
	// DecryptMismatches counts plaintext round-trip failures. Both must be
	// zero in untampered runs (enforced by integration tests).
	IntegrityFailures uint64
	DecryptMismatches uint64

	// Fault detection and recovery (see errors.go / fault.go).
	ViolationsByKind     [NumViolationKinds]uint64 // detections by class
	MetadataCorruptions  uint64                    // non-metadata addresses caught in the counter cache
	MemoPoisonDetected   uint64                    // poisoned memo entries caught at lookup
	MemoPoisonRepaired   uint64                    // poisoned entries re-filled in place
	RetryAttempts        uint64                    // re-fetches issued under RetryRefetch/RekeyRecover
	RetryRecoveries      uint64                    // violations cleared by a retry (transient faults)
	RekeyRecoveries      uint64                    // violations escalated to the re-key path
	CounterOverflows     uint64                    // 56-bit ceiling hits forcing a re-key
	Rekeys               uint64                    // whole-memory re-key/reboot events
	RekeyBlocks          uint64                    // block transfers spent re-encrypting memory
	DroppedWritebacks    uint64                    // injected lost writes
	DuplicatedWritebacks uint64                    // injected duplicate writes (benign)
	PowerLosses          uint64                    // injected power-loss events
}

// TotalTraffic returns total block transfers across all kinds.
func (s Stats) TotalTraffic() uint64 {
	var t uint64
	for _, v := range s.TrafficBlocks {
		t += v
	}
	return t
}

// CtrMissRate returns counter misses per processed read (Figure 3's
// per-LLC-miss counter miss rate when fed LLC misses).
func (s Stats) CtrMissRate() float64 {
	if tot := s.CtrL0Hits + s.CtrL0Misses; tot > 0 {
		return float64(s.CtrL0Misses) / float64(tot)
	}
	return 0
}

// MemoHitRateOnMisses returns the fraction of L0 counter misses whose value
// was memoized (Figure 10's bar height).
func (s Stats) MemoHitRateOnMisses() float64 {
	if s.L0MemoLookupsOnMiss == 0 {
		return 0
	}
	return float64(s.L0MemoGroupHitsOnMiss+s.L0MemoMRUHitsOnMiss) / float64(s.L0MemoLookupsOnMiss)
}

// MemoHitRateAll returns the fraction of all accessed counter values that
// were memoized (Figure 19's metric).
func (s Stats) MemoHitRateAll() float64 {
	if s.L0MemoLookupsAll == 0 {
		return 0
	}
	return float64(s.L0MemoHitsAll) / float64(s.L0MemoLookupsAll)
}

// AcceleratedRate returns the §VI headline: the fraction of counter misses
// (on reads — the requests with decryption/verification on their critical
// path) that RMCC accelerated.
func (s Stats) AcceleratedRate() float64 {
	if s.CtrL0ReadMisses == 0 {
		return 0
	}
	return float64(s.AcceleratedMisses) / float64(s.CtrL0ReadMisses)
}

// Stats returns a copy of the counters.
func (mc *MC) Stats() Stats { return mc.stats }

// ResetStats zeroes the engine counters (after warmup) without touching
// counter or cache state.
func (mc *MC) ResetStats() {
	mc.stats = Stats{}
	if mc.ctrCache != nil {
		mc.ctrCache.ResetStats()
	}
}

func (mc *MC) addTraffic(t Traffic) {
	mc.stats.TrafficBlocks[t.Kind]++
}
