// Package engine implements the secure memory controller: encryption,
// integrity verification, the MC counter cache, the integrity-tree walk,
// overflow (relevel) handling, and — when enabled — the RMCC memoization
// tables with their memoization-aware counter-update policy.
//
// The engine is *functional*: it decides what happens on each LLC miss
// (which counter blocks hit or miss, which memoizations hit, what extra
// traffic is generated) and keeps all counter and cache state. It carries
// no clock. The lifetime simulator consumes its outcomes directly (the
// Pintool analog); the detailed simulator converts each Outcome into DRAM
// requests and latency composition (the Gem5 analog).
package engine

import (
	"fmt"

	"rmcc/internal/core"
	"rmcc/internal/crypto/otp"
	"rmcc/internal/mem/cache"
	"rmcc/internal/mem/dram"
	"rmcc/internal/obs"
	"rmcc/internal/rng"
	"rmcc/internal/secmem/counter"
)

// Mode selects the protection level.
type Mode int

// Protection modes.
const (
	// NonSecure disables encryption and integrity entirely (the paper's
	// normalization baseline).
	NonSecure Mode = iota
	// Baseline protects memory with the configured counter scheme and a
	// counter cache, but no memoization.
	Baseline
	// RMCC adds the memoization tables and memoization-aware counter
	// update on top of Baseline.
	RMCC
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case NonSecure:
		return "non-secure"
	case Baseline:
		return "baseline"
	case RMCC:
		return "RMCC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes the memory controller.
type Config struct {
	Mode   Mode
	Scheme counter.Scheme
	// MemBytes is the protected data footprint (block-aligned).
	MemBytes uint64

	// CounterCacheBytes/Ways size the MC counter cache (Table I: 128 KB,
	// 32-way). It holds L0 counter blocks and integrity-tree nodes.
	CounterCacheBytes int
	CounterCacheWays  int

	// L0Table and L1Table configure the two memoization tables (RMCC mode).
	L0Table core.Config
	L1Table core.Config

	// KeyMaster seeds key derivation; AES256 selects 14-round AES for the
	// 22 ns sensitivity point.
	KeyMaster [16]byte
	AES256    bool

	// TrackContents maintains a real plaintext/ciphertext image of memory
	// and verifies every decryption and MAC check. Intended for tests and
	// small footprints: it costs ~128 B per touched block.
	TrackContents bool

	// InitSeed and Randomize control the paper's non-zero counter
	// initialization (§V Lifetime Characterization).
	InitSeed      uint64
	RandomizeInit bool

	// WarmStartFrac applies only to RMCC mode with randomized counters:
	// this fraction of counter groups starts releveled onto memoized
	// values, and the memoization tables are seeded with those values —
	// the steady state a long-running RMCC system reaches (the paper
	// measures after a 25-billion-instruction warmup and across whole
	// application lifetimes). Set to 0 to start cold and watch organic
	// convergence instead (the convergence experiment does exactly that).
	WarmStartFrac float64

	// Recovery selects the response to detected integrity violations
	// (fail-stop, retry-refetch, or re-key). Counter overflow at the
	// 56-bit ceiling always triggers the re-key/reboot regardless of this
	// knob — the architecture has no other sound response.
	Recovery RecoveryPolicy
	// RetryLimit bounds re-fetch attempts under RetryRefetch/RekeyRecover
	// (transient bus faults clear on re-read; persistent corruption
	// escalates). Zero disables retries.
	RetryLimit int
}

// Validate checks the configuration, wrapping every failure in
// ErrInvalidConfig so callers can classify with errors.Is.
func (cfg Config) Validate() error {
	if cfg.Mode < NonSecure || cfg.Mode > RMCC {
		return fmt.Errorf("%w: unknown mode %d", ErrInvalidConfig, int(cfg.Mode))
	}
	if cfg.Recovery < FailStop || cfg.Recovery > RekeyRecover {
		return fmt.Errorf("%w: unknown recovery policy %d", ErrInvalidConfig, int(cfg.Recovery))
	}
	if cfg.RetryLimit < 0 {
		return fmt.Errorf("%w: negative RetryLimit %d", ErrInvalidConfig, cfg.RetryLimit)
	}
	if cfg.Mode == NonSecure {
		return nil
	}
	if cfg.Scheme.Coverage() == 0 {
		return fmt.Errorf("%w: unknown counter scheme %d", ErrInvalidConfig, int(cfg.Scheme))
	}
	if cfg.MemBytes == 0 || cfg.MemBytes%counter.BlockBytes != 0 {
		return fmt.Errorf("%w: MemBytes %d not a positive multiple of %d",
			ErrInvalidConfig, cfg.MemBytes, counter.BlockBytes)
	}
	ccfg := cache.Config{
		SizeBytes: cfg.CounterCacheBytes,
		Ways:      cfg.CounterCacheWays,
		LineBytes: counter.BlockBytes,
	}
	if err := ccfg.Validate(); err != nil {
		return fmt.Errorf("%w: counter cache: %v", ErrInvalidConfig, err)
	}
	if cfg.WarmStartFrac < 0 || cfg.WarmStartFrac > 1 {
		return fmt.Errorf("%w: WarmStartFrac %v out of [0,1]", ErrInvalidConfig, cfg.WarmStartFrac)
	}
	if cfg.Mode == RMCC {
		if err := cfg.L0Table.Validate(); err != nil {
			return fmt.Errorf("%w: L0 table: %v", ErrInvalidConfig, err)
		}
		if err := cfg.L1Table.Validate(); err != nil {
			return fmt.Errorf("%w: L1 table: %v", ErrInvalidConfig, err)
		}
	}
	return nil
}

// DefaultConfig returns a Table-I configuration of the given mode/scheme.
func DefaultConfig(mode Mode, scheme counter.Scheme, memBytes uint64) Config {
	return Config{
		Mode:              mode,
		Scheme:            scheme,
		MemBytes:          memBytes,
		CounterCacheBytes: 128 << 10,
		CounterCacheWays:  32,
		L0Table:           core.DefaultConfig(),
		L1Table:           core.DefaultConfig(),
		KeyMaster:         [16]byte{0x52, 0x4d, 0x43, 0x43}, // "RMCC"
		InitSeed:          1,
		RandomizeInit:     true,
		WarmStartFrac:     0.9,
		RetryLimit:        2,
	}
}

// Traffic is one 64-byte DRAM transfer the MC generated beyond the data
// access itself.
type Traffic struct {
	Addr  uint64
	Write bool
	Kind  dram.Kind
}

// ChainFetch is one counter-chain block that missed in the counter cache
// and must come from DRAM, together with whether its *parent* counter's
// cryptographic contribution was memoized (which is what accelerates the
// verification of this block / decryption of the data below it).
type ChainFetch struct {
	Addr  uint64
	Level int // 0 = L0 counter block, 1 = L1 tree node, ...
	// MemoHit reports whether the counter value needed to *use* this
	// block's contents (the data counter for level 0, the child counter
	// for higher levels) found its AES result memoized.
	MemoHit bool
	// MemoSource breaks hits down for Figure 10.
	MemoSource core.HitSource
}

// Outcome describes everything one LLC miss caused.
type Outcome struct {
	DataAddr uint64
	Write    bool

	// CtrCacheHit: the L0 counter block was resident (reads and writes).
	CtrCacheHit bool
	// Chain lists counter-chain fetches from DRAM, ordered L0 upward.
	//
	// Chain and Extra are backed by controller-owned scratch storage that
	// the next Read/Write on the same controller reuses, so steady-state
	// accesses allocate nothing; callers that retain them across accesses
	// must copy. OverflowTraffic is always freshly allocated — the detailed
	// simulator's overflow engine drains it asynchronously.
	Chain []ChainFetch
	// L0MemoHit/L0MemoSource: the data block's counter value was memoized
	// (meaningful in RMCC mode; used for both timing and Figure 10/19).
	L0MemoHit    bool
	L0MemoSource core.HitSource

	// Extra DRAM traffic: counter writebacks from cache evictions,
	// read-triggered update writes, and MAC/ciphertext rewrites.
	Extra []Traffic
	// OverflowTraffic lists relevel transfers, routed through the
	// overflow engine (bounded concurrency) by the detailed simulator.
	OverflowTraffic []Traffic
	// Stalled marks accesses the MC rejected because two overflows were
	// already outstanding (the detailed simulator retries them).
	Accelerated bool // the §VI headline condition for this miss

	// Violations lists every integrity violation the MC detected while
	// processing this access (typed; nil on clean accesses). Entries with
	// Recovered set were repaired in-line per the RecoveryPolicy.
	Violations []*IntegrityError
	// Rekeyed reports that this access triggered the whole-memory
	// re-key/reboot (56-bit counter ceiling, or RekeyRecover escalation).
	Rekeyed bool
}

// Err returns the first unrecovered violation of the access, or nil. It is
// the error-shaped view of Violations for fail-stop callers.
func (o *Outcome) Err() error {
	for _, v := range o.Violations {
		if !v.Recovered {
			return v
		}
	}
	return nil
}

// MC is the secure memory controller. Not safe for concurrent use.
type MC struct {
	cfg      Config
	store    *counter.Store
	ctrCache *cache.Cache
	unit     *otp.Unit
	l0Table  *core.Table
	l1Table  *core.Table

	// observedTreeMax[l] tracks the largest tree counter per level (the
	// L1 table's System-Max analog).
	observedTreeMax []uint64

	contents *contentStore

	// keyEpoch counts whole-memory re-keys (0 at boot).
	keyEpoch uint64
	// pending collects violations detected while processing the current
	// access; drained onto its Outcome.
	pending []*IntegrityError
	// needRekey defers a re-key triggered mid-walk (tree-counter ceiling,
	// RekeyRecover escalation) to the end of the current access.
	needRekey bool

	// scratchExtra and scratchChain back Outcome.Extra/Outcome.Chain and
	// are reused by the next access (see the Outcome field docs), keeping
	// the steady-state Read/Write paths allocation-free.
	scratchExtra []Traffic
	scratchChain []ChainFetch

	stats Stats

	// trace, when attached via SetTracer, receives per-access lifecycle
	// events; nil (the default) disables tracing at the cost of one branch
	// per emit site. chainLenHist, when attached via RegisterMetrics,
	// observes the counter-chain depth of every read miss.
	trace        *obs.Tracer
	chainLenHist *obs.Histogram
}

// New builds a memory controller; it panics on invalid configuration (the
// configuration is experiment-defined, not user input). Use NewChecked to
// handle configuration errors instead.
func New(cfg Config) *MC {
	mc, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return mc
}

// NewChecked builds a memory controller, returning an error (wrapping
// ErrInvalidConfig) instead of panicking on invalid configuration.
func NewChecked(cfg Config) (*MC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mc := &MC{cfg: cfg}
	if cfg.Mode == NonSecure {
		return mc, nil
	}
	mc.store = counter.NewStore(cfg.Scheme, cfg.MemBytes)
	mc.ctrCache = mc.newCounterCache()
	mc.unit = mc.deriveUnit()
	mc.observedTreeMax = make([]uint64, mc.store.Levels()+1)
	if cfg.RandomizeInit {
		mc.store.Randomize(rng.New(cfg.InitSeed), counter.DefaultRandomize())
		// Seed the per-level max registers from the randomized state.
		mc.rescanTreeMax()
	}
	if cfg.Mode == RMCC {
		mc.buildTables()
		if cfg.RandomizeInit && cfg.WarmStartFrac > 0 {
			mc.warmStart()
		}
	}
	if cfg.TrackContents {
		mc.contents = newContentStore(mc.unit)
	}
	return mc, nil
}

// deriveUnit builds the OTP unit for the current key epoch: the master key
// is mixed with the epoch so every re-key yields an independent key set.
func (mc *MC) deriveUnit() *otp.Unit {
	master := mc.cfg.KeyMaster
	for b := 0; b < 8; b++ {
		master[8+b] ^= byte(mc.keyEpoch >> (8 * uint(b)))
	}
	keyLen := 16
	if mc.cfg.AES256 {
		keyLen = 32
	}
	return otp.MustNewUnit(otp.DeriveKeys(master, keyLen))
}

// newCounterCache builds a cold counter cache from the configuration.
func (mc *MC) newCounterCache() *cache.Cache {
	return cache.New(cache.Config{
		SizeBytes: mc.cfg.CounterCacheBytes,
		Ways:      mc.cfg.CounterCacheWays,
		LineBytes: counter.BlockBytes,
	})
}

// buildTables (re)builds cold memoization tables seeded with the low
// counter range, discarding any previous contents.
func (mc *MC) buildTables() {
	fill := func(v uint64) otp.CtrResult { return mc.unit.CounterOnly(v) }
	mc.l0Table = core.MustNewTable(mc.cfg.L0Table, fill, func() uint64 { return mc.store.ObservedMax() })
	mc.l1Table = core.MustNewTable(mc.cfg.L1Table, fill, func() uint64 { return mc.observedTreeMax[1] })
	// Re-keys and power losses rebuild the tables; keep any attached
	// tracer flowing across the rebuild.
	mc.l0Table.SetTracer(mc.trace, 0)
	mc.l1Table.SetTracer(mc.trace, 1)
}

// warmStart rebases most counter groups onto a set of hot counter values
// and seeds the memoization tables with exactly those values — the
// converged steady state the self-reinforcing update drives a long-running
// system toward (§IV-B). The unsnapped remainder keeps the read-triggered
// update, watchpoint insertion, and shadow machinery exercised.
func (mc *MC) warmStart() {
	r := rng.New(mc.cfg.InitSeed ^ 0x57a2757a27)
	opts := counter.DefaultRandomize()
	span := opts.BaseHi - opts.BaseLo
	// The steady state of the self-reinforcing update is a contiguous
	// "ladder" of memoized windows (Figures 6/7: counters climb through
	// consecutive memoized values, and new groups extend the ladder just
	// above the hot range). Seed the table as one contiguous run of
	// Groups×GroupSize values and snap counters into its lower windows so
	// writes have headroom to climb.
	ladder := func(lo, width uint64, groups, groupSize int) []uint64 {
		run := uint64(groups * groupSize)
		top := lo + width
		if top < lo+run {
			top = lo + run
		}
		start := lo
		if top-run > lo {
			start = lo + r.Uint64n(top-run-lo)
		}
		out := make([]uint64, groups)
		for i := range out {
			out[i] = start + uint64(i*groupSize)
		}
		return out
	}
	dataBases := ladder(opts.BaseLo, span, mc.cfg.L0Table.Groups, mc.cfg.L0Table.GroupSize)
	// Snap into the lower half of the ladder so stepped writes stay
	// covered for many writebacks before reaching the top.
	mc.store.WarmSnap(r, dataBases[:len(dataBases)/2+1], mc.cfg.WarmStartFrac)
	mc.l0Table.Seed(dataBases)
	if mc.store.Levels() >= 1 {
		// Mirror Randomize's tree value range (base/8).
		l1Bases := ladder(opts.BaseLo/8, span/8+1, mc.cfg.L1Table.Groups, mc.cfg.L1Table.GroupSize)
		mc.store.WarmSnapTree(r, 1, l1Bases[:len(l1Bases)/2+1], mc.cfg.WarmStartFrac)
		mc.l1Table.Seed(l1Bases)
		// Refresh every per-level max register, not just level 1. Today
		// WarmSnapTree only rewrites level-1 counters, so rescanning level
		// 1 alone would be sufficient — but the observed-max registers are
		// the §IV-D2 OSM analogs bounding where a new memoized group may
		// start, and an under-reading register would let the table chase
		// counter values the system never reached. Rescanning all levels
		// keeps the invariant "observedTreeMax[l] == max stored counter at
		// level l" structural rather than incidental (regression-tested by
		// TestObservedTreeMaxMatchesStore).
		mc.rescanTreeMax()
	}
}

// rescanTreeMax recomputes every per-level observed-max register from the
// stored tree counters — the tree analog of the data-side Observed System
// Max register (§IV-D2): each register must upper-bound every counter at
// its level so memoized-group insertion never outruns the system state.
// Called after bulk counter rewrites (randomized init, warm start); the
// incremental update paths in bumpTreeCounter/relevelTree maintain the
// registers access-by-access.
func (mc *MC) rescanTreeMax() {
	for l := 1; l <= mc.store.Levels(); l++ {
		var max uint64
		for c := 0; c < mc.treeChildren(l); c++ {
			if v := mc.store.TreeCounter(l, c); v > max {
				max = v
			}
		}
		mc.observedTreeMax[l] = max
	}
}

// treeChildren returns the number of child counters stored at level l.
func (mc *MC) treeChildren(l int) int {
	if l == 1 {
		return mc.store.NumL0Blocks()
	}
	// Children of level l are the level-(l-1) nodes.
	n := mc.store.NumL0Blocks()
	for i := 1; i < l; i++ {
		n = (n + mc.store.Scheme().TreeArity() - 1) / mc.store.Scheme().TreeArity()
	}
	return n
}

// Config returns the controller configuration.
func (mc *MC) Config() Config { return mc.cfg }

// Store exposes the counter ground truth (coverage scans, tests).
func (mc *MC) Store() *counter.Store { return mc.store }

// CounterCache exposes the MC counter cache (tests, stats).
func (mc *MC) CounterCache() *cache.Cache { return mc.ctrCache }

// L0Table returns the L0 memoization table (nil unless RMCC mode).
func (mc *MC) L0Table() *core.Table { return mc.l0Table }

// L1Table returns the L1 memoization table (nil unless RMCC mode).
func (mc *MC) L1Table() *core.Table { return mc.l1Table }

// Unit exposes the OTP unit (examples, tests).
func (mc *MC) Unit() *otp.Unit { return mc.unit }

// KeyEpoch returns the current key generation: 0 at boot, incremented by
// every whole-memory re-key. The checker uses it to tell a legitimate
// post-reboot counter reset from a rollback attack.
func (mc *MC) KeyEpoch() uint64 { return mc.keyEpoch }

// OnEpochAccess advances the memoization tables' epoch clocks by one
// memory access. The simulator calls it once per LLC-level access.
func (mc *MC) OnEpochAccess() {
	if mc.l0Table != nil {
		mc.l0Table.OnAccess()
	}
	if mc.l1Table != nil {
		mc.l1Table.OnAccess()
	}
}
