package engine

import (
	"fmt"
	"io"
	"sort"

	"rmcc/internal/snapshot"
)

// engineKind tags standalone engine snapshots.
const engineKind = "rmcc-engine"

// ConfigHash is the FNV-1a hash of the controller's configuration; Load
// refuses snapshots whose hash differs (the serialized state's geometry —
// counter blocks, cache sets, table groups — is derived from it).
func (mc *MC) ConfigHash() uint64 {
	return snapshot.HashString(fmt.Sprintf("%#v", mc.cfg))
}

// Save writes the controller's complete mutable state as one snapshot
// stream. It must be called between accesses (never from inside a fault
// hook mid-walk): in-flight violation state is intentionally not
// serialized, and Save refuses to run while any is pending.
func (mc *MC) Save(w io.Writer) error {
	if len(mc.pending) != 0 || mc.needRekey {
		return fmt.Errorf("engine: snapshot mid-access: %d pending violations, needRekey=%v",
			len(mc.pending), mc.needRekey)
	}
	sw := snapshot.NewWriter(w, engineKind, mc.ConfigHash())
	var e snapshot.Enc
	mc.EncodeState(&e)
	sw.Section("state", e.Data())
	return sw.Close()
}

// Load restores state written by Save into a controller built with the
// identical configuration. On error the controller is left in an undefined
// state and must be discarded; errors are typed (snapshot.ErrSnapshot*).
func (mc *MC) Load(r io.Reader) error {
	sr, err := snapshot.NewReader(r, engineKind)
	if err != nil {
		return err
	}
	if got, want := sr.ConfigHash(), mc.ConfigHash(); got != want {
		return fmt.Errorf("%w: engine config hash %016x, want %016x",
			snapshot.ErrSnapshotConfigMismatch, got, want)
	}
	payload, err := sr.Section("state")
	if err != nil {
		return err
	}
	d := snapshot.NewDec(payload)
	if err := mc.DecodeState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	return sr.Close()
}

// EncodeState serializes the controller into one section payload — the
// embeddable form sim.Lifetime and standalone Save share.
func (mc *MC) EncodeState(e *snapshot.Enc) {
	e.U64(mc.keyEpoch)
	e.Binary(&mc.stats)
	e.Bool(mc.store != nil)
	if mc.store == nil { // NonSecure: nothing else to carry
		return
	}
	mc.store.EncodeState(e)
	mc.ctrCache.EncodeState(e)
	e.U64s(mc.observedTreeMax)
	e.Bool(mc.l0Table != nil)
	if mc.l0Table != nil {
		mc.l0Table.EncodeState(e)
		mc.l1Table.EncodeState(e)
	}
	e.Bool(mc.contents != nil)
	if mc.contents != nil {
		mc.contents.encodeState(e)
	}
}

// DecodeState restores an EncodeState payload into a freshly built
// controller of the identical configuration. The key epoch is applied
// first and the OTP unit re-derived from it, so the memoization tables'
// fill-based reconstruction and the contents image operate under the
// snapshot's keys rather than the boot keys.
func (mc *MC) DecodeState(d *snapshot.Dec) error {
	mc.pending = nil
	mc.needRekey = false
	epoch := d.U64()
	d.Binary(&mc.stats)
	hasStore := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hasStore != (mc.store != nil) {
		return fmt.Errorf("%w: snapshot secure=%v, controller secure=%v",
			snapshot.ErrSnapshotConfigMismatch, hasStore, mc.store != nil)
	}
	mc.keyEpoch = epoch
	if !hasStore {
		return nil
	}
	mc.unit = mc.deriveUnit()
	if err := mc.store.DecodeState(d); err != nil {
		return err
	}
	if err := mc.ctrCache.DecodeState(d); err != nil {
		return err
	}
	d.U64sInto(mc.observedTreeMax)
	hasTables := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hasTables != (mc.l0Table != nil) {
		return fmt.Errorf("%w: snapshot memoization=%v, controller memoization=%v",
			snapshot.ErrSnapshotConfigMismatch, hasTables, mc.l0Table != nil)
	}
	if hasTables {
		if err := mc.l0Table.DecodeState(d); err != nil {
			return err
		}
		if err := mc.l1Table.DecodeState(d); err != nil {
			return err
		}
	}
	hasContents := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hasContents != (mc.contents != nil) {
		return fmt.Errorf("%w: snapshot contents=%v, controller contents=%v",
			snapshot.ErrSnapshotConfigMismatch, hasContents, mc.contents != nil)
	}
	if hasContents {
		mc.contents.unit = mc.unit
		if err := mc.contents.decodeState(d); err != nil {
			return err
		}
	}
	return d.Err()
}

// encodeState serializes the functional memory image. Maps are emitted in
// sorted key order: snapshot bytes must be a pure function of state, not of
// map iteration order (the property test compares them byte for byte).
func (cs *contentStore) encodeState(e *snapshot.Enc) {
	encodeBlocks := func(m map[int][8]uint64) {
		keys := sortedKeys(m)
		e.U64(uint64(len(keys)))
		for _, k := range keys {
			e.I64(int64(k))
			b := m[k]
			for _, w := range b {
				e.U64(w)
			}
		}
	}
	encodeBlocks(cs.plain)
	encodeBlocks(cs.cipher)
	encodeU64Map(e, cs.macs)
	encodeU64Map(e, cs.version)
	keys := sortedKeys(cs.transient)
	e.U64(uint64(len(keys)))
	for _, k := range keys {
		e.I64(int64(k))
		e.I64(int64(cs.transient[k]))
	}
	keys = sortedKeys(cs.dropNext)
	e.U64(uint64(len(keys)))
	for _, k := range keys {
		e.I64(int64(k))
	}
}

func (cs *contentStore) decodeState(d *snapshot.Dec) error {
	decodeBlocks := func() map[int][8]uint64 {
		n := d.U64()
		if d.Err() != nil || n > uint64(d.Remaining()/72) { // 8B key + 64B block
			d.Failf("contents block map length %d", n)
			return nil
		}
		m := make(map[int][8]uint64, n)
		for i := uint64(0); i < n; i++ {
			k := int(d.I64())
			var b [8]uint64
			for w := range b {
				b[w] = d.U64()
			}
			m[k] = b
		}
		return m
	}
	plain := decodeBlocks()
	cipher := decodeBlocks()
	macs := decodeU64Map(d)
	version := decodeU64Map(d)
	nt := d.U64()
	if d.Err() != nil || nt > uint64(d.Remaining()/16) {
		return d.Failf("contents transient map length %d", nt)
	}
	transient := make(map[int]int, nt)
	for i := uint64(0); i < nt; i++ {
		k := int(d.I64())
		transient[k] = int(d.I64())
	}
	nd := d.U64()
	if d.Err() != nil || nd > uint64(d.Remaining()/8) {
		return d.Failf("contents dropNext set length %d", nd)
	}
	dropNext := make(map[int]bool, nd)
	for i := uint64(0); i < nd; i++ {
		dropNext[int(d.I64())] = true
	}
	if err := d.Err(); err != nil {
		return err
	}
	cs.plain = plain
	cs.cipher = cipher
	cs.macs = macs
	cs.version = version
	cs.transient = transient
	cs.dropNext = dropNext
	return nil
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func encodeU64Map(e *snapshot.Enc, m map[int]uint64) {
	keys := sortedKeys(m)
	e.U64(uint64(len(keys)))
	for _, k := range keys {
		e.I64(int64(k))
		e.U64(m[k])
	}
}

func decodeU64Map(d *snapshot.Dec) map[int]uint64 {
	n := d.U64()
	if d.Err() != nil || n > uint64(d.Remaining()/16) {
		d.Failf("contents uint64 map length %d", n)
		return nil
	}
	m := make(map[int]uint64, n)
	for i := uint64(0); i < n; i++ {
		k := int(d.I64())
		m[k] = d.U64()
	}
	return m
}
