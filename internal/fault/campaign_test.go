package fault

import (
	"fmt"
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/workload"
)

// testCampaign builds the standard campaign: canneal at test size under
// RMCC/Morphable with the given recovery policy and schedule.
func testCampaign(seed uint64, policy engine.RecoveryPolicy, sched Schedule) *Campaign {
	eng := engine.DefaultConfig(engine.RMCC, counter.Morphable, 0)
	eng.Recovery = policy
	cfg := sim.DefaultLifetimeConfig(eng)
	cfg.MaxAccesses = 300_000
	cfg.Seed = seed
	return &Campaign{
		Workload: workload.NewCanneal(workload.SizeTest),
		Lifetime: cfg,
		Schedule: sched,
	}
}

// TestCampaignDetectsAllFaults is the headline drill: one fault of every
// kind on a canneal run. Every armed detection-required fault must be
// detected and (under RekeyRecover) repaired; the benign controls must not
// be flagged.
func TestCampaignDetectsAllFaults(t *testing.T) {
	sched := NewSchedule(7, nil, 300_000)
	res, err := testCampaign(7, engine.RekeyRecover, sched).Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	t.Logf("campaign: %s", res.Summary())
	for _, fr := range res.Faults {
		t.Logf("  %v", fr)
	}
	if res.Injected != int(NumKinds) {
		t.Fatalf("injected %d faults, want %d", res.Injected, NumKinds)
	}
	if res.TamperArmed == 0 {
		t.Fatal("no detection-required fault armed")
	}
	if res.TamperDetected != res.TamperArmed {
		t.Errorf("detected %d of %d armed tampers, want 100%%", res.TamperDetected, res.TamperArmed)
	}
	if res.Recovered != res.TamperArmed {
		t.Errorf("recovered %d of %d armed tampers under RekeyRecover", res.Recovered, res.TamperArmed)
	}
	if res.BenignFlagged != 0 {
		t.Errorf("%d benign faults flagged (false positives)", res.BenignFlagged)
	}
	// The drills re-keyed at least once (counter exhaust is in the
	// schedule), and memoization re-converged afterwards.
	if res.Lifetime.Engine.Rekeys == 0 {
		t.Error("no re-key happened despite counter-exhaust drill")
	}
	if hr := res.PostFaultMemoHitRate(); hr <= 0.5 {
		t.Errorf("post-fault memo hit rate %.3f, want > 0.5 (lookups=%d)",
			hr, res.PostFaultMemoLookups)
	}
}

// TestCampaignFailStopDetects verifies detection is policy-independent:
// under FailStop the same tampers are detected (recovery is not required).
func TestCampaignFailStopDetects(t *testing.T) {
	kinds := []Kind{CiphertextFlip, MACTamper, Replay, CounterCorrupt}
	sched := NewSchedule(11, kinds, 300_000)
	res, err := testCampaign(11, engine.FailStop, sched).Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	t.Logf("campaign: %s", res.Summary())
	if res.TamperArmed != len(kinds) {
		t.Fatalf("armed %d of %d", res.TamperArmed, len(kinds))
	}
	if res.TamperDetected != res.TamperArmed {
		t.Errorf("detected %d of %d armed tampers under FailStop", res.TamperDetected, res.TamperArmed)
	}
	// FailStop performs no repair: a persistently corrupted block must NOT
	// count as recovered.
	if res.Recovered == res.TamperArmed {
		t.Error("every fault recovered under FailStop; expected persistent damage")
	}
}

// TestCampaignControlRunClean is the false-positive control: the identical
// run with an empty schedule must finish with zero violations of any kind.
func TestCampaignControlRunClean(t *testing.T) {
	res, err := testCampaign(7, engine.RekeyRecover, nil).Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if res.Checker.Total != 0 {
		t.Errorf("checker flagged a fault-free run: %v", res.Checker)
	}
	s := res.Lifetime.Engine
	for k, n := range s.ViolationsByKind {
		if n != 0 {
			t.Errorf("fault-free run recorded %d violations of kind %v", n, engine.ViolationKind(k))
		}
	}
	if s.IntegrityFailures != 0 || s.DecryptMismatches != 0 {
		t.Errorf("fault-free run: %d MAC failures, %d decrypt mismatches",
			s.IntegrityFailures, s.DecryptMismatches)
	}
	if s.Rekeys != 0 {
		t.Errorf("fault-free run re-keyed %d times", s.Rekeys)
	}
}

// TestCampaignDeterministic reruns the full campaign with the same seed
// and requires byte-identical results — the reproducibility contract.
func TestCampaignDeterministic(t *testing.T) {
	sched := NewSchedule(13, nil, 300_000)
	render := func() string {
		res, err := testCampaign(13, engine.RekeyRecover, sched).Run()
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		return fmt.Sprintf("%+v", res)
	}
	a, b := render(), render()
	if a != b {
		t.Error("identical seeds produced different campaign results")
	}
}

// TestScheduleDeterministic pins schedule generation itself.
func TestScheduleDeterministic(t *testing.T) {
	a := NewSchedule(42, nil, 1_000_000)
	b := NewSchedule(42, nil, 1_000_000)
	if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Error("identical seeds produced different schedules")
	}
	c := NewSchedule(43, nil, 1_000_000)
	if fmt.Sprintf("%v", a) == fmt.Sprintf("%v", c) {
		t.Error("different seeds produced identical schedules")
	}
	if len(a) != int(NumKinds) {
		t.Errorf("schedule has %d faults, want one per kind (%d)", len(a), NumKinds)
	}
	for i := 1; i < len(a); i++ {
		if a[i].AtAccess < a[i-1].AtAccess {
			t.Error("schedule not ordered by injection point")
		}
	}
}

// TestCampaignRejectsInvalidConfig exercises the validation front door.
func TestCampaignRejectsInvalidConfig(t *testing.T) {
	c := testCampaign(1, engine.RekeyRecover, nil)
	c.Lifetime.Engine.CounterCacheBytes = 0
	if _, err := c.Run(); err == nil {
		t.Fatal("campaign accepted an invalid engine config")
	}
}
