package fault

import (
	"fmt"

	"rmcc/internal/obs"
	"rmcc/internal/secmem/checker"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/workload"
)

// Result records one injected fault's outcome.
type Result struct {
	Fault Fault
	// Armed reports that the injection actually corrupted state (e.g. a
	// MemoPoison found a live table entry). Unarmed faults are excluded
	// from the detection denominator.
	Armed bool
	// Detected reports that the engine (or checker) flagged the fault.
	Detected bool
	// Recovered reports that after the configured recovery response a
	// probe of the damaged state verified cleanly again.
	Recovered bool
	// Rekeyed reports that handling this fault ran the whole-memory
	// re-key.
	Rekeyed bool
	// Block is the targeted data block (or L1 child for tree faults), -1
	// when the fault has no block target.
	Block int
	// Note carries human-readable context.
	Note string
}

// String renders the outcome.
func (r Result) String() string {
	state := "missed"
	switch {
	case !r.Armed:
		state = "unarmed"
	case r.Detected && r.Recovered:
		state = "detected+recovered"
	case r.Detected:
		state = "detected"
	case r.Fault.Kind.Benign() && !r.Detected:
		state = "clean (benign)"
	}
	if r.Rekeyed {
		state += "+rekey"
	}
	return fmt.Sprintf("%v block=%d: %s%s", r.Fault, r.Block, state, noteSuffix(r.Note))
}

func noteSuffix(n string) string {
	if n == "" {
		return ""
	}
	return " — " + n
}

// CampaignResult aggregates a campaign run.
type CampaignResult struct {
	Faults []Result

	// Injected counts scheduled faults; Armed those that corrupted state.
	Injected, Armed int
	// TamperArmed/TamperDetected cover the detection-required kinds: the
	// campaign's headline is TamperDetected == TamperArmed.
	TamperArmed, TamperDetected int
	// Recovered counts armed detection-required faults whose damage was
	// repaired (per the recovery policy) by the end of their drill.
	Recovered int
	// BenignArmed/BenignFlagged cover the false-positive controls: any
	// BenignFlagged is an engine defect.
	BenignArmed, BenignFlagged int

	// Checker is the invariant checker's final report over the whole run.
	Checker checker.Report

	// PostFaultMemoLookups/Hits are the L0 memoization counters after the
	// last injection, for the re-convergence headline.
	PostFaultMemoLookups, PostFaultMemoHits uint64

	// Lifetime is the underlying workload run's result.
	Lifetime sim.LifetimeResult
}

// DetectionRate returns detected/armed over the detection-required kinds.
func (r CampaignResult) DetectionRate() float64 {
	if r.TamperArmed == 0 {
		return 0
	}
	return float64(r.TamperDetected) / float64(r.TamperArmed)
}

// PostFaultMemoHitRate returns the L0 memoization hit rate over the
// accesses after the last injection — the paper's re-convergence claim:
// after a reboot wipes the tables, memoization rebuilds itself.
func (r CampaignResult) PostFaultMemoHitRate() float64 {
	if r.PostFaultMemoLookups == 0 {
		return 0
	}
	return float64(r.PostFaultMemoHits) / float64(r.PostFaultMemoLookups)
}

// Summary renders the headline numbers.
func (r CampaignResult) Summary() string {
	return fmt.Sprintf(
		"faults=%d armed=%d detected=%d/%d recovered=%d benign-flagged=%d/%d post-fault-memo=%.1f%%",
		r.Injected, r.Armed, r.TamperDetected, r.TamperArmed, r.Recovered,
		r.BenignFlagged, r.BenignArmed, 100*r.PostFaultMemoHitRate())
}

// Campaign replays a workload through the lifetime driver while injecting
// a Schedule of faults into the memory controller.
type Campaign struct {
	Workload workload.Workload
	Lifetime sim.LifetimeConfig
	Schedule Schedule
}

// Run executes the campaign. The engine configuration is validated first;
// TrackContents is forced on (the campaign needs the functional image to
// tamper with and verify against).
func (c *Campaign) Run() (CampaignResult, error) {
	cfg := c.Lifetime
	cfg.Engine.TrackContents = true
	vcfg := cfg.Engine
	if vcfg.MemBytes == 0 {
		// RunLifetime sizes memory from the workload footprint; validate
		// the rest of the configuration with a placeholder.
		vcfg.MemBytes = 1 << 20
	}
	if err := vcfg.Validate(); err != nil {
		return CampaignResult{}, err
	}

	sched := append(Schedule(nil), c.Schedule...)
	sched.sort()

	st := &campaignState{sched: sched}
	cfg.OnController = func(mc *engine.MC) {
		st.mc = mc
		st.chk = checker.New(mc, 1)
	}
	if cfg.Metrics != nil {
		// Campaign counters, by fault kind: how many injections ran and how
		// many actually corrupted state (the detection denominator).
		for k := Kind(0); k < NumKinds; k++ {
			k := k
			cfg.Metrics.CounterFunc("rmcc_fault_injections_total",
				"fault-campaign injections executed",
				func() uint64 { return st.injectedByKind[k] }, obs.L("kind", k.String()))
			cfg.Metrics.CounterFunc("rmcc_fault_armed_total",
				"injections that corrupted state (detection denominator)",
				func() uint64 { return st.armedByKind[k] }, obs.L("kind", k.String()))
		}
	}
	cfg.OnAccess = func(n uint64, mc *engine.MC) {
		for st.next < len(st.sched) && n >= st.sched[st.next].AtAccess {
			st.inject(st.sched[st.next])
			st.next++
		}
	}

	res := CampaignResult{}
	res.Lifetime = sim.RunLifetime(c.Workload, cfg)

	// Inject anything scheduled beyond the stream's end, then close out.
	for st.next < len(st.sched) {
		st.inject(st.sched[st.next])
		st.next++
	}
	if st.chk != nil {
		st.chk.Check()
	}

	res.Faults = st.results
	res.Checker = st.chk.Report()
	for _, fr := range res.Faults {
		res.Injected++
		if !fr.Armed {
			continue
		}
		res.Armed++
		if fr.Fault.Kind.Benign() {
			res.BenignArmed++
			if fr.Detected {
				res.BenignFlagged++
			}
			continue
		}
		res.TamperArmed++
		if fr.Detected {
			res.TamperDetected++
		}
		if fr.Recovered {
			res.Recovered++
		}
	}
	if st.mc != nil {
		s := st.mc.Stats()
		res.PostFaultMemoLookups = s.L0MemoLookupsAll - st.memoLookupsAtLast
		res.PostFaultMemoHits = s.L0MemoHitsAll - st.memoHitsAtLast
	}
	return res, nil
}

// campaignState threads the driver hooks.
type campaignState struct {
	sched   Schedule
	next    int
	mc      *engine.MC
	chk     *checker.Checker
	results []Result

	memoLookupsAtLast uint64
	memoHitsAtLast    uint64

	// Per-kind tallies backing the rmcc_fault_* registry views, updated as
	// each drill runs (the aggregate CampaignResult is only built at the
	// end of the run).
	injectedByKind [NumKinds]uint64
	armedByKind    [NumKinds]uint64
}

// mix is splitmix64's finalizer: deterministic target selection from salt.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// inject executes one fault's drill: corrupt state, probe, score.
func (st *campaignState) inject(f Fault) {
	mc := st.mc
	r := Result{Fault: f, Block: -1}
	store := mc.Store()
	if store == nil {
		r.Note = "non-secure mode: nothing to corrupt"
		st.record(r)
		return
	}
	n := store.NumDataBlocks()
	b := int(mix(f.Salt) % uint64(n))
	addr := store.DataBlockAddr(b)
	st.injectedByKind[f.Kind]++
	mc.Tracer().Emit(obs.EvFaultInjected, addr, uint64(f.Kind), f.AtAccess)

	switch f.Kind {
	case CiphertextFlip:
		r.Block = b
		r.Armed = mc.TamperCiphertext(b) == nil
		st.probe(addr, &r)

	case MACTamper:
		r.Block = b
		r.Armed = mc.TamperMAC(b) == nil
		st.probe(addr, &r)

	case Replay:
		r.Block = b
		ct, mac := mc.SnapshotCiphertext(b)
		mc.Write(addr) // advance the counter and re-seal
		r.Armed = mc.ReplayOldCiphertext(b, ct, mac) == nil
		st.probe(addr, &r)

	case CounterCorrupt:
		r.Block = b
		// Materialize the DRAM image under the current counter first so
		// the corruption desynchronizes counter and ciphertext (a lazily
		// installed image would otherwise seal under the corrupt value).
		mc.SnapshotCiphertext(b)
		cur := store.DataCounter(b)
		mc.CorruptDataCounter(b, cur+0x5eed)
		r.Armed = true
		st.probe(addr, &r)

	case TreeCounterCorrupt:
		st.injectTreeCorrupt(f, b, &r)

	case MemoPoison:
		st.injectMemoPoison(f, b, &r)

	case CacheTagCorrupt:
		// An address far beyond the data+metadata layout: classification
		// must reject it at writeback.
		bogus := (uint64(1) << 40) ^ (mix(f.Salt) &^ 63)
		if _, _, ok := store.ClassifyAddr(bogus); ok {
			bogus = uint64(1) << 41
		}
		mc.PoisonCounterCache(bogus)
		mc.EvictCounterLine(bogus)
		r.Armed = true
		// The violation was recorded during the eviction; it surfaces on
		// the next access's Outcome.
		st.probe(addr, &r)

	case DroppedWriteback:
		r.Block = b
		r.Armed = mc.DropNextWriteback(b) == nil
		mc.Write(addr) // the lost write
		st.probe(addr, &r)

	case TransientBitFlip:
		r.Block = b
		r.Armed = mc.TamperTransient(b, 1) == nil
		st.probe(addr, &r)

	case CounterExhaust:
		r.Block = b
		r.Armed = mc.ForceCounterCeiling(addr) == nil
		out := mc.Write(addr)
		r.Detected = out.Rekeyed || len(out.Violations) > 0
		r.Rekeyed = out.Rekeyed
		probe := mc.Read(addr)
		r.Recovered = len(probe.Violations) == 0 && !probe.Rekeyed
		r.Note = "56-bit ceiling write"

	case DuplicatedWriteback:
		r.Block = b
		mc.Write(addr)
		r.Armed = mc.DuplicateWriteback(b) == nil
		st.probe(addr, &r)

	case PowerLoss:
		r.Block = b
		mc.PowerLoss()
		r.Armed = true
		st.probe(addr, &r)
	}

	st.record(r)
}

// probe reads addr and scores detection from the Outcome, then probes once
// more to score recovery.
func (st *campaignState) probe(addr uint64, r *Result) {
	out := st.mc.Read(addr)
	r.Detected = len(out.Violations) > 0 || out.Rekeyed
	r.Rekeyed = r.Rekeyed || out.Rekeyed
	if len(out.Violations) > 0 {
		r.Note = out.Violations[0].Error()
	}
	second := st.mc.Read(addr)
	r.Rekeyed = r.Rekeyed || second.Rekeyed
	r.Recovered = len(second.Violations) == 0 && !second.Rekeyed
}

// injectTreeCorrupt rolls an L1 tree counter backwards and scores
// detection via the checker's regression scan; recovery is the reboot.
func (st *campaignState) injectTreeCorrupt(f Fault, b int, r *Result) {
	mc, store := st.mc, st.mc.Store()
	if store.Levels() < 1 {
		r.Note = "scheme has no tree levels"
		return
	}
	// Re-baseline the checker first so a key epoch advanced by an earlier
	// fault does not mask this regression.
	st.chk.Check()
	before := st.chk.Report()

	nl1 := store.TreeLevelLen(1)
	x := -1
	for try := 0; try < nl1; try++ {
		cand := int((mix(f.Salt) + uint64(try)) % uint64(nl1))
		if store.TreeCounter(1, cand) > 0 {
			x = cand
			break
		}
	}
	if x < 0 {
		// Every L1 counter is zero (a recent re-key reset the tree).
		// Stand in a legitimately-advanced history first — raise one
		// counter, re-baseline the checker on it — then roll it back.
		x = int(mix(f.Salt) % uint64(nl1))
		mc.CorruptTreeCounter(1, x, 0x1000+mix(f.Salt)%0x1000)
		st.chk.Check()
	}
	r.Armed = true
	r.Block = x
	cur := store.TreeCounter(1, x)
	mc.CorruptTreeCounter(1, x, cur/2)

	st.chk.Check()
	after := st.chk.Report()
	r.Detected = after.Counts[checker.ClassTreeRegression] > before.Counts[checker.ClassTreeRegression]
	r.Note = fmt.Sprintf("L1[%d] rolled back %d->%d", x, cur, cur/2)

	// Metadata rollback is unrecoverable in place: reboot (§VII), then
	// verify the machine decrypts cleanly again.
	out := mc.Rekey()
	r.Rekeyed = out.Rekeyed
	st.chk.Check() // consume the epoch change (re-baseline)
	probe := mc.Read(store.DataBlockAddr(b))
	r.Recovered = out.Rekeyed && len(probe.Violations) == 0
}

// injectMemoPoison poisons a live L0 table entry serving some block's
// counter value, then probes that block.
func (st *campaignState) injectMemoPoison(f Fault, b int, r *Result) {
	mc, store := st.mc, st.mc.Store()
	tbl := mc.L0Table()
	if tbl == nil {
		r.Note = "no memoization table (baseline mode)"
		return
	}
	n := store.NumDataBlocks()
	for try := 0; try < n; try++ {
		cand := int((mix(f.Salt) + uint64(try)) % uint64(n))
		v := store.DataCounter(cand)
		if v > counter.MaxCounter {
			continue
		}
		if tbl.Contains(v) && mc.PoisonMemoEntry(v) {
			r.Armed = true
			r.Block = cand
			r.Note = fmt.Sprintf("poisoned value %d", v)
			st.probe(store.DataBlockAddr(cand), r)
			return
		}
	}
	r.Note = "no live table entry matches any block counter"
}

func (st *campaignState) record(r Result) {
	if r.Armed {
		st.armedByKind[r.Fault.Kind]++
	}
	st.results = append(st.results, r)
	s := st.mc.Stats()
	st.memoLookupsAtLast = s.L0MemoLookupsAll
	st.memoHitsAtLast = s.L0MemoHitsAll
}
