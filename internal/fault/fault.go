// Package fault injects seeded, reproducible hardware faults and physical
// attacks into a running secure-memory simulation and scores the engine's
// detection and recovery behaviour.
//
// A Schedule is a deterministic fault plan (kind + injection point + target
// entropy). A Campaign replays any workload through the lifetime driver,
// injects each scheduled fault via the engine's typed injection hooks, and
// probes the controller to observe whether the fault was detected (a typed
// IntegrityError on the probing access's Outcome, a re-key, or a checker
// violation) and whether the configured RecoveryPolicy repaired it. Benign
// events — duplicated writebacks, power loss — are part of every schedule
// as false-positive controls: flagging them is scored against the engine.
//
// Everything is derived from explicit seeds: the same seed, workload, and
// configuration reproduce the same injections, detections, and statistics
// byte for byte.
package fault

import (
	"fmt"
	"sort"

	"rmcc/internal/rng"
)

// Kind enumerates the injectable faults.
type Kind int

// Fault kinds. The first group must be detected; the Benign group must not.
const (
	// CiphertextFlip flips bits in a block's DRAM ciphertext (rowhammer,
	// bus attack). Detection: MAC check on the next read.
	CiphertextFlip Kind = iota
	// MACTamper flips bits in a block's stored MAC. Detection: MAC check.
	MACTamper
	// Replay rolls a block's DRAM image back to a previously captured
	// (ciphertext, MAC) pair after the counter advanced. Detection: MAC
	// check under the current counter.
	Replay
	// CounterCorrupt overwrites a data block's stored write counter while
	// its ciphertext stays sealed under the old value. Detection: MAC
	// check (the decryption pad no longer matches).
	CounterCorrupt
	// TreeCounterCorrupt rolls an integrity-tree (L1) counter backwards.
	// Detection: the checker's tree-regression scan; recovery is the
	// whole-memory re-key (reboot on unrecoverable metadata violation).
	TreeCounterCorrupt
	// MemoPoison corrupts a live memoization-table entry (SRAM upset).
	// Detection: the engine cross-checks served entries against a fresh
	// AES computation, repairs the entry, and falls back to the pipeline.
	MemoPoison
	// CacheTagCorrupt inserts a dirty counter-cache line whose address
	// maps to no metadata block (corrupted tag). Detection: address
	// classification at writeback; the line is dropped.
	CacheTagCorrupt
	// DroppedWriteback loses a block's writeback on the bus: the counter
	// advances but the DRAM image stays stale. Detection: MAC check on
	// the next read.
	DroppedWriteback
	// TransientBitFlip garbles one fetch of a block on the bus and then
	// clears — the fault class RetryRefetch recovers without escalation.
	TransientBitFlip
	// CounterExhaust forces a counter group to the architectural 56-bit
	// ceiling so the next write must trigger the whole-memory re-key
	// ("reboot") rather than reuse a pad.
	CounterExhaust

	// DuplicatedWriteback re-issues a block's last DRAM write. Idempotent
	// and harmless: a detection here is a false positive.
	DuplicatedWriteback
	// PowerLoss drops all volatile controller state (counter cache,
	// memoization tables) mid-run. Counters persist; decryptions must
	// stay correct, so a detection here is a false positive.
	PowerLoss

	// NumKinds sizes per-kind arrays.
	NumKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CiphertextFlip:
		return "ciphertext-flip"
	case MACTamper:
		return "mac-tamper"
	case Replay:
		return "replay"
	case CounterCorrupt:
		return "counter-corrupt"
	case TreeCounterCorrupt:
		return "tree-counter-corrupt"
	case MemoPoison:
		return "memo-poison"
	case CacheTagCorrupt:
		return "cache-tag-corrupt"
	case DroppedWriteback:
		return "dropped-writeback"
	case TransientBitFlip:
		return "transient-bit-flip"
	case CounterExhaust:
		return "counter-exhaust"
	case DuplicatedWriteback:
		return "duplicated-writeback"
	case PowerLoss:
		return "power-loss"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Benign reports whether the kind must NOT trigger detection (it is a
// false-positive control).
func (k Kind) Benign() bool {
	return k == DuplicatedWriteback || k == PowerLoss
}

// AllKinds returns every injectable kind, detection-required first.
func AllKinds() []Kind {
	ks := make([]Kind, NumKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Fault is one scheduled injection.
type Fault struct {
	Kind Kind
	// AtAccess is the 1-based CPU-access ordinal after which the fault is
	// injected (0 injects before the stream starts).
	AtAccess uint64
	// Salt feeds deterministic target selection (which block, which table
	// value) so reruns with the same schedule hit the same state.
	Salt uint64
}

// String renders the injection.
func (f Fault) String() string {
	return fmt.Sprintf("%v@%d", f.Kind, f.AtAccess)
}

// Schedule is a reproducible fault plan, ordered by injection point.
type Schedule []Fault

// NewSchedule derives a schedule from seed: one fault of each requested
// kind, spread deterministically over the first half of a span-access run
// (leaving the second half for post-fault recovery and re-convergence
// measurements). Pass kinds==nil for every kind.
func NewSchedule(seed uint64, kinds []Kind, span uint64) Schedule {
	if kinds == nil {
		kinds = AllKinds()
	}
	r := rng.New(seed ^ 0xfa017fa017)
	lo := span / 10
	hi := span / 2
	if hi <= lo {
		hi = lo + uint64(len(kinds)) + 1
	}
	s := make(Schedule, 0, len(kinds))
	for _, k := range kinds {
		s = append(s, Fault{
			Kind:     k,
			AtAccess: lo + r.Uint64n(hi-lo),
			Salt:     r.Uint64(),
		})
	}
	s.sort()
	return s
}

// sort orders the schedule by injection point (stable on kind for equal
// points, keeping reruns byte-identical).
func (s Schedule) sort() {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].AtAccess != s[j].AtAccess {
			return s[i].AtAccess < s[j].AtAccess
		}
		return s[i].Kind < s[j].Kind
	})
}
