package sidechan

import (
	"math"

	"rmcc/internal/obs"
)

// AnalyzerConfig parameterizes the observable binning. The defaults match
// the lifetime hierarchy's counter-cache geometry and the prime+probe
// adversary's class alphabet.
type AnalyzerConfig struct {
	// Sets and SetShift bin counter-cache miss addresses into sets:
	// set = (addr >> SetShift) % Sets. Defaults model the 32 KB / 32-way
	// counter cache under Morphable (16 sets, 8 KiB of data per counter
	// block → shift 13).
	Sets     int
	SetShift uint
	// PageBins and PageShift bin write-event addresses by page offset:
	// bin = (addr >> PageShift) % PageBins (default: 4 KiB pages in
	// 512-byte quanta → 8 bins, shift 9).
	PageBins  int
	PageShift uint
	// BandWidth and Bands bin memo-insertion offsets (start − previous
	// table max) into bands of BandWidth values; offsets beyond
	// Bands×BandWidth fall into a catch-all band.
	BandWidth uint64
	Bands     int
	// TableID selects which memoization table's insertions to watch
	// (0 = L0 data counters, 1 = L1 tree counters).
	TableID uint64
}

// DefaultAnalyzerConfig matches the lifetime hierarchy and the PrimeProbe
// adversary.
func DefaultAnalyzerConfig() AnalyzerConfig {
	return AnalyzerConfig{
		Sets:      ctrSets,
		SetShift:  13,
		PageBins:  mjPage / mjOffset,
		PageShift: 9,
		BandWidth: ppPushDelta,
		Bands:     ppClasses,
		TableID:   0,
	}
}

// epochFeatures is one attacker epoch's binned observables.
type epochFeatures struct {
	setMiss []uint64 // counter-cache misses per set
	pageOff []uint64 // write events per page-offset bin
	bands   []uint64 // memo insertions per offset band (last = catch-all)
	inserts uint64
	events  uint64
}

func newEpochFeatures(cfg AnalyzerConfig) epochFeatures {
	return epochFeatures{
		setMiss: make([]uint64, cfg.Sets),
		pageOff: make([]uint64, cfg.PageBins),
		bands:   make([]uint64, cfg.Bands+1),
	}
}

func (f *epochFeatures) reset() {
	for i := range f.setMiss {
		f.setMiss[i] = 0
	}
	for i := range f.pageOff {
		f.pageOff[i] = 0
	}
	for i := range f.bands {
		f.bands[i] = 0
	}
	f.inserts = 0
	f.events = 0
}

// Analyzer consumes the engine's event stream (attach with
// obs.Tracer.SetSink) and accumulates per-epoch observable histograms.
// OnEvent is allocation-free: all bins are preallocated, so tapping a
// live simulation adds no allocations to the hot path. CloseEpoch and
// Report are driver-side and may allocate. Not safe for concurrent use
// (like the tracer it taps).
type Analyzer struct {
	cfg     AnalyzerConfig
	cur     epochFeatures
	epochs  []epochFeatures
	classes []int
}

// NewAnalyzer builds an analyzer (zero-value config fields take their
// defaults).
func NewAnalyzer(cfg AnalyzerConfig) *Analyzer {
	def := DefaultAnalyzerConfig()
	if cfg.Sets <= 0 {
		cfg.Sets, cfg.SetShift = def.Sets, def.SetShift
	}
	if cfg.PageBins <= 0 {
		cfg.PageBins, cfg.PageShift = def.PageBins, def.PageShift
	}
	if cfg.Bands <= 0 || cfg.BandWidth == 0 {
		cfg.Bands, cfg.BandWidth = def.Bands, def.BandWidth
	}
	return &Analyzer{cfg: cfg, cur: newEpochFeatures(cfg)}
}

// OnEvent implements obs.EventSink.
func (a *Analyzer) OnEvent(e obs.Event) {
	a.cur.events++
	switch e.Kind {
	case obs.EvCtrCacheMiss:
		a.cur.setMiss[(e.Addr>>a.cfg.SetShift)%uint64(a.cfg.Sets)]++
		if e.V2 == 1 {
			a.cur.pageOff[(e.Addr>>a.cfg.PageShift)%uint64(a.cfg.PageBins)]++
		}
	case obs.EvCtrCacheHit:
		if e.V2 == 1 {
			a.cur.pageOff[(e.Addr>>a.cfg.PageShift)%uint64(a.cfg.PageBins)]++
		}
	case obs.EvMemoInsert:
		if e.Addr != a.cfg.TableID {
			return
		}
		a.cur.inserts++
		band := a.cfg.Bands // catch-all
		if e.V1 > e.V2 {
			if b := (e.V1 - e.V2 - 1) / a.cfg.BandWidth; b < uint64(a.cfg.Bands) {
				band = int(b)
			}
		}
		a.cur.bands[band]++
	}
}

// CloseEpoch snapshots the current epoch's observables under the secret
// class the adversary used, then clears the accumulators for the next
// epoch.
func (a *Analyzer) CloseEpoch(class int) {
	snap := newEpochFeatures(a.cfg)
	copy(snap.setMiss, a.cur.setMiss)
	copy(snap.pageOff, a.cur.pageOff)
	copy(snap.bands, a.cur.bands)
	snap.inserts = a.cur.inserts
	snap.events = a.cur.events
	a.epochs = append(a.epochs, snap)
	a.classes = append(a.classes, class)
	a.cur.reset()
}

// Epochs returns the number of closed epochs.
func (a *Analyzer) Epochs() int { return len(a.epochs) }

// ChannelEstimate is one observable channel's leakage estimate across the
// closed epochs.
type ChannelEstimate struct {
	// Channel names the observable: "memo-insert" (argmax insertion-offset
	// band, or "none" when the epoch saw no insertion), "ctr-sets" (argmax
	// counter-cache miss set), or "pg-offset" (argmax write page-offset
	// bin).
	Channel string
	// Bits is the Miller–Madow-corrected plug-in mutual information
	// between secret class and per-epoch symbol, in bits per epoch
	// (floored at 0). BitsRaw is the uncorrected plug-in estimate.
	Bits, BitsRaw float64
	// Accuracy is the MAP classifier's training accuracy (an optimistic
	// attacker bound); Chance is the majority-class baseline.
	Accuracy, Chance float64
	// Classes/Symbols are the distinct observed counts; Epochs the sample
	// size.
	Classes, Symbols, Epochs int
}

// Report holds every channel's estimate.
type Report struct {
	Channels []ChannelEstimate
}

// Channel returns the named estimate.
func (r Report) Channel(name string) (ChannelEstimate, bool) {
	for _, c := range r.Channels {
		if c.Channel == name {
			return c, true
		}
	}
	return ChannelEstimate{}, false
}

// Report reduces the closed epochs to per-channel leakage estimates.
//
// Each channel's per-epoch symbol is the argmax of the epoch's histogram
// after template subtraction: the per-bin minimum across all epochs is
// subtracted first, cancelling the attacker's own constant-per-epoch
// traffic (e.g. the conflict-sweep misses that always land in the
// victim's counter-cache set) so only the secret-dependent residual
// competes. This is the standard self-calibration a real prime+probe
// attacker performs against its own noise floor.
func (a *Analyzer) Report() Report {
	symbolize := func(f func(epochFeatures) []uint64) []int {
		rows := make([][]uint64, len(a.epochs))
		for i, e := range a.epochs {
			rows[i] = f(e)
		}
		return templateSymbols(rows)
	}
	channels := []struct {
		name    string
		symbols []int
	}{
		{"memo-insert", func() []int {
			syms := symbolize(func(e epochFeatures) []uint64 { return e.bands })
			for i, e := range a.epochs {
				if e.inserts == 0 {
					syms[i] = len(e.bands) + 1 // dedicated "none" symbol
				}
			}
			return syms
		}()},
		{"ctr-sets", symbolize(func(e epochFeatures) []uint64 { return e.setMiss })},
		{"pg-offset", symbolize(func(e epochFeatures) []uint64 { return e.pageOff })},
	}
	rep := Report{}
	for _, ch := range channels {
		raw, corrected := MutualInformation(a.classes, ch.symbols)
		est := ChannelEstimate{
			Channel: ch.name,
			Bits:    corrected,
			BitsRaw: raw,
			Epochs:  len(a.classes),
		}
		est.Accuracy, est.Chance = mapAccuracy(a.classes, ch.symbols)
		est.Classes = distinct(a.classes)
		est.Symbols = distinct(ch.symbols)
		rep.Channels = append(rep.Channels, est)
	}
	return rep
}

// templateSymbols subtracts the per-bin minimum across epochs from each
// epoch's histogram and returns per-epoch argmax symbols (lowest index on
// ties; the bin count itself when the residual is all-zero, a dedicated
// "quiet" symbol).
func templateSymbols(rows [][]uint64) []int {
	out := make([]int, len(rows))
	if len(rows) == 0 {
		return out
	}
	base := make([]uint64, len(rows[0]))
	copy(base, rows[0])
	for _, r := range rows[1:] {
		for i, v := range r {
			if v < base[i] {
				base[i] = v
			}
		}
	}
	for e, r := range rows {
		best, bestV := len(r), uint64(0)
		for i, v := range r {
			if d := v - base[i]; d > bestV {
				best, bestV = i, d
			}
		}
		out[e] = best
	}
	return out
}

func distinct(xs []int) int {
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}

// MutualInformation returns the plug-in mutual information between the
// two paired sequences in bits, raw and with the Miller–Madow bias
// correction (Kx−1)(Ky−1)/(2N ln 2) subtracted and floored at 0. The
// plug-in estimate is biased upward on finite samples — an independent
// pair reads ≈ the correction term — so the corrected value is the
// headline number and small corrected values mean "no detectable
// leakage at this sample size".
func MutualInformation(xs, ys []int) (raw, corrected float64) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0, 0
	}
	joint := map[[2]int]float64{}
	px := map[int]float64{}
	py := map[int]float64{}
	inv := 1 / float64(n)
	for i := range xs {
		joint[[2]int{xs[i], ys[i]}] += inv
		px[xs[i]] += inv
		py[ys[i]] += inv
	}
	if len(px) == 1 || len(py) == 1 {
		return 0, 0 // degenerate marginal: MI is exactly zero
	}
	for k, p := range joint {
		raw += p * math.Log2(p/(px[k[0]]*py[k[1]]))
	}
	if raw < 0 {
		raw = 0 // guard tiny negative float error
	}
	mm := float64(len(px)-1) * float64(len(py)-1) / (2 * float64(n) * math.Ln2)
	corrected = raw - mm
	if corrected < 0 {
		corrected = 0
	}
	return raw, corrected
}

// mapAccuracy is the maximum-a-posteriori classifier's training accuracy:
// for each symbol predict its most frequent class. Chance is the majority
// class frequency (what a symbol-blind classifier achieves).
func mapAccuracy(classes, symbols []int) (acc, chance float64) {
	n := len(classes)
	if n == 0 {
		return 0, 0
	}
	bySym := map[int]map[int]int{}
	byClass := map[int]int{}
	for i := range classes {
		m := bySym[symbols[i]]
		if m == nil {
			m = map[int]int{}
			bySym[symbols[i]] = m
		}
		m[classes[i]]++
		byClass[classes[i]]++
	}
	correct := 0
	for _, m := range bySym {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	majority := 0
	for _, c := range byClass {
		if c > majority {
			majority = c
		}
	}
	return float64(correct) / float64(n), float64(majority) / float64(n)
}
