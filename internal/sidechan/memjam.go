package sidechan

import (
	"rmcc/internal/rng"
	"rmcc/internal/workload"
)

// MemJam is a MemJam-style 4K-aliasing false-dependency stream. The
// victim's stores land at a secret-dependent 512-byte-aligned offset
// o = k·512 within its 4 KiB pages; the attacker streams loads over every
// candidate offset across many pages. Loads whose page offset matches the
// victim's (addr ≡ o mod 4096) suffer the false-dependency replay the
// original attack exploits — modeled here by re-issuing the aliased load,
// a constant per-epoch count so the epoch length stays class-independent.
//
// The secret reaches the trace through address structure, not table
// dynamics: the victim's writebacks carry their page offset into the
// counter-cache events, so binning write events by (addr mod 4096)/512
// recovers k under every protection mode — the pg-offset channel. The
// memoization table adds nothing here (the victim never pushes a counter
// past the table max), which is exactly the contrast the leakage figure
// shows against PrimeProbe. See docs/SIDECHANNEL.md.
type MemJam struct {
	vbuf, abuf, conflict, pad uint64
	footprint                 uint64
}

// Tunables.
const (
	mjClasses = 4
	mjOffset  = 512  // candidate offset granularity (bank-conflict quantum)
	mjPage    = 4096 // 4K-aliasing page size
	mjPages   = 8    // victim pages touched per round
	mjRounds  = 4    // victim store rounds per epoch
	mjProbes  = 20   // attacker lines per candidate offset
	mjPasses  = 2    // attacker passes per epoch

	mjClassSalt = 0x4a11a5ed4a11a5ed
)

// Derived MC-access accounting (see the PrimeProbe block for the model):
// every first-touch-per-pass load and every victim access misses the LLC;
// the 4K-aliasing replay loads are L1 hits and never reach the MC.
const (
	mjPassCPU   = mjClasses*mjProbes + mjProbes // probes + replays
	mjPassMC    = mjClasses * mjProbes
	mjVictimCPU = mjRounds * mjPages * (1 + evictWays)
	mjEpochCPU  = mjVictimCPU + mjPasses*mjPassCPU
	mjEpochMC   = mjVictimCPU + mjRounds*mjPages + mjPasses*mjPassMC
	// mjWarmPad extends the warmup pass with single-touch clean reads so
	// warmup spans exactly one table epoch of MC accesses.
	mjWarmPad = mjEpochMC - mjPassMC
)

// NewMemJam lays out the victim and attacker buffers.
func NewMemJam() *MemJam {
	l := newRegionAlloc()
	w := &MemJam{}
	w.vbuf = l.region(mjPages * mjPage)
	w.abuf = l.region(mjProbes*conflictStride + mjClasses*mjOffset)
	w.conflict = l.region(evictWays*conflictStride + mjPages*mjPage)
	w.pad = l.region(mjWarmPad * lineBytes)
	w.footprint = l.next
	return w
}

// Name implements workload.Workload.
func (w *MemJam) Name() string { return "memjam4k" }

// FootprintBytes implements workload.Workload.
func (w *MemJam) FootprintBytes() uint64 { return w.footprint }

// Classes implements Adversary.
func (w *MemJam) Classes() int { return mjClasses }

// WarmupAccesses implements Adversary: one attacker pass settles the
// caches (replays included, against offset 0, so the count is fixed),
// plus the pad reads that round warmup up to one full table epoch.
func (w *MemJam) WarmupAccesses() uint64 {
	return mjPassCPU + mjWarmPad
}

// EpochAccesses implements Adversary.
func (w *MemJam) EpochAccesses() uint64 { return mjEpochCPU }

// EpochMCAccesses implements Adversary.
func (w *MemJam) EpochMCAccesses() uint64 { return mjEpochMC }

// Schedule implements Adversary.
func (w *MemJam) Schedule(seed uint64, epochs int) []int {
	cls := rng.New(seed ^ mjClassSalt)
	out := make([]int, epochs)
	for i := range out {
		out[i] = cls.Intn(mjClasses)
	}
	return out
}

// Run implements workload.Workload.
func (w *MemJam) Run(seed uint64, sink workload.Sink) {
	e := &emit{sink: sink}
	cls := rng.New(seed ^ mjClassSalt)

	w.pass(e, 0) // warmup
	for i := 0; i < mjWarmPad && !e.stopped; i++ {
		e.load(w.pad + uint64(i)*lineBytes)
	}

	for !e.stopped {
		k := cls.Intn(mjClasses)
		// Victim: secret-offset stores across its pages, each forced out
		// to the MC so the writeback (and its page offset) is observable.
		for r := 0; r < mjRounds && !e.stopped; r++ {
			for p := 0; p < mjPages && !e.stopped; p++ {
				off := uint64(p)*mjPage + uint64(k)*mjOffset
				e.store(w.vbuf + off)
				w.conflictSweep(e, off)
			}
		}
		for pass := 0; pass < mjPasses && !e.stopped; pass++ {
			w.pass(e, k)
		}
	}
}

// pass streams the attacker's candidate-offset probes; loads aliasing the
// victim's current offset k are replayed once (the 4K-aliasing false
// dependency).
func (w *MemJam) pass(e *emit, k int) {
	for c := 0; c < mjClasses; c++ {
		for m := 0; m < mjProbes; m++ {
			addr := w.abuf + uint64(c)*mjOffset + uint64(m)*conflictStride
			if !e.load(addr) {
				return
			}
			if c == k {
				if !e.load(addr) {
					return
				}
			}
		}
	}
}

// conflictSweep forces the victim's just-stored line back out to the MC:
// the conflict lines reuse the victim line's sub-128 KiB offset, so they
// share its set index in every cache level (all set periods divide
// conflictStride) and out-associate the deepest one.
func (w *MemJam) conflictSweep(e *emit, off uint64) {
	for i := 0; i < evictWays; i++ {
		if !e.load(w.conflict + off + uint64(i)*conflictStride) {
			return
		}
	}
}
