package sidechan

import (
	"rmcc/internal/rng"
	"rmcc/internal/workload"
)

// PrimeProbe is the counter-cache prime+probe sweeper with a
// secret-dependent victim interleaved. Each epoch:
//
//  1. prime: touch probeWays lines in every counter-cache set, fully
//     evicting all 16 sets (and self-thrashing the aligned LLC sets);
//  2. victim write phase: the victim performs 16 + 32·k secret-dependent
//     writebacks of one scratch block (k ∈ 0..3 is the epoch's secret
//     class), padded to a constant 112 slots with writebacks rotated over
//     64 dummy lines so the epoch length never depends on the secret (the
//     rotation keeps every dummy counter far below the memo table's
//     range). Every slot evicts the stored line through the whole
//     hierarchy with a 128 KiB-strided conflict sweep, forcing the
//     writeback — and the fetch-read before it — to reach the MC;
//  3. background writer: 128 writebacks of an unrelated block keep the
//     Observed-System-Max register far above the memo table, so the
//     hardened mode's OSM clamp never engages (a clamped insertion at
//     OSM+1 would re-leak the maximum counter);
//  4. victim read burst: 480 reads of the scratch block (re-evicted after
//     each), all above the memo table max — these drive the table's
//     over-max count across its insertion threshold, so the one group
//     insertion per epoch fires mid-burst, when the epoch's read
//     histogram peaks at the victim's counter;
//  5. decoy reads: 96 distinct lines whose counter blocks all map to
//     counter-cache set k+1, the classic secret-dependent-set signal;
//  6. probe: re-walk the sweep, observing (via the trace) which counter
//     sets the victim touched.
//
// Two channels result. The memo-insert channel: the stock policy places
// the new group's start at the first watchpoint covering the quantile of
// the epoch's reads — the first grid point above the victim's counter —
// so the insertion offset (start − previous table max) is exactly
// 9 + 32k in steady state: the secret, read straight out of the table's
// adaptation. The ctr-sets channel: the per-set counter-cache miss
// histogram peaks at the decoy set. See docs/SIDECHANNEL.md for the
// arithmetic and the threshold/quantile tuning RunLeakage applies.
//
// The access stream is deterministic per seed (the only randomness is the
// per-epoch class sequence, reproduced by Schedule) and loops epochs
// until the sink stops it.
type PrimeProbe struct {
	probe, decoy, victim, dummy, bg, conflict, pad uint64
	footprint                                      uint64
}

// Tunables (see the epoch walk above; counts are per epoch).
const (
	ppClasses   = 4
	ppPushBase  = 16
	ppPushDelta = 32
	ppPushSlots = ppPushBase + (ppClasses-1)*ppPushDelta // constant padding
	ppBgSlots   = 128
	ppBurst     = 480
	ppDecoys    = 96
	// ppDummyLines spreads the padding writebacks so each dummy counter
	// climbs ~(112−16)/64 per epoch and never crosses the table max.
	ppDummyLines = 64

	// Warmup slot counts stop at counter 120 — just under the cold
	// table's 0..127 coverage, so warmup generates no over-max reads and
	// the insertion threshold starts the first epoch at zero.
	ppVictimWarm = 120
	ppDummyWarm  = 2 * ppDummyLines
	ppBgWarm     = 120

	ppClassSalt = 0x05ca1ab1ec1a55e5
)

// Derived MC-access accounting. Every CPU access the adversary issues is
// an LLC miss (probe/decoy/conflict lines self-thrash their sets, pushed
// lines are flushed per slot), so MC reads == CPU accesses; each push
// slot additionally produces exactly one writeback.
const (
	ppSweepCPU    = ctrSets * probeWays // one full (unsharded) sweep
	ppEpochWrites = ppPushSlots + ppBgSlots
	ppEpochCPU    = 2*ppSweepCPU + (ppPushSlots+ppBgSlots+ppBurst)*(1+evictWays) + ppDecoys
	ppEpochMC     = ppEpochCPU + ppEpochWrites

	ppWarmWrites = ppVictimWarm + ppDummyWarm + ppBgWarm
	ppWarmRawCPU = ppSweepCPU + ppWarmWrites*(1+evictWays)
	// ppWarmPad extends the warmup with single-touch clean reads so the
	// warmup spans exactly one table epoch of MC accesses.
	ppWarmPad = ppEpochMC - (ppWarmRawCPU + ppWarmWrites)
)

// NewPrimeProbe lays out the attacker's address space.
func NewPrimeProbe() *PrimeProbe {
	l := newRegionAlloc()
	w := &PrimeProbe{}
	w.probe = l.region(probeWays * conflictStride)
	w.decoy = l.region(ppDecoys*conflictStride + (ppClasses+1)*ctrCoverage)
	w.victim = l.region(lineBytes)
	w.dummy = l.region(ppDummyLines * lineBytes)
	w.bg = l.region(lineBytes)
	w.conflict = l.region(evictWays*conflictStride + ppDummyLines*lineBytes)
	w.pad = l.region(ppWarmPad * lineBytes)
	w.footprint = l.next
	return w
}

// Name implements workload.Workload.
func (w *PrimeProbe) Name() string { return "ppSweep" }

// FootprintBytes implements workload.Workload.
func (w *PrimeProbe) FootprintBytes() uint64 { return w.footprint }

// Classes implements Adversary.
func (w *PrimeProbe) Classes() int { return ppClasses }

// WarmupAccesses implements Adversary: one sweep, the warm pushes, and
// the pad reads that round warmup up to one full table epoch.
func (w *PrimeProbe) WarmupAccesses() uint64 {
	return ppWarmRawCPU + ppWarmPad
}

// EpochAccesses implements Adversary: the constant per-epoch length.
func (w *PrimeProbe) EpochAccesses() uint64 { return ppEpochCPU }

// EpochMCAccesses implements Adversary.
func (w *PrimeProbe) EpochMCAccesses() uint64 { return ppEpochMC }

// sweepLen is the access count of one prime (or probe) pass for a shard.
func sweepLen(shard, of int) uint64 {
	sets := uint64(0)
	for s := shard; s < ctrSets; s += of {
		sets++
	}
	return sets * probeWays
}

// Schedule implements Adversary.
func (w *PrimeProbe) Schedule(seed uint64, epochs int) []int {
	cls := rng.New(seed ^ ppClassSalt)
	out := make([]int, epochs)
	for i := range out {
		out[i] = cls.Intn(ppClasses)
	}
	return out
}

// Run implements workload.Workload.
func (w *PrimeProbe) Run(seed uint64, sink workload.Sink) {
	w.RunShard(0, 1, seed, sink)
}

// RunShard implements workload.Sharded: shard i of N walks counter-cache
// sets i, i+N, … in the prime/probe passes; shard 0 additionally runs the
// victim, background, burst and decoy phases.
func (w *PrimeProbe) RunShard(shard, of int, seed uint64, sink workload.Sink) {
	if of <= 0 {
		of = 1
	}
	e := &emit{sink: sink}
	cls := rng.New(seed ^ ppClassSalt)

	// Warmup: one sweep to settle the caches, then lift the victim and
	// background counters to the top of the cold table's coverage.
	w.sweep(e, shard, of)
	if shard == 0 {
		w.pushSlots(e, w.victim, ppVictimWarm, 1)
		w.pushSlots(e, w.dummy, ppDummyWarm, ppDummyLines)
		w.pushSlots(e, w.bg, ppBgWarm, 1)
		for i := 0; i < ppWarmPad && !e.stopped; i++ {
			e.load(w.pad + uint64(i)*lineBytes)
		}
	}

	dummyPhase := 0
	for !e.stopped {
		k := cls.Intn(ppClasses)
		w.sweep(e, shard, of) // prime
		if shard == 0 {
			w.pushSlots(e, w.victim, ppPushBase+k*ppPushDelta, 1)
			// Rotate the dummy padding's start line so consecutive epochs
			// spread their writes evenly regardless of k.
			pad := ppPushSlots - (ppPushBase + k*ppPushDelta)
			w.pushSlotsFrom(e, w.dummy, pad, ppDummyLines, dummyPhase)
			dummyPhase = (dummyPhase + pad) % ppDummyLines
			w.pushSlots(e, w.bg, ppBgSlots, 1)
			for r := 0; r < ppBurst && !e.stopped; r++ {
				e.load(w.victim)
				w.conflictSweep(e, 0)
			}
			for j := 0; j < ppDecoys && !e.stopped; j++ {
				e.load(w.decoy + uint64(k+1)*ctrCoverage + uint64(j)*conflictStride)
			}
		}
		w.sweep(e, shard, of) // probe
	}
}

// sweep walks the shard's counter-cache sets with probeWays lines each.
func (w *PrimeProbe) sweep(e *emit, shard, of int) {
	for s := shard; s < ctrSets; s += of {
		for way := 0; way < probeWays; way++ {
			if !e.load(w.probe + uint64(way)*conflictStride + uint64(s)*ctrCoverage) {
				return
			}
		}
	}
}

// pushSlots performs n store+evict slots rotating over the first lines
// lines of base: each store dirties a line and the conflict sweep forces
// the writeback (fetch-read + counter increment) to the MC.
func (w *PrimeProbe) pushSlots(e *emit, base uint64, n, lines int) {
	w.pushSlotsFrom(e, base, n, lines, 0)
}

func (w *PrimeProbe) pushSlotsFrom(e *emit, base uint64, n, lines, phase int) {
	for i := 0; i < n; i++ {
		off := uint64((phase+i)%lines) * lineBytes
		if !e.store(base + off) {
			return
		}
		w.conflictSweep(e, off)
	}
}

// conflictSweep flushes the line at sub-128 KiB offset off out of every
// cache level (the conflict lines share its set index everywhere, and
// evictWays covers the full L1→L2→LLC cascade).
func (w *PrimeProbe) conflictSweep(e *emit, off uint64) {
	for i := 0; i < evictWays; i++ {
		if !e.load(w.conflict + off + uint64(i)*conflictStride) {
			return
		}
	}
}
