package sidechan

import (
	"encoding/binary"
	"testing"

	"rmcc/internal/obs"
)

// FuzzAnalyzerIngest drives the analyzer with arbitrary event streams and
// epoch boundaries: whatever the engine emits (or a corrupted trace
// replays), ingestion and reporting must never panic or index out of
// bounds.
func FuzzAnalyzerIngest(f *testing.F) {
	seed := make([]byte, 0, 64)
	for _, e := range []obs.Event{
		{Kind: obs.EvCtrCacheMiss, Addr: 0x2000, V1: 5, V2: 1},
		{Kind: obs.EvMemoInsert, Addr: 0, V1: 1041, V2: 1000},
		{Kind: obs.EvMemoInsert, Addr: 0, V1: 0, V2: ^uint64(0)},
	} {
		var b [26]byte
		b[0] = byte(e.Kind)
		binary.LittleEndian.PutUint64(b[1:], e.Addr)
		binary.LittleEndian.PutUint64(b[9:], e.V1)
		binary.LittleEndian.PutUint64(b[17:], e.V2)
		b[25] = 1 // close an epoch after this event
		seed = append(seed, b[:]...)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		an := NewAnalyzer(AnalyzerConfig{})
		for len(data) >= 26 {
			rec := data[:26]
			data = data[26:]
			an.OnEvent(obs.Event{
				Kind: obs.EventKind(rec[0] % byte(obs.NumEventKinds)),
				Addr: binary.LittleEndian.Uint64(rec[1:]),
				V1:   binary.LittleEndian.Uint64(rec[9:]),
				V2:   binary.LittleEndian.Uint64(rec[17:]),
			})
			if rec[25]&1 == 1 {
				an.CloseEpoch(int(rec[25] >> 1 & 0x7))
			}
		}
		rep := an.Report()
		if len(rep.Channels) != 3 {
			t.Fatalf("report has %d channels, want 3", len(rep.Channels))
		}
		for _, c := range rep.Channels {
			if c.Bits < 0 || c.BitsRaw < 0 || c.Accuracy < 0 || c.Accuracy > 1 {
				t.Fatalf("channel %s out of range: %+v", c.Channel, c)
			}
		}
	})
}
