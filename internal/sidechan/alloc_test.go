package sidechan

import (
	"testing"

	"rmcc/internal/obs"
)

// TestAnalyzerIngestAllocFree: the analyzer's OnEvent sits on the engine's
// per-access emit path, so it must never allocate — the satellite alloc
// guard for the tap.
func TestAnalyzerIngestAllocFree(t *testing.T) {
	an := NewAnalyzer(AnalyzerConfig{})
	events := []obs.Event{
		ctrMiss(0x2000, false),
		ctrMiss(0x4200, true),
		{Kind: obs.EvCtrCacheHit, Addr: 0x600, V2: 1},
		memoInsert(0, 1041, 1000),
		memoInsert(1, 77, 0),
		{Kind: obs.EvEpochRollover, Addr: 0}, // unhandled kind
	}
	avg := testing.AllocsPerRun(1000, func() {
		for _, e := range events {
			an.OnEvent(e)
		}
	})
	if avg != 0 {
		t.Errorf("Analyzer.OnEvent allocates %v allocs/run, want 0", avg)
	}
}

// TestTracerEmitAllocFree: emitting through the tracer — detached, and
// with the analyzer attached — must stay allocation-free, so attaching the
// tap costs the simulation nothing on the hot path.
func TestTracerEmitAllocFree(t *testing.T) {
	tr := obs.NewTracer(128)
	detached := testing.AllocsPerRun(1000, func() {
		tr.Emit(obs.EvCtrCacheMiss, 0x2000, 5, 0)
	})
	if detached != 0 {
		t.Errorf("detached tracer Emit allocates %v allocs/run, want 0", detached)
	}
	tr.SetSink(NewAnalyzer(AnalyzerConfig{}))
	attached := testing.AllocsPerRun(1000, func() {
		tr.Emit(obs.EvCtrCacheMiss, 0x2000, 5, 0)
		tr.Emit(obs.EvMemoInsert, 0, 1041, 1000)
	})
	if attached != 0 {
		t.Errorf("tracer Emit with analyzer sink allocates %v allocs/run, want 0", attached)
	}
}
