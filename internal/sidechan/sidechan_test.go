package sidechan

import (
	"testing"

	"rmcc/internal/workload"
)

// capture collects the first n accesses of a stream.
func capture(n int, run func(workload.Sink)) []workload.Access {
	out := make([]workload.Access, 0, n)
	run(func(a workload.Access) bool {
		out = append(out, a)
		return len(out) < n
	})
	return out
}

func sameStream(a, b []workload.Access) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAdversaryDeterminism: the same seed must reproduce a byte-identical
// access stream — the leakage driver's Schedule/Run pairing and every
// figure's reproducibility depend on it.
func TestAdversaryDeterminism(t *testing.T) {
	for _, adv := range []Adversary{NewPrimeProbe(), NewMemJam()} {
		n := int(adv.WarmupAccesses() + 3*adv.EpochAccesses())
		s1 := capture(n, func(s workload.Sink) { adv.Run(7, s) })
		s2 := capture(n, func(s workload.Sink) { adv.Run(7, s) })
		if !sameStream(s1, s2) {
			t.Errorf("%s: same seed produced different streams", adv.Name())
		}
		s3 := capture(n, func(s workload.Sink) { adv.Run(8, s) })
		if sameStream(s1, s3) {
			t.Errorf("%s: different seeds produced identical streams", adv.Name())
		}
	}
}

// TestPrimeProbeShardDeterminism covers the sharded entry point: each
// shard's stream must be deterministic, and shard 0 of N must still carry
// the victim phases (the non-zero shards only sweep).
func TestPrimeProbeShardDeterminism(t *testing.T) {
	w := NewPrimeProbe()
	const n = 100_000
	for shard := 0; shard < 4; shard++ {
		s1 := capture(n, func(s workload.Sink) { w.RunShard(shard, 4, 5, s) })
		s2 := capture(n, func(s workload.Sink) { w.RunShard(shard, 4, 5, s) })
		if !sameStream(s1, s2) {
			t.Errorf("shard %d: same seed produced different streams", shard)
		}
		writes := 0
		for _, a := range s1 {
			if a.Write {
				writes++
			}
		}
		if shard == 0 && writes == 0 {
			t.Error("shard 0 carries no victim writes")
		}
		if shard != 0 && writes != 0 {
			t.Errorf("shard %d emits %d writes, want 0 (sweep only)", shard, writes)
		}
	}
}

// TestScheduleDeterminism: Schedule must reproduce the classes Run draws.
func TestScheduleDeterminism(t *testing.T) {
	for _, adv := range []Adversary{NewPrimeProbe(), NewMemJam()} {
		a := adv.Schedule(3, 40)
		b := adv.Schedule(3, 40)
		if len(a) != 40 {
			t.Fatalf("%s: schedule length %d", adv.Name(), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: schedule not deterministic at %d", adv.Name(), i)
			}
			if a[i] < 0 || a[i] >= adv.Classes() {
				t.Errorf("%s: class %d out of range", adv.Name(), a[i])
			}
		}
	}
}

// TestEpochAccounting pins the derived epoch lengths: the leakage driver's
// table-epoch alignment (EpochMCAccesses) and epoch slicing (EpochAccesses)
// silently desynchronize if a phase count changes without these.
func TestEpochAccounting(t *testing.T) {
	pp := NewPrimeProbe()
	if got := pp.EpochAccesses(); got != 30672 {
		t.Errorf("ppSweep EpochAccesses = %d, want 30672", got)
	}
	if got := pp.EpochMCAccesses(); got != 30912 {
		t.Errorf("ppSweep EpochMCAccesses = %d, want 30912", got)
	}
	if got := pp.WarmupAccesses(); got != 30544 {
		t.Errorf("ppSweep WarmupAccesses = %d, want 30544", got)
	}
	mj := NewMemJam()
	if got := mj.EpochAccesses(); got != 1512 {
		t.Errorf("memjam4k EpochAccesses = %d, want 1512", got)
	}
	if got := mj.EpochMCAccesses(); got != 1504 {
		t.Errorf("memjam4k EpochMCAccesses = %d, want 1504", got)
	}

	// The epoch access counts must match what Run actually emits: capture
	// warmup + 2 epochs and check the boundaries line up exactly.
	for _, adv := range []Adversary{NewPrimeProbe(), NewMemJam()} {
		warm, per := int(adv.WarmupAccesses()), int(adv.EpochAccesses())
		s := capture(warm+2*per, func(sk workload.Sink) { adv.Run(1, sk) })
		if len(s) != warm+2*per {
			t.Errorf("%s: stream ended early (%d < %d)", adv.Name(), len(s), warm+2*per)
		}
	}
}

// TestRegistryResolution: the adversaries must resolve through the shared
// workload registry (the path rmccd, rmcc-loadgen and rmccsim use).
func TestRegistryResolution(t *testing.T) {
	for _, name := range []string{"ppSweep", "memjam4k"} {
		w, ok := workload.ByName(workload.SizeTest, 1, name)
		if !ok {
			t.Fatalf("workload.ByName(%q) did not resolve", name)
		}
		if _, ok := w.(Adversary); !ok {
			t.Fatalf("%q does not implement sidechan.Adversary", name)
		}
	}
	names := workload.Names()
	found := 0
	for _, n := range names {
		if n == "ppSweep" || n == "memjam4k" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("workload.Names() = %v, want both adversaries listed", names)
	}
}
