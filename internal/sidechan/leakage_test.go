package sidechan

import (
	"reflect"
	"testing"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
)

// TestHardenedLeakageSmoke is the PR's headline assertion, mirrored by the
// CI sidechannel smoke job: the stock RMCC insertion policy leaks the
// victim's secret through the memo-insert channel at high capacity, and
// the hardened (randomized-insertion) mode cuts that capacity by well over
// half. The counter-cache set channel is protection-independent and must
// be unaffected — hardening fixes the table, not the cache.
func TestHardenedLeakageSmoke(t *testing.T) {
	run := func(hardened bool) Report {
		res, err := RunLeakage(NewPrimeProbe(), LeakageOptions{
			Mode:     engine.RMCC,
			Scheme:   counter.Morphable,
			Hardened: hardened,
			Seed:     7,
			Epochs:   32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report
	}
	stock := run(false)
	hard := run(true)

	si, _ := stock.Channel("memo-insert")
	hi, _ := hard.Channel("memo-insert")
	if si.Bits < 1.0 {
		t.Errorf("stock memo-insert MI = %.3f bits, want > 1.0 (the channel exists)", si.Bits)
	}
	if si.Accuracy < 0.9 {
		t.Errorf("stock memo-insert accuracy = %.3f, want > 0.9", si.Accuracy)
	}
	if hi.Bits >= 0.5*si.Bits {
		t.Errorf("hardened memo-insert MI = %.3f bits, want < half of stock (%.3f)",
			hi.Bits, si.Bits)
	}

	ss, _ := stock.Channel("ctr-sets")
	hs, _ := hard.Channel("ctr-sets")
	if ss.Bits < 1.0 {
		t.Errorf("ctr-sets MI = %.3f bits, want > 1.0 (cache channel exists)", ss.Bits)
	}
	if ss.Bits != hs.Bits {
		t.Errorf("ctr-sets MI changed under hardening (%.3f vs %.3f): hardening must not touch the cache channel",
			ss.Bits, hs.Bits)
	}
}

// TestMemJamLeakage: the 4K-aliasing adversary leaks through write page
// offsets under every mode, and never through the memo table (its victim
// never pushes a counter past the table max) — the contrast FigureLeakage
// plots.
func TestMemJamLeakage(t *testing.T) {
	res, err := RunLeakage(NewMemJam(), LeakageOptions{
		Mode:   engine.RMCC,
		Scheme: counter.Morphable,
		Seed:   7,
		Epochs: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := res.Report.Channel("pg-offset")
	if pg.Bits < 1.0 {
		t.Errorf("pg-offset MI = %.3f bits, want > 1.0", pg.Bits)
	}
	mi, _ := res.Report.Channel("memo-insert")
	if mi.Bits != 0 {
		t.Errorf("memjam memo-insert MI = %.3f bits, want 0", mi.Bits)
	}
}

// TestRunLeakageDeterministic: identical options must produce a
// byte-identical report (figures and the CI gate depend on it).
func TestRunLeakageDeterministic(t *testing.T) {
	opt := LeakageOptions{
		Mode: engine.RMCC, Scheme: counter.Morphable, Seed: 11, Epochs: 8,
	}
	a, err := RunLeakage(NewPrimeProbe(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLeakage(NewPrimeProbe(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same options produced different results:\n%+v\nvs\n%+v", a.Report, b.Report)
	}
}

// TestRunLeakageBaselineModes: the driver must also run under the
// non-memoizing baselines FigureLeakage compares against (no table ⇒ no
// memo-insert leakage, but the cache channels persist).
func TestRunLeakageBaselineModes(t *testing.T) {
	for _, scheme := range []counter.Scheme{counter.SGX, counter.Morphable} {
		res, err := RunLeakage(NewPrimeProbe(), LeakageOptions{
			Mode: engine.Baseline, Scheme: scheme, Seed: 7, Epochs: 8,
		})
		if err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
		mi, _ := res.Report.Channel("memo-insert")
		if mi.Bits != 0 {
			t.Errorf("scheme %v: baseline memo-insert MI = %.3f, want 0", scheme, mi.Bits)
		}
	}
}
