package sidechan

import (
	"math"
	"testing"

	"rmcc/internal/obs"
)

// TestMutualInformationGolden checks the plug-in estimate and the
// Miller–Madow correction against hand-computed values.
func TestMutualInformationGolden(t *testing.T) {
	// Hand case: 8 samples, 2×2 alphabet, one discordant pair.
	// Joint: p(0,0)=3/8 p(1,1)=3/8 p(1,0)=1/8 p(0,1)=1/8; marginals 1/2.
	// raw = 2·(3/8)·log2(3/2) + 2·(1/8)·log2(1/2) = 0.75·log2(1.5) − 0.25
	//     = 0.18872 1875…; MM = (1·1)/(16 ln2) = 0.0901689…
	xs := []int{0, 1, 0, 1, 1, 0, 1, 0}
	ys := []int{0, 1, 0, 1, 1, 0, 0, 1}
	raw, corrected := MutualInformation(xs, ys)
	if math.Abs(raw-0.188722) > 1e-5 {
		t.Errorf("raw = %.6f, want 0.188722", raw)
	}
	if math.Abs(corrected-0.098553) > 1e-5 {
		t.Errorf("corrected = %.6f, want 0.098553", corrected)
	}

	// Perfect 4-ary channel: raw = 2 bits exactly.
	var px, py []int
	for i := 0; i < 64; i++ {
		px = append(px, i%4)
		py = append(py, (i%4)+10)
	}
	raw, corrected = MutualInformation(px, py)
	if math.Abs(raw-2) > 1e-12 {
		t.Errorf("perfect channel raw = %v, want 2", raw)
	}
	want := 2 - 9/(128*math.Ln2)
	if math.Abs(corrected-want) > 1e-9 {
		t.Errorf("perfect channel corrected = %v, want %v", corrected, want)
	}

	// Independent pair: corrected must floor at ~0 (raw is the MM bias).
	var ix, iy []int
	for i := 0; i < 256; i++ {
		ix = append(ix, i%2)
		iy = append(iy, (i/2)%2)
	}
	raw, corrected = MutualInformation(ix, iy)
	if raw != 0 || corrected != 0 {
		t.Errorf("independent pair = (%v, %v), want (0, 0)", raw, corrected)
	}

	// Degenerate inputs.
	if r, c := MutualInformation(nil, nil); r != 0 || c != 0 {
		t.Errorf("empty input = (%v, %v)", r, c)
	}
	if r, c := MutualInformation([]int{1}, []int{1, 2}); r != 0 || c != 0 {
		t.Errorf("mismatched lengths = (%v, %v)", r, c)
	}
}

func TestMapAccuracy(t *testing.T) {
	// Symbol 0 → class 0 (3 of 4), symbol 1 → class 1 (2 of 2).
	classes := []int{0, 0, 0, 1, 1, 1}
	symbols := []int{0, 0, 0, 0, 1, 1}
	acc, chance := mapAccuracy(classes, symbols)
	if math.Abs(acc-5.0/6) > 1e-12 {
		t.Errorf("acc = %v, want 5/6", acc)
	}
	if math.Abs(chance-0.5) > 1e-12 {
		t.Errorf("chance = %v, want 1/2", chance)
	}
}

func TestTemplateSymbols(t *testing.T) {
	// Constant background of 100 in bin 0 everywhere; per-epoch spikes in
	// different bins. Plain argmax would always say bin 0; the template
	// residual must recover the spikes.
	rows := [][]uint64{
		{100, 5, 0, 0},
		{100, 0, 7, 0},
		{100, 0, 0, 9},
		{100, 0, 0, 0}, // no residual at all → quiet symbol len(row)
	}
	want := []int{1, 2, 3, 4}
	got := templateSymbols(rows)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("epoch %d: symbol %d, want %d", i, got[i], want[i])
		}
	}
	if out := templateSymbols(nil); len(out) != 0 {
		t.Errorf("empty rows produced %v", out)
	}
}

// mkEvent helpers for synthetic ingestion.
func ctrMiss(addr uint64, write bool) obs.Event {
	v2 := uint64(0)
	if write {
		v2 = 1
	}
	return obs.Event{Kind: obs.EvCtrCacheMiss, Addr: addr, V2: v2}
}

func memoInsert(table, start, maxBefore uint64) obs.Event {
	return obs.Event{Kind: obs.EvMemoInsert, Addr: table, V1: start, V2: maxBefore}
}

// TestAnalyzerBinning feeds a synthetic event stream with known structure
// and checks every channel's recovered symbols and MI.
func TestAnalyzerBinning(t *testing.T) {
	an := NewAnalyzer(AnalyzerConfig{})
	cfg := DefaultAnalyzerConfig()

	// Four epochs, classes 0,1,0,1. Per epoch: a counter-set spike at set
	// 2+class, a write page-offset spike at bin class, and one memo
	// insertion at offset 9+32·class (band = class).
	classes := []int{0, 1, 0, 1}
	for _, k := range classes {
		for i := 0; i < 10; i++ {
			an.OnEvent(ctrMiss(uint64(2+k)<<cfg.SetShift, false))
			an.OnEvent(ctrMiss(uint64(k)<<cfg.PageShift, true))
		}
		an.OnEvent(memoInsert(0, 1000+uint64(9+32*k), 1000))
		an.OnEvent(memoInsert(1, 9999, 0)) // wrong table: must be ignored
		an.CloseEpoch(k)
	}
	if an.Epochs() != 4 {
		t.Fatalf("Epochs() = %d, want 4", an.Epochs())
	}
	rep := an.Report()
	if len(rep.Channels) != 3 {
		t.Fatalf("channels = %d, want 3", len(rep.Channels))
	}
	for _, name := range []string{"memo-insert", "ctr-sets", "pg-offset"} {
		est, ok := rep.Channel(name)
		if !ok {
			t.Fatalf("channel %q missing", name)
		}
		if est.BitsRaw < 0.999 {
			t.Errorf("%s: raw MI = %v, want ~1 bit (perfect binary channel)", name, est.BitsRaw)
		}
		if est.Accuracy != 1 {
			t.Errorf("%s: accuracy = %v, want 1", name, est.Accuracy)
		}
		if est.Epochs != 4 || est.Classes != 2 || est.Symbols != 2 {
			t.Errorf("%s: epochs/classes/symbols = %d/%d/%d", name, est.Epochs, est.Classes, est.Symbols)
		}
	}
	if _, ok := rep.Channel("nope"); ok {
		t.Error("unknown channel resolved")
	}
}

// TestAnalyzerNoneSymbol: epochs without any insertion must collapse to the
// dedicated "none" symbol, not inherit a stale band.
func TestAnalyzerNoneSymbol(t *testing.T) {
	an := NewAnalyzer(AnalyzerConfig{})
	an.OnEvent(memoInsert(0, 1009, 1000))
	an.CloseEpoch(0)
	an.CloseEpoch(1) // silent epoch
	rep := an.Report()
	est, _ := rep.Channel("memo-insert")
	if est.Symbols != 2 {
		t.Errorf("symbols = %d, want 2 (band 0 and none)", est.Symbols)
	}
}

// TestAnalyzerCatchAllBand: offsets beyond the banded range land in the
// catch-all, not out of bounds.
func TestAnalyzerCatchAllBand(t *testing.T) {
	an := NewAnalyzer(AnalyzerConfig{})
	an.OnEvent(memoInsert(0, 100_000, 0)) // enormous offset
	an.OnEvent(memoInsert(0, 500, 1000))  // start below max (offset 0 guard)
	an.CloseEpoch(0)
	if an.cur.inserts != 0 {
		t.Error("CloseEpoch did not reset accumulators")
	}
}
