package sidechan

import (
	"fmt"

	"rmcc/internal/core"
	"rmcc/internal/obs"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/workload"
)

// LeakageOptions configures one leakage measurement.
type LeakageOptions struct {
	// Mode/Scheme select the engine configuration under test (via
	// engine.DefaultConfig, like the experiment harness).
	Mode   engine.Mode
	Scheme counter.Scheme
	// Hardened applies HardenConfig (randomized group insertion).
	Hardened bool
	// Seed drives both the adversary's class schedule and the engine.
	Seed uint64
	// Epochs is the number of attacker epochs to run and analyze.
	Epochs int
	// Analyzer overrides the observable binning (zero value = defaults).
	Analyzer AnalyzerConfig
}

// LeakageResult is one adversary × configuration measurement.
type LeakageResult struct {
	Report   Report
	Accesses uint64
	Lifetime sim.LifetimeResult
}

// HardenConfig switches cfg's memoization tables to seeded randomized
// group insertion — the hardened RMCC mode. The secret in the insertion
// channel is the *position* of the new group relative to the previous
// table max; drawing the start uniformly from the watchpoint ladder
// decorrelates that position from the victim's counter at the cost of
// less precise placement (quantified by FigureHardenedCost).
func HardenConfig(cfg *engine.Config, seed uint64) {
	cfg.L0Table.RandomizeInsertion = true
	cfg.L0Table.InsertSeed = seed ^ 0x5eeded11
	cfg.L1Table.RandomizeInsertion = true
	cfg.L1Table.InsertSeed = seed ^ 0x5eeded22
}

// leakageEngineConfig builds the engine configuration for a leakage run:
// the standard mode/scheme defaults with deterministic initial state and a
// short-horizon table policy so the insertion machinery engages once per
// attacker epoch (shadow/MRU off so the insertion channel is undiluted —
// the attacker measures the *mechanism*, not a tuned production point).
// The threshold/quantile pair is tuned to the PrimeProbe epoch: the
// over-max threshold (448) exceeds the victim's write-phase fetch-reads
// plus the background writer's (≤ 240/epoch combined) so the insertion
// always fires inside the 480-read victim burst, and the coverage
// quantile tolerates the ~128 background reads above every watchpoint
// while still rejecting any start below the victim's counter (which would
// strand ≥ 300 burst reads uncovered). docs/SIDECHANNEL.md walks the
// arithmetic.
func leakageEngineConfig(opt LeakageOptions, epochMC uint64) engine.Config {
	cfg := engine.DefaultConfig(opt.Mode, opt.Scheme, 0)
	cfg.InitSeed = opt.Seed
	cfg.RandomizeInit = false
	cfg.WarmStartFrac = 0
	for _, tc := range []*core.Config{&cfg.L0Table, &cfg.L1Table} {
		tc.OverMaxThreshold = 448
		tc.CoverageQuantile = 0.993
		// Align the table's maintenance epoch to exactly one attacker
		// epoch of MC traffic (the warmup is padded to one such epoch
		// too), so the coverage quantile's read denominator always spans
		// one attacker epoch — out of phase, the denominator inflates and
		// the start falls off the watchpoint ladder.
		tc.EpochAccesses = epochMC
		tc.EnableShadow = false
		tc.EnableMRU = false
		// Read-triggered counter updates would advance counters on the
		// attacker's own probe reads, polluting the insertion arithmetic.
		tc.EnableReadUpdate = false
	}
	if opt.Hardened {
		HardenConfig(&cfg, opt.Seed)
	}
	return cfg
}

// RunLeakage runs adv against the configured engine for opt.Epochs
// attacker epochs, feeding the event stream through an Analyzer attached
// after the adversary's warmup prefix, and closing one analyzer epoch per
// attacker epoch under the class Schedule reproduces. Deterministic per
// (adversary, options): same inputs, byte-identical Report.
func RunLeakage(adv Adversary, opt LeakageOptions) (LeakageResult, error) {
	if opt.Epochs <= 0 {
		opt.Epochs = 32
	}
	engCfg := leakageEngineConfig(opt, adv.EpochMCAccesses())
	ltCfg := sim.DefaultLifetimeConfig(engCfg)
	ltCfg.Seed = opt.Seed
	tracer := obs.NewTracer(256)
	ltCfg.Tracer = tracer

	lt, err := sim.NewLifetimeChecked(adv.Name(), adv.FootprintBytes(), ltCfg)
	if err != nil {
		return LeakageResult{}, fmt.Errorf("sidechan: build lifetime: %w", err)
	}

	an := NewAnalyzer(opt.Analyzer)
	schedule := adv.Schedule(opt.Seed, opt.Epochs)
	warm := adv.WarmupAccesses()
	per := adv.EpochAccesses()
	if warm == 0 {
		tracer.SetSink(an)
	}

	var n uint64
	epoch := 0
	adv.Run(opt.Seed, func(a workload.Access) bool {
		lt.Step(a)
		n++
		if n == warm {
			// Warmup done: only now do observables count toward epochs.
			tracer.SetSink(an)
			return true
		}
		if n > warm && (n-warm)%per == 0 {
			an.CloseEpoch(schedule[epoch])
			epoch++
			if epoch == len(schedule) {
				return false
			}
		}
		return true
	})
	tracer.SetSink(nil)

	return LeakageResult{
		Report:   an.Report(),
		Accesses: lt.Accesses(),
		Lifetime: lt.Result(),
	}, nil
}
