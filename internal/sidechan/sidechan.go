// Package sidechan quantifies what the RMCC memoization machinery leaks
// about a victim's secret-dependent memory behavior, and evaluates the
// hardened (randomized-insertion) table mode against it.
//
// It has three parts (docs/SIDECHANNEL.md is the companion document):
//
//   - Attacker workloads implementing workload.Workload: a prime+probe
//     sweeper over counter-cache eviction sets with a secret-dependent
//     victim interleaved (PrimeProbe), and a MemJam-style 4K-aliasing
//     false-dependency stream (MemJam). Both are deterministic per seed
//     and registered in the workload registry, so they run everywhere a
//     paper benchmark runs: rmccsim, rmccd sessions, rmcc-loadgen.
//
//   - A leakage Analyzer that taps the obs event tracer (obs.EventSink),
//     bins per-set hit/miss observables into attacker-epoch histograms,
//     and estimates each channel's capacity: plug-in mutual information
//     between the secret class and the epoch observable with Miller–Madow
//     bias correction, plus a MAP classifier accuracy bound. The tap adds
//     nothing to the engine hot path: the engine already emits these
//     events, and the analyzer's OnEvent is allocation-free.
//
//   - RunLeakage, the driver gluing them together over a sim.Lifetime.
//
// The experiment layer (internal/experiments FigureLeakage /
// FigureHardenedCost) turns these into report figures comparing SGX
// baseline vs Morphable vs stock RMCC vs hardened RMCC.
package sidechan

import (
	"rmcc/internal/workload"
)

// Geometry constants tied to the lifetime simulator's fixed hierarchy
// (sim.DefaultLifetimeConfig) under Morphable counters: 32 KB / 32-way
// counter cache (16 sets of 64 B counter blocks, each covering 128 data
// blocks = 8 KB), 2 MB / 16-way LLC (2048 sets), 1 MB / 8-way L2, and
// 64 KB / 8-way L1. The three cache set periods and the counter-cache set
// period all divide 128 KB, so one 128 KB-strided conflict set evicts a
// target line from every level at once — the alignment the prime+probe
// sweeper exploits. Regions are 2 MiB-aligned (huge pages), so a region
// offset fully determines every set index.
const (
	lineBytes = 64
	// ctrCoverage is the data bytes one Morphable counter block covers.
	ctrCoverage = 128 * lineBytes // 8 KiB
	// ctrSets is the counter-cache set count (32 KB / (64 B × 32 ways)).
	ctrSets = 16
	// conflictStride aligns with every set period at once:
	// ctrSets×ctrCoverage = 128 KiB = LLC period = L2 period (and a
	// multiple of the L1's 8 KiB period).
	conflictStride = ctrSets * ctrCoverage // 128 KiB
	// probeWays out-associates the 32-way counter cache.
	probeWays = 33
	// evictWays flushes a just-touched line out of the whole hierarchy
	// within one conflict sweep. The line cascades L1→L2→LLC, re-entering
	// each level at MRU, so the sweep needs ~8 (L1) + ~8 (L2) + 16 (LLC)
	// younger installs after the line's last re-entry, plus margin —
	// merely out-associating the 16-way LLC is not enough.
	evictWays = 40
)

// Adversary is a workload with the epoch structure the leakage driver
// needs: a fixed-length warmup prefix, then epochs of identical length,
// each parameterized by a secret class the access pattern depends on.
type Adversary interface {
	workload.Workload
	// Classes is the secret alphabet size K (classes are 0..K-1).
	Classes() int
	// WarmupAccesses is the length of the one-time warmup prefix.
	WarmupAccesses() uint64
	// EpochAccesses is the exact access count of every epoch.
	EpochAccesses() uint64
	// EpochMCAccesses is the exact number of memory-controller accesses
	// (read misses + writebacks) one epoch generates. The leakage driver
	// aligns the memo table's maintenance epoch to it, and the warmup
	// prefix is padded so it spans exactly one such epoch — keeping the
	// table's per-epoch read statistics in phase with attacker epochs.
	EpochMCAccesses() uint64
	// Schedule reproduces the per-epoch secret classes Run(seed) will use.
	Schedule(seed uint64, epochs int) []int
}

// region is a tiny 2 MiB-aligned virtual address allocator (the attacker
// workloads need precise page-offset control, so they do not reuse the
// paper kernels' layout helper).
type regionAlloc struct{ next uint64 }

const regionAlign = 2 << 20

func newRegionAlloc() *regionAlloc { return &regionAlloc{next: regionAlign} }

func (l *regionAlloc) region(bytes uint64) uint64 {
	base := l.next
	l.next += (bytes + regionAlign - 1) &^ (regionAlign - 1)
	l.next += regionAlign // guard gap
	return base
}

// emit adapts a workload.Sink with stop propagation.
type emit struct {
	sink    workload.Sink
	stopped bool
}

func (e *emit) access(addr uint64, write bool) bool {
	if e.stopped {
		return false
	}
	if !e.sink(workload.Access{Addr: addr, Write: write, Gap: 1}) {
		e.stopped = true
		return false
	}
	return true
}

func (e *emit) load(addr uint64) bool  { return e.access(addr, false) }
func (e *emit) store(addr uint64) bool { return e.access(addr, true) }

func init() {
	// Register the adversaries as first-class workload names so the
	// service path (rmccd/rmcc-loadgen workload shortcuts) and rmccsim
	// resolve them like any paper benchmark. Geometry is fixed by the
	// simulated hierarchy, so Size is ignored; the seed flows in via Run.
	workload.RegisterExtra("ppSweep", func(workload.Size, uint64) workload.Workload {
		return NewPrimeProbe()
	})
	workload.RegisterExtra("memjam4k", func(workload.Size, uint64) workload.Workload {
		return NewMemJam()
	})
}
