package cache

import (
	"testing"
	"testing/quick"

	"rmcc/internal/rng"
)

func small() *Cache {
	// 4 sets x 2 ways x 64B lines = 512B.
	return New(Config{SizeBytes: 512, Ways: 2, LineBytes: 64})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 512, Ways: 2, LineBytes: 48},        // non power-of-two line
		{SizeBytes: 512, Ways: 0, LineBytes: 64},        // zero ways
		{SizeBytes: 500, Ways: 2, LineBytes: 64},        // not divisible
		{SizeBytes: 64 * 2 * 3, Ways: 2, LineBytes: 64}, // 3 sets
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: config %+v unexpectedly valid", i, cfg)
		}
	}
	good := Config{SizeBytes: 128 << 10, Ways: 32, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("counter-cache config invalid: %v", err)
	}
	if got := good.Sets(); got != 64 {
		t.Errorf("Sets = %d, want 64", got)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := small()
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x1004, false); !r.Hit {
		t.Fatal("same-line offset missed")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to set 0 (set stride = 4 sets * 64B = 256B).
	a, b, d := uint64(0x0000), uint64(0x0100), uint64(0x0200)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU, b is LRU
	r := c.Access(d, false)
	if r.Hit || !r.Evicted {
		t.Fatalf("expected eviction, got %+v", r)
	}
	if r.VictimAddr != b {
		t.Fatalf("victim = %#x, want %#x (LRU)", r.VictimAddr, b)
	}
	if !c.Probe(a) || c.Probe(b) || !c.Probe(d) {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := small()
	c.Access(0x0000, true) // dirty
	c.Access(0x0100, false)
	r := c.Access(0x0200, false) // evicts 0x0000
	if !r.Evicted || !r.Writeback || r.VictimAddr != 0 {
		t.Fatalf("expected dirty writeback of line 0, got %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := small()
	c.Access(0x0000, false)
	c.Access(0x0100, false)
	r := c.Access(0x0200, false)
	if !r.Evicted || r.Writeback {
		t.Fatalf("expected clean eviction, got %+v", r)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := small()
	c.Access(0x0000, false)
	c.Access(0x0000, true) // hit, now dirty
	c.Access(0x0100, false)
	r := c.Access(0x0200, false)
	if !r.Writeback {
		t.Fatal("dirty bit from write hit lost")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Access(0x0000, true)
	present, dirty := c.Invalidate(0x0000)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Probe(0x0000) {
		t.Fatal("line still resident")
	}
	present, _ = c.Invalidate(0x0000)
	if present {
		t.Fatal("double invalidate reported present")
	}
}

func TestMarkClean(t *testing.T) {
	c := small()
	c.Access(0x0000, true)
	c.MarkClean(0x0000)
	c.Access(0x0100, false)
	r := c.Access(0x0200, false)
	if r.Writeback {
		t.Fatal("cleaned line still wrote back")
	}
}

func TestTouchPreventsEviction(t *testing.T) {
	c := small()
	c.Access(0x0000, false)
	c.Access(0x0100, false) // 0x0000 is LRU
	c.Touch(0x0000)         // now 0x0100 is LRU
	r := c.Access(0x0200, false)
	if r.VictimAddr != 0x0100 {
		t.Fatalf("victim = %#x, want 0x100", r.VictimAddr)
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	c := New(Config{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64})
	r := rng.New(17)
	// Fill way beyond capacity and verify every victim address is one we
	// inserted, line-aligned.
	inserted := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		addr := r.Uint64() & 0xfffffff
		la := c.LineAddr(addr)
		inserted[la] = true
		res := c.Access(addr, false)
		if res.Evicted {
			if res.VictimAddr%64 != 0 {
				t.Fatalf("victim %#x not line aligned", res.VictimAddr)
			}
			if !inserted[res.VictimAddr] {
				t.Fatalf("victim %#x never inserted", res.VictimAddr)
			}
		}
	}
}

func TestResidencyNeverExceedsCapacity(t *testing.T) {
	f := func(seed uint64) bool {
		c := New(Config{SizeBytes: 4096, Ways: 4, LineBytes: 64})
		r := rng.New(seed)
		for i := 0; i < 2000; i++ {
			c.Access(r.Uint64()&0xffffff, r.Uint64()&1 == 0)
		}
		return c.ResidentLines() <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetFitsNoEvictions(t *testing.T) {
	c := New(Config{SizeBytes: 8192, Ways: 8, LineBytes: 64})
	// 128 lines capacity; access 64 lines repeatedly.
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 64; i++ {
			c.Access(i*64, false)
		}
	}
	s := c.Stats()
	if s.Misses != 64 {
		t.Fatalf("misses = %d, want 64 cold misses only", s.Misses)
	}
	if s.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", s.Evictions)
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	if c.Stats().MissRate() != 0 {
		t.Fatal("empty cache miss rate not 0")
	}
	c.Access(0, false)
	c.Access(0, false)
	if mr := c.Stats().MissRate(); mr != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", mr)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{SizeBytes: 128 << 10, Ways: 32, LineBytes: 64})
	c.Access(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}

func BenchmarkAccessStream(b *testing.B) {
	c := New(Config{SizeBytes: 128 << 10, Ways: 32, LineBytes: 64})
	r := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = r.Uint64() & 0xffffff
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], i&7 == 0)
	}
}
