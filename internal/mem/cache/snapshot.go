package cache

import "rmcc/internal/snapshot"

// EncodeState serializes the cache's mutable state — every line's tag,
// valid/dirty bits, and LRU stamp, plus the global stamp and counters —
// prefixed with the geometry so DecodeState can refuse a mismatched shape.
// Configuration is not serialized: the restoring side rebuilds the cache
// from the same experiment config and only the contents travel.
func (c *Cache) EncodeState(e *snapshot.Enc) {
	e.U64(uint64(len(c.sets)))
	e.U64(uint64(c.cfg.Ways))
	e.U64(c.stamp)
	e.U64(c.stats.Hits)
	e.U64(c.stats.Misses)
	e.U64(c.stats.Evictions)
	e.U64(c.stats.Writebacks)
	for _, set := range c.sets {
		for i := range set {
			ln := &set[i]
			e.U64(ln.tag)
			e.Bool(ln.valid)
			e.Bool(ln.dirty)
			e.U64(ln.lru)
		}
	}
}

// DecodeState restores state written by EncodeState into a cache built with
// the identical configuration.
func (d *Cache) DecodeState(dec *snapshot.Dec) error {
	if sets, ways := dec.U64(), dec.U64(); sets != uint64(len(d.sets)) || ways != uint64(d.cfg.Ways) {
		if err := dec.Err(); err != nil {
			return err
		}
		return dec.Failf("cache geometry %dx%d, want %dx%d", sets, ways, len(d.sets), d.cfg.Ways)
	}
	d.stamp = dec.U64()
	d.stats.Hits = dec.U64()
	d.stats.Misses = dec.U64()
	d.stats.Evictions = dec.U64()
	d.stats.Writebacks = dec.U64()
	for _, set := range d.sets {
		for i := range set {
			ln := &set[i]
			ln.tag = dec.U64()
			ln.valid = dec.Bool()
			ln.dirty = dec.Bool()
			ln.lru = dec.U64()
		}
	}
	return dec.Err()
}
