// Package cache implements a set-associative, write-back cache model with
// true-LRU replacement. It backs the L1/L2/L3 data caches, the memory
// controller's counter cache, and (via package tlb) the TLB.
//
// The model is functional: it tracks presence, dirtiness, and replacement
// state, not contents. Contents live in the functional memory image owned by
// the secure-memory engine; what the simulator needs from a cache is *which*
// accesses hit and *which* victims are written back.
package cache

import "fmt"

// Config sizes a cache.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line (block) size; 64 for data caches
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: LineBytes %d must be a positive power of two", c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache: Ways %d must be positive", c.Ways)
	case c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: SizeBytes %d not divisible into %d-way sets of %dB lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// Stats counts cache events since construction or the last ResetStats.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// Accesses returns hits+misses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// Cache is a set-associative LRU cache. Not safe for concurrent use; the
// simulator is single-threaded on the event engine.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	sets      [][]line
	stamp     uint64
	stats     Stats
}

// New builds a cache; it panics on an invalid configuration because cache
// geometry is fixed at experiment-definition time.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	nSets := cfg.Sets()
	sets := make([][]line, nSets)
	backing := make([]line, nSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(nSets - 1),
		sets:      sets,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing contents (used after
// warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineBytes) - 1) }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	l := addr >> c.lineShift
	return l & c.setMask, l >> uint(popShift(c.setMask))
}

func popShift(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// Result describes the outcome of an Access.
type Result struct {
	Hit        bool
	Evicted    bool   // a valid victim was displaced
	Writeback  bool   // the victim was dirty (needs a memory write)
	VictimAddr uint64 // line address of the victim, valid when Evicted
}

// Access looks up addr, allocates on miss (write-allocate), updates LRU,
// and marks the line dirty on writes. It returns what happened, including
// any victim that must be written back.
func (c *Cache) Access(addr uint64, write bool) Result {
	set, tag := c.index(addr)
	lines := c.sets[set]
	c.stamp++
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.stamp
			if write {
				lines[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	// Choose victim: invalid way first, else LRU.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	var res Result
	if lines[victim].valid {
		res.Evicted = true
		res.Writeback = lines[victim].dirty
		res.VictimAddr = c.reconstruct(set, lines[victim].tag)
		c.stats.Evictions++
		if lines[victim].dirty {
			c.stats.Writebacks++
		}
	}
	lines[victim] = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return res
}

// Probe reports whether addr is resident without updating LRU or counters.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Touch marks addr most-recently-used if resident (no allocation).
func (c *Cache) Touch(addr uint64) {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			c.stamp++
			lines[i].lru = c.stamp
			return
		}
	}
}

// Invalidate drops addr if resident and reports whether the dropped line
// was dirty (the caller owns the resulting writeback).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			dirty = lines[i].dirty
			lines[i] = line{}
			return true, dirty
		}
	}
	return false, false
}

// MarkClean clears the dirty bit of addr if resident (after an explicit
// writeback flush).
func (c *Cache) MarkClean(addr uint64) {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].dirty = false
			return
		}
	}
}

func (c *Cache) reconstruct(set, tag uint64) uint64 {
	return (tag<<uint(popShift(c.setMask)) | set) << c.lineShift
}

// ResidentLines returns the number of valid lines (for tests and occupancy
// stats).
func (c *Cache) ResidentLines() int {
	n := 0
	for _, s := range c.sets {
		for _, l := range s {
			if l.valid {
				n++
			}
		}
	}
	return n
}
