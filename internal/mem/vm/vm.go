// Package vm translates the virtual addresses workloads emit into the
// simulated physical address space, with demand paging onto randomly placed
// physical pages.
//
// Page size matters to this paper twice: the TLB characterization
// (Figure 4: 4 KB vs 2 MB pages) and Morphable Counters' reliance on
// physically contiguous 8 KB regions — under 4 KB pages the OS may map
// adjacent virtual pages far apart, splitting one counter block's coverage
// across two (§III). All main experiments run under 2 MB huge pages, like
// the paper's.
package vm

import (
	"fmt"

	"rmcc/internal/rng"
)

// Mapper is a demand-paging virtual→physical translator.
type Mapper struct {
	pageBytes uint64
	pageShift uint
	table     map[uint64]uint64 // vpage -> ppage
	freePages []uint64          // shuffled physical page numbers
	nextFree  int
	physBytes uint64
}

// New builds a mapper over physBytes of physical memory with the given
// page size. Physical pages are handed out in a seeded random order,
// modeling long-uptime allocator fragmentation.
func New(physBytes, pageBytes uint64, seed uint64) *Mapper {
	if pageBytes == 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("vm: page size %d not a power of two", pageBytes))
	}
	if physBytes%pageBytes != 0 {
		panic(fmt.Sprintf("vm: phys size %d not page aligned", physBytes))
	}
	shift := uint(0)
	for 1<<shift != pageBytes {
		shift++
	}
	n := physBytes / pageBytes
	free := make([]uint64, n)
	for i := range free {
		free[i] = uint64(i)
	}
	r := rng.New(seed)
	r.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	return &Mapper{
		pageBytes: pageBytes,
		pageShift: shift,
		table:     make(map[uint64]uint64),
		freePages: free,
		physBytes: physBytes,
	}
}

// PageBytes returns the page size.
func (m *Mapper) PageBytes() uint64 { return m.pageBytes }

// PhysBytes returns the physical memory size.
func (m *Mapper) PhysBytes() uint64 { return m.physBytes }

// MappedPages returns the number of pages allocated so far.
func (m *Mapper) MappedPages() int { return len(m.table) }

// Translate maps a virtual address to its physical address, allocating a
// physical page on first touch. It panics when physical memory is
// exhausted: experiments must size memory above the workload footprint.
func (m *Mapper) Translate(vaddr uint64) uint64 {
	vpage := vaddr >> m.pageShift
	ppage, ok := m.table[vpage]
	if !ok {
		if m.nextFree >= len(m.freePages) {
			panic(fmt.Sprintf("vm: out of physical memory after %d pages of %d bytes",
				len(m.freePages), m.pageBytes))
		}
		ppage = m.freePages[m.nextFree]
		m.nextFree++
		m.table[vpage] = ppage
	}
	return ppage<<m.pageShift | (vaddr & (m.pageBytes - 1))
}
