package vm

import (
	"testing"

	"rmcc/internal/rng"
)

func TestTranslateStableAndAligned(t *testing.T) {
	m := New(64<<20, 2<<20, 1)
	a := m.Translate(0x12345678)
	b := m.Translate(0x12345678)
	if a != b {
		t.Fatal("translation not stable")
	}
	if a&(2<<20-1) != 0x12345678&(2<<20-1) {
		t.Fatal("page offset not preserved")
	}
}

func TestDistinctPagesDistinctFrames(t *testing.T) {
	m := New(64<<20, 4096, 2)
	seen := make(map[uint64]bool)
	for v := uint64(0); v < 1000; v++ {
		p := m.Translate(v*4096) >> 12
		if seen[p] {
			t.Fatalf("frame %d reused", p)
		}
		seen[p] = true
	}
	if m.MappedPages() != 1000 {
		t.Fatalf("mapped = %d", m.MappedPages())
	}
}

func TestRandomPlacement(t *testing.T) {
	m := New(64<<20, 4096, 3)
	sequentialPairs := 0
	prev := m.Translate(0) >> 12
	for v := uint64(1); v < 512; v++ {
		cur := m.Translate(v*4096) >> 12
		if cur == prev+1 {
			sequentialPairs++
		}
		prev = cur
	}
	// With shuffled frames, adjacent virtual pages should almost never
	// land on adjacent physical frames.
	if sequentialPairs > 16 {
		t.Fatalf("placement too sequential: %d adjacent pairs", sequentialPairs)
	}
}

func TestExhaustionPanics(t *testing.T) {
	m := New(8192, 4096, 4)
	m.Translate(0)
	m.Translate(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	m.Translate(8192)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	m1 := New(32<<20, 4096, 77)
	m2 := New(32<<20, 4096, 77)
	r := rng.New(5)
	for i := 0; i < 2000; i++ {
		v := r.Uint64n(16 << 20)
		if m1.Translate(v) != m2.Translate(v) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two page")
		}
	}()
	New(1<<20, 3000, 1)
}
