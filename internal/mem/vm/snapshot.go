package vm

import (
	"sort"

	"rmcc/internal/snapshot"
)

// EncodeState serializes the mapper's demand-paging state: the allocation
// cursor and the vpage→ppage table in sorted vpage order (map iteration
// order must not leak into the snapshot bytes — restored-then-saved state
// has to be byte-identical to the uninterrupted run's). The shuffled
// free-page list itself is not serialized: it is a pure function of
// (physBytes, pageBytes, seed), which the restoring side rebuilds, and the
// config-hash check upstream guarantees those match.
func (m *Mapper) EncodeState(e *snapshot.Enc) {
	e.U64(uint64(m.nextFree))
	keys := make([]uint64, 0, len(m.table))
	for v := range m.table {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.U64(uint64(len(keys)))
	for _, v := range keys {
		e.U64(v)
		e.U64(m.table[v])
	}
}

// DecodeState restores state written by EncodeState into a mapper built
// with the identical geometry and seed.
func (m *Mapper) DecodeState(d *snapshot.Dec) error {
	nextFree := d.U64()
	n := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if nextFree > uint64(len(m.freePages)) {
		return d.Failf("vm allocation cursor %d beyond %d pages", nextFree, len(m.freePages))
	}
	if n != nextFree || n > uint64(d.Remaining()/16) {
		// Every allocated free-list page maps exactly one vpage.
		return d.Failf("vm table length %d with cursor %d", n, nextFree)
	}
	m.nextFree = int(nextFree)
	m.table = make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		vpage := d.U64()
		m.table[vpage] = d.U64()
	}
	if err := d.Err(); err != nil {
		return err
	}
	if uint64(len(m.table)) != n {
		return d.Failf("vm table has %d duplicate vpages", n-uint64(len(m.table)))
	}
	return nil
}
