// Package tlb models a translation lookaside buffer for the paper's
// Section-III characterization (Figure 4): TLB misses per LLC miss under
// 4 KB vs 2 MB pages. The TLB caches page translations; a counter block
// under Morphable Counters has comparable coverage to a 4 KB PTE, which is
// the paper's motivating analogy.
package tlb

import "rmcc/internal/mem/cache"

// Config sizes a TLB.
type Config struct {
	Entries   int // total translation entries (Table I: 1536)
	Ways      int // associativity
	PageBytes int // 4 KiB or 2 MiB
}

// TLB is a set-associative translation cache.
type TLB struct {
	cfg   Config
	inner *cache.Cache
}

// New builds a TLB; it panics on invalid geometry, matching package cache.
func New(cfg Config) *TLB {
	return &TLB{
		cfg: cfg,
		inner: cache.New(cache.Config{
			SizeBytes: cfg.Entries * cfg.PageBytes,
			Ways:      cfg.Ways,
			LineBytes: cfg.PageBytes,
		}),
	}
}

// Config returns the TLB configuration.
func (t *TLB) Config() Config { return t.cfg }

// Lookup translates the virtual address, filling on miss, and reports
// whether it hit. TLB entries are never dirty.
func (t *TLB) Lookup(vaddr uint64) bool {
	return t.inner.Access(vaddr, false).Hit
}

// Stats exposes hit/miss counters.
func (t *TLB) Stats() cache.Stats { return t.inner.Stats() }

// ResetStats zeroes the counters (after warmup) without flushing entries.
func (t *TLB) ResetStats() { t.inner.ResetStats() }

// PageAddr returns the page-aligned address containing vaddr.
func (t *TLB) PageAddr(vaddr uint64) uint64 {
	return vaddr &^ (uint64(t.cfg.PageBytes) - 1)
}
