package tlb

import "rmcc/internal/snapshot"

// EncodeState serializes the TLB's translation-cache contents and counters.
func (t *TLB) EncodeState(e *snapshot.Enc) { t.inner.EncodeState(e) }

// DecodeState restores state written by EncodeState into a TLB built with
// the identical configuration.
func (t *TLB) DecodeState(d *snapshot.Dec) error { return t.inner.DecodeState(d) }
