package tlb

import (
	"testing"

	"rmcc/internal/rng"
)

func TestHitWithinPage(t *testing.T) {
	tl := New(Config{Entries: 16, Ways: 4, PageBytes: 4096})
	if tl.Lookup(0x1000) {
		t.Fatal("cold lookup hit")
	}
	if !tl.Lookup(0x1abc) {
		t.Fatal("same-page lookup missed")
	}
	if tl.Lookup(0x2000) {
		t.Fatal("next page hit without fill")
	}
}

func TestCapacityMisses(t *testing.T) {
	tl := New(Config{Entries: 16, Ways: 4, PageBytes: 4096})
	// Touch 64 distinct pages twice; 16-entry TLB must miss on both rounds.
	for round := 0; round < 2; round++ {
		for p := uint64(0); p < 64; p++ {
			tl.Lookup(p * 4096)
		}
	}
	if hits := tl.Stats().Hits; hits != 0 {
		t.Fatalf("unexpected hits %d with working set 4x capacity", hits)
	}
}

func TestHugePagesReduceMisses(t *testing.T) {
	// The Figure-4 effect in miniature: the same footprint, 4 KB vs 2 MB
	// pages; the huge-page TLB should have a dramatically lower miss rate.
	small := New(Config{Entries: 64, Ways: 4, PageBytes: 4 << 10})
	huge := New(Config{Entries: 64, Ways: 4, PageBytes: 2 << 20})
	r := rng.New(5)
	// Footprint 64 MiB: 32 huge pages fit in the 64-entry TLB, while the
	// 16384 4 KiB pages overwhelm it — the Figure-4 regime.
	const footprint = 64 << 20
	for i := 0; i < 200000; i++ {
		addr := r.Uint64n(footprint)
		small.Lookup(addr)
		huge.Lookup(addr)
	}
	small.ResetStats()
	huge.ResetStats()
	for i := 0; i < 200000; i++ {
		addr := r.Uint64n(footprint)
		small.Lookup(addr)
		huge.Lookup(addr)
	}
	sm, hm := small.Stats().MissRate(), huge.Stats().MissRate()
	if hm >= sm/4 {
		t.Fatalf("huge pages not helping: 4KB miss %.3f vs 2MB miss %.3f", sm, hm)
	}
}

func TestPageAddr(t *testing.T) {
	tl := New(Config{Entries: 16, Ways: 4, PageBytes: 2 << 20})
	if got := tl.PageAddr(0x12345678); got != 0x12200000 {
		t.Fatalf("PageAddr = %#x", got)
	}
}

func TestResetStats(t *testing.T) {
	tl := New(Config{Entries: 16, Ways: 4, PageBytes: 4096})
	tl.Lookup(0)
	tl.ResetStats()
	if tl.Stats().Accesses() != 0 {
		t.Fatal("stats not reset")
	}
	if !tl.Lookup(0) {
		t.Fatal("reset flushed entries")
	}
}
