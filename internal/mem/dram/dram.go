// Package dram models a DDR4 memory channel at bank-level timing
// granularity: per-bank row buffers with an open-page/timeout policy,
// FR-FCFS-capped scheduling, a shared data bus, per-rank refresh, and
// separate read/write queues with write draining.
//
// The configuration defaults follow Table I of the paper: DDR4-3200
// (3.2 GT/s), tCL = tRCD = tRP = 13.75 ns, tRFC = 350 ns, one channel with
// eight ranks, a 500 ns row-buffer timeout, 256-entry read/write queues,
// XOR-based (Skylake-like) bank mapping, and FR-FCFS-Capped bank-level
// scheduling.
package dram

import (
	"fmt"

	"rmcc/internal/sim/event"
)

// Kind labels memory traffic for the bandwidth-breakdown experiments
// (paper Figure 12 distinguishes data, counters, level-0 overflow and
// level-1-and-higher overflow traffic).
type Kind uint8

// Traffic kinds.
const (
	KindData Kind = iota
	KindCounter
	KindOverflowL0
	KindOverflowL1Plus
	KindOther
	numKinds
)

// NumKinds is the number of traffic categories, for sizing per-kind stats.
const NumKinds = int(numKinds)

// String returns the figure label for the kind.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindCounter:
		return "counters"
	case KindOverflowL0:
		return "level 0 overflow"
	case KindOverflowL1Plus:
		return "level 1 and higher overflow"
	default:
		return "other"
	}
}

// Config parameterizes the channel.
type Config struct {
	Ranks        int
	BanksPerRank int
	RowBytes     int // row-buffer size per bank

	TCL, TRCD, TRP event.Time
	TRFC, TREFI    event.Time
	BurstTime      event.Time // time one 64 B line occupies the data bus
	RowTimeout     event.Time // close an idle open row after this long

	ReadQueueCap  int
	WriteQueueCap int
	FRFCFSCap     int // max older requests a row-hit may bypass
}

// DefaultConfig returns the Table-I DDR4 configuration.
func DefaultConfig() Config {
	return Config{
		Ranks:        8,
		BanksPerRank: 16,
		RowBytes:     8 << 10,
		TCL:          13750 * event.Picosecond,
		TRCD:         13750 * event.Picosecond,
		TRP:          13750 * event.Picosecond,
		TRFC:         350 * event.Nanosecond,
		TREFI:        7800 * event.Nanosecond,
		// 64 B over a 64-bit bus at 3.2 GT/s: 8 beats x 312.5 ps = 2.5 ns.
		BurstTime:     2500 * event.Picosecond,
		RowTimeout:    500 * event.Nanosecond,
		ReadQueueCap:  256,
		WriteQueueCap: 256,
		FRFCFSCap:     4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Ranks <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("dram: need positive ranks/banks, got %d/%d", c.Ranks, c.BanksPerRank)
	case c.RowBytes < 64 || c.RowBytes&(c.RowBytes-1) != 0:
		return fmt.Errorf("dram: RowBytes %d must be a power of two >= 64", c.RowBytes)
	case c.Ranks*c.BanksPerRank&(c.Ranks*c.BanksPerRank-1) != 0:
		return fmt.Errorf("dram: total banks %d must be a power of two", c.Ranks*c.BanksPerRank)
	case c.BurstTime <= 0 || c.TCL <= 0:
		return fmt.Errorf("dram: timings must be positive")
	}
	return nil
}

// Request is one 64-byte transfer. OnComplete fires when the data burst
// finishes (read data available / write retired at the device).
type Request struct {
	Addr       uint64
	Write      bool
	Kind       Kind
	OnComplete func(at event.Time)

	enqueued event.Time
	bank     int
	row      uint64
}

type bank struct {
	openRow  uint64
	rowValid bool
	readyAt  event.Time // earliest next activate/CAS
	lastUse  event.Time // end of last burst (for the row timeout)
}

// Stats aggregates channel activity.
type Stats struct {
	Reads, Writes      uint64
	RowHits            uint64
	RowMisses          uint64 // closed row (timeout or fresh bank)
	RowConflicts       uint64 // different row open
	BusBusy            event.Time
	BusBusyByKind      [numKinds]event.Time
	RequestsByKind     [numKinds]uint64
	TotalReadLatency   event.Time // enqueue -> data, reads only
	MaxQueueOccupancy  int
	RefreshStallEvents uint64
}

// AvgReadLatency returns the mean enqueue-to-data latency of reads.
func (s Stats) AvgReadLatency() event.Time {
	if s.Reads == 0 {
		return 0
	}
	return s.TotalReadLatency / event.Time(s.Reads)
}

// Utilization returns the fraction of wall-clock the data bus was busy over
// the elapsed window, i.e. bandwidth normalized to the channel's peak.
func (s Stats) Utilization(elapsed event.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.BusBusy) / float64(elapsed)
}

// UtilizationByKind returns per-kind bandwidth utilization.
func (s Stats) UtilizationByKind(elapsed event.Time) map[string]float64 {
	out := make(map[string]float64, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		if elapsed > 0 {
			out[k.String()] = float64(s.BusBusyByKind[k]) / float64(elapsed)
		} else {
			out[k.String()] = 0
		}
	}
	return out
}

// Channel is one DDR4 channel driven by an event engine.
type Channel struct {
	eng   *event.Engine
	cfg   Config
	banks []bank

	readQ  []*Request
	writeQ []*Request
	// draining switches the scheduler to the write queue until it falls
	// below the low watermark, the standard write-drain policy.
	draining bool

	busFree  event.Time
	inflight int
	wakeAt   event.Time // earliest pending wake event, 0 = none

	linesPerRow uint64
	bankMask    uint64

	stats Stats
}

// New builds a channel on the engine; it panics on invalid configuration.
func New(eng *event.Engine, cfg Config) *Channel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nb := cfg.Ranks * cfg.BanksPerRank
	return &Channel{
		eng:         eng,
		cfg:         cfg,
		banks:       make([]bank, nb),
		linesPerRow: uint64(cfg.RowBytes / 64),
		bankMask:    uint64(nb - 1),
	}
}

// Config returns the channel configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// Stats returns a copy of the counters.
func (ch *Channel) Stats() Stats { return ch.stats }

// ResetStats zeroes counters (after warmup) without disturbing bank state.
func (ch *Channel) ResetStats() { ch.stats = Stats{} }

// QueuedReads returns the read-queue occupancy (for backpressure).
func (ch *Channel) QueuedReads() int { return len(ch.readQ) }

// QueuedWrites returns the write-queue occupancy (for backpressure).
func (ch *Channel) QueuedWrites() int { return len(ch.writeQ) }

// Idle reports whether the channel has no queued or in-flight requests.
func (ch *Channel) Idle() bool {
	return len(ch.readQ) == 0 && len(ch.writeQ) == 0 && ch.inflight == 0
}

// mapAddr splits a line address into bank and row. Consecutive lines share
// a row (open-page locality); the bank index is an XOR fold of row-granular
// address bits, the Skylake-like mapping from Table I.
func (ch *Channel) mapAddr(addr uint64) (bankIdx int, row uint64) {
	line := addr >> 6
	rowGrain := line / ch.linesPerRow
	b := (rowGrain ^ (rowGrain >> 7) ^ (rowGrain >> 13)) & ch.bankMask
	return int(b), rowGrain >> popBits(ch.bankMask)
}

func popBits(mask uint64) uint {
	n := uint(0)
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// Enqueue submits a request. It returns false when the target queue is
// full; the caller owns retry/backpressure.
func (ch *Channel) Enqueue(r *Request) bool {
	if r.Write {
		if len(ch.writeQ) >= ch.cfg.WriteQueueCap {
			return false
		}
	} else if len(ch.readQ) >= ch.cfg.ReadQueueCap {
		return false
	}
	r.enqueued = ch.eng.Now()
	r.bank, r.row = ch.mapAddr(r.Addr)
	if r.Write {
		ch.writeQ = append(ch.writeQ, r)
	} else {
		ch.readQ = append(ch.readQ, r)
	}
	if occ := len(ch.readQ) + len(ch.writeQ); occ > ch.stats.MaxQueueOccupancy {
		ch.stats.MaxQueueOccupancy = occ
	}
	ch.schedule()
	return true
}

// refreshEnd returns the earliest time >= t at which the rank owning
// bankIdx is not refreshing. Each rank refreshes for tRFC at the *end* of
// every tREFI interval (so simulation start is refresh-free), staggered per
// rank by tREFI/ranks.
func (ch *Channel) refreshEnd(bankIdx int, t event.Time) event.Time {
	rank := bankIdx / ch.cfg.BanksPerRank
	offset := event.Time(rank) * ch.cfg.TREFI / event.Time(ch.cfg.Ranks)
	if t < offset {
		return t
	}
	phase := (t - offset) % ch.cfg.TREFI
	if gate := ch.cfg.TREFI - ch.cfg.TRFC; phase >= gate {
		return t + (ch.cfg.TREFI - phase)
	}
	return t
}

// rowState classifies the bank's row buffer with respect to row at time t,
// applying the open-page timeout.
type rowState uint8

const (
	rowHit rowState = iota
	rowClosed
	rowConflict
)

func (ch *Channel) rowStateAt(b *bank, row uint64, t event.Time) rowState {
	if !b.rowValid {
		return rowClosed
	}
	if t-b.lastUse > ch.cfg.RowTimeout {
		// The row was closed in the background after the timeout; the
		// precharge already happened off the critical path.
		return rowClosed
	}
	if b.openRow == row {
		return rowHit
	}
	return rowConflict
}

// accessLatency returns command latency (activate/precharge/CAS) for the
// given row state.
func (ch *Channel) accessLatency(st rowState) event.Time {
	switch st {
	case rowHit:
		return ch.cfg.TCL
	case rowClosed:
		return ch.cfg.TRCD + ch.cfg.TCL
	default:
		return ch.cfg.TRP + ch.cfg.TRCD + ch.cfg.TCL
	}
}

// currentQueue returns the queue the scheduler serves this cycle, applying
// the write-drain policy: serve reads unless the write queue is above its
// high watermark (or there are no reads), and keep draining until it falls
// below the low watermark.
func (ch *Channel) currentQueue() *[]*Request {
	hi := ch.cfg.WriteQueueCap * 3 / 4
	lo := ch.cfg.WriteQueueCap / 4
	if ch.draining {
		if len(ch.writeQ) <= lo {
			ch.draining = false
		}
	} else if len(ch.writeQ) >= hi {
		ch.draining = true
	}
	if ch.draining && len(ch.writeQ) > 0 {
		return &ch.writeQ
	}
	if len(ch.readQ) > 0 {
		return &ch.readQ
	}
	if len(ch.writeQ) > 0 {
		return &ch.writeQ
	}
	return nil
}

// pick selects the next request to issue at time now under FR-FCFS-Capped:
// the oldest row-hit request whose bank is ready wins, unless it would
// bypass more than FRFCFSCap older ready requests, in which case the oldest
// ready request wins. It returns the queue the request lives in.
func (ch *Channel) pick(now event.Time) (q *[]*Request, req *Request, idx int) {
	q = ch.currentQueue()
	if q == nil {
		return nil, nil, -1
	}
	var oldest *Request
	oldestIdx := -1
	bypassed := 0
	for i, r := range *q {
		b := &ch.banks[r.bank]
		if b.readyAt > now {
			continue
		}
		if ch.refreshEnd(r.bank, now) > now {
			ch.stats.RefreshStallEvents++
			continue
		}
		if oldest == nil {
			oldest, oldestIdx = r, i
		}
		if ch.rowStateAt(b, r.row, now) == rowHit {
			if bypassed <= ch.cfg.FRFCFSCap {
				return q, r, i
			}
			continue
		}
		bypassed++
	}
	return q, oldest, oldestIdx
}

func removeAt(q *[]*Request, i int) {
	*q = append((*q)[:i], (*q)[i+1:]...)
}

// schedule issues as many requests as possible at the current time, then
// arranges a wake-up for the earliest future opportunity if work remains.
func (ch *Channel) schedule() {
	now := ch.eng.Now()
	for {
		q, r, idx := ch.pick(now)
		if r == nil {
			break
		}
		removeAt(q, idx)
		ch.issue(r, now)
	}
	ch.armWake()
}

func (ch *Channel) issue(r *Request, now event.Time) {
	b := &ch.banks[r.bank]
	st := ch.rowStateAt(b, r.row, now)
	switch st {
	case rowHit:
		ch.stats.RowHits++
	case rowClosed:
		ch.stats.RowMisses++
	default:
		ch.stats.RowConflicts++
	}
	dataStart := now + ch.accessLatency(st)
	if dataStart < ch.busFree {
		dataStart = ch.busFree
	}
	dataEnd := dataStart + ch.cfg.BurstTime
	ch.busFree = dataEnd
	b.openRow = r.row
	b.rowValid = true
	b.readyAt = dataEnd
	b.lastUse = dataEnd

	ch.stats.BusBusy += ch.cfg.BurstTime
	ch.stats.BusBusyByKind[r.Kind] += ch.cfg.BurstTime
	ch.stats.RequestsByKind[r.Kind]++
	if r.Write {
		ch.stats.Writes++
	} else {
		ch.stats.Reads++
		ch.stats.TotalReadLatency += dataEnd - r.enqueued
	}

	ch.inflight++
	ch.eng.Schedule(dataEnd, func() {
		ch.inflight--
		if r.OnComplete != nil {
			r.OnComplete(dataEnd)
		}
		ch.schedule()
	})
}

// wakeQuantum bounds how often an otherwise-idle channel re-examines a
// blocked queue (requests stuck behind a refresh window or behind the
// scheduler's queue-priority choice). A couple of nanoseconds keeps the
// issue-time error negligible against tRFC = 350 ns while preventing
// event-storm self-polling.
const wakeQuantum = 2 * event.Nanosecond

// armWake schedules a scheduler wake-up when requests are pending but no
// in-flight completion will retrigger us (e.g. everything blocked on
// refresh, or the served queue empty while the other holds work).
func (ch *Channel) armWake() {
	if ch.inflight > 0 || (len(ch.readQ) == 0 && len(ch.writeQ) == 0) {
		return
	}
	now := ch.eng.Now()
	if ch.wakeAt > now {
		return // a wake is already armed
	}
	next := now + wakeQuantum
	ch.wakeAt = next
	ch.eng.Schedule(next, func() {
		if ch.wakeAt == next {
			ch.wakeAt = 0
		}
		ch.schedule()
	})
}
