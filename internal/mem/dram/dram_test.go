package dram

import (
	"testing"

	"rmcc/internal/rng"
	"rmcc/internal/sim/event"
)

func testChannel() (*event.Engine, *Channel) {
	eng := event.New()
	return eng, New(eng, DefaultConfig())
}

func read(ch *Channel, addr uint64, done *event.Time) *Request {
	return &Request{Addr: addr, Kind: KindData, OnComplete: func(at event.Time) { *done = at }}
}

func TestSingleReadClosedRowLatency(t *testing.T) {
	eng, ch := testChannel()
	var done event.Time
	if !ch.Enqueue(read(ch, 0x10000, &done)) {
		t.Fatal("enqueue rejected")
	}
	eng.Run()
	cfg := ch.Config()
	want := cfg.TRCD + cfg.TCL + cfg.BurstTime // closed-row activate + CAS + burst
	if done != want {
		t.Fatalf("latency = %d ps, want %d ps", done, want)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	eng, ch := testChannel()
	cfg := ch.Config()
	var t1, t2, t3 event.Time
	ch.Enqueue(read(ch, 0x0, &t1))
	eng.Run()
	// Same row: hit.
	start := eng.Now()
	ch.Enqueue(read(ch, 0x40, &t2))
	eng.Run()
	hitLat := t2 - start
	if hitLat != cfg.TCL+cfg.BurstTime {
		t.Fatalf("row-hit latency = %d, want %d", hitLat, cfg.TCL+cfg.BurstTime)
	}
	// Different row, same bank: conflict (within the timeout window).
	conflictAddr := uint64(cfg.RowBytes) * uint64(cfg.Ranks*cfg.BanksPerRank) // same bank hash modulo fold
	// Find an address mapping to the same bank but different row.
	b0, r0 := ch.mapAddr(0x0)
	found := false
	for cand := uint64(cfg.RowBytes); cand < uint64(cfg.RowBytes)*1<<22; cand += uint64(cfg.RowBytes) {
		if b, r := ch.mapAddr(cand); b == b0 && r != r0 {
			conflictAddr = cand
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no same-bank different-row address found")
	}
	start = eng.Now()
	ch.Enqueue(read(ch, conflictAddr, &t3))
	eng.Run()
	conflictLat := t3 - start
	want := cfg.TRP + cfg.TRCD + cfg.TCL + cfg.BurstTime
	if conflictLat != want {
		t.Fatalf("conflict latency = %d, want %d", conflictLat, want)
	}
	if conflictLat <= hitLat {
		t.Fatal("conflict not slower than hit")
	}
}

func TestRowTimeoutClosesRow(t *testing.T) {
	eng, ch := testChannel()
	cfg := ch.Config()
	var t1, t2 event.Time
	ch.Enqueue(read(ch, 0x0, &t1))
	eng.Run()
	// Wait past the 500 ns timeout; next same-row access should be a
	// row miss (activate needed) rather than a hit.
	eng.RunUntil(eng.Now() + cfg.RowTimeout + event.Nanosecond)
	start := eng.Now()
	ch.Enqueue(read(ch, 0x40, &t2))
	eng.Run()
	if lat := t2 - start; lat != cfg.TRCD+cfg.TCL+cfg.BurstTime {
		t.Fatalf("post-timeout latency = %d, want closed-row %d", lat, cfg.TRCD+cfg.TCL+cfg.BurstTime)
	}
	if ch.Stats().RowHits != 0 {
		t.Fatalf("row hits = %d, want 0", ch.Stats().RowHits)
	}
}

func TestBankParallelism(t *testing.T) {
	eng, ch := testChannel()
	cfg := ch.Config()
	// Two reads to different banks should overlap: total time well under
	// 2x the single-request latency.
	b0, _ := ch.mapAddr(0)
	var otherAddr uint64
	for cand := uint64(cfg.RowBytes); ; cand += uint64(cfg.RowBytes) {
		if b, _ := ch.mapAddr(cand); b != b0 {
			otherAddr = cand
			break
		}
	}
	var t1, t2 event.Time
	ch.Enqueue(read(ch, 0, &t1))
	ch.Enqueue(read(ch, otherAddr, &t2))
	eng.Run()
	single := cfg.TRCD + cfg.TCL + cfg.BurstTime
	last := t1
	if t2 > last {
		last = t2
	}
	if last >= 2*single {
		t.Fatalf("no bank parallelism: last completion %d vs single %d", last, single)
	}
}

func TestBusSerializesBursts(t *testing.T) {
	eng, ch := testChannel()
	cfg := ch.Config()
	// Many parallel banks: data bursts must not overlap on the shared bus,
	// so N completions need at least N*burst of bus time.
	const n = 32
	doneTimes := make([]event.Time, n)
	issued := 0
	for cand, row := uint64(0), uint64(0); issued < n; cand += uint64(cfg.RowBytes) {
		_ = row
		ch.Enqueue(read(ch, cand, &doneTimes[issued]))
		issued++
	}
	eng.Run()
	if got := ch.Stats().BusBusy; got != event.Time(n)*cfg.BurstTime {
		t.Fatalf("bus busy = %d, want %d", got, event.Time(n)*cfg.BurstTime)
	}
	var last event.Time
	for _, d := range doneTimes {
		if d > last {
			last = d
		}
	}
	if last < event.Time(n)*cfg.BurstTime {
		t.Fatalf("completions finished before the bus could transfer them: %d", last)
	}
}

func TestFRFCFSRowHitBypass(t *testing.T) {
	eng, ch := testChannel()
	cfg := ch.Config()
	b0, r0 := ch.mapAddr(0)
	// An older request to a different row in the same bank, plus a younger
	// row-hit request: after the first access opens row r0, issue both; the
	// row-hit should complete first despite being younger.
	var conflictAddr uint64
	for cand := uint64(cfg.RowBytes); ; cand += uint64(cfg.RowBytes) {
		if b, r := ch.mapAddr(cand); b == b0 && r != r0 {
			conflictAddr = cand
			break
		}
	}
	var warm, oldDone, youngDone event.Time
	// The warm-up issues immediately and keeps the bank busy; both follow-on
	// requests queue behind it, so the scheduler sees them together when the
	// bank frees with row r0 open.
	ch.Enqueue(read(ch, 0, &warm))
	ch.Enqueue(read(ch, conflictAddr, &oldDone)) // older, row conflict
	ch.Enqueue(read(ch, 0x40, &youngDone))       // younger, row hit
	eng.Run()
	if youngDone >= oldDone {
		t.Fatalf("row hit did not bypass: hit done %d, conflict done %d", youngDone, oldDone)
	}
}

func TestWriteDrainMode(t *testing.T) {
	eng, ch := testChannel()
	// Fill write queue above the high watermark; writes must eventually
	// complete even with a steady trickle of reads.
	writesDone := 0
	for i := 0; i < ch.Config().WriteQueueCap*7/8; i++ {
		ok := ch.Enqueue(&Request{
			Addr:  uint64(i) * 64,
			Write: true,
			Kind:  KindData,
			OnComplete: func(event.Time) {
				writesDone++
			},
		})
		if !ok {
			t.Fatalf("write %d rejected below capacity", i)
		}
	}
	eng.Run()
	if writesDone != ch.Config().WriteQueueCap*7/8 {
		t.Fatalf("writes done = %d", writesDone)
	}
}

func TestQueueCapacityRejects(t *testing.T) {
	_, ch := testChannel()
	accepted := 0
	for i := 0; i < ch.Config().ReadQueueCap+10; i++ {
		if ch.Enqueue(&Request{Addr: uint64(i) * 64}) {
			accepted++
		}
	}
	// The scheduler may already have issued a few at time 0, freeing
	// slots, so accepted can exceed the cap slightly but must be bounded.
	if accepted < ch.Config().ReadQueueCap {
		t.Fatalf("accepted only %d", accepted)
	}
}

func TestKindAccounting(t *testing.T) {
	eng, ch := testChannel()
	kinds := []Kind{KindData, KindData, KindCounter, KindOverflowL0, KindOverflowL1Plus}
	for i, k := range kinds {
		ch.Enqueue(&Request{Addr: uint64(i) * 64, Kind: k})
	}
	eng.Run()
	st := ch.Stats()
	if st.RequestsByKind[KindData] != 2 || st.RequestsByKind[KindCounter] != 1 ||
		st.RequestsByKind[KindOverflowL0] != 1 || st.RequestsByKind[KindOverflowL1Plus] != 1 {
		t.Fatalf("kind counts = %v", st.RequestsByKind)
	}
	util := st.UtilizationByKind(eng.Now())
	if util["data"] <= 0 {
		t.Fatalf("data utilization = %v", util)
	}
}

func TestAllRequestsComplete(t *testing.T) {
	eng, ch := testChannel()
	r := rng.New(3)
	const n = 5000
	completed := 0
	pending := 0
	i := 0
	for completed < n {
		for i < n && pending < 64 {
			req := &Request{
				Addr:  r.Uint64() & 0x7ffffffff &^ 63,
				Write: r.Uint64()&3 == 0,
				Kind:  KindData,
			}
			req.OnComplete = func(event.Time) { completed++; pending-- }
			if ch.Enqueue(req) {
				i++
				pending++
			} else {
				break
			}
		}
		if !eng.Step() && completed < n {
			t.Fatalf("deadlock: %d/%d complete, %d pending, queues r=%d w=%d",
				completed, n, pending, ch.QueuedReads(), ch.QueuedWrites())
		}
	}
	if !ch.Idle() {
		t.Fatal("channel not idle after all completions")
	}
	st := ch.Stats()
	if st.Reads+st.Writes != n {
		t.Fatalf("reads+writes = %d, want %d", st.Reads+st.Writes, n)
	}
}

func TestAvgReadLatencyReasonable(t *testing.T) {
	eng, ch := testChannel()
	r := rng.New(9)
	for i := 0; i < 200; i++ {
		ch.Enqueue(&Request{Addr: r.Uint64() & 0xfffffff &^ 63, Kind: KindData})
	}
	eng.Run()
	avg := ch.Stats().AvgReadLatency()
	// Must be at least the minimum pipe (CAS+burst) and below a loose bound
	// accounting for queueing of 200 simultaneous arrivals.
	min := ch.Config().TCL + ch.Config().BurstTime
	if avg < min {
		t.Fatalf("avg latency %d below physical minimum %d", avg, min)
	}
	if avg > 2*event.Microsecond {
		t.Fatalf("avg latency %d implausibly high", avg)
	}
}

func TestRefreshBlocksRank(t *testing.T) {
	eng := event.New()
	cfg := DefaultConfig()
	cfg.Ranks = 1 // single rank so refresh windows are global
	cfg.BanksPerRank = 16
	ch := New(eng, cfg)
	// The first refresh window is [tREFI-tRFC, tREFI). Land a request in
	// the middle of it.
	windowStart := cfg.TREFI - cfg.TRFC
	var done event.Time
	eng.Schedule(windowStart+cfg.TRFC/2, func() {
		ch.Enqueue(read(ch, 0x1234000, &done))
	})
	eng.Run()
	// It cannot complete before the refresh window ends.
	if done < cfg.TREFI {
		t.Fatalf("request completed at %d inside refresh window ending %d", done, cfg.TREFI)
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.RowBytes = 100
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid RowBytes accepted")
	}
	bad = DefaultConfig()
	bad.Ranks = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two banks accepted")
	}
}

func BenchmarkRandomTraffic(b *testing.B) {
	eng, ch := testChannel()
	r := rng.New(1)
	pending := 0
	for i := 0; i < b.N; i++ {
		for pending < 32 {
			req := &Request{Addr: r.Uint64() & 0x7ffffffff &^ 63, Kind: KindData}
			req.OnComplete = func(event.Time) { pending-- }
			if !ch.Enqueue(req) {
				break
			}
			pending++
		}
		eng.Step()
	}
}
