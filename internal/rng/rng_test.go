package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSmallSeedsWellMixed(t *testing.T) {
	// splitmix64 seeding must not leave near-zero state for seed 0.
	r := New(0)
	zeros := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs in 64 draws", zeros)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Fork()
	// The child stream should not replay the parent stream.
	p2 := New(7)
	p2.Uint64() // consume the draw Fork used
	matches := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("fork correlates with parent: %d/100 matches", matches)
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 32; i++ {
			if v := r.Uint64n(n); v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(257)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// 16 buckets over 160k draws: chi-square with 15 dof should be modest.
	r := New(99)
	const buckets, draws = 16, 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(draws) / buckets
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	// 99.9th percentile of chi-square(15) is ~37.7.
	if chi > 37.7 {
		t.Fatalf("chi-square too high: %v (counts %v)", chi, counts)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
