// Package rng provides small, fast, deterministic pseudo-random number
// generators used to build reproducible workloads, randomized counter
// initialization, and property-test inputs.
//
// The simulator must be bit-for-bit reproducible across runs and platforms,
// so it cannot depend on math/rand's global state or on seeding from time.
// Every component that needs randomness receives its own *rng.Source seeded
// from an experiment-level master seed.
package rng

// Source is a xoshiro256** generator seeded via splitmix64.
//
// xoshiro256** passes BigCrush and is the generator recommended by its
// authors for general use; splitmix64 turns an arbitrary 64-bit seed into a
// well-distributed initial state even for small seeds like 0 or 1.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Fork derives an independent child generator. The child's stream is
// decorrelated from the parent's by hashing the parent's next output with a
// distinct odd constant, so components can fork freely without accidentally
// sharing sequences.
func (r *Source) Fork() *Source {
	return New(r.Uint64() * 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// State returns the generator's internal xoshiro256** state, for
// checkpointing. SetState restores it; together they make components that
// carry a Source (e.g. the hardened memo table's insertion randomness)
// snapshot-resumable bit-identically.
func (r *Source) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with one previously
// returned by State.
func (r *Source) SetState(s [4]uint64) { r.s = s }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits avoids modulo bias.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the n elements addressed by swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
