package workload

import (
	"rmcc/internal/graph"
	"rmcc/internal/rng"
)

// graphBase holds the shared CSR arrays and their virtual placement. The
// three CSR arrays live at fixed bases; each kernel adds its own property
// arrays behind them.
type graphBase struct {
	g       *graph.CSR
	lay     *layout
	offBase uint64 // Offsets: 8 B per element, N+1 elements
	tgtBase uint64 // Targets: 4 B per element, M elements
}

func newGraphBase(g *graph.CSR) graphBase {
	lay := newLayout()
	return graphBase{
		g:       g,
		lay:     lay,
		offBase: lay.region(uint64(g.N+1) * 8),
		tgtBase: lay.region(uint64(g.M()) * 4),
	}
}

func (b *graphBase) offAddr(v int) uint64    { return b.offBase + uint64(v)*8 }
func (b *graphBase) tgtAddr(e uint64) uint64 { return b.tgtBase + e*4 }

// prop reserves an 8-byte-per-vertex property array and returns its base.
func (b *graphBase) prop() uint64 { return b.lay.region(uint64(b.g.N) * 8) }

// edgeProp reserves a 4-byte-per-edge property array.
func (b *graphBase) edgeProp() uint64 { return b.lay.region(uint64(b.g.M()) * 4) }

func (b *graphBase) FootprintBytes() uint64 { return b.lay.footprint() }

// shardRange yields the vertex stripe for one of N threads.
func shardStart(shard int) int { return shard }

// --- pageRank ---

// PageRank iterates rank propagation: per vertex, gather the ranks of all
// neighbors (irregular reads), write the new rank. The classic
// high-counter-miss GraphBig kernel.
type PageRank struct {
	graphBase
	rankA, rankB uint64
}

// NewPageRank builds the kernel over g.
func NewPageRank(g *graph.CSR) *PageRank {
	b := newGraphBase(g)
	return &PageRank{graphBase: b, rankA: b.prop(), rankB: b.prop()}
}

// Name implements Workload.
func (p *PageRank) Name() string { return "pageRank" }

// Run implements Workload.
func (p *PageRank) Run(seed uint64, sink Sink) { p.RunShard(0, 1, seed, sink) }

// RunShard implements Sharded.
func (p *PageRank) RunShard(shard, of int, seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	src, dst := p.rankA, p.rankB
	for iter := 0; ; iter++ {
		for v := shardStart(shard); v < p.g.N && !e.stopped; v += of {
			e.load(p.offAddr(v), 2)
			e.load(p.offAddr(v+1), 1)
			start, end := p.g.Offsets[v], p.g.Offsets[v+1]
			for ei := start; ei < end; ei++ {
				u := p.g.Targets[ei]
				e.load(p.tgtAddr(ei), 1)
				e.load(src+uint64(u)*8, 2) // rank[u]: irregular
			}
			e.store(dst+uint64(v)*8, 4)
		}
		if e.stopped {
			return
		}
		src, dst = dst, src
	}
}

// --- graphColoring ---

// GraphColoring greedily colors vertices over repeated rounds, reading
// every neighbor's color (irregular) before writing its own.
type GraphColoring struct {
	graphBase
	colorBase uint64
}

// NewGraphColoring builds the kernel over g.
func NewGraphColoring(g *graph.CSR) *GraphColoring {
	b := newGraphBase(g)
	return &GraphColoring{graphBase: b, colorBase: b.prop()}
}

// Name implements Workload.
func (c *GraphColoring) Name() string { return "graphColoring" }

// Run implements Workload.
func (c *GraphColoring) Run(seed uint64, sink Sink) { c.RunShard(0, 1, seed, sink) }

// RunShard implements Sharded.
func (c *GraphColoring) RunShard(shard, of int, seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	colors := make([]int32, c.g.N)
	var used [1024]bool
	for {
		// Reset phase: streaming stores (a real phase transition).
		for v := shardStart(shard); v < c.g.N && !e.stopped; v += of {
			colors[v] = -1
			e.store(c.colorBase+uint64(v)*8, 1)
		}
		for v := shardStart(shard); v < c.g.N && !e.stopped; v += of {
			e.load(c.offAddr(v), 2)
			e.load(c.offAddr(v+1), 1)
			start, end := c.g.Offsets[v], c.g.Offsets[v+1]
			maxC := int32(0)
			for ei := start; ei < end; ei++ {
				u := c.g.Targets[ei]
				e.load(c.tgtAddr(ei), 1)
				e.load(c.colorBase+uint64(u)*8, 2)
				if cu := colors[u]; cu >= 0 && cu < int32(len(used)) {
					used[cu] = true
					if cu >= maxC {
						maxC = cu + 1
					}
				}
			}
			pick := maxC
			for k := int32(0); k < maxC; k++ {
				if !used[k] {
					pick = k
					break
				}
			}
			for k := int32(0); k <= maxC && int(k) < len(used); k++ {
				used[k] = false
			}
			colors[v] = pick
			e.store(c.colorBase+uint64(v)*8, 3)
		}
		if e.stopped {
			return
		}
	}
}

// --- connectedComp ---

// ConnectedComp runs label propagation until a fixed point, then restarts.
type ConnectedComp struct {
	graphBase
	labelBase uint64
}

// NewConnectedComp builds the kernel over g.
func NewConnectedComp(g *graph.CSR) *ConnectedComp {
	b := newGraphBase(g)
	return &ConnectedComp{graphBase: b, labelBase: b.prop()}
}

// Name implements Workload.
func (c *ConnectedComp) Name() string { return "connectedComp" }

// Run implements Workload.
func (c *ConnectedComp) Run(seed uint64, sink Sink) { c.RunShard(0, 1, seed, sink) }

// RunShard implements Sharded.
func (c *ConnectedComp) RunShard(shard, of int, seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	labels := make([]uint32, c.g.N)
	for {
		for v := shardStart(shard); v < c.g.N && !e.stopped; v += of {
			labels[v] = uint32(v)
			e.store(c.labelBase+uint64(v)*8, 1)
		}
		for changed := true; changed && !e.stopped; {
			changed = false
			for v := shardStart(shard); v < c.g.N && !e.stopped; v += of {
				e.load(c.labelBase+uint64(v)*8, 2)
				best := labels[v]
				e.load(c.offAddr(v), 1)
				e.load(c.offAddr(v+1), 1)
				start, end := c.g.Offsets[v], c.g.Offsets[v+1]
				for ei := start; ei < end; ei++ {
					u := c.g.Targets[ei]
					e.load(c.tgtAddr(ei), 1)
					e.load(c.labelBase+uint64(u)*8, 1)
					if labels[u] < best {
						best = labels[u]
					}
				}
				if best < labels[v] {
					labels[v] = best
					changed = true
					e.store(c.labelBase+uint64(v)*8, 2)
				}
			}
		}
		if e.stopped {
			return
		}
	}
}

// --- degreeCentr ---

// DegreeCentr computes in/out degree centrality: sequential offset reads
// plus a scattered read-modify-write of inDeg[target] per edge.
type DegreeCentr struct {
	graphBase
	outBase, inBase uint64
}

// NewDegreeCentr builds the kernel over g.
func NewDegreeCentr(g *graph.CSR) *DegreeCentr {
	b := newGraphBase(g)
	return &DegreeCentr{graphBase: b, outBase: b.prop(), inBase: b.prop()}
}

// Name implements Workload.
func (d *DegreeCentr) Name() string { return "degreeCentr" }

// Run implements Workload.
func (d *DegreeCentr) Run(seed uint64, sink Sink) { d.RunShard(0, 1, seed, sink) }

// RunShard implements Sharded.
func (d *DegreeCentr) RunShard(shard, of int, seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	for {
		for v := shardStart(shard); v < d.g.N && !e.stopped; v += of {
			e.store(d.inBase+uint64(v)*8, 1)
		}
		for v := shardStart(shard); v < d.g.N && !e.stopped; v += of {
			e.load(d.offAddr(v), 1)
			e.load(d.offAddr(v+1), 1)
			e.store(d.outBase+uint64(v)*8, 2)
			start, end := d.g.Offsets[v], d.g.Offsets[v+1]
			for ei := start; ei < end; ei++ {
				u := d.g.Targets[ei]
				e.load(d.tgtAddr(ei), 1)
				e.load(d.inBase+uint64(u)*8, 1) // read inDeg[u]
				// The compiler keeps hot accumulators in registers and
				// write-combines; commit roughly every fourth update.
				if ei&3 == 0 {
					e.store(d.inBase+uint64(u)*8, 1)
				}
			}
		}
		if e.stopped {
			return
		}
	}
}

// --- DFS ---

// DFS runs depth-first traversals from high-degree roots, covering all
// components, then restarts.
type DFS struct {
	graphBase
	visitBase, stackBase uint64
}

// NewDFS builds the kernel over g.
func NewDFS(g *graph.CSR) *DFS {
	b := newGraphBase(g)
	return &DFS{graphBase: b, visitBase: b.prop(), stackBase: b.prop()}
}

// Name implements Workload.
func (d *DFS) Name() string { return "DFS" }

// Run implements Workload.
func (d *DFS) Run(seed uint64, sink Sink) { d.RunShard(0, 1, seed, sink) }

// RunShard implements Sharded.
func (d *DFS) RunShard(shard, of int, seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	r := rng.New(seed + uint64(shard)*977)
	visited := make([]bool, d.g.N)
	stack := make([]int32, 0, d.g.N)
	for {
		for i := range visited {
			visited[i] = false
		}
		root := int(r.Uint64n(uint64(d.g.N)))
		next := 0 // sequential restart scan cursor
		for !e.stopped {
			stack = append(stack[:0], int32(root))
			e.store(d.stackBase, 2)
			for len(stack) > 0 && !e.stopped {
				v := int(stack[len(stack)-1])
				stack = stack[:len(stack)-1]
				e.load(d.stackBase+uint64(len(stack))*8, 1)
				e.load(d.visitBase+uint64(v)*8, 1)
				if visited[v] {
					continue
				}
				visited[v] = true
				e.store(d.visitBase+uint64(v)*8, 2)
				e.load(d.offAddr(v), 1)
				e.load(d.offAddr(v+1), 1)
				start, end := d.g.Offsets[v], d.g.Offsets[v+1]
				for ei := start; ei < end; ei++ {
					u := d.g.Targets[ei]
					e.load(d.tgtAddr(ei), 1)
					e.load(d.visitBase+uint64(u)*8, 1)
					if !visited[u] {
						stack = append(stack, int32(u))
						e.store(d.stackBase+uint64(len(stack)-1)*8, 1)
					}
				}
			}
			// Next component: scan for an unvisited vertex.
			for next < d.g.N {
				e.load(d.visitBase+uint64(next)*8, 1)
				if !visited[next] {
					break
				}
				next++
			}
			if next >= d.g.N {
				break // all components done; restart traversal
			}
			root = next
		}
		if e.stopped {
			return
		}
	}
}

// --- BFS ---

// BFS runs level-synchronous breadth-first traversals.
type BFS struct {
	graphBase
	visitBase, frontABase, frontBBase uint64
}

// NewBFS builds the kernel over g.
func NewBFS(g *graph.CSR) *BFS {
	b := newGraphBase(g)
	return &BFS{graphBase: b, visitBase: b.prop(), frontABase: b.prop(), frontBBase: b.prop()}
}

// Name implements Workload.
func (b *BFS) Name() string { return "BFS" }

// Run implements Workload.
func (b *BFS) Run(seed uint64, sink Sink) { b.RunShard(0, 1, seed, sink) }

// RunShard implements Sharded.
func (b *BFS) RunShard(shard, of int, seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	r := rng.New(seed + uint64(shard)*1459)
	visited := make([]bool, b.g.N)
	frontier := make([]int32, 0, b.g.N)
	next := make([]int32, 0, b.g.N)
	for {
		for i := range visited {
			visited[i] = false
		}
		root := int(r.Uint64n(uint64(b.g.N)))
		visited[root] = true
		frontier = append(frontier[:0], int32(root))
		curBase, nextBase := b.frontABase, b.frontBBase
		e.store(curBase, 2)
		for len(frontier) > 0 && !e.stopped {
			next = next[:0]
			for fi, v32 := range frontier {
				if e.stopped {
					break
				}
				v := int(v32)
				e.load(curBase+uint64(fi)*8, 1)
				e.load(b.offAddr(v), 1)
				e.load(b.offAddr(v+1), 1)
				start, end := b.g.Offsets[v], b.g.Offsets[v+1]
				for ei := start; ei < end; ei++ {
					u := b.g.Targets[ei]
					e.load(b.tgtAddr(ei), 1)
					e.load(b.visitBase+uint64(u)*8, 1)
					if !visited[u] {
						visited[u] = true
						e.store(b.visitBase+uint64(u)*8, 1)
						next = append(next, int32(u))
						e.store(nextBase+uint64(len(next)-1)*8, 1)
					}
				}
			}
			frontier, next = next, frontier
			curBase, nextBase = nextBase, curBase
		}
		if e.stopped {
			return
		}
	}
}

// --- triangleCount ---

// TriangleCount intersects sorted adjacency lists pairwise — long
// sequential runs over two lists whose bases are data-dependent.
type TriangleCount struct {
	graphBase
	countBase uint64
}

// NewTriangleCount builds the kernel over g.
func NewTriangleCount(g *graph.CSR) *TriangleCount {
	b := newGraphBase(g)
	return &TriangleCount{graphBase: b, countBase: b.prop()}
}

// Name implements Workload.
func (t *TriangleCount) Name() string { return "triangleCount" }

// Run implements Workload.
func (t *TriangleCount) Run(seed uint64, sink Sink) { t.RunShard(0, 1, seed, sink) }

// intersectCap bounds the merge-intersection work per neighbor pair.
// Power-law hubs otherwise make the kernel quadratic in the hub degree and
// the simulation window never leaves one (fully cached) adjacency list;
// real triangle counters bound this the same way by intersecting from the
// smaller list or using hash probes.
const intersectCap = 256

// RunShard implements Sharded.
func (t *TriangleCount) RunShard(shard, of int, seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	// Process vertices in a hashed order so the access stream mixes hub
	// and leaf adjacency lists instead of dwelling on vertex 0's hub.
	stride := 0x9e3779b1 % uint64(t.g.N)
	if stride == 0 {
		stride = 1
	}
	for {
		for k := shardStart(shard); k < t.g.N && !e.stopped; k += of {
			v := int((uint64(k)*stride + seed) % uint64(t.g.N))
			e.load(t.offAddr(v), 1)
			e.load(t.offAddr(v+1), 1)
			vStart, vEnd := t.g.Offsets[v], t.g.Offsets[v+1]
			triangles := uint64(0)
			for ei := vStart; ei < vEnd && !e.stopped; ei++ {
				u := int(t.g.Targets[ei])
				e.load(t.tgtAddr(ei), 1)
				if u <= v {
					continue
				}
				e.load(t.offAddr(u), 1)
				e.load(t.offAddr(u+1), 1)
				// Merge-intersect adj(v) and adj(u), bounded per pair.
				i, j := vStart, t.g.Offsets[u]
				uEnd := t.g.Offsets[u+1]
				steps := 0
				for i < vEnd && j < uEnd && steps < intersectCap && !e.stopped {
					a, b := t.g.Targets[i], t.g.Targets[j]
					e.load(t.tgtAddr(i), 1)
					e.load(t.tgtAddr(j), 1)
					steps++
					switch {
					case a == b:
						triangles++
						i++
						j++
					case a < b:
						i++
					default:
						j++
					}
				}
				// Accumulate the running count (read-modify-write) so hub
				// vertices with huge adjacency lists still mix in stores.
				e.load(t.countBase+uint64(v)*8, 1)
				e.store(t.countBase+uint64(v)*8, 2)
			}
			_ = triangles
		}
		if e.stopped {
			return
		}
	}
}

// --- shortestPath ---

// ShortestPath runs Bellman-Ford rounds: edge relaxations with scattered
// distance reads and writes.
type ShortestPath struct {
	graphBase
	distBase, weightBase uint64
}

// NewShortestPath builds the kernel over g.
func NewShortestPath(g *graph.CSR) *ShortestPath {
	b := newGraphBase(g)
	return &ShortestPath{graphBase: b, distBase: b.prop(), weightBase: b.edgeProp()}
}

// Name implements Workload.
func (s *ShortestPath) Name() string { return "shortestPath" }

// Run implements Workload.
func (s *ShortestPath) Run(seed uint64, sink Sink) { s.RunShard(0, 1, seed, sink) }

// weight derives a deterministic edge weight (the array is synthetic but
// its *accesses* are real).
func edgeWeight(ei uint64) uint32 { return uint32(ei*2654435761)%63 + 1 }

// RunShard implements Sharded.
func (s *ShortestPath) RunShard(shard, of int, seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	r := rng.New(seed + uint64(shard)*631)
	const inf = ^uint32(0)
	dist := make([]uint32, s.g.N)
	for {
		root := int(r.Uint64n(uint64(s.g.N)))
		for v := range dist {
			dist[v] = inf
		}
		dist[root] = 0
		for v := shardStart(shard); v < s.g.N && !e.stopped; v += of {
			e.store(s.distBase+uint64(v)*8, 1)
		}
		for changed := true; changed && !e.stopped; {
			changed = false
			for v := shardStart(shard); v < s.g.N && !e.stopped; v += of {
				e.load(s.distBase+uint64(v)*8, 1)
				if dist[v] == inf {
					continue
				}
				e.load(s.offAddr(v), 1)
				e.load(s.offAddr(v+1), 1)
				start, end := s.g.Offsets[v], s.g.Offsets[v+1]
				for ei := start; ei < end; ei++ {
					u := s.g.Targets[ei]
					e.load(s.tgtAddr(ei), 1)
					e.load(s.weightBase+ei*4, 1)
					e.load(s.distBase+uint64(u)*8, 1)
					if nd := dist[v] + edgeWeight(ei); nd < dist[u] {
						dist[u] = nd
						changed = true
						e.store(s.distBase+uint64(u)*8, 1)
					}
				}
			}
		}
		if e.stopped {
			return
		}
	}
}
