// Package workload implements the paper's eleven benchmarks as
// instrumented kernels: eight GraphBig-style graph analytics kernels over
// R-MAT graphs (pageRank, graphColoring, connectedComp, degreeCentr, DFS,
// BFS, triangleCount, shortestPath) plus access-pattern-faithful stand-ins
// for PARSEC canneal, SPEC omnetpp and SPEC mcf.
//
// Each kernel really runs its algorithm over real data structures and
// emits the virtual address of every load and store it performs, together
// with the count of non-memory instructions since the previous access. The
// simulator consumes that stream; the kernel never sees simulated time.
package workload

import (
	"sync"

	"rmcc/internal/graph"
)

// Access is one memory reference a workload issues.
type Access struct {
	Addr  uint64 // virtual byte address
	Write bool
	Gap   uint8 // non-memory instructions executed since the last access
}

// Sink consumes the access stream; returning false stops the workload.
type Sink func(Access) bool

// Workload is a deterministic access-stream generator. Run loops the
// algorithm indefinitely — the driver decides how long to simulate by
// returning false from the sink.
type Workload interface {
	Name() string
	// FootprintBytes approximates the virtual footprint, used to size
	// simulated physical memory.
	FootprintBytes() uint64
	Run(seed uint64, sink Sink)
}

// Sharded workloads can run as one of N threads over a shared data
// structure (the paper runs GraphBig as four threads).
type Sharded interface {
	Workload
	RunShard(shard, of int, seed uint64, sink Sink)
}

// emitter wraps a sink with stop-flag plumbing so kernels read cleanly.
type emitter struct {
	sink    Sink
	stopped bool
}

// gapScale converts the kernels' relative gap weights into realistic
// instruction counts (~10-20 instructions per memory access on average,
// matching the memory intensity of the paper's benchmark families; the
// kernels' raw weights alone would model an unrealistically bandwidth-bound
// machine where no latency optimization can matter).
const gapScale = 12

func (e *emitter) emit(addr uint64, write bool, gap uint8) bool {
	if e.stopped {
		return false
	}
	if !e.sink(Access{Addr: addr, Write: write, Gap: gap * gapScale}) {
		e.stopped = true
		return false
	}
	return true
}

func (e *emitter) load(addr uint64, gap uint8) bool  { return e.emit(addr, false, gap) }
func (e *emitter) store(addr uint64, gap uint8) bool { return e.emit(addr, true, gap) }

// layout assigns virtual base addresses to a workload's arrays, aligned to
// 2 MiB so huge-page mappings start clean.
type layout struct{ next uint64 }

const regionAlign = 2 << 20

func newLayout() *layout {
	return &layout{next: regionAlign} // keep page 0 unused
}

func (l *layout) region(bytes uint64) uint64 {
	base := l.next
	l.next += (bytes + regionAlign - 1) &^ (regionAlign - 1)
	// Guard gap between arrays so prefetch-like sequential patterns don't
	// silently run from one array into the next.
	l.next += regionAlign
	return base
}

func (l *layout) footprint() uint64 { return l.next }

// Size selects workload scale.
type Size int

// Sizes. SizeTest keeps unit tests fast; SizeSmall drives -short bench
// runs; SizeFull is the default experiment scale (footprints well beyond
// the 8 MB LLC and the counter cache's 16 MB coverage).
const (
	SizeTest Size = iota
	SizeSmall
	SizeFull
)

// graphScale returns R-MAT scale/edge-factor per size.
func graphScale(s Size) (scale, ef int) {
	switch s {
	case SizeTest:
		return 12, 8 // 4 K vertices
	case SizeSmall:
		// 1 M vertices: per-vertex property arrays (8 MB each) exceed the
		// lifetime counter cache's 4 MB reach and the LLC, keeping the
		// irregular gathers in the paper's counter-miss regime while
		// staying fast to generate.
		return 20, 8
	default:
		// 4 M vertices, ~350 MB of arrays: property arrays at 32 MB are
		// well beyond even the detailed 128 KB counter cache's 16 MB
		// coverage.
		return 22, 8
	}
}

// PaperNames lists the paper's eleven benchmarks in figure order.
func PaperNames() []string {
	return []string{
		"pageRank", "graphColoring", "connectedComp", "degreeCentr",
		"DFS", "BFS", "triangleCount", "shortestPath",
		"canneal", "omnetpp", "mcf",
	}
}

// Names lists every available workload: the paper's eleven in figure
// order, then registered extras (e.g. the sidechannel adversaries) in
// registration order.
func Names() []string {
	names := PaperNames()
	extrasMu.Lock()
	defer extrasMu.Unlock()
	for _, e := range extras {
		names = append(names, e.name)
	}
	return names
}

// extraEntry is one registered non-paper workload constructor.
type extraEntry struct {
	name  string
	build func(Size, uint64) Workload
}

var (
	extrasMu sync.Mutex
	extras   []extraEntry
)

// RegisterExtra adds a workload constructor under name, making it visible
// to Names, Suite and ByName (and therefore to every driver that resolves
// workloads by name: rmccsim, rmccd sessions, rmcc-loadgen shortcuts).
// Intended for package init functions; panics on a duplicate or paper
// name. The constructor must be deterministic per (size, seed).
func RegisterExtra(name string, build func(Size, uint64) Workload) {
	if build == nil {
		panic("workload: RegisterExtra with nil constructor")
	}
	for _, n := range PaperNames() {
		if n == name {
			panic("workload: RegisterExtra shadows paper workload " + name)
		}
	}
	extrasMu.Lock()
	defer extrasMu.Unlock()
	for _, e := range extras {
		if e.name == name {
			panic("workload: duplicate RegisterExtra " + name)
		}
	}
	extras = append(extras, extraEntry{name: name, build: build})
}

// graphCache memoizes generated R-MAT graphs per (size, seed): generation
// at experiment scale takes seconds and the experiment harness builds many
// suites over the same dataset. Graphs are immutable after generation, so
// sharing is safe (kernels never mutate the CSR).
var (
	graphCacheMu sync.Mutex
	graphCache   = map[[2]uint64]*graph.CSR{}
)

func sharedGraph(size Size, seed uint64) *graph.CSR {
	key := [2]uint64{uint64(size), seed}
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	if g, ok := graphCache[key]; ok {
		return g
	}
	scale, ef := graphScale(size)
	g := graph.GenerateRMAT(graph.DefaultRMAT(scale, ef), seed)
	graphCache[key] = g
	return g
}

// Suite builds all eleven paper workloads at the given size, followed by
// any registered extras. The eight graph kernels share one R-MAT graph
// (like GraphBig running its kernels over one loaded dataset).
func Suite(size Size, seed uint64) []Workload {
	g := sharedGraph(size, seed)
	ws := []Workload{
		NewPageRank(g),
		NewGraphColoring(g),
		NewConnectedComp(g),
		NewDegreeCentr(g),
		NewDFS(g),
		NewBFS(g),
		NewTriangleCount(g),
		NewShortestPath(g),
		NewCanneal(size),
		NewOmnetpp(size),
		NewMCF(size),
	}
	extrasMu.Lock()
	defer extrasMu.Unlock()
	for _, e := range extras {
		ws = append(ws, e.build(size, seed))
	}
	return ws
}

// ByName returns the named workload from a freshly built suite. Registered
// extras resolve directly (no R-MAT graph generation).
func ByName(size Size, seed uint64, name string) (Workload, bool) {
	extrasMu.Lock()
	for _, e := range extras {
		if e.name == name {
			b := e.build
			extrasMu.Unlock()
			return b(size, seed), true
		}
	}
	extrasMu.Unlock()
	for _, w := range Suite(size, seed) {
		if w.Name() == name {
			return w, true
		}
	}
	return nil, false
}
