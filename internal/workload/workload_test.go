package workload

import (
	"testing"
)

// collect gathers up to n accesses from a workload.
func collect(w Workload, seed uint64, n int) []Access {
	out := make([]Access, 0, n)
	w.Run(seed, func(a Access) bool {
		out = append(out, a)
		return len(out) < n
	})
	return out
}

func TestSuiteHasAllPaperWorkloads(t *testing.T) {
	ws := Suite(SizeTest, 1)
	if len(ws) != len(Names()) {
		t.Fatalf("suite size = %d, want %d (the eleven plus registered extras)",
			len(ws), len(Names()))
	}
	names := map[string]bool{}
	for i, w := range ws {
		names[w.Name()] = true
		if i < len(PaperNames()) && w.Name() != PaperNames()[i] {
			t.Fatalf("suite[%d] = %q, want paper order %q", i, w.Name(), PaperNames()[i])
		}
	}
	for _, want := range Names() {
		if !names[want] {
			t.Fatalf("missing workload %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName(SizeTest, 1, "canneal")
	if !ok || w.Name() != "canneal" {
		t.Fatal("ByName failed for canneal")
	}
	if _, ok := ByName(SizeTest, 1, "nope"); ok {
		t.Fatal("ByName found a nonexistent workload")
	}
}

func TestEveryWorkloadProducesStream(t *testing.T) {
	for _, w := range Suite(SizeTest, 2) {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			const n = 50000
			accs := collect(w, 3, n)
			if len(accs) != n {
				t.Fatalf("%s produced only %d accesses", w.Name(), len(accs))
			}
			loads, stores := 0, 0
			fp := w.FootprintBytes()
			for _, a := range accs {
				if a.Addr >= fp {
					t.Fatalf("%s: access %#x beyond footprint %#x", w.Name(), a.Addr, fp)
				}
				if a.Write {
					stores++
				} else {
					loads++
				}
			}
			if loads == 0 {
				t.Fatalf("%s: no loads", w.Name())
			}
			if stores == 0 {
				t.Fatalf("%s: no stores", w.Name())
			}
		})
	}
}

func TestDeterministicStreams(t *testing.T) {
	for _, name := range []string{"pageRank", "BFS", "canneal", "mcf"} {
		w1, _ := ByName(SizeTest, 5, name)
		w2, _ := ByName(SizeTest, 5, name)
		a1 := collect(w1, 9, 20000)
		a2 := collect(w2, 9, 20000)
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("%s diverged at access %d", name, i)
			}
		}
	}
}

func TestStopIsPrompt(t *testing.T) {
	// After the sink returns false, the workload must return without
	// delivering more accesses.
	for _, w := range Suite(SizeTest, 4) {
		count := 0
		w.Run(1, func(Access) bool {
			count++
			return count < 10
		})
		if count != 10 {
			t.Fatalf("%s: delivered %d accesses after stop at 10", w.Name(), count)
		}
	}
}

func TestShardsDiffer(t *testing.T) {
	ws := Suite(SizeTest, 6)
	for _, w := range ws {
		sh, ok := w.(Sharded)
		if !ok {
			continue
		}
		var a0, a1 []Access
		sh.RunShard(0, 4, 7, func(a Access) bool { a0 = append(a0, a); return len(a0) < 5000 })
		sh.RunShard(1, 4, 7, func(a Access) bool { a1 = append(a1, a); return len(a1) < 5000 })
		same := 0
		for i := range a0 {
			if a0[i].Addr == a1[i].Addr {
				same++
			}
		}
		if same == len(a0) {
			t.Fatalf("%s: shards 0 and 1 produced identical streams", w.Name())
		}
	}
}

func TestGraphKernelsAreSharded(t *testing.T) {
	paper := map[string]bool{}
	for _, n := range PaperNames() {
		paper[n] = true
	}
	count := 0
	for _, w := range Suite(SizeTest, 1) {
		if !paper[w.Name()] {
			continue // extras may shard too (ppSweep does)
		}
		if _, ok := w.(Sharded); ok {
			count++
		}
	}
	if count != 8 {
		t.Fatalf("sharded kernels = %d, want the 8 graph kernels", count)
	}
}

func TestIrregularityOrdering(t *testing.T) {
	// The paper's premise (Figure 3): canneal is far more irregular than
	// mcf. Measure unique 8 KiB regions touched per access as a proxy.
	uniqueRegions := func(name string) float64 {
		w, _ := ByName(SizeSmall, 3, name)
		regions := map[uint64]bool{}
		const n = 200000
		cnt := 0
		w.Run(5, func(a Access) bool {
			regions[a.Addr>>13] = true
			cnt++
			return cnt < n
		})
		return float64(len(regions)) / float64(cnt)
	}
	canneal := uniqueRegions("canneal")
	mcf := uniqueRegions("mcf")
	if canneal <= mcf*2 {
		t.Fatalf("canneal irregularity %.4f not clearly above mcf %.4f", canneal, mcf)
	}
}

func TestFootprintsExceedLLCAtFullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size suite construction is slow")
	}
	paper := map[string]bool{}
	for _, n := range PaperNames() {
		paper[n] = true
	}
	for _, w := range Suite(SizeFull, 1) {
		if !paper[w.Name()] {
			continue // extras (sidechannel adversaries) fix their own geometry
		}
		if w.FootprintBytes() < 32<<20 {
			t.Errorf("%s footprint %d MiB too small for the paper's regime",
				w.Name(), w.FootprintBytes()>>20)
		}
	}
}

func BenchmarkPageRankStream(b *testing.B) {
	w, _ := ByName(SizeSmall, 1, "pageRank")
	b.ResetTimer()
	n := 0
	w.Run(1, func(Access) bool {
		n++
		return n < b.N
	})
}

func BenchmarkCannealStream(b *testing.B) {
	w, _ := ByName(SizeSmall, 1, "canneal")
	b.ResetTimer()
	n := 0
	w.Run(1, func(Access) bool {
		n++
		return n < b.N
	})
}
