package workload_test

import (
	"testing"

	"rmcc/internal/workload"

	_ "rmcc/internal/sidechan" // registers the adversary workloads
)

// TestNamesOrder: the paper's eleven stay first in figure order; extras
// (here the sidechannel adversaries) follow in registration order.
func TestNamesOrder(t *testing.T) {
	names := workload.Names()
	paper := workload.PaperNames()
	if len(names) < len(paper)+2 {
		t.Fatalf("Names() = %v, want the eleven plus the two adversaries", names)
	}
	for i, n := range paper {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
	rest := names[len(paper):]
	if rest[0] != "ppSweep" || rest[1] != "memjam4k" {
		t.Fatalf("extras = %v, want [ppSweep memjam4k ...]", rest)
	}
}

// TestSuiteIncludesExtras: Suite appends registered extras after the
// paper's workloads, and ByName resolves them without graph generation.
func TestSuiteIncludesExtras(t *testing.T) {
	ws := workload.Suite(workload.SizeTest, 1)
	byName := map[string]bool{}
	for _, w := range ws {
		byName[w.Name()] = true
	}
	for _, n := range []string{"ppSweep", "memjam4k"} {
		if !byName[n] {
			t.Errorf("Suite missing extra %q", n)
		}
		w, ok := workload.ByName(workload.SizeTest, 1, n)
		if !ok || w.Name() != n {
			t.Errorf("ByName(%q) = %v, %v", n, w, ok)
		}
	}
}

// TestRegisterExtraRejections: duplicates and paper-name shadows panic at
// registration (init-time misuse should fail loudly).
func TestRegisterExtraRejections(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	build := func(workload.Size, uint64) workload.Workload { return nil }
	mustPanic("duplicate", func() { workload.RegisterExtra("ppSweep", build) })
	mustPanic("paper shadow", func() { workload.RegisterExtra("mcf", build) })
	mustPanic("nil constructor", func() { workload.RegisterExtra("x", nil) })
}
