package workload

import "rmcc/internal/rng"

// The three non-graph workloads reproduce the *memory access patterns* of
// PARSEC canneal, SPEC omnetpp, and SPEC mcf rather than their source code
// (which is external): canneal's random swap-and-evaluate over a huge
// netlist, omnetpp's event-heap churn with scattered payloads, and mcf's
// mostly-sequential arc sweeps with occasional node chasing. The paper
// picks exactly these three because they span the counter-miss spectrum —
// canneal highest, mcf lowest (Figure 3).

// --- canneal ---

// Canneal models simulated-annealing placement: pick two random cells,
// read both and a few of each cell's netlist neighbors, then swap (two
// writes). Nearly every access is a fresh random 64 B cell in a footprint
// far beyond any cache.
type Canneal struct {
	cellBase uint64
	nCells   uint64
	lay      *layout
}

// NewCanneal builds the workload at the given size.
func NewCanneal(size Size) *Canneal {
	var cells uint64
	switch size {
	case SizeTest:
		cells = 1 << 14 // 1 MiB
	case SizeSmall:
		// 64 MiB: 4x the 128 KB counter cache's 16 MB reach, so the
		// counter-miss regime survives the scaled-down runs.
		cells = 1 << 20
	default:
		cells = 1 << 22 // 256 MiB
	}
	lay := newLayout()
	return &Canneal{cellBase: lay.region(cells * 64), nCells: cells, lay: lay}
}

// Name implements Workload.
func (c *Canneal) Name() string { return "canneal" }

// FootprintBytes implements Workload.
func (c *Canneal) FootprintBytes() uint64 { return c.lay.footprint() }

// Run implements Workload.
func (c *Canneal) Run(seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	r := rng.New(seed)
	cell := func(i uint64) uint64 { return c.cellBase + i*64 }
	for !e.stopped {
		a := r.Uint64n(c.nCells)
		b := r.Uint64n(c.nCells)
		e.load(cell(a), 3)
		e.load(cell(b), 1)
		// Each cell consults a few nets (pseudo-neighbors derived from the
		// cell id, like netlist pointers).
		for k := uint64(1); k <= 3; k++ {
			e.load(cell((a*2654435761+k*40503)%c.nCells), 2)
			e.load(cell((b*2654435761+k*40503)%c.nCells), 2)
		}
		// Accept the swap: write both cells.
		e.store(cell(a), 4)
		e.store(cell(b), 1)
	}
}

// --- omnetpp ---

// Omnetpp models a discrete-event simulator: a binary heap of pending
// events (hot near the root, scattered at depth) plus random-scattered
// event payloads, with moderate locality overall.
type Omnetpp struct {
	heapBase, payloadBase uint64
	heapCap, nPayloads    uint64
	lay                   *layout
}

// NewOmnetpp builds the workload at the given size.
func NewOmnetpp(size Size) *Omnetpp {
	var heapCap, payloads uint64
	switch size {
	case SizeTest:
		heapCap, payloads = 1<<12, 1<<14
	case SizeSmall:
		heapCap, payloads = 1<<16, 1<<20
	default:
		heapCap, payloads = 1<<18, 1<<21 // 16 MiB heap, 128 MiB payloads
	}
	lay := newLayout()
	return &Omnetpp{
		heapBase:    lay.region(heapCap * 64),
		payloadBase: lay.region(payloads * 64),
		heapCap:     heapCap,
		nPayloads:   payloads,
		lay:         lay,
	}
}

// Name implements Workload.
func (o *Omnetpp) Name() string { return "omnetpp" }

// FootprintBytes implements Workload.
func (o *Omnetpp) FootprintBytes() uint64 { return o.lay.footprint() }

// Run implements Workload.
func (o *Omnetpp) Run(seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	r := rng.New(seed)
	heap := make([]uint64, 1, o.heapCap) // event timestamps
	heap[0] = r.Uint64n(1000)
	hAddr := func(i int) uint64 { return o.heapBase + uint64(i)*64 }
	now := uint64(0)
	for !e.stopped {
		// Pop-min with sift-down: touches a root-to-leaf path.
		e.load(hAddr(0), 3)
		now = heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		e.load(hAddr(last), 1)
		heap = heap[:last]
		i := 0
		for {
			l, rr := 2*i+1, 2*i+2
			small := i
			if l < len(heap) {
				e.load(hAddr(l), 1)
				if heap[l] < heap[small] {
					small = l
				}
			}
			if rr < len(heap) {
				e.load(hAddr(rr), 1)
				if heap[rr] < heap[small] {
					small = rr
				}
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			e.store(hAddr(i), 1)
			e.store(hAddr(small), 1)
			i = small
		}
		// Handle the event: touch its payload module state (scattered).
		p := r.Uint64n(o.nPayloads)
		e.load(o.payloadBase+p*64, 4)
		e.store(o.payloadBase+p*64, 2)
		// Schedule 1-2 future events: push with sift-up.
		nNew := 1 + int(r.Uint64n(2))
		for k := 0; k < nNew && uint64(len(heap)) < o.heapCap-1; k++ {
			heap = append(heap, now+1+r.Uint64n(5000))
			j := len(heap) - 1
			e.store(hAddr(j), 2)
			for j > 0 {
				parent := (j - 1) / 2
				e.load(hAddr(parent), 1)
				if heap[parent] <= heap[j] {
					break
				}
				heap[parent], heap[j] = heap[j], heap[parent]
				e.store(hAddr(parent), 1)
				j = parent
			}
		}
		if len(heap) == 0 {
			heap = append(heap, now+1)
			e.store(hAddr(0), 1)
		}
	}
}

// --- mcf ---

// MCF models network-simplex pricing sweeps: long sequential scans over a
// big arc array with occasional random node-table accesses and sparse arc
// updates — the low-counter-miss end of the paper's spectrum (sequential
// misses share counter blocks).
type MCF struct {
	arcBase, nodeBase uint64
	nArcs, nNodes     uint64
	lay               *layout
}

// NewMCF builds the workload at the given size.
func NewMCF(size Size) *MCF {
	var arcs, nodes uint64
	switch size {
	case SizeTest:
		arcs, nodes = 1<<14, 1<<11
	case SizeSmall:
		arcs, nodes = 1<<19, 1<<15
	default:
		arcs, nodes = 1<<21, 1<<17 // 128 MiB arcs, 8 MiB nodes
	}
	lay := newLayout()
	return &MCF{
		arcBase:  lay.region(arcs * 64),
		nodeBase: lay.region(nodes * 64),
		nArcs:    arcs,
		nNodes:   nodes,
		lay:      lay,
	}
}

// Name implements Workload.
func (m *MCF) Name() string { return "mcf" }

// FootprintBytes implements Workload.
func (m *MCF) FootprintBytes() uint64 { return m.lay.footprint() }

// Run implements Workload.
func (m *MCF) Run(seed uint64, sink Sink) {
	e := &emitter{sink: sink}
	r := rng.New(seed)
	for !e.stopped {
		// One pricing sweep over all arcs.
		for a := uint64(0); a < m.nArcs && !e.stopped; a++ {
			e.load(m.arcBase+a*64, 2)
			// ~12 % of arcs chase their endpoint nodes (random).
			if r.Uint64n(8) == 0 {
				e.load(m.nodeBase+r.Uint64n(m.nNodes)*64, 2)
				e.load(m.nodeBase+r.Uint64n(m.nNodes)*64, 1)
			}
			// ~3 % of arcs enter the basis: write the arc and a node.
			if r.Uint64n(32) == 0 {
				e.store(m.arcBase+a*64, 2)
				e.store(m.nodeBase+r.Uint64n(m.nNodes)*64, 1)
			}
		}
	}
}
