package server_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rmcc/internal/server"
	"rmcc/internal/server/client"
)

// directStats runs the reference simulation on a throwaway daemon: one
// session, one uninterrupted replay of n accesses.
func directStats(t *testing.T, n uint64) server.ReplayStats {
	t.Helper()
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.ReplayWorkload(ctx, info.ID, n, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, server.Config{SnapshotDir: dir})
	ctx := context.Background()

	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReplayWorkload(ctx, info.ID, 6000, 0, nil); err != nil {
		t.Fatal(err)
	}

	// On-demand durable checkpoint: file on disk, info reflects it.
	ck, err := c.Checkpoint(ctx, info.ID)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if ck.LastCheckpoint == "" || ck.CheckpointBytes == 0 {
		t.Fatalf("checkpoint info not populated: %+v", ck)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID+".snap")); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}

	// Download, delete, restore: the session comes back under its ID with
	// its cursor intact, and the remaining replay is bit-identical to an
	// uninterrupted run.
	blob, err := c.CheckpointDownload(ctx, info.ID)
	if err != nil {
		t.Fatalf("download: %v", err)
	}
	if err := c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	restored, err := c.RestoreSession(ctx, blob)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored.ID != info.ID || restored.Accesses != 6000 {
		t.Fatalf("restored info: %+v", restored)
	}
	stats, err := c.ReplayWorkload(ctx, restored.ID, 4000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := directStats(t, 10000)
	if !reflect.DeepEqual(stats.Engine, want.Engine) {
		t.Errorf("resumed engine stats differ from uninterrupted run:\ngot:  %+v\nwant: %+v",
			stats.Engine, want.Engine)
	}

	// Restoring the same blob while the session lives is an ID conflict.
	if _, err := c.RestoreSession(ctx, blob); err == nil {
		t.Fatal("duplicate restore succeeded")
	} else {
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Status != 409 {
			t.Fatalf("duplicate restore: %v", err)
		}
	}
}

// TestRestoreThenCheckpointKeepsCursor covers the restore→checkpoint
// ordering hazard: a checkpoint cut on a restored session before its first
// replay (handleRestore cuts one immediately) must persist the restored
// stream cursor, not zero — otherwise the next recovery replays the
// deterministic stream from access 0 into an engine already at N and the
// resumed run diverges.
func TestRestoreThenCheckpointKeepsCursor(t *testing.T) {
	dir := t.TempDir()
	_, c1 := newTestServer(t, server.Config{SnapshotDir: dir})
	ctx := context.Background()

	info, err := c1.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.ReplayWorkload(ctx, info.ID, 5000, 0, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := c1.CheckpointDownload(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	// Restore cuts an immediate durable checkpoint — before any replay has
	// rebuilt the session's access stream.
	if _, err := c1.RestoreSession(ctx, blob); err != nil {
		t.Fatalf("restore: %v", err)
	}

	// A second daemon generation recovers from that immediate checkpoint;
	// the remaining replay must still be bit-identical to an uninterrupted
	// run.
	_, c2 := newTestServer(t, server.Config{SnapshotDir: dir})
	infos, err := c2.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != info.ID || infos[0].Accesses != 5000 {
		t.Fatalf("recovered sessions: %+v", infos)
	}
	stats, err := c2.ReplayWorkload(ctx, info.ID, 5000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := directStats(t, 10000)
	if !reflect.DeepEqual(stats.Engine, want.Engine) {
		t.Errorf("restore→checkpoint→recover run diverged from uninterrupted run:\ngot:  %+v\nwant: %+v",
			stats.Engine, want.Engine)
	}
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	_, c1 := newTestServer(t, server.Config{SnapshotDir: dir})
	ctx := context.Background()

	info, err := c1.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.ReplayWorkload(ctx, info.ID, 5000, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Checkpoint(ctx, info.ID); err != nil {
		t.Fatal(err)
	}

	// "Crash": a second daemon starts over the same snapshot dir without
	// the first ever deleting its session.
	_, c2 := newTestServer(t, server.Config{SnapshotDir: dir})
	infos, err := c2.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != info.ID || infos[0].Accesses != 5000 {
		t.Fatalf("recovered sessions: %+v", infos)
	}
	stats, err := c2.ReplayWorkload(ctx, info.ID, 5000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := directStats(t, 10000)
	if !reflect.DeepEqual(stats.Engine, want.Engine) {
		t.Errorf("recovered engine stats differ from uninterrupted run:\ngot:  %+v\nwant: %+v",
			stats.Engine, want.Engine)
	}

	// New sessions on the recovered daemon must not collide with the
	// recovered ID space.
	fresh, err := c2.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == info.ID {
		t.Fatalf("recovered daemon reissued live session ID %q", fresh.ID)
	}
}

func TestRecoveryFallbacks(t *testing.T) {
	dir := t.TempDir()
	_, c1 := newTestServer(t, server.Config{SnapshotDir: dir})
	ctx := context.Background()

	info, err := c1.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.ReplayWorkload(ctx, info.ID, 3000, 0, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := c1.CheckpointDownload(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated tail: the meta section survives, the simulator state does
	// not → recovery restarts the session fresh under the same ID.
	if err := os.WriteFile(filepath.Join(dir, info.ID+".snap"), blob[:len(blob)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	// Pure garbage: no usable meta → skipped entirely.
	if err := os.WriteFile(filepath.Join(dir, "s-deadbeef.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, c2 := newTestServer(t, server.Config{SnapshotDir: dir})
	infos, err := c2.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != info.ID {
		t.Fatalf("recovered sessions: %+v", infos)
	}
	if infos[0].Accesses != 0 {
		t.Fatalf("fallback session should restart at access zero, got %d", infos[0].Accesses)
	}
	// The fallback session is fully usable.
	if _, err := c2.ReplayWorkload(ctx, info.ID, 1000, 0, nil); err != nil {
		t.Fatalf("fallback session replay: %v", err)
	}
}

func TestRestoreRejectsBadBlobs(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReplayWorkload(ctx, info.ID, 2000, 0, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := c.CheckpointDownload(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}

	status := func(err error) int {
		t.Helper()
		var ae *client.APIError
		if !errors.As(err, &ae) {
			t.Fatalf("not an API error: %v", err)
		}
		return ae.Status
	}
	if _, err := c.RestoreSession(ctx, []byte("garbage")); status(err) != 422 {
		t.Errorf("garbage blob: %v", err)
	}
	if _, err := c.RestoreSession(ctx, blob[:len(blob)/2]); status(err) != 422 {
		t.Errorf("truncated blob: %v", err)
	}
	mut := append([]byte(nil), blob...)
	mut[8] = 0x7f // format version
	if _, err := c.RestoreSession(ctx, mut); status(err) != 422 {
		t.Errorf("version flip: %v", err)
	}
}

func TestDrainFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv, c := newTestServer(t, server.Config{SnapshotDir: dir})
	ctx := context.Background()

	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReplayWorkload(ctx, info.ID, 4000, 0, nil); err != nil {
		t.Fatal(err)
	}
	srv.BeginDrain()
	if n := srv.CheckpointAll(ctx); n != 1 {
		t.Fatalf("CheckpointAll wrote %d checkpoints, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, info.ID+".snap")); err != nil {
		t.Fatalf("final checkpoint file: %v", err)
	}

	// The next daemon generation resumes from the drain checkpoint.
	_, c2 := newTestServer(t, server.Config{SnapshotDir: dir})
	infos, err := c2.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Accesses != 4000 {
		t.Fatalf("recovered sessions after drain: %+v", infos)
	}
}
