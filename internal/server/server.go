package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rmcc/internal/buildinfo"
	"rmcc/internal/obs"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"

	// Register the sidechannel adversary workloads (ppSweep, memjam4k) so
	// every rmccd session and rmcc-loadgen shortcut can resolve them by
	// name like any paper benchmark.
	_ "rmcc/internal/sidechan"
)

// Config parameterizes the daemon. The zero value is usable: every field
// has a production default.
type Config struct {
	// Shards is the worker-goroutine pool size (default GOMAXPROCS).
	Shards int
	// QueueDepth bounds each shard's job queue; a full queue blocks
	// submitters, backpressuring streaming clients (default 64).
	QueueDepth int
	// IdleTTL evicts sessions untouched for this long (default 10m;
	// negative disables eviction).
	IdleTTL time.Duration
	// MaxSessions caps live sessions; creates beyond it get 429
	// (default 1024).
	MaxSessions int
	// ChunkAccesses is the replay batch applied per shard job — the
	// granularity of backpressure, progress, and cancellation
	// (default 4096).
	ChunkAccesses int
	// MaxBodyBytes caps the session-config document (default 1 MiB).
	MaxBodyBytes int64
	// MaxLineBytes caps one NDJSON access line (default 4096).
	MaxLineBytes int
	// MaxReplayAccesses caps the workload-shortcut accesses parameter
	// (default 1e9).
	MaxReplayAccesses uint64

	// SnapshotDir, when set, makes sessions crash-recoverable: each live
	// session is periodically checkpointed to <dir>/<id>.snap, the drain
	// path cuts a final checkpoint of every session, and New rehydrates
	// sessions from the newest valid checkpoints on startup. Empty (the
	// default) disables all durable-checkpoint machinery.
	SnapshotDir string
	// SnapshotEvery is the periodic checkpoint interval (default 30s;
	// only meaningful with SnapshotDir).
	SnapshotEvery time.Duration
	// MaxSnapshotBytes caps a POST /v1/sessions/restore body
	// (default 256 MiB).
	MaxSnapshotBytes int64

	// Now is the clock, injectable for TTL tests (default time.Now).
	Now func() time.Time
	// Logger receives structured operational logs. Nil disables logging
	// entirely (the default): every call site pays one branch.
	Logger *obs.Logger
	// SpanRing caps the retained-span ring behind /debug/tracez
	// (default obs.DefaultSpanCap). Spans are always recorded — completing
	// one is allocation-free — so the ring is never disabled, only sized.
	SpanRing int
	// LogSampleEvery admits one per-chunk debug log line in every N
	// (default 64); chunk lines only exist at -log-level debug.
	LogSampleEvery uint64
	// NodeID stamps this daemon's spans in /debug/tracez output so
	// cluster-wide fan-out merges attribute every row (default
	// "rmccd"; rmccd sets it to -node-id or the resolved listen address).
	NodeID string
	// Flight, when set, mirrors every completed span (and, via the
	// logger attachment done by the caller, warn+ log lines) into a
	// crash-durable flight-recorder ring served at /debug/flightz.
	Flight *obs.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = 10 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.ChunkAccesses <= 0 {
		c.ChunkAccesses = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 4096
	}
	if c.MaxReplayAccesses == 0 {
		c.MaxReplayAccesses = 1_000_000_000
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 30 * time.Second
	}
	if c.MaxSnapshotBytes <= 0 {
		c.MaxSnapshotBytes = 256 << 20
	}
	if c.LogSampleEvery == 0 {
		c.LogSampleEvery = 64
	}
	if c.NodeID == "" {
		c.NodeID = "rmccd"
	}
	return c
}

// Server is the rmccd HTTP service. Create with New, serve via
// ServeHTTP/Handler, stop with BeginDrain + Close (see cmd/rmccd for the
// full graceful-shutdown sequence).
type Server struct {
	cfg     Config
	pool    *shardPool
	mux     *http.ServeMux
	reg     *obs.Registry
	log     *obs.Logger
	spans   *obs.SpanTracer
	trace   *obs.Tracer
	started time.Time

	mu       sync.Mutex
	sessions map[string]*session
	nextID   atomic.Uint64

	draining atomic.Bool
	// forceCtx cancels every in-flight replay when the drain deadline
	// expires.
	forceCtx    context.Context
	forceCancel context.CancelFunc

	janitorStop chan struct{}
	janitorDone chan struct{}

	// Periodic checkpointer lifecycle (nil channels when SnapshotDir is
	// unset — no goroutine runs).
	ckptStop chan struct{}
	ckptDone chan struct{}

	// metrics (owned instruments; exported at /metrics).
	mSessionsCreated *obs.Counter
	mEvictedTTL      *obs.Counter
	mEvictedAPI      *obs.Counter
	mReplaysOK       *obs.Counter
	mReplaysErr      *obs.Counter
	mReplaysCancel   *obs.Counter
	mReplayAccesses  *obs.Counter
	mReplaySizes     *obs.Histogram
	// Per-wire replay traffic: requests by source (workload shortcut,
	// NDJSON body, binary frames) and body bytes read per body wire.
	wireMetrics map[string]wireMetric

	// Per-stage replay latency (µs): queue-wait, engine-step, encode.
	mStageQueueWait *obs.Histogram
	mStageEngine    *obs.Histogram
	mStageEncode    *obs.Histogram
	// Shard queue depth observed at each chunk enqueue.
	mEnqueueDepth *obs.Histogram

	// Durable-checkpoint metrics.
	mSnapshots          *obs.Counter
	mSnapshotFailWrite  *obs.Counter
	mSnapshotFailLoad   *obs.Counter
	mSessionsRecovered  *obs.Counter
	mSnapshotDurationUS *obs.Histogram
	mSnapshotBytes      *obs.Histogram
}

// New builds a server and starts its shard pool and TTL janitor.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		pool:        newShardPool(cfg.Shards, cfg.QueueDepth),
		log:         cfg.Logger,
		spans:       obs.NewSpanTracer(cfg.SpanRing),
		trace:       obs.NewTracer(cfg.SpanRing),
		started:     cfg.Now(),
		sessions:    make(map[string]*session),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.forceCtx, s.forceCancel = context.WithCancel(context.Background())
	s.initMetrics()
	// Spans feed their stage histograms and mirror into the ring tracer
	// as EvSpanEnd events (the tracer is only emitted into under the span
	// tracer's lock, upholding its single-emitter rule).
	s.spans.RegisterStage(stageQueueWait, s.mStageQueueWait)
	s.spans.RegisterStage(stageEngine, s.mStageEngine)
	s.spans.RegisterStage(stageEncode, s.mStageEncode)
	s.spans.AttachTracer(s.trace)
	s.spans.AttachFlight(cfg.Flight)
	s.initRoutes()
	if cfg.SnapshotDir != "" {
		// Rehydrate crashed sessions before any request can race a create,
		// then start the periodic checkpointer.
		s.recoverSessions()
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointer()
	}
	go s.janitor()
	return s
}

// wireMetric bundles the per-wire replay instruments. bytes is nil for
// the workload shortcut (no request body to meter).
type wireMetric struct {
	requests *obs.Counter
	bytes    *obs.Counter
}

// Span stage names (the "stage" label on rmccd_replay_stage_duration_us).
const (
	stageQueueWait = "queue-wait"
	stageEngine    = "engine-step"
	stageEncode    = "encode"
)

func (s *Server) initMetrics() {
	s.reg = obs.NewRegistry()
	s.mSessionsCreated = s.reg.Counter("rmccd_sessions_created_total",
		"sessions created over the daemon lifetime")
	s.mEvictedTTL = s.reg.Counter("rmccd_sessions_evicted_total",
		"sessions evicted, by reason", obs.L("reason", "ttl"))
	s.mEvictedAPI = s.reg.Counter("rmccd_sessions_evicted_total", "",
		obs.L("reason", "api"))
	s.mReplaysOK = s.reg.Counter("rmccd_replays_total",
		"replay requests, by outcome", obs.L("status", "ok"))
	s.mReplaysErr = s.reg.Counter("rmccd_replays_total", "", obs.L("status", "error"))
	s.mReplaysCancel = s.reg.Counter("rmccd_replays_total", "", obs.L("status", "cancelled"))
	s.mReplayAccesses = s.reg.Counter("rmccd_replay_accesses_total",
		"accesses applied across all replays")
	s.mReplaySizes = s.reg.Histogram("rmccd_replay_size_accesses",
		"accesses applied per replay request",
		[]uint64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000})
	s.wireMetrics = map[string]wireMetric{
		wireWorkload: {requests: s.reg.Counter("rmccd_replay_requests_total",
			"replay requests, by wire", obs.L("wire", wireWorkload))},
		wireNDJSON: {
			requests: s.reg.Counter("rmccd_replay_requests_total", "",
				obs.L("wire", wireNDJSON)),
			bytes: s.reg.Counter("rmccd_replay_bytes_total",
				"replay body bytes read, by wire", obs.L("wire", wireNDJSON)),
		},
		wireBinary: {
			requests: s.reg.Counter("rmccd_replay_requests_total", "",
				obs.L("wire", wireBinary)),
			bytes: s.reg.Counter("rmccd_replay_bytes_total", "",
				obs.L("wire", wireBinary)),
		},
	}
	s.reg.GaugeFunc("rmccd_sessions_active", "live sessions",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.sessions))
		})
	for i := 0; i < s.cfg.Shards; i++ {
		shard := i
		s.reg.GaugeFunc("rmccd_shard_queue_depth",
			"pending jobs per shard queue",
			func() float64 { return float64(s.pool.queueLen(shard)) },
			obs.L("shard", strconv.Itoa(shard)))
	}
	s.reg.GaugeFunc("rmccd_build_info",
		"constant 1, labeled with the daemon build version and revision",
		func() float64 { return 1 },
		obs.L("revision", buildinfo.GitSHA()), obs.L("version", buildinfo.Version()))

	stageBuckets := obs.Pow2Buckets(1, 24) // 2µs .. ~16.8s
	const stageHelp = "per-stage replay latency in microseconds"
	s.mStageQueueWait = s.reg.Histogram("rmccd_replay_stage_duration_us",
		stageHelp, stageBuckets, obs.L("stage", stageQueueWait))
	s.mStageEngine = s.reg.Histogram("rmccd_replay_stage_duration_us",
		stageHelp, stageBuckets, obs.L("stage", stageEngine))
	s.mStageEncode = s.reg.Histogram("rmccd_replay_stage_duration_us",
		stageHelp, stageBuckets, obs.L("stage", stageEncode))
	s.mEnqueueDepth = s.reg.Histogram("rmccd_queue_depth_at_enqueue",
		"shard queue depth observed when a replay chunk was submitted",
		obs.Pow2Buckets(0, 10))
	s.mSnapshots = s.reg.Counter("rmccd_snapshots_total",
		"session checkpoints cut (periodic, drain, and on-demand)")
	s.mSnapshotFailWrite = s.reg.Counter("rmccd_snapshot_failures_total",
		"checkpoint failures, by reason", obs.L("reason", "write"))
	s.mSnapshotFailLoad = s.reg.Counter("rmccd_snapshot_failures_total", "",
		obs.L("reason", "restore"))
	s.mSessionsRecovered = s.reg.Counter("rmccd_sessions_recovered_total",
		"sessions rehydrated from checkpoints at startup")
	s.mSnapshotDurationUS = s.reg.Histogram("rmccd_snapshot_duration_us",
		"checkpoint cut latency in microseconds (encode plus fsynced write for durable checkpoints; encode only for inline downloads)",
		obs.Pow2Buckets(4, 26))
	s.mSnapshotBytes = s.reg.Histogram("rmccd_snapshot_bytes",
		"encoded checkpoint size in bytes", obs.Pow2Buckets(10, 32))
	s.reg.GaugeFunc("rmccd_uptime_seconds", "seconds since the daemon started",
		func() float64 { return s.cfg.Now().Sub(s.started).Seconds() })
	s.reg.CounterFunc("rmccd_spans_total", "service-layer spans completed",
		func() uint64 { return s.spans.Total() })
	s.reg.CounterFunc("rmccd_spans_dropped_total",
		"completed spans overwritten in the ring before any export read them",
		func() uint64 { return s.spans.Dropped() })
	s.reg.CounterFunc("rmccd_flight_records_total",
		"records captured by the flight recorder over its lifetime",
		func() uint64 { return s.cfg.Flight.Records() })
	s.reg.CounterFunc("rmccd_flight_dropped_total",
		"flight-recorder records evicted to make room for newer ones",
		func() uint64 { return s.cfg.Flight.Dropped() })
	s.reg.CounterFunc("rmccd_log_lines_total", "structured log lines emitted",
		func() uint64 { return s.log.Lines() })
}

func (s *Server) initRoutes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sessions", s.instrument("create", s.handleCreate))
	s.mux.HandleFunc("GET /v1/sessions", s.instrument("list", s.handleList))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("delete", s.handleDelete))
	s.mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.instrument("snapshot", s.handleSnapshot))
	s.mux.HandleFunc("POST /v1/sessions/{id}/snapshot", s.instrument("checkpoint", s.handleCheckpoint))
	s.mux.HandleFunc("POST /v1/sessions/restore", s.instrument("restore", s.handleRestore))
	s.mux.HandleFunc("POST /v1/sessions/{id}/replay", s.instrument("replay", s.handleReplay))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	// The operational summary also lives on the service mux (not just the
	// loopback debug listener) so a router can health-check nodes over the
	// same address it proxies to.
	s.mux.HandleFunc("GET /statusz", s.instrument("statusz", s.handleStatusz))
	// Trace lookup and the flight recorder are likewise router-reachable:
	// the router fans /debug/tracez?trace= out to every node over its
	// proxy address, and operators can pull a postmortem dump from a
	// wedged node without a loopback debug listener.
	s.mux.HandleFunc("GET /debug/tracez", s.instrument("tracez", s.handleTracez))
	s.mux.HandleFunc("GET /debug/flightz", s.instrument("flightz", s.handleFlightz))
}

// Handler returns the routed handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the daemon's registry (tests, embedding).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// BeginDrain marks the server draining: health checks flip to 503 and new
// sessions/replays are refused while in-flight replays keep running.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// ForceCancel aborts every in-flight replay (drain deadline expired).
func (s *Server) ForceCancel() { s.forceCancel() }

// Close stops the janitor and the shard pool. Call only after the HTTP
// listener has stopped delivering requests (http.Server.Shutdown/Close):
// shard submission after Close panics by design.
func (s *Server) Close() {
	s.draining.Store(true)
	close(s.janitorStop)
	<-s.janitorDone
	if s.ckptStop != nil {
		close(s.ckptStop)
		<-s.ckptDone
	}
	s.forceCancel()
	s.pool.close()
	s.mu.Lock()
	for _, sess := range s.sessions {
		if sess.stream != nil {
			sess.stream.Close()
		}
		delete(s.sessions, sess.id)
	}
	s.mu.Unlock()
}

// janitor periodically sweeps idle sessions.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	if s.cfg.IdleTTL < 0 {
		<-s.janitorStop
		return
	}
	period := s.cfg.IdleTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Sweep(s.cfg.Now())
		case <-s.janitorStop:
			return
		}
	}
}

// Sweep evicts every session idle longer than IdleTTL as of now,
// returning how many went. Exported so tests drive TTL directly with an
// injected clock.
func (s *Server) Sweep(now time.Time) int {
	if s.cfg.IdleTTL < 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.IdleTTL).UnixNano()
	s.mu.Lock()
	var idle []*session
	for _, sess := range s.sessions {
		if sess.lastUsed.Load() <= cutoff {
			idle = append(idle, sess)
		}
	}
	s.mu.Unlock()
	n := 0
	for _, sess := range idle {
		if s.evict(sess, s.mEvictedTTL, "ttl") {
			n++
		}
	}
	return n
}

// evict removes a session unless a replay holds it. The CAS ordering
// pairs with session.acquire (see its comment).
func (s *Server) evict(sess *session, ctr *obs.Counter, reason string) bool {
	if !sess.evicted.CompareAndSwap(false, true) {
		return false
	}
	if sess.replaying.Load() {
		sess.evicted.Store(false)
		return false
	}
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	if sess.stream != nil {
		sess.stream.Close()
	}
	s.removeCheckpoint(sess)
	ctr.Inc()
	sess.lg.Info("session evicted",
		"reason", reason, "accesses", sess.accessesDone.Load())
	return true
}

// lookup finds a live session.
func (s *Server) lookup(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// validSessionID reports whether id has the daemon shape: "s-" plus 1-16
// lowercase hex digits. Everything accepting externally supplied IDs
// (router-assigned creates, restore blobs) must gate on this — the ID is
// joined into a checkpoint file name, so arbitrary strings are a path
// traversal waiting to happen.
func validSessionID(id string) bool {
	hexPart, ok := strings.CutPrefix(id, "s-")
	if !ok || len(hexPart) == 0 || len(hexPart) > 16 {
		return false
	}
	for i := 0; i < len(hexPart); i++ {
		c := hexPart[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// advanceNextID keeps the self-issued ID counter ahead of an externally
// supplied (router-assigned or restored) session ID.
func (s *Server) advanceNextID(id string) {
	n, err := parseSessionID(id)
	if err != nil {
		return
	}
	for {
		cur := s.nextID.Load()
		if n <= cur || s.nextID.CompareAndSwap(cur, n) {
			return
		}
	}
}

// --- handlers ---

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	sc, err := DecodeSessionConfig(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := sc.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	lt, err := sim.NewLifetimeChecked(res.name, res.footprint, res.ltCfg)
	if err != nil {
		if errors.Is(err, engine.ErrInvalidConfig) {
			writeError(w, http.StatusBadRequest, err.Error())
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	now := s.cfg.Now()
	// The router assigns IDs up front (?id=) so it can consistent-hash a
	// session onto a node before the session exists. IDs become checkpoint
	// file names, so only the strict daemon shape is accepted.
	id := r.URL.Query().Get("id")
	if id != "" {
		if !validSessionID(id) {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("invalid session id %q (want s-<hex>, at most 16 hex digits)", id))
			return
		}
	} else {
		id = fmt.Sprintf("s-%08x", s.nextID.Add(1))
	}
	sess := &session{
		id:        id,
		shard:     s.pool.shardFor(id),
		name:      res.name,
		mode:      defaultStr(sc.Mode, "rmcc"),
		scheme:    defaultStr(sc.Scheme, "morphable"),
		seed:      res.seed,
		created:   now,
		cfgHash:   obs.HashConfig(sc),
		sc:        sc,
		footprint: res.footprint,
		lt:        lt,
		w:         res.w,
		sampler:   obs.NewLogSampler(s.cfg.LogSampleEvery),
		chunkHist: obs.NewHistogram(obs.Pow2Buckets(1, 24)),
	}
	// The session logger carries the request-scoped identity fields every
	// later line needs (per-session/request fields are bound once here).
	sess.lg = s.log.With("session", id, "shard", sess.shard,
		"workload", res.name, "seed", res.seed)
	// A sampled create binds its trace ID into every later log line the
	// session emits, so one grep connects logs to the distributed trace.
	if tc := traceCtx(r.Context()); tc.Valid() && tc.Sampled {
		sess.lg = sess.lg.With("trace", tc.TraceID())
	}
	sess.touch(now)

	s.mu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session limit reached (%d)", s.cfg.MaxSessions))
		return
	}
	if _, exists := s.sessions[id]; exists {
		s.mu.Unlock()
		writeError(w, http.StatusConflict,
			fmt.Sprintf("session %q already exists", id))
		return
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	// Explicit IDs must never collide with later self-issued ones.
	s.advanceNextID(id)
	s.mSessionsCreated.Inc()
	sess.lg.Info("session created",
		"mode", sess.mode, "scheme", sess.scheme,
		"footprint_bytes", sess.footprint, "config_hash", sess.cfgHash)
	// Durable from birth: cut the initial checkpoint now so a crash at any
	// point after the create response leaves the session recoverable.
	if s.cfg.SnapshotDir != "" {
		if err := s.checkpointSession(r.Context(), sess); err != nil {
			sess.lg.Warn("initial checkpoint failed", "error", err)
		}
	}
	writeJSON(w, http.StatusCreated, sess.info(0, now))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	now := s.cfg.Now()
	s.mu.Lock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess.info(sess.accessesDone.Load(), now))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	if !s.evict(sess, s.mEvictedAPI, "api") {
		writeError(w, http.StatusConflict, "session busy (replay in flight)")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSnapshot returns the session's cumulative stats plus a run
// manifest — the same diffable artifact the CLI tools write, cut live.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	ok, gone := sess.acquire()
	if !ok {
		code, msg := http.StatusConflict, "session busy (replay in flight)"
		if gone {
			code, msg = http.StatusNotFound, "session evicted"
		}
		writeError(w, code, msg)
		return
	}
	defer sess.release()
	var res sim.LifetimeResult
	if err := s.pool.do(r.Context(), sess.shard, func() { res = sess.lt.Result() }); err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	sess.touch(s.cfg.Now())
	stats := statsFromResult(sess.id, sess.seed, res)
	manifest := obs.NewManifest("rmccd", map[string]any{
		"session": sess.id, "name": sess.name, "mode": sess.mode,
		"scheme": sess.scheme, "footprint_bytes": sess.footprint,
	})
	manifest.Seed = sess.seed
	manifest.Started = sess.created.UTC().Format(time.RFC3339)
	manifest.GoMaxProcs = runtime.GOMAXPROCS(0)
	manifest.Notes["session"] = sess.id
	manifest.Notes["name"] = sess.name
	manifest.Headline["accesses"] = float64(stats.Accesses)
	manifest.Headline["ctr_miss_rate"] = stats.CtrMissRate
	manifest.Headline["memo_hit_rate_on_misses"] = stats.MemoHitRateOnMisses
	manifest.Headline["accelerated_rate"] = stats.AcceleratedRate
	manifest.Headline["total_traffic_blocks"] = float64(stats.TotalTrafficBlocks)
	manifest.Headline["max_counter"] = float64(stats.MaxCounter)
	writeJSON(w, http.StatusOK, SnapshotResponse{Stats: stats, Manifest: manifest})
}

// SnapshotResponse is the GET /v1/sessions/{id}/snapshot body.
type SnapshotResponse struct {
	Stats    ReplayStats  `json:"stats"`
	Manifest obs.Manifest `json:"manifest"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Warn("write metrics failed", "error", err)
	}
}

// --- response helpers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorBody{Error: msg})
}
