package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"rmcc/internal/obs"
	"rmcc/internal/sim"
	"rmcc/internal/snapshot"
)

// sessionKind tags rmccd session checkpoints: session metadata plus the
// full lifetime snapshot, one file per session.
const sessionKind = "rmccd-session"

// errCheckpointBusy marks a checkpoint skipped because a replay holds the
// session; the next periodic tick retries.
var errCheckpointBusy = errors.New("session busy")

// sessionMeta is the "meta" section of a session checkpoint: everything
// the daemon needs to rebuild the session object itself (the simulator
// state lives in the nested "lifetime" section). Config is the original
// create-request document, so recovery replays the exact create path.
type sessionMeta struct {
	ID        string        `json:"id"`
	Config    SessionConfig `json:"config"`
	Name      string        `json:"name"`
	Mode      string        `json:"mode"`
	Scheme    string        `json:"scheme"`
	Seed      uint64        `json:"seed"`
	Created   string        `json:"created"` // RFC 3339 UTC
	Footprint uint64        `json:"footprint_bytes"`
	// Pulled is the bound-generator resume cursor: how many accesses the
	// session had drawn from its deterministic stream when the checkpoint
	// was cut. A restored session recreates the stream and discards this
	// many before continuing.
	Pulled   uint64 `json:"pulled"`
	Accesses uint64 `json:"accesses"`
}

// writeSessionSnapshot encodes the complete checkpoint. Must run on the
// session's shard goroutine (it reads simulator state).
func writeSessionSnapshot(sess *session, w io.Writer) error {
	sw := snapshot.NewWriter(w, sessionKind, snapshot.HashString(sess.cfgHash))
	meta := sessionMeta{
		ID:        sess.id,
		Config:    sess.sc,
		Name:      sess.name,
		Mode:      sess.mode,
		Scheme:    sess.scheme,
		Seed:      sess.seed,
		Created:   sess.created.UTC().Format(time.RFC3339),
		Footprint: sess.footprint,
		Pulled:    sess.pulled,
		Accesses:  sess.lt.Accesses(),
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	sw.Section("meta", mb)
	var lb bytes.Buffer
	if err := sess.lt.Save(&lb); err != nil {
		return err
	}
	sw.Section("lifetime", lb.Bytes())
	return sw.Close()
}

// checkpointPath is the durable file for one session.
func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.cfg.SnapshotDir, id+".snap")
}

// removeCheckpoint deletes a session's durable checkpoint (eviction,
// deletion). Best-effort: a missing file is the common case.
func (s *Server) removeCheckpoint(sess *session) {
	if s.cfg.SnapshotDir == "" {
		return
	}
	_ = os.Remove(s.checkpointPath(sess.id))
	_ = os.Remove(s.checkpointPath(sess.id) + ".tmp")
}

// encodeCheckpoint fills sess.ckptBuf with the session's checkpoint on
// its shard goroutine and returns the access count it captured. The
// caller must hold the replay lease (the buffer and simulator are
// otherwise unguarded).
func (s *Server) encodeCheckpoint(ctx context.Context, sess *session) (accesses uint64, err error) {
	var serr error
	err = s.pool.do(ctx, sess.shard, func() {
		sess.ckptBuf.Reset()
		serr = writeSessionSnapshot(sess, &sess.ckptBuf)
		accesses = sess.lt.Accesses()
	})
	if err == nil {
		err = serr
	}
	return accesses, err
}

// checkpointSession cuts one durable checkpoint: take the replay lease,
// encode on the shard, write tmp+rename so a crash never leaves a
// half-written file where a valid one stood. Returns errCheckpointBusy
// (not a failure) when a replay holds the session.
func (s *Server) checkpointSession(ctx context.Context, sess *session) error {
	ok, gone := sess.acquire()
	if !ok {
		if gone {
			return nil
		}
		return errCheckpointBusy
	}
	defer sess.release()
	start := time.Now()
	accesses, err := s.encodeCheckpoint(ctx, sess)
	if err == nil {
		err = snapshot.WriteFileDurable(s.checkpointPath(sess.id), sess.ckptBuf.Bytes())
	}
	if err != nil {
		s.mSnapshotFailWrite.Inc()
		sess.lg.Warn("checkpoint failed", "error", err)
		return err
	}
	size := uint64(sess.ckptBuf.Len())
	s.mSnapshots.Inc()
	s.mSnapshotDurationUS.Observe(uint64(time.Since(start).Microseconds()))
	s.mSnapshotBytes.Observe(size)
	sess.lastCkptNS.Store(s.cfg.Now().UnixNano())
	sess.lastCkptBytes.Store(size)
	sess.lastCkptAccesses.Store(accesses)
	return nil
}

// checkpointer periodically checkpoints every session that advanced since
// its last checkpoint.
func (s *Server) checkpointer() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.checkpointDirty(context.Background())
		case <-s.ckptStop:
			return
		}
	}
}

// checkpointDirty checkpoints sessions whose access count moved since the
// last checkpoint (or that never had one), returning how many were cut.
// Busy sessions are skipped; the next tick retries.
func (s *Server) checkpointDirty(ctx context.Context) int {
	n := 0
	for _, sess := range s.liveSessions() {
		if sess.lastCkptNS.Load() != 0 &&
			sess.accessesDone.Load() == sess.lastCkptAccesses.Load() {
			continue
		}
		if s.checkpointSession(ctx, sess) == nil {
			n++
		}
	}
	return n
}

// CheckpointAll cuts a final checkpoint of every live session — the drain
// path's last act before the process exits, so a clean shutdown is
// indistinguishable from a crash with perfectly fresh checkpoints. No-op
// without SnapshotDir. Returns how many checkpoints were written.
func (s *Server) CheckpointAll(ctx context.Context) int {
	if s.cfg.SnapshotDir == "" {
		return 0
	}
	n := 0
	for _, sess := range s.liveSessions() {
		if err := s.checkpointSession(ctx, sess); err != nil {
			sess.lg.Warn("final checkpoint skipped", "error", err)
			continue
		}
		n++
	}
	return n
}

func (s *Server) liveSessions() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// --- restore ---

// decodeSessionMeta reads just the header and "meta" section — the part a
// truncated-tail checkpoint can still yield, enabling the fresh-session
// fallback.
func decodeSessionMeta(data []byte) (sessionMeta, uint64, error) {
	sr, err := snapshot.NewReader(bytes.NewReader(data), sessionKind)
	if err != nil {
		return sessionMeta{}, 0, err
	}
	payload, err := sr.Section("meta")
	if err != nil {
		return sessionMeta{}, 0, err
	}
	var meta sessionMeta
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&meta); err != nil {
		return sessionMeta{}, 0, fmt.Errorf("%w: meta: %v", snapshot.ErrSnapshotCorrupt, err)
	}
	return meta, sr.ConfigHash(), nil
}

// buildSession constructs a session object from a create-request config —
// the shared tail of handleCreate, restore, and the fresh-session
// fallback. It does not register the session.
func (s *Server) buildSession(id string, sc SessionConfig, created time.Time) (*session, error) {
	res, err := sc.resolve()
	if err != nil {
		return nil, err
	}
	lt, err := sim.NewLifetimeChecked(res.name, res.footprint, res.ltCfg)
	if err != nil {
		return nil, err
	}
	sess := &session{
		id:        id,
		shard:     s.pool.shardFor(id),
		name:      res.name,
		mode:      defaultStr(sc.Mode, "rmcc"),
		scheme:    defaultStr(sc.Scheme, "morphable"),
		seed:      res.seed,
		created:   created,
		cfgHash:   obs.HashConfig(sc),
		sc:        sc,
		footprint: res.footprint,
		lt:        lt,
		w:         res.w,
		sampler:   obs.NewLogSampler(s.cfg.LogSampleEvery),
		chunkHist: obs.NewHistogram(obs.Pow2Buckets(1, 24)),
	}
	sess.lg = s.log.With("session", id, "shard", sess.shard,
		"workload", res.name, "seed", res.seed)
	return sess, nil
}

// restoreSession rebuilds a full session from checkpoint bytes: meta →
// identical create path → nested lifetime state → resume cursor. Errors
// are the typed snapshot taxonomy (config problems inside meta surface as
// ErrSnapshotConfigMismatch).
func (s *Server) restoreSession(data []byte) (*session, error) {
	sr, err := snapshot.NewReader(bytes.NewReader(data), sessionKind)
	if err != nil {
		return nil, err
	}
	payload, err := sr.Section("meta")
	if err != nil {
		return nil, err
	}
	var meta sessionMeta
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&meta); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", snapshot.ErrSnapshotCorrupt, err)
	}
	if got, want := sr.ConfigHash(), snapshot.HashString(obs.HashConfig(meta.Config)); got != want {
		return nil, fmt.Errorf("%w: session config hash %016x, want %016x",
			snapshot.ErrSnapshotConfigMismatch, got, want)
	}
	// The restored ID becomes a checkpoint file name on this daemon; only
	// the strict daemon shape may come back from a blob.
	if !validSessionID(meta.ID) {
		return nil, fmt.Errorf("%w: invalid session id %q",
			snapshot.ErrSnapshotCorrupt, meta.ID)
	}
	created, err := time.Parse(time.RFC3339, meta.Created)
	if err != nil {
		created = s.cfg.Now()
	}
	sess, err := s.buildSession(meta.ID, meta.Config, created)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrSnapshotConfigMismatch, err)
	}
	ltPayload, err := sr.Section("lifetime")
	if err != nil {
		return nil, err
	}
	if err := sess.lt.Load(bytes.NewReader(ltPayload)); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	// Both cursors start at the checkpointed value: pulled is what the next
	// checkpoint persists (it must never rewind to zero just because the
	// lazily created stream has not been rebuilt yet), skipPulled is how far
	// the rebuilt stream fast-forwards before serving new accesses.
	sess.pulled = meta.Pulled
	sess.skipPulled = meta.Pulled
	sess.accessesDone.Store(sess.lt.Accesses())
	// Nothing else owns the simulator yet; seed the listing mirrors so a
	// recovered session reports live rates before its first chunk.
	sess.storeRates(sess.lt.MC().Stats())
	return sess, nil
}

// register inserts a restored/recovered session, enforcing ID uniqueness
// and the session cap.
func (s *Server) register(sess *session, now time.Time) error {
	sess.touch(now)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.sessions[sess.id]; exists {
		return fmt.Errorf("session %q already exists", sess.id)
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return fmt.Errorf("session limit reached (%d)", s.cfg.MaxSessions)
	}
	s.sessions[sess.id] = sess
	return nil
}

// recoverSessions scans SnapshotDir at startup and rehydrates every valid
// checkpoint. Files whose simulator state is unreadable but whose meta
// section survives fall back to a fresh session under the same ID (the
// client re-replays); files with no usable meta are skipped. Either way
// the daemon comes up — a corrupt checkpoint never blocks startup.
func (s *Server) recoverSessions() {
	if err := os.MkdirAll(s.cfg.SnapshotDir, 0o755); err != nil {
		s.log.Error("snapshot dir unavailable", "dir", s.cfg.SnapshotDir, "error", err)
		return
	}
	paths, _ := filepath.Glob(filepath.Join(s.cfg.SnapshotDir, "*.snap"))
	sort.Strings(paths)
	var maxID uint64
	for _, path := range paths {
		data, err := os.ReadFile(path)
		var sess *session
		if err == nil {
			sess, err = s.restoreSession(data)
		}
		if err != nil {
			s.mSnapshotFailLoad.Inc()
			meta, _, merr := decodeSessionMeta(data)
			if merr != nil {
				s.log.Warn("checkpoint unreadable, skipping",
					"file", filepath.Base(path), "error", err)
				continue
			}
			// The state is gone but the recipe survives: restart the
			// session from access zero under its original ID and config.
			sess, merr = s.buildSession(meta.ID, meta.Config, s.cfg.Now())
			if merr != nil {
				s.log.Warn("checkpoint fallback failed, skipping",
					"file", filepath.Base(path), "error", merr)
				continue
			}
			s.log.Warn("checkpoint state unreadable, recovered fresh session",
				"session", meta.ID, "error", err)
		}
		if rerr := s.register(sess, s.cfg.Now()); rerr != nil {
			s.log.Warn("recovered session not registered",
				"session", sess.id, "error", rerr)
			continue
		}
		if n, perr := parseSessionID(sess.id); perr == nil && n > maxID {
			maxID = n
		}
		s.mSessionsRecovered.Inc()
		sess.lg.Info("session recovered",
			"accesses", sess.accessesDone.Load(), "file", filepath.Base(path))
	}
	// New sessions must never collide with recovered IDs.
	if maxID > s.nextID.Load() {
		s.nextID.Store(maxID)
	}
}

// parseSessionID extracts the numeric suffix of a daemon-issued
// "s-%08x" session ID.
func parseSessionID(id string) (uint64, error) {
	hexPart, ok := strings.CutPrefix(id, "s-")
	if !ok {
		return 0, fmt.Errorf("not a daemon session id: %q", id)
	}
	return strconv.ParseUint(hexPart, 16, 64)
}

// --- handlers ---

// handleCheckpoint (POST /v1/sessions/{id}/snapshot) cuts a state
// checkpoint on demand. With ?download=1 the encoded checkpoint streams
// back as the response body (feedable to POST /v1/sessions/restore on any
// daemon); otherwise it is written to SnapshotDir and the refreshed
// session info returned.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	if r.URL.Query().Get("download") != "" {
		ok, gone := sess.acquire()
		if !ok {
			code, msg := http.StatusConflict, "session busy (replay in flight)"
			if gone {
				code, msg = http.StatusNotFound, "session evicted"
			}
			writeError(w, code, msg)
			return
		}
		defer sess.release()
		start := time.Now()
		if _, err := s.encodeCheckpoint(r.Context(), sess); err != nil {
			s.mSnapshotFailWrite.Inc()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.mSnapshots.Inc()
		s.mSnapshotDurationUS.Observe(uint64(time.Since(start).Microseconds()))
		s.mSnapshotBytes.Observe(uint64(sess.ckptBuf.Len()))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(sess.ckptBuf.Len()))
		_, _ = w.Write(sess.ckptBuf.Bytes())
		sess.touch(s.cfg.Now())
		return
	}
	if s.cfg.SnapshotDir == "" {
		writeError(w, http.StatusConflict,
			"daemon has no -snapshot-dir; use ?download=1 for an inline checkpoint")
		return
	}
	if err := s.checkpointSession(r.Context(), sess); err != nil {
		if errors.Is(err, errCheckpointBusy) {
			writeError(w, http.StatusConflict, "session busy (replay in flight)")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sess.touch(s.cfg.Now())
	writeJSON(w, http.StatusOK, sess.info(sess.accessesDone.Load(), s.cfg.Now()))
}

// handleRestore (POST /v1/sessions/restore) creates a session from a
// checkpoint blob — the restore half of ?download=1 and the manual
// recovery path. Typed snapshot errors map to 422; an ID collision with a
// live session is 409.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxSnapshotBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	sess, err := s.restoreSession(data)
	if err != nil {
		s.mSnapshotFailLoad.Inc()
		if errors.Is(err, snapshot.ErrSnapshotCorrupt) ||
			errors.Is(err, snapshot.ErrSnapshotVersion) ||
			errors.Is(err, snapshot.ErrSnapshotConfigMismatch) {
			writeError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	now := s.cfg.Now()
	if err := s.register(sess, now); err != nil {
		code := http.StatusConflict
		if strings.Contains(err.Error(), "limit") {
			code = http.StatusTooManyRequests
		}
		writeError(w, code, err.Error())
		return
	}
	// Restored IDs can come from another daemon; keep the ID counter ahead.
	s.advanceNextID(sess.id)
	s.mSessionsCreated.Inc()
	sess.lg.Info("session restored", "accesses", sess.accessesDone.Load())
	if s.cfg.SnapshotDir != "" {
		if err := s.checkpointSession(r.Context(), sess); err != nil {
			sess.lg.Warn("initial checkpoint failed", "error", err)
		}
	}
	writeJSON(w, http.StatusCreated, sess.info(sess.accessesDone.Load(), now))
}
