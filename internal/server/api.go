// Package server implements rmccd, the simulation-as-a-service daemon: a
// dependency-free (net/http only) HTTP surface over the lifetime
// simulator. Clients create sessions — each one a fully configured secure
// memory controller plus cache hierarchy — and replay access streams
// against them, either NDJSON uploads or the built-in workload
// generators. Sessions are sharded across a fixed pool of single-owner
// worker goroutines: engines are not thread-safe, so every touch of a
// session's simulator state is serialized through its shard's bounded
// queue (which doubles as backpressure on streaming uploads).
//
// See docs/SERVICE.md for the API reference.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/workload"
)

// SessionConfig is the POST /v1/sessions request body. Either bind a
// built-in workload generator (workload + size) or declare the virtual
// footprint of the NDJSON streams you will upload (footprint_bytes) so
// the engine's protected-memory size can be derived the same way the
// direct drivers derive it.
type SessionConfig struct {
	// Mode is the protection level: nonsecure|baseline|rmcc (default rmcc).
	Mode string `json:"mode,omitempty"`
	// Scheme is the counter organization: sgx|sc64|morphable (default
	// morphable).
	Scheme string `json:"scheme,omitempty"`
	// Seed drives counter initialization, page mapping, and the bound
	// workload generator (default 1).
	Seed uint64 `json:"seed,omitempty"`

	// Workload optionally binds a built-in generator (see rmccsim -list);
	// replays may then use the workload shortcut instead of uploading
	// NDJSON. The session footprint is the workload's.
	Workload string `json:"workload,omitempty"`
	// Size scales the bound workload: test|small|full (default test).
	Size string `json:"size,omitempty"`

	// FootprintBytes declares the virtual footprint for NDJSON-only
	// sessions (required when no workload is bound).
	FootprintBytes uint64 `json:"footprint_bytes,omitempty"`

	// Label names NDJSON-only sessions in stats and listings.
	Label string `json:"label,omitempty"`

	// Engine, when set, overrides the entire controller configuration
	// (JSON keys are the engine.Config Go field names). MemBytes is still
	// derived from the session footprint. When unset, the paper's Table-I
	// defaults for mode/scheme apply with InitSeed = Seed.
	Engine *engine.Config `json:"engine,omitempty"`
}

// DecodeSessionConfig parses a strict session-config document: unknown
// fields and trailing garbage are errors, never panics. The caller caps
// the input size.
func DecodeSessionConfig(data []byte) (SessionConfig, error) {
	var sc SessionConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return SessionConfig{}, fmt.Errorf("session config: %w", err)
	}
	if dec.More() {
		return SessionConfig{}, fmt.Errorf("session config: trailing data after document")
	}
	return sc, nil
}

// resolved is a SessionConfig elaborated into runnable pieces.
type resolved struct {
	name      string // stream name (workload or label)
	footprint uint64
	seed      uint64
	mode      engine.Mode
	scheme    counter.Scheme
	w         workload.Workload // nil for NDJSON-only sessions
	ltCfg     sim.LifetimeConfig
}

// resolve elaborates the config: parse enums, bind the workload, and
// assemble the same lifetime configuration a direct run would use, so the
// service layer adds no behavioral drift.
func (sc SessionConfig) resolve() (resolved, error) {
	r := resolved{seed: sc.Seed}
	if r.seed == 0 {
		r.seed = 1
	}
	var err error
	if r.mode, err = ParseMode(defaultStr(sc.Mode, "rmcc")); err != nil {
		return r, err
	}
	if r.scheme, err = ParseScheme(defaultStr(sc.Scheme, "morphable")); err != nil {
		return r, err
	}
	size, err := ParseSize(defaultStr(sc.Size, "test"))
	if err != nil {
		return r, err
	}
	if sc.Workload != "" {
		w, ok := workload.ByName(size, r.seed, sc.Workload)
		if !ok {
			return r, fmt.Errorf("unknown workload %q", sc.Workload)
		}
		r.w = w
		r.name = w.Name()
		r.footprint = w.FootprintBytes()
	} else {
		if sc.FootprintBytes == 0 {
			return r, fmt.Errorf("either workload or footprint_bytes is required")
		}
		r.name = defaultStr(sc.Label, "ndjson")
		r.footprint = sc.FootprintBytes
	}
	var engCfg engine.Config
	if sc.Engine != nil {
		engCfg = *sc.Engine
	} else {
		engCfg = engine.DefaultConfig(r.mode, r.scheme, 0)
		engCfg.InitSeed = r.seed
	}
	r.ltCfg = sim.DefaultLifetimeConfig(engCfg)
	if sc.Engine != nil {
		// DefaultLifetimeConfig pins the Pintool per-thread counter cache;
		// an explicit Engine override owns the whole controller config.
		r.ltCfg.Engine = engCfg
	}
	r.ltCfg.Seed = r.seed
	return r, nil
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// ParseMode maps the wire mode names to engine modes.
func ParseMode(s string) (engine.Mode, error) {
	switch s {
	case "nonsecure":
		return engine.NonSecure, nil
	case "baseline":
		return engine.Baseline, nil
	case "rmcc":
		return engine.RMCC, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

// ParseScheme maps the wire scheme names to counter schemes.
func ParseScheme(s string) (counter.Scheme, error) {
	switch s {
	case "sgx":
		return counter.SGX, nil
	case "sc64":
		return counter.SC64, nil
	case "morphable":
		return counter.Morphable, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

// ParseSize maps the wire size names to workload scales.
func ParseSize(s string) (workload.Size, error) {
	switch s {
	case "test":
		return workload.SizeTest, nil
	case "small":
		return workload.SizeSmall, nil
	case "full":
		return workload.SizeFull, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

// AccessRecord is one NDJSON replay line: a single read or write the
// simulated CPU issues, mirroring workload.Access.
type AccessRecord struct {
	Addr uint64 `json:"addr"`
	// Write marks stores; omitted/false = load.
	Write bool `json:"write,omitempty"`
	// Gap is the count of non-memory instructions since the previous
	// access (0-255).
	Gap uint8 `json:"gap,omitempty"`
}

// SessionInfo describes one live session (create response, listings).
// The rate and latency fields are live lock-free mirrors refreshed after
// each applied replay chunk — the data rmcc-top renders without touching
// the engine or taking the replay lease.
type SessionInfo struct {
	ID             string `json:"id"`
	Shard          int    `json:"shard"`
	Name           string `json:"name"`
	Workload       string `json:"workload,omitempty"`
	Mode           string `json:"mode"`
	Scheme         string `json:"scheme"`
	Seed           uint64 `json:"seed"`
	FootprintBytes uint64 `json:"footprint_bytes"`
	Created        string `json:"created"` // RFC 3339 UTC
	Accesses       uint64 `json:"accesses"`
	Replaying      bool   `json:"replaying"`
	ConfigHash     string `json:"config_hash"`

	// Node is the cluster node serving the session. Empty in a single
	// daemon's own listing; rmcc-router fills it when merging per-node
	// listings into the cluster-wide view.
	Node string `json:"node,omitempty"`

	// Live engine rates as of the last applied chunk (0 until then).
	CtrMissRate         float64 `json:"ctr_miss_rate"`
	MemoHitRateOnMisses float64 `json:"memo_hit_rate_on_misses"`
	AcceleratedRate     float64 `json:"accelerated_rate"`
	// Per-chunk engine-step latency quantiles in microseconds, estimated
	// from the session's bucketed history (0 until a chunk applies).
	ReplayP50us float64 `json:"replay_p50_us"`
	ReplayP99us float64 `json:"replay_p99_us"`

	// Durable-checkpoint view: when the last on-disk checkpoint was cut,
	// how stale it is, and its encoded size. Empty/zero when the daemon
	// runs without -snapshot-dir or the session has never checkpointed.
	LastCheckpoint    string  `json:"last_checkpoint,omitempty"`
	CheckpointAgeSecs float64 `json:"checkpoint_age_seconds,omitempty"`
	CheckpointBytes   uint64  `json:"checkpoint_bytes,omitempty"`
}

// ReplayStats is the rolled-up result of a replay (and the stats half of
// a snapshot): the session's cumulative lifetime-driver view.
type ReplayStats struct {
	SessionID     string `json:"session_id"`
	Name          string `json:"name"`
	Seed          uint64 `json:"seed"`
	Accesses      uint64 `json:"accesses"`
	LLCMissReads  uint64 `json:"llc_miss_reads"`
	LLCMissWrites uint64 `json:"llc_miss_writes"`
	MaxCounter    uint64 `json:"max_counter"`

	CtrMissRate         float64 `json:"ctr_miss_rate"`
	MemoHitRateOnMisses float64 `json:"memo_hit_rate_on_misses"`
	MemoHitRateAll      float64 `json:"memo_hit_rate_all"`
	AcceleratedRate     float64 `json:"accelerated_rate"`
	TotalTrafficBlocks  uint64  `json:"total_traffic_blocks"`

	// Engine is the full controller counter block (JSON keys are the
	// engine.Stats Go field names) for exact cross-checking against
	// direct runs.
	Engine engine.Stats `json:"engine"`

	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// statsFromResult rolls a lifetime result into the wire form.
func statsFromResult(id string, seed uint64, res sim.LifetimeResult) ReplayStats {
	return ReplayStats{
		SessionID:           id,
		Name:                res.Workload,
		Seed:                seed,
		Accesses:            res.Accesses,
		LLCMissReads:        res.LLCMissReads,
		LLCMissWrites:       res.LLCMissWrites,
		MaxCounter:          res.MaxCounter,
		CtrMissRate:         res.Engine.CtrMissRate(),
		MemoHitRateOnMisses: res.Engine.MemoHitRateOnMisses(),
		MemoHitRateAll:      res.Engine.MemoHitRateAll(),
		AcceleratedRate:     res.Engine.AcceleratedRate(),
		TotalTrafficBlocks:  res.Engine.TotalTraffic(),
		Engine:              res.Engine,
	}
}

// ReplayFrame is one NDJSON response frame of a progress-streaming
// replay: progress frames while the stream applies, then exactly one
// result or error frame.
type ReplayFrame struct {
	Type     string       `json:"type"` // progress | result | error
	Accesses uint64       `json:"accesses,omitempty"`
	Stats    *ReplayStats `json:"stats,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// ErrorBody is the JSON error envelope for non-2xx responses.
type ErrorBody struct {
	Error string `json:"error"`
}
