package server_test

import (
	"context"
	"testing"

	"rmcc/internal/server"
)

// TestAdversarySessions: the sidechannel adversaries resolve through the
// service path like any paper benchmark — create an rmccd session by name,
// replay a slice of the access stream, and get engine activity back. This
// is the workload-shortcut satellite: rmcc-loadgen and rmccd share this
// exact resolution path (SessionConfig.Workload → workload.ByName).
func TestAdversarySessions(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	for _, name := range []string{"ppSweep", "memjam4k"} {
		info, err := c.CreateSession(ctx, server.SessionConfig{
			Mode:     "rmcc",
			Scheme:   "morphable",
			Seed:     7,
			Workload: name,
			Size:     "test",
		})
		if err != nil {
			t.Fatalf("%s: create: %v", name, err)
		}
		if info.Workload != name {
			t.Fatalf("%s: session bound %q", name, info.Workload)
		}
		stats, err := c.ReplayWorkload(ctx, info.ID, 20_000, 0, nil)
		if err != nil {
			t.Fatalf("%s: replay: %v", name, err)
		}
		if stats.Accesses != 20_000 {
			t.Fatalf("%s: accesses = %d, want 20000", name, stats.Accesses)
		}
		if stats.Engine.Reads == 0 {
			t.Fatalf("%s: no engine reads recorded", name)
		}
		if err := c.DeleteSession(ctx, info.ID); err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
	}
}
