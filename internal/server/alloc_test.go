package server

import (
	"context"
	"io"
	"testing"

	"rmcc/internal/obs"
	"rmcc/internal/sim"
	"rmcc/internal/workload"
)

// newAllocTestSession builds a server plus a shard-pinned session exactly
// the way handleCreate does, bypassing HTTP.
func newAllocTestSession(t *testing.T, cfg Config) (*Server, *session) {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	sc := SessionConfig{Mode: "rmcc", Scheme: "morphable", Seed: 1, Workload: "canneal", Size: "test"}
	res, err := sc.resolve()
	if err != nil {
		t.Fatal(err)
	}
	lt, err := sim.NewLifetimeChecked(res.name, res.footprint, res.ltCfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{
		id: "s-alloc", shard: 0, name: res.name, seed: res.seed,
		lt: lt, w: res.w,
		sampler:   obs.NewLogSampler(s.cfg.LogSampleEvery),
		chunkHist: obs.NewHistogram(obs.Pow2Buckets(1, 24)),
	}
	sess.lg = s.log.With("session", sess.id, "shard", 0, "workload", res.name, "seed", res.seed)
	return s, sess
}

// TestReplayChunkInstrumentationAllocFree is the benchmark guard for the
// tentpole's zero-overhead constraint: with logging at error level and
// spans recording (they always record), submitting a replay chunk must
// allocate no more than the pre-instrumentation shard round-trip — one
// closure escape plus one completion channel plus the escaping result
// variables. The chunk size is 0 so the engine itself contributes nothing
// and the measurement isolates the service-layer path.
func TestReplayChunkInstrumentationAllocFree(t *testing.T) {
	s, sess := newAllocTestSession(t, Config{
		Shards: 1,
		Logger: obs.NewLogger(io.Discard, obs.LogError, obs.LogText),
	})
	ctx := context.Background()
	// A full distributed trace context attached to the chunk: the
	// tentpole's acceptance bar is that tracing adds zero allocations on
	// this path, sampled or not.
	sampled := obs.TraceContext{TraceHi: 0xaaaa, TraceLo: 0xbbbb, SpanID: 1, Sampled: true}
	unsampled := obs.TraceContext{TraceHi: 0xcccc, TraceLo: 0xdddd, SpanID: 1}

	// Warm up: first chunk lazily creates the access stream.
	if _, _, _, err := s.applyWorkloadChunk(ctx, sess, 0, sampled); err != nil {
		t.Fatal(err)
	}

	instrumented := testing.AllocsPerRun(200, func() {
		if _, _, _, err := s.applyWorkloadChunk(ctx, sess, 0, sampled); err != nil {
			t.Fatal(err)
		}
	})
	untraced := testing.AllocsPerRun(200, func() {
		if _, _, _, err := s.applyWorkloadChunk(ctx, sess, 0, unsampled); err != nil {
			t.Fatal(err)
		}
	})
	if untraced != instrumented {
		t.Errorf("unsampled trace context changes chunk allocations: %.1f vs %.1f/op", untraced, instrumented)
	}

	// Control: the pre-instrumentation chunk shape — same closure-captured
	// result variables, untimed pool round-trip, no spans, no histograms.
	control := testing.AllocsPerRun(200, func() {
		var want, got, total uint64
		var exhausted bool
		err := s.pool.do(ctx, sess.shard, func() {
			if sess.stream == nil {
				w, seed := sess.w, sess.seed
				sess.stream = sim.NewAccessStream(func(sink workload.Sink) { w.Run(seed, sink) })
			}
			for got < want {
				a, ok := sess.stream.Next()
				if !ok {
					exhausted = true
					break
				}
				sess.lt.Step(a)
				got++
			}
			total = sess.lt.Accesses()
		})
		if err != nil || exhausted || got != total {
			t.Fatal("control path misbehaved")
		}
	})

	if instrumented > control {
		t.Errorf("instrumented chunk path allocates %.1f/op, control %.1f/op — observability added allocations",
			instrumented, control)
	}
	t.Logf("allocs/op: instrumented=%.1f control=%.1f", instrumented, control)

	// A durable checkpoint between chunks must not perturb the chunk path:
	// the encode buffer is session-owned and reused, the resume-cursor
	// bookkeeping is two shard-owned uint64s, and nothing the checkpoint
	// allocates leaks into subsequent chunk submissions.
	s.cfg.SnapshotDir = t.TempDir()
	if err := s.checkpointSession(ctx, sess); err != nil {
		t.Fatal(err)
	}
	afterCkpt := testing.AllocsPerRun(200, func() {
		if _, _, _, err := s.applyWorkloadChunk(ctx, sess, 0, sampled); err != nil {
			t.Fatal(err)
		}
	})
	if afterCkpt > control {
		t.Errorf("chunk path allocates %.1f/op after a checkpoint, control %.1f/op",
			afterCkpt, control)
	}
	t.Logf("allocs/op after checkpoint: %.1f", afterCkpt)
}

// TestRecordChunkAllocFree pins the span/histogram/sampled-log recording
// itself at zero allocations when the logger filters debug lines.
func TestRecordChunkAllocFree(t *testing.T) {
	s, sess := newAllocTestSession(t, Config{
		Shards: 1,
		Logger: obs.NewLogger(io.Discard, obs.LogError, obs.LogText),
	})
	jt := jobTimes{startNS: 1_000, endNS: 51_000}
	tc := obs.TraceContext{TraceHi: 1, TraceLo: 2, SpanID: 7, Sampled: true}
	allocs := testing.AllocsPerRun(500, func() {
		s.recordChunk(sess, tc, 0, jt, 4096)
	})
	if allocs != 0 {
		t.Errorf("recordChunk allocates %.1f/op with observability disabled, want 0", allocs)
	}

	// With the flight recorder mirroring every completed span, the stage
	// recording must stay allocation-free — the crash ring is part of the
	// steady-state hot path whenever -flight-file is set.
	s.spans.AttachFlight(obs.NewFlightRecorder(1<<20, "alloc-test"))
	allocs = testing.AllocsPerRun(500, func() {
		s.recordChunk(sess, tc, 0, jt, 4096)
	})
	if allocs != 0 {
		t.Errorf("recordChunk allocates %.1f/op with the flight recorder attached, want 0", allocs)
	}
}
