package server_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rmcc/internal/obs"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/server"
	"rmcc/internal/server/client"
	"rmcc/internal/sim"
	"rmcc/internal/workload"
)

// newTestServer boots a daemon on an httptest listener.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(cfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, client.New(hs.URL)
}

func testSession() server.SessionConfig {
	return server.SessionConfig{
		Mode:     "rmcc",
		Scheme:   "morphable",
		Seed:     1,
		Workload: "canneal",
		Size:     "test",
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if info.ID == "" || info.Workload != "canneal" || info.Mode != "rmcc" {
		t.Fatalf("bad session info: %+v", info)
	}

	stats, err := c.ReplayWorkload(ctx, info.ID, 5000, 0, nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.Accesses != 5000 {
		t.Fatalf("accesses = %d, want 5000", stats.Accesses)
	}
	if stats.Engine.Reads == 0 {
		t.Fatal("no engine reads recorded")
	}

	// A second replay continues the same stream: cumulative accesses.
	stats, err = c.ReplayWorkload(ctx, info.ID, 5000, 0, nil)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if stats.Accesses != 10000 {
		t.Fatalf("cumulative accesses = %d, want 10000", stats.Accesses)
	}

	snap, err := c.Snapshot(ctx, info.ID)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if snap.Stats.Accesses != 10000 {
		t.Fatalf("snapshot accesses = %d, want 10000", snap.Stats.Accesses)
	}
	if snap.Manifest.Tool != "rmccd" || snap.Manifest.ConfigHash == "" {
		t.Fatalf("bad manifest: %+v", snap.Manifest)
	}

	list, err := c.ListSessions(ctx)
	if err != nil || len(list) != 1 {
		t.Fatalf("list = %v, %v", list, err)
	}

	if err := c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.Snapshot(ctx, info.ID); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("snapshot after delete: %v, want 404", err)
	}
}

// TestServiceMatchesDirectRun is the no-drift acceptance criterion: a
// replay through the daemon produces stats bit-identical to RunLifetime
// over the same seed and workload — via the server-side generator AND via
// NDJSON streaming of the same accesses. The daemon runs with the full
// observability stack enabled (debug-level JSON logging plus the
// always-on span recording), proving instrumentation cannot perturb
// simulation results.
func TestServiceMatchesDirectRun(t *testing.T) {
	const n = 20_000
	_, c := newTestServer(t, server.Config{
		Logger: obs.NewLogger(io.Discard, obs.LogDebug, obs.LogJSON),
	})
	ctx := context.Background()

	w, ok := workload.ByName(workload.SizeTest, 1, "canneal")
	if !ok {
		t.Fatal("canneal unavailable")
	}
	engCfg := engine.DefaultConfig(engine.RMCC, counter.Morphable, 0)
	engCfg.InitSeed = 1
	cfg := sim.DefaultLifetimeConfig(engCfg)
	cfg.MaxAccesses = n
	cfg.Seed = 1
	direct := sim.RunLifetime(w, cfg)

	// Server-side generator path.
	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	viaWorkload, err := c.ReplayWorkload(ctx, info.ID, n, 0, nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	assertSameRun(t, "workload shortcut", direct, viaWorkload)

	// NDJSON streaming path: capture the same stream and upload it.
	var accs []workload.Access
	w2, _ := workload.ByName(workload.SizeTest, 1, "canneal")
	w2.Run(1, func(a workload.Access) bool {
		accs = append(accs, a)
		return len(accs) < n
	})
	info2, err := c.CreateSession(ctx, server.SessionConfig{
		Mode: "rmcc", Scheme: "morphable", Seed: 1,
		FootprintBytes: w.FootprintBytes(), Label: "canneal",
	})
	if err != nil {
		t.Fatalf("create ndjson session: %v", err)
	}
	viaNDJSON, err := c.ReplayAccesses(ctx, info2.ID, accs)
	if err != nil {
		t.Fatalf("ndjson replay: %v", err)
	}
	assertSameRun(t, "NDJSON stream", direct, viaNDJSON)
}

func assertSameRun(t *testing.T, label string, direct sim.LifetimeResult, got server.ReplayStats) {
	t.Helper()
	if got.Accesses != direct.Accesses {
		t.Fatalf("%s: accesses = %d, direct %d", label, got.Accesses, direct.Accesses)
	}
	if got.LLCMissReads != direct.LLCMissReads || got.LLCMissWrites != direct.LLCMissWrites {
		t.Fatalf("%s: LLC misses %d/%d, direct %d/%d", label,
			got.LLCMissReads, got.LLCMissWrites, direct.LLCMissReads, direct.LLCMissWrites)
	}
	if !reflect.DeepEqual(got.Engine, direct.Engine) {
		t.Fatalf("%s: engine stats diverge from direct run\nservice: %+v\ndirect:  %+v",
			label, got.Engine, direct.Engine)
	}
	if got.MaxCounter != direct.MaxCounter {
		t.Fatalf("%s: max counter %d, direct %d", label, got.MaxCounter, direct.MaxCounter)
	}
}

func TestProgressFrames(t *testing.T) {
	_, c := newTestServer(t, server.Config{ChunkAccesses: 1000})
	ctx := context.Background()
	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	var frames []uint64
	stats, err := c.ReplayWorkload(ctx, info.ID, 10_000, 2_000, func(n uint64) {
		frames = append(frames, n)
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.Accesses != 10_000 {
		t.Fatalf("accesses = %d", stats.Accesses)
	}
	if len(frames) < 3 {
		t.Fatalf("got %d progress frames (%v), want several", len(frames), frames)
	}
	for i := 1; i < len(frames); i++ {
		if frames[i] <= frames[i-1] {
			t.Fatalf("progress not monotonic: %v", frames)
		}
	}
}

func TestErrorStatuses(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	// Unknown workload → 400.
	_, err := c.CreateSession(ctx, server.SessionConfig{Workload: "nope"})
	if !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("unknown workload: %v, want 400", err)
	}
	// No workload and no footprint → 400.
	_, err = c.CreateSession(ctx, server.SessionConfig{Mode: "rmcc"})
	if !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("missing footprint: %v, want 400", err)
	}
	// Invalid engine config (bad counter cache) → 400 via Config.Validate.
	bad := engine.DefaultConfig(engine.RMCC, counter.Morphable, 0)
	bad.CounterCacheBytes = -5
	_, err = c.CreateSession(ctx, server.SessionConfig{
		FootprintBytes: 1 << 20, Engine: &bad,
	})
	if !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("invalid engine config: %v, want 400", err)
	}
	// Unknown session → 404.
	_, err = c.ReplayWorkload(ctx, "s-missing", 10, 0, nil)
	if !isStatus(err, http.StatusNotFound) {
		t.Fatalf("missing session: %v, want 404", err)
	}
	// Replay on a session with no bound workload → 400.
	info, err := c.CreateSession(ctx, server.SessionConfig{FootprintBytes: 1 << 20})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	_, err = c.ReplayWorkload(ctx, info.ID, 10, 0, nil)
	if !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("unbound workload replay: %v, want 400", err)
	}
	// Malformed NDJSON line → 400, daemon stays healthy.
	_, err = c.ReplayNDJSON(ctx, info.ID, strings.NewReader("{\"addr\":1}\nnot json\n"))
	if !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("malformed NDJSON: %v, want 400", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("daemon unhealthy after bad input: %v", err)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	srv, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	srv.BeginDrain()
	if err := c.Health(ctx); !isStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("healthz while draining: %v, want 503", err)
	}
	if _, err := c.CreateSession(ctx, testSession()); !isStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("create while draining: %v, want 503", err)
	}
	if _, err := c.ReplayWorkload(ctx, info.ID, 10, 0, nil); !isStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("replay while draining: %v, want 503", err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.ReplayWorkload(ctx, info.ID, 1000, 0, nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	text, err := c.RawMetrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"rmccd_sessions_created_total 1",
		"rmccd_sessions_active 1",
		"rmccd_replays_total{status=\"ok\"} 1",
		"rmccd_replay_accesses_total 1000",
		"rmccd_build_info",
		"rmccd_shard_queue_depth",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestConcurrentSessions overlaps create/replay/snapshot/delete across
// many goroutines — the -race lifecycle test. Every session must complete
// its replay with the exact requested access count.
func TestConcurrentSessions(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 4, QueueDepth: 4, ChunkAccesses: 512})
	ctx := context.Background()
	const clients = 12
	const n = 4000

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, err := c.CreateSession(ctx, testSession())
			if err != nil {
				errs <- err
				return
			}
			stats, err := c.ReplayWorkload(ctx, info.ID, n, 0, nil)
			if err != nil {
				errs <- err
				return
			}
			if stats.Accesses != n {
				errs <- &client.APIError{Status: 500, Msg: "short replay"}
				return
			}
			if _, err := c.Snapshot(ctx, info.ID); err != nil {
				errs <- err
				return
			}
			if err := c.DeleteSession(ctx, info.ID); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client: %v", err)
	}

	list, err := c.ListSessions(ctx)
	if err != nil || len(list) != 0 {
		t.Fatalf("leftover sessions: %v, %v", list, err)
	}
}

// TestConcurrentReplaySameSession: exactly one of two overlapping replays
// on one session may win; the loser gets 409.
func TestConcurrentReplaySameSession(t *testing.T) {
	_, c := newTestServer(t, server.Config{ChunkAccesses: 256})
	ctx := context.Background()
	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	const racers = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	okCount, busyCount := 0, 0
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.ReplayWorkload(ctx, info.ID, 50_000, 0, nil)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				okCount++
			case isStatus(err, http.StatusConflict):
				busyCount++
			default:
				t.Errorf("unexpected replay error: %v", err)
			}
		}()
	}
	wg.Wait()
	if okCount == 0 {
		t.Fatal("no replay succeeded")
	}
	if okCount+busyCount != racers {
		t.Fatalf("ok=%d busy=%d, want %d total", okCount, busyCount, racers)
	}
}

func TestIdleTTLEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	srv, c := newTestServer(t, server.Config{IdleTTL: time.Minute, Now: clock})
	ctx := context.Background()

	a, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	b, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	// Before the TTL: nothing to evict.
	advance(30 * time.Second)
	if n := srv.Sweep(clock()); n != 0 {
		t.Fatalf("early sweep evicted %d", n)
	}

	// Touch session b only; a ages past the TTL.
	advance(31 * time.Second)
	if _, err := c.ReplayWorkload(ctx, b.ID, 100, 0, nil); err != nil {
		t.Fatalf("touch replay: %v", err)
	}
	if n := srv.Sweep(clock()); n != 1 {
		t.Fatalf("sweep evicted %d, want 1 (only the idle session)", n)
	}
	if _, err := c.Snapshot(ctx, a.ID); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("evicted session still reachable: %v", err)
	}
	if _, err := c.Snapshot(ctx, b.ID); err != nil {
		t.Fatalf("live session evicted: %v", err)
	}

	// The touched session goes once it idles past the TTL too.
	advance(2 * time.Minute)
	if n := srv.Sweep(clock()); n != 1 {
		t.Fatalf("final sweep evicted %d, want 1", n)
	}
}

func isStatus(err error, code int) bool {
	var ae *client.APIError
	return errors.As(err, &ae) && ae.Status == code
}
