package server

import (
	"strings"
	"testing"
)

// FuzzDecodeSessionConfig: arbitrary bytes must either decode cleanly or
// return an error — never panic. A panic here would take down the create
// handler; a shard worker is never involved because decoding happens
// before any simulator state is built.
func FuzzDecodeSessionConfig(f *testing.F) {
	f.Add([]byte(`{"mode":"rmcc","scheme":"morphable","workload":"canneal","size":"test","seed":1}`))
	f.Add([]byte(`{"footprint_bytes":1048576,"label":"trace"}`))
	f.Add([]byte(`{"engine":{"Mode":2,"Scheme":2,"CounterCacheBytes":131072}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"mode":"rmcc"} trailing`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"seed":-1}`))
	f.Add([]byte(`{"seed":1e400}`))
	f.Add([]byte("{\"mode\":\"\x00\"}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := DecodeSessionConfig(data)
		if err != nil {
			return
		}
		// A decodable config must also resolve without panicking (resolve
		// can still reject it with an error — that is a 400, not a crash).
		if _, rerr := sc.resolve(); rerr != nil {
			return
		}
	})
}

// FuzzDecodeAccess: arbitrary NDJSON lines must decode or error, never
// panic — malformed replay input has to surface as a 4xx without reaching
// a shard worker.
func FuzzDecodeAccess(f *testing.F) {
	f.Add([]byte(`{"addr":4096}`))
	f.Add([]byte(`{"addr":18446744073709551615,"write":true,"gap":255}`))
	f.Add([]byte(`{"addr":0,"write":false,"gap":0}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"addr":-1}`))
	f.Add([]byte(`{"addr":1,"gap":256}`))
	f.Add([]byte(`{"addr":1} {"addr":2}`))
	f.Add([]byte(`{"addr":1,"bogus":true}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`"just a string"`))
	f.Add([]byte(strings.Repeat("9", 400)))
	f.Fuzz(func(t *testing.T, line []byte) {
		a, err := DecodeAccess(line)
		if err != nil {
			return
		}
		// Differential property: the hand-rolled scanner accepts a strict
		// subset of what the encoding/json implementation accepted, with
		// identical decoded values. Any line the fast path takes, the
		// oracle must take too — otherwise the scanner invented syntax.
		std, stdErr := decodeAccessJSON(line)
		if stdErr != nil {
			t.Fatalf("fast decoder accepted %q but encoding/json rejects it: %v", line, stdErr)
		}
		if a != std {
			t.Fatalf("decoders disagree on %q: fast = %+v, std = %+v", line, a, std)
		}
	})
}
