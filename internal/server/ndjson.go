package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"rmcc/internal/workload"
)

// DecodeAccess parses one NDJSON line strictly: unknown fields, trailing
// data, out-of-range numbers are errors, never panics. Malformed input
// must surface as a 4xx to the client, not reach a shard worker.
//
// This is a hand-rolled scanner, not encoding/json: the NDJSON shim
// decodes one object per access on the replay hot path, and a fresh
// json.Decoder + bytes.Reader per line cost five allocations each
// (BenchmarkDecodeAccessJSON vs BenchmarkDecodeAccess). The scanner
// accepts a strict subset of what encoding/json accepted — field names
// must be exact (no case folding, no escapes) and numbers must be plain
// decimal integers — and is byte-for-byte value-compatible on that
// subset, a property FuzzDecodeAccess enforces differentially against
// the retained encoding/json implementation.
func DecodeAccess(line []byte) (workload.Access, error) {
	var a workload.Access
	i := skipJSONSpace(line, 0)
	if i < len(line) && line[i] == 'n' {
		// encoding/json treats a top-level null as a no-op decode; keep
		// that (it falls out of the struct-decode semantics, and the
		// differential fuzz property pins it).
		if !bytes.HasPrefix(line[i:], []byte("null")) {
			return a, errAccessSyntax
		}
		if i = skipJSONSpace(line, i+4); i != len(line) {
			return a, errAccessTrailing
		}
		return a, nil
	}
	if i >= len(line) || line[i] != '{' {
		return a, errAccessSyntax
	}
	i = skipJSONSpace(line, i+1)
	if i < len(line) && line[i] == '}' {
		i++
	} else {
		for {
			key, rest, err := scanJSONKey(line, i)
			if err != nil {
				return a, err
			}
			i = skipJSONSpace(line, rest)
			if i >= len(line) || line[i] != ':' {
				return a, errAccessSyntax
			}
			i = skipJSONSpace(line, i+1)
			switch key {
			case fieldAddr:
				v, rest, null, err := scanJSONUint(line, i, ^uint64(0), "addr")
				if err != nil {
					return a, err
				}
				if !null {
					a.Addr = v
				}
				i = rest
			case fieldGap:
				v, rest, null, err := scanJSONUint(line, i, 255, "gap")
				if err != nil {
					return a, err
				}
				if !null {
					a.Gap = uint8(v)
				}
				i = rest
			case fieldWrite:
				v, rest, null, err := scanJSONBool(line, i)
				if err != nil {
					return a, err
				}
				if !null {
					a.Write = v
				}
				i = rest
			}
			i = skipJSONSpace(line, i)
			if i >= len(line) {
				return a, errAccessSyntax
			}
			if line[i] == '}' {
				i++
				break
			}
			if line[i] != ',' {
				return a, errAccessSyntax
			}
			i = skipJSONSpace(line, i+1)
		}
	}
	if i = skipJSONSpace(line, i); i != len(line) {
		return a, errAccessTrailing
	}
	return a, nil
}

// Known access-record fields; scanJSONKey returns one of these.
type accessField uint8

const (
	fieldAddr accessField = iota
	fieldWrite
	fieldGap
)

// Static sentinel errors keep the decoder allocation-free on malformed
// input too — one rejected line per million accesses must not turn into
// a per-line fmt.Errorf.
var (
	errAccessSyntax   = fmt.Errorf("access record: invalid JSON object")
	errAccessTrailing = fmt.Errorf("access record: trailing data after object")
	errAccessAddr     = fmt.Errorf("access record: addr must be a non-negative integer")
	errAccessGap      = fmt.Errorf("access record: gap must be an integer in [0,255]")
	errAccessWrite    = fmt.Errorf("access record: write must be a boolean")
	errAccessField    = fmt.Errorf("access record: unknown field (want addr, write, gap)")
)

func skipJSONSpace(b []byte, i int) int {
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\n' || b[i] == '\r') {
		i++
	}
	return i
}

// scanJSONKey reads a quoted field name at b[i] and maps it to a known
// field. Escapes and unknown names are rejected (stricter than
// encoding/json's case folding, which is fine: strictness here becomes
// a 400, not drift).
func scanJSONKey(b []byte, i int) (accessField, int, error) {
	if i >= len(b) || b[i] != '"' {
		return 0, i, errAccessSyntax
	}
	i++
	start := i
	for i < len(b) && b[i] != '"' {
		if b[i] == '\\' {
			return 0, i, errAccessField
		}
		i++
	}
	if i >= len(b) {
		return 0, i, errAccessSyntax
	}
	key := b[start:i]
	i++
	switch {
	case bytes.Equal(key, []byte("addr")):
		return fieldAddr, i, nil
	case bytes.Equal(key, []byte("write")):
		return fieldWrite, i, nil
	case bytes.Equal(key, []byte("gap")):
		return fieldGap, i, nil
	}
	return 0, i, errAccessField
}

// scanJSONUint reads a plain decimal integer (or null) at b[i], bounded
// by max. Leading zeros, signs, fractions, and exponents are rejected —
// encoding/json rejects all of those for unsigned fields too, except
// that it never sees leading zeros (the JSON grammar forbids them).
func scanJSONUint(b []byte, i int, max uint64, field string) (v uint64, rest int, null bool, err error) {
	rangeErr := errAccessAddr
	if field == "gap" {
		rangeErr = errAccessGap
	}
	if i < len(b) && b[i] == 'n' {
		if bytes.HasPrefix(b[i:], []byte("null")) {
			return 0, i + 4, true, nil
		}
		return 0, i, false, rangeErr
	}
	start := i
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		if v > max/10 || v*10 > max-uint64(b[i]-'0') {
			return 0, i, false, rangeErr
		}
		v = v*10 + uint64(b[i]-'0')
		i++
	}
	if i == start {
		return 0, i, false, rangeErr
	}
	if b[start] == '0' && i-start > 1 {
		return 0, i, false, rangeErr // JSON forbids leading zeros
	}
	return v, i, false, nil
}

func scanJSONBool(b []byte, i int) (v bool, rest int, null bool, err error) {
	switch {
	case bytes.HasPrefix(b[i:], []byte("true")):
		return true, i + 4, false, nil
	case bytes.HasPrefix(b[i:], []byte("false")):
		return false, i + 5, false, nil
	case bytes.HasPrefix(b[i:], []byte("null")):
		return false, i + 4, true, nil
	}
	return false, i, false, errAccessWrite
}

// decodeAccessJSON is the encoding/json implementation DecodeAccess
// replaced. Retained as the differential-testing oracle (the scanner
// must accept only inputs this accepts, with identical values) and the
// before-side of BenchmarkDecodeAccessJSON.
func decodeAccessJSON(line []byte) (workload.Access, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var rec AccessRecord
	if err := dec.Decode(&rec); err != nil {
		return workload.Access{}, fmt.Errorf("access record: %w", err)
	}
	if dec.More() {
		return workload.Access{}, fmt.Errorf("access record: trailing data after object")
	}
	return workload.Access{Addr: rec.Addr, Write: rec.Write, Gap: rec.Gap}, nil
}
