package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rmcc/internal/obs"
	"rmcc/internal/sim"
	"rmcc/internal/trace"
	"rmcc/internal/workload"
)

// Replay wire content types. NDJSON is the default for any body without
// a binary content type, preserving pre-binary-wire clients.
const (
	// ContentTypeBinaryReplay selects the length-prefixed RMTR frame
	// stream (see internal/trace frame.go and docs/SERVICE.md).
	ContentTypeBinaryReplay = "application/x-rmcc-trace"
	// ContentTypeNDJSON is the line-delimited JSON compatibility wire.
	ContentTypeNDJSON = "application/x-ndjson"
)

// Wire names used as metric label values.
const (
	wireWorkload = "workload"
	wireNDJSON   = "ndjson"
	wireBinary   = "binary"
)

// handleReplay applies an access stream to a session and returns rolled-up
// stats. Three sources:
//
//   - ?workload=&accesses=N — run the session's bound generator for N
//     accesses server-side (the daemon analog of rmccsim -accesses).
//   - NDJSON request body — one AccessRecord per line, applied in arrival
//     order with chunk-granular backpressure.
//   - Binary request body (Content-Type: application/x-rmcc-trace) —
//     length-prefixed RMTR frames, decoded frame-at-a-time into a reused
//     batch with zero per-access allocations.
//
// Both body wires converge on one apply loop (replayStream over a
// replaySource), so backpressure, cancellation, progress frames, stage
// spans, and snapshot dirtiness behave identically regardless of wire.
//
// ?progress=N streams NDJSON progress frames every N applied accesses and
// finishes with a result (or error) frame; without it the response is one
// JSON ReplayStats document. Cancellation is chunk-granular: a dropped
// client connection or the shutdown drain deadline aborts mid-stream.
//
// Every replay runs under a span parented to the request span; each
// applied chunk records queue-wait and engine-step stage spans (from the
// shard pool's worker timestamps) and each written progress/result frame
// an encode span. The per-chunk path stays allocation-free: stage
// recording is ring writes plus atomic histogram adds, and the sampled
// debug log line is gated on Enabled before its arguments exist.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	q := r.URL.Query()
	useWorkload := q.Has("workload") || q.Has("accesses")
	var accesses uint64
	if useWorkload {
		var err error
		accesses, err = parseUint(q.Get("accesses"))
		if err != nil || accesses == 0 {
			writeError(w, http.StatusBadRequest, "accesses must be a positive integer")
			return
		}
		if accesses > s.cfg.MaxReplayAccesses {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("accesses %d exceeds the per-replay cap %d", accesses, s.cfg.MaxReplayAccesses))
			return
		}
		if sess.w == nil {
			writeError(w, http.StatusBadRequest,
				"session has no bound workload; create it with \"workload\" or stream accesses")
			return
		}
		if name := q.Get("workload"); name != "" && name != sess.w.Name() {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("session is bound to workload %q, not %q", sess.w.Name(), name))
			return
		}
	}
	var progressEvery uint64
	if p := q.Get("progress"); p != "" {
		var err error
		if progressEvery, err = parseUint(p); err != nil {
			writeError(w, http.StatusBadRequest, "progress must be a non-negative integer")
			return
		}
	}

	ok, gone := sess.acquire()
	if !ok {
		code, msg := http.StatusConflict, "replay already in flight on this session"
		if gone {
			code, msg = http.StatusNotFound, "session evicted"
		}
		writeError(w, code, msg)
		return
	}
	defer sess.release()

	// Join the request context with the server-wide force-cancel so the
	// drain deadline aborts long replays.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.forceCtx, cancel)
	defer stop()

	lc := traceCtx(r.Context())
	rsp := s.spans.StartT("replay", sess.id, lc.SpanID, lc)
	// rtc is the trace context for everything under the replay span.
	rtc := lc
	rtc.SpanID = rsp.ID()
	defer rsp.End()

	rw := &replayWriter{w: w, every: progressEvery}
	start := time.Now()
	var applied uint64
	var err error
	switch {
	case useWorkload:
		s.wireMetrics[wireWorkload].requests.Inc()
		applied, err = s.replayWorkload(ctx, sess, accesses, rw, rtc)
	case isBinaryReplay(r.Header.Get("Content-Type")):
		wm := s.wireMetrics[wireBinary]
		wm.requests.Inc()
		body := &countingReader{r: r.Body}
		applied, err = s.replayBinary(ctx, sess, body, rw, rtc)
		wm.bytes.Add(body.n)
	default:
		wm := s.wireMetrics[wireNDJSON]
		wm.requests.Inc()
		body := &countingReader{r: r.Body}
		applied, err = s.replayNDJSON(ctx, sess, body, rw, rtc)
		wm.bytes.Add(body.n)
	}
	s.mReplayAccesses.Add(applied)
	s.mReplaySizes.Observe(applied)
	sess.touch(s.cfg.Now())

	if err != nil {
		var badInput *inputError
		switch {
		case errors.As(err, &badInput):
			s.mReplaysErr.Inc()
			sess.lg.Warn("replay rejected", "applied", applied, "error", err)
			rw.fail(http.StatusBadRequest, err.Error())
		case ctx.Err() != nil:
			s.mReplaysCancel.Inc()
			reason := "replay cancelled"
			if s.forceCtx.Err() != nil {
				reason = "replay aborted: drain deadline expired"
			}
			sess.lg.Info("replay cancelled", "applied", applied, "reason", reason)
			rw.fail(http.StatusServiceUnavailable, reason)
		default:
			s.mReplaysErr.Inc()
			sess.lg.Error("replay failed", "applied", applied, "error", err)
			rw.fail(http.StatusInternalServerError, err.Error())
		}
		return
	}

	var res sim.LifetimeResult
	if perr := s.pool.do(ctx, sess.shard, func() { res = sess.lt.Result() }); perr != nil {
		s.mReplaysCancel.Inc()
		sess.lg.Info("replay cancelled", "applied", applied, "reason", "cancelled before stats rollup")
		rw.fail(http.StatusServiceUnavailable, "replay cancelled before stats rollup")
		return
	}
	s.mReplaysOK.Inc()
	stats := statsFromResult(sess.id, sess.seed, res)
	stats.WallSeconds = time.Since(start).Seconds()
	encStart := time.Now()
	rw.result(stats)
	s.spans.RecordT(stageEncode, sess.id, rtc.SpanID, rtc, encStart.UnixNano(), time.Since(encStart))
	sess.lg.Info("replay complete", "accesses", applied,
		"total_accesses", res.Accesses, "wall_seconds", stats.WallSeconds)
}

// isBinaryReplay matches the binary replay content type, ignoring media
// parameters (";charset=..." etc.).
func isBinaryReplay(contentType string) bool {
	mediaType, _, _ := strings.Cut(contentType, ";")
	return strings.TrimSpace(mediaType) == ContentTypeBinaryReplay
}

// countingReader counts bytes drawn from a replay body for the per-wire
// rmccd_replay_bytes_total counters. The count is added once at request
// end, keeping the per-read path a plain integer add.
type countingReader struct {
	r io.Reader
	n uint64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += uint64(n)
	return n, err
}

// applyWorkloadChunk runs fn-equivalent chunk work on the session's shard
// and records its queue-wait and engine-step stage spans under the trace
// context's span.
// This is THE hot service-layer path — one call per ChunkAccesses — and
// its per-call allocations are capped at the untimed PR-4 profile (one
// closure + one completion channel), enforced by
// TestReplayChunkInstrumentationAllocFree.
func (s *Server) applyWorkloadChunk(ctx context.Context, sess *session, want uint64, tc obs.TraceContext) (got, total uint64, exhausted bool, err error) {
	s.mEnqueueDepth.Observe(uint64(s.pool.queueLen(sess.shard)))
	submit := time.Now().UnixNano()
	jt, err := s.pool.doTimed(ctx, sess.shard, func() {
		if sess.stream == nil {
			w, seed := sess.w, sess.seed
			sess.stream = sim.NewAccessStream(func(sink workload.Sink) { w.Run(seed, sink) })
			// Restored session: the stream is a pure function of
			// (workload, seed), so fast-forward past the accesses the
			// pre-crash incarnation already consumed. A local counter, not
			// sess.pulled: the restore path already set pulled to the
			// checkpointed cursor so checkpoints cut before this point
			// persist it, and advancing it here would double-count.
			for skip := sess.skipPulled; skip > 0; skip-- {
				if _, ok := sess.stream.Next(); !ok {
					exhausted = true
					break
				}
			}
		}
		for got < want {
			if got%512 == 511 && ctx.Err() != nil {
				break
			}
			a, ok := sess.stream.Next()
			if !ok {
				exhausted = true
				break
			}
			sess.lt.Step(a)
			got++
		}
		sess.pulled += got
		total = sess.lt.Accesses()
		// Refresh the lock-free rate mirrors on the shard goroutine (the
		// only place engine state may be read). Capturing a stats struct
		// into the submitter's frame instead would add an escaping heap
		// variable per chunk; the atomic stores keep the path alloc-free.
		sess.storeRates(sess.lt.MC().Stats())
	})
	if err != nil {
		return got, total, exhausted, err
	}
	s.recordChunk(sess, tc, submit, jt, got)
	return got, total, exhausted, nil
}

// recordChunk emits the queue-wait and engine-step stage spans for one
// applied chunk, feeds the session's latency history, and (sampled, debug
// level only) logs the chunk. Allocation-free when the logger is disabled
// or filtered.
func (s *Server) recordChunk(sess *session, tc obs.TraceContext, submitNS int64, jt jobTimes, got uint64) {
	s.spans.RecordT(stageQueueWait, sess.id, tc.SpanID, tc, submitNS, time.Duration(jt.startNS-submitNS))
	s.spans.RecordT(stageEngine, sess.id, tc.SpanID, tc, jt.startNS, time.Duration(jt.endNS-jt.startNS))
	stepUS := uint64(jt.endNS-jt.startNS) / 1e3
	sess.chunkHist.Observe(stepUS)
	if sess.lg.Enabled(obs.LogDebug) && sess.sampler.Allow() {
		sess.lg.Debug("chunk applied", "accesses", got, "engine_step_us", stepUS,
			"queue_wait_us", uint64(jt.startNS-submitNS)/1e3)
	}
}

// replayWorkload steps the bound generator for n accesses in shard-owned
// chunks.
func (s *Server) replayWorkload(ctx context.Context, sess *session, n uint64, rw *replayWriter, tc obs.TraceContext) (uint64, error) {
	var applied uint64
	for applied < n {
		if err := ctx.Err(); err != nil {
			return applied, err
		}
		want := uint64(s.cfg.ChunkAccesses)
		if rem := n - applied; rem < want {
			want = rem
		}
		got, total, exhausted, err := s.applyWorkloadChunk(ctx, sess, want, tc)
		if err != nil {
			return applied, err
		}
		applied += got
		sess.accessesDone.Store(total)
		sess.touch(s.cfg.Now())
		if err := s.emitProgress(rw, sess, tc, applied); err != nil {
			return applied, err
		}
		if exhausted {
			break
		}
	}
	return applied, nil
}

// emitProgress forwards to the replay writer and wraps any written frame
// in an encode stage span. The no-frame case (threshold not crossed, or
// no ?progress at all) costs two time reads and no allocation.
func (s *Server) emitProgress(rw *replayWriter, sess *session, tc obs.TraceContext, applied uint64) error {
	start := time.Now()
	wrote, err := rw.progress(applied)
	if wrote {
		s.spans.RecordT(stageEncode, sess.id, tc.SpanID, tc, start.UnixNano(), time.Since(start))
	}
	return err
}

// replaySource yields decoded access batches from a request body. next
// reuses buf's backing array (callers pass the previous batch back in),
// so steady-state decoding allocates nothing per batch. A non-empty
// batch may accompany io.EOF; errors of type *inputError are client
// faults (4xx), everything else is a transport failure.
type replaySource interface {
	next(buf []workload.Access) ([]workload.Access, error)
}

// replayStream is the shared apply loop both body wires converge on:
// pull one batch from the source, apply it on the session's shard,
// account, emit progress. Because each batch is applied before more
// input is read, a slow simulation backpressures the upload through the
// unread TCP window regardless of wire.
func (s *Server) replayStream(ctx context.Context, sess *session, src replaySource, rw *replayWriter, tc obs.TraceContext) (uint64, error) {
	batch := make([]workload.Access, 0, s.cfg.ChunkAccesses)
	var applied uint64
	for {
		if err := ctx.Err(); err != nil {
			return applied, err
		}
		var srcErr error
		batch, srcErr = src.next(batch)
		if srcErr != nil && srcErr != io.EOF {
			return applied, srcErr
		}
		if len(batch) > 0 {
			stepped, total, err := s.applyBatch(ctx, sess, batch, tc)
			applied += uint64(stepped)
			if err != nil {
				return applied, err
			}
			sess.accessesDone.Store(total)
			sess.touch(s.cfg.Now())
			if err := s.emitProgress(rw, sess, tc, applied); err != nil {
				return applied, err
			}
			if stepped < len(batch) {
				// The shard worker stopped mid-batch: only cancellation
				// does that, and context errors are sticky.
				return applied, ctx.Err()
			}
		}
		if srcErr == io.EOF {
			return applied, nil
		}
	}
}

// applyBatch steps one decoded batch on the session's shard and records
// its stage spans. The shard closure reports how many accesses it
// stepped through the captured counter — cancellation mid-batch leaves
// stepped < len(batch) — rather than mutating the caller's slice, so
// the apply loop's accounting never depends on cross-goroutine slice
// surgery.
func (s *Server) applyBatch(ctx context.Context, sess *session, batch []workload.Access, tc obs.TraceContext) (stepped int, total uint64, err error) {
	s.mEnqueueDepth.Observe(uint64(s.pool.queueLen(sess.shard)))
	submit := time.Now().UnixNano()
	jt, err := s.pool.doTimed(ctx, sess.shard, func() {
		for _, a := range batch {
			if stepped%512 == 511 && ctx.Err() != nil {
				break
			}
			sess.lt.Step(a)
			stepped++
		}
		total = sess.lt.Accesses()
		sess.storeRates(sess.lt.MC().Stats())
	})
	if err != nil {
		return 0, 0, err
	}
	s.recordChunk(sess, tc, submit, jt, uint64(stepped))
	return stepped, total, nil
}

// ndjsonSource decodes NDJSON lines into batches of up to cap(buf)
// accesses. Decoding happens on the handler goroutine; only the
// validated batch crosses into the shard, so malformed input can never
// panic a worker.
type ndjsonSource struct {
	sc       *bufio.Scanner
	maxLine  int
	line     int
	scanDone bool
}

func (s *Server) newNDJSONSource(body io.Reader) *ndjsonSource {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), s.cfg.MaxLineBytes)
	return &ndjsonSource{sc: sc, maxLine: s.cfg.MaxLineBytes}
}

func (src *ndjsonSource) next(buf []workload.Access) ([]workload.Access, error) {
	buf = buf[:0]
	if src.scanDone {
		return buf, io.EOF
	}
	for len(buf) < cap(buf) {
		if !src.sc.Scan() {
			src.scanDone = true
			if err := src.sc.Err(); err != nil {
				if errors.Is(err, bufio.ErrTooLong) {
					return buf, &inputError{fmt.Errorf("line %d: exceeds %d-byte line cap", src.line+1, src.maxLine)}
				}
				// Body read errors are client disconnects in practice.
				return buf, err
			}
			return buf, io.EOF
		}
		src.line++
		raw := src.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		a, err := DecodeAccess(raw)
		if err != nil {
			return buf, &inputError{fmt.Errorf("line %d: %w", src.line, err)}
		}
		buf = append(buf, a)
	}
	return buf, nil
}

// replayNDJSON applies an NDJSON body through the shared apply loop.
func (s *Server) replayNDJSON(ctx context.Context, sess *session, body io.Reader, rw *replayWriter, tc obs.TraceContext) (uint64, error) {
	return s.replayStream(ctx, sess, s.newNDJSONSource(body), rw, tc)
}

// binarySource decodes length-prefixed RMTR frames. Each frame is one
// batch: the sender's framing decides the apply granularity (capped at
// trace.MaxFrameAccesses), and the decode reuses the caller's batch
// plus the reader's payload buffer — zero allocations per access or per
// frame at steady state.
type binarySource struct {
	fr    *trace.FrameReader
	frame int
}

func (src *binarySource) next(buf []workload.Access) ([]workload.Access, error) {
	buf, err := src.fr.DecodeInto(buf)
	switch {
	case err == nil:
		src.frame++
		return buf, nil
	case err == io.EOF:
		return buf, io.EOF
	case errors.Is(err, trace.ErrFrameCorrupt), errors.Is(err, trace.ErrFrameTooLarge):
		return buf, &inputError{fmt.Errorf("frame %d: %w", src.frame+1, err)}
	default:
		return buf, err
	}
}

// replayBinary applies a binary-framed body through the shared apply
// loop.
func (s *Server) replayBinary(ctx context.Context, sess *session, body io.Reader, rw *replayWriter, tc obs.TraceContext) (uint64, error) {
	return s.replayStream(ctx, sess, &binarySource{fr: trace.NewFrameReader(body)}, rw, tc)
}

// inputError marks client-side (4xx) replay failures.
type inputError struct{ err error }

func (e *inputError) Error() string { return e.err.Error() }
func (e *inputError) Unwrap() error { return e.err }

// replayWriter renders the replay response: buffered single-document JSON
// by default, or an NDJSON frame stream when progress is requested (the
// status line is committed at the first frame, so later failures become
// error frames instead).
type replayWriter struct {
	w         http.ResponseWriter
	every     uint64
	streaming bool
	nextAt    uint64
}

func (rw *replayWriter) startStream() {
	if rw.streaming {
		return
	}
	rw.streaming = true
	rw.w.Header().Set("Content-Type", ContentTypeNDJSON)
	rw.w.WriteHeader(http.StatusOK)
}

func (rw *replayWriter) writeFrame(f ReplayFrame) error {
	rw.startStream()
	if err := writeNDJSONLine(rw.w, f); err != nil {
		return err
	}
	if fl, ok := rw.w.(http.Flusher); ok {
		fl.Flush()
	}
	return nil
}

// progress emits a frame when the applied count crosses the next
// threshold; a no-op without ?progress. wrote reports whether a frame
// actually went out (so callers attribute encode time only to real
// frames).
func (rw *replayWriter) progress(applied uint64) (wrote bool, err error) {
	if rw.every == 0 {
		return false, nil
	}
	if rw.nextAt == 0 {
		rw.nextAt = rw.every
	}
	if applied < rw.nextAt {
		return false, nil
	}
	rw.nextAt = applied + rw.every
	return true, rw.writeFrame(ReplayFrame{Type: "progress", Accesses: applied})
}

func (rw *replayWriter) result(stats ReplayStats) {
	if rw.every == 0 {
		writeJSON(rw.w, http.StatusOK, stats)
		return
	}
	_ = rw.writeFrame(ReplayFrame{Type: "result", Accesses: stats.Accesses, Stats: &stats})
}

func (rw *replayWriter) fail(code int, msg string) {
	if !rw.streaming {
		writeError(rw.w, code, msg)
		return
	}
	_ = rw.writeFrame(ReplayFrame{Type: "error", Error: msg})
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(s, 10, 64)
}

// writeNDJSONLine marshals v and appends a newline.
func writeNDJSONLine(w http.ResponseWriter, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
