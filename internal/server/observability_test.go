package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rmcc/internal/obs"
	"rmcc/internal/server"
)

// TestStageHistogramsInMetrics: after a replay, the per-stage span
// histograms (queue-wait, engine-step, encode) and per-endpoint SLO
// series must appear populated in /metrics.
func TestStageHistogramsInMetrics(t *testing.T) {
	_, c := newTestServer(t, server.Config{ChunkAccesses: 1000})
	ctx := context.Background()
	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// ?progress forces frame encodes, populating the encode stage.
	if _, err := c.ReplayWorkload(ctx, info.ID, 5000, 1000, func(uint64) {}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	text, err := c.RawMetrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`rmccd_replay_stage_duration_us_count{stage="queue-wait"}`,
		`rmccd_replay_stage_duration_us_count{stage="engine-step"}`,
		`rmccd_replay_stage_duration_us_count{stage="encode"}`,
		`rmccd_request_duration_us_count{endpoint="replay"} 1`,
		`rmccd_request_duration_us_count{endpoint="create"} 1`,
		`rmccd_requests_total{class="2xx",endpoint="replay"} 1`,
		`rmccd_queue_depth_at_enqueue_count`,
		`rmccd_uptime_seconds`,
		`rmccd_spans_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The parser must read our own exposition, and engine-step must have
	// observed one sample per chunk (5 chunks of 1000).
	parsed, err := obs.ParsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse own metrics: %v", err)
	}
	if v, ok := parsed.Value("rmccd_replay_stage_duration_us_count", obs.L("stage", "engine-step")); !ok || v != 5 {
		t.Errorf("engine-step count = %v,%v, want 5", v, ok)
	}
	if v, ok := parsed.Value("rmccd_replay_stage_duration_us_count", obs.L("stage", "queue-wait")); !ok || v != 5 {
		t.Errorf("queue-wait count = %v,%v, want 5", v, ok)
	}
	// 5 progress frames (every 1000) + 1 result document... the final
	// document is unframed JSON here? No: progress mode streams, so the
	// result frame is encoded too → 5 progress crossings + 1 result ≥ 5.
	if v, ok := parsed.Value("rmccd_replay_stage_duration_us_count", obs.L("stage", "encode")); !ok || v < 5 {
		t.Errorf("encode count = %v,%v, want >= 5", v, ok)
	}
}

// TestSessionInfoLiveRates: listings carry live engine-rate mirrors and
// per-chunk latency quantiles after a replay, without touching the
// replay lease.
func TestSessionInfoLiveRates(t *testing.T) {
	_, c := newTestServer(t, server.Config{ChunkAccesses: 1000})
	ctx := context.Background()
	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if info.CtrMissRate != 0 || info.ReplayP99us != 0 {
		t.Errorf("fresh session reports non-zero live stats: %+v", info)
	}
	if _, err := c.ReplayWorkload(ctx, info.ID, 10_000, 0, nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	list, err := c.ListSessions(ctx)
	if err != nil || len(list) != 1 {
		t.Fatalf("list: %v, %v", list, err)
	}
	got := list[0]
	if got.CtrMissRate <= 0 || got.CtrMissRate > 1 {
		t.Errorf("ctr_miss_rate = %v, want (0,1]", got.CtrMissRate)
	}
	if got.ReplayP50us <= 0 || got.ReplayP99us < got.ReplayP50us {
		t.Errorf("latency quantiles implausible: p50=%v p99=%v", got.ReplayP50us, got.ReplayP99us)
	}
}

// TestDebugEndpoints drives /statusz, /debug/tracez, and /debug/pprof on
// the separate debug handler after real traffic.
func TestDebugEndpoints(t *testing.T) {
	srv, c := newTestServer(t, server.Config{Shards: 2, ChunkAccesses: 1000})
	debug := httptest.NewServer(srv.DebugHandler())
	defer debug.Close()
	ctx := context.Background()

	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.ReplayWorkload(ctx, info.ID, 5000, 0, nil); err != nil {
		t.Fatalf("replay: %v", err)
	}

	// /statusz
	var status server.StatuszInfo
	getJSON(t, debug.URL+"/statusz", &status)
	if status.Sessions != 1 || status.Shards != 2 || status.MaxSessions == 0 {
		t.Errorf("statusz wrong: %+v", status)
	}
	if status.GoVersion == "" || status.StartedAt == "" {
		t.Errorf("statusz missing build info: %+v", status)
	}
	occ := 0
	for _, n := range status.ShardOccupancy {
		occ += n
	}
	if occ != 1 {
		t.Errorf("shard occupancy sums to %d, want 1", occ)
	}
	if status.SpansTotal == 0 {
		t.Error("statusz reports zero spans after a replay")
	}

	// /debug/tracez
	var tz server.TracezResponse
	getJSON(t, debug.URL+"/debug/tracez?n=50", &tz)
	if tz.TotalSpans == 0 || len(tz.Slowest) == 0 {
		t.Fatalf("tracez empty: %+v", tz)
	}
	names := map[string]bool{}
	for i, sp := range tz.Slowest {
		names[sp.Name] = true
		if i > 0 && sp.DurationUS > tz.Slowest[i-1].DurationUS {
			t.Errorf("tracez not sorted by duration: %+v", tz.Slowest)
		}
	}
	for _, want := range []string{"replay", "engine-step", "queue-wait"} {
		if !names[want] {
			t.Errorf("tracez missing %q spans (got %v)", want, names)
		}
	}

	// Replay chunk spans must parent under the replay span, which parents
	// under the request span.
	byID := map[uint64]server.TracezSpan{}
	for _, sp := range tz.Slowest {
		byID[sp.ID] = sp
	}
	for _, sp := range tz.Slowest {
		if sp.Name == "engine-step" {
			parent, ok := byID[sp.Parent]
			if !ok || parent.Name != "replay" {
				t.Errorf("engine-step span parent = %+v, want a replay span", parent)
			}
		}
		if sp.Name == "replay" && sp.Parent != 0 {
			if parent, ok := byID[sp.Parent]; ok && parent.Name != "http.replay" {
				t.Errorf("replay span parent = %+v, want http.replay", parent)
			}
		}
	}

	// tracez input validation
	if resp, err := http.Get(debug.URL + "/debug/tracez?n=0"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("tracez n=0: %v %v, want 400", resp.Status, err)
	}

	// /debug/pprof/ index and a profile
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		resp, err := http.Get(debug.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestStructuredLogSchema: daemon logs are parseable JSON lines carrying
// the bound session fields, and hot-path chunk lines are debug-sampled.
func TestStructuredLogSchema(t *testing.T) {
	var sb strings.Builder
	lg := obs.NewLogger(&sb, obs.LogDebug, obs.LogJSON)
	_, c := newTestServer(t, server.Config{ChunkAccesses: 500, Logger: lg, LogSampleEvery: 1})
	ctx := context.Background()
	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.ReplayWorkload(ctx, info.ID, 2000, 0, nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	msgs := map[string]int{}
	for _, line := range lines {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("log line is not JSON: %v\n%q", err, line)
		}
		msg, _ := doc["msg"].(string)
		msgs[msg]++
		if msg == "session created" || msg == "replay complete" || msg == "chunk applied" || msg == "session evicted" {
			if doc["session"] != info.ID {
				t.Errorf("%q line missing session field: %q", msg, line)
			}
			if doc["workload"] != "canneal" {
				t.Errorf("%q line missing workload field: %q", msg, line)
			}
		}
	}
	if msgs["session created"] != 1 || msgs["replay complete"] != 1 || msgs["session evicted"] != 1 {
		t.Errorf("lifecycle lines wrong: %v", msgs)
	}
	// 2000 accesses at chunk 500 with sampling 1-in-1 → 4 chunk lines.
	if msgs["chunk applied"] != 4 {
		t.Errorf("chunk applied lines = %d, want 4", msgs["chunk applied"])
	}
	if lg.Lines() != uint64(len(lines)) {
		t.Errorf("Lines() = %d, emitted %d", lg.Lines(), len(lines))
	}
}

// TestLogSamplingOnChunks: with the default sampler, a many-chunk replay
// emits far fewer chunk lines than chunks.
func TestLogSamplingOnChunks(t *testing.T) {
	var sb strings.Builder
	lg := obs.NewLogger(&sb, obs.LogDebug, obs.LogJSON)
	_, c := newTestServer(t, server.Config{ChunkAccesses: 100, Logger: lg, LogSampleEvery: 8})
	ctx := context.Background()
	info, err := c.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.ReplayWorkload(ctx, info.ID, 3200, 0, nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	chunkLines := strings.Count(sb.String(), `"msg":"chunk applied"`)
	// 32 chunks sampled 1-in-8 → 4 lines.
	if chunkLines != 4 {
		t.Errorf("sampled chunk lines = %d, want 4", chunkLines)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
