package server

// Cluster wire types shared by rmcc-router (internal/cluster) and its
// clients. They live here — next to the session wire types — so the
// client package can decode them without importing the router.

// ClusterNode is one rmccd node as the router sees it.
type ClusterNode struct {
	// ID is the node identity: the host:port the router proxies to.
	ID  string `json:"id"`
	URL string `json:"url"`
	// State is the admin lifecycle: active | draining | drained.
	State string `json:"state"`
	// Healthy reflects the health checker's current verdict.
	Healthy bool `json:"healthy"`
	// InRing marks nodes eligible for new sessions (active and healthy).
	InRing bool `json:"in_ring"`
	// Sessions is the node's rmccd_sessions_active gauge at the last
	// successful scrape.
	Sessions int `json:"sessions"`
	// ReplayP99us is the node's replay-endpoint p99 latency (µs) from its
	// rmccd_request_duration_us histogram at the last successful scrape.
	ReplayP99us float64 `json:"replay_p99_us"`
	// LastError is the most recent health-check failure, empty when the
	// last check passed.
	LastError string `json:"last_error,omitempty"`
}

// ClusterInfo is the GET /v1/cluster response: the router's full view of
// its node set and routed sessions.
type ClusterInfo struct {
	Nodes []ClusterNode `json:"nodes"`
	// Sessions counts sessions with a known routed location.
	Sessions int `json:"sessions"`
	// VNodes is the virtual-node count per physical node on the hash ring.
	VNodes int `json:"vnodes"`
}

// DrainResult is the POST /v1/cluster/nodes/{id}/drain response: the
// outcome of migrating every session off the node.
type DrainResult struct {
	Node     string `json:"node"`
	Sessions int    `json:"sessions"`
	Migrated int    `json:"migrated"`
	Failed   int    `json:"failed"`
	// Errors carries one message per failed migration (capped).
	Errors      []string `json:"errors,omitempty"`
	WallSeconds float64  `json:"wall_seconds"`
}

// PeekSnapshotSessionID reads just the session ID out of an encoded
// checkpoint blob — what the router needs to route a restore to the
// session's ring owner without decoding the full simulator state.
func PeekSnapshotSessionID(data []byte) (string, error) {
	meta, _, err := decodeSessionMeta(data)
	if err != nil {
		return "", err
	}
	return meta.ID, nil
}
