package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rmcc/internal/obs"
	"rmcc/internal/server"
	"rmcc/internal/server/client"
)

// TestTraceHeaderRejection: malformed and oversized X-Rmcc-Trace headers
// are client errors — 400 with a JSON error body, never a 5xx, and never
// any session work.
func TestTraceHeaderRejection(t *testing.T) {
	srv := server.New(server.Config{})
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})

	valid := obs.MintTraceContext().String()
	cases := []struct {
		name   string
		header string
	}{
		{"garbage", "not-a-trace-context"},
		{"uppercase hex", strings.ToUpper(valid)},
		{"bad version", "01" + valid[2:]},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"truncated", valid[:54]},
		{"oversized", valid + strings.Repeat("0", 4096)},
	}
	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodGet, hs.URL+"/v1/sessions", nil)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set(obs.TraceHeader, tcase.header)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body not JSON: %v", err)
			}
			if !strings.Contains(body.Error, obs.TraceHeader) {
				t.Errorf("error %q does not name the header", body.Error)
			}
		})
	}

	// The well-formed context sails through.
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/sessions", nil)
	req.Header.Set(obs.TraceHeader, valid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid header rejected: %d", resp.StatusCode)
	}
}

// TestTracePropagationTracez: a client-minted trace context joins the
// request spans AND the replay stage spans into one trace, retrievable as
// a deterministic tree from /debug/tracez?trace=<id> with node stamps.
func TestTracePropagationTracez(t *testing.T) {
	var sb strings.Builder
	lg := obs.NewLogger(&sb, obs.LogInfo, obs.LogJSON)
	_, c := newTestServer(t, server.Config{
		NodeID: "node-a", ChunkAccesses: 1000, Logger: lg,
	})
	ctx := context.Background()

	tc := obs.MintTraceContext()
	traced := c.WithTraceContext(tc)
	info, err := traced.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := traced.ReplayWorkload(ctx, info.ID, 3000, 0, nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Untraced traffic must stay out of the tree.
	if _, err := c.ListSessions(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Tracez(ctx, tc.TraceID(), 0)
	if err != nil {
		t.Fatalf("tracez: %v", err)
	}
	if resp.Node != "node-a" || resp.Trace != tc.TraceID() {
		t.Fatalf("tracez header wrong: %+v", resp)
	}
	if len(resp.Spans) == 0 {
		t.Fatal("tracez returned no spans for the trace")
	}
	names := map[string]int{}
	for i, sp := range resp.Spans {
		names[sp.Name]++
		if sp.Trace != tc.TraceID() {
			t.Errorf("span %s carries trace %q, want %q", sp.Name, sp.Trace, tc.TraceID())
		}
		if sp.Node != "node-a" {
			t.Errorf("span %s node = %q, want node-a", sp.Name, sp.Node)
		}
		// Satellite: deterministic ordering by (start, span ID).
		if i > 0 {
			prev := resp.Spans[i-1]
			if sp.StartNS < prev.StartNS ||
				(sp.StartNS == prev.StartNS && sp.ID < prev.ID) {
				t.Errorf("spans not sorted by (start, id) at index %d", i)
			}
		}
		// Ingress spans carry the upstream span ID as Remote, with no
		// local parent; everything else parents inside the process.
		if strings.HasPrefix(sp.Name, "http.") {
			if sp.Remote != tc.SpanID || sp.Parent != 0 {
				t.Errorf("ingress span %s remote=%d parent=%d, want remote=%d parent=0",
					sp.Name, sp.Remote, sp.Parent, tc.SpanID)
			}
		} else if sp.Parent == 0 {
			t.Errorf("in-process span %s has no parent", sp.Name)
		}
	}
	// 3000 accesses at chunk 1000 → exactly 3 of each stage span.
	if names["http.create"] != 1 || names["http.replay"] != 1 {
		t.Errorf("request spans wrong: %v", names)
	}
	for _, stage := range []string{"queue-wait", "engine-step", "replay"} {
		want := 3
		if stage == "replay" {
			want = 1
		}
		if names[stage] != want {
			t.Errorf("%s spans = %d, want %d (all %v)", stage, names[stage], want, names)
		}
	}
	if names["http.list"] != 0 {
		t.Error("untraced list request leaked into the trace")
	}

	// The sampled trace ID is bound onto the session's log lines.
	if !strings.Contains(sb.String(), `"trace":"`+tc.TraceID()+`"`) {
		t.Error("session log lines missing the bound trace ID")
	}

	// Lookup input validation: a non-hex trace ID is a 400.
	if _, err := c.Tracez(ctx, strings.Repeat("z", 32), 0); !isAPIStatus(err, http.StatusBadRequest) {
		t.Errorf("bad trace id lookup: %v, want 400", err)
	}
}

// TestUnsampledTraceSkipsRing: an unsampled context still parses and
// propagates in logs-only form but must not occupy span-ring slots.
func TestUnsampledTraceSkipsRing(t *testing.T) {
	srv, c := newTestServer(t, server.Config{ChunkAccesses: 1000})
	ctx := context.Background()
	tc := obs.MintTraceContext()
	tc.Sampled = false
	traced := c.WithTraceContext(tc)
	info, err := traced.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := traced.ReplayWorkload(ctx, info.ID, 2000, 0, nil); err != nil {
		t.Fatal(err)
	}
	for _, sp := range srv.Spans().SpansForTrace(tc.TraceHi, tc.TraceLo) {
		t.Errorf("unsampled trace recorded span %q", sp.Name)
	}
}

// TestFlightzEndpoint: the flight recorder's summary and binary dump are
// served over the service mux, and the dump round-trips through the
// decoder with the trace's spans inside.
func TestFlightzEndpoint(t *testing.T) {
	fr := obs.NewFlightRecorder(1<<20, "node-a")
	_, c := newTestServer(t, server.Config{
		NodeID: "node-a", ChunkAccesses: 1000, Flight: fr,
	})
	ctx := context.Background()

	tc := obs.MintTraceContext()
	traced := c.WithTraceContext(tc)
	info, err := traced.CreateSession(ctx, testSession())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := traced.ReplayWorkload(ctx, info.ID, 2000, 0, nil); err != nil {
		t.Fatal(err)
	}

	fz, err := c.Flightz(ctx)
	if err != nil {
		t.Fatalf("flightz: %v", err)
	}
	if !fz.Enabled || fz.Node != "node-a" || fz.Records == 0 || fz.Bytes == 0 {
		t.Fatalf("flightz summary wrong: %+v", fz)
	}
	if fz.CapBytes != 1<<20 {
		t.Fatalf("flightz cap = %d, want %d", fz.CapBytes, 1<<20)
	}

	dump, err := c.FlightDump(ctx)
	if err != nil {
		t.Fatalf("flight dump: %v", err)
	}
	if dump.Node != "node-a" || dump.Records != fr.Records() {
		t.Fatalf("dump header wrong: node=%q records=%d", dump.Node, dump.Records)
	}
	// The distributed trace survives into the postmortem format.
	got := map[string]bool{}
	for _, sp := range dump.Spans {
		if sp.TraceID() == tc.TraceID() {
			got[sp.Name] = true
		}
	}
	for _, want := range []string{"http.create", "http.replay", "replay", "engine-step"} {
		if !got[want] {
			t.Errorf("flight dump missing traced span %q (got %v)", want, got)
		}
	}
}

// TestFlightzWithoutRecorder: dump requests 404 cleanly on daemons run
// without a recorder; the summary reports it disabled.
func TestFlightzWithoutRecorder(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	fz, err := c.Flightz(ctx)
	if err != nil || fz.Enabled {
		t.Fatalf("flightz on bare daemon: %+v, %v", fz, err)
	}
	if _, err := c.FlightDump(ctx); !isAPIStatus(err, http.StatusNotFound) {
		t.Fatalf("dump on bare daemon: %v, want 404", err)
	}
}

func isAPIStatus(err error, code int) bool {
	var ae *client.APIError
	return errors.As(err, &ae) && ae.Status == code
}
