package client

import (
	"bytes"
	"context"
	"net/http"
	"net/url"

	"rmcc/internal/server"
)

// This file is the cluster-facing half of the client: the endpoints
// rmcc-router serves on top of the single-daemon API, plus the two
// node-side calls the router itself needs (statusz polling and creates
// under a router-assigned ID). A Client pointed at a router base URL
// uses the exact same session methods — the router proxies them — so
// loadgen and rmcc-top work unmodified against either.

// Statusz fetches the one-page operational summary of a single daemon.
func (c *Client) Statusz(ctx context.Context) (server.StatuszInfo, error) {
	var info server.StatuszInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/statusz", nil)
	if err != nil {
		return info, err
	}
	return info, c.do(req, &info)
}

// CreateSessionRaw creates a session from a pre-encoded config document,
// optionally under a caller-assigned ID (the router's consistent-hash
// placement path; empty id lets the daemon issue one).
func (c *Client) CreateSessionRaw(ctx context.Context, id string, body []byte) (server.SessionInfo, error) {
	var info server.SessionInfo
	u := c.base + "/v1/sessions"
	if id != "" {
		u += "?id=" + url.QueryEscape(id)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return info, err
	}
	req.Header.Set("Content-Type", "application/json")
	return info, c.do(req, &info)
}

// Cluster fetches the router's view of its node set.
func (c *Client) Cluster(ctx context.Context) (server.ClusterInfo, error) {
	var info server.ClusterInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/cluster", nil)
	if err != nil {
		return info, err
	}
	return info, c.do(req, &info)
}

// DrainNode asks the router to migrate every session off the node
// (identified by host:port) and take it out of the ring.
func (c *Client) DrainNode(ctx context.Context, node string) (server.DrainResult, error) {
	var res server.DrainResult
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/cluster/nodes/"+url.PathEscape(node)+"/drain", nil)
	if err != nil {
		return res, err
	}
	return res, c.do(req, &res)
}

// ActivateNode returns a drained node to active service.
func (c *Client) ActivateNode(ctx context.Context, node string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/cluster/nodes/"+url.PathEscape(node)+"/activate", nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}
