// Package client is a thin Go client for the rmccd daemon (see
// internal/server and docs/SERVICE.md). It is what cmd/rmcc-loadgen
// drives and what tests use to exercise the service end to end.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"rmcc/internal/obs"
	"rmcc/internal/server"
	"rmcc/internal/trace"
	"rmcc/internal/workload"
)

// Client talks to one rmccd instance.
type Client struct {
	base  string
	hc    *http.Client
	trace obs.TraceContext
}

// New builds a client for base, e.g. "http://127.0.0.1:8077". Replays
// have no client-side timeout — they stream for as long as the simulation
// runs; cancel through the context instead. The transport keeps a deep
// idle pool per host: loadgen drives thousands of concurrent sessions at
// one base URL, and the default pool of 2 would churn a new TCP
// connection per request past that.
func New(base string) *Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 1024
	tr.MaxIdleConnsPerHost = 512
	return &Client{base: base, hc: &http.Client{Transport: tr}}
}

// WithTraceContext returns a client whose requests carry tc on the
// X-Rmcc-Trace header, joining every server-side span they cause into
// tc's distributed trace. The copy shares the transport; the zero context
// returns the receiver unchanged. Loadgen mints one context per session
// so a session's whole life — create, replays across a drain migration,
// delete — is one trace.
func (c *Client) WithTraceContext(tc obs.TraceContext) *Client {
	if !tc.Valid() {
		return c
	}
	cc := *c
	cc.trace = tc
	return &cc
}

// TraceContext returns the context set by WithTraceContext (zero when
// none).
func (c *Client) TraceContext() obs.TraceContext { return c.trace }

// send applies the client's trace context and issues the request.
func (c *Client) send(req *http.Request) (*http.Response, error) {
	if c.trace.Valid() {
		req.Header.Set(obs.TraceHeader, c.trace.String())
	}
	return c.hc.Do(req)
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rmccd: HTTP %d: %s", e.Status, e.Msg)
}

// do issues a request and decodes a JSON response into out (unless nil).
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.send(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	var eb server.ErrorBody
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(body, &eb) != nil || eb.Error == "" {
		eb.Error = string(bytes.TrimSpace(body))
	}
	return &APIError{Status: resp.StatusCode, Msg: eb.Error}
}

// CreateSession creates a configured session.
func (c *Client) CreateSession(ctx context.Context, cfg server.SessionConfig) (server.SessionInfo, error) {
	var info server.SessionInfo
	body, err := json.Marshal(cfg)
	if err != nil {
		return info, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		return info, err
	}
	req.Header.Set("Content-Type", "application/json")
	return info, c.do(req, &info)
}

// ListSessions lists live sessions.
func (c *Client) ListSessions(ctx context.Context) ([]server.SessionInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/sessions", nil)
	if err != nil {
		return nil, err
	}
	var out []server.SessionInfo
	return out, c.do(req, &out)
}

// DeleteSession evicts a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/v1/sessions/"+id, nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// Snapshot returns the session's cumulative stats and manifest.
func (c *Client) Snapshot(ctx context.Context, id string) (server.SnapshotResponse, error) {
	var out server.SnapshotResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/sessions/"+id+"/snapshot", nil)
	if err != nil {
		return out, err
	}
	return out, c.do(req, &out)
}

// Checkpoint asks the daemon to cut a durable state checkpoint of the
// session into its -snapshot-dir, returning the refreshed session info.
func (c *Client) Checkpoint(ctx context.Context, id string) (server.SessionInfo, error) {
	var info server.SessionInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/sessions/"+id+"/snapshot", nil)
	if err != nil {
		return info, err
	}
	return info, c.do(req, &info)
}

// CheckpointDownload cuts a state checkpoint and returns the encoded
// blob, feedable to RestoreSession on any daemon.
func (c *Client) CheckpointDownload(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/sessions/"+id+"/snapshot?download=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.send(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// RestoreSession creates a session from a checkpoint blob.
func (c *Client) RestoreSession(ctx context.Context, blob []byte) (server.SessionInfo, error) {
	var info server.SessionInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/sessions/restore", bytes.NewReader(blob))
	if err != nil {
		return info, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	return info, c.do(req, &info)
}

// ReplayWorkload runs the session's bound generator for n accesses
// server-side and returns the rolled-up stats. onProgress, when non-nil,
// receives applied-access counts as the daemon streams progress frames
// (progressEvery accesses apart).
func (c *Client) ReplayWorkload(ctx context.Context, id string, n uint64,
	progressEvery uint64, onProgress func(accesses uint64)) (server.ReplayStats, error) {
	url := fmt.Sprintf("%s/v1/sessions/%s/replay?workload=&accesses=%d", c.base, id, n)
	if progressEvery > 0 {
		url += "&progress=" + strconv.FormatUint(progressEvery, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return server.ReplayStats{}, err
	}
	return c.replay(req, progressEvery > 0, onProgress)
}

// ReplayAccesses streams accesses as NDJSON and returns the rolled-up
// stats.
func (c *Client) ReplayAccesses(ctx context.Context, id string, accs []workload.Access) (server.ReplayStats, error) {
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriterSize(pw, 64<<10)
		var err error
		for _, a := range accs {
			rec := server.AccessRecord{Addr: a.Addr, Write: a.Write, Gap: a.Gap}
			var b []byte
			if b, err = json.Marshal(rec); err != nil {
				break
			}
			if _, err = bw.Write(append(b, '\n')); err != nil {
				break
			}
		}
		if err == nil {
			err = bw.Flush()
		}
		pw.CloseWithError(err)
	}()
	return c.ReplayNDJSON(ctx, id, pr)
}

// ReplayAccessesBinary streams accesses over the binary replay wire
// (length-prefixed RMTR frames) and returns the rolled-up stats. Framing
// happens on a pipe goroutine, so the upload backpressures against the
// daemon's apply loop exactly like the NDJSON path — but at a few bytes
// per access instead of a JSON object.
func (c *Client) ReplayAccessesBinary(ctx context.Context, id string, accs []workload.Access) (server.ReplayStats, error) {
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriterSize(pw, 64<<10)
		fw := trace.NewFrameWriter(bw, trace.DefaultFrameAccesses)
		var err error
		for _, a := range accs {
			if err = fw.Append(a); err != nil {
				break
			}
		}
		if err == nil {
			err = fw.Flush()
		}
		if err == nil {
			err = bw.Flush()
		}
		pw.CloseWithError(err)
	}()
	return c.ReplayBinary(ctx, id, pr)
}

// ReplayTrace streams an RMTR trace file (the rmcc-trace -record format)
// to a session over the binary wire, reframing it on the fly — the trace
// header is stripped and the body re-chunked into length-prefixed frames
// without re-encoding any access.
func (c *Client) ReplayTrace(ctx context.Context, id string, tr io.Reader) (server.ReplayStats, error) {
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriterSize(pw, 64<<10)
		_, err := trace.Reframe(tr, bw, trace.DefaultFrameAccesses)
		if err == nil {
			err = bw.Flush()
		}
		pw.CloseWithError(err)
	}()
	return c.ReplayBinary(ctx, id, pr)
}

// ReplayBinary streams a raw binary replay body (already framed —
// trace.FrameWriter output) with the binary content type.
func (c *Client) ReplayBinary(ctx context.Context, id string, body io.Reader) (server.ReplayStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/sessions/"+id+"/replay", body)
	if err != nil {
		return server.ReplayStats{}, err
	}
	req.Header.Set("Content-Type", server.ContentTypeBinaryReplay)
	return c.replay(req, false, nil)
}

// ReplayNDJSON streams a raw NDJSON body (one AccessRecord per line).
func (c *Client) ReplayNDJSON(ctx context.Context, id string, body io.Reader) (server.ReplayStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/sessions/"+id+"/replay", body)
	if err != nil {
		return server.ReplayStats{}, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	return c.replay(req, false, nil)
}

// replay runs a replay request, consuming either the single JSON document
// or the NDJSON frame stream.
func (c *Client) replay(req *http.Request, streaming bool, onProgress func(uint64)) (server.ReplayStats, error) {
	var stats server.ReplayStats
	resp, err := c.send(req)
	if err != nil {
		return stats, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return stats, decodeError(resp)
	}
	if !streaming {
		return stats, json.NewDecoder(resp.Body).Decode(&stats)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	sawResult := false
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var f server.ReplayFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return stats, fmt.Errorf("rmccd: bad frame: %w", err)
		}
		switch f.Type {
		case "progress":
			if onProgress != nil {
				onProgress(f.Accesses)
			}
		case "result":
			if f.Stats != nil {
				stats = *f.Stats
			}
			sawResult = true
		case "error":
			return stats, &APIError{Status: resp.StatusCode, Msg: f.Error}
		default:
			return stats, fmt.Errorf("rmccd: unknown frame type %q", f.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	if !sawResult {
		return stats, fmt.Errorf("rmccd: stream ended without a result frame")
	}
	return stats, nil
}

// Health checks /healthz; nil means serving (not draining).
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// WaitHealthy polls /healthz until it succeeds or ctx expires.
func (c *Client) WaitHealthy(ctx context.Context) error {
	for {
		if err := c.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("rmccd: never became healthy: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// RawMetrics scrapes /metrics (Prometheus text).
func (c *Client) RawMetrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.send(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// Tracez fetches /debug/tracez. With traceID set it returns the node's
// full span tree for that trace (sorted by start, span ID); otherwise the
// slowest-spans view limited to n (n <= 0 uses the server default).
func (c *Client) Tracez(ctx context.Context, traceID string, n int) (server.TracezResponse, error) {
	var resp server.TracezResponse
	url := c.base + "/debug/tracez"
	switch {
	case traceID != "":
		url += "?trace=" + traceID
	case n > 0:
		url += "?n=" + strconv.Itoa(n)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return resp, err
	}
	return resp, c.do(req, &resp)
}

// Flightz fetches the /debug/flightz summary.
func (c *Client) Flightz(ctx context.Context) (server.FlightzInfo, error) {
	var info server.FlightzInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/debug/flightz", nil)
	if err != nil {
		return info, err
	}
	return info, c.do(req, &info)
}

// FlightDump fetches and decodes the node's flight-recorder dump
// (/debug/flightz?dump=1).
func (c *Client) FlightDump(ctx context.Context) (*obs.FlightDump, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/debug/flightz?dump=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.send(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return obs.ReadFlightDump(resp.Body)
}
