package server

import (
	"context"
	"hash/fnv"
	"sync"
	"time"
)

// jobTimes carries the worker-side timestamps of one job: when the worker
// dequeued it and when fn returned. The submitter derives queue-wait
// (start - submit) and run time (end - start) from them.
type jobTimes struct {
	startNS, endNS int64
}

// shardJob is one unit of serialized simulator work: run executes on the
// owning shard's goroutine; done receives the worker timestamps when it
// returns. The channel is buffered so the worker never blocks on a
// submitter.
type shardJob struct {
	run  func()
	done chan jobTimes
}

// shardPool is a fixed set of single-owner worker goroutines. Every
// session is pinned to one shard (FNV hash of its ID), and all access to
// its engine happens inside that shard's loop — the serialization that
// makes non-thread-safe engines servable. Queues are bounded: a full
// queue blocks the submitting HTTP handler, which propagates as TCP
// backpressure to streaming clients.
type shardPool struct {
	queues []chan shardJob
	wg     sync.WaitGroup

	closeOnce sync.Once
}

func newShardPool(shards, depth int) *shardPool {
	p := &shardPool{queues: make([]chan shardJob, shards)}
	for i := range p.queues {
		q := make(chan shardJob, depth)
		p.queues[i] = q
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range q {
				start := time.Now().UnixNano()
				job.run()
				job.done <- jobTimes{startNS: start, endNS: time.Now().UnixNano()}
			}
		}()
	}
	return p
}

// shardFor pins a session ID to a shard.
func (p *shardPool) shardFor(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(p.queues)))
}

// queueLen reports a shard's current queue depth (metrics).
func (p *shardPool) queueLen(shard int) int { return len(p.queues[shard]) }

// do runs fn on the session's shard goroutine and waits for it to finish.
// Enqueueing respects ctx (backpressure wait is cancellable); once
// enqueued, do always waits for completion — fn itself is responsible for
// returning promptly when ctx is cancelled, so results are never read
// while the shard still runs.
func (p *shardPool) do(ctx context.Context, shard int, fn func()) error {
	_, err := p.doTimed(ctx, shard, fn)
	return err
}

// doTimed is do plus timing: it returns when the job was submitted, when
// the worker dequeued it, and when fn returned (Unix nanos) — the raw
// material for queue-wait and engine-step spans. Allocation profile is
// identical to the untimed path (one closure escape + one channel); the
// timestamps ride the completion channel instead of a second side
// channel.
func (p *shardPool) doTimed(ctx context.Context, shard int, fn func()) (jobTimes, error) {
	job := shardJob{run: fn, done: make(chan jobTimes, 1)}
	select {
	case p.queues[shard] <- job:
	case <-ctx.Done():
		return jobTimes{}, ctx.Err()
	}
	return <-job.done, nil
}

// close shuts the queues and waits for the workers to drain. Callers must
// guarantee no further do calls.
func (p *shardPool) close() {
	p.closeOnce.Do(func() {
		for _, q := range p.queues {
			close(q)
		}
	})
	p.wg.Wait()
}
