package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"rmcc/internal/obs"
)

// spanCtxKey carries the request's local trace context — the distributed
// trace ID (if any) plus the request span's ID as SpanID — so
// handler-level spans (replay, chunk stages) can parent under it and
// inherit the trace.
type spanCtxKey struct{}

// parentSpan returns the enclosing request span ID (0 when uninstrumented,
// e.g. direct handler calls in tests).
func parentSpan(ctx context.Context) uint64 {
	return traceCtx(ctx).SpanID
}

// traceCtx returns the request's local trace context (zero when
// uninstrumented or untraced).
func traceCtx(ctx context.Context) obs.TraceContext {
	tc, _ := ctx.Value(spanCtxKey{}).(obs.TraceContext)
	return tc
}

// instrument wraps a handler with per-endpoint SLO accounting: a request
// span (ring + /debug/tracez), a latency histogram, and outcome-class
// counters. healthz and metrics are counted but not span-traced — poller
// traffic would drown the span ring in no-ops.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	const durHelp = "request latency in microseconds, by endpoint"
	const cntHelp = "requests served, by endpoint and status class"
	hist := s.reg.Histogram("rmccd_request_duration_us", durHelp,
		obs.Pow2Buckets(1, 24), obs.L("endpoint", endpoint))
	classes := map[string]*obs.Counter{}
	for _, class := range []string{"2xx", "4xx", "5xx"} {
		classes[class] = s.reg.Counter("rmccd_requests_total", cntHelp,
			obs.L("class", class), obs.L("endpoint", endpoint))
	}
	traced := endpoint != "healthz" && endpoint != "metrics" &&
		endpoint != "statusz" && endpoint != "tracez" && endpoint != "flightz"
	return func(w http.ResponseWriter, r *http.Request) {
		tc, err := parseTraceHeader(r)
		if err != nil {
			// A malformed context is a client error, never a 5xx: reject
			// before any session work so tracing garbage can't propagate.
			writeError(w, http.StatusBadRequest, err.Error())
			if c := classes["4xx"]; c != nil {
				c.Inc()
			}
			return
		}
		var span obs.Span
		if traced {
			span = s.spans.StartRemote("http."+endpoint, r.URL.Path, tc)
			// Handlers see the trace rebased onto the request span: child
			// spans parent under SpanID and carry the same trace ID.
			tc.SpanID = span.ID()
			r = r.WithContext(context.WithValue(r.Context(), spanCtxKey{}, tc))
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		hist.Observe(uint64(time.Since(start).Microseconds()))
		if c := classes[classOf(sw.code)]; c != nil {
			c.Inc()
		}
		if traced {
			span.End()
		}
	}
}

// parseTraceHeader extracts the request's X-Rmcc-Trace context. Oversized
// values are rejected on length alone so a hostile header never reaches
// the hex decoder.
func parseTraceHeader(r *http.Request) (obs.TraceContext, error) {
	v := r.Header.Get(obs.TraceHeader)
	if len(v) > obs.TraceHeaderLen {
		return obs.TraceContext{}, fmt.Errorf("%s header too long (%d bytes)", obs.TraceHeader, len(v))
	}
	tc, err := obs.ParseTraceContext(v)
	if err != nil {
		return obs.TraceContext{}, fmt.Errorf("%s: %v", obs.TraceHeader, err)
	}
	return tc, nil
}

// classOf buckets a status code into the counter classes.
func classOf(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	default:
		return "2xx"
	}
}

// statusWriter captures the response status for outcome counters while
// passing Flush through — replay progress streaming depends on the
// Flusher check inside replayWriter still finding one.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
