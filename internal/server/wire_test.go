package server_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"rmcc/internal/server"
	"rmcc/internal/trace"
	"rmcc/internal/workload"
)

// captureAccesses records the first n accesses of a built-in workload
// stream.
func captureAccesses(t *testing.T, name string, seed uint64, n int) ([]workload.Access, uint64) {
	t.Helper()
	w, ok := workload.ByName(workload.SizeTest, seed, name)
	if !ok {
		t.Fatalf("workload %s unavailable", name)
	}
	accs := make([]workload.Access, 0, n)
	w.Run(seed, func(a workload.Access) bool {
		accs = append(accs, a)
		return len(accs) < n
	})
	return accs, w.FootprintBytes()
}

// TestBinaryMatchesNDJSONReplay is the cross-wire acceptance gate: the
// same access stream uploaded over the NDJSON shim and over the binary
// frame wire must produce bit-identical ReplayStats (session identity and
// wall time aside). The two wires share one apply loop, so any divergence
// would mean the frame codec corrupted the stream.
func TestBinaryMatchesNDJSONReplay(t *testing.T) {
	const n = 20_000
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	accs, footprint := captureAccesses(t, "canneal", 1, n)

	mk := func() string {
		info, err := c.CreateSession(ctx, server.SessionConfig{
			Mode: "rmcc", Scheme: "morphable", Seed: 1,
			FootprintBytes: footprint, Label: "wire",
		})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		return info.ID
	}
	ndjsonID, binaryID := mk(), mk()

	viaNDJSON, err := c.ReplayAccesses(ctx, ndjsonID, accs)
	if err != nil {
		t.Fatalf("ndjson replay: %v", err)
	}
	viaBinary, err := c.ReplayAccessesBinary(ctx, binaryID, accs)
	if err != nil {
		t.Fatalf("binary replay: %v", err)
	}

	// Neutralize per-request identity, then require exact equality —
	// engine counters, LLC misses, rates, everything.
	viaNDJSON.SessionID, viaBinary.SessionID = "", ""
	viaNDJSON.WallSeconds, viaBinary.WallSeconds = 0, 0
	if viaNDJSON != viaBinary {
		t.Fatalf("wires diverge:\nndjson: %+v\nbinary: %+v", viaNDJSON, viaBinary)
	}
	if viaBinary.Accesses != n {
		t.Fatalf("accesses = %d, want %d", viaBinary.Accesses, n)
	}
}

// TestReplayTrace drives the full file path: record an RMTR trace,
// stream it with ReplayTrace (client-side reframing), and require the
// same stats as the equivalent NDJSON upload.
func TestReplayTrace(t *testing.T) {
	const n = 5_000
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	accs, footprint := captureAccesses(t, "mcf", 3, n)

	var rmtr bytes.Buffer
	tw, err := trace.NewWriter(&rmtr, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if err := tw.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	mk := func() string {
		info, err := c.CreateSession(ctx, server.SessionConfig{
			Mode: "rmcc", Scheme: "morphable", Seed: 3,
			FootprintBytes: footprint, Label: "trace",
		})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		return info.ID
	}
	viaTrace, err := c.ReplayTrace(ctx, mk(), bytes.NewReader(rmtr.Bytes()))
	if err != nil {
		t.Fatalf("trace replay: %v", err)
	}
	viaNDJSON, err := c.ReplayAccesses(ctx, mk(), accs)
	if err != nil {
		t.Fatalf("ndjson replay: %v", err)
	}
	viaTrace.SessionID, viaNDJSON.SessionID = "", ""
	viaTrace.WallSeconds, viaNDJSON.WallSeconds = 0, 0
	if viaTrace != viaNDJSON {
		t.Fatalf("trace wire diverges:\ntrace:  %+v\nndjson: %+v", viaTrace, viaNDJSON)
	}
}

// TestBinaryReplayErrors: malformed frame streams must surface as 400s
// (typed input errors), and the daemon must stay healthy afterwards.
func TestBinaryReplayErrors(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	info, err := c.CreateSession(ctx, server.SessionConfig{FootprintBytes: 1 << 20})
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	// A hostile length prefix: 256 MiB declared payload, rejected from
	// the 8 header bytes alone.
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge[0:4], 256<<20)
	binary.LittleEndian.PutUint32(huge[4:8], 1)
	if _, err := c.ReplayBinary(ctx, info.ID, bytes.NewReader(huge)); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("oversized frame: %v, want 400", err)
	}

	// A truncated frame: header promises more payload than the body holds.
	trunc := make([]byte, 8, 12)
	binary.LittleEndian.PutUint32(trunc[0:4], 64)
	binary.LittleEndian.PutUint32(trunc[4:8], 4)
	trunc = append(trunc, 0x00, 0x02, 0x01, 0x02)
	if _, err := c.ReplayBinary(ctx, info.ID, bytes.NewReader(trunc)); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("truncated frame: %v, want 400", err)
	}

	// An NDJSON body mislabeled as binary fails frame decoding, not the
	// session.
	if _, err := c.ReplayBinary(ctx, info.ID, strings.NewReader(`{"addr":1}`+"\n")); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("mislabeled body: %v, want 400", err)
	}

	if err := c.Health(ctx); err != nil {
		t.Fatalf("daemon unhealthy after bad frames: %v", err)
	}
}

// TestWireMetrics checks the per-wire accounting: request counters for
// all three sources and body-byte counters for the two body wires.
func TestWireMetrics(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	accs, footprint := captureAccesses(t, "canneal", 1, 1_000)

	info, err := c.CreateSession(ctx, server.SessionConfig{
		Mode: "rmcc", Seed: 1, FootprintBytes: footprint, Label: "wire",
	})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.ReplayAccessesBinary(ctx, info.ID, accs); err != nil {
		t.Fatalf("binary replay: %v", err)
	}
	if _, err := c.ReplayAccesses(ctx, info.ID, accs); err != nil {
		t.Fatalf("ndjson replay: %v", err)
	}

	text, err := c.RawMetrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`rmccd_replay_requests_total{wire="binary"} 1`,
		`rmccd_replay_requests_total{wire="ndjson"} 1`,
		`rmccd_replay_bytes_total{wire="binary"}`,
		`rmccd_replay_bytes_total{wire="ndjson"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The whole point of the binary wire: strictly fewer bytes than the
	// JSON rendering of the same stream. Both counters must be non-zero
	// and binary < ndjson.
	bin := metricValue(t, text, `rmccd_replay_bytes_total{wire="binary"}`)
	nd := metricValue(t, text, `rmccd_replay_bytes_total{wire="ndjson"}`)
	if bin <= 0 || nd <= 0 || bin >= nd {
		t.Errorf("replay bytes: binary=%v ndjson=%v, want 0 < binary < ndjson", bin, nd)
	}
}

func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found", series)
	return 0
}
