package server

import (
	"bytes"
	"math"
	"sync/atomic"
	"time"

	"rmcc/internal/obs"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/sim"
	"rmcc/internal/workload"
)

// session is one client-visible simulation: a Lifetime stepper (engine +
// cache hierarchy + TLBs + page mapper) pinned to a shard. The lt and
// stream fields are touched only on the shard goroutine or while the
// session is held exclusively by a replay; everything else is immutable
// or atomic.
type session struct {
	id      string
	shard   int
	name    string
	mode    string
	scheme  string
	seed    uint64
	created time.Time

	cfgHash   string
	footprint uint64
	// sc is the original create-request config, carried verbatim into
	// checkpoints so recovery rebuilds the identical session.
	sc SessionConfig

	lt *sim.Lifetime
	w  workload.Workload // bound generator; nil for NDJSON-only sessions
	// stream is the persistent pull side of the bound generator, created
	// on first workload replay so successive replays continue one
	// deterministic stream. Closed at eviction.
	stream *sim.AccessStream
	// pulled counts accesses drawn from the bound generator's logical
	// stream across incarnations (shard-owned). It is the checkpointed
	// resume cursor: restore seeds it from the snapshot so it is valid
	// even before the stream is lazily rebuilt, and the stream — a pure
	// function of (workload, seed) — discards skipPulled accesses before
	// continuing.
	pulled uint64
	// skipPulled is the restored cursor a lazily created stream must skip
	// past (set once at restore, read on the shard goroutine).
	skipPulled uint64

	// ckptBuf is the reusable checkpoint encode buffer, touched only while
	// the replay lease is held (checkpoints take the lease like replays).
	ckptBuf bytes.Buffer
	// Checkpoint mirrors for lock-free listings: unix nanos of the last
	// durable checkpoint, its encoded size, and the access count it
	// captured (so the periodic checkpointer skips idle sessions).
	lastCkptNS       atomic.Int64
	lastCkptBytes    atomic.Uint64
	lastCkptAccesses atomic.Uint64

	// lg carries the session's bound log fields (session, shard, workload,
	// seed). Nil when the server has no logger attached.
	lg *obs.Logger
	// sampler rate-limits per-chunk debug lines so a debug-level daemon
	// under a large replay does not write one line per 4096 accesses.
	sampler *obs.LogSampler
	// chunkHist tracks per-chunk engine-step latency in microseconds. It
	// is a standalone histogram (one per session would flood the registry)
	// surfaced as p50/p99 in SessionInfo listings for rmcc-top.
	chunkHist *obs.Histogram

	lastUsed atomic.Int64 // unix nanos
	// accessesDone mirrors lt.Accesses() for lock-free listings; updated
	// after each shard-applied chunk.
	accessesDone atomic.Uint64
	replaying    atomic.Bool // exclusive replay/snapshot-modifying lease
	evicted      atomic.Bool

	// Live engine-rate mirrors (float64 bits), refreshed on the shard
	// goroutine after each applied chunk so listings never touch the
	// engine off-shard.
	rCtrMiss atomic.Uint64
	rMemoHit atomic.Uint64
	rAccel   atomic.Uint64
}

func (s *session) touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

// storeRates refreshes the lock-free rate mirrors from an engine stats
// copy taken on the shard goroutine.
func (s *session) storeRates(st engine.Stats) {
	s.rCtrMiss.Store(math.Float64bits(st.CtrMissRate()))
	s.rMemoHit.Store(math.Float64bits(st.MemoHitRateOnMisses()))
	s.rAccel.Store(math.Float64bits(st.AcceleratedRate()))
}

// acquire takes the exclusive replay lease, refusing sessions that are
// busy or already evicted. The CAS-then-check-other-flag ordering pairs
// with evict's: when the two race, at least one side observes the other
// and backs off.
func (s *session) acquire() (ok, gone bool) {
	if !s.replaying.CompareAndSwap(false, true) {
		return false, false
	}
	if s.evicted.Load() {
		s.replaying.Store(false)
		return false, true
	}
	return true, false
}

func (s *session) release() { s.replaying.Store(false) }

// info renders the listing view.
func (s *session) info(accesses uint64, now time.Time) SessionInfo {
	wl := ""
	if s.w != nil {
		wl = s.w.Name()
	}
	var lastCkpt string
	var ckptAge float64
	if ns := s.lastCkptNS.Load(); ns != 0 {
		lastCkpt = time.Unix(0, ns).UTC().Format(time.RFC3339)
		ckptAge = now.Sub(time.Unix(0, ns)).Seconds()
	}
	return SessionInfo{
		ID:                  s.id,
		Shard:               s.shard,
		Name:                s.name,
		Workload:            wl,
		Mode:                s.mode,
		Scheme:              s.scheme,
		Seed:                s.seed,
		FootprintBytes:      s.footprint,
		Created:             s.created.UTC().Format(time.RFC3339),
		Accesses:            accesses,
		Replaying:           s.replaying.Load(),
		ConfigHash:          s.cfgHash,
		CtrMissRate:         math.Float64frombits(s.rCtrMiss.Load()),
		MemoHitRateOnMisses: math.Float64frombits(s.rMemoHit.Load()),
		AcceleratedRate:     math.Float64frombits(s.rAccel.Load()),
		ReplayP50us:         s.chunkHist.Quantile(0.5),
		ReplayP99us:         s.chunkHist.Quantile(0.99),
		LastCheckpoint:      lastCkpt,
		CheckpointAgeSecs:   ckptAge,
		CheckpointBytes:     s.lastCkptBytes.Load(),
	}
}
