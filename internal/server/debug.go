package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"time"

	"rmcc/internal/buildinfo"
	"rmcc/internal/obs"
)

// DebugHandler returns the daemon's debug surface — /statusz,
// /debug/tracez, and the net/http/pprof family — as a separate handler so
// cmd/rmccd can bind it to its own (typically loopback-only) listener,
// gated by -debug-addr. None of it is mounted on the service mux: the
// production API surface stays closed by default.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /debug/tracez", s.handleTracez)
	// Explicit pprof registration; pprof.Index serves the named profiles
	// (heap, goroutine, ...) under /debug/pprof/<name> itself.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StatuszInfo is the GET /statusz body: a one-page operational summary of
// the daemon.
type StatuszInfo struct {
	Version       string  `json:"version"`
	Revision      string  `json:"revision"`
	GoVersion     string  `json:"go_version"`
	StartedAt     string  `json:"started_at"` // RFC 3339 UTC
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	Shards        int   `json:"shards"`
	QueueDepths   []int `json:"queue_depths"`
	ChunkAccesses int   `json:"chunk_accesses"`

	Sessions    int `json:"sessions"`
	MaxSessions int `json:"max_sessions"`
	// ShardOccupancy counts live sessions per shard.
	ShardOccupancy []int `json:"shard_occupancy"`

	SpansTotal    uint64 `json:"spans_total"`
	LogLines      uint64 `json:"log_lines"`
	NumGoroutines int    `json:"num_goroutines"`

	// Durable-checkpoint state (zero/empty without -snapshot-dir).
	SnapshotDir       string `json:"snapshot_dir,omitempty"`
	SnapshotsTotal    uint64 `json:"snapshots_total"`
	SnapshotFailures  uint64 `json:"snapshot_failures"`
	SessionsRecovered uint64 `json:"sessions_recovered"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	now := s.cfg.Now()
	info := StatuszInfo{
		Version:       buildinfo.Version(),
		Revision:      buildinfo.GitSHA(),
		GoVersion:     runtime.Version(),
		StartedAt:     s.started.UTC().Format(time.RFC3339),
		UptimeSeconds: now.Sub(s.started).Seconds(),
		Draining:      s.draining.Load(),
		Shards:        s.cfg.Shards,
		QueueDepths:   make([]int, s.cfg.Shards),
		ChunkAccesses: s.cfg.ChunkAccesses,
		MaxSessions:   s.cfg.MaxSessions,
		SpansTotal:    s.spans.Total(),
		LogLines:      s.log.Lines(),
		NumGoroutines: runtime.NumGoroutine(),

		SnapshotDir:       s.cfg.SnapshotDir,
		SnapshotsTotal:    s.mSnapshots.Value(),
		SnapshotFailures:  s.mSnapshotFailWrite.Value() + s.mSnapshotFailLoad.Value(),
		SessionsRecovered: s.mSessionsRecovered.Value(),
	}
	for i := range info.QueueDepths {
		info.QueueDepths[i] = s.pool.queueLen(i)
	}
	occ := make([]int, s.cfg.Shards)
	s.mu.Lock()
	info.Sessions = len(s.sessions)
	for _, sess := range s.sessions {
		occ[sess.shard]++
	}
	s.mu.Unlock()
	info.ShardOccupancy = occ
	writeJSON(w, http.StatusOK, info)
}

// TracezSpan is one span in the GET /debug/tracez body, with durations
// rendered in microseconds for human and rmcc-top consumption.
type TracezSpan struct {
	ID         uint64 `json:"id"`
	Parent     uint64 `json:"parent,omitempty"`
	Name       string `json:"name"`
	Detail     string `json:"detail,omitempty"`
	Start      string `json:"start"` // RFC 3339 UTC, nanosecond precision
	DurationUS uint64 `json:"duration_us"`
}

// TracezResponse is the GET /debug/tracez body.
type TracezResponse struct {
	TotalSpans uint64       `json:"total_spans"`
	Retained   int          `json:"retained"`
	Slowest    []TracezSpan `json:"slowest"`
}

// handleTracez reports the slowest retained spans (?n=, default 25) —
// the live "where did the time go" view over recent requests and chunks.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	n := 25
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := parseUint(raw)
		if err != nil || v == 0 || v > 10_000 {
			writeError(w, http.StatusBadRequest, "n must be in [1, 10000]")
			return
		}
		n = int(v)
	}
	slow := s.spans.Slowest(n)
	resp := TracezResponse{
		TotalSpans: s.spans.Total(),
		Retained:   s.spans.Len(),
		Slowest:    make([]TracezSpan, 0, len(slow)),
	}
	for _, sp := range slow {
		resp.Slowest = append(resp.Slowest, TracezSpan{
			ID:         sp.ID,
			Parent:     sp.Parent,
			Name:       sp.Name,
			Detail:     sp.Detail,
			Start:      time.Unix(0, sp.Start).UTC().Format(time.RFC3339Nano),
			DurationUS: uint64(sp.Duration) / 1e3,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// Spans exposes the daemon's span tracer (tests, embedding).
func (s *Server) Spans() *obs.SpanTracer { return s.spans }

// SlowestSpanNames is a test helper: the distinct names among the n
// slowest spans, sorted.
func (s *Server) SlowestSpanNames(n int) []string {
	seen := map[string]bool{}
	for _, sp := range s.spans.Slowest(n) {
		seen[sp.Name] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
