package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"time"

	"rmcc/internal/buildinfo"
	"rmcc/internal/obs"
)

// DebugHandler returns the daemon's debug surface — /statusz,
// /debug/tracez, and the net/http/pprof family — as a separate handler so
// cmd/rmccd can bind it to its own (typically loopback-only) listener,
// gated by -debug-addr. None of it is mounted on the service mux: the
// production API surface stays closed by default.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /debug/tracez", s.handleTracez)
	mux.HandleFunc("GET /debug/flightz", s.handleFlightz)
	// Explicit pprof registration; pprof.Index serves the named profiles
	// (heap, goroutine, ...) under /debug/pprof/<name> itself.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StatuszInfo is the GET /statusz body: a one-page operational summary of
// the daemon.
type StatuszInfo struct {
	Version       string  `json:"version"`
	Revision      string  `json:"revision"`
	GoVersion     string  `json:"go_version"`
	StartedAt     string  `json:"started_at"` // RFC 3339 UTC
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	Shards        int   `json:"shards"`
	QueueDepths   []int `json:"queue_depths"`
	ChunkAccesses int   `json:"chunk_accesses"`

	Sessions    int `json:"sessions"`
	MaxSessions int `json:"max_sessions"`
	// ShardOccupancy counts live sessions per shard.
	ShardOccupancy []int `json:"shard_occupancy"`

	SpansTotal uint64 `json:"spans_total"`
	// SpansDropped counts spans overwritten in the ring before any export
	// read them: nonzero means /debug/tracez windows are truncated.
	SpansDropped  uint64 `json:"spans_dropped"`
	LogLines      uint64 `json:"log_lines"`
	NumGoroutines int    `json:"num_goroutines"`

	// Flight-recorder state (zero without a recorder attached).
	FlightRecords uint64 `json:"flight_records,omitempty"`
	FlightDropped uint64 `json:"flight_dropped,omitempty"`
	FlightBytes   int    `json:"flight_bytes,omitempty"`

	// Durable-checkpoint state (zero/empty without -snapshot-dir).
	SnapshotDir       string `json:"snapshot_dir,omitempty"`
	SnapshotsTotal    uint64 `json:"snapshots_total"`
	SnapshotFailures  uint64 `json:"snapshot_failures"`
	SessionsRecovered uint64 `json:"sessions_recovered"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	now := s.cfg.Now()
	info := StatuszInfo{
		Version:       buildinfo.Version(),
		Revision:      buildinfo.GitSHA(),
		GoVersion:     runtime.Version(),
		StartedAt:     s.started.UTC().Format(time.RFC3339),
		UptimeSeconds: now.Sub(s.started).Seconds(),
		Draining:      s.draining.Load(),
		Shards:        s.cfg.Shards,
		QueueDepths:   make([]int, s.cfg.Shards),
		ChunkAccesses: s.cfg.ChunkAccesses,
		MaxSessions:   s.cfg.MaxSessions,
		SpansTotal:    s.spans.Total(),
		SpansDropped:  s.spans.Dropped(),
		LogLines:      s.log.Lines(),
		NumGoroutines: runtime.NumGoroutine(),

		FlightRecords: s.cfg.Flight.Records(),
		FlightDropped: s.cfg.Flight.Dropped(),
		FlightBytes:   s.cfg.Flight.Bytes(),

		SnapshotDir:       s.cfg.SnapshotDir,
		SnapshotsTotal:    s.mSnapshots.Value(),
		SnapshotFailures:  s.mSnapshotFailWrite.Value() + s.mSnapshotFailLoad.Value(),
		SessionsRecovered: s.mSessionsRecovered.Value(),
	}
	for i := range info.QueueDepths {
		info.QueueDepths[i] = s.pool.queueLen(i)
	}
	occ := make([]int, s.cfg.Shards)
	s.mu.Lock()
	info.Sessions = len(s.sessions)
	for _, sess := range s.sessions {
		occ[sess.shard]++
	}
	s.mu.Unlock()
	info.ShardOccupancy = occ
	writeJSON(w, http.StatusOK, info)
}

// TracezSpan is one span in the GET /debug/tracez body, with durations
// rendered in microseconds for human and rmcc-top consumption.
type TracezSpan struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Trace is the 32-hex-digit distributed trace ID ("" when untraced).
	Trace string `json:"trace,omitempty"`
	// Remote is the propagated parent span ID from the upstream process
	// (its ordinal space, not this node's), 0 when none.
	Remote uint64 `json:"remote,omitempty"`
	// Node identifies the process that recorded the span; the router
	// stamps its own rows "router" and fan-out rows keep the node's own
	// stamp, so merged trees are attributable and diffable.
	Node       string `json:"node,omitempty"`
	Name       string `json:"name"`
	Detail     string `json:"detail,omitempty"`
	Start      string `json:"start"` // RFC 3339 UTC, nanosecond precision
	StartNS    int64  `json:"start_ns"`
	DurationUS uint64 `json:"duration_us"`
}

// TracezResponse is the GET /debug/tracez body. Without ?trace= it is the
// slowest-spans view (Slowest); with ?trace=<32-hex id> it is the full
// tree for that trace (Trace + Spans, sorted by (start, span ID)).
type TracezResponse struct {
	Node         string       `json:"node,omitempty"`
	TotalSpans   uint64       `json:"total_spans"`
	Retained     int          `json:"retained"`
	SpansDropped uint64       `json:"spans_dropped"`
	Trace        string       `json:"trace,omitempty"`
	Spans        []TracezSpan `json:"spans,omitempty"`
	Slowest      []TracezSpan `json:"slowest,omitempty"`
}

// TracezSpanOf renders one span record with a node stamp. Exported for
// the router, which merges node rows with its own into one cluster-wide
// tracez tree.
func TracezSpanOf(sp obs.SpanRecord, node string) TracezSpan { return tracezSpan(sp, node) }

// tracezSpan renders one span record with the node stamp.
func tracezSpan(sp obs.SpanRecord, node string) TracezSpan {
	return TracezSpan{
		ID:         sp.ID,
		Parent:     sp.Parent,
		Trace:      sp.TraceID(),
		Remote:     sp.Remote,
		Node:       node,
		Name:       sp.Name,
		Detail:     sp.Detail,
		Start:      time.Unix(0, sp.Start).UTC().Format(time.RFC3339Nano),
		StartNS:    sp.Start,
		DurationUS: uint64(sp.Duration) / 1e3,
	}
}

// handleTracez reports the slowest retained spans (?n=, default 25) —
// the live "where did the time go" view over recent requests and chunks —
// or, with ?trace=<32-hex id>, every retained span of one distributed
// trace sorted by (start, span ID): the single-node slice of the
// cluster-wide tree the router assembles.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	if trace := r.URL.Query().Get("trace"); trace != "" {
		hi, lo, err := obs.ParseTraceID(trace)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		spans := s.spans.SpansForTrace(hi, lo)
		resp := TracezResponse{
			Node:         s.cfg.NodeID,
			TotalSpans:   s.spans.Total(),
			Retained:     s.spans.Len(),
			SpansDropped: s.spans.Dropped(),
			Trace:        trace,
			Spans:        make([]TracezSpan, 0, len(spans)),
		}
		for _, sp := range spans {
			resp.Spans = append(resp.Spans, tracezSpan(sp, s.cfg.NodeID))
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	n := 25
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := parseUint(raw)
		if err != nil || v == 0 || v > 10_000 {
			writeError(w, http.StatusBadRequest, "n must be in [1, 10000]")
			return
		}
		n = int(v)
	}
	slow := s.spans.Slowest(n)
	resp := TracezResponse{
		Node:         s.cfg.NodeID,
		TotalSpans:   s.spans.Total(),
		Retained:     s.spans.Len(),
		SpansDropped: s.spans.Dropped(),
		Slowest:      make([]TracezSpan, 0, len(slow)),
	}
	for _, sp := range slow {
		resp.Slowest = append(resp.Slowest, tracezSpan(sp, s.cfg.NodeID))
	}
	writeJSON(w, http.StatusOK, resp)
}

// FlightzInfo is the GET /debug/flightz summary body.
type FlightzInfo struct {
	Node     string `json:"node"`
	Enabled  bool   `json:"enabled"`
	Records  uint64 `json:"records"`
	Dropped  uint64 `json:"dropped"`
	Bytes    int    `json:"bytes"`
	CapBytes int    `json:"cap_bytes"`
}

// handleFlightz summarizes the flight recorder; ?dump=1 streams the full
// binary dump (obs.ReadFlightDump decodes it, `rmcc-top -flight -` renders
// it). 404 when the daemon runs without a recorder.
func (s *Server) handleFlightz(w http.ResponseWriter, r *http.Request) {
	fr := s.cfg.Flight
	if r.URL.Query().Get("dump") == "1" {
		if fr == nil {
			writeError(w, http.StatusNotFound, "no flight recorder attached")
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_ = fr.Dump(w)
		return
	}
	writeJSON(w, http.StatusOK, FlightzInfo{
		Node:     s.cfg.NodeID,
		Enabled:  fr != nil,
		Records:  fr.Records(),
		Dropped:  fr.Dropped(),
		Bytes:    fr.Bytes(),
		CapBytes: fr.Cap(),
	})
}

// Spans exposes the daemon's span tracer (tests, embedding).
func (s *Server) Spans() *obs.SpanTracer { return s.spans }

// SlowestSpanNames is a test helper: the distinct names among the n
// slowest spans, sorted.
func (s *Server) SlowestSpanNames(n int) []string {
	seen := map[string]bool{}
	for _, sp := range s.spans.Slowest(n) {
		seen[sp.Name] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
