package server

import (
	"fmt"
	"testing"
)

// decodeAccessCorpus covers the accept and reject space of the
// hand-rolled scanner: every accepted line must decode identically under
// the retained encoding/json oracle (the "fast ⊆ std" property), and the
// rejects document where the scanner is deliberately stricter.
var decodeAccessCorpus = []string{
	`{"addr":4096}`,
	`{"addr":4096,"write":true,"gap":7}`,
	`{"addr":18446744073709551615,"write":true,"gap":255}`,
	`{"addr":0,"write":false,"gap":0}`,
	`{}`,
	`null`,
	` { "addr" : 12 , "gap" : 3 } `,
	`{"addr":null,"write":null,"gap":null}`,
	`{"addr":1,"addr":2}`, // duplicate keys: last wins, both decoders
	`{"write":true}`,
	"\t{\"gap\":9}\r\n",
	// Rejected by both decoders:
	``,
	`{"addr":-1}`,
	`{"addr":1.5}`,
	`{"addr":1e3}`,
	`{"gap":256}`,
	`{"addr":18446744073709551616}`, // uint64 overflow
	`{"addr":1} {"addr":2}`,
	`{"addr":1,"bogus":true}`,
	`{"addr":1,}`,
	`{"addr"}`,
	`[1,2]`,
	`"just a string"`,
	`{"write":1}`,
	`nullx`,
	`{"addr":012}`, // leading zero: invalid JSON number
	`{"addr":"1"}`,
}

// TestDecodeAccessMatchesJSON pins the scanner to the encoding/json
// semantics it replaced: on every corpus line the fast decoder accepts,
// the oracle must accept with an identical value. (The fast decoder may
// reject lines the oracle accepts — strictness is a 400, not drift —
// but on this corpus the accept sets coincide.)
func TestDecodeAccessMatchesJSON(t *testing.T) {
	for _, line := range decodeAccessCorpus {
		fast, fastErr := DecodeAccess([]byte(line))
		std, stdErr := decodeAccessJSON([]byte(line))
		if (fastErr == nil) != (stdErr == nil) {
			t.Errorf("%q: fast err = %v, std err = %v", line, fastErr, stdErr)
			continue
		}
		if fastErr == nil && fast != std {
			t.Errorf("%q: fast = %+v, std = %+v", line, fast, std)
		}
	}
}

// TestDecodeAccessAllocFree: the satellite's point — the NDJSON hot path
// must not allocate per line, on valid or malformed input (the sentinel
// errors are static).
func TestDecodeAccessAllocFree(t *testing.T) {
	lines := [][]byte{
		[]byte(`{"addr":123456789,"write":true,"gap":31}`),
		[]byte(`{"addr":4096}`),
		[]byte(`{"addr":1,"bogus":true}`),
		[]byte(`not json at all`),
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, l := range lines {
			_, _ = DecodeAccess(l)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeAccess allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkDecodeAccess(b *testing.B) {
	line := []byte(`{"addr":140737488355328,"write":true,"gap":17}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAccess(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeAccessJSON is the before-side: the json.Decoder +
// bytes.Reader per line this PR removed from the replay path.
func BenchmarkDecodeAccessJSON(b *testing.B) {
	line := []byte(`{"addr":140737488355328,"write":true,"gap":17}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeAccessJSON(line); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleDecodeAccess() {
	a, _ := DecodeAccess([]byte(`{"addr":4096,"write":true,"gap":3}`))
	fmt.Println(a.Addr, a.Write, a.Gap)
	// Output: 4096 true 3
}
