package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rmcc/internal/server"
	"rmcc/internal/trace"
	"rmcc/internal/workload"
)

// benchAccesses is the accesses per replay request in the wire
// benchmarks: 16 full frames.
const benchAccesses = 16 * trace.DefaultFrameAccesses

// benchCapture records benchAccesses accesses of canneal at test size.
func benchCapture(b *testing.B) ([]workload.Access, uint64) {
	b.Helper()
	w, ok := workload.ByName(workload.SizeTest, 1, "canneal")
	if !ok {
		b.Fatal("canneal unavailable")
	}
	accs := make([]workload.Access, 0, benchAccesses)
	w.Run(1, func(a workload.Access) bool {
		accs = append(accs, a)
		return len(accs) < benchAccesses
	})
	return accs, w.FootprintBytes()
}

// benchServer boots an in-process daemon (no listener) with one
// footprint-declared session and returns the replay URL. mode=nonsecure
// keeps the engine step cheap so the benchmark isolates the wire + apply
// path — the thing this PR changes — rather than AES counter math.
func benchServer(b *testing.B, footprint uint64) (*server.Server, string) {
	b.Helper()
	srv := server.New(server.Config{})
	b.Cleanup(func() { srv.Close() })
	body, _ := json.Marshal(server.SessionConfig{
		Mode: "nonsecure", Seed: 1, FootprintBytes: footprint, Label: "bench",
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code/100 != 2 {
		b.Fatalf("create session: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	var info server.SessionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		b.Fatal(err)
	}
	return srv, "/v1/sessions/" + info.ID + "/replay"
}

// replayBody posts one pre-encoded replay body in-process and fails on a
// non-200.
func replayBody(b *testing.B, srv *server.Server, url, contentType string, body []byte) {
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("replay: HTTP %d: %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkReplayNDJSON measures end-to-end replay throughput over the
// NDJSON compatibility wire: accesses/sec includes HTTP dispatch, line
// scanning, JSON decode, and the shard apply path.
func BenchmarkReplayNDJSON(b *testing.B) {
	accs, footprint := benchCapture(b)
	var buf strings.Builder
	for _, a := range accs {
		line, _ := json.Marshal(server.AccessRecord{Addr: a.Addr, Write: a.Write, Gap: a.Gap})
		buf.Write(line)
		buf.WriteByte('\n')
	}
	body := []byte(buf.String())
	srv, url := benchServer(b, footprint)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayBody(b, srv, url, server.ContentTypeNDJSON, body)
	}
	b.ReportMetric(float64(benchAccesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkReplayBinary measures the same end-to-end path over the
// binary frame wire — same access stream, same session config, so the
// accesses/s ratio against BenchmarkReplayNDJSON is the wire speedup.
func BenchmarkReplayBinary(b *testing.B) {
	accs, footprint := benchCapture(b)
	var buf bytes.Buffer
	fw := trace.NewFrameWriter(&buf, trace.DefaultFrameAccesses)
	for _, a := range accs {
		if err := fw.Append(a); err != nil {
			b.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		b.Fatal(err)
	}
	body := buf.Bytes()
	srv, url := benchServer(b, footprint)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayBody(b, srv, url, server.ContentTypeBinaryReplay, body)
	}
	b.ReportMetric(float64(benchAccesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}
