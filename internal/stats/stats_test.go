package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanArithmetic(t *testing.T) {
	tb := Table{Title: "t", Series: []string{"a", "b"}}
	tb.Add("w1", 1, 10)
	tb.Add("w2", 3, 30)
	m := tb.Mean()
	if m[0] != 2 || m[1] != 20 {
		t.Fatalf("mean = %v", m)
	}
}

func TestMeanGeometric(t *testing.T) {
	tb := Table{Title: "t", Series: []string{"a"}, GeoMean: true}
	tb.Add("w1", 2)
	tb.Add("w2", 8)
	if m := tb.Mean(); math.Abs(m[0]-4) > 1e-9 {
		t.Fatalf("geomean = %v, want 4", m)
	}
}

func TestGeoMeanSkipsNonPositive(t *testing.T) {
	tb := Table{Series: []string{"a"}, GeoMean: true}
	tb.Add("w1", 4)
	tb.Add("w2", 0)
	if m := tb.Mean(); m[0] != 4 {
		t.Fatalf("geomean = %v, want 4 (zero skipped)", m)
	}
}

func TestCellLookup(t *testing.T) {
	tb := Table{Series: []string{"a", "b"}}
	tb.Add("canneal", 0.5, 0.9)
	if v, ok := tb.Cell("canneal", "b"); !ok || v != 0.9 {
		t.Fatalf("cell = %v %v", v, ok)
	}
	if _, ok := tb.Cell("canneal", "zzz"); ok {
		t.Fatal("found nonexistent series")
	}
	if _, ok := tb.Cell("zzz", "a"); ok {
		t.Fatal("found nonexistent row")
	}
}

func TestStringRendering(t *testing.T) {
	tb := Table{Title: "Figure X", Unit: "%", Series: []string{"RMCC"}}
	tb.Add("canneal", 0.92)
	s := tb.String()
	for _, want := range []string{"Figure X", "canneal", "92.0%", "mean", "RMCC"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestUnits(t *testing.T) {
	cases := []struct {
		unit string
		val  float64
		want string
	}{
		{"%", 0.5, "50.0%"},
		{"ns", 47.25, "47.2ns"},
		{"x", 1.0625, "1.062x"},
		{"", 12345678, "12345678"},
	}
	for _, c := range cases {
		tb := Table{Unit: c.unit}
		if got := strings.TrimSpace(tb.format(c.val)); got != c.want {
			t.Errorf("unit %q: format(%v) = %q, want %q", c.unit, c.val, got, c.want)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tb := Table{Title: "empty", Series: []string{"a"}}
	if m := tb.Mean(); m != nil {
		t.Fatalf("mean of empty = %v", m)
	}
	_ = tb.String() // must not panic
}
