// Package stats provides the result-table abstraction the experiment
// harness uses to regenerate the paper's figures as text: named rows (one
// per workload), named series (one per configuration), and the geometric /
// arithmetic mean row every figure in the paper ends with.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is one figure's data: len(Series) values per row.
type Table struct {
	Title  string
	Unit   string // how to render cells: "%", "ns", "x", "" (raw)
	Series []string
	Rows   []Row
	// GeoMean selects the geometric mean for the summary row (used for
	// ratio-like figures); otherwise the arithmetic mean is used.
	GeoMean bool
}

// Row is one workload's results across the series.
type Row struct {
	Name  string
	Cells []float64
}

// Add appends a row.
func (t *Table) Add(name string, cells ...float64) {
	t.Rows = append(t.Rows, Row{Name: name, Cells: cells})
}

// Mean computes the per-series summary across rows.
func (t *Table) Mean() []float64 {
	if len(t.Rows) == 0 {
		return nil
	}
	out := make([]float64, len(t.Series))
	for s := range t.Series {
		if t.GeoMean {
			logSum := 0.0
			n := 0
			for _, r := range t.Rows {
				if s < len(r.Cells) && r.Cells[s] > 0 {
					logSum += math.Log(r.Cells[s])
					n++
				}
			}
			if n > 0 {
				out[s] = math.Exp(logSum / float64(n))
			}
		} else {
			sum := 0.0
			n := 0
			for _, r := range t.Rows {
				if s < len(r.Cells) {
					sum += r.Cells[s]
					n++
				}
			}
			if n > 0 {
				out[s] = sum / float64(n)
			}
		}
	}
	return out
}

// Cell returns the value at (rowName, series) for programmatic checks.
func (t *Table) Cell(rowName, series string) (float64, bool) {
	si := -1
	for i, s := range t.Series {
		if s == series {
			si = i
			break
		}
	}
	if si < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Name == rowName && si < len(r.Cells) {
			return r.Cells[si], true
		}
	}
	return 0, false
}

func (t *Table) format(v float64) string {
	switch t.Unit {
	case "%":
		return fmt.Sprintf("%6.1f%%", v*100)
	case "ns":
		return fmt.Sprintf("%6.1fns", v)
	case "x":
		return fmt.Sprintf("%6.3fx", v)
	default:
		if v >= 10000 {
			return fmt.Sprintf("%8.0f", v)
		}
		return fmt.Sprintf("%8.2f", v)
	}
}

// String renders the table with a mean summary row, in the paper's
// figure-order layout.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	nameW := len("mean")
	for _, r := range t.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW+2, "")
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%16s", s)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", nameW+2, r.Name)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "%16s", t.format(c))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s", nameW+2, "mean")
	for _, m := range t.Mean() {
		fmt.Fprintf(&b, "%16s", t.format(m))
	}
	b.WriteByte('\n')
	return b.String()
}
