package obs

import (
	"errors"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceHi: 0xdeadbeef01020304, TraceLo: 0x05060708090a0b0c, SpanID: 0x1122334455667788, Sampled: true}
	s := tc.String()
	if len(s) != TraceHeaderLen {
		t.Fatalf("encoded length = %d, want %d (%q)", len(s), TraceHeaderLen, s)
	}
	got, err := ParseTraceContext(s)
	if err != nil {
		t.Fatalf("ParseTraceContext(%q): %v", s, err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v, want %+v", got, tc)
	}
	tc.Sampled = false
	got, err = ParseTraceContext(tc.String())
	if err != nil || got != tc {
		t.Fatalf("unsampled round trip: got %+v err %v, want %+v", got, err, tc)
	}
}

func TestTraceContextZero(t *testing.T) {
	var tc TraceContext
	if tc.Valid() {
		t.Fatal("zero context must be invalid")
	}
	if tc.String() != "" || tc.TraceID() != "" {
		t.Fatalf("zero context renders %q / %q, want empty", tc.String(), tc.TraceID())
	}
	got, err := ParseTraceContext("")
	if err != nil || got.Valid() {
		t.Fatalf("empty header: got %+v err %v, want zero, nil", got, err)
	}
}

func TestParseTraceContextRejects(t *testing.T) {
	valid := TraceContext{TraceHi: 0xabcdef, TraceLo: 2, SpanID: 0xfeed, Sampled: true}.String()
	bad := []string{
		valid[:len(valid)-1],                         // short
		valid + "0",                                  // long
		strings.Repeat("0", TraceHeaderLen),          // no separators
		strings.ToUpper(valid),                       // uppercase hex
		"01" + valid[2:],                             // wrong version
		"00-" + strings.Repeat("0", 32) + valid[35:], // zero trace id
		strings.Replace(valid, "0", "g", 1),          // non-hex
		strings.Repeat("x", 4096),                    // oversized garbage
	}
	for _, v := range bad {
		if _, err := ParseTraceContext(v); !errors.Is(err, ErrTraceContext) {
			t.Errorf("ParseTraceContext(%.60q) err = %v, want ErrTraceContext", v, err)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	tc := MintTraceContext()
	hi, lo, err := ParseTraceID(tc.TraceID())
	if err != nil || hi != tc.TraceHi || lo != tc.TraceLo {
		t.Fatalf("ParseTraceID(%q) = %x %x %v, want %x %x", tc.TraceID(), hi, lo, err, tc.TraceHi, tc.TraceLo)
	}
	for _, v := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("z", 32), strings.Repeat("0", 33)} {
		if _, _, err := ParseTraceID(v); !errors.Is(err, ErrTraceContext) {
			t.Errorf("ParseTraceID(%q) err = %v, want ErrTraceContext", v, err)
		}
	}
}

func TestMintTraceContext(t *testing.T) {
	a, b := MintTraceContext(), MintTraceContext()
	if !a.Valid() || !a.Sampled {
		t.Fatalf("minted context %+v must be valid and sampled", a)
	}
	if a.TraceHi == b.TraceHi && a.TraceLo == b.TraceLo {
		t.Fatalf("two mints share a trace ID: %+v", a)
	}
}

func TestParseTraceContextAllocFree(t *testing.T) {
	v := MintTraceContext().String()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ParseTraceContext(v); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseTraceContext allocates %.1f/op, want 0", allocs)
	}
}

func TestSpanTracerTraceFields(t *testing.T) {
	tr := NewSpanTracer(16)
	tc := TraceContext{TraceHi: 7, TraceLo: 9, SpanID: 42, Sampled: true}
	root := tr.StartRemote("http.replay", "/sessions/s-1/replay", tc)
	child := tr.StartT("replay", "s-1", root.ID(), tc)
	tr.RecordT("engine-step", "s-1", child.ID(), tc, 100, 5)
	child.End()
	root.End()
	tr.Record("background", "", 0, 0, 1) // different trace: none

	got := tr.SpansForTrace(7, 9)
	if len(got) != 3 {
		t.Fatalf("SpansForTrace retained %d spans, want 3", len(got))
	}
	for _, r := range got {
		if r.TraceHi != 7 || r.TraceLo != 9 {
			t.Fatalf("span %+v lost its trace ID", r)
		}
	}
	var root2 SpanRecord
	for _, r := range got {
		if r.Name == "http.replay" {
			root2 = r
		}
	}
	if root2.Remote != 42 || root2.Parent != 0 {
		t.Fatalf("remote root = %+v, want Remote=42 Parent=0", root2)
	}
	if tr.SpansForTrace(0, 0) != nil {
		t.Fatal("SpansForTrace(0,0) must return nothing")
	}
}

func TestSpanTracerDropped(t *testing.T) {
	tr := NewSpanTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record("x", "", 0, int64(i), 1)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	var nilTr *SpanTracer
	if nilTr.Dropped() != 0 {
		t.Fatal("nil tracer Dropped must be 0")
	}
}
