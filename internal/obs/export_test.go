package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildRegistry constructs a registry with every instrument kind and drives
// the owned instruments to fixed totals using the given number of
// goroutines. The final exports must not depend on the goroutine count —
// that is the determinism contract the golden test below pins.
func buildRegistry(goroutines int) *Registry {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "operations", L("kind", "read"))
	g := reg.Gauge("test_ratio", "a ratio")
	h := reg.Histogram("test_depth", "chain depth", LinearBuckets(0, 1, 3))
	reg.CounterFunc("test_view_total", "func-backed view", func() uint64 { return 7 })
	reg.GaugeFunc("test_view_ratio", "func-backed gauge", func() float64 { return 0.25 }, L("scope", "all"))

	const total = 1200 // divisible by 1..6 goroutines
	var wg sync.WaitGroup
	per := total / goroutines
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(uint64(i % 5))
			}
		}()
	}
	wg.Wait()
	g.Set(0.5)
	return reg
}

// TestExportsDeterministicAcrossParallelism is the golden test: the
// Prometheus text and JSON exports must be byte-identical whatever the
// number of goroutines that produced the counts (the CI matrix exercises
// different -parallel settings; exports must not care).
func TestExportsDeterministicAcrossParallelism(t *testing.T) {
	golden := strings.Join([]string{
		`# HELP test_depth chain depth`,
		`# TYPE test_depth histogram`,
		`test_depth_bucket{le="0"} 240`,
		`test_depth_bucket{le="1"} 480`,
		`test_depth_bucket{le="2"} 720`,
		`test_depth_bucket{le="+Inf"} 1200`,
		`test_depth_sum 2400`,
		`test_depth_count 1200`,
		`# HELP test_ops_total operations`,
		`# TYPE test_ops_total counter`,
		`test_ops_total{kind="read"} 1200`,
		`# HELP test_ratio a ratio`,
		`# TYPE test_ratio gauge`,
		`test_ratio 0.5`,
		`# HELP test_view_ratio func-backed gauge`,
		`# TYPE test_view_ratio gauge`,
		`test_view_ratio{scope="all"} 0.25`,
		`# HELP test_view_total func-backed view`,
		`# TYPE test_view_total counter`,
		`test_view_total 7`,
	}, "\n") + "\n"

	var jsonGolden string
	for _, goroutines := range []int{1, 2, 4, 6} {
		reg := buildRegistry(goroutines)
		var prom, js strings.Builder
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if prom.String() != golden {
			t.Errorf("goroutines=%d: Prometheus export diverged:\ngot:\n%s\nwant:\n%s",
				goroutines, prom.String(), golden)
		}
		if jsonGolden == "" {
			jsonGolden = js.String()
			var doc struct {
				Metrics []json.RawMessage `json:"metrics"`
			}
			if err := json.Unmarshal([]byte(jsonGolden), &doc); err != nil {
				t.Fatalf("JSON export is not valid JSON: %v", err)
			}
			if len(doc.Metrics) != 5 {
				t.Fatalf("JSON export has %d metrics, want 5", len(doc.Metrics))
			}
		} else if js.String() != jsonGolden {
			t.Errorf("goroutines=%d: JSON export diverged", goroutines)
		}
	}
}

// TestWriteFileFormatsByExtension pins the extension dispatch the
// -metrics-out flags rely on.
func TestWriteFileFormatsByExtension(t *testing.T) {
	reg := buildRegistry(1)
	dir := t.TempDir()

	promPath := filepath.Join(dir, "m.prom")
	if err := reg.WriteFile(promPath); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(promPath)
	if !strings.HasPrefix(string(b), "# HELP test_depth") {
		t.Errorf("prom file does not look like Prometheus text: %q", b[:40])
	}

	jsonPath := filepath.Join(dir, "m.json")
	if err := reg.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	jb, _ := os.ReadFile(jsonPath)
	if err := json.Unmarshal(jb, &doc); err != nil {
		t.Errorf(".json file is not JSON: %v", err)
	}
}

// TestManifestRoundTrip checks write/read symmetry and the config-hash
// stability the CI diff relies on.
func TestManifestRoundTrip(t *testing.T) {
	cfg := map[string]any{"workload": "canneal", "accesses": 1000}
	m := NewManifest("rmccsim", cfg)
	m.Seed = 7
	m.Started = "2026-08-06T00:00:00Z"
	m.WallClockSeconds = 1.5
	m.Headline["ipc"] = 2.25
	m.Notes["driver"] = "lifetime"

	if m.ConfigHash != HashConfig(cfg) {
		t.Error("config hash not reproducible")
	}
	if m.ConfigHash == HashConfig(map[string]any{"workload": "mcf", "accesses": 1000}) {
		t.Error("different configs hashed equal")
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "rmccsim" || got.Seed != 7 || got.Headline["ipc"] != 2.25 ||
		got.Notes["driver"] != "lifetime" || got.SchemaVersion != ManifestSchemaVersion {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if keys := got.HeadlineKeys(); len(keys) != 1 || keys[0] != "ipc" {
		t.Errorf("HeadlineKeys = %v", keys)
	}
}
