package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// stepClock returns a clock advancing step per call, starting at a fixed
// epoch, so span durations are deterministic.
func stepClock(step time.Duration) func() time.Time {
	t0 := time.Date(2026, 8, 6, 1, 2, 3, 0, time.UTC)
	n := 0
	return func() time.Time {
		t := t0.Add(time.Duration(n) * step)
		n++
		return t
	}
}

// TestSpanTracerBasic covers Start/End with a deterministic clock, parent
// links, and stage histogram observation in microseconds.
func TestSpanTracerBasic(t *testing.T) {
	st := NewSpanTracer(16)
	st.SetClock(stepClock(5 * time.Millisecond))
	hist := NewHistogram(Pow2Buckets(1, 24))
	st.RegisterStage("engine-step", hist)

	root := st.Start("replay", "s-01", 0)
	child := st.Start("engine-step", "s-01", root.ID())
	child.End() // clock ticks: start@0, start@5ms, end@10ms → 5ms span
	root.End()  // end@15ms → 15ms span

	if st.Total() != 2 || st.Len() != 2 {
		t.Fatalf("Total/Len = %d/%d, want 2/2", st.Total(), st.Len())
	}
	spans := st.Spans()
	if spans[0].Name != "engine-step" || spans[0].Parent != root.ID() {
		t.Errorf("child span wrong: %+v", spans[0])
	}
	if spans[0].Duration != int64(5*time.Millisecond) {
		t.Errorf("child duration = %d, want 5ms", spans[0].Duration)
	}
	if spans[1].Name != "replay" || spans[1].Parent != 0 ||
		spans[1].Duration != int64(15*time.Millisecond) {
		t.Errorf("root span wrong: %+v", spans[1])
	}
	// The registered stage saw exactly the child span, in microseconds.
	if hist.Count() != 1 || hist.Sum() != 5000 {
		t.Errorf("stage hist count/sum = %d/%d, want 1/5000", hist.Count(), hist.Sum())
	}
}

// TestSpanTracerRecord covers the externally-measured-span path.
func TestSpanTracerRecord(t *testing.T) {
	st := NewSpanTracer(4)
	hist := NewHistogram(Pow2Buckets(1, 24))
	st.RegisterStage("queue-wait", hist)
	id := st.Record("queue-wait", "s-02", 7, 1234, 250*time.Microsecond)
	if id == 0 {
		t.Fatal("Record returned 0 id")
	}
	sp := st.Spans()
	if len(sp) != 1 || sp[0].ID != id || sp[0].Parent != 7 ||
		sp[0].Start != 1234 || sp[0].Duration != int64(250*time.Microsecond) {
		t.Fatalf("recorded span wrong: %+v", sp)
	}
	if hist.Count() != 1 || hist.Sum() != 250 {
		t.Errorf("stage hist = %d/%d, want 1/250", hist.Count(), hist.Sum())
	}
	// Negative durations clamp to zero rather than corrupting histograms.
	st.Record("queue-wait", "s-02", 0, 0, -time.Second)
	if hist.Sum() != 250 {
		t.Errorf("negative duration leaked into hist sum: %d", hist.Sum())
	}
}

// TestSpanTracerRingWraparound fills past capacity and checks the
// retained oldest-first window and Slowest ordering.
func TestSpanTracerRingWraparound(t *testing.T) {
	st := NewSpanTracer(4)
	for i := 1; i <= 10; i++ {
		st.Record("stage", "", 0, 0, time.Duration(i)*time.Millisecond)
	}
	if st.Total() != 10 || st.Len() != 4 || st.Cap() != 4 {
		t.Fatalf("Total/Len/Cap = %d/%d/%d, want 10/4/4", st.Total(), st.Len(), st.Cap())
	}
	sp := st.Spans()
	for i, r := range sp {
		want := int64(7+i) * int64(time.Millisecond)
		if r.Duration != want {
			t.Errorf("span %d duration = %d, want %d", i, r.Duration, want)
		}
	}
	slow := st.Slowest(2)
	if len(slow) != 2 ||
		slow[0].Duration != int64(10*time.Millisecond) ||
		slow[1].Duration != int64(9*time.Millisecond) {
		t.Errorf("Slowest wrong: %+v", slow)
	}
	// Ties break on ascending ID.
	st2 := NewSpanTracer(8)
	a := st2.Record("s", "", 0, 0, time.Millisecond)
	b := st2.Record("s", "", 0, 0, time.Millisecond)
	got := st2.Slowest(8)
	if got[0].ID != a || got[1].ID != b {
		t.Errorf("tie order = %d,%d, want %d,%d", got[0].ID, got[1].ID, a, b)
	}
}

// TestSpanTracerForwarding checks EvSpanEnd forwarding into a ring
// Tracer: stage index by RegisterStage order, duration in µs, span id.
func TestSpanTracerForwarding(t *testing.T) {
	st := NewSpanTracer(8)
	st.RegisterStage("queue-wait", nil)
	st.RegisterStage("engine-step", nil)
	tr := NewTracer(8)
	st.AttachTracer(tr)

	id := st.Record("engine-step", "s-03", 0, 0, 3*time.Millisecond)
	st.Record("unregistered", "", 0, 0, time.Millisecond)

	if tr.CountByKind(EvSpanEnd) != 2 {
		t.Fatalf("EvSpanEnd count = %d, want 2", tr.CountByKind(EvSpanEnd))
	}
	ev := tr.Events()
	if ev[0].Addr != 1 || ev[0].V1 != 3000 || ev[0].V2 != id {
		t.Errorf("forwarded event wrong: %+v", ev[0])
	}
	if ev[1].Addr != 0 { // unregistered names carry index 0
		t.Errorf("unregistered stage index = %d, want 0", ev[1].Addr)
	}
}

// TestSpanTracerNilSafe: the disabled state is a nil tracer.
func TestSpanTracerNilSafe(t *testing.T) {
	var st *SpanTracer
	sp := st.Start("x", "", 0)
	if sp.ID() != 0 {
		t.Error("nil tracer span has non-zero id")
	}
	sp.End()
	if st.Record("x", "", 0, 0, time.Second) != 0 {
		t.Error("nil Record returned id")
	}
	st.RegisterStage("x", nil)
	st.AttachTracer(nil)
	st.SetClock(time.Now)
	if st.Total() != 0 || st.Len() != 0 || st.Cap() != 0 {
		t.Error("nil tracer reports contents")
	}
	if st.Spans() != nil || len(st.Slowest(3)) != 0 {
		t.Error("nil tracer returned spans")
	}
}

// TestSpanTracerConcurrent is the shard-worker concurrency model under
// the race detector: many goroutines completing spans (with a stage
// histogram and a forwarded ring Tracer attached) while exporters
// concurrently snapshot the ring and serialize the registry. Afterwards
// every counter must agree on the emission count.
func TestSpanTracerConcurrent(t *testing.T) {
	const (
		workers = 8
		perG    = 2000
	)
	reg := NewRegistry()
	hist := reg.Histogram("test_span_us", "span latency", Pow2Buckets(1, 24))
	st := NewSpanTracer(256)
	st.RegisterStage("engine-step", hist)
	tr := NewTracer(256)
	st.AttachTracer(tr)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Exporters: snapshot the span ring and write the registry while
	// emitters run.
	for e := 0; e < 2; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = st.Spans()
				_ = st.Slowest(10)
				_ = st.Total()
				_ = reg.WritePrometheus(io.Discard)
			}
		}()
	}
	var emitters sync.WaitGroup
	for g := 0; g < workers; g++ {
		emitters.Add(1)
		go func(g int) {
			defer emitters.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					sp := st.Start("engine-step", "s-cc", 0)
					sp.End()
				} else {
					st.Record("engine-step", "s-cc", uint64(g), 0, time.Duration(i)*time.Microsecond)
				}
			}
		}(g)
	}
	emitters.Wait()
	close(stop)
	wg.Wait()

	const total = workers * perG
	if st.Total() != total {
		t.Errorf("span Total = %d, want %d", st.Total(), total)
	}
	if tr.CountByKind(EvSpanEnd) != total {
		t.Errorf("forwarded EvSpanEnd = %d, want %d", tr.CountByKind(EvSpanEnd), total)
	}
	if hist.Count() != total {
		t.Errorf("stage hist Count = %d, want %d", hist.Count(), total)
	}
	if st.Len() != st.Cap() {
		t.Errorf("ring not full: Len=%d Cap=%d", st.Len(), st.Cap())
	}
}
