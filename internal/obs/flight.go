package obs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"rmcc/internal/snapshot"
)

// This file is the crash half of the observability layer: a flight
// recorder. It continuously captures the last window of finished spans,
// sampled tracer events, and warn+ log lines into one fixed-size binary
// ring — zero steady-state allocations, bounded memory — and serializes
// that ring on demand (Dump) or on a timer to a durable file
// (tmp+fsync+rename via internal/snapshot), so a SIGKILL'd, panicking, or
// fault-wedged node leaves a postmortem the recovery path can read.
//
// Records are framed [kind u8][len u16][payload] and written oldest-first;
// appending evicts whole records from the head until the new one fits, so
// the ring contents are always a valid record sequence and Dump never has
// to resynchronize. All payload integers are little-endian, matching
// internal/snapshot and the RMTR wire.

// Flight dump format identifiers.
const (
	flightMagic = "RMCCFLT1"
	// FlightVersion is the dump format version.
	FlightVersion = 1
)

// Flight record kinds (the u8 frame tag).
const (
	flightKindSpan  = 1
	flightKindEvent = 2
	flightKindLog   = 3
)

// Payload truncation caps. Strings beyond these are cut at record time so
// one oversized detail cannot evict the whole window.
const (
	flightMaxName   = 255
	flightMaxDetail = 1024
	flightMaxLine   = 2048
)

// flightSpanFixed is the fixed-width prefix of a span payload:
// traceHi, traceLo, id, parent, remote, start, duration.
const flightSpanFixed = 7 * 8

// DefaultFlightCap is the default flight ring size (1 MiB ≈ the last
// ~10k spans with typical name/detail lengths).
const DefaultFlightCap = 1 << 20

// ErrFlightCorrupt is the typed decode error for damaged or truncated
// flight dumps. The reader never panics: any structural problem — bad
// magic, impossible lengths, a cut-off record — surfaces as an error
// wrapping this.
var ErrFlightCorrupt = errors.New("flight dump corrupt")

// ErrFlightVersion marks a dump written by an unknown format version.
var ErrFlightVersion = errors.New("flight dump version unsupported")

// FlightRecorder is the in-memory ring. Safe for concurrent recording
// from handler goroutines, the span tracer, and the log sink. Nil-safe:
// every method on a nil recorder is a no-op, which is the disabled state.
type FlightRecorder struct {
	node string

	mu      sync.Mutex
	buf     []byte
	start   int // offset of the oldest valid byte
	size    int // valid bytes
	seq     uint64
	dropped uint64
	counts  [4]uint64 // lifetime records by kind (index = kind)
	scratch [flightSpanFixed + 8]byte
}

// NewFlightRecorder builds a recorder whose ring holds capacity bytes
// (DefaultFlightCap when capacity <= 0). node tags dumps with the
// recording process's identity.
func NewFlightRecorder(capacity int, node string) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &FlightRecorder{node: node, buf: make([]byte, capacity)}
}

// Node returns the recorder's node tag ("" on nil).
func (f *FlightRecorder) Node() string {
	if f == nil {
		return ""
	}
	return f.node
}

// Records returns the lifetime record count (0 on nil).
func (f *FlightRecorder) Records() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Dropped returns how many records have been evicted from the ring to
// make room for newer ones (0 on nil).
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Bytes returns the valid byte count currently retained (0 on nil).
func (f *FlightRecorder) Bytes() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Cap returns the ring capacity in bytes (0 on nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.buf)
}

// RecordSpan captures a finished span. Allocation-free; called from the
// span tracer under its mutex and from tests directly.
func (f *FlightRecorder) RecordSpan(r SpanRecord) {
	if f == nil {
		return
	}
	name, detail := r.Name, r.Detail
	if len(name) > flightMaxName {
		name = name[:flightMaxName]
	}
	if len(detail) > flightMaxDetail {
		detail = detail[:flightMaxDetail]
	}
	plen := flightSpanFixed + 1 + len(name) + 2 + len(detail)
	f.mu.Lock()
	w, ok := f.reserve(flightKindSpan, plen)
	if !ok {
		f.mu.Unlock()
		return
	}
	s := f.scratch[:flightSpanFixed]
	binary.LittleEndian.PutUint64(s[0:], r.TraceHi)
	binary.LittleEndian.PutUint64(s[8:], r.TraceLo)
	binary.LittleEndian.PutUint64(s[16:], r.ID)
	binary.LittleEndian.PutUint64(s[24:], r.Parent)
	binary.LittleEndian.PutUint64(s[32:], r.Remote)
	binary.LittleEndian.PutUint64(s[40:], uint64(r.Start))
	binary.LittleEndian.PutUint64(s[48:], uint64(r.Duration))
	w = f.put(w, s)
	f.scratch[0] = byte(len(name))
	w = f.put(w, f.scratch[:1])
	w = f.putStr(w, name)
	binary.LittleEndian.PutUint16(f.scratch[:2], uint16(len(detail)))
	w = f.put(w, f.scratch[:2])
	f.putStr(w, detail)
	f.mu.Unlock()
}

// RecordEvent captures one tracer event — the fault campaign's injection
// and detection hooks are the canonical feed. Allocation-free.
func (f *FlightRecorder) RecordEvent(e Event) {
	if f == nil {
		return
	}
	const plen = 8 + 1 + 3*8
	f.mu.Lock()
	w, ok := f.reserve(flightKindEvent, plen)
	if !ok {
		f.mu.Unlock()
		return
	}
	s := f.scratch[:plen]
	binary.LittleEndian.PutUint64(s[0:], e.Seq)
	s[8] = byte(e.Kind)
	binary.LittleEndian.PutUint64(s[9:], e.Addr)
	binary.LittleEndian.PutUint64(s[17:], e.V1)
	binary.LittleEndian.PutUint64(s[25:], e.V2)
	f.put(w, s)
	f.mu.Unlock()
}

// OnEvent lets the recorder sit as a Tracer sink (obs.EventSink), so a
// campaign-instrumented tracer streams its events into the crash ring.
func (f *FlightRecorder) OnEvent(e Event) { f.RecordEvent(e) }

// RecordLog captures one rendered log line (the warn+ feed from the
// logger sink). A trailing newline is stripped; long lines truncate.
// Allocation-free.
func (f *FlightRecorder) RecordLog(tsNS int64, level LogLevel, line []byte) {
	if f == nil {
		return
	}
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if len(line) > flightMaxLine {
		line = line[:flightMaxLine]
	}
	plen := 8 + 1 + len(line)
	f.mu.Lock()
	w, ok := f.reserve(flightKindLog, plen)
	if !ok {
		f.mu.Unlock()
		return
	}
	s := f.scratch[:9]
	binary.LittleEndian.PutUint64(s[0:], uint64(tsNS))
	s[8] = byte(level)
	w = f.put(w, s)
	f.put(w, line)
	f.mu.Unlock()
}

// reserve evicts records until frameLen(plen) bytes fit, writes the frame
// header, counts the record, and returns the ring offset where the
// payload starts. Returns ok=false when the record can never fit. Caller
// holds f.mu.
func (f *FlightRecorder) reserve(kind byte, plen int) (int, bool) {
	total := 3 + plen
	if total > len(f.buf) {
		f.dropped++
		return 0, false
	}
	for len(f.buf)-f.size < total {
		f.evictOne()
	}
	w := (f.start + f.size) % len(f.buf)
	f.scratch[0] = kind
	binary.LittleEndian.PutUint16(f.scratch[1:3], uint16(plen))
	w = f.put(w, f.scratch[:3])
	f.size += total
	f.seq++
	if int(kind) < len(f.counts) {
		f.counts[kind]++
	}
	return w, true
}

// evictOne drops the oldest record. Caller holds f.mu and guarantees the
// ring is non-empty (size >= 3 whenever size > 0, by construction).
func (f *FlightRecorder) evictOne() {
	h := (f.start + 1) % len(f.buf)
	lo := uint16(f.buf[h])
	h = (h + 1) % len(f.buf)
	hi := uint16(f.buf[h])
	rec := 3 + int(lo|hi<<8)
	f.start = (f.start + rec) % len(f.buf)
	f.size -= rec
	f.dropped++
}

// put copies b into the ring at offset w (wrapping) and returns the
// offset just past it. Caller holds f.mu.
func (f *FlightRecorder) put(w int, b []byte) int {
	n := copy(f.buf[w:], b)
	if n < len(b) {
		copy(f.buf, b[n:])
	}
	return (w + len(b)) % len(f.buf)
}

// putStr is put for string payloads (copy from a string compiles to the
// same memmove, no conversion allocation).
func (f *FlightRecorder) putStr(w int, s string) int {
	n := copy(f.buf[w:], s)
	if n < len(s) {
		copy(f.buf, s[n:])
	}
	return (w + len(s)) % len(f.buf)
}

// Dump serializes the recorder: a header (magic, version, node, lifetime
// counters) followed by the retained record window, oldest first. The
// ring is locked for the duration; Dump itself allocates only the
// linearized copy.
func (f *FlightRecorder) Dump(w io.Writer) error {
	if f == nil {
		return errors.New("no flight recorder")
	}
	f.mu.Lock()
	hdr := make([]byte, 0, 8+4+2+len(f.node)+8+8+4)
	hdr = append(hdr, flightMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, FlightVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(f.node)))
	hdr = append(hdr, f.node...)
	hdr = binary.LittleEndian.AppendUint64(hdr, f.seq)
	hdr = binary.LittleEndian.AppendUint64(hdr, f.dropped)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(f.size))
	body := make([]byte, f.size)
	n := copy(body, f.buf[f.start:])
	if n < f.size {
		copy(body[n:], f.buf[:f.size-n])
	}
	f.mu.Unlock()
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// DumpToFile writes the dump durably (tmp+fsync+rename) at path.
func (f *FlightRecorder) DumpToFile(path string) error {
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		return err
	}
	return snapshot.WriteFileDurable(path, buf.Bytes())
}

// FlightLog is one decoded log record.
type FlightLog struct {
	TimeNS int64
	Level  LogLevel
	Line   string
}

// FlightDump is a decoded flight-recorder dump.
type FlightDump struct {
	Node    string
	Records uint64 // lifetime records at dump time
	Dropped uint64 // records evicted before the dump
	Spans   []SpanRecord
	Events  []Event
	Logs    []FlightLog
}

// SpansForTrace returns the dump's spans for trace (hi, lo), in recorded
// order.
func (d *FlightDump) SpansForTrace(hi, lo uint64) []SpanRecord {
	var out []SpanRecord
	for _, r := range d.Spans {
		if r.TraceHi == hi && r.TraceLo == lo {
			out = append(out, r)
		}
	}
	return out
}

// ReadFlightDump decodes a dump produced by Dump. It never panics:
// malformed input yields ErrFlightCorrupt / ErrFlightVersion wrapped
// errors, and the input size is bounded by the declared body length.
func ReadFlightDump(r io.Reader) (*FlightDump, error) {
	var fixed [8 + 4 + 2]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFlightCorrupt, err)
	}
	if string(fixed[:8]) != flightMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrFlightCorrupt)
	}
	if v := binary.LittleEndian.Uint32(fixed[8:12]); v != FlightVersion {
		return nil, fmt.Errorf("%w: version %d", ErrFlightVersion, v)
	}
	nodeLen := int(binary.LittleEndian.Uint16(fixed[12:14]))
	rest := make([]byte, nodeLen+8+8+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFlightCorrupt, err)
	}
	d := &FlightDump{
		Node:    string(rest[:nodeLen]),
		Records: binary.LittleEndian.Uint64(rest[nodeLen:]),
		Dropped: binary.LittleEndian.Uint64(rest[nodeLen+8:]),
	}
	bodyLen := binary.LittleEndian.Uint32(rest[nodeLen+16:])
	const maxBody = 1 << 30
	if bodyLen > maxBody {
		return nil, fmt.Errorf("%w: body length %d", ErrFlightCorrupt, bodyLen)
	}
	body, err := io.ReadAll(io.LimitReader(r, int64(bodyLen)))
	if err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrFlightCorrupt, err)
	}
	if len(body) != int(bodyLen) {
		return nil, fmt.Errorf("%w: body truncated at %d of %d bytes", ErrFlightCorrupt, len(body), bodyLen)
	}
	for off := 0; off < len(body); {
		if len(body)-off < 3 {
			return nil, fmt.Errorf("%w: frame header truncated at offset %d", ErrFlightCorrupt, off)
		}
		kind := body[off]
		plen := int(binary.LittleEndian.Uint16(body[off+1 : off+3]))
		off += 3
		if len(body)-off < plen {
			return nil, fmt.Errorf("%w: record truncated at offset %d", ErrFlightCorrupt, off)
		}
		p := body[off : off+plen]
		off += plen
		switch kind {
		case flightKindSpan:
			rec, err := decodeFlightSpan(p)
			if err != nil {
				return nil, err
			}
			d.Spans = append(d.Spans, rec)
		case flightKindEvent:
			if plen != 8+1+3*8 {
				return nil, fmt.Errorf("%w: event record length %d", ErrFlightCorrupt, plen)
			}
			d.Events = append(d.Events, Event{
				Seq:  binary.LittleEndian.Uint64(p[0:]),
				Kind: EventKind(p[8]),
				Addr: binary.LittleEndian.Uint64(p[9:]),
				V1:   binary.LittleEndian.Uint64(p[17:]),
				V2:   binary.LittleEndian.Uint64(p[25:]),
			})
		case flightKindLog:
			if plen < 9 {
				return nil, fmt.Errorf("%w: log record length %d", ErrFlightCorrupt, plen)
			}
			d.Logs = append(d.Logs, FlightLog{
				TimeNS: int64(binary.LittleEndian.Uint64(p[0:])),
				Level:  LogLevel(int8(p[8])),
				Line:   string(p[9:]),
			})
		default:
			return nil, fmt.Errorf("%w: unknown record kind %d", ErrFlightCorrupt, kind)
		}
	}
	return d, nil
}

func decodeFlightSpan(p []byte) (SpanRecord, error) {
	if len(p) < flightSpanFixed+1 {
		return SpanRecord{}, fmt.Errorf("%w: span record length %d", ErrFlightCorrupt, len(p))
	}
	rec := SpanRecord{
		TraceHi:  binary.LittleEndian.Uint64(p[0:]),
		TraceLo:  binary.LittleEndian.Uint64(p[8:]),
		ID:       binary.LittleEndian.Uint64(p[16:]),
		Parent:   binary.LittleEndian.Uint64(p[24:]),
		Remote:   binary.LittleEndian.Uint64(p[32:]),
		Start:    int64(binary.LittleEndian.Uint64(p[40:])),
		Duration: int64(binary.LittleEndian.Uint64(p[48:])),
	}
	p = p[flightSpanFixed:]
	nameLen := int(p[0])
	p = p[1:]
	if len(p) < nameLen+2 {
		return SpanRecord{}, fmt.Errorf("%w: span name truncated", ErrFlightCorrupt)
	}
	rec.Name = string(p[:nameLen])
	p = p[nameLen:]
	detailLen := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	if len(p) != detailLen {
		return SpanRecord{}, fmt.Errorf("%w: span detail truncated", ErrFlightCorrupt)
	}
	rec.Detail = string(p)
	return rec, nil
}
