package obs

import (
	"math"
	"os"
	"strings"
	"testing"
)

// TestPromLabelEscapeRoundTrip is the regression test for the label
// escaping fix: hostile label values (backslash, quote, newline, tab,
// non-ASCII) must export as valid Prometheus text and parse back
// byte-identical. The old %q rendering emitted \t and \u escapes the
// Prometheus format does not define, so tabs and accents corrupted on
// the wire.
func TestPromLabelEscapeRoundTrip(t *testing.T) {
	nasty := []string{
		`back\slash`,
		`quo"te`,
		"new\nline",
		"tab\there",
		"café über",
		`all three \ " ` + "\n mixed",
	}
	reg := NewRegistry()
	for i, v := range nasty {
		c := reg.Counter("escape_test_total", "escaping round trip",
			L("idx", string(rune('a'+i))), L("v", v))
		c.Add(uint64(i + 1))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	// The three defined escapes must appear; %q artifacts must not.
	if strings.Contains(text, `\t`) || strings.Contains(text, `\u00`) {
		t.Errorf("export contains Go-style escapes Prometheus does not define:\n%s", text)
	}
	parsed, err := ParsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("round trip failed to parse: %v\n%s", err, text)
	}
	for i, v := range nasty {
		got, ok := parsed.Value("escape_test_total", L("idx", string(rune('a'+i))))
		if !ok {
			t.Fatalf("series %d lost in round trip", i)
		}
		if got != float64(i+1) {
			t.Errorf("series %d value = %v, want %d", i, got, i+1)
		}
		// Find the sample and check the label value survived intact.
		found := false
		for _, s := range parsed.Samples {
			if s.Label("idx") == string(rune('a'+i)) {
				found = true
				if s.Label("v") != v {
					t.Errorf("label %d corrupted: got %q want %q", i, s.Label("v"), v)
				}
			}
		}
		if !found {
			t.Errorf("series %d missing", i)
		}
	}
}

// TestParsePromTextBasics covers comments, unlabeled series, +Inf, and
// error reporting.
func TestParsePromTextBasics(t *testing.T) {
	text := `# HELP up is it up
# TYPE up gauge
up 1
lat_bucket{le="10"} 3
lat_bucket{le="+Inf"} 5
lat_sum 40
lat_count 5
`
	p, err := ParsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) != 5 {
		t.Fatalf("parsed %d samples, want 5", len(p.Samples))
	}
	if v, ok := p.Value("up"); !ok || v != 1 {
		t.Errorf("up = %v,%v", v, ok)
	}
	if v, ok := p.Value("lat_bucket", L("le", "+Inf")); !ok || v != 5 {
		t.Errorf("+Inf bucket = %v,%v", v, ok)
	}
	if _, ok := p.Value("absent"); ok {
		t.Error("absent metric reported present")
	}
	if _, err := ParsePromText(strings.NewReader("garbage-without-value\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

// TestHistQuantile checks client-side quantile estimation from cumulative
// buckets, including label restriction and the +Inf clamp.
func TestHistQuantile(t *testing.T) {
	text := `d_bucket{stage="a",le="10"} 50
d_bucket{stage="a",le="100"} 90
d_bucket{stage="a",le="+Inf"} 100
d_bucket{stage="b",le="10"} 0
d_bucket{stage="b",le="100"} 0
d_bucket{stage="b",le="+Inf"} 0
`
	p, err := ParsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// p50 of stage a: rank 50 lands exactly at the top of the first
	// bucket → 10.
	if v, ok := p.HistQuantile("d", 0.5, L("stage", "a")); !ok || math.Abs(v-10) > 1e-9 {
		t.Errorf("p50 = %v,%v, want 10", v, ok)
	}
	// p75: rank 75, 25 of the 40 in (10,100] → 10 + 90*(25/40) = 66.25.
	if v, ok := p.HistQuantile("d", 0.75, L("stage", "a")); !ok || math.Abs(v-66.25) > 1e-9 {
		t.Errorf("p75 = %v,%v, want 66.25", v, ok)
	}
	// p99 lands in the +Inf bucket → clamps to the top finite bound.
	if v, ok := p.HistQuantile("d", 0.99, L("stage", "a")); !ok || v != 100 {
		t.Errorf("p99 = %v,%v, want clamp to 100", v, ok)
	}
	// Empty histogram: not ok.
	if _, ok := p.HistQuantile("d", 0.5, L("stage", "b")); ok {
		t.Error("empty histogram reported a quantile")
	}
	// Absent metric: not ok.
	if _, ok := p.HistQuantile("nope", 0.5); ok {
		t.Error("absent histogram reported a quantile")
	}
}

// TestParseCapturedMetricsPayloads parses real /metrics pages captured
// from a live 2-node cluster (16 loadgen sessions, one node drained:
// see testdata/) — rmcc-router and rmccd exports, not synthetic text.
// This is the parser's contract with its real producers: multi-label
// series resolve by exact label set, and histogram quantiles come out
// of the captured cumulative buckets.
func TestParseCapturedMetricsPayloads(t *testing.T) {
	// The fixture's topology: node A held all 16 sessions after node B
	// (drained) migrated its 8 over.
	const nodeA, nodeB = "127.0.0.1:40745", "127.0.0.1:36499"

	t.Run("router", func(t *testing.T) {
		f, err := os.Open("testdata/router_metrics.prom")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		p, err := ParsePromText(f)
		if err != nil {
			t.Fatal(err)
		}
		// Multi-label counter: same name, distinguished by {node,result}.
		for _, node := range []string{nodeA, nodeB} {
			if v, ok := p.Value("rmcc_router_health_checks_total",
				L("node", node), L("result", "ok")); !ok || v != 16 {
				t.Errorf("health_checks{%s,ok} = %v,%v, want 16", node, v, ok)
			}
			if v, ok := p.Value("rmcc_router_health_checks_total",
				L("node", node), L("result", "fail")); !ok || v != 0 {
				t.Errorf("health_checks{%s,fail} = %v,%v, want 0", node, v, ok)
			}
		}
		// The drain is visible: B migrated its 8 sessions to A and left
		// the ring.
		if v, ok := p.Value("rmcc_router_migrations_total", L("status", "ok")); !ok || v != 8 {
			t.Errorf("migrations{ok} = %v,%v, want 8", v, ok)
		}
		if v, ok := p.Value("rmcc_router_node_sessions", L("node", nodeA)); !ok || v != 16 {
			t.Errorf("node_sessions{A} = %v,%v, want 16", v, ok)
		}
		if v, ok := p.Value("rmcc_router_node_in_ring", L("node", nodeB)); !ok || v != 0 {
			t.Errorf("node_in_ring{B} = %v,%v, want 0", v, ok)
		}
		if v, ok := p.Value("rmcc_router_nodes_in_ring"); !ok || v != 1 {
			t.Errorf("nodes_in_ring = %v,%v, want 1", v, ok)
		}
		// Histogram quantile over a labeled series: all 8 migrations
		// landed in finite buckets, so the p99 must be a positive finite
		// microsecond figure.
		if v, ok := p.HistQuantile("rmcc_router_migration_duration_us", 0.99); !ok || v <= 0 || math.IsInf(v, 0) {
			t.Errorf("migration p99 = %v,%v, want positive finite", v, ok)
		}
	})

	t.Run("node", func(t *testing.T) {
		f, err := os.Open("testdata/node_metrics.prom")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		p, err := ParsePromText(f)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := p.Value("rmccd_sessions_active"); !ok || v != 16 {
			t.Errorf("sessions_active = %v,%v, want 16", v, ok)
		}
		if v, ok := p.Value("rmccd_requests_total",
			L("class", "2xx"), L("endpoint", "replay")); !ok || v != 16 {
			t.Errorf("requests{2xx,replay} = %v,%v, want 16", v, ok)
		}
		// Quantile extraction from the captured replay-latency buckets:
		// 7 of 16 requests ≤ 131072µs, all 16 ≤ 262144µs, so the p99
		// interpolates strictly inside (131072, 262144].
		v, ok := p.HistQuantile("rmccd_request_duration_us", 0.99, L("endpoint", "replay"))
		if !ok || v <= 131072 || v > 262144 {
			t.Errorf("replay p99 = %v,%v, want in (131072, 262144]", v, ok)
		}
		// The histogram is label-scoped: the same name restricted to a
		// quiet endpoint gives a different (smaller) figure, proving the
		// label restriction actually filters.
		hv, hok := p.HistQuantile("rmccd_request_duration_us", 0.99, L("endpoint", "healthz"))
		if hok && hv >= v {
			t.Errorf("healthz p99 %v >= replay p99 %v — label restriction leaking", hv, v)
		}
	})
}

// TestHistogramQuantile checks the server-side bucketed estimate.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	for i := 0; i < 50; i++ {
		h.Observe(5) // bucket le=10
	}
	for i := 0; i < 40; i++ {
		h.Observe(50) // bucket le=100
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000) // +Inf bucket
	}
	if v := h.Quantile(0.5); math.Abs(v-10) > 1e-9 {
		t.Errorf("p50 = %v, want 10", v)
	}
	if v := h.Quantile(0.75); math.Abs(v-66.25) > 1e-9 {
		t.Errorf("p75 = %v, want 66.25", v)
	}
	if v := h.Quantile(0.99); v != 1000 {
		t.Errorf("p99 = %v, want clamp to top bound 1000", v)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile != 0")
	}
}

// TestQuantileSorted checks the exact-sample counterpart.
func TestQuantileSorted(t *testing.T) {
	if QuantileSorted(nil, 0.5) != 0 {
		t.Error("empty sample quantile != 0")
	}
	s := []float64{1, 2, 3, 4, 5}
	if v := QuantileSorted(s, 0); v != 1 {
		t.Errorf("q0 = %v", v)
	}
	if v := QuantileSorted(s, 1); v != 5 {
		t.Errorf("q1 = %v", v)
	}
	if v := QuantileSorted(s, 0.5); v != 3 {
		t.Errorf("median = %v, want 3", v)
	}
	if v := QuantileSorted(s, 0.25); v != 2 {
		t.Errorf("q25 = %v, want 2", v)
	}
}
