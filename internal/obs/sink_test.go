package obs

import "testing"

type recordSink struct{ got []Event }

func (r *recordSink) OnEvent(e Event) { r.got = append(r.got, e) }

// TestTracerSinkForwarding: an attached sink sees every emitted event,
// synchronously and in order; detaching stops delivery without disturbing
// the ring.
func TestTracerSinkForwarding(t *testing.T) {
	tr := NewTracer(8)
	s := &recordSink{}
	tr.Emit(EvCtrCacheHit, 1, 2, 3) // before attach: not delivered
	tr.SetSink(s)
	tr.Emit(EvCtrCacheMiss, 10, 20, 1)
	tr.Emit(EvMemoInsert, 0, 137, 127)
	tr.SetSink(nil)
	tr.Emit(EvMemoHit, 99, 0, 0) // after detach: not delivered

	if len(s.got) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(s.got))
	}
	if s.got[0].Kind != EvCtrCacheMiss || s.got[0].Addr != 10 || s.got[0].V2 != 1 {
		t.Errorf("event 0 = %+v", s.got[0])
	}
	if s.got[1].Kind != EvMemoInsert || s.got[1].V1 != 137 || s.got[1].V2 != 127 {
		t.Errorf("event 1 = %+v", s.got[1])
	}
	if s.got[0].Seq != 1 || s.got[1].Seq != 2 {
		t.Errorf("sequence numbers = %d, %d, want 1, 2", s.got[0].Seq, s.got[1].Seq)
	}
	// The ring still retained everything, sink or not.
	if tr.Total() != 4 || tr.Len() != 4 {
		t.Errorf("ring total/len = %d/%d, want 4/4", tr.Total(), tr.Len())
	}
}

// TestTracerSinkNilSafe: SetSink on a nil tracer is a no-op, matching
// Emit's nil-safety (the engine carries a nil tracer when disabled).
func TestTracerSinkNilSafe(t *testing.T) {
	var tr *Tracer
	tr.SetSink(&recordSink{}) // must not panic
	tr.Emit(EvCtrCacheHit, 0, 0, 0)
}

// TestTracerEmitDetachedAllocFree: the disabled-sink fast path must not
// allocate (the tracer is on the engine's per-access path).
func TestTracerEmitDetachedAllocFree(t *testing.T) {
	tr := NewTracer(64)
	avg := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvCtrCacheMiss, 0x2000, 1, 0)
	})
	if avg != 0 {
		t.Errorf("detached Emit allocates %v allocs/run, want 0", avg)
	}
}
