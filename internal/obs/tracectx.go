package obs

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
)

// This file is the cross-process half of the span layer: a
// W3C-traceparent-style trace context carried on the X-Rmcc-Trace header.
// rmcc-loadgen (or any client) mints a context per session, the router and
// the daemon each record their spans under it and re-issue the header with
// their own span ID as the new parent, so one 128-bit trace ID links the
// client, the router hop, every node a session touches across a drain, and
// the per-chunk stage spans inside the engine.
//
// Wire form (55 bytes, strict):
//
//	00-<32 lowercase hex trace id>-<16 lowercase hex span id>-<2 hex flags>
//
// Flags bit 0 is the sampled bit. The version field is fixed at "00";
// anything else — wrong length, uppercase hex, zero trace ID — is a parse
// error so handlers can reject bad headers as client errors instead of
// tracing garbage.

// TraceHeader is the HTTP header carrying a TraceContext.
const TraceHeader = "X-Rmcc-Trace"

// TraceHeaderLen is the exact encoded length of a trace context header
// value. Longer values are rejected before hex decoding.
const TraceHeaderLen = 55

// ErrTraceContext is the typed parse error for malformed header values.
var ErrTraceContext = errors.New("malformed trace context")

// TraceContext identifies a position in a distributed trace: the 128-bit
// trace ID (split into two words), the 64-bit ID of the span that owns
// this context, and the sampled flag. It is a value type — threading one
// through a hot path allocates nothing. The zero value is "untraced".
type TraceContext struct {
	TraceHi uint64
	TraceLo uint64
	SpanID  uint64
	Sampled bool
}

// Valid reports whether the context carries a real trace ID.
func (tc TraceContext) Valid() bool { return tc.TraceHi != 0 || tc.TraceLo != 0 }

// TraceID returns the 32-hex-digit trace ID ("" for an untraced context).
func (tc TraceContext) TraceID() string {
	if !tc.Valid() {
		return ""
	}
	return fmt.Sprintf("%016x%016x", tc.TraceHi, tc.TraceLo)
}

// String renders the header wire form ("" for an untraced context).
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return ""
	}
	flags := uint64(0)
	if tc.Sampled {
		flags = 1
	}
	return fmt.Sprintf("00-%016x%016x-%016x-%02x", tc.TraceHi, tc.TraceLo, tc.SpanID, flags)
}

// MintTraceContext draws a fresh sampled trace context from crypto/rand:
// a random nonzero 128-bit trace ID and a random root span ID. It is the
// client-side origin of a trace; servers only ever adopt and re-parent.
func MintTraceContext() TraceContext {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero trace
		// (untraced) is the safe degradation if it somehow does.
		return TraceContext{}
	}
	tc := TraceContext{
		TraceHi: binary.BigEndian.Uint64(b[0:8]),
		TraceLo: binary.BigEndian.Uint64(b[8:16]),
		SpanID:  binary.BigEndian.Uint64(b[16:24]),
		Sampled: true,
	}
	if !tc.Valid() {
		tc.TraceLo = 1
	}
	return tc
}

// ParseTraceContext parses a header value. It returns the zero context
// with a nil error for an empty value (no header = untraced), and
// ErrTraceContext-wrapped errors for anything that is not the exact wire
// form. Parsing allocates nothing on success.
func ParseTraceContext(v string) (TraceContext, error) {
	if v == "" {
		return TraceContext{}, nil
	}
	if len(v) != TraceHeaderLen {
		return TraceContext{}, fmt.Errorf("%w: length %d, want %d", ErrTraceContext, len(v), TraceHeaderLen)
	}
	if v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return TraceContext{}, fmt.Errorf("%w: bad version or separators", ErrTraceContext)
	}
	hi, ok1 := parseHex64(v[3:19])
	lo, ok2 := parseHex64(v[19:35])
	sp, ok3 := parseHex64(v[36:52])
	fl, ok4 := parseHex64(v[53:55])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return TraceContext{}, fmt.Errorf("%w: non-hex digits", ErrTraceContext)
	}
	tc := TraceContext{TraceHi: hi, TraceLo: lo, SpanID: sp, Sampled: fl&1 != 0}
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("%w: zero trace id", ErrTraceContext)
	}
	return tc, nil
}

// ParseTraceID parses a bare 32-hex-digit trace ID (the ?trace= query
// form) into its two words.
func ParseTraceID(v string) (hi, lo uint64, err error) {
	if len(v) != 32 {
		return 0, 0, fmt.Errorf("%w: trace id length %d, want 32", ErrTraceContext, len(v))
	}
	hi, ok1 := parseHex64(v[:16])
	lo, ok2 := parseHex64(v[16:])
	if !ok1 || !ok2 {
		return 0, 0, fmt.Errorf("%w: non-hex digits", ErrTraceContext)
	}
	if hi == 0 && lo == 0 {
		return 0, 0, fmt.Errorf("%w: zero trace id", ErrTraceContext)
	}
	return hi, lo, nil
}

// parseHex64 decodes up to 16 lowercase hex digits. Uppercase is rejected
// on purpose: the wire form is canonical so encoded contexts are directly
// comparable as strings.
func parseHex64(s string) (uint64, bool) {
	var x uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			x = x<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			x = x<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return x, true
}
