package obs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFlightRoundTrip(t *testing.T) {
	fr := NewFlightRecorder(1<<16, "node-a")
	span := SpanRecord{
		ID: 3, Parent: 2, TraceHi: 0xaa, TraceLo: 0xbb, Remote: 1,
		Name: "engine-step", Detail: "s-42", Start: 1234, Duration: 567,
	}
	fr.RecordSpan(span)
	ev := Event{Seq: 9, Kind: EvFaultInjected, Addr: 0x1000, V1: 2, V2: 3}
	fr.RecordEvent(ev)
	fr.RecordLog(777, LogWarn, []byte("ts=x level=warn msg=boom\n"))

	var buf bytes.Buffer
	if err := fr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Node != "node-a" || d.Records != 3 || d.Dropped != 0 {
		t.Fatalf("header = %q/%d/%d, want node-a/3/0", d.Node, d.Records, d.Dropped)
	}
	if len(d.Spans) != 1 || d.Spans[0] != span {
		t.Fatalf("spans = %+v, want [%+v]", d.Spans, span)
	}
	if len(d.Events) != 1 || d.Events[0] != ev {
		t.Fatalf("events = %+v, want [%+v]", d.Events, ev)
	}
	want := FlightLog{TimeNS: 777, Level: LogWarn, Line: "ts=x level=warn msg=boom"}
	if len(d.Logs) != 1 || d.Logs[0] != want {
		t.Fatalf("logs = %+v, want [%+v]", d.Logs, want)
	}
	if got := d.SpansForTrace(0xaa, 0xbb); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("SpansForTrace = %+v", got)
	}
}

func TestFlightEviction(t *testing.T) {
	fr := NewFlightRecorder(256, "tiny")
	for i := 0; i < 100; i++ {
		fr.RecordSpan(SpanRecord{ID: uint64(i + 1), Name: "s", Detail: "dddddddddd"})
	}
	if fr.Dropped() == 0 {
		t.Fatal("a 256-byte ring must evict under 100 spans")
	}
	var buf bytes.Buffer
	if err := fr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatalf("post-eviction dump must stay decodable: %v", err)
	}
	if len(d.Spans) == 0 {
		t.Fatal("dump retained no spans")
	}
	// The retained window is the newest records, in order.
	last := d.Spans[len(d.Spans)-1]
	if last.ID != 100 {
		t.Fatalf("newest span ID = %d, want 100", last.ID)
	}
	for i := 1; i < len(d.Spans); i++ {
		if d.Spans[i].ID != d.Spans[i-1].ID+1 {
			t.Fatalf("retained spans not contiguous: %d after %d", d.Spans[i].ID, d.Spans[i-1].ID)
		}
	}
	if d.Records != 100 || d.Dropped != 100-uint64(len(d.Spans)) {
		t.Fatalf("counters records=%d dropped=%d retained=%d", d.Records, d.Dropped, len(d.Spans))
	}
}

func TestFlightTruncatesOversize(t *testing.T) {
	fr := NewFlightRecorder(1<<16, "n")
	fr.RecordSpan(SpanRecord{ID: 1, Name: strings.Repeat("n", 400), Detail: strings.Repeat("d", 5000)})
	fr.RecordLog(1, LogError, []byte(strings.Repeat("x", 10000)))
	var buf bytes.Buffer
	if err := fr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans[0].Name) != flightMaxName || len(d.Spans[0].Detail) != flightMaxDetail {
		t.Fatalf("span strings not truncated: %d/%d", len(d.Spans[0].Name), len(d.Spans[0].Detail))
	}
	if len(d.Logs[0].Line) != flightMaxLine {
		t.Fatalf("log line not truncated: %d", len(d.Logs[0].Line))
	}
}

func TestFlightNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.RecordSpan(SpanRecord{})
	fr.RecordEvent(Event{})
	fr.RecordLog(0, LogWarn, nil)
	if fr.Records() != 0 || fr.Dropped() != 0 || fr.Bytes() != 0 || fr.Cap() != 0 || fr.Node() != "" {
		t.Fatal("nil recorder accessors must be zero")
	}
	if err := fr.Dump(&bytes.Buffer{}); err == nil {
		t.Fatal("nil Dump must error")
	}
}

func TestFlightRecordAllocFree(t *testing.T) {
	fr := NewFlightRecorder(1<<20, "n")
	span := SpanRecord{ID: 1, TraceHi: 1, TraceLo: 2, Name: "engine-step", Detail: "s-1234"}
	line := []byte("ts=x level=warn msg=slow\n")
	if a := testing.AllocsPerRun(500, func() { fr.RecordSpan(span) }); a != 0 {
		t.Fatalf("RecordSpan allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(500, func() { fr.RecordEvent(Event{Seq: 1}) }); a != 0 {
		t.Fatalf("RecordEvent allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(500, func() { fr.RecordLog(1, LogWarn, line) }); a != 0 {
		t.Fatalf("RecordLog allocates %.1f/op, want 0", a)
	}
	// Steady state includes eviction: fill a small ring and keep writing.
	small := NewFlightRecorder(4096, "n")
	for i := 0; i < 200; i++ {
		small.RecordSpan(span)
	}
	if a := testing.AllocsPerRun(500, func() { small.RecordSpan(span) }); a != 0 {
		t.Fatalf("RecordSpan with eviction allocates %.1f/op, want 0", a)
	}
}

func TestSpanTracerFlightAttachment(t *testing.T) {
	fr := NewFlightRecorder(1<<16, "n")
	tr := NewSpanTracer(8)
	tr.AttachFlight(fr)
	sp := tr.Start("replay", "s-1", 0)
	sp.End()
	var buf bytes.Buffer
	if err := fr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != 1 || d.Spans[0].Name != "replay" {
		t.Fatalf("flight spans = %+v, want the completed replay span", d.Spans)
	}
}

func TestLoggerFlightAttachment(t *testing.T) {
	fr := NewFlightRecorder(1<<16, "n")
	var out bytes.Buffer
	lg := NewLogger(&out, LogDebug, LogText).
		WithClock(func() time.Time { return time.Unix(10, 0) })
	lg.AttachFlight(fr)
	lg.Info("fine", "k", "v")                 // below warn: not captured
	lg.Warn("trouble", "err", "x")            // captured
	lg.With("session", "s-1").Error("broken") // children share the sink
	var buf bytes.Buffer
	if err := fr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Logs) != 2 {
		t.Fatalf("flight captured %d lines, want 2 (warn+error): %+v", len(d.Logs), d.Logs)
	}
	if d.Logs[0].Level != LogWarn || !strings.Contains(d.Logs[0].Line, "msg=trouble") {
		t.Fatalf("first captured line = %+v", d.Logs[0])
	}
	if d.Logs[1].Level != LogError || !strings.Contains(d.Logs[1].Line, "session=s-1") {
		t.Fatalf("second captured line = %+v", d.Logs[1])
	}
	if d.Logs[0].TimeNS != time.Unix(10, 0).UnixNano() {
		t.Fatalf("captured ts = %d", d.Logs[0].TimeNS)
	}
}

func TestFlightDumpToFileDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.rec")
	fr := NewFlightRecorder(1<<16, "n")
	fr.RecordSpan(SpanRecord{ID: 1, Name: "s"})
	if err := fr.DumpToFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("tmp file left behind")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ReadFlightDump(bytes.NewReader(data))
	if err != nil || len(d.Spans) != 1 {
		t.Fatalf("decode written dump: %v, spans=%d", err, len(d.Spans))
	}
	// Overwrite must replace, not append.
	fr.RecordSpan(SpanRecord{ID: 2, Name: "s"})
	if err := fr.DumpToFile(path); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if d, err = ReadFlightDump(bytes.NewReader(data)); err != nil || len(d.Spans) != 2 {
		t.Fatalf("second dump: %v, spans=%d", err, len(d.Spans))
	}
}

func TestReadFlightDumpRejects(t *testing.T) {
	fr := NewFlightRecorder(1<<12, "n")
	fr.RecordSpan(SpanRecord{ID: 1, Name: "x", Detail: "y"})
	var buf bytes.Buffer
	if err := fr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// The body starts after magic(8)+version(4)+nodeLen(2)+node(1)+
	// counters(16)+bodyLen(4); flip the first frame's kind byte.
	garbage := append([]byte{}, good...)
	garbage[8+4+2+1+16+4] = 0xff
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("NOTMAGIC"), good[8:]...),
		"truncated":    good[:len(good)-3],
		"short hdr":    good[:10],
		"body garbage": garbage,
	}
	vbad := append([]byte{}, good...)
	vbad[8] = 99
	cases["bad version"] = vbad
	for name, data := range cases {
		_, err := ReadFlightDump(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
			continue
		}
		if !errors.Is(err, ErrFlightCorrupt) && !errors.Is(err, ErrFlightVersion) {
			t.Errorf("%s: err = %v, want typed flight error", name, err)
		}
	}
}

// FuzzFlightDecode asserts the dump reader never panics and fails only
// with its typed errors, whatever bytes it is fed. Run in CI fuzz-smoke.
func FuzzFlightDecode(f *testing.F) {
	fr := NewFlightRecorder(1<<12, "seed-node")
	fr.RecordSpan(SpanRecord{ID: 1, TraceHi: 1, TraceLo: 2, Name: "replay", Detail: "s-1"})
	fr.RecordEvent(Event{Seq: 1, Kind: EvFaultInjected})
	fr.RecordLog(1, LogWarn, []byte("msg=x"))
	var buf bytes.Buffer
	if err := fr.Dump(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(flightMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadFlightDump(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrFlightCorrupt) && !errors.Is(err, ErrFlightVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A decoded dump must re-encode without panicking via the
		// recorder API (sanity that decoded records are well-formed).
		if d == nil {
			t.Fatal("nil dump with nil error")
		}
	})
}
