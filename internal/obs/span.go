package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped span component of the service
// observability layer: lightweight start/end spans with a parent link and
// a free-form detail string, retained in a fixed ring for /debug/tracez,
// summarized into per-stage latency histograms, and optionally forwarded
// into the per-access ring Tracer as EvSpanEnd events.
//
// Unlike the single-run Tracer, a SpanTracer IS safe for concurrent use:
// rmccd records spans from every HTTP handler goroutine and around every
// shard-worker chunk. Completing a span is allocation-free (a mutex-guarded
// index store into preallocated storage plus atomic histogram adds), so the
// daemon's zero-alloc replay chunk path holds with spans enabled.

// SpanRecord is one completed span.
type SpanRecord struct {
	// ID is the span's unique ordinal (1-based, per tracer).
	ID uint64
	// Parent is the enclosing span's ID, or 0 for a root span.
	Parent uint64
	// TraceHi/TraceLo carry the distributed trace ID this span belongs
	// to (both 0 for an untraced span).
	TraceHi uint64
	TraceLo uint64
	// Remote is the propagated parent span ID from the upstream process
	// (the router's or client's span), set only on spans opened directly
	// from an X-Rmcc-Trace header; 0 otherwise. Remote IDs live in the
	// upstream tracer's ordinal space, so they are rendered distinctly
	// from local Parent links.
	Remote uint64
	// Name is the stage name ("replay", "queue-wait", "engine-step", ...).
	Name string
	// Detail is free-form context (typically a session id or URL path).
	Detail string
	// Start is the span's start time in Unix nanoseconds.
	Start int64
	// Duration is the span's length in nanoseconds.
	Duration int64
}

// TraceID returns the span's 32-hex-digit trace ID ("" when untraced).
func (r SpanRecord) TraceID() string {
	return TraceContext{TraceHi: r.TraceHi, TraceLo: r.TraceLo}.TraceID()
}

// spanStage is the per-stage summary hookup set by RegisterStage.
type spanStage struct {
	hist *Histogram
	idx  uint64
}

// DefaultSpanCap is the default span ring capacity.
const DefaultSpanCap = 4096

// SpanTracer records completed spans into a fixed ring. Safe for
// concurrent Start/End/Record/snapshot calls. Nil-safe: Start on a nil
// tracer returns an inert Span, Record is a no-op — the disabled state.
//
// RegisterStage, AttachTracer, and SetClock configure the tracer and must
// complete before concurrent use begins.
type SpanTracer struct {
	now    func() time.Time
	ids    atomic.Uint64
	stages map[string]spanStage

	mu     sync.Mutex
	ring   []SpanRecord
	next   uint64
	fwd    *Tracer
	flight *FlightRecorder
}

// NewSpanTracer builds a tracer retaining the newest capacity completed
// spans (DefaultSpanCap when capacity <= 0).
func NewSpanTracer(capacity int) *SpanTracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanTracer{
		now:    time.Now,
		stages: make(map[string]spanStage),
		ring:   make([]SpanRecord, capacity),
	}
}

// SetClock replaces the time source (tests). Configuration-time only.
func (t *SpanTracer) SetClock(now func() time.Time) {
	if t != nil && now != nil {
		t.now = now
	}
}

// RegisterStage attaches a latency histogram (microsecond observations)
// to spans named name and assigns the stage's event index (RegisterStage
// call order) used in forwarded EvSpanEnd events. Configuration-time
// only. Spans with unregistered names are still retained in the ring;
// they just feed no histogram and carry index 0.
func (t *SpanTracer) RegisterStage(name string, hist *Histogram) {
	if t == nil {
		return
	}
	t.stages[name] = spanStage{hist: hist, idx: uint64(len(t.stages))}
}

// AttachTracer forwards one EvSpanEnd event per completed span into tr.
// The emit happens under the span tracer's mutex, so the single-run
// Tracer's no-concurrent-emitters rule is upheld as long as tr has no
// other emitters. Configuration-time only.
func (t *SpanTracer) AttachTracer(tr *Tracer) {
	if t != nil {
		t.fwd = tr
	}
}

// AttachFlight mirrors every completed span into the flight recorder's
// crash ring. The record happens under the span tracer's mutex after the
// ring store. Configuration-time only.
func (t *SpanTracer) AttachFlight(fr *FlightRecorder) {
	if t != nil {
		t.flight = fr
	}
}

// Start opens a span. parent is the enclosing span's ID (0 for roots).
// The returned Span is a value — starting and ending a span allocates
// nothing. On a nil tracer it returns an inert Span whose End is a no-op.
func (t *SpanTracer) Start(name, detail string, parent uint64) Span {
	return t.StartT(name, detail, parent, TraceContext{})
}

// traceBits returns tc's trace ID for span association, honoring the
// sampled bit: an unsampled context still propagates downstream on the
// wire but associates no spans, so /debug/tracez?trace= stays empty for
// it by design.
func traceBits(tc TraceContext) (hi, lo uint64) {
	if !tc.Sampled {
		return 0, 0
	}
	return tc.TraceHi, tc.TraceLo
}

// StartT opens a span inside trace tc with a local parent link. Only tc's
// trace ID and sampled bit are used; parent is the local enclosing span's
// ID exactly as in Start. The zero TraceContext degrades to Start, and an
// unsampled tc records the span without the trace association.
func (t *SpanTracer) StartT(name, detail string, parent uint64, tc TraceContext) Span {
	if t == nil {
		return Span{}
	}
	hi, lo := traceBits(tc)
	return Span{
		t:      t,
		id:     t.ids.Add(1),
		parent: parent,
		hi:     hi,
		lo:     lo,
		name:   name,
		detail: detail,
		start:  t.now().UnixNano(),
	}
}

// StartRemote opens a root span continuing a propagated trace context:
// the span has no local parent, and tc.SpanID (the upstream process's
// span) is recorded as its remote parent. This is the request-ingress
// path for X-Rmcc-Trace.
func (t *SpanTracer) StartRemote(name, detail string, tc TraceContext) Span {
	if t == nil {
		return Span{}
	}
	hi, lo := traceBits(tc)
	return Span{
		t:      t,
		id:     t.ids.Add(1),
		remote: tc.SpanID,
		hi:     hi,
		lo:     lo,
		name:   name,
		detail: detail,
		start:  t.now().UnixNano(),
	}
}

// Record logs an externally measured span (start in Unix nanoseconds) and
// returns its ID — the path for stages whose boundaries were captured
// elsewhere, like the shard pool's queue-wait/run timestamps. No-op
// returning 0 on a nil tracer.
func (t *SpanTracer) Record(name, detail string, parent uint64, startNS int64, d time.Duration) uint64 {
	return t.RecordT(name, detail, parent, TraceContext{}, startNS, d)
}

// RecordT is Record inside trace tc (trace ID only; parent stays the
// local link). Allocation-free — it runs on the replay chunk path.
func (t *SpanTracer) RecordT(name, detail string, parent uint64, tc TraceContext, startNS int64, d time.Duration) uint64 {
	if t == nil {
		return 0
	}
	if d < 0 {
		d = 0
	}
	hi, lo := traceBits(tc)
	id := t.ids.Add(1)
	t.record(SpanRecord{ID: id, Parent: parent, TraceHi: hi, TraceLo: lo, Name: name, Detail: detail, Start: startNS, Duration: int64(d)})
	return id
}

func (t *SpanTracer) record(r SpanRecord) {
	st := t.stages[r.Name]
	us := uint64(r.Duration) / 1e3
	st.hist.Observe(us) // nil-safe
	t.mu.Lock()
	t.ring[t.next%uint64(len(t.ring))] = r
	t.next++
	if t.fwd != nil {
		t.fwd.Emit(EvSpanEnd, st.idx, us, r.ID)
	}
	t.flight.RecordSpan(r) // nil-safe
	t.mu.Unlock()
}

// Dropped returns how many completed spans have been overwritten in the
// ring before any export could read them (0 on nil). This is the feed for
// rmccd_spans_dropped_total: a wrapped ring means /debug/tracez is showing
// a truncated window.
func (t *SpanTracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next > uint64(len(t.ring)) {
		return t.next - uint64(len(t.ring))
	}
	return 0
}

// Total returns the number of spans completed over the tracer's lifetime
// (0 on nil).
func (t *SpanTracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Len returns the number of spans currently retained (0 on nil).
func (t *SpanTracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.ring)) {
		return int(t.next)
	}
	return len(t.ring)
}

// Cap returns the ring capacity (0 on nil).
func (t *SpanTracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Spans returns the retained spans oldest-first (a copy; nil on nil).
func (t *SpanTracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	retained := uint64(len(t.ring))
	if n < retained {
		retained = n
	}
	out := make([]SpanRecord, 0, retained)
	for s := n - retained; s < n; s++ {
		out = append(out, t.ring[s%uint64(len(t.ring))])
	}
	return out
}

// SpansForTrace returns the retained spans belonging to trace (hi, lo),
// sorted by (start, span ID) so single-node output and cluster fan-out
// merges are deterministic — the /debug/tracez?trace= view.
func (t *SpanTracer) SpansForTrace(hi, lo uint64) []SpanRecord {
	if t == nil || (hi == 0 && lo == 0) {
		return nil
	}
	var out []SpanRecord
	for _, r := range t.Spans() {
		if r.TraceHi == hi && r.TraceLo == lo {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Slowest returns up to n retained spans by descending duration (ties
// break on ascending ID) — the /debug/tracez view.
func (t *SpanTracer) Slowest(n int) []SpanRecord {
	all := t.Spans()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Duration != all[j].Duration {
			return all[i].Duration > all[j].Duration
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Span is an open span handle. It is a value type: Start + End allocate
// nothing. The zero Span is inert.
type Span struct {
	t      *SpanTracer
	id     uint64
	parent uint64
	remote uint64
	hi, lo uint64
	name   string
	detail string
	start  int64
}

// ID returns the span's ID for parent links (0 for an inert span).
func (s Span) ID() uint64 { return s.id }

// End completes the span, recording it into the ring, its stage
// histogram, and the forwarded tracer. No-op on an inert span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := s.t.now().UnixNano() - s.start
	if d < 0 {
		d = 0
	}
	s.t.record(SpanRecord{ID: s.id, Parent: s.parent, TraceHi: s.hi, TraceLo: s.lo, Remote: s.remote, Name: s.name, Detail: s.detail, Start: s.start, Duration: d})
}
