package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped span component of the service
// observability layer: lightweight start/end spans with a parent link and
// a free-form detail string, retained in a fixed ring for /debug/tracez,
// summarized into per-stage latency histograms, and optionally forwarded
// into the per-access ring Tracer as EvSpanEnd events.
//
// Unlike the single-run Tracer, a SpanTracer IS safe for concurrent use:
// rmccd records spans from every HTTP handler goroutine and around every
// shard-worker chunk. Completing a span is allocation-free (a mutex-guarded
// index store into preallocated storage plus atomic histogram adds), so the
// daemon's zero-alloc replay chunk path holds with spans enabled.

// SpanRecord is one completed span.
type SpanRecord struct {
	// ID is the span's unique ordinal (1-based, per tracer).
	ID uint64
	// Parent is the enclosing span's ID, or 0 for a root span.
	Parent uint64
	// Name is the stage name ("replay", "queue-wait", "engine-step", ...).
	Name string
	// Detail is free-form context (typically a session id or URL path).
	Detail string
	// Start is the span's start time in Unix nanoseconds.
	Start int64
	// Duration is the span's length in nanoseconds.
	Duration int64
}

// spanStage is the per-stage summary hookup set by RegisterStage.
type spanStage struct {
	hist *Histogram
	idx  uint64
}

// DefaultSpanCap is the default span ring capacity.
const DefaultSpanCap = 4096

// SpanTracer records completed spans into a fixed ring. Safe for
// concurrent Start/End/Record/snapshot calls. Nil-safe: Start on a nil
// tracer returns an inert Span, Record is a no-op — the disabled state.
//
// RegisterStage, AttachTracer, and SetClock configure the tracer and must
// complete before concurrent use begins.
type SpanTracer struct {
	now    func() time.Time
	ids    atomic.Uint64
	stages map[string]spanStage

	mu   sync.Mutex
	ring []SpanRecord
	next uint64
	fwd  *Tracer
}

// NewSpanTracer builds a tracer retaining the newest capacity completed
// spans (DefaultSpanCap when capacity <= 0).
func NewSpanTracer(capacity int) *SpanTracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanTracer{
		now:    time.Now,
		stages: make(map[string]spanStage),
		ring:   make([]SpanRecord, capacity),
	}
}

// SetClock replaces the time source (tests). Configuration-time only.
func (t *SpanTracer) SetClock(now func() time.Time) {
	if t != nil && now != nil {
		t.now = now
	}
}

// RegisterStage attaches a latency histogram (microsecond observations)
// to spans named name and assigns the stage's event index (RegisterStage
// call order) used in forwarded EvSpanEnd events. Configuration-time
// only. Spans with unregistered names are still retained in the ring;
// they just feed no histogram and carry index 0.
func (t *SpanTracer) RegisterStage(name string, hist *Histogram) {
	if t == nil {
		return
	}
	t.stages[name] = spanStage{hist: hist, idx: uint64(len(t.stages))}
}

// AttachTracer forwards one EvSpanEnd event per completed span into tr.
// The emit happens under the span tracer's mutex, so the single-run
// Tracer's no-concurrent-emitters rule is upheld as long as tr has no
// other emitters. Configuration-time only.
func (t *SpanTracer) AttachTracer(tr *Tracer) {
	if t != nil {
		t.fwd = tr
	}
}

// Start opens a span. parent is the enclosing span's ID (0 for roots).
// The returned Span is a value — starting and ending a span allocates
// nothing. On a nil tracer it returns an inert Span whose End is a no-op.
func (t *SpanTracer) Start(name, detail string, parent uint64) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		t:      t,
		id:     t.ids.Add(1),
		parent: parent,
		name:   name,
		detail: detail,
		start:  t.now().UnixNano(),
	}
}

// Record logs an externally measured span (start in Unix nanoseconds) and
// returns its ID — the path for stages whose boundaries were captured
// elsewhere, like the shard pool's queue-wait/run timestamps. No-op
// returning 0 on a nil tracer.
func (t *SpanTracer) Record(name, detail string, parent uint64, startNS int64, d time.Duration) uint64 {
	if t == nil {
		return 0
	}
	if d < 0 {
		d = 0
	}
	id := t.ids.Add(1)
	t.record(SpanRecord{ID: id, Parent: parent, Name: name, Detail: detail, Start: startNS, Duration: int64(d)})
	return id
}

func (t *SpanTracer) record(r SpanRecord) {
	st := t.stages[r.Name]
	us := uint64(r.Duration) / 1e3
	st.hist.Observe(us) // nil-safe
	t.mu.Lock()
	t.ring[t.next%uint64(len(t.ring))] = r
	t.next++
	if t.fwd != nil {
		t.fwd.Emit(EvSpanEnd, st.idx, us, r.ID)
	}
	t.mu.Unlock()
}

// Total returns the number of spans completed over the tracer's lifetime
// (0 on nil).
func (t *SpanTracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Len returns the number of spans currently retained (0 on nil).
func (t *SpanTracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.ring)) {
		return int(t.next)
	}
	return len(t.ring)
}

// Cap returns the ring capacity (0 on nil).
func (t *SpanTracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Spans returns the retained spans oldest-first (a copy; nil on nil).
func (t *SpanTracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	retained := uint64(len(t.ring))
	if n < retained {
		retained = n
	}
	out := make([]SpanRecord, 0, retained)
	for s := n - retained; s < n; s++ {
		out = append(out, t.ring[s%uint64(len(t.ring))])
	}
	return out
}

// Slowest returns up to n retained spans by descending duration (ties
// break on ascending ID) — the /debug/tracez view.
func (t *SpanTracer) Slowest(n int) []SpanRecord {
	all := t.Spans()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Duration != all[j].Duration {
			return all[i].Duration > all[j].Duration
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Span is an open span handle. It is a value type: Start + End allocate
// nothing. The zero Span is inert.
type Span struct {
	t      *SpanTracer
	id     uint64
	parent uint64
	name   string
	detail string
	start  int64
}

// ID returns the span's ID for parent links (0 for an inert span).
func (s Span) ID() uint64 { return s.id }

// End completes the span, recording it into the ring, its stage
// histogram, and the forwarded tracer. No-op on an inert span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := s.t.now().UnixNano() - s.start
	if d < 0 {
		d = 0
	}
	s.t.record(SpanRecord{ID: s.id, Parent: s.parent, Name: s.name, Detail: s.detail, Start: s.start, Duration: d})
}
