package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 8, 6, 1, 2, 3, 0, time.UTC)
	return func() time.Time { return t0 }
}

// TestLoggerJSONGolden pins the JSON line schema byte-for-byte with a
// fixed clock: ts, level, msg, bound fields, call-site fields, in order.
func TestLoggerJSONGolden(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(&sb, LogDebug, LogJSON).WithClock(fixedClock())
	lg.With("session", "s-00000001", "shard", 3).
		Info("session created", "workload", "canneal", "seed", uint64(7), "rate", 0.25, "ok", true)
	want := `{"ts":"2026-08-06T01:02:03Z","level":"info","msg":"session created",` +
		`"session":"s-00000001","shard":3,"workload":"canneal","seed":7,"rate":0.25,"ok":true}` + "\n"
	if sb.String() != want {
		t.Errorf("line:\n got %q\nwant %q", sb.String(), want)
	}
	if lg.Lines() != 1 {
		t.Errorf("Lines = %d, want 1", lg.Lines())
	}
}

// TestLoggerTextGolden pins the text encoding and its quoting rule.
func TestLoggerTextGolden(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(&sb, LogInfo, LogText).WithClock(fixedClock())
	lg.Warn("replay failed", "session", "s-01", "error", "line 3: bad json", "applied", uint64(42))
	want := `ts=2026-08-06T01:02:03Z level=warn msg="replay failed" session=s-01 ` +
		`error="line 3: bad json" applied=42` + "\n"
	if sb.String() != want {
		t.Errorf("line:\n got %q\nwant %q", sb.String(), want)
	}
}

// TestLoggerJSONEscaping feeds hostile values through the JSON encoder
// and requires the output to be a valid JSON document that round-trips.
func TestLoggerJSONEscaping(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(&sb, LogDebug, LogJSON).WithClock(fixedClock())
	nasty := "a\"b\\c\nd\te\x01f é"
	lg.Info(nasty, "path", nasty)
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%q", err, sb.String())
	}
	if doc["msg"] != nasty || doc["path"] != nasty {
		t.Errorf("round trip lost data: msg=%q path=%q want %q", doc["msg"], doc["path"], nasty)
	}
}

// TestLoggerLevelGate checks filtering and the Enabled fast path.
func TestLoggerLevelGate(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(&sb, LogWarn, LogText)
	lg.Debug("nope")
	lg.Info("nope")
	if sb.Len() != 0 || lg.Lines() != 0 {
		t.Fatalf("below-level lines emitted: %q", sb.String())
	}
	if lg.Enabled(LogInfo) || !lg.Enabled(LogWarn) || !lg.Enabled(LogError) {
		t.Error("Enabled gate wrong")
	}
	lg.Error("yes")
	if lg.Lines() != 1 {
		t.Errorf("Lines = %d, want 1", lg.Lines())
	}
}

// TestLoggerNilSafe: the disabled state is a nil logger; everything must
// be a no-op, including With chains.
func TestLoggerNilSafe(t *testing.T) {
	var lg *Logger
	child := lg.With("k", "v").WithClock(fixedClock())
	if child != nil {
		t.Fatal("With on nil logger must return nil")
	}
	child.Info("ignored", "k", 1)
	child.Debug("ignored")
	if child.Enabled(LogError) {
		t.Error("nil logger reports Enabled")
	}
	if child.Lines() != 0 {
		t.Error("nil logger counts lines")
	}
}

// TestLoggerBadPairs: non-string keys and odd argument counts degrade
// gracefully instead of panicking or dropping data.
func TestLoggerBadPairs(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(&sb, LogDebug, LogText).WithClock(fixedClock())
	lg.Info("odd", "k1", 1, "dangling")
	if !strings.Contains(sb.String(), "!BADKEY=dangling") {
		t.Errorf("dangling value lost: %q", sb.String())
	}
}

// TestLogSampler checks the admit-1-in-N contract and concurrency
// safety of the counter.
func TestLogSampler(t *testing.T) {
	s := NewLogSampler(10)
	admitted := 0
	for i := 0; i < 100; i++ {
		if s.Allow() {
			admitted++
		}
	}
	if admitted != 10 {
		t.Errorf("admitted %d of 100 at 1-in-10, want 10", admitted)
	}
	if s.Count() != 100 {
		t.Errorf("Count = %d, want 100", s.Count())
	}

	var nilSampler *LogSampler
	if !nilSampler.Allow() {
		t.Error("nil sampler must admit everything")
	}

	// Concurrent Allow must neither race nor lose counts.
	s2 := NewLogSampler(7)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s2.Allow()
			}
		}()
	}
	wg.Wait()
	if s2.Count() != 8000 {
		t.Errorf("concurrent Count = %d, want 8000", s2.Count())
	}
}

// TestParseLogFlags covers the flag parsers.
func TestParseLogFlags(t *testing.T) {
	for s, want := range map[string]LogLevel{
		"debug": LogDebug, "info": LogInfo, "warn": LogWarn, "error": LogError,
	} {
		got, err := ParseLogLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel accepted garbage")
	}
	if f, err := ParseLogFormat("json"); err != nil || f != LogJSON {
		t.Errorf("ParseLogFormat(json) = %v, %v", f, err)
	}
	if _, err := ParseLogFormat("xml"); err == nil {
		t.Error("ParseLogFormat accepted garbage")
	}
}
