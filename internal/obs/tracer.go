package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// EventKind classifies one per-access lifecycle event emitted by the
// engine, the memoization tables, or the fault campaign.
type EventKind uint8

// Event kinds. V1/V2 payloads are kind-specific and documented per kind in
// docs/OBSERVABILITY.md.
const (
	// EvCtrCacheHit: the access's L0 counter block was resident.
	// Addr = data address, V1 = counter value, V2 = 1 for writes.
	EvCtrCacheHit EventKind = iota
	// EvCtrCacheMiss: the L0 counter block had to come from DRAM.
	// Addr = data address, V1 = counter value, V2 = 1 for writes.
	EvCtrCacheMiss
	// EvMemoHit: a memoization-table lookup served a stored AES result.
	// Addr = data address, V1 = counter value, V2 = hit source
	// (1 = group, 2 = MRU).
	EvMemoHit
	// EvMemoMiss: a memoization-table lookup missed.
	// Addr = data address, V1 = counter value.
	EvMemoMiss
	// EvMemoInsert: the table installed a new memoized counter-value
	// group. Addr = table id (0 = L0, 1 = L1), V1 = group start value,
	// V2 = table max before the insertion (so V1-V2 is the insertion
	// offset the leakage analyzer bins).
	EvMemoInsert
	// EvEpochRollover: a memoization table crossed its epoch boundary.
	// Addr = table id, V1 = completed epoch ordinal, V2 = remaining budget
	// (blocks, truncated).
	EvEpochRollover
	// EvBudgetSpend: overhead traffic was charged to the epoch budget.
	// Addr = table id, V1 = blocks charged, V2 = remaining (truncated).
	EvBudgetSpend
	// EvBudgetDenied: a budget charge was refused for lack of budget.
	// Addr = table id, V1 = blocks requested, V2 = remaining (truncated).
	EvBudgetDenied
	// EvOSMUpdate: an observed-max register advanced (§IV-D2). Addr =
	// level (0 = data OSM, l >= 1 = tree level), V1 = new max.
	EvOSMUpdate
	// EvFaultInjected: the fault campaign corrupted state. Addr = target
	// address (or index), V1 = fault kind ordinal.
	EvFaultInjected
	// EvFaultDetected: the engine recorded an integrity violation.
	// Addr = violation address, V1 = violation kind ordinal, V2 = 1 when
	// recovered in-line.
	EvFaultDetected
	// EvFaultRecovered: a violation was repaired (retry, re-fill, or
	// re-key escalation). Addr = violation address, V1 = violation kind.
	EvFaultRecovered
	// EvRekey: the whole-memory re-key/reboot ran. V1 = new key epoch.
	EvRekey
	// EvSpanEnd: a service-layer span completed (see SpanTracer). Addr =
	// stage index (RegisterStage call order), V1 = duration in
	// microseconds, V2 = span id.
	EvSpanEnd

	numEventKinds
)

// NumEventKinds is the number of event kinds, for sizing per-kind arrays.
const NumEventKinds = int(numEventKinds)

// String names the kind (stable: part of the trace schema).
func (k EventKind) String() string {
	switch k {
	case EvCtrCacheHit:
		return "ctr-cache-hit"
	case EvCtrCacheMiss:
		return "ctr-cache-miss"
	case EvMemoHit:
		return "memo-hit"
	case EvMemoMiss:
		return "memo-miss"
	case EvMemoInsert:
		return "memo-insert"
	case EvEpochRollover:
		return "epoch-rollover"
	case EvBudgetSpend:
		return "budget-spend"
	case EvBudgetDenied:
		return "budget-denied"
	case EvOSMUpdate:
		return "osm-update"
	case EvFaultInjected:
		return "fault-injected"
	case EvFaultDetected:
		return "fault-detected"
	case EvFaultRecovered:
		return "fault-recovered"
	case EvRekey:
		return "rekey"
	case EvSpanEnd:
		return "span-end"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one recorded lifecycle event. Seq is the global emission
// ordinal (0-based), so after wraparound the retained window is
// [Total-Len, Total).
type Event struct {
	Seq    uint64
	Kind   EventKind
	Addr   uint64
	V1, V2 uint64
}

// Tracer records events into a fixed-size ring buffer: the newest Cap
// events are retained, per-kind totals are kept for the whole run. Emit is
// allocation-free (an index store into preallocated storage). Nil-safe:
// Emit on a nil *Tracer is a no-op, which is the disabled state — the
// engine carries a nil tracer unless one is attached.
//
// The tracer is NOT safe for concurrent emitters; it belongs to a single
// simulation (the engine itself is documented single-threaded). Parallel
// sweeps attach one tracer per run or none.
type Tracer struct {
	buf    []Event
	next   uint64 // total events emitted
	counts [numEventKinds]uint64
	sink   EventSink
}

// EventSink receives every event a tracer records, synchronously from
// Emit. Implementations must not allocate or block if they sit on a hot
// path (the sidechannel leakage analyzer is the canonical consumer); they
// must not call back into the tracer.
type EventSink interface {
	OnEvent(Event)
}

// DefaultTracerCap is the default ring capacity (64 Ki events ≈ 2.5 MiB).
const DefaultTracerCap = 64 << 10

// NewTracer builds a tracer retaining the newest capacity events
// (DefaultTracerCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// SetSink attaches a synchronous per-event consumer (nil detaches). The
// detached state is the default and adds no work to Emit beyond one nil
// check.
func (t *Tracer) SetSink(s EventSink) {
	if t == nil {
		return
	}
	t.sink = s
}

// Emit records one event. No-op on a nil tracer.
func (t *Tracer) Emit(kind EventKind, addr, v1, v2 uint64) {
	if t == nil {
		return
	}
	e := &t.buf[t.next%uint64(len(t.buf))]
	e.Seq = t.next
	e.Kind = kind
	e.Addr = addr
	e.V1 = v1
	e.V2 = v2
	t.next++
	t.counts[kind]++
	if t.sink != nil {
		t.sink.OnEvent(*e)
	}
}

// Total returns the number of events emitted over the tracer's lifetime
// (including ones the ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.next
}

// Len returns the number of events currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// CountByKind returns the lifetime emission count for kind.
func (t *Tracer) CountByKind(kind EventKind) uint64 {
	if t == nil || kind >= numEventKinds {
		return 0
	}
	return t.counts[kind]
}

// Events returns the retained events oldest-first (a copy).
func (t *Tracer) Events() []Event {
	n := t.Len()
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := t.next - uint64(n)
	for s := start; s < t.next; s++ {
		out = append(out, t.buf[s%uint64(len(t.buf))])
	}
	return out
}

// WriteJSONL writes the retained events as JSON Lines (one event object
// per line, oldest first), preceded by no header — the schema is
// documented in docs/OBSERVABILITY.md. Deterministic for a given event
// sequence.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		if _, err := fmt.Fprintf(bw,
			`{"seq":%d,"kind":%q,"addr":%d,"v1":%d,"v2":%d}`+"\n",
			e.Seq, e.Kind.String(), e.Addr, e.V1, e.V2); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the retained events as JSON Lines to path ("-" for
// stdout).
func (t *Tracer) WriteFile(path string) error {
	if path == "-" {
		return t.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := t.WriteJSONL(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
