package obs

import (
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed, deterministic buckets chosen at
// construction. Bucket i counts observations v <= bounds[i] (Prometheus
// "le" semantics, cumulative at export); the implicit final bucket catches
// everything else. Observe is a binary search plus two atomic adds —
// allocation-free and safe for concurrent writers. Nil-safe.
type Histogram struct {
	bounds []uint64        // ascending upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64
	count  atomic.Uint64
}

// newHistogram validates and copies the bounds. Panics on unsorted or
// duplicate bounds: bucket layouts are build-time constants, and a bad one
// would silently misbucket every observation.
func newHistogram(bounds []uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns total observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the upper bounds and the *cumulative* count at each bound
// (Prometheus le semantics), excluding the +Inf bucket; the +Inf cumulative
// count equals Count.
func (h *Histogram) Buckets() (bounds []uint64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = make([]uint64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]uint64, len(h.bounds))
	var c uint64
	for i := range h.bounds {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return bounds, cumulative
}

// Pow2Buckets returns ascending power-of-two bucket bounds from 1<<lo to
// 1<<hi inclusive — the deterministic default layout for block-count and
// latency histograms.
func Pow2Buckets(lo, hi uint) []uint64 {
	if hi < lo {
		hi = lo
	}
	out := make([]uint64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, uint64(1)<<e)
	}
	return out
}

// LinearBuckets returns n ascending bounds start, start+step, ...
func LinearBuckets(start, step uint64, n int) []uint64 {
	if step == 0 {
		step = 1
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+step*uint64(i))
	}
	return out
}
