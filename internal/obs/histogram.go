package obs

import (
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed, deterministic buckets chosen at
// construction. Bucket i counts observations v <= bounds[i] (Prometheus
// "le" semantics, cumulative at export); the implicit final bucket catches
// everything else. Observe is a binary search plus two atomic adds —
// allocation-free and safe for concurrent writers. Nil-safe.
type Histogram struct {
	bounds []uint64        // ascending upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64
	count  atomic.Uint64
}

// newHistogram validates and copies the bounds. Panics on unsorted or
// duplicate bounds: bucket layouts are build-time constants, and a bad one
// would silently misbucket every observation.
func newHistogram(bounds []uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// NewHistogram builds a standalone (unregistered) histogram with the given
// fixed ascending bucket upper bounds — for per-session or otherwise
// high-cardinality latency tracking that should not flood the registry.
// Panics on unsorted bounds, like registry-owned histograms.
func NewHistogram(bounds []uint64) *Histogram {
	return newHistogram(bounds)
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed values
// by linear interpolation within the bucket containing the target rank.
// Returns 0 with no observations; values in the +Inf bucket clamp to the
// highest finite bound. Nil-safe. The estimate is only as fine as the
// bucket layout — good enough for p50/p99 dashboards, not for SLA math.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	lower := float64(0)
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank && c > 0 {
			upper := float64(bound)
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
		lower = float64(bound)
	}
	// Target rank fell in the +Inf bucket: clamp to the top finite bound.
	if len(h.bounds) > 0 {
		return float64(h.bounds[len(h.bounds)-1])
	}
	return 0
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns total observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the upper bounds and the *cumulative* count at each bound
// (Prometheus le semantics), excluding the +Inf bucket; the +Inf cumulative
// count equals Count.
func (h *Histogram) Buckets() (bounds []uint64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = make([]uint64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]uint64, len(h.bounds))
	var c uint64
	for i := range h.bounds {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return bounds, cumulative
}

// QuantileSorted returns the q-quantile of an ascending-sorted sample by
// linear interpolation between order statistics — the exact (non-bucketed)
// counterpart of Histogram.Quantile, used for client-side latency
// percentiles where the full sample is in hand. Returns 0 on an empty
// sample.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i] + (sorted[i+1]-sorted[i])*frac
}

// Pow2Buckets returns ascending power-of-two bucket bounds from 1<<lo to
// 1<<hi inclusive — the deterministic default layout for block-count and
// latency histograms.
func Pow2Buckets(lo, hi uint) []uint64 {
	if hi < lo {
		hi = lo
	}
	out := make([]uint64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, uint64(1)<<e)
	}
	return out
}

// LinearBuckets returns n ascending bounds start, start+step, ...
func LinearBuckets(start, step uint64, n int) []uint64 {
	if step == 0 {
		step = 1
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+step*uint64(i))
	}
	return out
}
