package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines — owned
// instruments updating, fresh series registering, and exports being cut
// concurrently — and checks the final totals. Run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "shared counter")
	g := reg.Gauge("g", "shared gauge")
	h := reg.Histogram("h", "shared histogram", LinearBuckets(0, 10, 4))

	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker also registers its own series mid-flight.
			reg.CounterFunc("worker_total", "per-worker series",
				func() uint64 { return perWorker }, L("worker", string(rune('a'+w))))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(i % 40))
				if i%1000 == 0 {
					var sb strings.Builder
					if err := reg.WritePrometheus(&sb); err != nil {
						t.Errorf("concurrent export: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Len(); got != 3+workers {
		t.Errorf("registered series = %d, want %d", got, 3+workers)
	}
}

// TestRegistryDuplicatePanics pins the wiring-bug guard: same (name,
// labels) twice panics, same name with different labels does not.
func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "", L("k", "v"))
	reg.Counter("dup_total", "", L("k", "other")) // distinct labels: fine
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Counter("dup_total", "", L("k", "v"))
}

// TestHistogramBucketEdges pins the le (inclusive upper bound) semantics on
// exact boundary values, underflow into the first bucket, and overflow into
// the implicit +Inf bucket.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]uint64{10, 20, 30})
	for _, v := range []uint64{0, 10, 11, 20, 21, 30, 31, 1 << 40} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// le=10: {0,10}; le=20: +{11,20}; le=30: +{21,30}; +Inf: +{31,1<<40}.
	want := []uint64{2, 4, 6}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative[le=%d] = %d, want %d", bounds[i], cum[i], want[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	wantSum := uint64(0 + 10 + 11 + 20 + 21 + 30 + 31 + (1 << 40))
	if h.Sum() != wantSum {
		t.Errorf("sum = %d, want %d", h.Sum(), wantSum)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]uint64{{10, 10}, {20, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

func TestBucketLayouts(t *testing.T) {
	if got := Pow2Buckets(2, 5); len(got) != 4 || got[0] != 4 || got[3] != 32 {
		t.Errorf("Pow2Buckets(2,5) = %v", got)
	}
	if got := LinearBuckets(5, 3, 3); got[0] != 5 || got[1] != 8 || got[2] != 11 {
		t.Errorf("LinearBuckets(5,3,3) = %v", got)
	}
}

// TestNilInstrumentsAreNoOps pins the zero-overhead-when-disabled contract:
// every instrument method on a nil receiver is a safe no-op.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(7)
	tr.Emit(EvMemoHit, 1, 2, 3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 ||
		tr.Total() != 0 || tr.Len() != 0 || tr.Cap() != 0 || tr.CountByKind(EvMemoHit) != 0 {
		t.Fatal("nil instrument reported non-zero state")
	}
	if b, c := h.Buckets(); b != nil || c != nil {
		t.Fatal("nil histogram returned buckets")
	}
	if tr.Events() != nil {
		t.Fatal("nil tracer returned events")
	}
}
