package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// formatFloat renders v in the shortest form that round-trips — the
// deterministic float rendering shared by both exporters.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered series in Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, series
// sorted by (name, labels), histograms expanded into cumulative _bucket
// series plus _sum and _count. Output is byte-deterministic for equal
// metric values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, m := range r.snapshot() {
		if m.name != lastName {
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, sanitizeHelp(m.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.typ)
			lastName = m.name
		}
		if m.hist != nil {
			writePromHistogram(bw, m)
			continue
		}
		fmt.Fprintf(bw, "%s%s %s\n", m.name, m.labelString(), formatFloat(m.value()))
	}
	return bw.Flush()
}

// writePromHistogram expands one histogram series.
func writePromHistogram(bw *bufio.Writer, m *metric) {
	bounds, cum := m.hist.Buckets()
	for i, b := range bounds {
		fmt.Fprintf(bw, "%s_bucket%s %d\n",
			m.name, withLabel(m.labels, "le", strconv.FormatUint(b, 10)), cum[i])
	}
	fmt.Fprintf(bw, "%s_bucket%s %d\n", m.name, withLabel(m.labels, "le", "+Inf"), m.hist.Count())
	fmt.Fprintf(bw, "%s_sum%s %d\n", m.name, labelString(m.labels), m.hist.Sum())
	fmt.Fprintf(bw, "%s_count%s %d\n", m.name, labelString(m.labels), m.hist.Count())
}

// withLabel renders the label set plus one extra pair appended.
func withLabel(labels []Label, key, value string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Key: key, Value: value})
	return labelString(all)
}

func labelString(labels []Label) string {
	return (&metric{labels: labels}).labelString()
}

// sanitizeHelp keeps HELP lines single-line.
func sanitizeHelp(s string) string {
	return strings.NewReplacer("\n", " ", "\\", `\\`).Replace(s)
}

// WriteFile writes the registry to path, choosing the format from the
// extension: ".json" gets the JSON document, anything else the Prometheus
// text exposition. "-" writes Prometheus text to stdout.
func (r *Registry) WriteFile(path string) error {
	if path == "-" {
		return r.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".json") {
		werr = r.WriteJSON(f)
	} else {
		werr = r.WritePrometheus(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// jsonMetric is one series in the JSON export.
type jsonMetric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter/gauge values.
	Value *float64 `json:"value,omitempty"`
	// Histogram payload: cumulative counts per upper bound, plus sum/count.
	Buckets []jsonBucket `json:"buckets,omitempty"`
	Sum     *uint64      `json:"sum,omitempty"`
	Count   *uint64      `json:"count,omitempty"`
}

type jsonBucket struct {
	LE         uint64 `json:"le"`
	Cumulative uint64 `json:"cumulative"`
}

// WriteJSON writes every registered series as one JSON document:
// {"metrics": [...]} in the same deterministic order as WritePrometheus.
// encoding/json sorts map keys, so label rendering is deterministic too.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := struct {
		Metrics []jsonMetric `json:"metrics"`
	}{Metrics: make([]jsonMetric, 0, r.Len())}
	for _, m := range r.snapshot() {
		jm := jsonMetric{Name: m.name, Type: m.typ.String(), Help: m.help}
		if len(m.labels) > 0 {
			jm.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				jm.Labels[l.Key] = l.Value
			}
		}
		if m.hist != nil {
			bounds, cum := m.hist.Buckets()
			for i, b := range bounds {
				jm.Buckets = append(jm.Buckets, jsonBucket{LE: b, Cumulative: cum[i]})
			}
			sum, count := m.hist.Sum(), m.hist.Count()
			jm.Sum, jm.Count = &sum, &count
		} else {
			v := m.value()
			jm.Value = &v
		}
		out.Metrics = append(out.Metrics, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
