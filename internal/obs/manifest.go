package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"rmcc/internal/buildinfo"
)

// ManifestSchemaVersion identifies the manifest format; bump on breaking
// changes so CI diff tooling can refuse mismatched artifacts.
const ManifestSchemaVersion = 1

// Manifest describes one simulator run as a diffable CI artifact: what was
// run (tool, config hash, seed, git revision), when and for how long, and
// the headline metrics the run produced. It is written alongside
// BENCH_<date>.json by scripts/bench.sh and by the -manifest-out flags of
// cmd/rmccsim and cmd/rmcc-experiments.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	// GitSHA is the source revision (GITHUB_SHA, or the binary's embedded
	// VCS stamp, or "unknown" outside a checkout).
	GitSHA string `json:"git_sha"`
	// ConfigHash fingerprints the effective run configuration (flags and
	// derived options), so two manifests are comparable iff it matches.
	ConfigHash string `json:"config_hash"`
	Seed       uint64 `json:"seed"`
	// Started is the run's start time in RFC 3339 UTC.
	Started          string  `json:"started"`
	WallClockSeconds float64 `json:"wall_clock_seconds"`
	GoMaxProcs       int     `json:"gomaxprocs,omitempty"`
	// Headline carries the run's key metrics (hit rates, figure means,
	// micro-bench readings) keyed by metric name.
	Headline map[string]float64 `json:"headline"`
	// Notes carries free-form context (workload, mode, figure list).
	Notes map[string]string `json:"notes,omitempty"`
}

// NewManifest returns a manifest shell for tool with the schema version,
// git SHA, and config hash filled in.
func NewManifest(tool string, config any) Manifest {
	return Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Tool:          tool,
		GitSHA:        GitSHA(),
		ConfigHash:    HashConfig(config),
		Headline:      map[string]float64{},
		Notes:         map[string]string{},
	}
}

// WriteJSON writes the manifest as indented JSON. Map keys are sorted by
// encoding/json, so output is deterministic for equal contents.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path (0644).
func (m Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest parses a manifest file.
func ReadManifest(path string) (Manifest, error) {
	var m Manifest
	b, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	return m, nil
}

// HashConfig fingerprints any JSON-serializable configuration with FNV-1a
// over its canonical (sorted-key) JSON encoding. Not cryptographic — it
// only needs to distinguish configurations for diffing.
func HashConfig(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Fall back to the error text: still deterministic per type.
		b = []byte(err.Error())
	}
	// encoding/json sorts map keys but struct order is declaration order,
	// which is stable for a given build — good enough for a fingerprint.
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

// GitSHA resolves the source revision: $GITHUB_SHA if set (CI), else the
// VCS stamp the linker embedded in the binary, else "unknown". No
// subprocess: manifests stay cheap to cut from long-running daemons.
func GitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	return buildinfo.GitSHA()
}

// HeadlineKeys returns the manifest's headline metric names sorted — the
// iteration order for rendering and diffing.
func (m Manifest) HeadlineKeys() []string {
	keys := make([]string, 0, len(m.Headline))
	for k := range m.Headline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
