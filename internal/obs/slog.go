package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the service-side structured logging component: a leveled,
// nil-safe logger with deterministic text/JSON encodings, pre-bound
// key/value fields (session, shard, workload, seed, ...), an injectable
// clock for golden tests, and a rate-limit sampler for hot-path call
// sites. Like every obs instrument it costs one branch when disabled:
// all methods on a nil *Logger are no-ops, and Enabled lets hot paths
// skip argument construction entirely.

// LogLevel orders log severities, lowest first.
type LogLevel int8

// Log levels, in increasing severity.
const (
	LogDebug LogLevel = iota
	LogInfo
	LogWarn
	LogError
)

// String names the level (stable: part of the log schema).
func (l LogLevel) String() string {
	switch l {
	case LogDebug:
		return "debug"
	case LogInfo:
		return "info"
	case LogWarn:
		return "warn"
	case LogError:
		return "error"
	default:
		return fmt.Sprintf("LogLevel(%d)", int(l))
	}
}

// ParseLogLevel maps a -log-level flag value to a level.
func ParseLogLevel(s string) (LogLevel, error) {
	switch s {
	case "debug":
		return LogDebug, nil
	case "info":
		return LogInfo, nil
	case "warn":
		return LogWarn, nil
	case "error":
		return LogError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// LogFormat selects the line encoding.
type LogFormat int8

// Log formats.
const (
	// LogText renders ts=... level=... msg=... k=v lines (values quoted
	// only when they contain spaces, quotes, or '=').
	LogText LogFormat = iota
	// LogJSON renders one JSON object per line with keys in insertion
	// order: ts, level, msg, then bound fields, then call-site fields.
	LogJSON
)

// ParseLogFormat maps a -log-format flag value to a format.
func ParseLogFormat(s string) (LogFormat, error) {
	switch s {
	case "text":
		return LogText, nil
	case "json":
		return LogJSON, nil
	}
	return 0, fmt.Errorf("unknown log format %q (want text|json)", s)
}

// logSink is the shared output side of a logger family: one writer, one
// level gate, one clock. Child loggers created by With share it.
type logSink struct {
	mu     sync.Mutex
	w      io.Writer
	level  LogLevel
	format LogFormat
	now    func() time.Time
	lines  atomic.Uint64
	flight *FlightRecorder
}

// logField is one pre-stringified key/value pair. raw values (numbers,
// bools) render unquoted in JSON.
type logField struct {
	key string
	val string
	raw bool
}

// Logger is a leveled structured logger. The zero value is not usable;
// build one with NewLogger. Nil-safe: every method on a nil *Logger is a
// no-op, which is the disabled state — components carry a nil logger
// unless one is attached, and pay one branch per call site.
//
// Encoding is deterministic: fields render in binding order, floats in
// shortest round-trip form, and with an injected fixed clock two equal
// call sequences produce byte-identical output.
type Logger struct {
	sink   *logSink
	fields []logField
}

// NewLogger builds a logger emitting lines at or above level to w.
func NewLogger(w io.Writer, level LogLevel, format LogFormat) *Logger {
	return &Logger{sink: &logSink{w: w, level: level, format: format, now: time.Now}}
}

// WithClock replaces the timestamp source for the whole logger family
// (tests). Returns the receiver for chaining; not safe to call
// concurrently with logging.
func (l *Logger) WithClock(now func() time.Time) *Logger {
	if l != nil && now != nil {
		l.sink.now = now
	}
	return l
}

// AttachFlight tees every warn+ line the logger family emits into the
// flight recorder's crash ring (the rendered line, sans newline).
// Configuration-time only; applies to the whole family, children
// included. Nil-safe.
func (l *Logger) AttachFlight(fr *FlightRecorder) {
	if l != nil {
		l.sink.flight = fr
	}
}

// Lines returns how many lines the logger family has emitted (0 on nil).
func (l *Logger) Lines() uint64 {
	if l == nil {
		return 0
	}
	return l.sink.lines.Load()
}

// Enabled reports whether a record at level would be emitted (false on
// nil). Hot paths gate argument construction on it so a disabled or
// filtered call site costs one branch and no allocations.
func (l *Logger) Enabled(level LogLevel) bool {
	return l != nil && level >= l.sink.level
}

// With returns a child logger whose lines carry the given key/value
// pairs ahead of any call-site pairs. Values are stringified once, at
// binding time. Nil-safe: With on a nil logger returns nil.
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil {
		return nil
	}
	fs := appendFields(nil, kvs)
	if len(fs) == 0 {
		return l
	}
	child := &Logger{sink: l.sink, fields: make([]logField, 0, len(l.fields)+len(fs))}
	child.fields = append(child.fields, l.fields...)
	child.fields = append(child.fields, fs...)
	return child
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kvs ...any) { l.log(LogDebug, msg, kvs) }

// Info logs at info level.
func (l *Logger) Info(msg string, kvs ...any) { l.log(LogInfo, msg, kvs) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kvs ...any) { l.log(LogWarn, msg, kvs) }

// Error logs at error level.
func (l *Logger) Error(msg string, kvs ...any) { l.log(LogError, msg, kvs) }

func (l *Logger) log(level LogLevel, msg string, kvs []any) {
	if !l.Enabled(level) {
		return
	}
	fs := appendFields(nil, kvs)
	buf := make([]byte, 0, 256)
	now := l.sink.now()
	ts := now.UTC().Format(time.RFC3339Nano)
	switch l.sink.format {
	case LogJSON:
		buf = append(buf, `{"ts":`...)
		buf = appendJSONString(buf, ts)
		buf = append(buf, `,"level":`...)
		buf = appendJSONString(buf, level.String())
		buf = append(buf, `,"msg":`...)
		buf = appendJSONString(buf, msg)
		for _, f := range l.fields {
			buf = appendJSONField(buf, f)
		}
		for _, f := range fs {
			buf = appendJSONField(buf, f)
		}
		buf = append(buf, '}', '\n')
	default:
		buf = append(buf, "ts="...)
		buf = append(buf, ts...)
		buf = append(buf, " level="...)
		buf = append(buf, level.String()...)
		buf = append(buf, " msg="...)
		buf = appendTextValue(buf, msg)
		for _, f := range l.fields {
			buf = appendTextField(buf, f)
		}
		for _, f := range fs {
			buf = appendTextField(buf, f)
		}
		buf = append(buf, '\n')
	}
	l.sink.mu.Lock()
	_, _ = l.sink.w.Write(buf)
	l.sink.mu.Unlock()
	if level >= LogWarn {
		l.sink.flight.RecordLog(now.UnixNano(), level, buf) // nil-safe
	}
	l.sink.lines.Add(1)
}

// appendFields stringifies alternating key/value pairs. A trailing
// unpaired value is kept under the key "!BADKEY" rather than dropped.
func appendFields(dst []logField, kvs []any) []logField {
	for i := 0; i+1 < len(kvs); i += 2 {
		key, ok := kvs[i].(string)
		if !ok {
			key = fmt.Sprint(kvs[i])
		}
		dst = append(dst, fieldFor(key, kvs[i+1]))
	}
	if len(kvs)%2 == 1 {
		dst = append(dst, fieldFor("!BADKEY", kvs[len(kvs)-1]))
	}
	return dst
}

func fieldFor(key string, v any) logField {
	switch x := v.(type) {
	case string:
		return logField{key: key, val: x}
	case int:
		return logField{key: key, val: strconv.Itoa(x), raw: true}
	case int64:
		return logField{key: key, val: strconv.FormatInt(x, 10), raw: true}
	case uint:
		return logField{key: key, val: strconv.FormatUint(uint64(x), 10), raw: true}
	case uint64:
		return logField{key: key, val: strconv.FormatUint(x, 10), raw: true}
	case float64:
		return logField{key: key, val: formatFloat(x), raw: true}
	case bool:
		return logField{key: key, val: strconv.FormatBool(x), raw: true}
	case time.Duration:
		return logField{key: key, val: x.String()}
	case error:
		if x == nil {
			return logField{key: key, val: "<nil>"}
		}
		return logField{key: key, val: x.Error()}
	case fmt.Stringer:
		return logField{key: key, val: x.String()}
	default:
		return logField{key: key, val: fmt.Sprint(v)}
	}
}

func appendJSONField(buf []byte, f logField) []byte {
	buf = append(buf, ',')
	buf = appendJSONString(buf, f.key)
	buf = append(buf, ':')
	if f.raw {
		return append(buf, f.val...)
	}
	return appendJSONString(buf, f.val)
}

func appendTextField(buf []byte, f logField) []byte {
	buf = append(buf, ' ')
	buf = append(buf, f.key...)
	buf = append(buf, '=')
	return appendTextValue(buf, f.val)
}

// appendTextValue quotes values that would break key=value tokenizing.
func appendTextValue(buf []byte, s string) []byte {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.AppendQuote(buf, s)
	}
	return append(buf, s...)
}

// appendJSONString appends s as a JSON string literal. Only the escapes
// JSON requires: quote, backslash, and control characters; multi-byte
// UTF-8 passes through verbatim.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// LogSampler rate-limits hot-path logging: Allow admits the first call
// and every Nth thereafter. Safe for concurrent callers; a nil sampler
// admits everything. Typical use gates a per-chunk debug line:
//
//	if lg.Enabled(obs.LogDebug) && sampler.Allow() { lg.Debug(...) }
type LogSampler struct {
	every uint64
	n     atomic.Uint64
}

// NewLogSampler builds a sampler admitting one call in every (every<=1
// admits all).
func NewLogSampler(every uint64) *LogSampler {
	if every == 0 {
		every = 1
	}
	return &LogSampler{every: every}
}

// Allow reports whether this call is in the admitted sample.
func (s *LogSampler) Allow() bool {
	if s == nil {
		return true
	}
	return (s.n.Add(1)-1)%s.every == 0
}

// Count returns how many calls Allow has seen (0 on nil).
func (s *LogSampler) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.n.Load()
}
