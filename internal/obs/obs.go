// Package obs is the simulator's observability layer: a dependency-free
// metrics registry (counters, gauges, histograms with fixed deterministic
// buckets), a ring-buffer event tracer for per-access lifecycle events, and
// per-run manifests — the uniform substrate behind the Prometheus/JSON
// exports of cmd/rmccsim and cmd/rmcc-experiments and the CI perf-diff
// harness.
//
// Design constraints, in order:
//
//   - Zero overhead when disabled. Every instrument is nil-safe: calling
//     Inc/Add/Set/Observe/Emit on a nil *Counter, *Gauge, *Histogram, or
//     *Tracer is a no-op costing one branch. The engine hot paths stay
//     allocation-free whether or not observation is attached (enforced by
//     the engine's 0 B/op benchmarks).
//   - Deterministic exports. Metrics export sorted by (name, labels);
//     histogram buckets are fixed at construction; floats render with
//     strconv's shortest round-trip form. Two runs with equal counts
//     produce byte-identical Prometheus text and JSON whatever the
//     goroutine interleaving that produced the counts.
//   - No dependencies. Prometheus text exposition is ~40 lines of fmt; we
//     do not import a client library.
//
// The registry supports two registration styles:
//
//   - owned instruments (Counter/Gauge/Histogram) allocated by the
//     registry, updated with atomics — safe for concurrent writers;
//   - func-backed views (CounterFunc/GaugeFunc) that read an existing
//     hand-rolled stats field at export time. This is how the engine, the
//     memoization tables, the caches, and the fault campaign register:
//     their hot paths keep incrementing plain struct fields (the old
//     public Stats accessors remain the source of truth, byte-identical),
//     and the registry reads those fields only when an export is cut.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric at
// registration. Labels distinguish series under one metric name (e.g.
// traffic by kind, chain fetches by level).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricType enumerates exported metric kinds.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricType(%d)", int(t))
	}
}

// metric is one registered series.
type metric struct {
	name   string
	help   string
	typ    metricType
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	readU   func() uint64  // func-backed counter view
	readF   func() float64 // func-backed gauge view
}

// value returns the series' current scalar value (histograms export
// separately).
func (m *metric) value() float64 {
	switch {
	case m.counter != nil:
		return float64(m.counter.Value())
	case m.gauge != nil:
		return m.gauge.Value()
	case m.readU != nil:
		return float64(m.readU())
	case m.readF != nil:
		return m.readF()
	}
	return 0
}

// labelString renders {k="v",...} or "" for an unlabeled series. Label
// values are escaped per the Prometheus text exposition format, which
// defines exactly three escapes — backslash, double quote, and newline.
// Go's %q is NOT equivalent: it also escapes tabs and non-ASCII as \t and
// \uXXXX, sequences the Prometheus parser does not interpret and would
// surface verbatim.
func (m *metric) labelString() string {
	if len(m.labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range m.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promLabelEscaper applies the three escapes the Prometheus text format
// defines for quoted label values.
var promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabelValue escapes v for use inside a quoted Prometheus label
// value.
func escapeLabelValue(v string) string {
	return promLabelEscaper.Replace(v)
}

// Registry holds registered metrics. Registration and export are guarded by
// a mutex; updates to owned instruments are lock-free atomics. Func-backed
// views are read at export time only — attach them to state that is
// quiescent (or atomically readable) when exports are cut.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metric // name + rendered labels → series
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// register adds a series, panicking on a duplicate (name, labels) pair —
// duplicate registration is a wiring bug, and panicking at construction
// keeps exports unambiguous.
func (r *Registry) register(m *metric) {
	key := m.name + m.labelString()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[key]; dup {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", key))
	}
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns an owned, atomically-updated counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: typeCounter, labels: labels, counter: c})
	return c
}

// Gauge registers and returns an owned, atomically-updated gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: typeGauge, labels: labels, gauge: g})
	return g
}

// Histogram registers and returns an owned histogram with the given fixed
// ascending bucket upper bounds (an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name, help string, buckets []uint64, labels ...Label) *Histogram {
	h := newHistogram(buckets)
	r.register(&metric{name: name, help: help, typ: typeHistogram, labels: labels, hist: h})
	return h
}

// CounterFunc registers a counter view backed by fn, read at export time.
// This is the bridge from the pre-existing hand-rolled stats structs: the
// hot path keeps its plain field increment and fn exposes the field.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(&metric{name: name, help: help, typ: typeCounter, labels: labels, readU: fn})
}

// GaugeFunc registers a gauge view backed by fn, read at export time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, help: help, typ: typeGauge, labels: labels, readF: fn})
}

// snapshot returns the metrics sorted by (name, label string) — the
// deterministic export order shared by both exporters.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labelString() < out[j].labelString()
	})
	return out
}

// Len returns the number of registered series.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}

// --- Owned instruments ---

// Counter is a monotonically increasing uint64. Nil-safe: all methods on a
// nil receiver are no-ops, so call sites need no enabled check.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 (stored as atomic bits). Nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (compare-and-swap loop; safe for concurrent adders).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
