package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the Prometheus text exposition format: a
// small parser for the subset this repo's own WritePrometheus emits, used
// by rmcc-top to consume a live rmccd /metrics endpoint without a client
// library. It understands # comments, labeled samples, and the three
// label-value escapes the format defines, and it can reassemble _bucket
// series into quantile estimates.

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the metric name (including any _bucket/_sum/_count suffix).
	Name string
	// Labels holds the sample's label pairs in appearance order.
	Labels []Label
	// Value is the sample value.
	Value float64
}

// Label returns the value of the named label ("" when absent).
func (s PromSample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// PromText is a parsed metrics page.
type PromText struct {
	Samples []PromSample
}

// ParsePromText parses a Prometheus text exposition page (the subset
// WritePrometheus emits: # comments, name{labels} value lines). Malformed
// lines abort with an error naming the line number.
func ParsePromText(r io.Reader) (*PromText, error) {
	out := &PromText{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", lineNo, err)
		}
		out.Samples = append(out.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parsePromLine parses one sample line: name[{k="v",...}] value.
func parsePromLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parsePromLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// Timestamps (a trailing integer) are not emitted by this repo's
	// exporter; take the first field as the value and ignore the rest.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := parsePromValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

// parsePromValue parses a sample value, including the format's +Inf/-Inf/
// NaN spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parsePromLabels parses a {k="v",...} block, returning the labels and
// the remainder of the line. Handles the three defined escapes \\, \",
// and \n inside quoted values.
func parsePromLabels(s string) ([]Label, string, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, fmt.Errorf("label block must start with '{'")
	}
	var labels []Label
	i := 1
	for {
		// Allow {} and trailing commas.
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, s, fmt.Errorf("label name without '=' in %q", s[i:])
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, s, fmt.Errorf("label value for %q not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, s, fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, s, fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					// Unknown escapes pass through verbatim, matching the
					// Prometheus parser's leniency.
					val.WriteByte('\\')
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
	}
}

// Value returns the first sample with the given name whose labels include
// every pair in want (extra labels are ignored). ok is false when absent.
func (p *PromText) Value(name string, want ...Label) (v float64, ok bool) {
	for _, s := range p.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for _, w := range want {
			if s.Label(w.Key) != w.Value {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// HistQuantile estimates the q-quantile of the histogram metric name
// (its _bucket series) restricted to samples matching the given label
// pairs — the client-side counterpart of Histogram.Quantile, computed
// from cumulative le buckets by linear interpolation. ok is false when no
// buckets match or the histogram is empty.
func (p *PromText) HistQuantile(name string, q float64, want ...Label) (v float64, ok bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range p.Samples {
		if s.Name != name+"_bucket" {
			continue
		}
		match := true
		for _, w := range want {
			if s.Label(w.Key) != w.Value {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		le, err := parsePromValue(s.Label("le"))
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: le, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	lower, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= rank && b.cum > prevCum {
			upper := b.le
			if math.IsInf(upper, 1) {
				// Clamp the +Inf bucket to the top finite bound.
				return lower, true
			}
			frac := (rank - prevCum) / (b.cum - prevCum)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac, true
		}
		if !math.IsInf(b.le, 1) {
			lower = b.le
		}
		prevCum = b.cum
	}
	return lower, true
}
