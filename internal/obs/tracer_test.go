package obs

import (
	"strings"
	"testing"
)

// TestTracerRingWraparound fills a small ring past capacity and checks the
// retained window, lifetime totals, and oldest-first ordering.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Emit(EventKind(i%3), uint64(i), uint64(i*10), uint64(i*100))
	}
	if tr.Total() != 20 {
		t.Errorf("Total = %d, want 20", tr.Total())
	}
	if tr.Len() != 8 || tr.Cap() != 8 {
		t.Errorf("Len/Cap = %d/%d, want 8/8", tr.Len(), tr.Cap())
	}
	ev := tr.Events()
	if len(ev) != 8 {
		t.Fatalf("Events returned %d, want 8", len(ev))
	}
	for i, e := range ev {
		wantSeq := uint64(12 + i) // window [Total-Len, Total)
		if e.Seq != wantSeq {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Addr != wantSeq || e.V1 != wantSeq*10 || e.V2 != wantSeq*100 {
			t.Errorf("event %d payload mismatch: %+v", i, e)
		}
	}
	// Per-kind totals cover the whole lifetime, not just the window:
	// kinds 0,1,2 got 7,7,6 of the 20 emissions.
	if tr.CountByKind(0) != 7 || tr.CountByKind(1) != 7 || tr.CountByKind(2) != 6 {
		t.Errorf("CountByKind = %d/%d/%d, want 7/7/6",
			tr.CountByKind(0), tr.CountByKind(1), tr.CountByKind(2))
	}
}

// TestTracerPartialFill checks the pre-wraparound window.
func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(EvRekey, 1, 2, 3)
	tr.Emit(EvOSMUpdate, 4, 5, 6)
	if tr.Total() != 2 || tr.Len() != 2 {
		t.Fatalf("Total/Len = %d/%d, want 2/2", tr.Total(), tr.Len())
	}
	ev := tr.Events()
	if ev[0].Kind != EvRekey || ev[1].Kind != EvOSMUpdate {
		t.Fatalf("order wrong: %+v", ev)
	}
}

// TestTracerJSONL pins the trace schema line format.
func TestTracerJSONL(t *testing.T) {
	tr := NewTracer(4)
	tr.Emit(EvCtrCacheHit, 0x1000, 42, 1)
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":0,"kind":"ctr-cache-hit","addr":4096,"v1":42,"v2":1}` + "\n"
	if sb.String() != want {
		t.Errorf("JSONL = %q, want %q", sb.String(), want)
	}
}

// TestEventKindStringsStable pins every kind's wire name — these are part
// of the trace schema documented in docs/OBSERVABILITY.md and must not
// drift silently.
func TestEventKindStringsStable(t *testing.T) {
	want := map[EventKind]string{
		EvCtrCacheHit:    "ctr-cache-hit",
		EvCtrCacheMiss:   "ctr-cache-miss",
		EvMemoHit:        "memo-hit",
		EvMemoMiss:       "memo-miss",
		EvMemoInsert:     "memo-insert",
		EvEpochRollover:  "epoch-rollover",
		EvBudgetSpend:    "budget-spend",
		EvBudgetDenied:   "budget-denied",
		EvOSMUpdate:      "osm-update",
		EvFaultInjected:  "fault-injected",
		EvFaultDetected:  "fault-detected",
		EvFaultRecovered: "fault-recovered",
		EvRekey:          "rekey",
		EvSpanEnd:        "span-end",
	}
	if len(want) != NumEventKinds {
		t.Fatalf("test covers %d kinds, tracer has %d", len(want), NumEventKinds)
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("kind %d = %q, want %q", k, k.String(), name)
		}
	}
}
