package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rmcc/internal/cluster"
	"rmcc/internal/obs"
	"rmcc/internal/secmem/counter"
	"rmcc/internal/secmem/engine"
	"rmcc/internal/server"
	"rmcc/internal/server/client"
	"rmcc/internal/sim"
	"rmcc/internal/workload"
)

// testNode is one in-process rmccd behind a breakable HTTP front: flip
// broken and every request 500s, simulating a dead node without tearing
// the listener down (so it can recover on the same address).
type testNode struct {
	srv    *server.Server
	hs     *httptest.Server
	id     string // host:port
	api    *client.Client
	broken atomic.Bool
}

type testCluster struct {
	rt    *cluster.Router
	hs    *httptest.Server
	rc    *client.Client // talks through the router
	nodes []*testNode
}

func (tc *testCluster) node(id string) *testNode {
	for _, n := range tc.nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

func newTestCluster(t *testing.T, nNodes int, ccfg cluster.Config) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < nNodes; i++ {
		tn := &testNode{srv: server.New(server.Config{NodeID: fmt.Sprintf("node-%d", i)})}
		tn.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if tn.broken.Load() {
				http.Error(w, "injected failure", http.StatusInternalServerError)
				return
			}
			tn.srv.ServeHTTP(w, r)
		}))
		tn.id = tn.hs.Listener.Addr().String()
		tn.api = client.New(tn.hs.URL)
		t.Cleanup(func() {
			tn.hs.Close()
			tn.srv.Close()
		})
		tc.nodes = append(tc.nodes, tn)
		ccfg.Nodes = append(ccfg.Nodes, tn.hs.URL)
	}
	if ccfg.HealthEvery == 0 {
		// Tests drive checks synchronously via CheckNodes; park the loop.
		ccfg.HealthEvery = time.Hour
	}
	rt, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.rt = rt
	tc.hs = httptest.NewServer(rt)
	tc.rc = client.New(tc.hs.URL)
	t.Cleanup(func() {
		tc.hs.Close()
		rt.Close()
	})
	return tc
}

func cannealSession(seed uint64) server.SessionConfig {
	return server.SessionConfig{
		Mode: "rmcc", Scheme: "morphable", Seed: seed,
		Workload: "canneal", Size: "test",
	}
}

// directRun replays the same generator stream without any service in the
// way — the bit-identity reference.
func directRun(t *testing.T, seed, n uint64) sim.LifetimeResult {
	t.Helper()
	w, ok := workload.ByName(workload.SizeTest, seed, "canneal")
	if !ok {
		t.Fatal("canneal unavailable")
	}
	engCfg := engine.DefaultConfig(engine.RMCC, counter.Morphable, 0)
	engCfg.InitSeed = seed
	cfg := sim.DefaultLifetimeConfig(engCfg)
	cfg.MaxAccesses = n
	cfg.Seed = seed
	return sim.RunLifetime(w, cfg)
}

func assertBitIdentical(t *testing.T, label string, direct sim.LifetimeResult, got server.ReplayStats) {
	t.Helper()
	if got.Accesses != direct.Accesses {
		t.Fatalf("%s: accesses = %d, direct %d", label, got.Accesses, direct.Accesses)
	}
	if !reflect.DeepEqual(got.Engine, direct.Engine) {
		t.Fatalf("%s: engine stats diverge from direct run\nrouter: %+v\ndirect: %+v",
			label, got.Engine, direct.Engine)
	}
}

func TestRouterPlacementAndLifecycle(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.Config{})
	ctx := context.Background()

	const nSessions = 12
	ids := make([]string, 0, nSessions)
	for i := 0; i < nSessions; i++ {
		info, err := tc.rc.CreateSession(ctx, cannealSession(uint64(i+1)))
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if info.Node == "" {
			t.Fatalf("create %d: no node annotation: %+v", i, info)
		}
		if owner := tc.rt.Ring().Owner(info.ID); owner != info.Node {
			t.Fatalf("session %s placed on %s, ring owner %s", info.ID, info.Node, owner)
		}
		ids = append(ids, info.ID)
	}

	// The merged listing covers every session, annotated with real nodes.
	list, err := tc.rc.ListSessions(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list) != nSessions {
		t.Fatalf("router listing has %d sessions, want %d", len(list), nSessions)
	}
	onNode := map[string]int{}
	for _, info := range list {
		if tc.node(info.Node) == nil {
			t.Fatalf("listing names unknown node %q", info.Node)
		}
		onNode[info.Node]++
		// The node annotation must match where the session actually lives.
		direct, err := tc.node(info.Node).api.ListSessions(ctx)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range direct {
			found = found || d.ID == info.ID
		}
		if !found {
			t.Fatalf("session %s annotated on %s but absent there", info.ID, info.Node)
		}
	}
	if len(onNode) < 2 {
		t.Fatalf("12 sessions all landed on %v — ring not spreading", onNode)
	}

	// Proxied session-scoped requests: replay and snapshot.
	stats, err := tc.rc.ReplayWorkload(ctx, ids[0], 5000, 0, nil)
	if err != nil {
		t.Fatalf("replay via router: %v", err)
	}
	if stats.Accesses != 5000 {
		t.Fatalf("replay accesses = %d, want 5000", stats.Accesses)
	}
	snap, err := tc.rc.Snapshot(ctx, ids[0])
	if err != nil || snap.Stats.Accesses != 5000 {
		t.Fatalf("snapshot via router: %+v, %v", snap.Stats, err)
	}

	// Delete drops it everywhere.
	if err := tc.rc.DeleteSession(ctx, ids[1]); err != nil {
		t.Fatalf("delete via router: %v", err)
	}
	list, _ = tc.rc.ListSessions(ctx)
	if len(list) != nSessions-1 {
		t.Fatalf("listing after delete has %d sessions, want %d", len(list), nSessions-1)
	}
}

func TestRouterReplayMatchesDirectRun(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.Config{})
	ctx := context.Background()
	const n = 20_000
	info, err := tc.rc.CreateSession(ctx, cannealSession(1))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tc.rc.ReplayWorkload(ctx, info.ID, n, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "via router", directRun(t, 1, n), stats)
}

// TestRouterDrainBitIdentical is the tentpole acceptance test in
// miniature: replay half of every session's stream, drain a node
// mid-lifetime (its sessions migrate via snapshot restore), replay the
// other half through the router, and require engine stats bit-identical
// to an uninterrupted direct run.
func TestRouterDrainBitIdentical(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.Config{
		Logger: obs.NewLogger(bytes.NewBuffer(nil), obs.LogWarn, obs.LogText),
	})
	ctx := context.Background()
	const nSessions, half = 9, 10_000

	ids := make([]string, 0, nSessions)
	for i := 0; i < nSessions; i++ {
		info, err := tc.rc.CreateSession(ctx, cannealSession(uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		if _, err := tc.rc.ReplayWorkload(ctx, id, half, 0, nil); err != nil {
			t.Fatalf("first half %s: %v", id, err)
		}
	}

	// Drain the node holding the most sessions.
	list, err := tc.rc.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	onNode := map[string]int{}
	for _, info := range list {
		onNode[info.Node]++
	}
	victim, most := "", 0
	for node, c := range onNode {
		if c > most {
			victim, most = node, c
		}
	}
	res, err := tc.rc.DrainNode(ctx, victim)
	if err != nil {
		t.Fatalf("drain %s: %v", victim, err)
	}
	if res.Sessions != most || res.Migrated != most || res.Failed != 0 {
		t.Fatalf("drain result %+v, want %d/%d migrated", res, most, most)
	}

	// The drained node holds nothing; survivors hold everything.
	direct, err := tc.node(victim).api.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != 0 {
		t.Fatalf("drained node still holds %d sessions", len(direct))
	}
	list, _ = tc.rc.ListSessions(ctx)
	if len(list) != nSessions {
		t.Fatalf("cluster listing after drain has %d sessions, want %d", len(list), nSessions)
	}
	for _, info := range list {
		if info.Node == victim {
			t.Fatalf("session %s still annotated on drained node", info.ID)
		}
		if info.Accesses != half {
			t.Fatalf("session %s lost progress across migration: %d accesses, want %d",
				info.ID, info.Accesses, half)
		}
	}

	// Cluster view reflects the drain.
	ci, err := tc.rc.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ci.Nodes {
		wantState := "active"
		if n.ID == victim {
			wantState = "drained"
		}
		if n.State != wantState || n.InRing != (wantState == "active") {
			t.Fatalf("node %s state %s in_ring %v, want %s", n.ID, n.State, n.InRing, wantState)
		}
	}

	// Second half replays through the router land on the new owners and
	// continue the exact same deterministic stream.
	for i, id := range ids {
		stats, err := tc.rc.ReplayWorkload(ctx, id, half, 0, nil)
		if err != nil {
			t.Fatalf("second half %s: %v", id, err)
		}
		assertBitIdentical(t, fmt.Sprintf("session %s post-drain", id),
			directRun(t, uint64(i+1), 2*half), stats)
	}

	// The migration metrics recorded the moves.
	var buf bytes.Buffer
	if err := tc.rt.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	pm, err := obs.ParsePromText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := pm.Value("rmcc_router_migrations_total", obs.L("status", "ok")); !ok || v != float64(most) {
		t.Fatalf("rmcc_router_migrations_total{status=ok} = %v (ok=%v), want %d", v, ok, most)
	}
}

// TestRouterDrainDuringReplays drains a node while replays are actively
// flowing through the router: the per-session gate must serialize each
// migration against that session's traffic with zero divergence.
func TestRouterDrainDuringReplays(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.Config{})
	ctx := context.Background()
	const nSessions = 6
	const chunk, rounds = 4000, 5

	ids := make([]string, 0, nSessions)
	for i := 0; i < nSessions; i++ {
		info, err := tc.rc.CreateSession(ctx, cannealSession(uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	list, _ := tc.rc.ListSessions(ctx)
	victim := list[0].Node

	var wg sync.WaitGroup
	errCh := make(chan error, nSessions)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := tc.rc.ReplayWorkload(ctx, id, chunk, 0, nil); err != nil {
					errCh <- fmt.Errorf("replay %s round %d: %w", id, r, err)
					return
				}
			}
		}(id)
	}
	res, derr := tc.rc.DrainNode(ctx, victim)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if derr != nil {
		t.Fatalf("drain: %v", derr)
	}
	if res.Failed != 0 {
		t.Fatalf("drain failed migrations: %+v", res)
	}

	for i, id := range ids {
		snap, err := tc.rc.Snapshot(ctx, id)
		if err != nil {
			t.Fatalf("snapshot %s: %v", id, err)
		}
		assertBitIdentical(t, fmt.Sprintf("session %s mid-drain", id),
			directRun(t, uint64(i+1), chunk*rounds), snap.Stats)
	}
}

func TestRouterRestoreRoutesToOwner(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.Config{})
	ctx := context.Background()

	info, err := tc.rc.CreateSession(ctx, cannealSession(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.rc.ReplayWorkload(ctx, info.ID, 5000, 0, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := tc.rc.CheckpointDownload(ctx, info.ID)
	if err != nil {
		t.Fatalf("checkpoint download via router: %v", err)
	}

	// Restoring while the session is live must 409.
	if _, err := tc.rc.RestoreSession(ctx, blob); !isStatus(err, http.StatusConflict) {
		t.Fatalf("restore over live session: %v, want 409", err)
	}

	if err := tc.rc.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	restored, err := tc.rc.RestoreSession(ctx, blob)
	if err != nil {
		t.Fatalf("restore via router: %v", err)
	}
	if restored.ID != info.ID || restored.Accesses != 5000 {
		t.Fatalf("restored %+v, want id %s at 5000 accesses", restored, info.ID)
	}
	if owner := tc.rt.Ring().Owner(info.ID); restored.Node != owner {
		t.Fatalf("restored onto %s, ring owner %s", restored.Node, owner)
	}
	// And the stream still continues bit-identically.
	stats, err := tc.rc.ReplayWorkload(ctx, info.ID, 5000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "post-restore", directRun(t, 7, 10_000), stats)

	// Garbage blobs are rejected with the typed 422, not routed anywhere.
	if _, err := tc.rc.RestoreSession(ctx, []byte("not a snapshot")); !isStatus(err, http.StatusUnprocessableEntity) {
		t.Fatalf("garbage restore: %v, want 422", err)
	}
}

func TestRouterHealthTransitions(t *testing.T) {
	tc := newTestCluster(t, 2, cluster.Config{FailAfter: 2, RecoverAfter: 2})
	ctx := context.Background()

	tc.rt.CheckNodes(ctx)
	ci, err := tc.rc.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ci.Nodes {
		if !n.Healthy || !n.InRing {
			t.Fatalf("node %s not healthy/in-ring at boot: %+v", n.ID, n)
		}
	}

	// Break node B: FailAfter consecutive failures take it out.
	b := tc.nodes[1]
	b.broken.Store(true)
	tc.rt.CheckNodes(ctx)
	if ci, _ = tc.rc.Cluster(ctx); !ci.Nodes[1].Healthy {
		// One failure must NOT flip it yet.
	} else if !ci.Nodes[1].InRing {
		t.Fatal("node left the ring after a single failed check")
	}
	tc.rt.CheckNodes(ctx)
	ci, _ = tc.rc.Cluster(ctx)
	if ci.Nodes[1].Healthy || ci.Nodes[1].InRing {
		t.Fatalf("node still in ring after %d failures: %+v", 2, ci.Nodes[1])
	}
	if ci.Nodes[1].LastError == "" {
		t.Fatal("unhealthy node carries no last error")
	}

	// The router keeps serving: creates land on the survivor.
	if err := tc.rc.Health(ctx); err != nil {
		t.Fatalf("router unhealthy with one live node: %v", err)
	}
	info, err := tc.rc.CreateSession(ctx, cannealSession(1))
	if err != nil {
		t.Fatal(err)
	}
	if info.Node != tc.nodes[0].id {
		t.Fatalf("create landed on %s, want survivor %s", info.Node, tc.nodes[0].id)
	}

	// Recovery: RecoverAfter consecutive passes bring it back.
	b.broken.Store(false)
	tc.rt.CheckNodes(ctx)
	tc.rt.CheckNodes(ctx)
	ci, _ = tc.rc.Cluster(ctx)
	if !ci.Nodes[1].Healthy || !ci.Nodes[1].InRing {
		t.Fatalf("node did not recover: %+v", ci.Nodes[1])
	}

	// A node-side graceful drain (SIGTERM path) reads as unhealthy too:
	// the node answers /statusz but reports draining.
	tc.nodes[0].srv.BeginDrain()
	tc.rt.CheckNodes(ctx)
	tc.rt.CheckNodes(ctx)
	ci, _ = tc.rc.Cluster(ctx)
	if ci.Nodes[0].Healthy || ci.Nodes[0].InRing {
		t.Fatalf("draining node still in ring: %+v", ci.Nodes[0])
	}
}

func TestRouterDrainRefusals(t *testing.T) {
	tc := newTestCluster(t, 1, cluster.Config{})
	ctx := context.Background()
	if _, err := tc.rc.DrainNode(ctx, tc.nodes[0].id); !isStatus(err, http.StatusConflict) {
		t.Fatalf("draining the last node: %v, want 409", err)
	}
	if _, err := tc.rc.DrainNode(ctx, "10.9.9.9:1"); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("draining an unknown node: %v, want 404", err)
	}
}

func isStatus(err error, code int) bool {
	var ae *client.APIError
	return errors.As(err, &ae) && ae.Status == code
}
