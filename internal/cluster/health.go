package cluster

import (
	"context"
	"math"
	"strings"
	"time"

	"rmcc/internal/obs"
)

// The health checker polls each node's /statusz (liveness plus the
// node-side draining flag) and /metrics (ParsePromText: live session
// count and replay p99 for the cluster view). A node fails FailAfter
// consecutive checks before it leaves the ring, and passes RecoverAfter
// consecutive checks before it rejoins — hysteresis so one slow scrape
// doesn't reshuffle session placement.

func (rt *Router) healthLoop() {
	defer close(rt.healthDone)
	t := time.NewTicker(rt.cfg.HealthEvery)
	defer t.Stop()
	ticks := 0
	for {
		select {
		case <-t.C:
			rt.CheckNodes(context.Background())
			ticks++
			if ticks%rt.cfg.ReconcileEvery == 0 {
				rt.reconcile(context.Background())
			}
		case <-rt.healthStop:
			return
		}
	}
}

// CheckNodes runs one health-check cycle over every node. Exported so
// tests (and cmd/rmcc-router at boot) can drive checks synchronously;
// must not race the background loop's own calls — the per-node
// consecutive counters assume one checker.
func (rt *Router) CheckNodes(ctx context.Context) {
	for _, n := range rt.nodeList {
		rt.checkNode(ctx, n)
	}
}

func (rt *Router) checkNode(ctx context.Context, n *node) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
	defer cancel()
	err := rt.scrapeNode(ctx, n)
	if err == nil {
		rt.mHealthOK[n.id].Inc()
		n.lastErr.Store(nil)
		n.consecOK++
		n.consecFail = 0
		if !n.healthy.Load() && n.consecOK >= rt.cfg.RecoverAfter {
			rt.log.Info("node healthy", "node", n.id, "after_checks", n.consecOK)
			rt.mu.Lock()
			n.healthy.Store(true)
			rt.syncRingLocked()
			rt.mu.Unlock()
		}
		return
	}
	rt.mHealthFail[n.id].Inc()
	msg := err.Error()
	n.lastErr.Store(&msg)
	n.consecFail++
	n.consecOK = 0
	if n.healthy.Load() && n.consecFail >= rt.cfg.FailAfter {
		rt.log.Warn("node unhealthy", "node", n.id,
			"after_checks", n.consecFail, "error", err)
		rt.mu.Lock()
		n.healthy.Store(false)
		rt.syncRingLocked()
		rt.mu.Unlock()
	}
}

// scrapeNode is one check: statusz must answer and not report a
// node-side drain, and the metrics page must parse. The scraped session
// count and replay p99 feed the rmcc_router_node_* gauges.
func (rt *Router) scrapeNode(ctx context.Context, n *node) error {
	st, err := n.api.Statusz(ctx)
	if err != nil {
		return err
	}
	if st.Draining {
		return errDraining
	}
	raw, err := n.api.RawMetrics(ctx)
	if err != nil {
		return err
	}
	pm, err := obs.ParsePromText(strings.NewReader(raw))
	if err != nil {
		return err
	}
	if v, ok := pm.Value("rmccd_sessions_active"); ok {
		n.sessions.Store(int64(v))
	}
	if p99, ok := pm.HistQuantile("rmccd_request_duration_us", 0.99,
		obs.L("endpoint", "replay")); ok {
		n.p99us.Store(math.Float64bits(p99))
	}
	return nil
}

// errDraining marks a node that answered but is shutting itself down.
type drainingError struct{}

func (drainingError) Error() string { return "node reports draining" }

var errDraining = drainingError{}

// reconcile seeds routed locations from node listings — how a restarted
// router (empty entries map) relearns where previously migrated
// sessions live instead of trusting the ring for them. It only fills
// unknown locations and never touches an entry whose gate is busy.
func (rt *Router) reconcile(ctx context.Context) {
	for _, n := range rt.nodeList {
		if !n.healthy.Load() {
			continue
		}
		infos, err := n.api.ListSessions(ctx)
		if err != nil {
			continue
		}
		for _, info := range infos {
			v, _ := rt.entries.LoadOrStore(info.ID, &entry{})
			e := v.(*entry)
			if e.node.Load() != nil {
				continue
			}
			if e.mu.TryLock() {
				if e.node.Load() == nil {
					e.node.Store(n)
				}
				e.mu.Unlock()
			}
		}
	}
}
